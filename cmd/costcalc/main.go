// Command costcalc evaluates the paper's Abstract Cost Model (§6) for a
// set of microbenchmark-derived parameters.
//
// Usage:
//
//	costcalc                       # the paper's worked example
//	costcalc -rd 10 -rc 8 -c 2 -rt 1.1
//	costcalc -sweep                # TCO saving across C values
package main

import (
	"flag"
	"fmt"
	"os"

	"cxlsim/internal/costmodel"
)

func main() {
	ex := costmodel.PaperExample()
	rd := flag.Float64("rd", ex.Rd, "relative throughput, working set in main memory (vs SSD=1)")
	rc := flag.Float64("rc", ex.Rc, "relative throughput, working set in CXL memory (vs SSD=1)")
	c := flag.Float64("c", ex.C, "main-memory : CXL capacity ratio of a CXL server")
	rt := flag.Float64("rt", ex.Rt, "relative TCO of a CXL server vs baseline")
	fixed := flag.Float64("fixed", 0, "fixed platform costs as a fraction of baseline TCO")
	sweep := flag.Bool("sweep", false, "sweep C from 0.5 to 8 and print the saving curve")
	flag.Parse()

	p := costmodel.Params{Rd: *rd, Rc: *rc, C: *c, Rt: *rt, FixedCostFrac: *fixed}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "costcalc: %v\n", err)
		os.Exit(2)
	}

	if *sweep {
		fmt.Println("C,server_ratio,tco_saving")
		for _, pt := range p.Sweep([]float64{0.5, 1, 1.5, 2, 3, 4, 6, 8}) {
			if !pt.Valid {
				fmt.Printf("%.1f,n/a,n/a\n", pt.C)
				continue
			}
			fmt.Printf("%.1f,%.4f,%.4f\n", pt.C, pt.ServerRatio, pt.TCOSaving)
		}
		return
	}

	ratio, err := p.ServerRatio()
	if err != nil {
		fmt.Fprintf(os.Stderr, "costcalc: %v\n", err)
		os.Exit(1)
	}
	saving, err := p.TCOSaving()
	if err != nil {
		fmt.Fprintf(os.Stderr, "costcalc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("parameters: Rd=%.2f Rc=%.2f C=%.2f Rt=%.2f fixed=%.2f\n", p.Rd, p.Rc, p.C, p.Rt, p.FixedCostFrac)
	fmt.Printf("N_cxl / N_baseline : %.2f%% (server reduction %.2f%%)\n", ratio*100, (1-ratio)*100)
	fmt.Printf("TCO saving         : %.2f%%\n", saving*100)
}
