// Command cxltrace runs one fully-instrumented experiment and writes its
// virtual-time trace as Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. The trace carries spans
// from the sim kernel, the kvstore request path, the tiering daemon, and
// the memory-interference solver — all on the simulation's virtual clock,
// so the same seed always produces the same file.
//
// Usage:
//
//	cxltrace -config Hot-Promote -workload A -out trace.json
//	cxltrace -config 1:1 -workload B -ops 20000 -metrics metrics.prom
//
// -parallel N caps worker parallelism (default GOMAXPROCS); elapsed
// wall-clock is reported on stderr. Traces are keyed to virtual time, so
// the same seed produces the same file at any parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cxlsim/internal/cliutil"
	"cxlsim/internal/kvstore"
	"cxlsim/internal/obs"
	"cxlsim/internal/prof"
	"cxlsim/internal/workload"
)

func main() {
	config := flag.String("config", "Hot-Promote", "Table-1 configuration (see cxlycsb -list-configs)")
	wl := flag.String("workload", "A", "built-in YCSB workload: A, B, C, or D")
	ops := flag.Int("ops", 40_000, "measured operations")
	seed := flag.Int64("seed", 42, "workload seed")
	out := flag.String("out", "trace.json", "trace output path")
	metrics := flag.String("metrics", "", "also write a Prometheus text snapshot here")
	limit := flag.Int("limit", 0, "cap recorded trace events (0 = unlimited)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "cap on worker parallelism (sets GOMAXPROCS; 1 = serial)")
	nodes := cliutil.Nodes(flag.CommandLine)
	shards := cliutil.Shards(flag.CommandLine)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *parallel < 1 {
		usageError("-parallel must be >= 1")
	}
	if *ops < 1 {
		usageError("-ops must be >= 1")
	}
	if *limit < 0 {
		usageError("-limit cannot be negative (0 = unlimited)")
	}
	if *out == "" {
		usageError("-out needs a file path")
	}
	if *cpuprofile != "" && *cpuprofile == *memprofile {
		usageError("-cpuprofile and -memprofile cannot share a file")
	}
	if err := cliutil.CheckNodes(*nodes); err != nil {
		usageError("%v", err)
	}
	if err := cliutil.CheckShards(*shards); err != nil {
		usageError("%v", err)
	}
	if *nodes == 1 && *shards != 1 {
		usageError("-shards needs -nodes > 1 (the single-node run is already one timeline)")
	}
	runtime.GOMAXPROCS(*parallel)
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	start := time.Now()

	mix, err := resolveMix(*wl)
	if err != nil {
		fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	tr.SetLimit(*limit)
	obs.InstrumentMemsim(reg)
	defer obs.InstrumentMemsim(nil)

	var res kvstore.Result
	if *nodes > 1 {
		// Cluster mode: merged metrics from every node, trace from node 0
		// (the tracer is single-timeline; see kvstore.ClusterConfig).
		perNode := *ops / *nodes
		if perNode < 1 {
			perNode = 1
		}
		cres, err := kvstore.RunCluster(kvstore.ClusterConfig{
			Nodes:      *nodes,
			Shards:     *shards,
			Config:     kvstore.ConfigName(*config),
			Deploy:     kvstore.DeployOptions{SimKeys: 1 << 16},
			Mix:        mix,
			OpsPerNode: perNode,
			Seed:       *seed,
			WarmEpochs: 120,
			WarmDraws:  100_000,
			Metrics:    reg,
			Tracer:     tr,
		})
		if err != nil {
			fatal(err)
		}
		res = cres.Merged
		fmt.Fprintf(os.Stderr, "cxltrace: %d nodes on %d shard(s), %d forwarded ops; trace covers node 0\n",
			*nodes, cres.Shards, cres.Merged.Forwarded)
	} else {
		d, err := kvstore.Deploy(kvstore.ConfigName(*config), kvstore.DeployOptions{SimKeys: 1 << 16})
		if err != nil {
			fatal(err)
		}
		d.Warm(mix, 120, 100_000, *seed)
		rc := d.RunConfigFor(mix, *seed)
		rc.Ops = *ops
		rc.Metrics = reg
		rc.Tracer = tr
		res = kvstore.Run(d.Store, d.Alloc, rc)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	if *metrics != "" {
		mf, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteProm(mf, reg.Snapshot()); err != nil {
			fatal(err)
		}
		if err := mf.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("cxltrace: %s/%s seed=%d: %.0f ops/s, p99 %.2f ms, %d B migrated\n",
		*config, mix.Name, *seed, res.ThroughputOpsPerSec, res.P99Ms(), res.Migrated)
	fmt.Fprintf(os.Stderr, "cxltrace: experiment in %s (parallel=%d)\n",
		time.Since(start).Round(time.Millisecond), *parallel)
	fmt.Printf("cxltrace: wrote %s (%d events", *out, tr.Len())
	if dropped := tr.Dropped(); dropped > 0 {
		fmt.Printf(", %d dropped by -limit", dropped)
	}
	fmt.Printf("; tracks: %s)\n", strings.Join(tr.Tracks(), ", "))
	if *metrics != "" {
		fmt.Printf("cxltrace: wrote %s\n", *metrics)
	}
	fmt.Println("cxltrace: open the trace at https://ui.perfetto.dev or chrome://tracing")
}

func resolveMix(name string) (workload.YCSBMix, error) {
	switch strings.ToUpper(name) {
	case "A":
		return workload.YCSBA, nil
	case "B":
		return workload.YCSBB, nil
	case "C":
		return workload.YCSBC, nil
	case "D":
		return workload.YCSBD, nil
	}
	return workload.YCSBMix{}, fmt.Errorf("unknown workload %q (want A-D)", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cxltrace: %v\n", err)
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxltrace: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
