// Command cxlmlc is the simulation analogue of Intel's Memory Latency
// Checker: it sweeps injection rates against the simulated memory paths
// and emits (offered, achieved, latency) curves as CSV — the raw data
// behind Figures 3 and 4.
//
// Usage:
//
//	cxlmlc                     # all four paths, all five mixes
//	cxlmlc -path CXL -mix 2:1  # one curve
//	cxlmlc -pattern random
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cxlsim/internal/memsim"
	"cxlsim/internal/mlc"
	"cxlsim/internal/topology"
)

func main() {
	pathFlag := flag.String("path", "all", "path: MMEM, MMEM-r, CXL, CXL-r, or all")
	mixFlag := flag.String("mix", "all", "read:write mix: 1:0, 2:1, 1:1, 1:3, 0:1, or all")
	pattern := flag.String("pattern", "sequential", "access pattern: sequential or random")
	steps := flag.Int("steps", 40, "sweep points per curve")
	flag.Parse()

	m := topology.TestbedSNC()
	paths := map[string]*memsim.Path{
		"MMEM":   m.PathFrom(0, m.DRAMNodes(0)[0]),
		"MMEM-r": m.PathFrom(1, m.DRAMNodes(0)[0]),
		"CXL":    m.PathFrom(0, m.CXLNodes()[0]),
		"CXL-r":  m.PathFrom(1, m.CXLNodes()[0]),
	}
	order := []string{"MMEM", "MMEM-r", "CXL", "CXL-r"}

	var selPaths []string
	if *pathFlag == "all" {
		selPaths = order
	} else if _, ok := paths[*pathFlag]; ok {
		selPaths = []string{*pathFlag}
	} else {
		fmt.Fprintf(os.Stderr, "cxlmlc: unknown path %q (want %s)\n", *pathFlag, strings.Join(order, ", "))
		os.Exit(2)
	}

	mixes := map[string]memsim.Mix{}
	var mixOrder []string
	for _, mx := range memsim.StandardMixes() {
		mixes[mx.Label()] = mx
		mixOrder = append(mixOrder, mx.Label())
	}
	var selMixes []string
	if *mixFlag == "all" {
		selMixes = mixOrder
	} else if _, ok := mixes[*mixFlag]; ok {
		selMixes = []string{*mixFlag}
	} else {
		fmt.Fprintf(os.Stderr, "cxlmlc: unknown mix %q (want %s)\n", *mixFlag, strings.Join(mixOrder, ", "))
		os.Exit(2)
	}

	pat := memsim.Sequential
	switch *pattern {
	case "sequential":
	case "random":
		pat = memsim.Random
	default:
		fmt.Fprintln(os.Stderr, "cxlmlc: pattern must be sequential or random")
		os.Exit(2)
	}

	opts := mlc.DefaultOptions()
	opts.Steps = *steps

	fmt.Println("path,mix,pattern,offered_gbps,achieved_gbps,latency_ns")
	for _, pn := range selPaths {
		for _, mn := range selMixes {
			mix := mixes[mn].WithPattern(pat)
			curve := mlc.LoadedLatency(paths[pn], mix, opts)
			for _, pt := range curve.Points {
				fmt.Printf("%s,%s,%s,%.3f,%.3f,%.1f\n",
					pn, mn, pat, pt.OfferedGBps, pt.AchievedGBps, pt.LatencyNs)
			}
		}
	}
}
