// Command cxlbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	cxlbench [-quick] [-seed N] [-parallel N] all
//	cxlbench [-quick] [-seed N] fig3 fig5 table3 ...
//	cxlbench -list
//
// Experiments fan out onto -parallel worker goroutines (default
// GOMAXPROCS); tables are byte-identical at any parallelism. Elapsed
// wall-clock per experiment goes to stderr so piped table/CSV output
// stays clean.
//
// -faults <file> replays a deterministic fault schedule (see
// docs/RELIABILITY.md) inside the serving experiments: fig5 and fig8
// each gain a degraded pass and report degraded-vs-healthy deltas.
//
// -windows turns on fixed virtual-time windowed metric aggregation in
// the experiments that support it (fig8); -slo evaluates an SLO spec
// over those windows, and -report renders every windowed run collected
// across the requested experiments as one self-contained HTML report
// (see docs/OBSERVABILITY.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cxlsim/internal/cliutil"
	"cxlsim/internal/core"
	"cxlsim/internal/fault"
	"cxlsim/internal/prof"
	"cxlsim/internal/report"
	"cxlsim/internal/slo"
)

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxlbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	quick := flag.Bool("quick", false, "shrink op counts and sweeps for a fast smoke run")
	seed := flag.Int64("seed", 0, "workload seed (0 = default 42)")
	list := flag.Bool("list", false, "list available experiments and exit")
	format := flag.String("format", "table", "output format: table or csv")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines per experiment fan-out (1 = serial)")
	shards := cliutil.Shards(flag.CommandLine)
	faults := flag.String("faults", "", "replay this fault schedule (JSON) in the serving experiments")
	sloPath := flag.String("slo", "", "evaluate this SLO spec (JSON) over windowed experiment cells")
	windowsMs := flag.Float64("windows", 0, "windowed metric aggregation, virtual ms (0 = off; -slo/-report default it to the spec's window_ms or 10)")
	reportPath := flag.String("report", "", "write windowed runs as a self-contained HTML report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cxlbench [-quick] [-seed N] [-parallel N] [-faults FILE] all | <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(core.Experiments(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(core.Experiments(), "\n"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *parallel < 1 {
		usageError("-parallel must be >= 1")
	}
	if err := cliutil.CheckShards(*shards); err != nil {
		usageError("%v", err)
	}
	if *format != "table" && *format != "csv" {
		usageError("unknown format %q (want table or csv)", *format)
	}
	if *cpuprofile != "" && *cpuprofile == *memprofile {
		usageError("-cpuprofile and -memprofile cannot share a file")
	}
	var schedule *fault.Schedule
	faultsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "faults" {
			faultsSet = true
		}
	})
	if faultsSet && *faults == "" {
		usageError("-faults needs a schedule file")
	}
	if *faults != "" {
		s, err := fault.LoadSchedule(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
			os.Exit(1)
		}
		schedule = s
	}
	if *windowsMs < 0 {
		usageError("-windows cannot be negative")
	}
	var sloSpec *slo.Spec
	if *sloPath != "" {
		s, err := slo.Load(*sloPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
			os.Exit(1)
		}
		sloSpec = s
	}
	windowNs := *windowsMs * 1e6
	if windowNs == 0 && (sloSpec != nil || *reportPath != "") {
		if sloSpec != nil && sloSpec.WindowMs > 0 {
			windowNs = sloSpec.WindowMs * 1e6
		} else {
			windowNs = 10 * 1e6
		}
	}
	opt := core.Options{Quick: *quick, Seed: *seed, Parallel: *parallel, Faults: schedule,
		WindowNs: windowNs, SLO: sloSpec, Shards: *shards}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = core.Experiments()
	}
	var windowedRuns []*report.Run
	for _, id := range ids {
		start := time.Now()
		rep, err := core.Run(id, opt)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
			os.Exit(1)
		}
		windowedRuns = append(windowedRuns, rep.Runs...)
		switch *format {
		case "table":
			rep.WriteTable(os.Stdout)
		case "csv":
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "cxlbench: unknown format %q\n", *format)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cxlbench: %s in %s (parallel=%d)\n", id, elapsed.Round(time.Millisecond), *parallel)
	}
	if *reportPath != "" {
		if len(windowedRuns) == 0 {
			fmt.Fprintf(os.Stderr, "cxlbench: -report: no windowed runs collected (only fig8 supports windows)\n")
			os.Exit(1)
		}
		if err := writeReport(*reportPath, windowedRuns); err != nil {
			fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cxlbench: wrote %s (%d run(s))\n", *reportPath, len(windowedRuns))
	}
}

// writeReport renders the windowed runs as a self-contained HTML report.
func writeReport(path string, runs []*report.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := report.WriteHTML(w, runs); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
