// Command cxlbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	cxlbench [-quick] [-seed N] all
//	cxlbench [-quick] [-seed N] fig3 fig5 table3 ...
//	cxlbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cxlsim/internal/core"
)

func main() {
	quick := flag.Bool("quick", false, "shrink op counts and sweeps for a fast smoke run")
	seed := flag.Int64("seed", 0, "workload seed (0 = default 42)")
	list := flag.Bool("list", false, "list available experiments and exit")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cxlbench [-quick] [-seed N] all | <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(core.Experiments(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(core.Experiments(), "\n"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opt := core.Options{Quick: *quick, Seed: *seed}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = core.Experiments()
	}
	for _, id := range ids {
		rep, err := core.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
			os.Exit(1)
		}
		switch *format {
		case "table":
			rep.WriteTable(os.Stdout)
		case "csv":
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "cxlbench: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "cxlbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
