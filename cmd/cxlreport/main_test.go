package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cxlsim/internal/obs"
	"cxlsim/internal/report"
	"cxlsim/internal/slo"
	"cxlsim/internal/stats"
)

// -update regenerates testdata/: the fixture run dumps and the golden
// report. `make report-smoke` re-renders the fixtures with the live code
// and fails on any byte difference from the golden.
var update = flag.Bool("update", false, "rewrite testdata fixtures and golden report")

// fixtureRuns fabricates a compact healthy/degraded pair: ~1k ops per
// 10ms window, a degraded interval in windows 3–5 with tail-latency
// inflation and failed ops, and the kvstore SLO spec evaluated over it
// so the degraded run fires latency-fast-burn.
func fixtureRuns(t *testing.T) []*report.Run {
	t.Helper()
	spec := slo.Spec{
		Name:     "keydb-ycsb",
		WindowMs: 10,
		Objectives: []slo.Objective{
			{Name: "op-latency", Kind: slo.KindLatency, Metric: "kvstore_op_latency_ns", ThresholdNs: 1e6, Target: 0.99},
			{Name: "availability", Kind: slo.KindAvailability, Metric: "kvstore_ops_total", BadMetric: "kvstore_failed_ops_total", Target: 0.999},
		},
		Alerts: []slo.AlertRule{
			{Name: "latency-fast-burn", Objective: "op-latency", LongWindows: 3, ShortWindows: 1, BurnRate: 5},
			{Name: "availability-fast-burn", Objective: "availability", LongWindows: 3, ShortWindows: 1, BurnRate: 10},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	build := func(label string, degraded bool) *report.Run {
		eval := slo.NewEvaluator(spec)
		var windows []obs.WindowSnapshot
		for i := int64(0); i < 10; i++ {
			slow := uint64(2)
			failed := 0.0
			hits, misses := 920.0, 80.0
			if degraded && i >= 3 && i < 6 {
				slow = 500
				failed = 40
				hits, misses = 500, 500
			}
			fast := uint64(1000) - slow
			ws := obs.WindowSnapshot{
				Index: i, StartNs: float64(i) * 1e7, EndNs: float64(i+1) * 1e7,
				Counters: []obs.WindowCounter{
					{Name: "kvstore_cache_hits_total", Delta: hits, Rate: hits * 1e2},
					{Name: "kvstore_cache_misses_total", Delta: misses, Rate: misses * 1e2},
					{Name: "kvstore_ops_total", Delta: 1000, Rate: 1e5},
				},
				Gauges: []obs.WindowGauge{
					{Name: "fault_active", Value: failed / 40 * 2},
					{Name: "tiering_degraded_nodes", Value: failed / 40},
				},
				Histograms: []obs.WindowHistogram{{
					Name: "kvstore_op_latency_ns", Count: 1000,
					Sum: float64(fast)*8e4 + float64(slow)*5e6,
					Buckets: []stats.Bucket{
						{UpperBound: 1e5, Count: fast},
						{UpperBound: 1e7, Count: slow},
					},
					P50: 1e5, P95: 1e5,
					P99:  1e5 + float64(slow)*1.9e4,
					P999: 1e7,
				}},
			}
			if failed > 0 {
				ws.Counters = append(ws.Counters,
					obs.WindowCounter{Name: "kvstore_failed_ops_total", Delta: failed, Rate: failed * 1e2})
			}
			eval.Observe(ws)
			windows = append(windows, ws)
		}
		return &report.Run{
			Label: label, Config: "1:1", Workload: "YCSB-A",
			WindowNs: 1e7, Windows: windows, SLO: eval.Evaluation(),
		}
	}
	degraded := build("degraded", true)
	degraded.Schedule = "examples/degrade-cxl.json"
	return []*report.Run{build("healthy", false), degraded}
}

// TestRenderSurfacesWriteErrors checks render fails loudly instead of
// leaving a partial report behind: an unwritable path must be an error,
// and a full device (ENOSPC at flush/close) must be too.
func TestRenderSurfacesWriteErrors(t *testing.T) {
	runs := fixtureRuns(t)
	if err := render(filepath.Join(t.TempDir(), "no", "such", "dir", "r.html"), runs); err == nil {
		t.Fatal("render into a missing directory should error")
	}
	if _, err := os.Stat("/dev/full"); err == nil {
		if err := render("/dev/full", runs); err == nil {
			t.Fatal("render to /dev/full should surface ENOSPC")
		}
	}
}

func writeFixture(t *testing.T, path string, r *report.Run) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGolden renders the committed fixture dumps and compares against
// the committed golden report, byte for byte — the determinism contract
// `make report-smoke` enforces from the Makefile.
func TestGolden(t *testing.T) {
	dir := "testdata"
	healthy := filepath.Join(dir, "healthy.json")
	degraded := filepath.Join(dir, "degraded.json")
	golden := filepath.Join(dir, "golden.html")

	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		runs := fixtureRuns(t)
		writeFixture(t, healthy, runs[0])
		writeFixture(t, degraded, runs[1])
	}

	var runs []*report.Run
	for _, p := range []string{healthy, degraded} {
		r, err := report.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	var b bytes.Buffer
	if err := report.WriteHTML(&b, runs); err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, b.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("rendered report differs from %s (%d vs %d bytes); run `go test ./cmd/cxlreport -run TestGolden -update` if the change is intentional",
			golden, b.Len(), len(want))
	}
}

// The degraded fixture must actually exercise the acceptance shape: an
// alert firing during the degraded interval and absent when healthy.
func TestFixtureFiresOnlyWhenDegraded(t *testing.T) {
	runs := fixtureRuns(t)
	firing := func(r *report.Run) int {
		n := 0
		for _, w := range r.SLO.Windows {
			for _, a := range w.Alerts {
				if a.Firing {
					n++
				}
			}
		}
		return n
	}
	if n := firing(runs[0]); n != 0 {
		t.Fatalf("healthy fixture fires %d alert windows", n)
	}
	if n := firing(runs[1]); n == 0 {
		t.Fatal("degraded fixture never fires")
	}
}
