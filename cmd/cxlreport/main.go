// Command cxlreport renders one or more windowed run dumps (written by
// cxlycsb/cxlbench with -dump, or assembled by hand) into a
// self-contained HTML scenario report: per-window latency percentiles,
// rates, SLO attainment, and the burn-rate alert timeline.
//
//	cxlreport -o report.html healthy.json degraded.json
//
// Output is byte-identical for identical inputs, so reports can be
// golden-tested (see make report-smoke).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"cxlsim/internal/report"
)

func main() {
	out := flag.String("o", "report.html", "output HTML path (- for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cxlreport [-o report.html] run.json [run.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	runs := make([]*report.Run, 0, flag.NArg())
	for _, path := range flag.Args() {
		r, err := report.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxlreport:", err)
			os.Exit(1)
		}
		runs = append(runs, r)
	}

	if err := render(*out, runs); err != nil {
		fmt.Fprintln(os.Stderr, "cxlreport:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "cxlreport: wrote %s (%d run(s))\n", *out, len(runs))
	}
}

// render writes the HTML report to out ("-" for stdout). Flush and
// Close errors are surfaced, not swallowed: on a full disk the failure
// often only shows up there, and a partial report must fail the
// command.
func render(out string, runs []*report.Run) error {
	var f *os.File
	if out == "-" {
		f = os.Stdout
	} else {
		var err error
		if f, err = os.Create(out); err != nil {
			return err
		}
	}
	w := bufio.NewWriter(f)
	err := report.WriteHTML(w, runs)
	if err == nil {
		err = w.Flush()
	}
	if out != "-" {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", out, err)
	}
	return nil
}
