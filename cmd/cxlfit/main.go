// Command cxlfit recovers device-model parameters from loaded-latency
// measurements — the "develop performance models based on empirical
// evidence" workflow the paper motivates (§1). Feed it cxlmlc CSV output
// or real-machine MLC data with bandwidth and latency columns.
//
// Usage:
//
//	go run ./cmd/cxlmlc -path CXL -mix 2:1 | go run ./cmd/cxlfit
//	cxlfit -bw-col 4 -lat-col 5 < measurements.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"cxlsim/internal/memsim"
)

func main() {
	bwCol := flag.Int("bw-col", 5, "1-based CSV column holding achieved bandwidth (GB/s)")
	latCol := flag.Int("lat-col", 6, "1-based CSV column holding latency (ns)")
	flag.Parse()
	if *bwCol < 1 || *latCol < 1 {
		fmt.Fprintln(os.Stderr, "cxlfit: column indexes are 1-based")
		os.Exit(2)
	}

	samples, err := readSamples(os.Stdin, *bwCol-1, *latCol-1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlfit: %v\n", err)
		os.Exit(1)
	}
	fit, err := memsim.Fit(samples)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlfit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("samples        : %d\n", len(samples))
	fmt.Printf("idle latency   : %.1f ns\n", fit.IdleNs)
	fmt.Printf("peak bandwidth : %.1f GB/s\n", fit.PeakGBps)
	fmt.Printf("knee           : %.0f%% of peak\n", fit.Knee*100)
	fmt.Printf("queue scale    : %.2f\n", fit.QueueScale)
	fmt.Printf("fit RMSE       : %.1f ns\n", fit.RMSE)
}

// readSamples parses CSV rows, skipping any row whose selected cells are
// not numeric (headers, comments).
func readSamples(r io.Reader, bwIdx, latIdx int) ([]memsim.Sample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []memsim.Sample
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if bwIdx >= len(rec) || latIdx >= len(rec) {
			continue
		}
		bw, err1 := strconv.ParseFloat(rec[bwIdx], 64)
		lat, err2 := strconv.ParseFloat(rec[latIdx], 64)
		if err1 != nil || err2 != nil {
			continue // header or comment row
		}
		out = append(out, memsim.Sample{BandwidthGBps: bw, LatencyNs: lat})
	}
	return out, nil
}
