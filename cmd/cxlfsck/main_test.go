package main

import (
	"os"
	"path/filepath"
	"testing"

	"cxlsim/internal/spill"
)

// seedTier writes a few records into a fresh tier at dir.
func seedTier(t *testing.T, dir string) {
	t.Helper()
	d, _, err := spill.Open(spill.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 20; i++ {
		if err := d.Put([]byte{'k', i}, []byte{'v', i, i, i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCleanDir(t *testing.T) {
	dir := t.TempDir()
	seedTier(t, dir)
	rep, err := check(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.LiveKeys != 20 {
		t.Fatalf("clean tier reported %s", rep)
	}
}

// TestCheckDetectsWithoutModifying corrupts one record and checks the
// verify mode reports damage while leaving the bytes untouched, then
// repair mode quarantines it.
func TestCheckDetectsWithoutModifying(t *testing.T) {
	dir := t.TempDir()
	seedTier(t, dir)
	seg := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := check(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatalf("verify missed the corruption: %s", rep)
	}
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatal("read-only fsck modified the segment")
	}
	if _, err := os.Stat(filepath.Join(dir, spill.QuarantineDir)); !os.IsNotExist(err) {
		t.Fatal("read-only fsck created a quarantine directory")
	}

	rrep, err := check(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Clean() || rrep.QuarantinedRecords == 0 {
		t.Fatalf("repair quarantined nothing: %s", rrep)
	}
	// Quarantined ranges stay in place (offsets cannot shift), so a
	// second repair is a byte-for-byte idempotent no-op: same report,
	// same deterministic quarantine file.
	qfiles, err := filepath.Glob(filepath.Join(dir, spill.QuarantineDir, "*.bad"))
	if err != nil || len(qfiles) != 1 {
		t.Fatalf("quarantine files = %v (%v)", qfiles, err)
	}
	rrep2, err := check(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if rrep2.QuarantinedRecords != rrep.QuarantinedRecords || rrep2.LiveKeys != rrep.LiveKeys {
		t.Fatalf("repair not idempotent: %s vs %s", rrep2, rrep)
	}
	qfiles2, _ := filepath.Glob(filepath.Join(dir, spill.QuarantineDir, "*.bad"))
	if len(qfiles2) != 1 || qfiles2[0] != qfiles[0] {
		t.Fatalf("quarantine files changed: %v vs %v", qfiles2, qfiles)
	}
}

func TestCheckMissingDir(t *testing.T) {
	if _, err := check(filepath.Join(t.TempDir(), "nope"), false); err == nil {
		t.Fatal("fsck of a missing directory should error")
	}
}
