// Command cxlfsck verifies (and optionally repairs) a durable spill
// tier directory — the on-disk log cxlycsb -spill-dir and cxlserve
// -spill-dir write.
//
// Usage:
//
//	cxlfsck dir [dir...]           # read-only verification
//	cxlfsck -repair dir            # repairing recovery (truncate torn
//	                               # tails, quarantine corrupt ranges)
//	cxlfsck -json dir              # machine-readable report per dir
//
// The read-only mode scans and checksum-verifies every record of every
// segment (hint files are validated but never trusted in place of the
// scan) and never modifies the directory. -repair performs the same
// recovery a reopening store would: torn tails are truncated, corrupt
// ranges are copied into quarantine/ and skipped, and the rebuilt
// keydir is reported.
//
// Exit codes: 0 — every directory is clean (or was fully repaired);
// 1 — at least one directory has (or had) damage; 2 — usage or I/O
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cxlsim/internal/spill"
)

func main() {
	repair := flag.Bool("repair", false, "repair instead of verify: truncate torn tails, quarantine corrupt ranges")
	jsonOut := flag.Bool("json", false, "print one JSON report per directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cxlfsck [-repair] [-json] dir [dir...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	damaged := false
	for _, dir := range flag.Args() {
		rep, err := check(dir, *repair)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlfsck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		if !rep.Clean() {
			damaged = true
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Dir      string `json:"dir"`
				Repaired bool   `json:"repaired"`
				*spill.RecoveryReport
			}{dir, *repair && !rep.Clean(), rep}); err != nil {
				fmt.Fprintf(os.Stderr, "cxlfsck: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		verdict := "clean"
		if !rep.Clean() {
			verdict = "DAMAGED"
			if *repair {
				verdict = "repaired"
			}
		}
		fmt.Printf("%s: %s: %s\n", dir, verdict, rep)
	}
	if damaged {
		os.Exit(1)
	}
}

// check runs one directory through read-only Fsck or repairing
// recovery.
func check(dir string, repair bool) (*spill.RecoveryReport, error) {
	if !repair {
		return spill.Fsck(dir)
	}
	d, rep, err := spill.Open(spill.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	if cerr := d.Close(); cerr != nil {
		return nil, cerr
	}
	return rep, nil
}
