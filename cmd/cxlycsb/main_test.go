package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileSurfacesErrors pins the contract every dump path
// (-dump, -report, -trace, -metrics-out) relies on: writeFile must
// fail on an unwritable path, propagate fn's own error, and surface
// flush/close failures such as ENOSPC instead of leaving a silently
// truncated file behind.
func TestWriteFileSurfacesErrors(t *testing.T) {
	ok := filepath.Join(t.TempDir(), "out.txt")
	if err := writeFile(ok, func(w io.Writer) error {
		_, err := io.WriteString(w, "payload")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(ok); err != nil || string(b) != "payload" {
		t.Fatalf("wrote %q, %v", b, err)
	}

	if err := writeFile(filepath.Join(t.TempDir(), "no", "dir", "x"), func(io.Writer) error {
		return nil
	}); err == nil {
		t.Fatal("missing directory should error")
	}

	boom := errors.New("boom")
	err := writeFile(filepath.Join(t.TempDir(), "y"), func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("fn error not propagated: %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "writing ") {
		t.Fatalf("error %v does not name the path", err)
	}

	// /dev/full accepts opens and small buffered writes but fails the
	// flush with ENOSPC — exactly the failure mode writeFile exists to
	// catch. Skip quietly where the device is absent.
	if _, err := os.Stat("/dev/full"); err == nil {
		err := writeFile("/dev/full", func(w io.Writer) error {
			for i := 0; i < 10000; i++ {
				if _, err := fmt.Fprintln(w, "fill the buffer so flush hits the device"); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			t.Fatal("writeFile to /dev/full should surface ENOSPC")
		}
	}
}
