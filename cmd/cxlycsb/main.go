// Command cxlycsb runs a YCSB workload (stock property-file format)
// against the simulated KeyDB deployment and prints YCSB-client-style
// output — the §4.1 methodology as a standalone tool.
//
// Usage:
//
//	cxlycsb -config MMEM -workload A
//	cxlycsb -config 1:1 -spec path/to/workloada -ops 50000
//	cxlycsb -config Hot-Promote -workload B -trace trace.json  # open in Perfetto
//	cxlycsb -config 1:1 -workload A -faults examples/degrade-cxl.json
//	cxlycsb -config 1:1 -workload A -faults examples/degrade-cxl.json \
//	    -slo examples/slo/kvstore.json -report report.html
//	cxlycsb -list-configs
//
// -faults replays a deterministic fault schedule (docs/RELIABILITY.md)
// in a second, degraded pass on a fresh deployment and appends [FAULT]
// delta lines comparing it to the healthy run.
//
// -slo evaluates an SLO spec (docs/OBSERVABILITY.md) over fixed
// virtual-time windows in every pass and prints per-alert firing
// summaries; -report renders the windowed metrics and SLO evaluations
// of all passes as a self-contained HTML report, and -dump writes each
// pass's windowed snapshot as <prefix>-<label>.json for cxlreport.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cxlsim/internal/cliutil"
	"cxlsim/internal/fault"
	"cxlsim/internal/kvstore"
	"cxlsim/internal/obs"
	"cxlsim/internal/report"
	"cxlsim/internal/sim"
	"cxlsim/internal/slo"
	"cxlsim/internal/workload"
)

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxlycsb: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxlycsb: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	config := flag.String("config", "MMEM", "Table-1 configuration (see -list-configs)")
	wl := flag.String("workload", "A", "built-in YCSB workload: A, B, C, or D")
	spec := flag.String("spec", "", "path to a YCSB property file (overrides -workload)")
	ops := flag.Int("ops", 40_000, "measured operations")
	seed := flag.Int64("seed", 42, "workload seed")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (virtual time; load in Perfetto)")
	metrics := flag.String("metrics", "", "write a Prometheus text snapshot of the run's metrics")
	faults := flag.String("faults", "", "replay this fault schedule (JSON) in a degraded second pass")
	sloPath := flag.String("slo", "", "evaluate this SLO spec (JSON) over virtual-time windows")
	windowsMs := flag.Float64("windows", 0, "window length, virtual ms (0 = the SLO spec's window_ms, else 10)")
	reportPath := flag.String("report", "", "write a self-contained HTML report of the windowed run(s)")
	dump := flag.String("dump", "", "write each pass's windowed snapshot as <prefix>-<label>.json")
	spillDir := flag.String("spill-dir", "", "durable on-disk spill tier root (Flash configs only); each pass uses its own subdirectory")
	nodes := cliutil.Nodes(flag.CommandLine)
	shards := cliutil.Shards(flag.CommandLine)
	list := flag.Bool("list-configs", false, "list configurations and exit")
	flag.Parse()

	if *list {
		for _, c := range kvstore.Table1Configs() {
			fmt.Println(c)
		}
		return
	}

	if *ops < 1 {
		usageError("-ops must be >= 1")
	}
	if *windowsMs < 0 {
		usageError("-windows cannot be negative")
	}
	if err := cliutil.CheckNodes(*nodes); err != nil {
		usageError("%v", err)
	}
	if err := cliutil.CheckShards(*shards); err != nil {
		usageError("%v", err)
	}
	if *nodes == 1 && *shards != 1 {
		usageError("-shards needs -nodes > 1 (the single-node run is already one timeline)")
	}
	var wlSet, faultsSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workload":
			wlSet = true
		case "faults":
			faultsSet = true
		}
	})
	if wlSet && *spec != "" {
		usageError("-workload and -spec conflict; pick one")
	}
	if faultsSet && *faults == "" {
		usageError("-faults needs a schedule file")
	}
	var schedule *fault.Schedule
	if *faults != "" {
		s, err := fault.LoadSchedule(*faults)
		if err != nil {
			fatal("%v", err)
		}
		schedule = s
	}

	var sloSpec *slo.Spec
	if *sloPath != "" {
		s, err := slo.Load(*sloPath)
		if err != nil {
			fatal("%v", err)
		}
		sloSpec = s
	}
	// Any windowed consumer (SLO evaluation, HTML report, JSON dump, or
	// an explicit -windows) turns on windowed aggregation for every pass.
	windowed := sloSpec != nil || *reportPath != "" || *dump != "" || *windowsMs > 0
	windowNs := *windowsMs * 1e6
	if windowNs == 0 {
		if sloSpec != nil && sloSpec.WindowMs > 0 {
			windowNs = sloSpec.WindowMs * 1e6
		} else {
			windowNs = 10 * 1e6 // one kvstore epoch
		}
	}

	mix, records, err := resolveWorkload(*wl, *spec)
	if err != nil {
		fatal("%v", err)
	}

	if *nodes > 1 {
		// Cluster mode: the sharded multi-node path. The windowed stack
		// and the durable spill tier are single-node machinery.
		if windowed {
			usageError("-slo/-windows/-report/-dump are not supported with -nodes > 1")
		}
		if *spillDir != "" {
			usageError("-spill-dir is not supported with -nodes > 1")
		}
		runClusterMode(*config, mix, records, *nodes, *shards, *ops, *seed,
			schedule, *faults, *trace, *metrics)
		return
	}

	opts := kvstore.DeployOptions{SimKeys: 1 << 16}
	if records > 0 && records < uint64(opts.SimKeys) {
		opts.SimKeys = int(records)
	}
	if *spillDir != "" {
		// Per-pass subdirectories keep the healthy and degraded logs
		// (and their recovery reports) independent.
		opts.SpillDir = filepath.Join(*spillDir, "healthy")
	}
	d, err := kvstore.Deploy(kvstore.ConfigName(*config), opts)
	if err != nil {
		fatal("%v", err)
	}
	d.Warm(mix, 120, 100_000, *seed)
	rc := d.RunConfigFor(mix, *seed)
	rc.Ops = *ops

	instrumented := *trace != "" || *metrics != "" || windowed
	var ro *runObs
	if instrumented {
		ro = newRunObs(windowed, windowNs, sloSpec)
		ro.arm(&rc)
		obs.InstrumentMemsim(rc.Metrics)
		defer obs.InstrumentMemsim(nil)
	}
	res := kvstore.Run(d.Store, d.Alloc, rc)

	if *trace != "" {
		if err := writeTrace(*trace, rc.Tracer); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s (%d events, tracks: %s)\n",
			*trace, rc.Tracer.Len(), strings.Join(rc.Tracer.Tracks(), ", "))
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, rc.Metrics); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s\n", *metrics)
	}

	// YCSB-client-flavoured report.
	fmt.Printf("[OVERALL], Configuration, %s\n", *config)
	fmt.Printf("[OVERALL], Workload, %s\n", mix.Name)
	fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", res.ThroughputOpsPerSec)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		fmt.Printf("[READ], %gthPercentileLatency(us), %.1f\n", p, res.ReadLatency.Percentile(p)/1e3)
	}
	fmt.Printf("[READ], AverageLatency(us), %.1f\n", res.ReadLatency.Mean()/1e3)
	fmt.Printf("[CACHE], HitRate, %.4f\n", res.HitRate)
	if res.Migrated > 0 {
		fmt.Printf("[TIERING], MigratedBytes, %d\n", res.Migrated)
	}
	if *spillDir != "" {
		printSpill(d.Store, "healthy")
		if err := d.Store.CloseSpill(); err != nil {
			fatal("closing spill tier: %v", err)
		}
	}

	runs := []*report.Run{ro.runDump("healthy", *config, mix.Name, "")}

	if schedule != nil {
		dopts := opts
		if *spillDir != "" {
			dopts.SpillDir = filepath.Join(*spillDir, "degraded")
		}
		fr, dro, dstore, err := runDegraded(*config, dopts, mix, *seed, *ops, schedule, windowed, windowNs, sloSpec)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("[FAULT], Schedule, %s\n", *faults)
		fmt.Printf("[FAULT], Throughput(ops/sec), %.1f (%+.1f%%)\n",
			fr.ThroughputOpsPerSec, delta(fr.ThroughputOpsPerSec, res.ThroughputOpsPerSec))
		for _, p := range []float64{50, 99} {
			fmt.Printf("[FAULT], READ %gthPercentileLatency(us), %.1f (%+.1f%%)\n",
				p, fr.ReadLatency.Percentile(p)/1e3,
				delta(fr.ReadLatency.Percentile(p), res.ReadLatency.Percentile(p)))
		}
		fmt.Printf("[FAULT], Timeouts, %d\n", fr.Timeouts)
		fmt.Printf("[FAULT], Retries, %d\n", fr.Retries)
		fmt.Printf("[FAULT], FailedOps, %d\n", fr.Failed)
		if *spillDir != "" {
			printSpill(dstore, "degraded")
			if err := dstore.CloseSpill(); err != nil {
				fatal("closing spill tier: %v", err)
			}
		}
		runs = append(runs, dro.runDump("degraded", *config, mix.Name, *faults))
	}

	var live []*report.Run
	for _, r := range runs {
		if r != nil {
			live = append(live, r)
		}
	}
	if sloSpec != nil {
		for _, r := range live {
			printSLO(r)
		}
	}
	if *dump != "" {
		for _, r := range live {
			path := *dump + "-" + r.Label + ".json"
			if err := writeRunDump(path, r); err != nil {
				fatal("%v", err)
			}
			fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s (%d windows)\n", path, len(r.Windows))
		}
	}
	if *reportPath != "" {
		if err := writeReport(*reportPath, live); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s (%d run(s))\n", *reportPath, len(live))
	}
}

// runClusterMode executes the -nodes > 1 path: a healthy sharded
// cluster run (and, with -faults, a degraded second pass on fresh
// deployments) printing the same YCSB-client-flavoured report plus
// [CLUSTER] lines. Output is byte-identical at any -shards value.
func runClusterMode(config string, mix workload.YCSBMix, records uint64, nodes, shards, ops int, seed int64,
	schedule *fault.Schedule, faultsPath, tracePath, metricsPath string) {
	opts := kvstore.DeployOptions{SimKeys: 1 << 16}
	if records > 0 && records < uint64(opts.SimKeys) {
		opts.SimKeys = int(records)
	}
	perNode := ops / nodes
	if perNode < 1 {
		perNode = 1
	}
	cc := kvstore.ClusterConfig{
		Nodes:      nodes,
		Shards:     shards,
		Config:     kvstore.ConfigName(config),
		Deploy:     opts,
		Mix:        mix,
		OpsPerNode: perNode,
		Seed:       seed,
		WarmEpochs: 120,
		WarmDraws:  100_000,
	}
	if metricsPath != "" {
		cc.Metrics = obs.NewRegistry()
	}
	if tracePath != "" {
		cc.Tracer = obs.NewTracer()
	}
	res, err := kvstore.RunCluster(cc)
	if err != nil {
		fatal("%v", err)
	}

	if tracePath != "" {
		if err := writeTrace(tracePath, cc.Tracer); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s (%d events, node 0 only)\n", tracePath, cc.Tracer.Len())
	}
	if metricsPath != "" {
		if err := writeMetrics(metricsPath, cc.Metrics); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s\n", metricsPath)
	}

	m := res.Merged
	fmt.Printf("[OVERALL], Configuration, %s\n", config)
	fmt.Printf("[OVERALL], Workload, %s\n", mix.Name)
	fmt.Printf("[OVERALL], Nodes, %d\n", nodes)
	// The shard count is an execution detail, not a result: it goes to
	// stderr so stdout is byte-identical at any -shards value.
	fmt.Fprintf(os.Stderr, "cxlycsb: %d nodes on %d shard(s)\n", nodes, res.Shards)
	fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", m.ThroughputOpsPerSec)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		fmt.Printf("[READ], %gthPercentileLatency(us), %.1f\n", p, m.ReadLatency.Percentile(p)/1e3)
	}
	fmt.Printf("[READ], AverageLatency(us), %.1f\n", m.ReadLatency.Mean()/1e3)
	fmt.Printf("[CACHE], HitRate, %.4f\n", m.HitRate)
	fmt.Printf("[CLUSTER], ForwardedOps, %d\n", m.Forwarded)
	fmt.Printf("[CLUSTER], Epochs, %d\n", res.Epochs)
	fmt.Printf("[CLUSTER], Events, %d\n", res.Events)
	for i, r := range res.PerNode {
		fmt.Printf("[CLUSTER], Node %d, Throughput(ops/sec), %.1f\n", i, r.ThroughputOpsPerSec)
	}

	if schedule != nil {
		dcc := cc
		dcc.FaultSchedule = schedule
		dcc.Metrics = nil
		dcc.Tracer = nil
		dres, err := kvstore.RunCluster(dcc)
		if err != nil {
			fatal("%v", err)
		}
		dm := dres.Merged
		fmt.Printf("[FAULT], Schedule, %s\n", faultsPath)
		fmt.Printf("[FAULT], Throughput(ops/sec), %.1f (%+.1f%%)\n",
			dm.ThroughputOpsPerSec, delta(dm.ThroughputOpsPerSec, m.ThroughputOpsPerSec))
		for _, p := range []float64{50, 99} {
			fmt.Printf("[FAULT], READ %gthPercentileLatency(us), %.1f (%+.1f%%)\n",
				p, dm.ReadLatency.Percentile(p)/1e3,
				delta(dm.ReadLatency.Percentile(p), m.ReadLatency.Percentile(p)))
		}
		fmt.Printf("[FAULT], Timeouts, %d\n", dm.Timeouts)
		fmt.Printf("[FAULT], Retries, %d\n", dm.Retries)
		fmt.Printf("[FAULT], FailedOps, %d\n", dm.Failed)
	}
}

// printSLO appends [SLO] lines: per-objective attainment over all
// windows and per-alert firing window counts.
func printSLO(r *report.Run) {
	if r.SLO == nil {
		return
	}
	met := map[string]int{}
	firing := map[string]int{}
	for _, w := range r.SLO.Windows {
		for _, o := range w.Objectives {
			if o.Met {
				met[o.Name]++
			}
		}
		for _, a := range w.Alerts {
			if a.Firing {
				firing[a.Name]++
			}
		}
	}
	n := len(r.SLO.Windows)
	for _, o := range r.SLO.Spec.Objectives {
		fmt.Printf("[SLO], %s, %s, WindowsMet, %d/%d\n", r.Label, o.Name, met[o.Name], n)
	}
	for _, a := range r.SLO.Spec.Alerts {
		fmt.Printf("[SLO], %s, alert %s, FiringWindows, %d/%d\n", r.Label, a.Name, firing[a.Name], n)
	}
}

// runObs bundles one pass's observability surface: registry, tracer,
// and (when windowed) the window aggregator plus SLO evaluator.
type runObs struct {
	reg  *obs.Registry
	tr   *obs.Tracer
	win  *obs.Windows
	eval *slo.Evaluator
}

func newRunObs(windowed bool, windowNs float64, spec *slo.Spec) *runObs {
	ro := &runObs{reg: obs.NewRegistry(), tr: obs.NewTracer()}
	if windowed {
		ro.win = obs.NewWindows(ro.reg, sim.Time(windowNs))
		if spec != nil {
			ro.eval = slo.NewEvaluator(*spec)
			ro.eval.Instrument(ro.reg, ro.tr)
			ro.eval.Bind(ro.win)
		}
	}
	return ro
}

// arm points a RunConfig at this pass's observability surface.
func (ro *runObs) arm(rc *kvstore.RunConfig) {
	rc.Metrics = ro.reg
	rc.Tracer = ro.tr
	rc.Windows = ro.win
}

// runDump assembles the pass into a report.Run, or nil when windowed
// aggregation was off.
func (ro *runObs) runDump(label, config, wl, schedule string) *report.Run {
	if ro == nil || ro.win == nil {
		return nil
	}
	r := &report.Run{
		Label:    label,
		Config:   config,
		Workload: wl,
		Schedule: schedule,
		WindowNs: float64(ro.win.Length()),
		Windows:  ro.win.Snapshot(),
	}
	if ro.eval != nil {
		r.SLO = ro.eval.Evaluation()
	}
	return r
}

// delta is the percent change of degraded vs healthy.
func delta(degraded, healthy float64) float64 {
	if healthy == 0 {
		return 0
	}
	return (degraded/healthy - 1) * 100
}

// runDegraded replays the fault schedule against a fresh deployment of
// the same configuration, warmed identically to the healthy pass, with
// its own registry/window stack so the two passes never share state.
func runDegraded(config string, opts kvstore.DeployOptions, mix workload.YCSBMix, seed int64, ops int,
	s *fault.Schedule, windowed bool, windowNs float64, spec *slo.Spec) (kvstore.Result, *runObs, *kvstore.Store, error) {
	d, err := kvstore.Deploy(kvstore.ConfigName(config), opts)
	if err != nil {
		return kvstore.Result{}, nil, nil, err
	}
	d.Warm(mix, 120, 100_000, seed)
	rc, err := d.RunConfigWithFaults(mix, seed, s)
	if err != nil {
		return kvstore.Result{}, nil, nil, err
	}
	rc.Ops = ops
	var ro *runObs
	if windowed {
		ro = newRunObs(true, windowNs, spec)
		ro.arm(&rc)
	}
	return kvstore.Run(d.Store, d.Alloc, rc), ro, d.Store, nil
}

// printSpill appends [SPILL] lines for one pass of the durable tier:
// I/O totals, the recovery report from opening the directory, and —
// when a brownout was in play — the degraded-mode accounting.
func printSpill(st *kvstore.Store, label string) {
	s := st.SpillStats()
	fmt.Printf("[SPILL], %s, RecordsWritten, %d\n", label, s.RecordsWritten)
	fmt.Printf("[SPILL], %s, LiveKeys, %d\n", label, s.LiveKeys)
	fmt.Printf("[SPILL], %s, Segments, %d\n", label, s.Segments)
	fmt.Printf("[SPILL], %s, Fsyncs, %d\n", label, s.Fsyncs)
	fmt.Printf("[SPILL], %s, WriteAmplification, %.3f\n", label, s.WriteAmplification())
	if rep := st.SpillRecovery(); rep != nil {
		fmt.Printf("[SPILL], %s, RecoveredLiveKeys, %d\n", label, rep.LiveKeys)
		fmt.Printf("[SPILL], %s, RecoveryClean, %t\n", label, rep.Clean())
	}
	if cmp := st.WriteAmpComparison(); cmp.LogAdvantage > 0 {
		fmt.Printf("[SPILL], %s, LSMWriteAmp, %.3f\n", label, cmp.LSM)
		fmt.Printf("[SPILL], %s, LogVsLSMAdvantage, %.3f\n", label, cmp.LogAdvantage)
	}
	shed, catchup, mismatch := st.SpillCounts()
	if shed+catchup+mismatch > 0 {
		fmt.Printf("[SPILL], %s, ShedWrites, %d\n", label, shed)
		fmt.Printf("[SPILL], %s, CatchupWrites, %d\n", label, catchup)
		fmt.Printf("[SPILL], %s, PendingDirtyKeys, %d\n", label, st.SpillDirty())
		fmt.Printf("[SPILL], %s, ReadMismatches, %d\n", label, mismatch)
	}
}

// writeFile creates path, hands fn a buffered writer, and surfaces
// every failure — fn's error, the buffer flush, AND the close, which is
// where deferred write errors (ENOSPC, quota) actually appear on many
// filesystems — as a single command failure. No dump may silently
// truncate.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	werr := fn(w)
	if werr == nil {
		werr = w.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("writing %s: %w", path, werr)
	}
	return nil
}

// writeRunDump serializes one pass's windowed snapshot + SLO evaluation
// as JSON for cxlreport.
func writeRunDump(path string, r *report.Run) error {
	return writeFile(path, r.WriteJSON)
}

// writeReport renders the passes as a self-contained HTML report.
func writeReport(path string, runs []*report.Run) error {
	return writeFile(path, func(w io.Writer) error { return report.WriteHTML(w, runs) })
}

// writeTrace serializes the run's virtual-time trace as Chrome
// trace-event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	return writeFile(path, tr.WriteJSON)
}

// writeMetrics dumps the registry in Prometheus text format.
func writeMetrics(path string, reg *obs.Registry) error {
	return writeFile(path, func(w io.Writer) error { return obs.WriteProm(w, reg.Snapshot()) })
}

// resolveWorkload picks the op mix from a spec file or the built-ins.
func resolveWorkload(builtin, specPath string) (workload.YCSBMix, uint64, error) {
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return workload.YCSBMix{}, 0, err
		}
		defer f.Close()
		return workload.ParseSpec(f)
	}
	switch strings.ToUpper(builtin) {
	case "A":
		return workload.YCSBA, 0, nil
	case "B":
		return workload.YCSBB, 0, nil
	case "C":
		return workload.YCSBC, 0, nil
	case "D":
		return workload.YCSBD, 0, nil
	default:
		return workload.YCSBMix{}, 0, fmt.Errorf("unknown workload %q (want A-D or -spec)", builtin)
	}
}
