// Command cxlycsb runs a YCSB workload (stock property-file format)
// against the simulated KeyDB deployment and prints YCSB-client-style
// output — the §4.1 methodology as a standalone tool.
//
// Usage:
//
//	cxlycsb -config MMEM -workload A
//	cxlycsb -config 1:1 -spec path/to/workloada -ops 50000
//	cxlycsb -config Hot-Promote -workload B -trace trace.json  # open in Perfetto
//	cxlycsb -list-configs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cxlsim/internal/kvstore"
	"cxlsim/internal/obs"
	"cxlsim/internal/workload"
)

func main() {
	config := flag.String("config", "MMEM", "Table-1 configuration (see -list-configs)")
	wl := flag.String("workload", "A", "built-in YCSB workload: A, B, C, or D")
	spec := flag.String("spec", "", "path to a YCSB property file (overrides -workload)")
	ops := flag.Int("ops", 40_000, "measured operations")
	seed := flag.Int64("seed", 42, "workload seed")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (virtual time; load in Perfetto)")
	metrics := flag.String("metrics", "", "write a Prometheus text snapshot of the run's metrics")
	list := flag.Bool("list-configs", false, "list configurations and exit")
	flag.Parse()

	if *list {
		for _, c := range kvstore.Table1Configs() {
			fmt.Println(c)
		}
		return
	}

	mix, records, err := resolveWorkload(*wl, *spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
		os.Exit(1)
	}

	opts := kvstore.DeployOptions{SimKeys: 1 << 16}
	if records > 0 && records < uint64(opts.SimKeys) {
		opts.SimKeys = int(records)
	}
	d, err := kvstore.Deploy(kvstore.ConfigName(*config), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
		os.Exit(1)
	}
	d.Warm(mix, 120, 100_000, *seed)
	rc := d.RunConfigFor(mix, *seed)
	rc.Ops = *ops

	instrumented := *trace != "" || *metrics != ""
	if instrumented {
		rc.Metrics = obs.NewRegistry()
		rc.Tracer = obs.NewTracer()
		obs.InstrumentMemsim(rc.Metrics)
		defer obs.InstrumentMemsim(nil)
	}
	res := kvstore.Run(d.Store, d.Alloc, rc)

	if *trace != "" {
		if err := writeTrace(*trace, rc.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s (%d events, tracks: %s)\n",
			*trace, rc.Tracer.Len(), strings.Join(rc.Tracer.Tracks(), ", "))
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, rc.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s\n", *metrics)
	}

	// YCSB-client-flavoured report.
	fmt.Printf("[OVERALL], Configuration, %s\n", *config)
	fmt.Printf("[OVERALL], Workload, %s\n", mix.Name)
	fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", res.ThroughputOpsPerSec)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		fmt.Printf("[READ], %gthPercentileLatency(us), %.1f\n", p, res.ReadLatency.Percentile(p)/1e3)
	}
	fmt.Printf("[READ], AverageLatency(us), %.1f\n", res.ReadLatency.Mean()/1e3)
	fmt.Printf("[CACHE], HitRate, %.4f\n", res.HitRate)
	if res.Migrated > 0 {
		fmt.Printf("[TIERING], MigratedBytes, %d\n", res.Migrated)
	}
}

// writeTrace serializes the run's virtual-time trace as Chrome
// trace-event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the registry in Prometheus text format.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteProm(f, reg.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resolveWorkload picks the op mix from a spec file or the built-ins.
func resolveWorkload(builtin, specPath string) (workload.YCSBMix, uint64, error) {
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return workload.YCSBMix{}, 0, err
		}
		defer f.Close()
		return workload.ParseSpec(f)
	}
	switch strings.ToUpper(builtin) {
	case "A":
		return workload.YCSBA, 0, nil
	case "B":
		return workload.YCSBB, 0, nil
	case "C":
		return workload.YCSBC, 0, nil
	case "D":
		return workload.YCSBD, 0, nil
	default:
		return workload.YCSBMix{}, 0, fmt.Errorf("unknown workload %q (want A-D or -spec)", builtin)
	}
}
