// Command cxlycsb runs a YCSB workload (stock property-file format)
// against the simulated KeyDB deployment and prints YCSB-client-style
// output — the §4.1 methodology as a standalone tool.
//
// Usage:
//
//	cxlycsb -config MMEM -workload A
//	cxlycsb -config 1:1 -spec path/to/workloada -ops 50000
//	cxlycsb -config Hot-Promote -workload B -trace trace.json  # open in Perfetto
//	cxlycsb -config 1:1 -workload A -faults examples/degrade-cxl.json
//	cxlycsb -list-configs
//
// -faults replays a deterministic fault schedule (docs/RELIABILITY.md)
// in a second, degraded pass on a fresh deployment and appends [FAULT]
// delta lines comparing it to the healthy run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cxlsim/internal/fault"
	"cxlsim/internal/kvstore"
	"cxlsim/internal/obs"
	"cxlsim/internal/workload"
)

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxlycsb: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	config := flag.String("config", "MMEM", "Table-1 configuration (see -list-configs)")
	wl := flag.String("workload", "A", "built-in YCSB workload: A, B, C, or D")
	spec := flag.String("spec", "", "path to a YCSB property file (overrides -workload)")
	ops := flag.Int("ops", 40_000, "measured operations")
	seed := flag.Int64("seed", 42, "workload seed")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (virtual time; load in Perfetto)")
	metrics := flag.String("metrics", "", "write a Prometheus text snapshot of the run's metrics")
	faults := flag.String("faults", "", "replay this fault schedule (JSON) in a degraded second pass")
	list := flag.Bool("list-configs", false, "list configurations and exit")
	flag.Parse()

	if *list {
		for _, c := range kvstore.Table1Configs() {
			fmt.Println(c)
		}
		return
	}

	if *ops < 1 {
		usageError("-ops must be >= 1")
	}
	var wlSet, faultsSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workload":
			wlSet = true
		case "faults":
			faultsSet = true
		}
	})
	if wlSet && *spec != "" {
		usageError("-workload and -spec conflict; pick one")
	}
	if faultsSet && *faults == "" {
		usageError("-faults needs a schedule file")
	}
	var schedule *fault.Schedule
	if *faults != "" {
		s, err := fault.LoadSchedule(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
			os.Exit(1)
		}
		schedule = s
	}

	mix, records, err := resolveWorkload(*wl, *spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
		os.Exit(1)
	}

	opts := kvstore.DeployOptions{SimKeys: 1 << 16}
	if records > 0 && records < uint64(opts.SimKeys) {
		opts.SimKeys = int(records)
	}
	d, err := kvstore.Deploy(kvstore.ConfigName(*config), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
		os.Exit(1)
	}
	d.Warm(mix, 120, 100_000, *seed)
	rc := d.RunConfigFor(mix, *seed)
	rc.Ops = *ops

	instrumented := *trace != "" || *metrics != ""
	if instrumented {
		rc.Metrics = obs.NewRegistry()
		rc.Tracer = obs.NewTracer()
		obs.InstrumentMemsim(rc.Metrics)
		defer obs.InstrumentMemsim(nil)
	}
	res := kvstore.Run(d.Store, d.Alloc, rc)

	if *trace != "" {
		if err := writeTrace(*trace, rc.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s (%d events, tracks: %s)\n",
			*trace, rc.Tracer.Len(), strings.Join(rc.Tracer.Tracks(), ", "))
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, rc.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cxlycsb: wrote %s\n", *metrics)
	}

	// YCSB-client-flavoured report.
	fmt.Printf("[OVERALL], Configuration, %s\n", *config)
	fmt.Printf("[OVERALL], Workload, %s\n", mix.Name)
	fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", res.ThroughputOpsPerSec)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		fmt.Printf("[READ], %gthPercentileLatency(us), %.1f\n", p, res.ReadLatency.Percentile(p)/1e3)
	}
	fmt.Printf("[READ], AverageLatency(us), %.1f\n", res.ReadLatency.Mean()/1e3)
	fmt.Printf("[CACHE], HitRate, %.4f\n", res.HitRate)
	if res.Migrated > 0 {
		fmt.Printf("[TIERING], MigratedBytes, %d\n", res.Migrated)
	}

	if schedule != nil {
		fr, err := runDegraded(*config, opts, mix, *seed, *ops, schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cxlycsb: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[FAULT], Schedule, %s\n", *faults)
		fmt.Printf("[FAULT], Throughput(ops/sec), %.1f (%+.1f%%)\n",
			fr.ThroughputOpsPerSec, delta(fr.ThroughputOpsPerSec, res.ThroughputOpsPerSec))
		for _, p := range []float64{50, 99} {
			fmt.Printf("[FAULT], READ %gthPercentileLatency(us), %.1f (%+.1f%%)\n",
				p, fr.ReadLatency.Percentile(p)/1e3,
				delta(fr.ReadLatency.Percentile(p), res.ReadLatency.Percentile(p)))
		}
		fmt.Printf("[FAULT], Timeouts, %d\n", fr.Timeouts)
		fmt.Printf("[FAULT], Retries, %d\n", fr.Retries)
		fmt.Printf("[FAULT], FailedOps, %d\n", fr.Failed)
	}
}

// delta is the percent change of degraded vs healthy.
func delta(degraded, healthy float64) float64 {
	if healthy == 0 {
		return 0
	}
	return (degraded/healthy - 1) * 100
}

// runDegraded replays the fault schedule against a fresh deployment of
// the same configuration, warmed identically to the healthy pass.
func runDegraded(config string, opts kvstore.DeployOptions, mix workload.YCSBMix, seed int64, ops int, s *fault.Schedule) (kvstore.Result, error) {
	d, err := kvstore.Deploy(kvstore.ConfigName(config), opts)
	if err != nil {
		return kvstore.Result{}, err
	}
	d.Warm(mix, 120, 100_000, seed)
	rc, err := d.RunConfigWithFaults(mix, seed, s)
	if err != nil {
		return kvstore.Result{}, err
	}
	rc.Ops = ops
	return kvstore.Run(d.Store, d.Alloc, rc), nil
}

// writeTrace serializes the run's virtual-time trace as Chrome
// trace-event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the registry in Prometheus text format.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteProm(f, reg.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resolveWorkload picks the op mix from a spec file or the built-ins.
func resolveWorkload(builtin, specPath string) (workload.YCSBMix, uint64, error) {
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return workload.YCSBMix{}, 0, err
		}
		defer f.Close()
		return workload.ParseSpec(f)
	}
	switch strings.ToUpper(builtin) {
	case "A":
		return workload.YCSBA, 0, nil
	case "B":
		return workload.YCSBB, 0, nil
	case "C":
		return workload.YCSBC, 0, nil
	case "D":
		return workload.YCSBD, 0, nil
	default:
		return workload.YCSBMix{}, 0, fmt.Errorf("unknown workload %q (want A-D or -spec)", builtin)
	}
}
