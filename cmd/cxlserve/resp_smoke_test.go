package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRESPSmoke is the end-to-end serving smoke test (`make resp-smoke`):
// it builds the real binary, starts it with the RESP front end on an
// ephemeral port, drives a pipelined command mix over a raw TCP
// connection asserting byte-exact replies, checks the per-command
// counters landed in /metrics, then SIGINTs and asserts a clean drain.
func TestRESPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full binary")
	}

	bin := filepath.Join(t.TempDir(), "cxlserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	spillDir := t.TempDir()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-resp", "127.0.0.1:0",
		"-spill-dir", spillDir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Scan startup output for the two ephemeral addresses.
	respAddr, httpAddr := scanAddrs(t, stdout)
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	conn, err := net.DialTimeout("tcp", respAddr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial RESP %s: %v", respAddr, err)
	}
	defer conn.Close()

	// One pipelined burst: every command category, single write.
	req := "*1\r\n$4\r\nPING\r\n" +
		"*3\r\n$3\r\nSET\r\n$5\r\nsmoke\r\n$5\r\nhello\r\n" +
		"*2\r\n$3\r\nGET\r\n$5\r\nsmoke\r\n" +
		"*2\r\n$6\r\nEXISTS\r\n$5\r\nsmoke\r\n" +
		"*2\r\n$4\r\nINCR\r\n$3\r\nctr\r\n" +
		"*5\r\n$4\r\nMSET\r\n$1\r\na\r\n$1\r\n1\r\n$1\r\nb\r\n$1\r\n2\r\n" +
		"*3\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n" +
		"*2\r\n$3\r\nDEL\r\n$5\r\nsmoke\r\n" +
		"*2\r\n$3\r\nGET\r\n$5\r\nsmoke\r\n"
	want := "+PONG\r\n" +
		"+OK\r\n" +
		"$5\r\nhello\r\n" +
		":1\r\n" +
		":1\r\n" +
		"+OK\r\n" +
		"*2\r\n$1\r\n1\r\n$1\r\n2\r\n" +
		":1\r\n" +
		"$-1\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read replies: %v (got %q so far)", err, got)
	}
	if string(got) != want {
		t.Fatalf("pipelined replies:\n got %q\nwant %q", got, want)
	}

	// Per-command metrics must be visible over the HTTP side.
	metrics := fetchMetrics(t, httpAddr)
	for _, want := range []string{
		`resp_commands_total{cmd="ping"} 1`,
		`resp_commands_total{cmd="get"} 2`,
		`resp_commands_total{cmd="set"} 1`,
		"resp_command_service_ns",
		"resp_connections_open",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Graceful drain: SIGINT, clean exit, spill closed exactly once.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGINT: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("drain timed out\nstderr:\n%s", stderr.String())
	}
	for _, want := range []string{"cxlserve: RESP drained", "cxlserve: drained, bye"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
	// The connection must be gone after drain.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection still alive after drain")
	}
}

// scanAddrs reads startup lines until both listener addresses appear.
func scanAddrs(t *testing.T, stdout io.Reader) (respAddr, httpAddr string) {
	t.Helper()
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for (respAddr == "" || httpAddr == "") && sc.Scan() {
		line := sc.Text()
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for listener addresses")
		}
		if rest, ok := strings.CutPrefix(line, "cxlserve: RESP listening on "); ok {
			respAddr = strings.TrimSpace(rest)
		}
		if i := strings.Index(line, " listening on "); i >= 0 && !strings.Contains(line, "RESP") {
			httpAddr = strings.TrimSpace(line[i+len(" listening on "):])
		}
	}
	if respAddr == "" || httpAddr == "" {
		t.Fatalf("listener addresses not announced (resp=%q http=%q, scan err=%v)",
			respAddr, httpAddr, sc.Err())
	}
	return respAddr, httpAddr
}

func fetchMetrics(t *testing.T, httpAddr string) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", httpAddr))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
