// Command cxlserve runs the paper's Fig. 9 LLM serving stack as an HTTP
// service over the simulated cluster.
//
// Usage:
//
//	cxlserve -addr :8080 -policy 3:1 -backends 5
//	curl -XPOST localhost:8080/generate -d '{"prompt":"hi","max_tokens":64}'
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"cxlsim/internal/llm"
	"cxlsim/internal/llmserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	policy := flag.String("policy", "MMEM", "placement policy: MMEM, 3:1, 1:1, or 1:3")
	backends := flag.Int("backends", 4, "CPU inference backends (12 threads each)")
	flag.Parse()

	var chosen *llm.Policy
	for _, p := range llm.Fig10Policies() {
		if p.Name == *policy {
			p := p
			chosen = &p
			break
		}
	}
	if chosen == nil {
		log.Fatalf("cxlserve: unknown policy %q", *policy)
	}
	if *backends < 1 {
		log.Fatal("cxlserve: need at least one backend")
	}

	s := llmserve.New(llm.NewCluster(), *chosen, *backends)
	fmt.Printf("cxlserve: policy=%s backends=%d listening on %s\n", chosen.Name, *backends, *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
