// Command cxlserve runs the paper's Fig. 9 LLM serving stack as an HTTP
// service over the simulated cluster, and optionally a RESP (Redis wire
// protocol) front end over the simulated KeyDB store.
//
// Usage:
//
//	cxlserve                       # defaults: -addr :8080 -policy MMEM -backends 4
//	cxlserve -policy 3:1 -backends 5
//	cxlserve -policy 1:1 -faults examples/degrade-cxl.json
//	cxlserve -resp :6379           # serve GET/SET/... to redis-cli/redis-benchmark
//	curl -XPOST localhost:8080/generate -d '{"prompt":"hi","max_tokens":64}'
//	curl localhost:8080/health         # serving health + degraded resources
//	curl localhost:8080/metrics        # Prometheus text exposition
//	curl localhost:8080/metrics.json   # legacy JSON metrics
//	curl localhost:8080/trace.json     # Chrome trace-event JSON (Perfetto)
//	curl localhost:8080/slo            # windowed SLO evaluation (with -slo)
//	redis-cli -p 6379 set k v          # with -resp :6379 (see docs/SERVING.md)
//	go tool pprof localhost:8080/debug/pprof/profile   # live CPU profile
//	go tool pprof localhost:8080/debug/pprof/heap      # live heap profile
//
// -faults applies a fault schedule (docs/RELIABILITY.md) to the devices
// before the cluster is built, so the serving rate reflects the degraded
// fabric; /health reports the degraded resources and /generate responses
// carry "degraded": true. The schedule's client block (plus -shed-after-ms)
// configures the degraded-mode policy: shed with 503 + Retry-After under
// queue pressure, 504 when a generation exceeds the virtual timeout. A
// schedule that degrades the SSD browns out the RESP front end's durable
// tier: writes answer -BUSY, disk-backed reads -LOADING.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// HTTP requests and RESP connections for up to -drain-timeout. All
// teardown runs through deferred cleanup in run() — error exits sync and
// close the spill tier too (main never calls os.Exit past a defer).
//
// The debug mux (net/http/pprof under /debug/pprof/, expvar under
// /debug/vars) is registered by obs.RegisterDebug; one-shot commands
// (cxlbench, cxltrace) take -cpuprofile/-memprofile flags instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cxlsim/internal/cliutil"
	"cxlsim/internal/fault"
	"cxlsim/internal/kvstore"
	"cxlsim/internal/llm"
	"cxlsim/internal/llmserve"
	"cxlsim/internal/obs"
	"cxlsim/internal/resp"
	"cxlsim/internal/slo"
	"cxlsim/internal/spill"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
)

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxlserve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// config carries the validated flag values into run().
type config struct {
	addr         string
	policy       llm.Policy
	backends     int
	faults       string
	sloPath      string
	windowsMs    float64
	shedAfterMs  float64
	drainTimeout time.Duration
	spillDir     string
	fleetSize    int
	shards       int
	respAddr     string
	respMaxConns int
	respFrame    int
}

func main() {
	cfg := parseFlags()
	// Everything that opens resources lives in run(): its defers execute
	// on every return path, so an error exit still syncs and closes the
	// spill tier — the os.Exit-skips-defers teardown bug class is
	// structurally gone.
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cxlserve: %v\n", err)
		os.Exit(1)
	}
}

// parseFlags parses and validates the command line. Usage errors exit
// before any resource is opened, so exiting here skips no cleanup.
func parseFlags() config {
	names := policyNames()
	addr := flag.String("addr", ":8080", "HTTP listen address")
	policy := flag.String("policy", "MMEM", "placement policy: "+strings.Join(names, ", "))
	backends := flag.Int("backends", 4, "CPU inference backends (12 threads each)")
	faults := flag.String("faults", "", "apply this fault schedule (JSON) to the fabric before serving")
	sloPath := flag.String("slo", "", "evaluate this SLO spec (JSON) over virtual-time windows; serves /slo")
	windowsMs := flag.Float64("windows", 0, "SLO window length, virtual ms (0 = the spec's window_ms, else 1000)")
	shedAfterMs := flag.Float64("shed-after-ms", 0, "shed requests (503) when virtual queue wait exceeds this (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	spillDir := flag.String("spill-dir", "", "open (recovering if needed) a durable spill tier and expose its I/O and recovery metrics at /metrics")
	fleetSize := flag.Int("fleet", 1, "simulated serving instances for the startup fleet capacity preview (>1 runs the sharded fleet simulation)")
	shards := cliutil.Shards(flag.CommandLine)
	respFlags := cliutil.RESP(flag.CommandLine)
	flag.Parse()

	var chosen *llm.Policy
	for _, p := range llm.Fig10Policies() {
		if p.Name == *policy {
			p := p
			chosen = &p
			break
		}
	}
	if chosen == nil {
		usageError("unknown policy %q (want one of %s)", *policy, strings.Join(names, ", "))
	}
	if *backends < 1 {
		usageError("need at least one backend")
	}
	if *shedAfterMs < 0 {
		usageError("-shed-after-ms cannot be negative")
	}
	if *windowsMs < 0 {
		usageError("-windows cannot be negative")
	}
	if *fleetSize < 1 {
		usageError("-fleet must be at least 1 (got %d)", *fleetSize)
	}
	if err := cliutil.CheckShards(*shards); err != nil {
		usageError("%v", err)
	}
	if *fleetSize == 1 && *shards != 1 {
		usageError("-shards needs -fleet > 1 (a single instance is one timeline)")
	}
	if err := cliutil.CheckRESP(respFlags, cliutil.RESPTuningSet(flag.CommandLine)); err != nil {
		usageError("%v", err)
	}
	var faultsSet bool
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "faults" {
			faultsSet = true
		}
	})
	if faultsSet && *faults == "" {
		usageError("-faults needs a schedule file")
	}

	return config{
		addr:         *addr,
		policy:       *chosen,
		backends:     *backends,
		faults:       *faults,
		sloPath:      *sloPath,
		windowsMs:    *windowsMs,
		shedAfterMs:  *shedAfterMs,
		drainTimeout: *drainTimeout,
		spillDir:     *spillDir,
		fleetSize:    *fleetSize,
		shards:       *shards,
		respAddr:     *respFlags.Addr,
		respMaxConns: *respFlags.MaxConns,
		respFrame:    *respFlags.FrameBytes,
	}
}

func run(cfg config) error {
	// Degrade the devices before the cluster is built: placements and the
	// steady serving rate then reflect the faulted fabric. A wall-clock
	// server has no virtual event loop to sequence transitions through, so
	// the whole schedule is applied up front.
	m := topology.TestbedSNC()
	var inj *fault.Injector
	var schedule *fault.Schedule
	if cfg.faults != "" {
		var err error
		schedule, err = fault.LoadSchedule(cfg.faults)
		if err != nil {
			return err
		}
		inj, err = fault.NewInjector(schedule, m)
		if err != nil {
			return err
		}
		inj.ApplyAll()
	}

	cluster := llm.NewClusterOn(m)
	s := llmserve.New(cluster, cfg.policy, cfg.backends)

	rs := llmserve.Resilience{ShedAfterNs: cfg.shedAfterMs * 1e6}
	if inj != nil {
		pol := schedule.ClientPolicy()
		rs.TimeoutNs = pol.TimeoutNs
		rs.BackoffNs = pol.BackoffNs
		rs.MaxRetries = pol.MaxRetries
		s.SetHealth(func() (bool, []string) {
			return inj.ActiveCount() > 0, inj.DegradedResources()
		})
	}
	s.SetResilience(rs)

	if cfg.sloPath != "" {
		spec, err := slo.Load(cfg.sloPath)
		if err != nil {
			return err
		}
		if err := s.SetSLO(*spec, cfg.windowsMs*1e6); err != nil {
			return err
		}
		fmt.Printf("cxlserve: SLO %q: %d objective(s), %d alert rule(s) at /slo\n",
			spec.Name, len(spec.Objectives), len(spec.Alerts))
	}

	// Publish the solver's per-resource utilization/bandwidth gauges into
	// the server's registry so /metrics exposes them alongside the serving
	// counters; priming one ServingRate call makes the gauge family live
	// before the first request arrives.
	obs.InstrumentMemsim(s.Registry())
	defer obs.InstrumentMemsim(nil)
	rate := cluster.ServingRate(cfg.policy, cfg.backends)

	// Durable spill tier: recover the directory up front (repairing torn
	// tails, quarantining corruption) and publish its counters — recovery
	// duration, records scanned/quarantined, live I/O — into the same
	// registry /metrics serves.
	//
	// closeSpill is the single teardown path: the graceful-drain branch
	// calls it to surface close errors, and the defer catches every other
	// return. The nil-out makes the second call a no-op here; spill.Dir's
	// documented Close idempotence backstops any future caller that slips
	// a direct Close in anyway.
	var spillTier *spill.Dir
	closeSpill := func() error {
		if spillTier == nil {
			return nil
		}
		d := spillTier
		spillTier = nil
		return d.Close()
	}
	defer closeSpill()
	if cfg.spillDir != "" {
		sd, rep, err := spill.Open(spill.Options{Dir: cfg.spillDir})
		if err != nil {
			return fmt.Errorf("spill tier: %w", err)
		}
		sd.Instrument(s.Registry())
		spillTier = sd
		state := "clean"
		if !rep.Clean() {
			state = "repaired"
		}
		fmt.Printf("cxlserve: spill tier %s recovered (%s): %s\n", cfg.spillDir, state, rep)
	}

	if cfg.fleetSize > 1 {
		// Sharded fleet capacity preview: how this policy/backend shape
		// behaves as a load-shedding fleet, before taking live traffic.
		fr, err := llm.ServeFleet(llm.FleetConfig{
			Instances: cfg.fleetSize,
			Shards:    cfg.shards,
			Policy:    cfg.policy,
			Backends:  cfg.backends,
			Seed:      42,
		})
		if err != nil {
			return err
		}
		fmt.Printf("cxlserve: fleet preview: %d instances, %.1f req/s aggregate, p99 %.1f ms, %d shed hops\n",
			cfg.fleetSize, float64(fr.Served)/(fr.EndNs/1e9), fr.Latency.Percentile(99)/1e6, fr.Forwarded)
	}

	// RESP front end: a simulated KeyDB store prices every command
	// (placement, loaded latency, heat) while the real values live in
	// memory plus the durable spill tier when one is attached.
	var respSrv *resp.Server
	respErrCh := make(chan error, 1)
	if cfg.respAddr != "" {
		st, err := kvstore.NewStore(m, vmm.NewAllocator(m), kvstore.StoreConfig{
			WorkingSetBytes: 100 << 30,
			SimKeys:         1 << 14,
			MaxMemoryFrac:   1,
			Policy:          vmm.Bind{Nodes: respHeapNodes(m)},
		})
		if err != nil {
			return fmt.Errorf("resp store: %w", err)
		}
		backend := kvstore.NewRESPBackend(st, spillTier)
		backend.Instrument(s.Registry())
		if inj != nil {
			backend.SetDegraded(func() bool { return inj.TargetDegraded("/ssd") })
		}
		respSrv = resp.NewServer(backend, resp.Options{
			MaxConns: cfg.respMaxConns,
			Limits:   resp.Limits{MaxBulkBytes: cfg.respFrame},
			Registry: s.Registry(),
		})
		respLn, err := net.Listen("tcp", cfg.respAddr)
		if err != nil {
			return fmt.Errorf("resp listener: %w", err)
		}
		fmt.Printf("cxlserve: RESP listening on %s\n", respLn.Addr())
		go func() { respErrCh <- respSrv.Serve(respLn) }()
	}

	httpLn, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("cxlserve: policy=%s backends=%d rate=%.0f tok/s listening on %s\n",
		cfg.policy.Name, cfg.backends, rate.TokensPerSec, httpLn.Addr())
	if inj != nil {
		fmt.Printf("cxlserve: fault schedule active: %s\n", inj.Describe())
	}

	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(httpLn) }()

	select {
	case err := <-errCh:
		// Listener died before any signal (port in use, etc.).
		return err
	case err := <-respErrCh:
		return fmt.Errorf("resp: %w", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		fmt.Fprintln(os.Stderr, "cxlserve: shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if respSrv != nil {
			if err := respSrv.Shutdown(shutdownCtx); err != nil {
				return fmt.Errorf("resp shutdown: %w", err)
			}
			if err := <-respErrCh; err != nil && !errors.Is(err, resp.ErrServerClosed) {
				return fmt.Errorf("resp: %w", err)
			}
			fmt.Fprintln(os.Stderr, "cxlserve: RESP drained")
		}
		if err := closeSpill(); err != nil {
			return fmt.Errorf("closing spill tier: %w", err)
		}
		fmt.Fprintln(os.Stderr, "cxlserve: drained, bye")
		return nil
	}
}

// respHeapNodes picks where the RESP store's value heap lives: the CXL
// expander when the testbed has one (the paper's KeyDB-on-CXL shape),
// else socket-0 DRAM.
func respHeapNodes(m *topology.Machine) []*topology.Node {
	if nodes := m.CXLNodes(); len(nodes) > 0 {
		return nodes
	}
	return m.DRAMNodes(0)
}

// policyNames lists the valid -policy values in figure order.
func policyNames() []string {
	ps := llm.Fig10Policies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
