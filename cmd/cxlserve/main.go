// Command cxlserve runs the paper's Fig. 9 LLM serving stack as an HTTP
// service over the simulated cluster.
//
// Usage:
//
//	cxlserve                       # defaults: -addr :8080 -policy MMEM -backends 4
//	cxlserve -policy 3:1 -backends 5
//	curl -XPOST localhost:8080/generate -d '{"prompt":"hi","max_tokens":64}'
//	curl localhost:8080/metrics        # Prometheus text exposition
//	curl localhost:8080/metrics.json   # legacy JSON metrics
//	curl localhost:8080/trace.json     # Chrome trace-event JSON (Perfetto)
//	go tool pprof localhost:8080/debug/pprof/profile   # live CPU profile
//	go tool pprof localhost:8080/debug/pprof/heap      # live heap profile
//
// The debug mux (net/http/pprof under /debug/pprof/, expvar under
// /debug/vars) is registered by obs.RegisterDebug; one-shot commands
// (cxlbench, cxltrace) take -cpuprofile/-memprofile flags instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"cxlsim/internal/llm"
	"cxlsim/internal/llmserve"
	"cxlsim/internal/obs"
)

func main() {
	names := policyNames()
	addr := flag.String("addr", ":8080", "listen address")
	policy := flag.String("policy", "MMEM", "placement policy: "+strings.Join(names, ", "))
	backends := flag.Int("backends", 4, "CPU inference backends (12 threads each)")
	flag.Parse()

	var chosen *llm.Policy
	for _, p := range llm.Fig10Policies() {
		if p.Name == *policy {
			p := p
			chosen = &p
			break
		}
	}
	if chosen == nil {
		log.Fatalf("cxlserve: unknown policy %q (want one of %s)", *policy, strings.Join(names, ", "))
	}
	if *backends < 1 {
		log.Fatal("cxlserve: need at least one backend")
	}

	cluster := llm.NewCluster()
	s := llmserve.New(cluster, *chosen, *backends)
	// Publish the solver's per-resource utilization/bandwidth gauges into
	// the server's registry so /metrics exposes them alongside the serving
	// counters; priming one ServingRate call makes the gauge family live
	// before the first request arrives.
	obs.InstrumentMemsim(s.Registry())
	rate := cluster.ServingRate(*chosen, *backends)

	fmt.Printf("cxlserve: policy=%s backends=%d rate=%.0f tok/s listening on %s\n",
		chosen.Name, *backends, rate.TokensPerSec, *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}

// policyNames lists the valid -policy values in figure order.
func policyNames() []string {
	ps := llm.Fig10Policies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
