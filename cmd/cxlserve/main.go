// Command cxlserve runs the paper's Fig. 9 LLM serving stack as an HTTP
// service over the simulated cluster.
//
// Usage:
//
//	cxlserve                       # defaults: -addr :8080 -policy MMEM -backends 4
//	cxlserve -policy 3:1 -backends 5
//	cxlserve -policy 1:1 -faults examples/degrade-cxl.json
//	curl -XPOST localhost:8080/generate -d '{"prompt":"hi","max_tokens":64}'
//	curl localhost:8080/health         # serving health + degraded resources
//	curl localhost:8080/metrics        # Prometheus text exposition
//	curl localhost:8080/metrics.json   # legacy JSON metrics
//	curl localhost:8080/trace.json     # Chrome trace-event JSON (Perfetto)
//	curl localhost:8080/slo            # windowed SLO evaluation (with -slo)
//	go tool pprof localhost:8080/debug/pprof/profile   # live CPU profile
//	go tool pprof localhost:8080/debug/pprof/heap      # live heap profile
//
// -faults applies a fault schedule (docs/RELIABILITY.md) to the devices
// before the cluster is built, so the serving rate reflects the degraded
// fabric; /health reports the degraded resources and /generate responses
// carry "degraded": true. The schedule's client block (plus -shed-after-ms)
// configures the degraded-mode policy: shed with 503 + Retry-After under
// queue pressure, 504 when a generation exceeds the virtual timeout.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain-timeout.
//
// The debug mux (net/http/pprof under /debug/pprof/, expvar under
// /debug/vars) is registered by obs.RegisterDebug; one-shot commands
// (cxlbench, cxltrace) take -cpuprofile/-memprofile flags instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cxlsim/internal/cliutil"
	"cxlsim/internal/fault"
	"cxlsim/internal/llm"
	"cxlsim/internal/llmserve"
	"cxlsim/internal/obs"
	"cxlsim/internal/slo"
	"cxlsim/internal/spill"
	"cxlsim/internal/topology"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxlserve: "+format+"\n", args...)
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cxlserve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	names := policyNames()
	addr := flag.String("addr", ":8080", "listen address")
	policy := flag.String("policy", "MMEM", "placement policy: "+strings.Join(names, ", "))
	backends := flag.Int("backends", 4, "CPU inference backends (12 threads each)")
	faults := flag.String("faults", "", "apply this fault schedule (JSON) to the fabric before serving")
	sloPath := flag.String("slo", "", "evaluate this SLO spec (JSON) over virtual-time windows; serves /slo")
	windowsMs := flag.Float64("windows", 0, "SLO window length, virtual ms (0 = the spec's window_ms, else 1000)")
	shedAfterMs := flag.Float64("shed-after-ms", 0, "shed requests (503) when virtual queue wait exceeds this (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	spillDir := flag.String("spill-dir", "", "open (recovering if needed) a durable spill tier and expose its I/O and recovery metrics at /metrics")
	fleetSize := flag.Int("fleet", 1, "simulated serving instances for the startup fleet capacity preview (>1 runs the sharded fleet simulation)")
	shards := cliutil.Shards(flag.CommandLine)
	flag.Parse()

	var chosen *llm.Policy
	for _, p := range llm.Fig10Policies() {
		if p.Name == *policy {
			p := p
			chosen = &p
			break
		}
	}
	if chosen == nil {
		usageError("unknown policy %q (want one of %s)", *policy, strings.Join(names, ", "))
	}
	if *backends < 1 {
		usageError("need at least one backend")
	}
	if *shedAfterMs < 0 {
		usageError("-shed-after-ms cannot be negative")
	}
	if *fleetSize < 1 {
		usageError("-fleet must be at least 1 (got %d)", *fleetSize)
	}
	if err := cliutil.CheckShards(*shards); err != nil {
		usageError("%v", err)
	}
	if *fleetSize == 1 && *shards != 1 {
		usageError("-shards needs -fleet > 1 (a single instance is one timeline)")
	}
	var faultsSet bool
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "faults" {
			faultsSet = true
		}
	})
	if faultsSet && *faults == "" {
		usageError("-faults needs a schedule file")
	}

	// Degrade the devices before the cluster is built: placements and the
	// steady serving rate then reflect the faulted fabric. A wall-clock
	// server has no virtual event loop to sequence transitions through, so
	// the whole schedule is applied up front.
	m := topology.TestbedSNC()
	var inj *fault.Injector
	var schedule *fault.Schedule
	if *faults != "" {
		var err error
		schedule, err = fault.LoadSchedule(*faults)
		if err != nil {
			fatal("%v", err)
		}
		inj, err = fault.NewInjector(schedule, m)
		if err != nil {
			fatal("%v", err)
		}
		inj.ApplyAll()
	}

	cluster := llm.NewClusterOn(m)
	s := llmserve.New(cluster, *chosen, *backends)

	rs := llmserve.Resilience{ShedAfterNs: *shedAfterMs * 1e6}
	if inj != nil {
		pol := schedule.ClientPolicy()
		rs.TimeoutNs = pol.TimeoutNs
		rs.BackoffNs = pol.BackoffNs
		rs.MaxRetries = pol.MaxRetries
		s.SetHealth(func() (bool, []string) {
			return inj.ActiveCount() > 0, inj.DegradedResources()
		})
	}
	s.SetResilience(rs)

	if *windowsMs < 0 {
		usageError("-windows cannot be negative")
	}
	if *sloPath != "" {
		spec, err := slo.Load(*sloPath)
		if err != nil {
			fatal("%v", err)
		}
		if err := s.SetSLO(*spec, *windowsMs*1e6); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("cxlserve: SLO %q: %d objective(s), %d alert rule(s) at /slo\n",
			spec.Name, len(spec.Objectives), len(spec.Alerts))
	}

	// Publish the solver's per-resource utilization/bandwidth gauges into
	// the server's registry so /metrics exposes them alongside the serving
	// counters; priming one ServingRate call makes the gauge family live
	// before the first request arrives.
	obs.InstrumentMemsim(s.Registry())
	defer obs.InstrumentMemsim(nil)
	rate := cluster.ServingRate(*chosen, *backends)

	// Durable spill tier: recover the directory up front (repairing torn
	// tails, quarantining corruption) and publish its counters — recovery
	// duration, records scanned/quarantined, live I/O — into the same
	// registry /metrics serves.
	var spillTier *spill.Dir
	if *spillDir != "" {
		sd, rep, err := spill.Open(spill.Options{Dir: *spillDir})
		if err != nil {
			fatal("spill tier: %v", err)
		}
		sd.Instrument(s.Registry())
		spillTier = sd
		defer spillTier.Close()
		state := "clean"
		if !rep.Clean() {
			state = "repaired"
		}
		fmt.Printf("cxlserve: spill tier %s recovered (%s): %s\n", *spillDir, state, rep)
	}

	if *fleetSize > 1 {
		// Sharded fleet capacity preview: how this policy/backend shape
		// behaves as a load-shedding fleet, before taking live traffic.
		fr, err := llm.ServeFleet(llm.FleetConfig{
			Instances: *fleetSize,
			Shards:    *shards,
			Policy:    *chosen,
			Backends:  *backends,
			Seed:      42,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("cxlserve: fleet preview: %d instances, %.1f req/s aggregate, p99 %.1f ms, %d shed hops\n",
			*fleetSize, float64(fr.Served)/(fr.EndNs/1e9), fr.Latency.Percentile(99)/1e6, fr.Forwarded)
	}

	fmt.Printf("cxlserve: policy=%s backends=%d rate=%.0f tok/s listening on %s\n",
		chosen.Name, *backends, rate.TokensPerSec, *addr)
	if inj != nil {
		fmt.Printf("cxlserve: fault schedule active: %s\n", inj.Describe())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		// Listener died before any signal (port in use, etc.).
		fatal("%v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		fmt.Fprintln(os.Stderr, "cxlserve: shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("%v", err)
		}
		if spillTier != nil {
			if err := spillTier.Close(); err != nil {
				fatal("closing spill tier: %v", err)
			}
			spillTier = nil
		}
		fmt.Fprintln(os.Stderr, "cxlserve: drained, bye")
	}
}

// policyNames lists the valid -policy values in figure order.
func policyNames() []string {
	ps := llm.Fig10Policies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
