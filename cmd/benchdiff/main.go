// Command benchdiff compares two `go test -bench` output files and
// fails when any benchmark's time regresses beyond a threshold. It is a
// dependency-free stand-in for benchstat, sized for the CI gate:
//
//	go test -bench=. -benchmem -count=5 . > new.txt
//	benchdiff -threshold 10 bench/BASELINE.txt new.txt
//
// Benchmarks are matched by name (the -GOMAXPROCS suffix is stripped);
// repeated counts collapse to the median, which is robust to the warmup
// noise a count=1 run shows. Exit status 1 means at least one benchmark
// in both files regressed ns/op, allocs/op, or B/op by more than
// -threshold percent (memory gating needs -benchmem in both files; a
// zero allocs/op baseline fails on any new allocation), or that a
// baseline benchmark is missing from the new run — deleting a gate
// benchmark must not silently pass. New benchmarks present only in
// the new file are reported but do not fail the comparison.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("threshold", 10, "max allowed ns/op regression, percent")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold PCT] old.txt new.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if len(old) == 0 {
		fatal(fmt.Errorf("no benchmark results in %s", flag.Arg(0)))
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark results in %s", flag.Arg(1)))
	}

	report, failed := diff(old, cur, *threshold)
	fmt.Print(report)
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.0f%% or baseline benchmark gone\n", *threshold)
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]*series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	return parse(string(data)), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}
