package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// series holds every repetition of one benchmark, in file order.
type series struct {
	nsPerOp  []float64
	allocs   []float64
	hasAlloc bool
}

// medianNs reports the median ns/op across repetitions.
func (s *series) medianNs() float64 { return median(s.nsPerOp) }

// medianAllocs reports the median allocs/op, or -1 when -benchmem was off.
func (s *series) medianAllocs() float64 {
	if !s.hasAlloc {
		return -1
	}
	return median(s.allocs)
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// parse extracts benchmark result lines from `go test -bench` output.
// A result line looks like
//
//	BenchmarkFig8CXLOnlyKeyDB-8   38   30941960 ns/op   16922620 B/op   45525 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines transfer across
// machines with different core counts.
func parse(out string) map[string]*series {
	results := map[string]*series{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var ns float64
		var allocs float64
		hasNs, hasAlloc := false, false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				ns, hasNs = v, true
			case "allocs/op":
				allocs, hasAlloc = v, true
			}
		}
		if !hasNs {
			continue
		}
		s := results[name]
		if s == nil {
			s = &series{}
			results[name] = s
		}
		s.nsPerOp = append(s.nsPerOp, ns)
		if hasAlloc {
			s.allocs = append(s.allocs, allocs)
			s.hasAlloc = true
		}
	}
	return results
}

// diff renders an old-vs-new comparison table and reports whether any
// benchmark present in both files regressed ns/op beyond threshold
// percent.
func diff(old, cur map[string]*series, threshold float64) (string, bool) {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := old[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	failed := false
	for _, name := range names {
		o, n := old[name], cur[name]
		switch {
		case o == nil:
			fmt.Fprintf(&b, "%-34s %14s %14.0f %8s\n", name, "-", n.medianNs(), "new")
		case n == nil:
			fmt.Fprintf(&b, "%-34s %14.0f %14s %8s\n", name, o.medianNs(), "-", "gone")
		default:
			delta := (n.medianNs() - o.medianNs()) / o.medianNs() * 100
			mark := ""
			if delta > threshold {
				mark = "  FAIL"
				failed = true
			}
			fmt.Fprintf(&b, "%-34s %14.0f %14.0f %+7.1f%%%s\n",
				name, o.medianNs(), n.medianNs(), delta, mark)
			if oa, na := o.medianAllocs(), n.medianAllocs(); oa >= 0 && na >= 0 && oa != na {
				ad := 0.0
				if oa > 0 {
					ad = (na - oa) / oa * 100
				}
				fmt.Fprintf(&b, "%-34s %14.0f %14.0f %+7.1f%%  (allocs/op)\n", "", oa, na, ad)
			}
		}
	}
	return b.String(), failed
}
