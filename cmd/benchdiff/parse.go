package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// series holds every repetition of one benchmark, in file order.
type series struct {
	nsPerOp  []float64
	allocs   []float64
	bytes    []float64
	hasAlloc bool
	hasBytes bool
}

// medianNs reports the median ns/op across repetitions.
func (s *series) medianNs() float64 { return median(s.nsPerOp) }

// medianAllocs reports the median allocs/op, or -1 when -benchmem was off.
func (s *series) medianAllocs() float64 {
	if !s.hasAlloc {
		return -1
	}
	return median(s.allocs)
}

// medianBytes reports the median B/op, or -1 when -benchmem was off.
func (s *series) medianBytes() float64 {
	if !s.hasBytes {
		return -1
	}
	return median(s.bytes)
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// parse extracts benchmark result lines from `go test -bench` output.
// A result line looks like
//
//	BenchmarkFig8CXLOnlyKeyDB-8   38   30941960 ns/op   16922620 B/op   45525 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines transfer across
// machines with different core counts.
func parse(out string) map[string]*series {
	results := map[string]*series{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var ns, allocs, bytes float64
		hasNs, hasAlloc, hasBytes := false, false, false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				ns, hasNs = v, true
			case "B/op":
				bytes, hasBytes = v, true
			case "allocs/op":
				allocs, hasAlloc = v, true
			}
		}
		if !hasNs {
			continue
		}
		s := results[name]
		if s == nil {
			s = &series{}
			results[name] = s
		}
		s.nsPerOp = append(s.nsPerOp, ns)
		if hasAlloc {
			s.allocs = append(s.allocs, allocs)
			s.hasAlloc = true
		}
		if hasBytes {
			s.bytes = append(s.bytes, bytes)
			s.hasBytes = true
		}
	}
	return results
}

// regressed reports whether new vs old breaches the threshold percent.
// A zero baseline regresses only by becoming nonzero: an alloc-free
// benchmark that starts allocating fails regardless of magnitude.
func regressed(old, cur, threshold float64) bool {
	if old == 0 {
		return cur > 0
	}
	return (cur-old)/old*100 > threshold
}

// diff renders an old-vs-new comparison table and reports whether any
// benchmark present in both files regressed ns/op, allocs/op, or B/op
// beyond threshold percent. A baseline benchmark missing from the
// current run also fails: a silently deleted (or renamed) gate
// benchmark would otherwise pass forever. New benchmarks absent from
// the baseline are reported but do not fail. Memory rows only print
// when the medians differ; memory gating needs -benchmem in both
// files.
func diff(old, cur map[string]*series, threshold float64) (string, bool) {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := old[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	failed := false
	memRow := func(name, unit string, oa, na float64) {
		if oa < 0 || na < 0 {
			return
		}
		mark := ""
		if regressed(oa, na, threshold) {
			mark = "  FAIL"
			failed = true
		}
		if oa == na && mark == "" {
			return
		}
		ad := 0.0
		if oa > 0 {
			ad = (na - oa) / oa * 100
		}
		fmt.Fprintf(&b, "%-34s %14.0f %14.0f %+7.1f%%  (%s)%s\n", name, oa, na, ad, unit, mark)
	}
	for _, name := range names {
		o, n := old[name], cur[name]
		switch {
		case o == nil:
			fmt.Fprintf(&b, "%-34s %14s %14.0f %8s\n", name, "-", n.medianNs(), "new")
		case n == nil:
			fmt.Fprintf(&b, "%-34s %14.0f %14s %8s  FAIL\n", name, o.medianNs(), "-", "gone")
			failed = true
		default:
			delta := (n.medianNs() - o.medianNs()) / o.medianNs() * 100
			mark := ""
			if delta > threshold {
				mark = "  FAIL"
				failed = true
			}
			fmt.Fprintf(&b, "%-34s %14.0f %14.0f %+7.1f%%%s\n",
				name, o.medianNs(), n.medianNs(), delta, mark)
			memRow("", "allocs/op", o.medianAllocs(), n.medianAllocs())
			memRow("", "B/op", o.medianBytes(), n.medianBytes())
		}
	}
	return b.String(), failed
}
