package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: cxlsim
BenchmarkFig8CXLOnlyKeyDB-8   	      38	  31000000 ns/op	16922620 B/op	   45525 allocs/op
BenchmarkFig8CXLOnlyKeyDB-8   	      40	  30000000 ns/op	16922600 B/op	   45520 allocs/op
BenchmarkFig8CXLOnlyKeyDB-8   	      39	  32000000 ns/op	16922610 B/op	   45522 allocs/op
BenchmarkFig10LLMInference-8  	   17000	     69000 ns/op	   28050 B/op	     664 allocs/op
PASS
ok  	cxlsim	10.5s
`

func TestParse(t *testing.T) {
	got := parse(sampleOut)
	fig8 := got["BenchmarkFig8CXLOnlyKeyDB"]
	if fig8 == nil {
		t.Fatal("Fig8 benchmark not parsed (GOMAXPROCS suffix not stripped?)")
	}
	if len(fig8.nsPerOp) != 3 {
		t.Fatalf("Fig8 repetitions = %d, want 3", len(fig8.nsPerOp))
	}
	if m := fig8.medianNs(); m != 31000000 {
		t.Fatalf("Fig8 median ns/op = %g, want 31000000", m)
	}
	if m := fig8.medianAllocs(); m != 45522 {
		t.Fatalf("Fig8 median allocs/op = %g, want 45522", m)
	}
	if got["BenchmarkFig10LLMInference"] == nil {
		t.Fatal("Fig10 benchmark not parsed")
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	got := parse("PASS\nok  cxlsim 1.2s\n--- BENCH: weird\nBenchmarkNoFields\n")
	if len(got) != 0 {
		t.Fatalf("parsed %d results from non-result lines", len(got))
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %g, want 2.5", m)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	old := parse("BenchmarkA-8 10 100 ns/op\nBenchmarkB-8 10 100 ns/op\n")
	cur := parse("BenchmarkA-8 10 105 ns/op\nBenchmarkB-8 10 120 ns/op\n")
	report, failed := diff(old, cur, 10)
	if !failed {
		t.Fatal("20% regression not flagged at threshold 10%")
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report missing FAIL marker:\n%s", report)
	}
	// A within threshold: must not be the FAIL line.
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, "BenchmarkA") && strings.Contains(line, "FAIL") {
			t.Fatalf("5%% change flagged as regression:\n%s", report)
		}
	}
}

func TestParseBytes(t *testing.T) {
	got := parse(sampleOut)
	if m := got["BenchmarkFig8CXLOnlyKeyDB"].medianBytes(); m != 16922610 {
		t.Fatalf("Fig8 median B/op = %g, want 16922610", m)
	}
	noMem := parse("BenchmarkA-8 10 100 ns/op\n")
	if m := noMem["BenchmarkA"].medianBytes(); m != -1 {
		t.Fatalf("B/op without -benchmem = %g, want -1", m)
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	old := parse("BenchmarkA-8 10 100 ns/op 1000 B/op 10 allocs/op\n")
	cur := parse("BenchmarkA-8 10 100 ns/op 1000 B/op 12 allocs/op\n")
	report, failed := diff(old, cur, 10)
	if !failed {
		t.Fatalf("20%% allocs/op regression not flagged at threshold 10%%:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op") || !strings.Contains(report, "FAIL") {
		t.Fatalf("report missing allocs/op FAIL marker:\n%s", report)
	}
}

func TestDiffFlagsBytesRegression(t *testing.T) {
	old := parse("BenchmarkA-8 10 100 ns/op 1000 B/op 10 allocs/op\n")
	cur := parse("BenchmarkA-8 10 100 ns/op 1200 B/op 10 allocs/op\n")
	report, failed := diff(old, cur, 10)
	if !failed {
		t.Fatalf("20%% B/op regression not flagged at threshold 10%%:\n%s", report)
	}
	if !strings.Contains(report, "B/op") || !strings.Contains(report, "FAIL") {
		t.Fatalf("report missing B/op FAIL marker:\n%s", report)
	}
}

func TestDiffZeroAllocBaselineFailsOnAnyAlloc(t *testing.T) {
	old := parse("BenchmarkA-8 10 100 ns/op 0 B/op 0 allocs/op\n")
	cur := parse("BenchmarkA-8 10 100 ns/op 8 B/op 1 allocs/op\n")
	_, failed := diff(old, cur, 10)
	if !failed {
		t.Fatal("alloc-free baseline gaining an allocation must fail")
	}
}

func TestDiffMemoryWithinThresholdIsClean(t *testing.T) {
	old := parse("BenchmarkA-8 10 100 ns/op 1000 B/op 100 allocs/op\n")
	cur := parse("BenchmarkA-8 10 100 ns/op 1050 B/op 105 allocs/op\n")
	report, failed := diff(old, cur, 10)
	if failed {
		t.Fatalf("5%% memory growth flagged at threshold 10%%:\n%s", report)
	}
}

func TestDiffSelfIsClean(t *testing.T) {
	base := parse(sampleOut)
	_, failed := diff(base, base, 10)
	if failed {
		t.Fatal("comparing a file to itself reported a regression")
	}
}

// TestDiffGoneBaselineFails pins the gate semantics: deleting (or
// renaming) a benchmark that the baseline lists must fail — otherwise
// a regression can hide by removing its own gate.
func TestDiffGoneBaselineFails(t *testing.T) {
	old := parse("BenchmarkGone-8 10 100 ns/op\nBenchmarkKept-8 10 100 ns/op\n")
	cur := parse("BenchmarkKept-8 10 100 ns/op\n")
	report, failed := diff(old, cur, 10)
	if !failed {
		t.Fatalf("baseline benchmark missing from the new run must fail:\n%s", report)
	}
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, "BenchmarkGone") &&
			(!strings.Contains(line, "gone") || !strings.Contains(line, "FAIL")) {
			t.Fatalf("gone row missing gone/FAIL markers:\n%s", report)
		}
	}
}

// TestDiffNewBenchmarkIsClean: a benchmark that exists only in the new
// run is informational — baselines are regenerated after it lands.
func TestDiffNewBenchmarkIsClean(t *testing.T) {
	old := parse("BenchmarkKept-8 10 100 ns/op\n")
	cur := parse("BenchmarkKept-8 10 100 ns/op\nBenchmarkNew-8 10 100 ns/op\n")
	report, failed := diff(old, cur, 10)
	if failed {
		t.Fatalf("new benchmark absent from the baseline must not fail:\n%s", report)
	}
	if !strings.Contains(report, "new") {
		t.Fatalf("report missing new marker:\n%s", report)
	}
}
