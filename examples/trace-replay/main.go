// trace-replay demonstrates the trace workflow: capture a YCSB operation
// stream once, serialize it, and replay the identical stream against two
// memory configurations — the apples-to-apples comparison methodology the
// paper's artifact release supports. Each replay runs instrumented: a
// per-run obs registry supplies the metrics summary, and -trace writes
// the second (CXL) replay's virtual-time timeline as Chrome trace-event
// JSON for Perfetto.
//
// Run with: go run ./examples/trace-replay [-trace out.json]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"cxlsim/internal/kvstore"
	"cxlsim/internal/obs"
	"cxlsim/internal/topology"
	"cxlsim/internal/trace"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

func main() {
	traceOut := flag.String("trace", "", "write the CXL replay's Chrome trace-event JSON here")
	flag.Parse()
	const simKeys = 1 << 14

	// Capture 20k YCSB-B operations.
	tr := trace.Record(workload.NewYCSB(workload.YCSBB, simKeys, 7), 20_000)
	stats := tr.Summarize()
	fmt.Printf("captured %d ops: %d reads, %d updates, %d unique keys\n",
		tr.Len(), stats.Reads, stats.Updates, stats.UniqueKeys)

	// Round-trip through the wire format (what you'd write to a file).
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized to %d bytes (%.1f bytes/op)\n\n", buf.Len(), float64(buf.Len())/float64(tr.Len()))
	back, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Replay against MMEM-bound and CXL-bound stores, each with its own
	// metrics registry; the second replay also records a timeline.
	run := func(label string, pick func(*topology.Machine) []*topology.Node, otr *obs.Tracer) kvstore.Result {
		m := topology.Testbed()
		alloc := vmm.NewAllocator(m)
		st, err := kvstore.NewStore(m, alloc, kvstore.StoreConfig{
			WorkingSetBytes: 100 << 30, SimKeys: simKeys, MaxMemoryFrac: 1,
			Policy: vmm.Bind{Nodes: pick(m)},
		})
		if err != nil {
			log.Fatal(err)
		}
		res := kvstore.Run(st, alloc, kvstore.RunConfig{
			Mix: workload.YCSBB, Ops: 10_000, Seed: 7,
			Source:  trace.NewReplayer(back),
			Metrics: obs.NewRegistry(),
			Tracer:  otr,
		})
		fmt.Printf("%-5s %8.0f ops/s   p50 %5.1f µs   p99 %5.1f µs\n",
			label, res.ThroughputOpsPerSec,
			res.Latency.Percentile(50)/1e3, res.Latency.Percentile(99)/1e3)
		return res
	}
	fmt.Println("replaying the identical stream:")
	run("MMEM", func(m *topology.Machine) []*topology.Node { return m.DRAMNodes(0) }, nil)
	otr := obs.NewTracer()
	res := run("CXL", func(m *topology.Machine) []*topology.Node { return m.CXLNodes() }, otr)

	// Three-line metrics summary of the CXL replay.
	fmt.Printf("\nops completed:  %d\n", res.Latency.Count())
	fmt.Printf("migrated bytes: %d\n", res.Migrated)
	fmt.Printf("p99 latency:    %.1f µs\n", res.Latency.Percentile(99)/1e3)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := otr.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d events) — open at https://ui.perfetto.dev\n", *traceOut, otr.Len())
	}
}
