// trace-replay demonstrates the trace workflow: capture a YCSB operation
// stream once, serialize it, and replay the identical stream against two
// memory configurations — the apples-to-apples comparison methodology the
// paper's artifact release supports.
//
// Run with: go run ./examples/trace-replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"cxlsim/internal/kvstore"
	"cxlsim/internal/topology"
	"cxlsim/internal/trace"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

func main() {
	const simKeys = 1 << 14

	// Capture 20k YCSB-B operations.
	tr := trace.Record(workload.NewYCSB(workload.YCSBB, simKeys, 7), 20_000)
	stats := tr.Summarize()
	fmt.Printf("captured %d ops: %d reads, %d updates, %d unique keys\n",
		tr.Len(), stats.Reads, stats.Updates, stats.UniqueKeys)

	// Round-trip through the wire format (what you'd write to a file).
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized to %d bytes (%.1f bytes/op)\n\n", buf.Len(), float64(buf.Len())/float64(tr.Len()))
	back, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Replay against MMEM-bound and CXL-bound stores.
	run := func(label string, pick func(*topology.Machine) []*topology.Node) {
		m := topology.Testbed()
		alloc := vmm.NewAllocator(m)
		st, err := kvstore.NewStore(m, alloc, kvstore.StoreConfig{
			WorkingSetBytes: 100 << 30, SimKeys: simKeys, MaxMemoryFrac: 1,
			Policy: vmm.Bind{Nodes: pick(m)},
		})
		if err != nil {
			log.Fatal(err)
		}
		res := kvstore.Run(st, alloc, kvstore.RunConfig{
			Mix: workload.YCSBB, Ops: 10_000, Seed: 7,
			Source: trace.NewReplayer(back),
		})
		fmt.Printf("%-5s %8.0f ops/s   p50 %5.1f µs   p99 %5.1f µs\n",
			label, res.ThroughputOpsPerSec,
			res.Latency.Percentile(50)/1e3, res.Latency.Percentile(99)/1e3)
	}
	fmt.Println("replaying the identical stream:")
	run("MMEM", func(m *topology.Machine) []*topology.Node { return m.DRAMNodes(0) })
	run("CXL", func(m *topology.Machine) []*topology.Node { return m.CXLNodes() })
}
