// pooling explores the §7 extension: CXL 2.0 memory pooling across a
// fleet of hosts — how much provisioned capacity statistical multiplexing
// saves, and what shared bandwidth costs a victim under noisy neighbors.
//
// Run with: go run ./examples/pooling
package main

import (
	"fmt"
	"log"

	"cxlsim/internal/pool"
)

func main() {
	fmt.Println("CXL 2.0 memory pooling (§7 extension)")
	fmt.Println()

	// Capacity economics: bursty hosts (median 64 GB, log-normal σ=0.5)
	// provision p99 statically vs median-local + pooled bursts.
	fmt.Println("provisioned capacity, p99 target, bursty demand:")
	fmt.Printf("%6s  %10s  %22s  %8s\n", "hosts", "static GB", "pooled GB (local+pool)", "saving")
	for _, hosts := range []int{2, 4, 8, 16} {
		models := make([]pool.DemandModel, hosts)
		for h := range models {
			models[h] = pool.NewLogNormalDemand(64<<30, 0.5, int64(h+1))
		}
		res, err := pool.ProvisioningStudy{Hosts: hosts, Epochs: 4000, Quantile: 0.99}.Run(models)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %10d  %12d + %7d  %7.1f%%\n",
			hosts, res.StaticBytes>>30,
			res.PooledLocalBytes>>30, res.PooledCXLBytes>>30,
			res.SavingFrac*100)
	}

	// Dynamic allocation against a real pool.
	d0 := pool.NewDevice("mld0", 512<<30)
	d1 := pool.NewDevice("mld1", 512<<30)
	p, err := pool.New(8, d0, d1)
	if err != nil {
		log.Fatal(err)
	}
	for h := 0; h < 8; h++ {
		if err := p.Alloc(h, 96<<30); err != nil {
			log.Fatalf("host %d: %v", h, err)
		}
	}
	fmt.Printf("\ndynamic allocation: %d GB of %d GB pooled capacity in use across %d hosts\n",
		p.Used()>>30, p.Capacity()>>30, p.Hosts())
	if err := p.Alloc(0, 512<<30); err != nil {
		fmt.Printf("oversubscription rejected as expected: %v\n", err)
	}

	// Noisy neighbors on the shared device.
	fmt.Println("\nnoisy-neighbor interference (victim at 10 GB/s):")
	for _, aggressors := range []int{0, 2, 4, 8} {
		alone, shared := pool.Interference(d0, 10, aggressors, 12)
		fmt.Printf("  %d aggressors: victim latency %6.0f ns (alone %4.0f ns)\n",
			aggressors, shared, alone)
	}
}
