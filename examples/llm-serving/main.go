// llm-serving reproduces §5: CPU LLM inference on one SNC domain plus a
// CXL expander, sweeping backend counts under the interleave policies and
// printing the Fig. 10(a) serving-rate series.
//
// Run with: go run ./examples/llm-serving
package main

import (
	"fmt"

	"cxlsim/internal/llm"
)

func main() {
	c := llm.NewCluster()
	fmt.Println("CPU LLM inference, Alpaca-7B-class model (4.1 GB), 12 threads/backend")
	fmt.Println("serving rate (tokens/s) by total thread count:")
	fmt.Println()

	series := c.Fig10a(6)
	fmt.Printf("%-8s", "threads")
	for _, p := range llm.Fig10Policies() {
		fmt.Printf("%10s", p.Name)
	}
	fmt.Println()
	for i := 0; i < 6; i++ {
		fmt.Printf("%-8d", (i+1)*llm.BackendThreads)
		for _, p := range llm.Fig10Policies() {
			fmt.Printf("%10.2f", series[p.Name][i].TokensPerSec)
		}
		fmt.Println()
	}

	mmem := series["MMEM"]
	i31 := series["3:1"]
	gain := i31[4].TokensPerSec/mmem[4].TokensPerSec - 1
	fmt.Printf("\nat 60 threads, 3:1 interleave surpasses MMEM-only by %.0f%% (paper: 95%%)\n", gain*100)

	fmt.Println("\nFig 10(b): single-backend bandwidth vs threads")
	for _, th := range []int{4, 8, 12, 16, 20, 24, 32} {
		fmt.Printf("  %2d threads: %5.1f GB/s\n", th, c.BackendBandwidth(th))
	}

	fmt.Println("\nFig 10(c): bandwidth vs KV cache size")
	for _, kv := range []float64{0, 2e9, 8e9, 32e9} {
		fmt.Printf("  %4.0f GB: %5.1f GB/s\n", kv/1e9, c.KVCacheBandwidth(kv))
	}
}
