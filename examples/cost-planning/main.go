// cost-planning walks the §6 Abstract Cost Model end to end: it derives
// the model's inputs (Rd, Rc) from the simulator the way the paper
// derives them from microbenchmarks, then explores TCO savings across
// CXL-capacity ratios and server premiums.
//
// Run with: go run ./examples/cost-planning
package main

import (
	"fmt"

	"cxlsim/internal/costmodel"
	"cxlsim/internal/elastic"
	"cxlsim/internal/memsim"
	"cxlsim/internal/topology"
)

func main() {
	// Derive Rd and Rc the way §6 prescribes: run the same
	// capacity-bound work unit (here: 100 µs of CPU + a 4 MB scan, a
	// Spark-task-sized quantum) with the working set in DRAM, in CXL,
	// and spilled to SSD, and normalize the throughputs to the SSD case.
	m := topology.Testbed()
	const (
		cpuNs     = 100_000.0
		unitBytes = 4e6
	)
	unitTime := func(p *memsim.Path, accessBytes float64) float64 {
		res, _ := memsim.SolveClosed([]memsim.ClosedFlow{{
			Placement: memsim.SinglePath(p), Mix: memsim.ReadOnly,
			Threads: 8, MLP: 8, AccessBytes: accessBytes,
		}})
		perThreadBW := res[0].Achieved / 8
		return cpuNs + res[0].Latency + unitBytes/perThreadBW
	}
	// Memory scans move cachelines; SSD reads move 128 KB blocks.
	ssd := unitTime(m.SSDPath(), 128<<10)
	rd := ssd / unitTime(m.PathFrom(0, m.DRAMNodes(0)[0]), 64)
	rc := ssd / unitTime(m.PathFrom(0, m.CXLNodes()[0]), 64)
	fmt.Printf("microbenchmark-derived parameters: Rd=%.1f Rc=%.1f (Ps=1)\n", rd, rc)

	// The paper's worked example for reference.
	ex := costmodel.PaperExample()
	ratio, _ := ex.ServerRatio()
	saving, _ := ex.TCOSaving()
	fmt.Printf("paper example (Rd=10 Rc=8 C=2 Rt=1.1): servers %.2f%%, saving %.2f%%\n\n", ratio*100, saving*100)

	// Planning sweep: how does the saving move with the MMEM:CXL
	// capacity ratio and the CXL-server premium?
	fmt.Println("TCO saving by C (rows) and Rt (columns):")
	rts := []float64{1.0, 1.1, 1.2, 1.3}
	fmt.Printf("%6s", "C")
	for _, rt := range rts {
		fmt.Printf("%9.1f", rt)
	}
	fmt.Println()
	for _, c := range []float64{0.5, 1, 2, 4, 8} {
		fmt.Printf("%6.1f", c)
		for _, rt := range rts {
			p := costmodel.Params{Rd: 10, Rc: 8, C: c, Rt: rt}
			s, err := p.TCOSaving()
			if err != nil {
				fmt.Printf("%9s", "n/a")
				continue
			}
			fmt.Printf("%8.1f%%", s*100)
		}
		fmt.Println()
	}

	// And the elastic-compute side (§4.3).
	rm := elastic.PaperExample()
	fmt.Printf("\nelastic compute: a 1:3-provisioned server strands %.0f%% of vCPUs;\n", rm.StrandedFrac()*100)
	fmt.Printf("selling them on CXL at a %.0f%% discount recovers %.2f%% extra revenue\n",
		rm.CXLDiscount*100, rm.RecoveredRevenueFrac()*100)
}
