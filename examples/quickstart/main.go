// Quickstart: build the paper's testbed, measure the four memory routes
// the way §3 does, and print the headline characteristics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"cxlsim/internal/memsim"
	"cxlsim/internal/mlc"
	"cxlsim/internal/topology"
)

func main() {
	// The paper's CXL experiment server: dual-socket SPR, SNC-4, two
	// AsteraLabs A1000 expanders on socket 0 (§2.4).
	m := topology.TestbedSNC()
	fmt.Printf("testbed: %d DRAM nodes + %d CXL nodes, %d GB DRAM, %d GB CXL\n\n",
		len(m.DRAMNodes(0))+len(m.DRAMNodes(1)), len(m.CXLNodes()),
		m.TotalDRAM()>>30, m.TotalCXL()>>30)

	routes := []struct {
		name string
		path *memsim.Path
	}{
		{"MMEM   (local DDR)", m.PathFrom(0, m.DRAMNodes(0)[0])},
		{"MMEM-r (remote DDR)", m.PathFrom(1, m.DRAMNodes(0)[0])},
		{"CXL    (local A1000)", m.PathFrom(0, m.CXLNodes()[0])},
		{"CXL-r  (remote A1000)", m.PathFrom(1, m.CXLNodes()[0])},
	}

	fmt.Println("route                  idle read   peak 1:0   peak 2:1   knee")
	for _, r := range routes {
		ro := mlc.LoadedLatency(r.path, memsim.ReadOnly, mlc.DefaultOptions())
		mx := mlc.LoadedLatency(r.path, memsim.Mix2to1, mlc.DefaultOptions())
		fmt.Printf("%-22s %7.1f ns %7.1f GB/s %7.1f GB/s  %3.0f%%\n",
			r.name, ro.IdleLatency(), ro.PeakBandwidth(), mx.PeakBandwidth(),
			ro.KneeUtilization()*100)
	}

	// The §3.4 insight: offloading a slice of a hot workload to CXL can
	// HELP even when DRAM has headroom, by relieving channel contention.
	fmt.Println("\n§3.4 insight — offered 90 GB/s of reads against one SNC domain:")
	mmem := memsim.SinglePath(routes[0].path)
	il := memsim.Interleave(routes[0].path, routes[2].path, 3, 1)
	only, _ := memsim.SolveOpen([]memsim.OpenFlow{{Placement: mmem, Mix: memsim.ReadOnly, Offered: 90}})
	both, _ := memsim.SolveOpen([]memsim.OpenFlow{{Placement: il, Mix: memsim.ReadOnly, Offered: 90}})
	fmt.Printf("  MMEM only      : %5.1f GB/s delivered at %6.0f ns\n", only[0].Achieved, only[0].Latency)
	fmt.Printf("  3:1 interleave : %5.1f GB/s delivered at %6.0f ns\n", both[0].Achieved, both[0].Latency)
}
