// keydb-ycsb reproduces the heart of §4.1: a KeyDB-style store with a
// 512 GB working set evaluated under the Table-1 memory configurations
// with YCSB-A.
//
// Run with: go run ./examples/keydb-ycsb
package main

import (
	"fmt"
	"log"

	"cxlsim/internal/kvstore"
	"cxlsim/internal/workload"
)

func main() {
	mix := workload.YCSBA
	fmt.Printf("KeyDB / %s, 512 GB working set, 7 server-threads\n\n", mix.Name)
	fmt.Println("config        kops/s   vs MMEM   p99 (µs)  hit-rate")

	var base float64
	for _, conf := range kvstore.Table1Configs() {
		d, err := kvstore.Deploy(conf, kvstore.DeployOptions{SimKeys: 1 << 16})
		if err != nil {
			log.Fatal(err)
		}
		// Let tiering converge before measuring (the paper measures
		// steady state).
		d.Warm(mix, 120, 100_000, 7)
		rc := d.RunConfigFor(mix, 42)
		rc.Ops = 30_000
		res := kvstore.Run(d.Store, d.Alloc, rc)
		if conf == kvstore.ConfMMEM {
			base = res.ThroughputOpsPerSec
		}
		fmt.Printf("%-12s  %6.0f   %5.2fx    %7.0f   %.3f\n",
			conf, res.ThroughputOpsPerSec/1e3, base/res.ThroughputOpsPerSec,
			res.Latency.Percentile(99)/1e3, res.HitRate)
	}
	fmt.Println("\npaper §4.1.2: interleave 1.2–1.5x slower, SSD ≈1.8x, Hot-Promote ≈ MMEM")
}
