// spark-tpch reproduces §4.2: shuffle-heavy TPC-H queries across the
// Fig. 7 cluster configurations — 3 MMEM-only servers vs 2 CXL-expanded
// servers vs memory-restricted SSD spill vs Hot-Promote.
//
// Run with: go run ./examples/spark-tpch
package main

import (
	"fmt"
	"log"

	"cxlsim/internal/analytics"
)

func main() {
	queries := analytics.TPCHQueries()
	fmt.Println("Spark TPC-H (7 TB dataset, 150 executors × 1 core / 8 GB)")
	fmt.Println("execution time normalized to the 3-server MMEM cluster:")
	fmt.Println()

	fmt.Printf("%-14s", "config")
	for _, q := range queries {
		fmt.Printf("%8s", q.Name)
	}
	fmt.Printf("%12s\n", "shuffle(Q9)")

	base := map[string]float64{}
	for _, cfg := range analytics.Fig7Configs() {
		eng, err := analytics.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", cfg.Name)
		var q9 analytics.QueryResult
		for _, q := range queries {
			r := eng.Run(q)
			if cfg.Name == "MMEM" {
				base[q.Name] = r.ExecTimeNs
			}
			fmt.Printf("%7.2fx", r.ExecTimeNs/base[q.Name])
			if q.Name == "Q9" {
				q9 = r
			}
		}
		fmt.Printf("%11.0f%%\n", q9.ShufflePct()*100)
	}
	fmt.Println("\npaper §4.2.2: interleave 1.4–9.8x vs MMEM; spill slower still;")
	fmt.Println("Hot-Promote >34% slower than MMEM (promotion thrashing on low-locality shuffle)")
}
