package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if !almostEqual(s.Variance(), 4, 1e-12) {
		t.Fatalf("variance = %v, want 4", s.Variance())
	}
	if !almostEqual(s.Stddev(), 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min,max = %v,%v want 2,9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Count() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, a, b Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*10 + 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var empty, s Summary
	s.Add(5)
	s.Merge(empty) // no-op
	if s.Count() != 1 || s.Mean() != 5 {
		t.Fatal("merge with empty changed summary")
	}
	var dst Summary
	dst.Merge(s)
	if dst.Count() != 1 || dst.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 {
		t.Fatal("reset did not clear summary")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-normal latencies around ~300ns, heavy tail.
		x := math.Exp(rng.NormFloat64()*0.8 + math.Log(300))
		h.Add(x)
		samples = append(samples, x)
	}
	exact := Percentiles(samples, 50, 90, 99, 99.9)
	approx := []float64{h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Percentile(99.9)}
	for i := range exact {
		if !almostEqual(exact[i], approx[i], 0.05) {
			t.Errorf("p[%d]: histogram %v vs exact %v (>5%% error)", i, approx[i], exact[i])
		}
	}
}

func TestHistogramEdgeQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Add(100)
	h.Add(200)
	if q := h.Quantile(0); q != 100 {
		t.Fatalf("q0 = %v, want exact min 100", q)
	}
	if q := h.Quantile(1); q != 200 {
		t.Fatalf("q1 = %v, want exact max 200", q)
	}
}

func TestHistogramUnderflow(t *testing.T) {
	h := NewHistogram(10, 3, 10)
	h.Add(5)          // below base
	h.Add(math.NaN()) // NaN
	h.Add(-1)         // negative
	if h.Count() != 0 {
		t.Fatalf("in-range count = %d, want 0", h.Count())
	}
	if h.under != 3 {
		t.Fatalf("underflow = %d, want 3", h.under)
	}
}

func TestHistogramOverflowClamps(t *testing.T) {
	h := NewHistogram(1, 2, 10) // covers 1..100
	h.Add(1e9)                  // way past the top
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if q := h.Quantile(0.5); q < 50 {
		t.Fatalf("overflowed value quantile %v, should land in top bucket", q)
	}
}

func TestHistogramAddN(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		a.Add(500)
	}
	b.AddN(500, 100)
	b.AddN(500, 0) // no-op
	if a.Count() != b.Count() || !almostEqual(a.Mean(), b.Mean(), 1e-12) {
		t.Fatalf("AddN mismatch: %v vs %v", a, b)
	}
	if a.Percentile(99) != b.Percentile(99) {
		t.Fatal("AddN percentile mismatch")
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	last := 0.0
	for _, p := range cdf {
		if p.Fraction < last {
			t.Fatal("CDF not monotone")
		}
		last = p.Fraction
	}
	if !almostEqual(cdf[len(cdf)-1].Fraction, 1.0, 1e-12) {
		t.Fatalf("CDF does not end at 1: %v", cdf[len(cdf)-1].Fraction)
	}
	if h.CDF() == nil {
		t.Fatal("CDF nil on non-empty histogram")
	}
	if NewLatencyHistogram().CDF() != nil {
		t.Fatal("CDF of empty histogram should be nil")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.Add(100)
	b.Add(1000)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d, want 2", a.Count())
	}
	if a.Min() != 100 || a.Max() != 1000 {
		t.Fatal("merged min/max wrong")
	}
}

func TestHistogramMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched histograms did not panic")
		}
	}()
	NewHistogram(1, 2, 10).Merge(NewHistogram(1, 3, 10))
}

func TestHistogramBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram params did not panic")
		}
	}()
	NewHistogram(0, 1, 1)
}

func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(100)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(100)
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPercentilesExact(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	ps := Percentiles(xs, 0, 50, 100)
	if ps[0] != 1 || ps[1] != 5 || ps[2] != 9 {
		t.Fatalf("percentiles = %v, want [1 5 9]", ps)
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Fatal("Percentiles mutated input")
	}
	empty := Percentiles(nil, 50)
	if empty[0] != 0 {
		t.Fatal("empty input percentile should be 0")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 2)
	if out[0] != 1 || out[1] != 2 || out[2] != 4 {
		t.Fatalf("normalize = %v", out)
	}
	zero := Normalize([]float64{1, 2}, 0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("normalize by zero should produce zeros")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almostEqual(g, 10, 1e-12) {
		t.Fatalf("geomean = %v, want 10", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty should be 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("geomean with zero should be 0")
	}
}

// Property: histogram quantiles are within one bucket ratio of exact
// sample quantiles for uniformly random positive data.
func TestPropertyHistogramQuantileBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewLatencyHistogram()
		var xs []float64
		for i := 0; i < 500; i++ {
			x := 1 + rng.Float64()*1e6
			h.Add(x)
			xs = append(xs, x)
		}
		exact := Percentiles(xs, 50, 95)
		for i, p := range []float64{50, 95} {
			got := h.Percentile(p)
			// one bucket ratio = 10^(1/90) ≈ 1.026; allow 2 ratios slack
			if got < exact[i]/1.06 || got > exact[i]*1.06 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary mean is always between min and max.
func TestPropertySummaryMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		n := 0
		for _, x := range xs {
			// Bound the domain: Welford's d*d intermediate overflows
			// near ±1e154; cxlsim values are latencies/bandwidths far
			// below that.
			if math.IsNaN(x) || math.Abs(x) > 1e30 {
				continue
			}
			s.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewLatencyHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(100 + i%1000))
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 || snap.Underflow != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	if len(snap.Buckets) != 0 {
		t.Fatalf("empty histogram has %d buckets", len(snap.Buckets))
	}
}

func TestHistogramSnapshotBasic(t *testing.T) {
	h := NewHistogram(1, 3, 10) // 1 .. 1000
	for _, v := range []float64{2, 2, 50, 500} {
		h.Add(v)
	}
	h.Add(0.5) // underflow
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.Underflow != 1 {
		t.Fatalf("underflow = %d, want 1", snap.Underflow)
	}
	if math.Abs(snap.Sum-554) > 1e-9 {
		t.Fatalf("sum = %v, want 554", snap.Sum)
	}
	var total uint64
	last := 0.0
	for _, b := range snap.Buckets {
		if b.Count == 0 {
			t.Fatalf("snapshot contains empty bucket %+v", b)
		}
		if b.UpperBound <= last {
			t.Fatalf("bucket bounds not ascending: %v after %v", b.UpperBound, last)
		}
		last = b.UpperBound
		total += b.Count
	}
	if total != snap.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, snap.Count)
	}
	// Every observation must fall strictly below its bucket's bound.
	if got := snap.Buckets[0].Count; got != 2 {
		t.Fatalf("first bucket count = %d, want the two 2.0 observations", got)
	}
}

func TestHistogramSnapshotClampedOverflow(t *testing.T) {
	h := NewHistogram(1, 2, 5) // covers 1 .. 100; larger values clamp
	h.Add(10)
	h.Add(1e9) // clamped into the final bucket
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count = %d, want 2", snap.Count)
	}
	lastB := snap.Buckets[len(snap.Buckets)-1]
	if !math.IsInf(lastB.UpperBound, 1) {
		t.Fatalf("clamp bucket bound = %v, want +Inf", lastB.UpperBound)
	}
	if lastB.Count != 1 {
		t.Fatalf("clamp bucket count = %d, want 1", lastB.Count)
	}
	if math.Abs(snap.Sum-(10+1e9)) > 1 {
		t.Fatalf("sum = %v, want exact sum incl. clamped value", snap.Sum)
	}
}
