// Package stats provides the measurement primitives the cxlsim
// experiments report with: streaming summaries (Welford), log-bucketed
// latency histograms with percentile and CDF extraction, and small
// helpers for normalizing series the way the paper's figures do.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max in one pass using
// Welford's algorithm. The zero value is ready to use.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into s (parallel Welford merge).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the population variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Reset returns the summary to its zero state.
func (s *Summary) Reset() { *s = Summary{} }

// Histogram is a log-bucketed histogram tuned for latency-like positive
// values spanning several orders of magnitude (ns to ms). It supports
// percentile queries with bounded relative error set by bucketsPerDecade.
type Histogram struct {
	base    float64 // smallest representable value
	perDec  int     // buckets per decade
	lnRatio float64 // ln of per-bucket growth ratio
	counts  []uint64
	under   uint64 // observations below base
	sum     Summary
}

// NewHistogram builds a histogram covering [base, base*10^decades) with
// bucketsPerDecade resolution. Typical latency use:
// NewHistogram(1, 7, 90) covers 1 ns .. 10 ms at ~2.6% relative error.
func NewHistogram(base float64, decades, bucketsPerDecade int) *Histogram {
	if base <= 0 || decades <= 0 || bucketsPerDecade <= 0 {
		panic("stats: histogram parameters must be positive")
	}
	return &Histogram{
		base:    base,
		perDec:  bucketsPerDecade,
		lnRatio: math.Ln10 / float64(bucketsPerDecade),
		counts:  make([]uint64, decades*bucketsPerDecade+1),
	}
}

// NewLatencyHistogram covers 1 ns to 100 s, adequate for every latency
// cxlsim produces, at ~2.6% relative error.
func NewLatencyHistogram() *Histogram { return NewHistogram(1, 11, 90) }

func (h *Histogram) bucket(x float64) int {
	if x < h.base {
		return -1
	}
	b := int(math.Log(x/h.base) / h.lnRatio)
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	return b
}

// Add records one observation. Non-positive and NaN values are counted in
// the underflow bucket and excluded from percentiles.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) || x < h.base {
		h.under++
		return
	}
	h.counts[h.bucket(x)]++
	h.sum.Add(x)
}

// AddN records n identical observations (used when an epoch model knows a
// batch of ops shared a latency).
func (h *Histogram) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	if math.IsNaN(x) || x < h.base {
		h.under += n
		return
	}
	h.counts[h.bucket(x)] += n
	h.sum.Merge(Summary{n: n, mean: x, min: x, max: x})
}

// Count reports the number of in-range observations.
func (h *Histogram) Count() uint64 { return h.sum.Count() }

// Mean reports the exact mean of in-range observations.
func (h *Histogram) Mean() float64 { return h.sum.Mean() }

// Max reports the exact max of in-range observations.
func (h *Histogram) Max() float64 { return h.sum.Max() }

// Min reports the exact min of in-range observations.
func (h *Histogram) Min() float64 { return h.sum.Min() }

// value returns the geometric midpoint of bucket b.
func (h *Histogram) value(b int) float64 {
	return h.base * math.Exp(h.lnRatio*(float64(b)+0.5))
}

// Quantile returns the value at quantile q in [0,1]. With no observations
// it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.sum.Count()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.sum.Min()
	}
	if q >= 1 {
		return h.sum.Max()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.value(b)
		}
	}
	return h.sum.Max()
}

// Percentile is Quantile with p in [0,100].
func (h *Histogram) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64 // observation value (e.g. latency in ns)
	Fraction float64 // P(X <= Value)
}

// CDF returns the empirical CDF over non-empty buckets, suitable for the
// paper's latency-CDF plots (Fig. 5(c), Fig. 8(a)).
func (h *Histogram) CDF() []CDFPoint {
	total := h.sum.Count()
	if total == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{Value: h.value(b), Fraction: float64(cum) / float64(total)})
	}
	return out
}

// Merge folds another histogram into h. Both must have identical geometry.
func (h *Histogram) Merge(o *Histogram) {
	if h.base != o.base || h.perDec != o.perDec || len(h.counts) != len(o.counts) {
		panic("stats: merging histograms with different geometry")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.sum.Merge(o.sum)
}

// Bucket is one histogram bucket in a snapshot: the count of in-range
// observations with value < UpperBound's next bound and ≥ the previous
// bound. The final (clamp) bucket reports UpperBound = +Inf because
// overflowing observations are clamped into it.
type Bucket struct {
	UpperBound float64 // exclusive upper edge of the bucket
	Count      uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram's state,
// sufficient for Prometheus-style exposition: total count, exact sum,
// underflow count, and the non-empty buckets in ascending bound order.
type HistogramSnapshot struct {
	Count     uint64   // in-range observations
	Sum       float64  // exact sum of in-range observations
	Underflow uint64   // observations below the histogram base
	Buckets   []Bucket // non-empty buckets only, ascending
}

// Snapshot captures the histogram's current state. Empty histograms
// return a zero snapshot with no buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Count:     h.sum.Count(),
		Sum:       h.sum.Mean() * float64(h.sum.Count()),
		Underflow: h.under,
	}
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		ub := h.base * math.Exp(h.lnRatio*float64(b+1))
		if b == len(h.counts)-1 {
			// The last bucket absorbs clamped overflow; its true upper
			// edge is unbounded.
			ub = math.Inf(1)
		}
		snap.Buckets = append(snap.Buckets, Bucket{UpperBound: ub, Count: c})
	}
	return snap
}

// BucketUpperBound returns the exclusive upper edge of the bucket that
// would receive observation x — the `le` value its count lands under in
// a Snapshot. Underflow observations report the histogram base; clamped
// overflow reports +Inf, matching Snapshot's final bucket.
func (h *Histogram) BucketUpperBound(x float64) float64 {
	b := h.bucket(x)
	if b < 0 {
		return h.base
	}
	if b == len(h.counts)-1 {
		return math.Inf(1)
	}
	return h.base * math.Exp(h.lnRatio*float64(b+1))
}

// Sub returns the interval difference s−prev: the observations recorded
// between the two snapshots. Both must come from the same histogram with
// prev taken earlier (counts are monotone); violating that panics rather
// than returning a silently negative window.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if s.Count < prev.Count || s.Underflow < prev.Underflow {
		panic("stats: HistogramSnapshot.Sub with a later prev")
	}
	d := HistogramSnapshot{
		Count:     s.Count - prev.Count,
		Sum:       s.Sum - prev.Sum,
		Underflow: s.Underflow - prev.Underflow,
	}
	// Merge-walk by upper bound: both lists are ascending, and any bucket
	// non-empty in prev is non-empty in s.
	j := 0
	for _, b := range s.Buckets {
		var prevCount uint64
		for j < len(prev.Buckets) && prev.Buckets[j].UpperBound < b.UpperBound {
			j++
		}
		if j < len(prev.Buckets) && prev.Buckets[j].UpperBound == b.UpperBound {
			prevCount = prev.Buckets[j].Count
		}
		if b.Count < prevCount {
			panic("stats: HistogramSnapshot.Sub with a later prev")
		}
		if c := b.Count - prevCount; c > 0 {
			d.Buckets = append(d.Buckets, Bucket{UpperBound: b.UpperBound, Count: c})
		}
	}
	return d
}

// Quantile returns the value at quantile q in [0,1] computed from the
// snapshot's buckets. Because a snapshot carries bucket edges rather than
// exact observations, the result is the upper bound of the bucket holding
// the rank (a ≤2.6% overestimate at the default latency geometry);
// underflow observations rank below every bucket and report 0. With no
// observations it returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count + s.Underflow
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	if rank <= s.Underflow {
		return 0
	}
	cum := s.Underflow
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.UpperBound
		}
	}
	if n := len(s.Buckets); n > 0 {
		return s.Buckets[n-1].UpperBound
	}
	return 0
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under = 0
	h.sum.Reset()
}

// String summarizes the histogram for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f}",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Percentiles computes exact percentiles from a sample slice (sorted copy;
// the input is not modified). p values are in [0,100]. Used by tests to
// validate Histogram accuracy and by small-sample experiments.
func Percentiles(samples []float64, ps ...float64) []float64 {
	if len(samples) == 0 {
		return make([]float64, len(ps))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p <= 0 {
			out[i] = sorted[0]
			continue
		}
		if p >= 100 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
		if rank < 0 {
			rank = 0
		}
		out[i] = sorted[rank]
	}
	return out
}

// Normalize divides each element of xs by base, reproducing the paper's
// "normalized to MMEM" presentation (Fig. 7(a)). A zero base yields zeros.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// GeoMean returns the geometric mean of positive values; zero if any value
// is non-positive or the slice is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
