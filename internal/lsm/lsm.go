// Package lsm is a virtual-time log-structured merge tree — the RocksDB
// analogue behind KeyDB-FLASH (§4.1: "KeyDB extends Redis's capabilities
// by adding KeyDB Flash, which uses RocksDB for persistent storage").
//
// The tree tracks structure (memtable, L0 file list, leveled runs), not
// payloads: Put/Get return *cost descriptors* (WAL bytes, SSD block
// reads, cache hits) and compaction emits pending I/O byte counts that
// the caller charges against the simulated SSD each epoch. This upgrades
// the kvstore's analytic Flash model with real LSM dynamics: write
// amplification that grows with level count, bloom-filtered point reads,
// and read amplification spikes when L0 backs up.
package lsm

import (
	"fmt"
	"math/rand"
	"sort"
)

// Config sizes the tree. Zero values take RocksDB-flavored defaults.
type Config struct {
	MemtableBytes   uint64  // flush threshold (default 64 MB)
	L0CompactFiles  int     // L0 file count that triggers compaction (default 4)
	LevelRatio      int     // target size ratio between levels (default 10)
	BlockBytes      int     // SST block size (default 16 KB)
	BlockCacheBytes uint64  // block cache capacity (default 256 MB)
	BloomFPRate     float64 // bloom filter false-positive rate (default 0.01)
	Seed            int64
}

func (c *Config) fill() {
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 64 << 20
	}
	if c.L0CompactFiles == 0 {
		c.L0CompactFiles = 4
	}
	if c.LevelRatio == 0 {
		c.LevelRatio = 10
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 16 << 10
	}
	if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 256 << 20
	}
	if c.BloomFPRate == 0 {
		c.BloomFPRate = 0.01
	}
	if c.MemtableBytes < 1<<10 || c.L0CompactFiles < 2 || c.LevelRatio < 2 ||
		c.BlockBytes < 512 || c.BloomFPRate < 0 || c.BloomFPRate >= 1 {
		panic(fmt.Sprintf("lsm: invalid config %+v", *c))
	}
}

// file is one SST: a sorted key range with a size.
type file struct {
	minKey, maxKey uint64
	bytes          uint64
	entries        int
}

func (f file) overlaps(g file) bool { return f.minKey <= g.maxKey && g.minKey <= f.maxKey }

// Tree is the LSM tree.
type Tree struct {
	cfg Config
	rng *rand.Rand

	memKeys  map[uint64]int // key → value bytes
	memBytes uint64

	l0     []file   // newest first; ranges overlap
	levels [][]file // L1+: sorted, non-overlapping within a level

	cache       map[uint64]uint8 // block id → CLOCK ref
	cacheHand   []uint64
	cacheBlocks int

	// Pending I/O from flushes/compactions, drained by the caller.
	pendingRead, pendingWrite uint64

	// Cumulative stats.
	userBytes, flushedBytes, compactedBytes uint64
	gets, cacheHits                         uint64
}

// New builds an empty tree.
func New(cfg Config) *Tree {
	cfg.fill()
	return &Tree{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed + 1)),
		memKeys:     map[uint64]int{},
		cache:       map[uint64]uint8{},
		cacheBlocks: int(cfg.BlockCacheBytes) / cfg.BlockBytes,
	}
}

// PutCost describes the synchronous cost of one write.
type PutCost struct {
	WALBytes int  // write-ahead log append
	Flushed  bool // this put triggered a memtable flush
}

// Put records a write of valueBytes for key.
func (t *Tree) Put(key uint64, valueBytes int) PutCost {
	if valueBytes <= 0 {
		panic("lsm: non-positive value size")
	}
	old, existed := t.memKeys[key]
	t.memKeys[key] = valueBytes
	if existed {
		t.memBytes += uint64(valueBytes - old)
	} else {
		t.memBytes += uint64(valueBytes + 16) // key + metadata
	}
	t.userBytes += uint64(valueBytes)
	cost := PutCost{WALBytes: valueBytes + 24}
	if t.memBytes >= t.cfg.MemtableBytes {
		t.flush()
		cost.Flushed = true
	}
	return cost
}

// flush turns the memtable into an L0 file and schedules compactions.
func (t *Tree) flush() {
	if len(t.memKeys) == 0 {
		return
	}
	f := file{minKey: ^uint64(0), bytes: t.memBytes, entries: len(t.memKeys)}
	for k := range t.memKeys {
		if k < f.minKey {
			f.minKey = k
		}
		if k > f.maxKey {
			f.maxKey = k
		}
	}
	t.l0 = append([]file{f}, t.l0...)
	t.pendingWrite += f.bytes
	t.flushedBytes += f.bytes
	t.memKeys = map[uint64]int{}
	t.memBytes = 0
	t.maybeCompact()
}

// maybeCompact runs L0→L1 and cascading level compactions until the
// shape invariants hold.
func (t *Tree) maybeCompact() {
	for len(t.l0) >= t.cfg.L0CompactFiles {
		t.compactL0()
	}
	for li := 0; li < len(t.levels); li++ {
		for t.levelBytes(li) > t.levelTarget(li) {
			t.compactLevel(li)
		}
	}
}

func (t *Tree) levelBytes(li int) uint64 {
	var sum uint64
	for _, f := range t.levels[li] {
		sum += f.bytes
	}
	return sum
}

// levelTarget is the max size of level li (L1 = ratio × memtable, then
// ×ratio per level).
func (t *Tree) levelTarget(li int) uint64 {
	target := t.cfg.MemtableBytes * uint64(t.cfg.LevelRatio)
	for i := 0; i < li; i++ {
		target *= uint64(t.cfg.LevelRatio)
	}
	return target
}

func (t *Tree) ensureLevel(li int) {
	for len(t.levels) <= li {
		t.levels = append(t.levels, nil)
	}
}

// compactL0 merges all L0 files plus overlapping L1 files into L1.
func (t *Tree) compactL0() {
	t.ensureLevel(0)
	merged := t.l0[0]
	for _, f := range t.l0[1:] {
		if f.minKey < merged.minKey {
			merged.minKey = f.minKey
		}
		if f.maxKey > merged.maxKey {
			merged.maxKey = f.maxKey
		}
		merged.bytes += f.bytes
		merged.entries += f.entries
	}
	t.l0 = nil
	t.mergeInto(0, merged)
}

// compactLevel pushes one file from level li into level li+1.
func (t *Tree) compactLevel(li int) {
	t.ensureLevel(li + 1)
	// Pick the first file (round-robin-ish; deterministic).
	f := t.levels[li][0]
	t.levels[li] = t.levels[li][1:]
	t.mergeInto(li+1, f)
}

// mergeInto merges file f with the overlapping run of level li, charging
// read+write I/O for every byte touched.
func (t *Tree) mergeInto(li int, f file) {
	t.ensureLevel(li)
	var kept []file
	for _, g := range t.levels[li] {
		if g.overlaps(f) {
			// Merge g into f.
			if g.minKey < f.minKey {
				f.minKey = g.minKey
			}
			if g.maxKey > f.maxKey {
				f.maxKey = g.maxKey
			}
			t.pendingRead += g.bytes
			// Overlapping keys dedupe: keep the larger entry count's
			// share; approximate survivor fraction at 90%.
			f.bytes += g.bytes * 9 / 10
			f.entries += g.entries * 9 / 10
		} else {
			kept = append(kept, g)
		}
	}
	t.pendingRead += f.bytes
	t.pendingWrite += f.bytes
	t.compactedBytes += f.bytes
	kept = append(kept, f)
	sort.Slice(kept, func(i, j int) bool { return kept[i].minKey < kept[j].minKey })
	t.levels[li] = kept
}

// GetCost describes the synchronous cost of one read.
type GetCost struct {
	Memtable   bool // served from the memtable, no I/O
	SSDReads   int  // block reads that missed the cache
	CacheHits  int  // block reads served by the block cache
	BlockBytes int  // bytes read from SSD
}

// Get looks key up and returns its cost profile. Data contents are not
// tracked; a key is assumed present (the kvstore only asks for keys it
// spilled).
func (t *Tree) Get(key uint64) GetCost {
	t.gets++
	if _, ok := t.memKeys[key]; ok {
		return GetCost{Memtable: true}
	}
	var cost GetCost
	touch := func(blockID uint64) {
		if t.cacheGet(blockID) {
			cost.CacheHits++
			t.cacheHits++
		} else {
			cost.SSDReads++
			cost.BlockBytes += t.cfg.BlockBytes
			t.cacheAdd(blockID)
		}
	}
	// L0: every overlapping file must be consulted (newest first); bloom
	// filters skip most that don't hold the key.
	for i, f := range t.l0 {
		if key < f.minKey || key > f.maxKey {
			continue
		}
		// The key lives in the newest file that covers it; older files
		// are bloom-checked (false positives cost a block read).
		holds := i == t.newestL0Covering(key)
		if holds || t.rng.Float64() < t.cfg.BloomFPRate {
			touch(blockID(0, f, key, t.cfg.BlockBytes))
			if holds {
				return cost
			}
		}
	}
	// Leveled runs: binary search one candidate file per level.
	for li, level := range t.levels {
		idx := sort.Search(len(level), func(i int) bool { return level[i].maxKey >= key })
		if idx == len(level) || key < level[idx].minKey {
			continue
		}
		f := level[idx]
		// Bloom check; deepest levels hold the coldest data — assume the
		// first level whose range covers the key holds it (structure
		// approximation).
		touch(blockID(uint64(li+1), f, key, t.cfg.BlockBytes))
		return cost
	}
	return cost
}

// newestL0Covering returns the index of the newest L0 file covering key,
// or -1.
func (t *Tree) newestL0Covering(key uint64) int {
	for i, f := range t.l0 {
		if key >= f.minKey && key <= f.maxKey {
			return i
		}
	}
	return -1
}

// blockID derives a stable block identity from (level, file range, key).
func blockID(level uint64, f file, key uint64, blockBytes int) uint64 {
	entriesPerBlock := uint64(blockBytes / 64)
	if entriesPerBlock == 0 {
		entriesPerBlock = 1
	}
	return level<<56 ^ f.minKey<<8 ^ (key-f.minKey)/entriesPerBlock
}

// cacheGet probes the CLOCK block cache.
func (t *Tree) cacheGet(id uint64) bool {
	if _, ok := t.cache[id]; ok {
		t.cache[id] = 1
		return true
	}
	return false
}

// cacheAdd admits a block, evicting via CLOCK when full.
func (t *Tree) cacheAdd(id uint64) {
	if t.cacheBlocks == 0 {
		return
	}
	for len(t.cache) >= t.cacheBlocks {
		// Pop from the hand list; skip referenced entries once.
		if len(t.cacheHand) == 0 {
			for k := range t.cache {
				t.cacheHand = append(t.cacheHand, k)
			}
			sort.Slice(t.cacheHand, func(i, j int) bool { return t.cacheHand[i] < t.cacheHand[j] })
		}
		victim := t.cacheHand[0]
		t.cacheHand = t.cacheHand[1:]
		if ref, ok := t.cache[victim]; ok {
			if ref > 0 {
				t.cache[victim] = 0
				t.cacheHand = append(t.cacheHand, victim)
				continue
			}
			delete(t.cache, victim)
		}
	}
	t.cache[id] = 1
	t.cacheHand = append(t.cacheHand, id)
}

// DrainIO returns and clears the pending background I/O (flush and
// compaction traffic) so the caller can charge it to the SSD.
func (t *Tree) DrainIO() (readBytes, writeBytes uint64) {
	r, w := t.pendingRead, t.pendingWrite
	t.pendingRead, t.pendingWrite = 0, 0
	return r, w
}

// Stats summarizes tree shape and amplification.
type Stats struct {
	MemtableBytes uint64
	L0Files       int
	Levels        []int // file counts per level
	WriteAmp      float64
	CacheHitRate  float64
	TotalSSTBytes uint64
}

// WriteAmpComparison contrasts the structural LSM engine's write
// amplification with an append-only log tier's (the durable spill
// tier's spill.Stats.WriteAmplification). LogAdvantage > 1 means the
// log wrote fewer physical bytes per user byte than the LSM — the
// expected shape, since the log defers all reclamation while the LSM
// pays compaction up front.
type WriteAmpComparison struct {
	LSM          float64
	Log          float64
	LogAdvantage float64 // LSM / Log; 0 until both sides have writes
}

// CompareWriteAmp positions this tree's write amplification against a
// log-structured tier's.
func (s Stats) CompareWriteAmp(logWriteAmp float64) WriteAmpComparison {
	c := WriteAmpComparison{LSM: s.WriteAmp, Log: logWriteAmp}
	if s.WriteAmp > 0 && logWriteAmp > 0 {
		c.LogAdvantage = s.WriteAmp / logWriteAmp
	}
	return c
}

// Stats computes the current summary.
func (t *Tree) Stats() Stats {
	s := Stats{MemtableBytes: t.memBytes, L0Files: len(t.l0)}
	var sst uint64
	for _, f := range t.l0 {
		sst += f.bytes
	}
	for _, level := range t.levels {
		s.Levels = append(s.Levels, len(level))
		for _, f := range level {
			sst += f.bytes
		}
	}
	s.TotalSSTBytes = sst
	if t.userBytes > 0 {
		s.WriteAmp = float64(t.flushedBytes+t.compactedBytes) / float64(t.userBytes)
	}
	if t.gets > 0 {
		s.CacheHitRate = float64(t.cacheHits) / float64(t.gets)
	}
	return s
}
