package lsm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallTree() *Tree {
	return New(Config{
		MemtableBytes:   64 << 10, // 64 KB for fast flushes in tests
		BlockCacheBytes: 256 << 10,
		Seed:            1,
	})
}

func TestPutAccumulatesAndFlushes(t *testing.T) {
	tr := smallTree()
	flushed := false
	for k := uint64(0); k < 200; k++ {
		c := tr.Put(k, 1024)
		if c.WALBytes < 1024 {
			t.Fatalf("WAL bytes %d below value size", c.WALBytes)
		}
		flushed = flushed || c.Flushed
	}
	if !flushed {
		t.Fatal("200 KB of puts through a 64 KB memtable must flush")
	}
	r, w := tr.DrainIO()
	if w == 0 {
		t.Fatal("flush should emit write I/O")
	}
	_ = r
	// Drain is destructive.
	if r2, w2 := tr.DrainIO(); r2 != 0 || w2 != 0 {
		t.Fatal("second drain should be empty")
	}
}

func TestMemtableGetIsFree(t *testing.T) {
	tr := smallTree()
	tr.Put(42, 100)
	c := tr.Get(42)
	if !c.Memtable || c.SSDReads != 0 {
		t.Fatalf("memtable-resident get cost = %+v", c)
	}
}

func TestGetAfterFlushReadsBlocks(t *testing.T) {
	tr := New(Config{MemtableBytes: 64 << 10, BlockCacheBytes: 16 << 10, Seed: 1})
	for k := uint64(0); k < 1000; k++ {
		tr.Put(k, 1024)
	}
	// Most keys are now on disk; a get should cost block reads (cache is
	// tiny).
	misses := 0
	for k := uint64(0); k < 1000; k += 37 {
		c := tr.Get(k)
		if !c.Memtable && c.SSDReads > 0 {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("no SSD reads despite a tiny cache")
	}
}

func TestBlockCacheAbsorbsHotReads(t *testing.T) {
	tr := New(Config{MemtableBytes: 64 << 10, BlockCacheBytes: 64 << 20, Seed: 1})
	for k := uint64(0); k < 2000; k++ {
		tr.Put(k, 512)
	}
	// Re-read a hot key repeatedly: after the first read its block is
	// cached.
	first := tr.Get(7)
	if first.Memtable {
		t.Skip("key still in memtable; enlarge dataset")
	}
	again := tr.Get(7)
	if again.SSDReads != 0 || again.CacheHits == 0 {
		t.Fatalf("hot re-read cost = %+v, want pure cache hits", again)
	}
	if tr.Stats().CacheHitRate <= 0 {
		t.Fatal("cache hit rate should be positive")
	}
}

func TestCompactionKeepsLevelsSorted(t *testing.T) {
	tr := smallTree()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		tr.Put(uint64(rng.Intn(1_000_000)), 256)
	}
	for li, level := range tr.levels {
		for i := 1; i < len(level); i++ {
			if level[i-1].maxKey >= level[i].minKey {
				t.Fatalf("level %d files overlap: %+v then %+v", li+1, level[i-1], level[i])
			}
		}
	}
	if s := tr.Stats(); s.L0Files >= tr.cfg.L0CompactFiles {
		t.Fatalf("L0 backed up: %d files", s.L0Files)
	}
}

func TestWriteAmplificationGrows(t *testing.T) {
	// Write amplification must exceed 1 and grow as data outgrows
	// single-level capacity — the leveled-compaction signature.
	tr := smallTree()
	for k := uint64(0); k < 2000; k++ {
		tr.Put(k, 512)
	}
	early := tr.Stats().WriteAmp
	for k := uint64(0); k < 100_000; k++ {
		tr.Put(k%50_000, 512)
	}
	late := tr.Stats().WriteAmp
	if early < 1 && early != 0 {
		t.Fatalf("early write amp %v below 1", early)
	}
	if late <= early {
		t.Fatalf("write amp should grow with data: %v -> %v", early, late)
	}
	if late < 1.5 || late > 40 {
		t.Fatalf("steady write amp = %v, want a plausible leveled-LSM value", late)
	}
}

func TestPointReadAmplificationBounded(t *testing.T) {
	// With blooms, a point read should touch O(1) blocks on average, not
	// one per level.
	tr := New(Config{MemtableBytes: 64 << 10, BlockCacheBytes: 1 << 10, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50_000; i++ {
		tr.Put(uint64(rng.Intn(500_000)), 256)
	}
	totalReads := 0
	const gets = 2000
	for i := 0; i < gets; i++ {
		c := tr.Get(uint64(rng.Intn(500_000)))
		totalReads += c.SSDReads + c.CacheHits
	}
	if avg := float64(totalReads) / gets; avg > 2.5 {
		t.Fatalf("avg blocks touched per get = %.2f, blooms should keep this ≈1", avg)
	}
}

func TestDrainIOAccountsCompaction(t *testing.T) {
	tr := smallTree()
	var totalW uint64
	var user uint64
	for k := uint64(0); k < 50_000; k++ {
		tr.Put(k%10_000, 512)
		user += 512
		_, w := tr.DrainIO()
		totalW += w
	}
	if totalW <= user {
		t.Fatalf("drained write I/O %d should exceed user bytes %d (write amp)", totalW, user)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MemtableBytes: 1},
		{L0CompactFiles: 1},
		{LevelRatio: 1},
		{BlockBytes: 8},
		{BloomFPRate: 1.5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			New(cfg)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-size put should panic")
		}
	}()
	New(Config{}).Put(1, 0)
}

func TestStatsShape(t *testing.T) {
	tr := smallTree()
	for k := uint64(0); k < 5000; k++ {
		tr.Put(k, 512)
	}
	s := tr.Stats()
	if s.TotalSSTBytes == 0 {
		t.Fatal("SST bytes should be positive after flushes")
	}
	if len(s.Levels) == 0 {
		t.Fatal("compaction should have created leveled runs")
	}
}

// Property: level files never overlap and L0 stays below its trigger
// after any put sequence.
func TestPropertyInvariants(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := smallTree()
		for _, k := range keys {
			tr.Put(uint64(k), 300)
		}
		if len(tr.l0) >= tr.cfg.L0CompactFiles {
			return false
		}
		for _, level := range tr.levels {
			for i := 1; i < len(level); i++ {
				if level[i-1].maxKey >= level[i].minKey {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New(Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i%100000), 512)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New(Config{MemtableBytes: 1 << 20, Seed: 1})
	for k := uint64(0); k < 100_000; k++ {
		tr.Put(k, 512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i % 100_000))
	}
}
