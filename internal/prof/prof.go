// Package prof wires the standard runtime/pprof profiles into
// command-line tools: commands expose -cpuprofile/-memprofile flags and
// hand the paths here. (Long-running servers use net/http/pprof on their
// debug mux instead — see obs.RegisterDebug.)
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the flag values and returns a stop function
// to defer: it ends the CPU profile and writes the heap profile. Empty
// paths disable the corresponding profile, so commands can call Start
// unconditionally.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: writing heap profile: %v\n", err)
			}
		}
	}, nil
}
