package core

import (
	"fmt"

	"cxlsim/internal/dram"
	"cxlsim/internal/memsim"
)

func init() {
	registry["dram"] = DRAMValidation
}

// DRAMValidation cross-validates the calibrated analytic device model
// against the bank-level DDR5 timing simulation: the phenomena the §3
// anchors encode (streaming efficiency, the write bandwidth gap, random
// ≈ sequential at depth, closed-page latency) must emerge from first
// principles.
func DRAMValidation(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "dram",
		Title:   "Bank-level DDR5 timing model vs calibrated anchors",
		Headers: []string{"workload", "bw GB/s", "efficiency", "row hits", "avg lat ns"},
	}
	timing, geom := dram.DDR5_4800(), dram.DefaultGeometry()
	accesses := 300_000
	if opt.Quick {
		accesses = 60_000
	}
	cases := []struct {
		name string
		w    dram.Workload
	}{
		{"stream read 1:0", dram.Workload{Pattern: dram.Stream, ReadFrac: 1, Streams: 16, Depth: 8, Footprint: 1 << 30, Accesses: accesses, Seed: 1}},
		{"stream 2:1", dram.Workload{Pattern: dram.Stream, ReadFrac: 2.0 / 3, Streams: 16, Depth: 8, Footprint: 1 << 30, Accesses: accesses, Seed: 1}},
		{"stream write 0:1", dram.Workload{Pattern: dram.Stream, ReadFrac: 0, Streams: 16, Depth: 8, Footprint: 1 << 30, Accesses: accesses, Seed: 1}},
		{"random read", dram.Workload{Pattern: dram.Rand, ReadFrac: 1, Streams: 16, Depth: 8, Footprint: 1 << 30, Accesses: accesses, Seed: 1}},
		{"dependent chain", dram.Workload{Pattern: dram.Rand, ReadFrac: 1, Streams: 1, Depth: 1, Footprint: 1 << 30, Accesses: accesses / 10, Seed: 1}},
	}
	for _, c := range cases {
		r := dram.Measure(timing, geom, c.w)
		rep.AddRow(c.name,
			fmt.Sprintf("%.1f", r.BandwidthGBps),
			fmt.Sprintf("%.0f%%", r.Efficiency*100),
			fmt.Sprintf("%.0f%%", r.RowHitRate*100),
			fmt.Sprintf("%.1f", r.AvgLatencyNs))
	}
	ddr := memsim.NewDDRDomain("ddr")
	rep.AddNote("anchors (per channel): read eff %.0f%%, write/read ratio %.2f; the bank model omits controller/mesh overheads so it bounds the anchors from above",
		ddr.Peak.At(1)/memsim.SNCDomainPeakGBps*100, ddr.Peak.At(0)/ddr.Peak.At(1))
	return rep, nil
}
