package core

import (
	"fmt"

	"cxlsim/internal/vmsched"
)

func init() {
	registry["fleet"] = Fleet
}

// Fleet packs canonical 1:4 instances onto §4.3-shaped servers (1152
// vCPUs, 1:3-provisioned DRAM) with increasing CXL expansion, reporting
// sellable vCPUs and revenue — the scheduler-level counterpart of the
// sec43 closed-form analysis.
func Fleet(Options) (*Report, error) {
	rep := &Report{
		ID:      "fleet",
		Title:   "VM fleet packing with CXL expansion (§4.3, scheduler level)",
		Headers: []string{"CXL GB/server", "sold DRAM vCPU", "sold CXL vCPU", "stranded", "sellable", "revenue (20% CXL discount)"},
	}
	const (
		vcpus   = 1152
		servers = 4
	)
	var baseline float64
	for _, cxlGB := range []int{0, 288, 576, 1152, 2304} {
		fleet := make([]*vmsched.Server, servers)
		for i := range fleet {
			fleet[i] = vmsched.NewServer(fmt.Sprintf("srv%d", i), vcpus, vcpus*3, cxlGB)
		}
		s := vmsched.NewScheduler(fleet...)
		s.PackAll(vmsched.StandardInstances(servers*vcpus/8, 8))
		r := s.Report(0.20)
		if cxlGB == 0 {
			baseline = r.RevenueUnits
		}
		rep.AddRow(
			fmt.Sprintf("%d", cxlGB),
			fmt.Sprintf("%d", r.SoldDRAM),
			fmt.Sprintf("%d", r.SoldCXL),
			fmt.Sprintf("%d", r.Stranded),
			fmt.Sprintf("%.0f%%", r.SellableFrac()*100),
			fmt.Sprintf("%.0f (%+.1f%%)", r.RevenueUnits, (r.RevenueUnits/baseline-1)*100))
	}
	rep.AddNote("1152 GB of CXL per server closes the 1:4 gap exactly; beyond that adds nothing (vCPUs are the binding constraint)")
	return rep, nil
}
