// Package core is cxlsim's top-level experiment facade: it builds the
// paper's testbed out of the substrate packages, runs any of the paper's
// figures/tables by ID, and renders the same rows/series the paper
// reports. The cmd/cxlbench binary, the examples, and the root-level
// benchmarks all drive this package.
package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"cxlsim/internal/fault"
	"cxlsim/internal/par"
	"cxlsim/internal/report"
	"cxlsim/internal/slo"
)

// Report is one regenerated figure or table.
type Report struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	// Runs holds per-cell windowed metric snapshots (and SLO
	// evaluations) when the experiment ran with Options.WindowNs set;
	// cmd/cxlbench renders them with -report and cmd/cxlreport consumes
	// their JSON dumps. Nil for experiments without windowed support.
	Runs []*report.Run
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a footnote shown under the table.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteTable renders the report as an aligned text table.
func (r *Report) WriteTable(w io.Writer) {
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the report as CSV (headers first; notes as trailing
// comment lines).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Headers); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks op counts and sweeps for fast smoke runs (unit
	// tests, CI); full fidelity is the default.
	Quick bool
	// Seed drives all workload randomness (0 ⇒ 42).
	Seed int64
	// Parallel caps worker goroutines in the experiment fan-out loops
	// (and in RunAll across experiments). 0 means GOMAXPROCS; 1 forces
	// serial execution. Reports are byte-identical at any setting: every
	// parallel loop writes results index-aligned and assembles rows in
	// the original serial order.
	Parallel int
	// Faults, when non-nil, replays the fault schedule inside the
	// device-level serving experiments (fig5, fig8): each cell runs
	// twice — healthy and degraded, on fresh machines — and the report
	// gains degraded-vs-healthy delta columns. Experiments without a
	// per-device serving loop ignore it. With Faults nil the output is
	// byte-identical to builds without the fault subsystem.
	Faults *fault.Schedule
	// WindowNs, when positive, turns on fixed virtual-time windowed
	// metric aggregation inside the serving experiments that support it
	// (fig8): each cell runs with its own registry/tracer/window stack
	// and the Report.Runs slice carries the windowed snapshots. Zero
	// leaves the table output byte-identical to builds without windows.
	WindowNs float64
	// SLO, when non-nil (requires WindowNs > 0), evaluates the spec
	// against every windowed cell; the per-window results ride along in
	// Report.Runs[i].SLO.
	SLO *slo.Spec
	// Shards caps the parallel shards inside sharded-engine experiments
	// (the shard experiment's cluster and fleet runs). 0 or 1 means one
	// shard. Like Parallel, tables are byte-identical at any setting —
	// shards change wall-clock time, never results.
	Shards int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// Runner is an experiment generator.
type Runner func(Options) (*Report, error)

// registry maps experiment IDs to runners; populated in experiments.go.
var registry = map[string]Runner{}

// Experiments lists the available experiment IDs, sorted.
func Experiments() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, opt Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
	}
	return r(opt)
}

// RunAll executes every registered experiment and returns reports in
// sorted ID order. Experiments run concurrently (opt.Parallel workers;
// each may also fan out internally), but the returned slice — and any
// error — is index-aligned to the sorted ID list, so output matches a
// serial run byte for byte. On error the slice holds the reports that
// precede the first (lowest-ID) failure.
func RunAll(opt Options) ([]*Report, error) {
	ids := Experiments()
	reps := make([]*Report, len(ids))
	errs := make([]error, len(ids))
	par.ForEach(len(ids), opt.Parallel, func(i int) {
		reps[i], errs[i] = Run(ids[i], opt)
	})
	for i, err := range errs {
		if err != nil {
			return reps[:i], fmt.Errorf("core: running %s: %w", ids[i], err)
		}
	}
	return reps, nil
}
