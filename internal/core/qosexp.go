package core

import (
	"fmt"

	"cxlsim/internal/memsim"
	"cxlsim/internal/qos"
	"cxlsim/internal/topology"
)

func init() {
	registry["qos"] = QoS
}

// QoS runs the bandwidth-regulation extension (paper ref [31], §5.3
// insight): a latency-critical tenant shares an SNC domain with
// best-effort hogs, with and without MT²-style throttling, and with the
// hogs offloaded onto CXL.
func QoS(Options) (*Report, error) {
	rep := &Report{
		ID:      "qos",
		Title:   "Memory-bandwidth regulation on shared tiers (ref [31], §5.3)",
		Headers: []string{"scenario", "tenant", "granted GB/s", "achieved GB/s", "latency ns"},
	}
	m := topology.TestbedSNC()
	dram := memsim.SinglePath(m.PathFrom(0, m.DRAMNodes(0)[0]))
	cxl := m.PathFrom(0, m.CXLNodes()[0])
	tenants := []qos.Tenant{
		{Name: "latency-critical", Class: qos.LatencyCritical, Placement: dram, Mix: memsim.ReadOnly, DemandGBps: 10},
		{Name: "hog-1", Class: qos.BestEffort, Placement: dram, Mix: memsim.ReadOnly, DemandGBps: 40},
		{Name: "hog-2", Class: qos.BestEffort, Placement: dram, Mix: memsim.ReadOnly, DemandGBps: 40},
	}
	emit := func(scenario string, allocs []qos.Allocation) {
		for _, a := range allocs {
			rep.AddRow(scenario, a.Tenant.Name,
				fmt.Sprintf("%.1f", a.GrantedGBps),
				fmt.Sprintf("%.1f", a.Achieved),
				fmt.Sprintf("%.0f", a.LatencyNs))
		}
	}
	emit("unregulated", qos.Unregulated(tenants))
	emit("regulated", qos.Regulator{}.Regulate(tenants))

	// Third scenario: tier the hogs onto DRAM+CXL (the §3.4 insight) and
	// regulate — best-effort throughput recovers without hurting the
	// latency-critical tenant.
	tiered := make([]qos.Tenant, len(tenants))
	copy(tiered, tenants)
	for i := 1; i < len(tiered); i++ {
		tiered[i].Placement = memsim.Interleave(m.PathFrom(0, m.DRAMNodes(0)[0]), cxl, 1, 1)
	}
	emit("regulated+tiered", qos.Regulator{}.Regulate(tiered))
	rep.AddNote("regulation keeps the shared devices below the 75%% knee; tiering the hogs recovers best-effort bandwidth")
	return rep, nil
}
