package core

import (
	"fmt"

	"cxlsim/internal/kvstore"
	"cxlsim/internal/llm"
	"cxlsim/internal/workload"
)

func init() {
	registry["shard"] = Shard
}

// Shard exercises the sharded event kernel on the two natural
// multi-instance workloads: a 4-node KeyDB cluster (each node a Table-1
// deployment, 15% of ops owned by a remote node and forwarded over the
// fabric) and a 4-instance LLM serving fleet with router-level load
// shedding. Options.Shards picks how many OS threads execute the
// simulation; every cell is byte-identical at any setting, so the table
// doubles as the determinism gate for -shards.
func Shard(opt Options) (*Report, error) {
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	ops, reqs := 6000, 2000
	if opt.Quick {
		ops, reqs = 1500, 400
	}

	rep := &Report{
		ID:    "shard",
		Title: "Sharded multi-instance simulation (cluster KeyDB + LLM fleet)",
		Headers: []string{"scenario", "instance", "throughput",
			"p50 lat (us)", "p99 lat (us)", "forwarded"},
	}

	cres, err := kvstore.RunCluster(kvstore.ClusterConfig{
		Nodes:      4,
		Shards:     shards,
		Config:     kvstore.ConfInter11,
		Deploy:     kvstore.DeployOptions{SimKeys: 1 << 14},
		Mix:        workload.YCSBB,
		OpsPerNode: ops,
		Seed:       opt.seed(),
		RemoteFrac: 0.15,
	})
	if err != nil {
		return nil, err
	}
	for i, r := range cres.PerNode {
		rep.AddRow("kvstore 1:1", fmt.Sprintf("node %d", i),
			fmt.Sprintf("%.0f ops/s", r.ThroughputOpsPerSec),
			fmt.Sprintf("%.1f", r.Latency.Percentile(50)/1e3),
			fmt.Sprintf("%.1f", r.Latency.Percentile(99)/1e3),
			fmt.Sprintf("%d", r.Forwarded))
	}
	m := cres.Merged
	rep.AddRow("kvstore 1:1", "cluster",
		fmt.Sprintf("%.0f ops/s", m.ThroughputOpsPerSec),
		fmt.Sprintf("%.1f", m.Latency.Percentile(50)/1e3),
		fmt.Sprintf("%.1f", m.Latency.Percentile(99)/1e3),
		fmt.Sprintf("%d", m.Forwarded))

	fres, err := llm.ServeFleet(llm.FleetConfig{
		Instances:           4,
		Shards:              shards,
		Policy:              llm.Policy{Name: "1:1", TopN: 1, LowM: 1},
		Backends:            2,
		RequestsPerInstance: reqs,
		Seed:                opt.seed(),
	})
	if err != nil {
		return nil, err
	}
	tput := func(served int, endNs float64) string {
		if endNs <= 0 {
			return "0 req/s"
		}
		return fmt.Sprintf("%.1f req/s", float64(served)/(endNs/1e9))
	}
	for i, in := range fres.PerInstance {
		rep.AddRow("llm fleet 1:1", fmt.Sprintf("inst %d", i),
			tput(in.Served, fres.EndNs),
			fmt.Sprintf("%.1f", in.Latency.Percentile(50)/1e3),
			fmt.Sprintf("%.1f", in.Latency.Percentile(99)/1e3),
			fmt.Sprintf("%d", in.ForwardedOut))
	}
	rep.AddRow("llm fleet 1:1", "fleet",
		tput(fres.Served, fres.EndNs),
		fmt.Sprintf("%.1f", fres.Latency.Percentile(50)/1e3),
		fmt.Sprintf("%.1f", fres.Latency.Percentile(99)/1e3),
		fmt.Sprintf("%d", fres.Forwarded))

	rep.AddNote("conservative-lookahead sharded simulation: %d cluster epochs, lookahead = one fabric hop", cres.Epochs)
	rep.AddNote("this table is byte-identical at any -shards setting; shards change wall-clock time only")
	return rep, nil
}
