package core

import (
	"fmt"

	"cxlsim/internal/planner"
)

func init() {
	registry["plan"] = PlanExperiment
}

// PlanExperiment runs the fleet planner over representative workload
// mixes, showing where CXL expansion wins on cost (§6's "guidance to the
// design of the next-generation infrastructure").
func PlanExperiment(Options) (*Report, error) {
	rep := &Report{
		ID:      "plan",
		Title:   "Fleet planning across server shapes (§6 guidance)",
		Headers: []string{"fleet", "chosen shape", "servers", "cost units", "DRAM GB", "CXL GB"},
	}
	fleets := []struct {
		name    string
		classes []planner.WorkloadClass
	}{
		{"capacity-bound (KeyDB-like)", []planner.WorkloadClass{
			{Name: "keydb", Count: 12, WorkingSetGB: 512, BandwidthGBps: 5, MaxCXLShare: 0.5},
		}},
		{"bandwidth-bound (LLM-like)", []planner.WorkloadClass{
			{Name: "llm", Count: 40, WorkingSetGB: 16, BandwidthGBps: 30, MaxCXLShare: 1},
		}},
		{"latency-critical", []planner.WorkloadClass{
			{Name: "ultra", Count: 8, WorkingSetGB: 256, BandwidthGBps: 10, MaxCXLShare: 0},
		}},
		{"mixed", []planner.WorkloadClass{
			{Name: "keydb", Count: 6, WorkingSetGB: 512, BandwidthGBps: 5, MaxCXLShare: 0.5},
			{Name: "llm", Count: 10, WorkingSetGB: 16, BandwidthGBps: 25, MaxCXLShare: 1},
			{Name: "ultra", Count: 3, WorkingSetGB: 64, BandwidthGBps: 8, MaxCXLShare: 0},
		}},
	}
	for _, f := range fleets {
		plan, err := planner.Optimize(f.classes, nil)
		if err != nil {
			return nil, fmt.Errorf("core: planning %s: %w", f.name, err)
		}
		rep.AddRow(f.name, plan.Shape.Name,
			fmt.Sprintf("%d", plan.Servers),
			fmt.Sprintf("%.2f", plan.CostUnits),
			fmt.Sprintf("%.0f", plan.DRAMUsedGB),
			fmt.Sprintf("%.0f", plan.CXLUsedGB))
	}
	rep.AddNote("capacity- and bandwidth-bound fleets pick CXL shapes; latency-critical fleets stay on the baseline")
	return rep, nil
}
