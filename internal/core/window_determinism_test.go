// Determinism contract for the windowed observability layer, tested
// through the full experiment stack: same-seed runs must produce
// byte-identical windowed snapshots and SLO evaluations at any
// parallelism, with and without a fault schedule replaying mid-run.
package core_test

import (
	"bytes"
	"runtime"
	"testing"

	"cxlsim/internal/core"
	"cxlsim/internal/fault"
	"cxlsim/internal/slo"
)

func windowSchedule() *fault.Schedule {
	return &fault.Schedule{
		Faults: []fault.Fault{
			{At: 2e6, Duration: 30e6, Kind: fault.LinkDegrade, Target: "/cxl0", Severity: 0.7},
			{At: 5e6, Duration: 10e6, Kind: fault.DeviceStall, Target: "/cxl1", Severity: 0.9},
			{At: 30e6, Kind: fault.NodeLoss, Target: "/cxl1", Severity: 1},
		},
		Client: &fault.Resilience{TimeoutNs: 2e6, BackoffNs: 0.5e6, MaxRetries: 3},
	}
}

func windowSpec() *slo.Spec {
	return &slo.Spec{
		Name:     "determinism",
		WindowMs: 10,
		Objectives: []slo.Objective{
			{Name: "op-latency", Kind: slo.KindLatency, Metric: "kvstore_op_latency_ns", ThresholdNs: 1e6, Target: 0.99},
			{Name: "availability", Kind: slo.KindAvailability, Metric: "kvstore_ops_total", BadMetric: "kvstore_failed_ops_total", Target: 0.999},
		},
		Alerts: []slo.AlertRule{
			{Name: "latency-fast-burn", Objective: "op-latency", LongWindows: 3, ShortWindows: 1, BurnRate: 5},
		},
	}
}

// renderWindowedFig8 runs fig8 with windows+SLO (optionally degraded)
// and serializes every windowed run dump to one byte stream.
func renderWindowedFig8(t *testing.T, parallel int, faults *fault.Schedule) []byte {
	t.Helper()
	rep, err := core.Run("fig8", core.Options{
		Quick: true, Parallel: parallel, Faults: faults,
		WindowNs: 10e6, SLO: windowSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2
	if faults != nil {
		want = 4
	}
	if len(rep.Runs) != want {
		t.Fatalf("fig8 collected %d windowed runs, want %d", len(rep.Runs), want)
	}
	var b bytes.Buffer
	for _, r := range rep.Runs {
		if len(r.Windows) == 0 {
			t.Fatalf("run %s sealed no windows", r.Label)
		}
		if r.SLO == nil || len(r.SLO.Windows) != len(r.Windows) {
			t.Fatalf("run %s: SLO evaluated %v windows, sealed %d", r.Label, r.SLO, len(r.Windows))
		}
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.Bytes()
}

func TestWindowedRunsByteIdenticalAcrossParallelism(t *testing.T) {
	serial := renderWindowedFig8(t, 1, nil)
	if again := renderWindowedFig8(t, 1, nil); !bytes.Equal(serial, again) {
		t.Fatal("two serial windowed runs differ")
	}
	if wide := renderWindowedFig8(t, runtime.GOMAXPROCS(0), nil); !bytes.Equal(serial, wide) {
		t.Fatal("parallel windowed run differs from serial")
	}
}

func TestWindowedRunsByteIdenticalUnderFaults(t *testing.T) {
	serial := renderWindowedFig8(t, 1, windowSchedule())
	if again := renderWindowedFig8(t, 1, windowSchedule()); !bytes.Equal(serial, again) {
		t.Fatal("two serial degraded windowed runs differ")
	}
	if wide := renderWindowedFig8(t, runtime.GOMAXPROCS(0), windowSchedule()); !bytes.Equal(serial, wide) {
		t.Fatal("parallel degraded windowed run differs from serial")
	}
}

// The windowed table must not drift from the un-windowed one: turning
// observability on cannot change the simulation.
func TestWindowsDoNotPerturbTables(t *testing.T) {
	render := func(windowNs float64) string {
		opt := core.Options{Quick: true, Parallel: 1, WindowNs: windowNs}
		if windowNs > 0 {
			opt.SLO = windowSpec()
		}
		rep, err := core.Run("fig8", opt)
		if err != nil {
			t.Fatal(err)
		}
		var sb bytes.Buffer
		rep.WriteTable(&sb)
		return sb.String()
	}
	if plain, windowed := render(0), render(10e6); plain != windowed {
		t.Fatalf("windowed fig8 table differs from plain:\n%s\nvs\n%s", plain, windowed)
	}
}
