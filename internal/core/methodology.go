package core

import (
	"fmt"

	"cxlsim/internal/memsim"
)

func init() {
	registry["emu"] = EmulationComparison
	registry["gen"] = Generations
}

// EmulationComparison quantifies the §2.2 methodology critique: research
// that emulates CXL memory with a remote NUMA node misses both the
// latency gap (130 vs 250 ns idle) and — decisively — the contention
// behaviour: the UPI path loses bandwidth under mixed traffic while the
// real ASIC's PCIe path does not, so emulation-derived policies over- or
// under-offload.
func EmulationComparison(Options) (*Report, error) {
	rep := &Report{
		ID:      "emu",
		Title:   "NUMA emulation vs real ASIC CXL (§2.2 methodology gap)",
		Headers: []string{"mix", "emulated idle", "real idle", "emu peak", "real peak", "peak error"},
	}
	emu := memsim.NewPath("numa-emulation", memsim.NewUPILink("upi"), memsim.NewDDRDomain("ddr"))
	real := memsim.NewPath("asic-cxl", memsim.NewCXLDevice("cxl"))
	for _, mix := range memsim.StandardMixes() {
		e, r := emu.PeakBandwidth(mix), real.PeakBandwidth(mix)
		rep.AddRow(mix.Label(),
			fmt.Sprintf("%.0f ns", emu.IdleLatency(mix)),
			fmt.Sprintf("%.0f ns", real.IdleLatency(mix)),
			fmt.Sprintf("%.1f GB/s", e),
			fmt.Sprintf("%.1f GB/s", r),
			fmt.Sprintf("%+.0f%%", (e/r-1)*100))
	}
	rep.AddNote("emulation understates idle latency by ≈2x and misstates per-mix bandwidth, worst for write-heavy traffic")
	return rep, nil
}

// Generations renders the §7 projection: device characteristics across
// CXL generations.
func Generations(Options) (*Report, error) {
	rep := &Report{
		ID:      "gen",
		Title:   "CXL generations projection (§7 discussion)",
		Headers: []string{"device", "idle ns", "peak GB/s (2:1)", "lat vs DDR", "bw vs DDR"},
	}
	for _, g := range memsim.CompareGenerations(memsim.Mix2to1) {
		rep.AddRow(g.Name,
			fmt.Sprintf("%.0f", g.IdleNs),
			fmt.Sprintf("%.1f", g.PeakGBps),
			fmt.Sprintf("%.2fx", g.LatVsDDR),
			fmt.Sprintf("%.2fx", g.BWFracDDR))
	}
	rep.AddNote("CXL 2.0/3.x rows are projections (switch/fabric latency + PCIe 6.0 rate), not measurements")
	return rep, nil
}
