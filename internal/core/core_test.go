package core

import (
	"strings"
	"testing"
)

func TestExperimentsRegistry(t *testing.T) {
	want := []string{"dram", "emu", "fig10", "fig3", "fig4", "fig5", "fig7", "fig8", "fleet", "gen", "plan", "pool", "qos", "sec43", "sense", "shard", "table2", "table3"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunAllQuick(t *testing.T) {
	reps, err := RunAll(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(Experiments()) {
		t.Fatalf("got %d reports, want %d", len(reps), len(Experiments()))
	}
	for _, r := range reps {
		if len(r.Rows) == 0 {
			t.Errorf("%s: empty report", r.ID)
		}
		if len(r.Headers) == 0 {
			t.Errorf("%s: no headers", r.ID)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Headers) {
				t.Errorf("%s: row width %d != headers %d", r.ID, len(row), len(r.Headers))
			}
		}
	}
}

func TestWriteTable(t *testing.T) {
	rep := &Report{
		ID:      "demo",
		Title:   "demo table",
		Headers: []string{"a", "long-header"},
	}
	rep.AddRow("x", "y")
	rep.AddNote("a note with %d", 42)
	var sb strings.Builder
	rep.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"== demo: demo table ==", "long-header", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSeedDefaults(t *testing.T) {
	if (Options{}).seed() != 42 {
		t.Fatal("zero seed should default to 42")
	}
	if (Options{Seed: 7}).seed() != 7 {
		t.Fatal("explicit seed should pass through")
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	rep, err := Run("table3", Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Rows[0]
	if row[4] != "67.29%" {
		t.Errorf("server ratio cell = %q, want 67.29%%", row[4])
	}
	if row[6] != "25.98%" {
		t.Errorf("TCO saving cell = %q, want 25.98%%", row[6])
	}
}

func TestWriteCSV(t *testing.T) {
	rep := &Report{
		ID:      "demo",
		Headers: []string{"a", "b"},
	}
	rep.AddRow("1", "two, with comma")
	rep.AddNote("n1")
	var sb strings.Builder
	if err := rep.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a,b\n") {
		t.Errorf("missing CSV header: %q", out)
	}
	if !strings.Contains(out, `"two, with comma"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, "# n1") {
		t.Errorf("missing note comment: %q", out)
	}
}

func TestEmulationGapReport(t *testing.T) {
	rep, err := Run("emu", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("emu rows = %d, want 5 mixes", len(rep.Rows))
	}
}

func TestGenerationsReport(t *testing.T) {
	rep, err := Run("gen", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("gen rows = %d, want 4 generations", len(rep.Rows))
	}
}

func TestFleetReportClosesGapAt1152(t *testing.T) {
	rep, err := Run("fleet", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[0] == "1152" && row[4] != "100%" {
			t.Fatalf("1152 GB CXL row sellable = %q, want 100%%", row[4])
		}
		if row[0] == "0" && row[4] != "75%" {
			t.Fatalf("no-CXL row sellable = %q, want 75%%", row[4])
		}
	}
}

func TestRunAllDeterministic(t *testing.T) {
	render := func() string {
		reps, err := RunAll(Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range reps {
			r.WriteTable(&sb)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("RunAll output is not deterministic")
	}
}

// TestRunAllParallelByteIdentical is the determinism contract of the
// parallel runner: tables AND CSV from a fully parallel run must match a
// forced-serial run byte for byte.
func TestRunAllParallelByteIdentical(t *testing.T) {
	render := func(parallel int) string {
		reps, err := RunAll(Options{Quick: true, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range reps {
			r.WriteTable(&sb)
			if err := r.WriteCSV(&sb); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatal("parallel RunAll output differs from serial run")
	}
}

// TestShardExperimentByteIdenticalAcrossShards pins the -shards contract
// at the report level: the rendered table must not change with the shard
// count.
func TestShardExperimentByteIdenticalAcrossShards(t *testing.T) {
	render := func(shards int) string {
		rep, err := Run("shard", Options{Quick: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		rep.WriteTable(&sb)
		return sb.String()
	}
	want := render(1)
	for _, shards := range []int{2, 4, 8} {
		if got := render(shards); got != want {
			t.Fatalf("shard experiment diverged at shards=%d:\n%s\nvs\n%s", shards, want, got)
		}
	}
}

func TestFig3ReportAnchors(t *testing.T) {
	rep, err := Run("fig3", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// 4 paths × 5 mixes.
	if len(rep.Rows) != 20 {
		t.Fatalf("fig3 rows = %d, want 20", len(rep.Rows))
	}
	// First row: local DDR read-only — idle ≈ 97 ns.
	if !strings.HasPrefix(rep.Rows[0][2], "97") && !strings.HasPrefix(rep.Rows[0][2], "98") {
		t.Errorf("local read idle cell = %q, want ≈97-98", rep.Rows[0][2])
	}
}
