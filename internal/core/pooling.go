package core

import (
	"fmt"

	"cxlsim/internal/pool"
)

func init() {
	registry["pool"] = Pooling
}

// Pooling runs the §7 extension experiment: CXL 2.0 memory pooling
// economics (provisioned-capacity savings for bursty fleets) and pooled
// noisy-neighbor interference.
func Pooling(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "pool",
		Title:   "CXL 2.0 pooling extension (§7): capacity savings and interference",
		Headers: []string{"scenario", "hosts", "metric", "value"},
	}
	epochs := 4000
	if opt.Quick {
		epochs = 400
	}

	// Capacity economics across fleet sizes.
	for _, hosts := range []int{2, 4, 8, 16} {
		models := make([]pool.DemandModel, hosts)
		for h := range models {
			models[h] = pool.NewLogNormalDemand(64<<30, 0.5, opt.seed()+int64(h))
		}
		res, err := pool.ProvisioningStudy{Hosts: hosts, Epochs: epochs, Quantile: 0.99}.Run(models)
		if err != nil {
			return nil, err
		}
		rep.AddRow("capacity", fmt.Sprintf("%d", hosts), "provisioning saving",
			fmt.Sprintf("%.1f%% (static %d GB → local %d GB + pool %d GB)",
				res.SavingFrac*100, res.StaticBytes>>30,
				res.PooledLocalBytes>>30, res.PooledCXLBytes>>30))
	}

	// Interference: a 10 GB/s victim vs increasing aggressor pressure on
	// one pooled device.
	d := pool.NewDevice("mld0", 1<<40)
	for _, aggressors := range []int{0, 2, 4, 8} {
		alone, shared := pool.Interference(d, 10, aggressors, 12)
		rep.AddRow("interference", fmt.Sprintf("%d+1", aggressors), "victim loaded latency",
			fmt.Sprintf("%.0f ns (alone %.0f ns)", shared, alone))
	}
	rep.AddNote("pooling amortizes burst capacity across hosts (Pond-style) but shares device bandwidth")
	return rep, nil
}
