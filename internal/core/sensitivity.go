package core

import (
	"fmt"

	"cxlsim/internal/llm"
	"cxlsim/internal/memsim"
	"cxlsim/internal/topology"
)

func init() {
	registry["sense"] = Sensitivity
}

// Sensitivity probes how robust the paper's headline conclusions are to
// the CXL device's latency — the parameter future ASICs will move most.
// For each latency multiplier it reports:
//
//   - the LLM 3:1-interleave gain over MMEM-only at 60 threads (Fig.
//     10(a)'s +95%): bandwidth-bound, so it should survive large latency
//     inflation;
//   - the loaded-latency advantage of offloading 20% of a saturating
//     stream (§3.4): also contention-driven;
//   - the idle-latency ratio vs DDR (the capacity-bound KeyDB cost,
//     Fig. 5): linear in the multiplier, the conclusion most at risk.
func Sensitivity(Options) (*Report, error) {
	rep := &Report{
		ID:      "sense",
		Title:   "Sensitivity of headline conclusions to CXL latency",
		Headers: []string{"CXL latency x", "idle vs DDR", "LLM 3:1 gain @60thr", "offload Δlatency @90GB/s"},
	}
	for _, factor := range []float64{1, 1.5, 2, 3, 4} {
		m := topology.TestbedSNC()
		if factor > 1 {
			for _, n := range m.CXLNodes() {
				n.Resource().Degrade(1, factor)
			}
		}
		cxlPath := m.PathFrom(0, m.CXLNodes()[0])
		dramPath := m.PathFrom(0, m.DRAMNodes(0)[0])
		idleRatio := cxlPath.IdleLatency(memsim.ReadOnly) / dramPath.IdleLatency(memsim.ReadOnly)

		c := llm.NewClusterOn(m)
		gain := c.ServingRate(llm.Fig10Policies()[1], 5).TokensPerSec/
			c.ServingRate(llm.Fig10Policies()[0], 5).TokensPerSec - 1

		only, _ := memsim.SolveOpen([]memsim.OpenFlow{{
			Placement: memsim.SinglePath(dramPath), Mix: memsim.ReadOnly, Offered: 90,
		}})
		off, _ := memsim.SolveOpen([]memsim.OpenFlow{{
			Placement: memsim.Interleave(dramPath, cxlPath, 4, 1), Mix: memsim.ReadOnly, Offered: 90,
		}})
		rep.AddRow(
			fmt.Sprintf("%.1f", factor),
			fmt.Sprintf("%.1fx", idleRatio),
			fmt.Sprintf("%+.0f%%", gain*100),
			fmt.Sprintf("%+.0f ns", off[0].Latency-only[0].Latency))
	}
	rep.AddNote("bandwidth-driven wins (LLM gain, offload) survive latency inflation; capacity-bound costs scale with it")
	return rep, nil
}
