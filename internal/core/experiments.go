package core

import (
	"fmt"
	"sync"

	"cxlsim/internal/analytics"
	"cxlsim/internal/costmodel"
	"cxlsim/internal/elastic"
	"cxlsim/internal/fault"
	"cxlsim/internal/kvstore"
	"cxlsim/internal/llm"
	"cxlsim/internal/memsim"
	"cxlsim/internal/mlc"
	"cxlsim/internal/obs"
	"cxlsim/internal/par"
	"cxlsim/internal/report"
	"cxlsim/internal/sim"
	"cxlsim/internal/slo"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

func init() {
	registry["fig3"] = Fig3
	registry["fig4"] = Fig4
	registry["fig5"] = Fig5
	registry["fig7"] = Fig7
	registry["fig8"] = Fig8
	registry["fig10"] = Fig10
	registry["table2"] = Table2
	registry["table3"] = Table3
	registry["sec43"] = Sec43
}

// testbedPaths returns the four §3 measurement routes on a fresh SNC
// testbed.
func testbedPaths() (local, remote, cxl, cxlr *memsim.Path) {
	m := topology.TestbedSNC()
	local = m.PathFrom(0, m.DRAMNodes(0)[0])
	remote = m.PathFrom(1, m.DRAMNodes(0)[0])
	cxl = m.PathFrom(0, m.CXLNodes()[0])
	cxlr = m.PathFrom(1, m.CXLNodes()[0])
	return
}

// Fig3 regenerates the loaded-latency curve summary of Fig. 3: per path
// and read:write mix, the idle latency, peak bandwidth, and knee point.
// The path×mix grid of sweeps runs in parallel; rows assemble serially in
// grid order, so the table matches a serial run byte for byte.
func Fig3(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "fig3",
		Title:   "Loaded latency by path and read:write mix (Fig. 3)",
		Headers: []string{"path", "mix", "idle ns", "peak GB/s", "knee %peak", "sat ns"},
	}
	opts := mlc.DefaultOptions()
	if opt.Quick {
		opts.Steps = 12
	}
	opts.Parallel = opt.Parallel
	local, remote, cxl, cxlr := testbedPaths()
	paths := []*memsim.Path{local, remote, cxl, cxlr}
	mixes := memsim.StandardMixes()
	curves := make([]mlc.Curve, len(paths)*len(mixes))
	par.ForEach(len(curves), opt.Parallel, func(i int) {
		curves[i] = mlc.LoadedLatency(paths[i/len(mixes)], mixes[i%len(mixes)], opts)
	})
	for i, c := range curves {
		last := c.Points[len(c.Points)-1]
		rep.AddRow(paths[i/len(mixes)].Name, mixes[i%len(mixes)].Label(),
			fmt.Sprintf("%.1f", c.IdleLatency()),
			fmt.Sprintf("%.1f", c.PeakBandwidth()),
			fmt.Sprintf("%.0f%%", c.KneeUtilization()*100),
			fmt.Sprintf("%.0f", last.LatencyNs))
	}
	rep.AddNote("anchors: MMEM 97ns/67GB/s, MMEM-r 130ns, CXL 250.42ns/56.7GB/s@2:1, CXL-r 485ns/20.4GB/s (RSF clamp)")
	return rep, nil
}

// Fig4 regenerates the distance comparison at fixed mixes plus the
// random-vs-sequential panels (Fig. 4(g,h)).
func Fig4(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "fig4",
		Title:   "MMEM vs CXL across NUMA/socket distances (Fig. 4)",
		Headers: []string{"mix", "pattern", "path", "idle ns", "peak GB/s"},
	}
	opts := mlc.DefaultOptions()
	if opt.Quick {
		opts.Steps = 12
	}
	opts.Parallel = opt.Parallel
	local, remote, cxl, cxlr := testbedPaths()
	paths := []*memsim.Path{local, remote, cxl, cxlr}
	// Standard mixes for panels (a–f), then the random-pattern panels
	// (g,h) for read-only and write-only. Per-mix sweep families run in
	// parallel; rows assemble serially in mix order.
	mixes := append(memsim.StandardMixes(),
		memsim.ReadOnly.WithPattern(memsim.Random),
		memsim.WriteOnly.WithPattern(memsim.Random))
	families := make([][]mlc.Curve, len(mixes))
	par.ForEach(len(mixes), opt.Parallel, func(i int) {
		families[i] = mlc.SweepPaths(paths, mixes[i], opts)
	})
	for i, mix := range mixes {
		for _, c := range families[i] {
			rep.AddRow(mix.Label(), mix.Pattern.String(), c.PathName,
				fmt.Sprintf("%.1f", c.IdleLatency()),
				fmt.Sprintf("%.1f", c.PeakBandwidth()))
		}
	}
	rep.AddNote("random vs sequential shows no significant disparity (§3.3)")
	return rep, nil
}

// Fig5 regenerates the KeyDB YCSB experiment: throughput per Table-1
// configuration and workload, tail latencies for YCSB-A, and the YCSB-C
// latency CDF summary.
func Fig5(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "fig5",
		Title:   "KeyDB YCSB throughput and latency under Table-1 configurations (Fig. 5)",
		Headers: []string{"config", "workload", "kops/s", "vs MMEM", "p50 µs", "p99 µs", "hit rate"},
	}
	mixes := workload.StandardMixes()
	ops := 40_000
	warmEpochs := 120
	if opt.Quick {
		mixes = mixes[:2]
		ops = 8_000
		warmEpochs = 40
	}
	// Every (config, mix) cell is an independent deployment on its own
	// simulated machine; run them all in parallel, index-aligned, then
	// assemble rows serially so baselines and row order match the serial
	// loop exactly.
	configs := kvstore.Table1Configs()
	results := make([]kvstore.Result, len(configs)*len(mixes))
	errs := make([]error, len(results))
	runCell := func(i int, faults *fault.Schedule) (kvstore.Result, error) {
		conf, mix := configs[i/len(mixes)], mixes[i%len(mixes)]
		d, err := kvstore.Deploy(conf, kvstore.DeployOptions{SimKeys: 1 << 16})
		if err != nil {
			return kvstore.Result{}, err
		}
		d.Warm(mix, warmEpochs, 100_000, opt.seed())
		rc, err := d.RunConfigWithFaults(mix, opt.seed(), faults)
		if err != nil {
			return kvstore.Result{}, err
		}
		rc.Ops = ops
		return kvstore.Run(d.Store, d.Alloc, rc), nil
	}
	par.ForEach(len(results), opt.Parallel, func(i int) {
		results[i], errs[i] = runCell(i, nil)
	})
	// Degraded pass: the same grid on fresh machines with the schedule
	// replaying mid-run, reported as extra delta columns.
	var faulted []kvstore.Result
	if opt.Faults != nil {
		rep.Headers = append(rep.Headers, "faulted kops/s", "Δ%")
		faulted = make([]kvstore.Result, len(results))
		ferrs := make([]error, len(results))
		par.ForEach(len(results), opt.Parallel, func(i int) {
			faulted[i], ferrs[i] = runCell(i, opt.Faults)
		})
		for _, err := range ferrs {
			if err != nil {
				return nil, err
			}
		}
	}
	base := map[string]float64{}
	var timeouts, retries, failed uint64
	for ci, conf := range configs {
		for mi, mix := range mixes {
			i := ci*len(mixes) + mi
			if errs[i] != nil {
				return nil, errs[i]
			}
			res := results[i]
			if conf == kvstore.ConfMMEM {
				base[mix.Name] = res.ThroughputOpsPerSec
			}
			slow := "1.00x"
			if b := base[mix.Name]; b > 0 {
				slow = fmt.Sprintf("%.2fx", b/res.ThroughputOpsPerSec)
			}
			row := []string{string(conf), mix.Name,
				fmt.Sprintf("%.0f", res.ThroughputOpsPerSec/1e3),
				slow,
				fmt.Sprintf("%.0f", res.Latency.Percentile(50)/1e3),
				fmt.Sprintf("%.0f", res.Latency.Percentile(99)/1e3),
				fmt.Sprintf("%.3f", res.HitRate)}
			if faulted != nil {
				f := faulted[i]
				row = append(row,
					fmt.Sprintf("%.0f", f.ThroughputOpsPerSec/1e3),
					fmt.Sprintf("%+.1f%%", (f.ThroughputOpsPerSec/res.ThroughputOpsPerSec-1)*100))
				timeouts += f.Timeouts
				retries += f.Retries
				failed += f.Failed
			}
			rep.AddRow(row...)
		}
	}
	rep.AddNote("paper: interleave 1.2–1.5x slower, SSD ≈1.8x, Hot-Promote ≈ MMEM (§4.1.2)")
	if faulted != nil {
		rep.AddNote("fault replay: %d timeouts, %d retries, %d failed ops across the grid — extrapolation beyond the paper's healthy-hardware data", timeouts, retries, failed)
	}
	return rep, nil
}

// Fig7 regenerates the Spark TPC-H experiment: normalized execution time
// and shuffle share per query and cluster configuration.
func Fig7(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "fig7",
		Title:   "Spark TPC-H execution time and shuffle share (Fig. 7)",
		Headers: []string{"config", "query", "exec s", "vs MMEM", "shuffle %", "write %", "read %"},
	}
	queries := analytics.TPCHQueries()
	if opt.Quick {
		queries = queries[:2]
	}
	// Engines are cheap to build and Run is read-only over engine state,
	// so every (config, query) cell runs in parallel against a shared
	// per-config engine; rows assemble serially in the original order.
	cfgs := analytics.Fig7Configs()
	engines := make([]*analytics.Engine, len(cfgs))
	for i, cfg := range cfgs {
		eng, err := analytics.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	results := make([]analytics.QueryResult, len(cfgs)*len(queries))
	par.ForEach(len(results), opt.Parallel, func(i int) {
		results[i] = engines[i/len(queries)].Run(queries[i%len(queries)])
	})
	base := map[string]float64{}
	for ci, cfg := range cfgs {
		for qi, q := range queries {
			r := results[ci*len(queries)+qi]
			if cfg.Name == "MMEM" {
				base[q.Name] = r.ExecTimeNs
			}
			norm := "1.00x"
			if b := base[q.Name]; b > 0 {
				norm = fmt.Sprintf("%.2fx", r.ExecTimeNs/b)
			}
			rep.AddRow(cfg.Name, q.Name,
				fmt.Sprintf("%.1f", r.ExecTimeNs/1e9),
				norm,
				fmt.Sprintf("%.0f%%", r.ShufflePct()*100),
				fmt.Sprintf("%.0f%%", r.ShuffleWrite*100),
				fmt.Sprintf("%.0f%%", r.ShuffleRead*100))
		}
	}
	rep.AddNote("paper: interleave 1.4–9.8x vs MMEM, spill worse still, Hot-Promote >1.34x (§4.2.2)")
	return rep, nil
}

// Fig8 regenerates the CXL-only KeyDB comparison: read-latency CDF points
// and throughput for a 100 GB YCSB-C workload bound to MMEM vs CXL.
func Fig8(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Title:   "KeyDB YCSB-C bound to CXL vs MMEM (Fig. 8)",
		Headers: []string{"binding", "kops/s", "p50 µs", "p90 µs", "p99 µs"},
	}
	ops := 40_000
	if opt.Quick {
		ops = 8_000
	}
	windowed := opt.WindowNs > 0
	run := func(label string, pick func(*topology.Machine) []*topology.Node, faults *fault.Schedule) (*kvstore.Result, *report.Run, error) {
		m := topology.Testbed()
		alloc := vmm.NewAllocator(m)
		st, err := kvstore.NewStore(m, alloc, kvstore.StoreConfig{
			WorkingSetBytes: 100 << 30,
			SimKeys:         1 << 16,
			MaxMemoryFrac:   1,
			Policy:          vmm.Bind{Nodes: pick(m)},
		})
		if err != nil {
			return nil, nil, err
		}
		rc := kvstore.RunConfig{Mix: workload.YCSBC, Ops: ops, Seed: opt.seed()}
		if faults != nil {
			inj, err := fault.NewInjector(faults, m)
			if err != nil {
				return nil, nil, err
			}
			rc.Faults = inj
			pol := faults.ClientPolicy()
			rc.TimeoutNs, rc.BackoffNs, rc.MaxRetries = pol.TimeoutNs, pol.BackoffNs, pol.MaxRetries
		}
		// Windowed cells get a private registry/tracer/window stack so
		// parallel cells never share metric state; the SLO evaluator (when
		// configured) rides each cell's window seals.
		var win *obs.Windows
		var eval *slo.Evaluator
		if windowed {
			reg := obs.NewRegistry()
			tr := obs.NewTracer()
			win = obs.NewWindows(reg, sim.Time(opt.WindowNs))
			if opt.SLO != nil {
				eval = slo.NewEvaluator(*opt.SLO)
				eval.Instrument(reg, tr)
				eval.Bind(win)
			}
			rc.Metrics, rc.Tracer, rc.Windows = reg, tr, win
		}
		res := kvstore.Run(st, alloc, rc)
		res.Config = label
		var rr *report.Run
		if windowed {
			rr = &report.Run{
				Label:    label,
				Config:   label,
				Workload: rc.Mix.Name,
				WindowNs: opt.WindowNs,
				Windows:  win.Snapshot(),
			}
			if faults != nil {
				rr.Schedule = "degraded"
			}
			if eval != nil {
				rr.SLO = eval.Evaluation()
			}
		}
		return &res, rr, nil
	}
	// The two bindings are independent deployments; run them in parallel
	// (healthy pair first, then the degraded pair when a schedule is set).
	bindings := []struct {
		label string
		pick  func(*topology.Machine) []*topology.Node
	}{
		{"MMEM", func(m *topology.Machine) []*topology.Node { return m.DRAMNodes(0) }},
		{"CXL", func(m *topology.Machine) []*topology.Node { return m.CXLNodes() }},
	}
	cells := len(bindings)
	if opt.Faults != nil {
		rep.Headers = append(rep.Headers, "faulted kops/s", "Δ%")
		cells *= 2
	}
	runs := make([]*kvstore.Result, cells)
	winRuns := make([]*report.Run, cells)
	err := par.ForEachErr(cells, opt.Parallel, func(i int) error {
		var faults *fault.Schedule
		label := bindings[i%len(bindings)].label
		if i >= len(bindings) {
			faults = opt.Faults
			label += "-degraded"
		}
		b := bindings[i%len(bindings)]
		r, rr, err := run(label, b.pick, faults)
		runs[i], winRuns[i] = r, rr
		return err
	})
	if err != nil {
		return nil, err
	}
	if windowed {
		for _, rr := range winRuns {
			if rr != nil {
				rep.Runs = append(rep.Runs, rr)
			}
		}
	}
	mmem, cxl := runs[0], runs[1]
	for ri, r := range []*kvstore.Result{mmem, cxl} {
		row := []string{r.Config,
			fmt.Sprintf("%.0f", r.ThroughputOpsPerSec/1e3),
			fmt.Sprintf("%.1f", r.ReadLatency.Percentile(50)/1e3),
			fmt.Sprintf("%.1f", r.ReadLatency.Percentile(90)/1e3),
			fmt.Sprintf("%.1f", r.ReadLatency.Percentile(99)/1e3)}
		if opt.Faults != nil {
			f := runs[len(bindings)+ri]
			row = append(row,
				fmt.Sprintf("%.0f", f.ThroughputOpsPerSec/1e3),
				fmt.Sprintf("%+.1f%%", (f.ThroughputOpsPerSec/r.ThroughputOpsPerSec-1)*100))
		}
		rep.AddRow(row...)
	}
	drop := 1 - cxl.ThroughputOpsPerSec/mmem.ThroughputOpsPerSec
	pen := cxl.ReadLatency.Percentile(50)/mmem.ReadLatency.Percentile(50) - 1
	rep.AddNote("throughput drop %.1f%% (paper ≈12.5%%); p50 read penalty %.1f%% (paper 9–27%%)", drop*100, pen*100)
	if opt.Faults != nil {
		fm, fc := runs[len(bindings)], runs[len(bindings)+1]
		rep.AddNote("fault replay: %d timeouts, %d retries, %d failed ops — extrapolation beyond the paper's healthy-hardware data",
			fm.Timeouts+fc.Timeouts, fm.Retries+fc.Retries, fm.Failed+fc.Failed)
	}
	return rep, nil
}

// Fig10 regenerates the LLM inference experiment: serving rate vs thread
// count per placement policy, per-backend bandwidth scaling, and the KV
// cache bandwidth curve.
func Fig10(opt Options) (*Report, error) {
	rep := &Report{
		ID:      "fig10",
		Title:   "CPU LLM inference (Fig. 10)",
		Headers: []string{"panel", "policy", "x", "value"},
	}
	c := fig10Cluster()
	maxBackends := 6
	if opt.Quick {
		maxBackends = 5
	}
	// The policy × backend-count grid solves in parallel; series points
	// are index-aligned per policy, so rows emit in sweep order.
	series := c.Fig10aParallel(maxBackends, opt.Parallel)
	for _, p := range llm.Fig10Policies() {
		for _, pt := range series[p.Name] {
			rep.AddRow("(a) serving rate", pt.Policy,
				fmt.Sprintf("%d threads", pt.Threads),
				fmt.Sprintf("%.2f tok/s (bw %.1f GB/s, lat %.0f ns)", pt.TokensPerSec, pt.BandwidthGB, pt.LatencyNs))
		}
	}
	for _, th := range []int{4, 8, 12, 16, 20, 24, 32} {
		rep.AddRow("(b) backend bw", "MMEM", fmt.Sprintf("%d threads", th),
			fmt.Sprintf("%.1f GB/s", c.BackendBandwidth(th)))
	}
	for _, kv := range []float64{0, 1e9, 2e9, 4e9, 8e9, 16e9, 32e9} {
		rep.AddRow("(c) kv cache bw", "MMEM", fmt.Sprintf("%.0f GB", kv/1e9),
			fmt.Sprintf("%.1f GB/s", c.KVCacheBandwidth(kv)))
	}
	rep.AddNote("paper: MMEM saturates at 48 threads; 3:1 +95%% at 60 threads; 1:3 beats MMEM ≈14%% beyond 64 threads (§5.2)")
	return rep, nil
}

// fig10Cluster shares one serving cluster across fig10 runs: the §5.1
// platform is fixed, a Cluster is read-only after construction, and the
// solvers are re-entrant, so repeated or concurrent runs (the parallel
// experiment runner, benchmark loops) need not rebuild the whole testbed
// machine each time. Experiments that perturb devices (sensitivity,
// failure injection) build their own machines and are unaffected.
var fig10Cluster = sync.OnceValue(llm.NewCluster)

// Table2 renders the Intel processor series table with the provisioning
// gap analysis.
func Table2(Options) (*Report, error) {
	rep := &Report{
		ID:      "table2",
		Title:   "Intel processor series and the 1:4 memory requirement (Table 2)",
		Headers: []string{"year", "cpu", "max vCPU", "channels", "max mem TB", "required TB", "gap TB", "sellable"},
	}
	for _, p := range elastic.Table2() {
		rep.AddRow(p.Year, p.CPU,
			fmt.Sprintf("%d", p.MaxVCPU), p.Channels,
			fmt.Sprintf("%.0f", p.MaxMemoryTB),
			fmt.Sprintf("%.3g", p.PublishedRequiredTB),
			fmt.Sprintf("%.2f", p.MemoryGapTB()),
			fmt.Sprintf("%.0f%%", p.SellableVCPUFrac()*100))
	}
	return rep, nil
}

// Table3 renders the Abstract Cost Model parameters and the §6 worked
// example.
func Table3(Options) (*Report, error) {
	rep := &Report{
		ID:      "table3",
		Title:   "Abstract Cost Model (Table 3, §6)",
		Headers: []string{"Rd", "Rc", "C", "Rt", "N_cxl/N_base", "server reduction", "TCO saving"},
	}
	p := costmodel.PaperExample()
	ratio, err := p.ServerRatio()
	if err != nil {
		return nil, err
	}
	saving, err := p.TCOSaving()
	if err != nil {
		return nil, err
	}
	rep.AddRow(
		fmt.Sprintf("%.0f", p.Rd), fmt.Sprintf("%.0f", p.Rc),
		fmt.Sprintf("%.0f", p.C), fmt.Sprintf("%.1f", p.Rt),
		fmt.Sprintf("%.2f%%", ratio*100),
		fmt.Sprintf("%.2f%%", (1-ratio)*100),
		fmt.Sprintf("%.2f%%", saving*100))
	rep.AddNote("paper: 67.29%% server ratio, 25.98%% TCO saving")
	return rep, nil
}

// Sec43 renders the elastic-compute revenue analysis.
func Sec43(Options) (*Report, error) {
	rep := &Report{
		ID:      "sec43",
		Title:   "Spare-core revenue recovery with CXL (§4.3)",
		Headers: []string{"GiB/vCPU", "sellable", "stranded", "CXL discount", "recovered revenue"},
	}
	m := elastic.PaperExample()
	rep.AddRow(
		fmt.Sprintf("%.0f", m.GiBPerVCPU),
		fmt.Sprintf("%.0f%%", m.SellableFrac()*100),
		fmt.Sprintf("%.0f%%", m.StrandedFrac()*100),
		fmt.Sprintf("%.0f%%", m.CXLDiscount*100),
		fmt.Sprintf("%.2f%%", m.RecoveredRevenueFrac()*100))
	rep.AddNote("paper: ≈27%% improvement in total revenue; 12.5%% CXL penalty covered by the 20%% discount")
	return rep, nil
}
