package tiering

import (
	"testing"

	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
)

// fakeHealth marks an explicit set of nodes degraded.
type fakeHealth map[*topology.Node]bool

func (f fakeHealth) Degraded(n *topology.Node) bool { return f[n] }

func TestPickDstSkipsDegraded(t *testing.T) {
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	cxl0, cxl1 := m.CXLNodes()[0], m.CXLNodes()[1]
	tiers := Tiers{
		Slow:   []*topology.Node{cxl0, cxl1},
		Health: fakeHealth{cxl0: true},
	}
	if got := tiers.pickDst(tiers.Slow, alloc, vmm.DefaultPageSize); got != cxl1 {
		t.Fatalf("pickDst chose %v, want the healthy cxl1", got)
	}
	tiers.Health = fakeHealth{cxl0: true, cxl1: true}
	if got := tiers.pickDst(tiers.Slow, alloc, vmm.DefaultPageSize); got != nil {
		t.Fatalf("pickDst chose %v with every slow node degraded, want nil (skip migration)", got)
	}
	// Nil health: every node is healthy, first fit wins.
	tiers.Health = nil
	if got := tiers.pickDst(tiers.Slow, alloc, vmm.DefaultPageSize); got != cxl0 {
		t.Fatalf("pickDst chose %v with nil health, want cxl0", got)
	}
}

// Regression: a degraded preferred CXL target must divert demotions to
// the alternate slow node, never receive pages itself.
func TestTPPDemotionFallsBackToAlternateTier(t *testing.T) {
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	dram := m.DRAMNodes(0)[0]
	cxl0, cxl1 := m.CXLNodes()[0], m.CXLNodes()[1]

	const pages = 8
	// Fill DRAM completely so TPP's free watermark is violated and it
	// must demote; the space's own pages are the only demotable ones.
	fill := vmm.NewSpace(0)
	reserve := dram.Capacity - uint64(pages)*vmm.DefaultPageSize
	if err := alloc.Alloc(fill, reserve, vmm.Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	space := vmm.NewSpace(0)
	if err := alloc.Alloc(space, pages*vmm.DefaultPageSize, vmm.Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}

	d := &TPP{Tiers: Tiers{
		Fast: []*topology.Node{dram},
		Slow: []*topology.Node{cxl0, cxl1}, // cxl0 preferred, but degraded
	}}
	d.SetHealth(fakeHealth{cxl0: true})

	rep := d.Tick(0, space, alloc)
	if rep.DemotedPages == 0 {
		t.Fatal("watermark violation produced no demotions")
	}
	for i := range space.Pages {
		if space.Pages[i].Node == cxl0 {
			t.Fatalf("page %d demoted onto the degraded cxl0", i)
		}
	}
	onAlternate := 0
	for i := range space.Pages {
		if space.Pages[i].Node == cxl1 {
			onAlternate++
		}
	}
	if onAlternate != rep.DemotedPages {
		t.Fatalf("%d pages on the alternate tier, want all %d demotions there",
			onAlternate, rep.DemotedPages)
	}
}

// Regression: HotPromote evacuates pages stranded on a degraded slow
// node even when their heat is below the promotion threshold.
func TestHotPromoteEvacuatesDegradedNode(t *testing.T) {
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	dram := m.DRAMNodes(0)[0]
	cxl0 := m.CXLNodes()[0]

	const pages = 8
	space := vmm.NewSpace(0)
	if err := alloc.Alloc(space, pages*vmm.DefaultPageSize, vmm.Bind{Nodes: []*topology.Node{cxl0}}); err != nil {
		t.Fatal(err)
	}

	d := &HotPromote{
		Tiers: Tiers{
			Fast: []*topology.Node{dram},
			Slow: []*topology.Node{cxl0},
		},
		RateLimitBytes: pages * vmm.DefaultPageSize,
		Threshold:      1e9, // no page qualifies on heat — only evacuation can move them
	}

	// Healthy: nothing moves (all pages are cold, threshold unreachable).
	if rep := d.Tick(0, space, alloc); rep.TotalBytes() != 0 {
		t.Fatalf("healthy tick migrated %d bytes with an unreachable threshold", rep.TotalBytes())
	}

	d.SetHealth(fakeHealth{cxl0: true})
	rep := d.Tick(0, space, alloc)
	if rep.PromotedPages != pages {
		t.Fatalf("evacuated %d pages, want all %d off the degraded node", rep.PromotedPages, pages)
	}
	for i := range space.Pages {
		if space.Pages[i].Node != dram {
			t.Fatalf("page %d still on %s after evacuation", i, space.Pages[i].Node.Name)
		}
	}
	// Evacuation respects the shared migration budget: with a one-page
	// budget only one page moves per tick.
	space2 := vmm.NewSpace(0)
	if err := alloc.Alloc(space2, pages*vmm.DefaultPageSize, vmm.Bind{Nodes: []*topology.Node{cxl0}}); err != nil {
		t.Fatal(err)
	}
	d2 := &HotPromote{
		Tiers:          d.Tiers,
		RateLimitBytes: vmm.DefaultPageSize,
		Threshold:      1e9,
	}
	d2.SetHealth(fakeHealth{cxl0: true})
	if rep := d2.Tick(0, space2, alloc); rep.PromotedPages != 1 {
		t.Fatalf("budget-capped evacuation moved %d pages, want 1", rep.PromotedPages)
	}
}
