package tiering

import (
	"math/rand"
	"sort"
	"testing"
)

// randCands builds a candidate list with many duplicate heats so the
// index tie-break is exercised heavily.
func randCands(rng *rand.Rand, n int) []cand {
	out := make([]cand, n)
	for i := range out {
		out[i] = cand{idx: i, heat: float64(rng.Intn(n / 4))}
	}
	return out
}

// TestTopkMatchesFullSort: bounded selection must return exactly the
// first k entries, in order, of a full sort under the same strict total
// order — the property that let Tick drop its two per-epoch sort.Slice
// calls without changing which pages migrate.
func TestTopkMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orders := []struct {
		name   string
		better func(a, b cand) bool
	}{
		{"hotterFirst", hotterFirst},
		{"colderFirst", colderFirst},
	}
	var sel topk
	for _, ord := range orders {
		for _, n := range []int{8, 100, 1000} {
			for _, k := range []int{0, 1, 3, n / 2, n, n + 10} {
				cands := randCands(rng, n)

				full := append([]cand(nil), cands...)
				sort.Slice(full, func(i, j int) bool { return ord.better(full[i], full[j]) })
				want := full
				if k < len(want) {
					want = want[:k]
				}

				sel.reset(k)
				for _, c := range cands {
					sel.offer(c, ord.better)
				}
				got := sel.sortBestFirst(ord.better)

				if len(got) != len(want) {
					t.Fatalf("%s n=%d k=%d: got %d entries, want %d", ord.name, n, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d k=%d: entry %d = %+v, want %+v", ord.name, n, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestTopkScratchReuse: a selector reused across ticks (reset between
// offer cycles) behaves identically to a fresh one.
func TestTopkScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var reused topk
	for round := 0; round < 5; round++ {
		cands := randCands(rng, 200)
		reused.reset(17)
		var fresh topk
		fresh.reset(17)
		for _, c := range cands {
			reused.offer(c, hotterFirst)
			fresh.offer(c, hotterFirst)
		}
		a := reused.sortBestFirst(hotterFirst)
		b := fresh.sortBestFirst(hotterFirst)
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("round %d entry %d: reused %+v, fresh %+v", round, i, a[i], b[i])
			}
		}
	}
}

// TestOrderIsStrictTotal: the comparators are irreflexive and
// asymmetric, and distinct candidates always compare one way — required
// for "top-k ≡ prefix of full sort" to be well defined.
func TestOrderIsStrictTotal(t *testing.T) {
	cs := []cand{{0, 1}, {1, 1}, {2, 0.5}, {3, 2}, {0, 1}}
	for _, better := range []func(a, b cand) bool{hotterFirst, colderFirst} {
		for _, a := range cs {
			if better(a, a) {
				t.Fatal("comparator not irreflexive")
			}
			for _, b := range cs {
				if a == b {
					continue
				}
				if better(a, b) == better(b, a) {
					t.Fatalf("comparator not asymmetric for %+v vs %+v", a, b)
				}
			}
		}
	}
}
