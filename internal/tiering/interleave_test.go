package tiering

import (
	"testing"

	"cxlsim/internal/memsim"
	"cxlsim/internal/topology"
)

func interleavePaths(t *testing.T) (top, low *memsim.Path) {
	t.Helper()
	m := topology.TestbedSNC()
	return m.PathFrom(0, m.DRAMNodes(0)[0]), m.PathFrom(0, m.CXLNodes()[0])
}

func TestChooseInterleaveLowLoadPicksMMEM(t *testing.T) {
	top, low := interleavePaths(t)
	n, m, _ := ChooseInterleave(top, low, memsim.ReadOnly, 10, nil)
	if m != 0 {
		t.Fatalf("at 10 GB/s the chooser picked %s; CXL idle latency should rule it out", RatioLabel(n, m))
	}
}

func TestChooseInterleaveHighLoadOffloads(t *testing.T) {
	// Past the MMEM knee (~56 GB/s of its 67 peak), some CXL share must
	// win — the §3.4 insight.
	top, low := interleavePaths(t)
	n, m, _ := ChooseInterleave(top, low, memsim.ReadOnly, 80, nil)
	if m == 0 {
		t.Fatal("at 80 GB/s offered the chooser stayed MMEM-only")
	}
	// And the chosen split must actually beat MMEM-only.
	mmemOnly, _ := memsim.SolveOpen([]memsim.OpenFlow{{
		Placement: memsim.SinglePath(top), Mix: memsim.ReadOnly, Offered: 80,
	}})
	chosen, _ := memsim.SolveOpen([]memsim.OpenFlow{{
		Placement: memsim.Interleave(top, low, n, m), Mix: memsim.ReadOnly, Offered: 80,
	}})
	if chosen[0].Achieved <= mmemOnly[0].Achieved {
		t.Fatalf("chosen %s delivers %.1f, MMEM-only %.1f", RatioLabel(n, m), chosen[0].Achieved, mmemOnly[0].Achieved)
	}
}

func TestChooseInterleaveMonotoneOffload(t *testing.T) {
	// The CXL share of the chosen ratio should not shrink as load grows.
	top, low := interleavePaths(t)
	prevShare := -1.0
	for _, load := range []float64{10, 30, 50, 65, 80, 100} {
		n, m, _ := ChooseInterleave(top, low, memsim.ReadOnly, load, nil)
		share := float64(m) / float64(n+m)
		if share < prevShare-1e-9 {
			t.Fatalf("CXL share shrank at %v GB/s: %v -> %v", load, prevShare, share)
		}
		prevShare = share
	}
}

func TestChooseInterleaveMatchesBruteForce(t *testing.T) {
	top, low := interleavePaths(t)
	ratios := DefaultRatios()
	for _, load := range []float64{20, 60, 90} {
		n, m, lat := ChooseInterleave(top, low, memsim.ReadOnly, load, ratios)
		// Brute force over the same candidates.
		bestLat := -1.0
		for _, c := range ratios {
			var pl memsim.Placement
			if c[1] == 0 {
				pl = memsim.SinglePath(top)
			} else {
				pl = memsim.Interleave(top, low, c[0], c[1])
			}
			res, _ := memsim.SolveOpen([]memsim.OpenFlow{{Placement: pl, Mix: memsim.ReadOnly, Offered: load}})
			l := res[0].Latency
			if res[0].Achieved < load {
				l *= load / res[0].Achieved
			}
			if bestLat < 0 || l < bestLat {
				bestLat = l
			}
		}
		if lat > bestLat+1e-6 {
			t.Fatalf("load %v: chooser %s at %.1f ns, brute force %.1f ns", load, RatioLabel(n, m), lat, bestLat)
		}
	}
}

func TestChooseInterleaveValidation(t *testing.T) {
	top, low := interleavePaths(t)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive load should panic")
		}
	}()
	ChooseInterleave(top, low, memsim.ReadOnly, 0, nil)
}

func TestRatioLabel(t *testing.T) {
	if RatioLabel(1, 0) != "MMEM" || RatioLabel(3, 1) != "3:1" {
		t.Fatal("labels wrong")
	}
}

// --- failure injection ---

func TestDegradedCXLShiftsChoice(t *testing.T) {
	// A CXL device retrained to half bandwidth and double latency should
	// make the chooser keep more traffic on MMEM at a given load.
	mA := topology.TestbedSNC()
	topA, lowA := mA.PathFrom(0, mA.DRAMNodes(0)[0]), mA.PathFrom(0, mA.CXLNodes()[0])
	nH, mH, _ := ChooseInterleave(topA, lowA, memsim.ReadOnly, 100, nil)

	mB := topology.TestbedSNC()
	topB, lowB := mB.PathFrom(0, mB.DRAMNodes(0)[0]), mB.PathFrom(0, mB.CXLNodes()[0])
	mB.CXLNodes()[0].Resource().Degrade(0.25, 2.5)
	nD, mD, _ := ChooseInterleave(topB, lowB, memsim.ReadOnly, 100, nil)

	hs := float64(mH) / float64(nH+mH)
	ds := float64(mD) / float64(nD+mD)
	if ds >= hs {
		t.Fatalf("degraded CXL share %.2f should be below healthy share %.2f", ds, hs)
	}
}

func TestDegradeValidation(t *testing.T) {
	m := topology.TestbedSNC()
	r := m.CXLNodes()[0].Resource()
	for name, f := range map[string]func(){
		"bw zero": func() { r.Degrade(0, 1) },
		"bw >1":   func() { r.Degrade(1.5, 1) },
		"lat <1":  func() { r.Degrade(0.5, 0.9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDegradeAffectsAnchors(t *testing.T) {
	m := topology.TestbedSNC()
	node := m.CXLNodes()[0]
	p := m.PathFrom(0, node)
	before := p.PeakBandwidth(memsim.Mix2to1)
	idleBefore := p.IdleLatency(memsim.ReadOnly)
	node.Resource().Degrade(0.5, 2)
	if after := p.PeakBandwidth(memsim.Mix2to1); after > before*0.51 {
		t.Fatalf("peak after degrade = %v, want ≈half of %v", after, before)
	}
	if idle := p.IdleLatency(memsim.ReadOnly); idle < idleBefore*1.9 {
		t.Fatalf("idle after degrade = %v, want ≈2× %v", idle, idleBefore)
	}
}
