package tiering

// cand pairs a page index with its heat for migration selection.
type cand struct {
	idx  int
	heat float64
}

// hotterFirst is the candidate order: hottest page first, ties broken by
// lower page index. With the unique index as tie-break this is a strict
// total order, which is what makes bounded selection return exactly the
// same set (in the same order) as a full sort.
func hotterFirst(a, b cand) bool {
	if a.heat != b.heat {
		return a.heat > b.heat
	}
	return a.idx < b.idx
}

// colderFirst is the victim order: coldest page first, ties broken by
// lower page index.
func colderFirst(a, b cand) bool {
	if a.heat != b.heat {
		return a.heat < b.heat
	}
	return a.idx < b.idx
}

// topk selects the best k entries under a strict total order without
// sorting the full input: a bounded binary heap keeps the worst retained
// entry at the root, so each offer is O(log k) and the scan is
// O(n·log k). The entry slice is reused across ticks (reset), so
// steady-state selection does not allocate.
type topk struct {
	ents []cand
	k    int
}

// reset prepares the selector to retain at most k entries.
func (t *topk) reset(k int) {
	t.k = k
	t.ents = t.ents[:0]
}

// offer considers c for the retained set: it is kept if fewer than k
// entries are retained, or if it is better (under better) than the worst
// retained entry, which it then evicts.
func (t *topk) offer(c cand, better func(a, b cand) bool) {
	if t.k <= 0 {
		return
	}
	if len(t.ents) < t.k {
		t.ents = append(t.ents, c)
		t.siftUp(len(t.ents)-1, better)
		return
	}
	if better(c, t.ents[0]) {
		t.ents[0] = c
		t.siftDown(0, len(t.ents), better)
	}
}

// siftUp restores the worst-at-root property after appending at i.
func (t *topk) siftUp(i int, better func(a, b cand) bool) {
	for i > 0 {
		p := (i - 1) / 2
		if better(t.ents[i], t.ents[p]) {
			break // child better than parent: heap property holds
		}
		t.ents[i], t.ents[p] = t.ents[p], t.ents[i]
		i = p
	}
}

// siftDown restores the worst-at-root property over ents[:n] after
// replacing the entry at i.
func (t *topk) siftDown(i, n int, better func(a, b cand) bool) {
	for {
		w := i
		if l := 2*i + 1; l < n && better(t.ents[w], t.ents[l]) {
			w = l
		}
		if r := 2*i + 2; r < n && better(t.ents[w], t.ents[r]) {
			w = r
		}
		if w == i {
			return
		}
		t.ents[i], t.ents[w] = t.ents[w], t.ents[i]
		i = w
	}
}

// sortBestFirst heap-sorts the retained entries in place, best first, and
// returns them. The selector must be reset before the next offer cycle.
func (t *topk) sortBestFirst(better func(a, b cand) bool) []cand {
	n := len(t.ents)
	for n > 1 {
		n--
		t.ents[0], t.ents[n] = t.ents[n], t.ents[0]
		t.siftDown(0, n, better)
	}
	return t.ents
}
