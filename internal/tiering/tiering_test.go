package tiering

import (
	"testing"

	"cxlsim/internal/sim"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// harness builds a 50/50 DRAM+CXL space like the paper's Hot-Promote
// configuration (Table 1): total MMEM is capped at half the dataset.
type harness struct {
	m     *topology.Machine
	alloc *vmm.Allocator
	space *vmm.Space
	tiers Tiers
	now   sim.Time
}

const harnessPages = 512

func newHarness(t *testing.T) *harness {
	t.Helper()
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	space := vmm.NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	cxl := m.CXLNodes()[0]

	// Cap DRAM at half the dataset by pre-filling the rest.
	fill := vmm.NewSpace(0)
	reserve := dram.Capacity - uint64(harnessPages/2)*vmm.DefaultPageSize
	if err := alloc.Alloc(fill, reserve, vmm.Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	pol := vmm.InterleaveNM{Top: []*topology.Node{dram}, Low: []*topology.Node{cxl}, N: 1, M: 1}
	if err := alloc.Alloc(space, harnessPages*vmm.DefaultPageSize, pol); err != nil {
		t.Fatal(err)
	}
	return &harness{
		m: m, alloc: alloc, space: space,
		tiers: Tiers{Fast: []*topology.Node{dram}, Slow: []*topology.Node{cxl}},
	}
}

// epoch simulates accesses from gen and runs the daemon once.
func (h *harness) epoch(gen workload.Generator, accesses int, d Daemon) Report {
	h.now += sim.Millisecond
	for i := 0; i < accesses; i++ {
		page := int(gen.Next()) % len(h.space.Pages)
		h.space.Touch(page, 1, h.now)
	}
	rep := d.Tick(h.now, h.space, h.alloc)
	h.space.DecayHeat(0.5)
	return rep
}

func (h *harness) fastHeatShare() float64 {
	share := 0.0
	for n, f := range h.space.HeatShare() {
		if h.tiers.isFast(n) {
			share += f
		}
	}
	return share
}

func TestStaticDoesNothing(t *testing.T) {
	h := newHarness(t)
	gen := workload.NewZipfian(harnessPages, 1)
	rep := h.epoch(gen, 10000, Static{})
	if rep.TotalBytes() != 0 {
		t.Fatal("static policy migrated pages")
	}
	if (Static{}).Name() != "static" {
		t.Fatal("name")
	}
}

func TestHotPromoteConvergesOnZipfian(t *testing.T) {
	// §4.1.2: with Zipfian access, Hot-Promote migrates the hot keys to
	// MMEM and performs nearly as well as pure MMEM. The testable core:
	// the fast tier ends up serving the large majority of accesses.
	h := newHarness(t)
	gen := workload.NewZipfian(harnessPages, 42)
	d := &HotPromote{
		Tiers:          h.tiers,
		RateLimitBytes: 64 * vmm.DefaultPageSize,
		AutoThreshold:  true,
	}
	for e := 0; e < 60; e++ {
		h.epoch(gen, 20000, d)
	}
	if share := h.fastHeatShare(); share < 0.80 {
		t.Fatalf("fast-tier heat share after convergence = %.2f, want ≥0.80", share)
	}
}

func TestHotPromoteThrashesOnUniform(t *testing.T) {
	// §4.2.2: on the low-locality Spark workload the auto threshold
	// "falls short" — promotion churns without improving placement.
	h := newHarness(t)
	gen := workload.NewUniform(harnessPages, 43)
	d := &HotPromote{
		Tiers:          h.tiers,
		RateLimitBytes: 64 * vmm.DefaultPageSize,
		AutoThreshold:  true,
	}
	var churn uint64
	const epochs = 40
	for e := 0; e < epochs; e++ {
		churn += h.epoch(gen, 20000, d).TotalBytes()
	}
	// Sustained churn: a large share of the cumulative rate-limit budget
	// is burned on migrations...
	if churn < uint64(epochs)*16*vmm.DefaultPageSize {
		t.Fatalf("uniform-access churn = %d bytes, expected sustained thrashing", churn)
	}
	// ...while placement barely improves over the 50/50 capacity split.
	if share := h.fastHeatShare(); share > 0.70 {
		t.Fatalf("fast heat share = %.2f on uniform access; thrashing should not beat ≈0.5 by much", share)
	}
}

func TestHotPromoteRespectsRateLimit(t *testing.T) {
	h := newHarness(t)
	gen := workload.NewZipfian(harnessPages, 44)
	limit := uint64(8 * vmm.DefaultPageSize)
	d := &HotPromote{Tiers: h.tiers, RateLimitBytes: limit}
	for e := 0; e < 10; e++ {
		rep := h.epoch(gen, 20000, d)
		if rep.TotalBytes() > limit {
			t.Fatalf("tick migrated %d bytes, limit %d", rep.TotalBytes(), limit)
		}
	}
}

func TestHotPromoteAutoThresholdMoves(t *testing.T) {
	h := newHarness(t)
	gen := workload.NewZipfian(harnessPages, 45)
	d := &HotPromote{Tiers: h.tiers, RateLimitBytes: 4 * vmm.DefaultPageSize, AutoThreshold: true}
	h.epoch(gen, 50000, d)
	raised := d.Threshold
	if raised <= 1 {
		t.Fatalf("threshold should rise when promotion saturates the limit; got %v", raised)
	}
	// Starve it: drop all heat → no candidates → threshold relaxes.
	h.space.DecayHeat(0)
	for e := 0; e < 3; e++ {
		d.Tick(h.now, h.space, h.alloc)
	}
	if d.Threshold >= raised {
		t.Fatalf("threshold should relax under low promotion; %v -> %v", raised, d.Threshold)
	}
}

func TestHotPromoteDemotesToMakeRoom(t *testing.T) {
	h := newHarness(t)
	// Heat up only CXL pages so every promotion needs a demotion (the
	// fast tier is exactly full: capacity == half the dataset).
	for i := range h.space.Pages {
		if h.tiers.isSlow(h.space.Pages[i].Node) {
			h.space.Touch(i, 100, 1)
		}
	}
	d := &HotPromote{Tiers: h.tiers, RateLimitBytes: 64 * vmm.DefaultPageSize}
	rep := d.Tick(1, h.space, h.alloc)
	if rep.PromotedPages == 0 {
		t.Fatal("no promotions despite hot slow pages")
	}
	if rep.DemotedPages == 0 {
		t.Fatal("promotions into a full fast tier require demotions")
	}
}

func TestNUMABalancingPromotesMRU(t *testing.T) {
	h := newHarness(t)
	d := &NUMABalancing{Tiers: h.tiers, ScanFraction: 1, RecencyWindow: 10 * sim.Millisecond}
	gen := workload.NewZipfian(harnessPages, 46)
	for e := 0; e < 30; e++ {
		h.epoch(gen, 20000, d)
	}
	if share := h.fastHeatShare(); share < 0.7 {
		t.Fatalf("NUMA balancing fast heat share = %.2f, want ≥0.7", share)
	}
	if d.Name() != "numa-balancing" {
		t.Fatal("name")
	}
}

func TestNUMABalancingPartialScanIsSlower(t *testing.T) {
	// The paper: "it may not accurately identify high-demand pages due
	// to extended scanning intervals". A 5% scan rate must converge
	// slower than a full scan.
	run := func(frac float64) float64 {
		h := newHarness(t)
		d := &NUMABalancing{Tiers: h.tiers, ScanFraction: frac, RecencyWindow: 10 * sim.Millisecond}
		gen := workload.NewZipfian(harnessPages, 47)
		for e := 0; e < 6; e++ {
			h.epoch(gen, 20000, d)
		}
		return h.fastHeatShare()
	}
	full, partial := run(1.0), run(0.05)
	if partial >= full {
		t.Fatalf("partial scan (%.2f) should trail full scan (%.2f) early", partial, full)
	}
}

func TestNUMABalancingEmptySpace(t *testing.T) {
	d := &NUMABalancing{}
	rep := d.Tick(0, vmm.NewSpace(0), vmm.NewAllocator(topology.Testbed()))
	if rep.TotalBytes() != 0 {
		t.Fatal("empty space should be a no-op")
	}
}

func TestTPPPromotesOnReaccess(t *testing.T) {
	h := newHarness(t)
	d := &TPP{Tiers: h.tiers}
	gen := workload.NewZipfian(harnessPages, 48)
	for e := 0; e < 30; e++ {
		h.epoch(gen, 20000, d)
	}
	if share := h.fastHeatShare(); share < 0.7 {
		t.Fatalf("TPP fast heat share = %.2f, want ≥0.7", share)
	}
	if d.Name() != "tpp" {
		t.Fatal("name")
	}
}

func TestTPPWatermarkDemotion(t *testing.T) {
	h := newHarness(t)
	dram := h.tiers.Fast[0]
	if h.alloc.Free(dram) != 0 {
		t.Fatal("precondition: fast tier full")
	}
	d := &TPP{Tiers: h.tiers, FreeWatermark: 0.001}
	rep := d.Tick(1, h.space, h.alloc)
	if rep.DemotedPages == 0 {
		t.Fatal("watermark violation should trigger demotion")
	}
	if h.alloc.Free(dram) == 0 {
		t.Fatal("demotion should have freed fast-tier room")
	}
}

func TestReportTotals(t *testing.T) {
	r := Report{PromotedBytes: 10, DemotedBytes: 5}
	if r.TotalBytes() != 15 {
		t.Fatal("TotalBytes wrong")
	}
}

func TestHotPromoteNameAndDefaults(t *testing.T) {
	d := &HotPromote{Tiers: Tiers{}}
	if d.Name() != "hot-promote" {
		t.Fatal("name")
	}
	// Tick with zero threshold defaults to MinThreshold and does not
	// panic on an empty space.
	d.Tick(0, vmm.NewSpace(0), vmm.NewAllocator(topology.Testbed()))
	if d.Threshold != DefaultHotThreshold {
		t.Fatalf("default threshold = %v, want %v", d.Threshold, DefaultHotThreshold)
	}
}
