package tiering

import (
	"fmt"

	"cxlsim/internal/memsim"
)

// ChooseInterleave operationalizes the §3.4 recommendation that
// "allocators and kernel-level page placement policies should consider
// the available bandwidth in MMEM": given the workload's offered load and
// mix, it evaluates candidate N:M ratios against the device model and
// returns the ratio minimizing loaded latency (ties go to the higher
// MMEM share — fewer pages on the slower medium).
//
// At low load it picks MMEM-only (CXL's idle latency only hurts); as
// offered load approaches and passes the MMEM knee, progressively larger
// CXL shares win — the crossover the paper demonstrates with the LLM
// workload (Fig. 10(a)).
func ChooseInterleave(top, low *memsim.Path, mix memsim.Mix, offeredGBps float64, candidates [][2]int) (n, m int, latency float64) {
	if offeredGBps <= 0 {
		panic("tiering: non-positive offered load")
	}
	if len(candidates) == 0 {
		candidates = DefaultRatios()
	}
	best := -1
	bestLat := 0.0
	bestShare := 0.0
	for i, c := range candidates {
		var pl memsim.Placement
		if c[1] == 0 {
			pl = memsim.SinglePath(top)
		} else {
			pl = memsim.Interleave(top, low, c[0], c[1])
		}
		res, _ := memsim.SolveOpen([]memsim.OpenFlow{{Placement: pl, Mix: mix, Offered: offeredGBps}})
		// Undelivered bandwidth is a latency in disguise: penalize
		// placements that cannot carry the offered load by the extra
		// queueing an overloaded device implies.
		lat := res[0].Latency
		if res[0].Achieved < offeredGBps {
			lat *= offeredGBps / res[0].Achieved
		}
		share := float64(c[0]) / float64(c[0]+c[1])
		if best < 0 || lat < bestLat-1e-9 || (lat < bestLat+1e-9 && share > bestShare) {
			best, bestLat, bestShare = i, lat, share
		}
	}
	return candidates[best][0], candidates[best][1], bestLat
}

// DefaultRatios is the candidate ratio ladder: MMEM-only plus the
// kernel-patch-style N:M steps the paper evaluates.
func DefaultRatios() [][2]int {
	return [][2]int{{1, 0}, {4, 1}, {3, 1}, {2, 1}, {1, 1}, {1, 2}, {1, 3}}
}

// RatioLabel renders a ratio the way the paper writes it.
func RatioLabel(n, m int) string {
	if m == 0 {
		return "MMEM"
	}
	return fmt.Sprintf("%d:%d", n, m)
}
