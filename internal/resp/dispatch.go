package resp

import (
	"strings"

	"cxlsim/internal/obs"
)

// Backend is the storage engine behind the data commands. Implementations
// must be safe for concurrent use — the server dispatches from one
// goroutine per connection.
//
// Errors of type ReplyError reach the client verbatim (the brownout
// contract: a degraded durable tier surfaces as -BUSY on writes and
// -LOADING on disk-backed reads); any other error is wrapped as -ERR.
type Backend interface {
	// Get returns the value for key; ok is false when absent.
	Get(key []byte) (val []byte, ok bool, err error)
	// Set stores key=val.
	Set(key, val []byte) error
	// Del removes keys, returning how many existed.
	Del(keys [][]byte) (int64, error)
	// Exists counts how many of keys exist (duplicates counted again).
	Exists(keys [][]byte) (int64, error)
	// Incr adds one to the integer at key (missing ⇒ 0) and returns it.
	Incr(key []byte) (int64, error)
	// MGet returns one value per key, nil for missing keys.
	MGet(keys [][]byte) ([][]byte, error)
	// MSet stores key/value pairs; pairs is [k1, v1, k2, v2, ...].
	MSet(pairs [][]byte) error
	// Info renders the INFO reply body (Redis's "key:value" lines).
	Info() string
}

// Dispatcher routes parsed commands to a Backend and encodes replies.
type Dispatcher struct {
	b Backend

	// Per-command observability; nil until Instrument.
	cmds *obs.CounterVec
	errs *obs.CounterVec
}

// NewDispatcher returns a dispatcher over b.
func NewDispatcher(b Backend) *Dispatcher { return &Dispatcher{b: b} }

// Instrument publishes per-command request and error counters into reg.
func (d *Dispatcher) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.cmds = reg.CounterVec(obs.MetricRESPCommands, "RESP commands dispatched", "cmd")
	d.errs = reg.CounterVec(obs.MetricRESPErrors, "RESP commands answered with an error reply", "cmd")
}

// knownCommands bounds the metric label space: everything else counts
// under "unknown" so a hostile client cannot mint unbounded label
// values.
var knownCommands = map[string]bool{
	"get": true, "set": true, "del": true, "exists": true, "incr": true,
	"mget": true, "mset": true, "ping": true, "echo": true, "info": true,
	"config": true, "command": true, "select": true, "quit": true,
	"hello": true,
}

// Dispatch executes one command, appending its reply to out and
// returning the extended buffer. quit reports that the client asked to
// close (QUIT) after the reply is flushed. Empty argument lists are the
// caller's to skip.
func (d *Dispatcher) Dispatch(args [][]byte, out []byte) (reply []byte, quit bool) {
	cmd := strings.ToLower(string(args[0]))
	label := cmd
	if !knownCommands[label] {
		label = "unknown"
	}
	if d.cmds != nil {
		d.cmds.With(label).Inc()
	}
	before := len(out)
	out, quit = d.exec(cmd, args, out)
	if d.errs != nil && len(out) > before && out[before] == '-' {
		d.errs.With(label).Inc()
	}
	return out, quit
}

func (d *Dispatcher) exec(cmd string, args [][]byte, out []byte) ([]byte, bool) {
	switch cmd {
	case "get":
		if len(args) != 2 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		v, ok, err := d.b.Get(args[1])
		if err != nil {
			return AppendError(out, ErrorReply(err)), false
		}
		if !ok {
			return AppendNull(out), false
		}
		return AppendBulk(out, v), false

	case "set":
		// Plain two-argument SET only; the EX/PX/NX/XX options are not
		// modeled (redis-benchmark's SET workload never sends them).
		if len(args) != 3 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		if err := d.b.Set(args[1], args[2]); err != nil {
			return AppendError(out, ErrorReply(err)), false
		}
		return AppendSimpleString(out, "OK"), false

	case "del":
		if len(args) < 2 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		n, err := d.b.Del(args[1:])
		if err != nil {
			return AppendError(out, ErrorReply(err)), false
		}
		return AppendInt(out, n), false

	case "exists":
		if len(args) < 2 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		n, err := d.b.Exists(args[1:])
		if err != nil {
			return AppendError(out, ErrorReply(err)), false
		}
		return AppendInt(out, n), false

	case "incr":
		if len(args) != 2 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		n, err := d.b.Incr(args[1])
		if err != nil {
			return AppendError(out, ErrorReply(err)), false
		}
		return AppendInt(out, n), false

	case "mget":
		if len(args) < 2 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		vals, err := d.b.MGet(args[1:])
		if err != nil {
			return AppendError(out, ErrorReply(err)), false
		}
		out = AppendArray(out, len(vals))
		for _, v := range vals {
			if v == nil {
				out = AppendNull(out)
			} else {
				out = AppendBulk(out, v)
			}
		}
		return out, false

	case "mset":
		if len(args) < 3 || len(args)%2 != 1 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		if err := d.b.MSet(args[1:]); err != nil {
			return AppendError(out, ErrorReply(err)), false
		}
		return AppendSimpleString(out, "OK"), false

	case "ping":
		switch len(args) {
		case 1:
			return AppendSimpleString(out, "PONG"), false
		case 2:
			return AppendBulk(out, args[1]), false
		}
		return AppendError(out, string(wrongArity(cmd))), false

	case "echo":
		if len(args) != 2 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		return AppendBulk(out, args[1]), false

	case "info":
		return AppendBulkString(out, d.b.Info()), false

	case "config":
		// redis-benchmark probes CONFIG GET save / appendonly at startup;
		// answer with inert values so it proceeds. CONFIG SET is accepted
		// and ignored — there is no live reconfiguration surface here.
		if len(args) >= 3 && strings.EqualFold(string(args[1]), "get") {
			out = AppendArray(out, 2)
			out = AppendBulk(out, args[2])
			switch strings.ToLower(string(args[2])) {
			case "appendonly":
				out = AppendBulkString(out, "no")
			case "maxmemory":
				out = AppendBulkString(out, "0")
			default:
				out = AppendBulkString(out, "")
			}
			return out, false
		}
		if len(args) >= 2 && strings.EqualFold(string(args[1]), "set") {
			return AppendSimpleString(out, "OK"), false
		}
		return AppendError(out, "ERR unknown CONFIG subcommand"), false

	case "command":
		// COMMAND [DOCS|COUNT|...]: clients only use this to size tab
		// completion; an empty array (or zero count) is a valid answer.
		if len(args) >= 2 && strings.EqualFold(string(args[1]), "count") {
			return AppendInt(out, int64(len(knownCommands))), false
		}
		return AppendArray(out, 0), false

	case "select":
		// Single keyspace: accept any database index.
		if len(args) != 2 {
			return AppendError(out, string(wrongArity(cmd))), false
		}
		return AppendSimpleString(out, "OK"), false

	case "quit":
		return AppendSimpleString(out, "OK"), true

	case "hello":
		// RESP3 negotiation: refusing makes redis-cli ≥ 6 fall back to
		// RESP2, which is all this front end speaks.
		return AppendError(out, "NOPROTO unsupported protocol version"), false
	}
	return AppendError(out, "ERR unknown command '"+sanitize(string(args[0]))+"'"), false
}

// sanitize strips CR/LF from client-supplied text echoed into error
// replies, so a hostile command name cannot inject protocol frames.
func sanitize(s string) string {
	if len(s) > 64 {
		s = s[:64]
	}
	return strings.Map(func(r rune) rune {
		if r == '\r' || r == '\n' {
			return ' '
		}
		return r
	}, s)
}
