package resp

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"cxlsim/internal/obs"
)

// startServer runs a server over a fresh listener, returning its
// address and a stop func that asserts a clean drain.
func startServer(t *testing.T, b Backend, opts Options) (string, *Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(b, opts)
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-served; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}
	return ln.Addr().String(), s, stop
}

// TestServerPipelined sends a burst of pipelined commands in one write
// and asserts the byte-exact concatenated reply stream.
func TestServerPipelined(t *testing.T) {
	addr, _, stop := startServer(t, newMapBackend(), Options{})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n" +
		"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n" +
		"*2\r\n$3\r\nDEL\r\n$1\r\nk\r\n" +
		"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n" +
		"*1\r\n$4\r\nPING\r\n"
	want := "+OK\r\n$5\r\nhello\r\n:1\r\n$-1\r\n+PONG\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("replies:\n got %q\nwant %q", got, want)
	}
}

// TestServerProtocolErrorCloses asserts the Redis contract: malformed
// framing earns one -ERR Protocol error reply, then the server closes.
func TestServerProtocolErrorCloses(t *testing.T) {
	reg := obs.NewRegistry()
	addr, _, stop := startServer(t, newMapBackend(), Options{Registry: reg})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("*1\r\n:bad\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	all, err := io.ReadAll(conn) // server must close after the error reply
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(string(all), "-ERR Protocol error:") {
		t.Fatalf("reply %q, want -ERR Protocol error prefix", all)
	}
	snap := reg.Snapshot()
	if f, ok := snap.Find(obs.MetricRESPProtocolErrors); !ok || f.Metrics[0].Value != 1 {
		t.Fatalf("resp_protocol_errors_total not incremented")
	}
}

// TestServerMaxConns asserts the cap: the excess client is told off and
// closed without counting as accepted.
func TestServerMaxConns(t *testing.T) {
	reg := obs.NewRegistry()
	addr, _, stop := startServer(t, newMapBackend(), Options{MaxConns: 1, Registry: reg})
	defer stop()

	first, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Prove the first connection is fully tracked before dialing the
	// second (accept is asynchronous).
	if _, err := first.Write([]byte("*1\r\n$4\r\nPING\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	first.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(first, buf); err != nil || string(buf) != "+PONG\r\n" {
		t.Fatalf("first conn ping: %q %v", buf, err)
	}

	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	all, _ := io.ReadAll(second)
	if !strings.HasPrefix(string(all), "-ERR max number of clients") {
		t.Fatalf("second conn got %q, want max-clients error", all)
	}
	if f, ok := reg.Snapshot().Find(obs.MetricRESPConnsRejected); !ok || f.Metrics[0].Value != 1 {
		t.Fatal("resp_connections_rejected_total not incremented")
	}
}

// TestServerGracefulDrain pins the drain contract: pipelined commands
// already received are answered before the connection closes, and
// Shutdown returns cleanly.
func TestServerGracefulDrain(t *testing.T) {
	b := newMapBackend()
	addr, s, _ := startServer(t, b, Options{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One answered round-trip proves the connection is established and
	// its read loop running before Shutdown fires.
	if _, err := conn.Write([]byte("*1\r\n$4\r\nPING\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil || line != "+PONG\r\n" {
		t.Fatalf("ping: %q %v", line, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After drain the connection must be closed...
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("post-drain read: %v, want EOF", err)
	}
	// ...and new connections refused.
	if c2, err := net.Dial("tcp", addr); err == nil {
		c2.Close()
		t.Fatal("dial after shutdown succeeded")
	}
}
