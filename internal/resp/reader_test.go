package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// readAll parses every command in input with the given limits,
// returning the commands plus the terminal error.
func readAll(t *testing.T, input string, lim Limits) ([][][]byte, error) {
	t.Helper()
	r := NewReader(strings.NewReader(input), lim)
	var cmds [][][]byte
	for {
		args, err := r.ReadCommand()
		if err != nil {
			return cmds, err
		}
		if len(args) > 0 {
			cmds = append(cmds, args)
		}
	}
}

func TestReadCommandTable(t *testing.T) {
	tight := Limits{MaxBulkBytes: 16, MaxArgs: 4, MaxInlineBytes: 32}
	cases := []struct {
		name  string
		input string
		lim   Limits
		want  [][]string // parsed commands
		err   string     // "" ⇒ clean EOF; "proto" ⇒ ProtocolError; "torn" ⇒ unexpected EOF
	}{
		{name: "multibulk get", input: "*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n",
			want: [][]string{{"GET", "foo"}}},
		{name: "multibulk empty value", input: "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$0\r\n\r\n",
			want: [][]string{{"SET", "k", ""}}},
		{name: "binary value", input: "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$4\r\n\x00\r\n\xff\r\n",
			want: [][]string{{"SET", "k", "\x00\r\n\xff"}}},
		{name: "pipelined", input: "*1\r\n$4\r\nPING\r\n*1\r\n$4\r\nPING\r\n",
			want: [][]string{{"PING"}, {"PING"}}},
		{name: "inline", input: "PING\r\n", want: [][]string{{"PING"}}},
		{name: "inline bare lf", input: "SET k v\n", want: [][]string{{"SET", "k", "v"}}},
		{name: "inline extra spaces", input: "  SET   k\t v \r\n", want: [][]string{{"SET", "k", "v"}}},
		{name: "empty inline skipped", input: "\r\n\r\nPING\r\n", want: [][]string{{"PING"}}},
		{name: "star zero skipped", input: "*0\r\nPING\r\n", want: [][]string{{"PING"}}},

		// Torn frames: the peer died mid-command.
		{name: "torn header", input: "*2\r\n$3\r\nGE", err: "torn"},
		{name: "torn payload", input: "*2\r\n$3\r\nGET\r\n$3\r\nfo", err: "torn"},
		{name: "torn bulk marker", input: "*2\r\n$3\r\nGET\r\n", err: "torn"},
		{name: "torn count line", input: "*2", err: "torn"},

		// Malformed frames: protocol errors.
		{name: "negative count", input: "*-1\r\n", err: "proto"},
		{name: "non-numeric count", input: "*abc\r\n", err: "proto"},
		{name: "non-numeric bulk len", input: "*1\r\n$x\r\nz\r\n", err: "proto"},
		{name: "negative bulk len", input: "*1\r\n$-1\r\n", err: "proto"},
		{name: "wrong marker", input: "*1\r\n:3\r\n", err: "proto"},
		{name: "payload missing crlf", input: "*1\r\n$3\r\nfooXX", err: "proto"},
		{name: "huge count digits", input: "*9999999999999\r\n", err: "proto"},

		// Oversized frames under tight limits.
		{name: "too many args", input: "*5\r\n", lim: tight, err: "proto"},
		{name: "bulk too big", input: "*1\r\n$17\r\n" + strings.Repeat("x", 17) + "\r\n",
			lim: tight, err: "proto"},
		{name: "inline too long", input: strings.Repeat("a", 64) + "\r\n", lim: tight, err: "proto"},
		{name: "bulk at limit ok", input: "*1\r\n$16\r\n" + strings.Repeat("x", 16) + "\r\n",
			lim: tight, want: [][]string{{strings.Repeat("x", 16)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := readAll(t, tc.input, tc.lim)
			switch tc.err {
			case "":
				if err != io.EOF {
					t.Fatalf("want clean EOF, got %v", err)
				}
			case "proto":
				var pe ProtocolError
				if !errors.As(err, &pe) {
					t.Fatalf("want ProtocolError, got %v", err)
				}
			case "torn":
				if err != io.ErrUnexpectedEOF && err != io.EOF {
					t.Fatalf("want torn-frame EOF, got %v", err)
				}
				if errors.As(err, new(ProtocolError)) {
					t.Fatalf("torn frame misclassified as protocol error: %v", err)
				}
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d commands, want %d (%q)", len(got), len(tc.want), got)
			}
			for i, wc := range tc.want {
				if len(got[i]) != len(wc) {
					t.Fatalf("cmd %d: got %q want %q", i, got[i], wc)
				}
				for j, w := range wc {
					if string(got[i][j]) != w {
						t.Fatalf("cmd %d arg %d: got %q want %q", i, j, got[i][j], w)
					}
				}
			}
		})
	}
}

// TestReadCommandLongInline covers inline lines longer than the bufio
// buffer but inside the inline limit (the multi-fragment readLine path).
func TestReadCommandLongInline(t *testing.T) {
	arg := strings.Repeat("a", 40<<10) // > 16 KiB buffer, < 64 KiB limit
	cmds, err := readAll(t, "SET k "+arg+"\r\n", Limits{})
	if err != io.EOF {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(cmds) != 1 || len(cmds[0]) != 3 || string(cmds[0][2]) != arg {
		t.Fatalf("long inline arg mangled")
	}
}

// TestReaderArgsSurviveNextRead pins that returned argument slices do
// not alias the read buffer.
func TestReaderArgsSurviveNextRead(t *testing.T) {
	input := "*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n*2\r\n$3\r\nGET\r\n$3\r\nbar\r\n"
	r := NewReader(strings.NewReader(input), Limits{})
	first, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadCommand(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first[1], []byte("foo")) {
		t.Fatalf("first command clobbered by second read: %q", first[1])
	}
}
