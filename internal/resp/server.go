package resp

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"cxlsim/internal/obs"
)

// ErrServerClosed is returned by Serve after Shutdown, mirroring
// net/http's contract so callers can share their drain logic.
var ErrServerClosed = errors.New("resp: server closed")

// DefaultMaxConns caps simultaneous connections when Options leaves
// MaxConns zero.
const DefaultMaxConns = 256

// Options configures a Server.
type Options struct {
	// MaxConns caps simultaneous connections (default DefaultMaxConns);
	// excess clients get "-ERR max number of clients reached" and an
	// immediate close, Redis's own behavior at maxclients.
	MaxConns int
	// Limits bounds request frames (zero values take package defaults).
	Limits Limits
	// Registry, when non-nil, receives connection-level and per-command
	// metrics.
	Registry *obs.Registry
}

// Server is a RESP front end over a Backend. Create with NewServer,
// start with Serve, stop with Shutdown.
type Server struct {
	disp *Dispatcher
	opts Options

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup

	connsOpen  *obs.Gauge
	connsTotal *obs.Counter
	connsRej   *obs.Counter
	protoErrs  *obs.Counter
}

// NewServer builds a server over b. The dispatcher's and server's
// metrics land in opts.Registry when set.
func NewServer(b Backend, opts Options) *Server {
	if opts.MaxConns <= 0 {
		opts.MaxConns = DefaultMaxConns
	}
	opts.Limits = opts.Limits.fill()
	s := &Server{
		disp:  NewDispatcher(b),
		opts:  opts,
		conns: map[net.Conn]struct{}{},
	}
	if reg := opts.Registry; reg != nil {
		s.disp.Instrument(reg)
		s.connsOpen = reg.Gauge(obs.MetricRESPConnsOpen, "RESP connections currently open")
		s.connsTotal = reg.Counter(obs.MetricRESPConnsTotal, "RESP connections accepted")
		s.connsRej = reg.Counter(obs.MetricRESPConnsRejected, "RESP connections rejected at the MaxConns cap")
		s.protoErrs = reg.Counter(obs.MetricRESPProtocolErrors, "RESP protocol errors (connection closed after reply)")
	}
	return s
}

// Serve accepts connections on ln until Shutdown, then returns
// ErrServerClosed. Each connection runs two goroutines: a read loop
// that parses and dispatches commands, and a buffered reply writer —
// pipelined clients keep parsing and execution ahead of the flush.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if !s.track(conn) {
			if s.connsRej != nil {
				s.connsRej.Inc()
			}
			conn.Write([]byte("-ERR max number of clients reached\r\n"))
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers conn unless the server is draining or full.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.conns) >= s.opts.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	if s.connsTotal != nil {
		s.connsTotal.Inc()
		s.connsOpen.Set(float64(len(s.conns)))
	}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	if s.connsOpen != nil {
		s.connsOpen.Set(float64(len(s.conns)))
	}
	s.mu.Unlock()
}

// serveConn runs one connection's read loop; replies flow to a writer
// goroutine over a bounded channel so a slow reader of our replies
// backpressures parsing instead of buffering without limit.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()

	replies := make(chan []byte, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		writeLoop(conn, replies)
	}()
	defer func() {
		close(replies)
		<-writerDone
	}()

	rd := NewReader(conn, s.opts.Limits)
	for {
		args, err := rd.ReadCommand()
		if err != nil {
			var pe ProtocolError
			if errors.As(err, &pe) {
				if s.protoErrs != nil {
					s.protoErrs.Inc()
				}
				replies <- AppendError(nil, "ERR "+pe.Error())
			}
			return
		}
		if len(args) == 0 {
			continue
		}
		out, quit := s.disp.Dispatch(args, nil)
		replies <- out
		if quit {
			return
		}
	}
}

// writeLoop batches replies into one buffered writer, flushing only
// when no further reply is immediately pending — a pipelined burst of N
// commands goes out in one (or few) TCP segments.
func writeLoop(conn net.Conn, replies <-chan []byte) {
	const flushThreshold = 64 << 10
	buf := make([]byte, 0, 16<<10)
	for b := range replies {
		buf = append(buf, b...)
		if len(replies) > 0 && len(buf) < flushThreshold {
			continue
		}
		if _, err := conn.Write(buf); err != nil {
			// Peer gone: drain the channel so the read loop never blocks
			// sending to it, then bail.
			for range replies {
			}
			return
		}
		buf = buf[:0]
	}
	if len(buf) > 0 {
		conn.Write(buf)
	}
}

// Shutdown gracefully drains the server: the listener closes, read
// loops are woken via read deadlines, in-flight replies flush, and
// connections close. It waits for every connection goroutine up to
// ctx's deadline, then force-closes stragglers. Safe to call more than
// once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	for conn := range s.conns {
		// Wake blocking reads; the read loop treats the timeout as a
		// terminal condition, flushes pending replies, and closes.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// ListenAndServe listens on addr and serves; the listener's actual
// address (useful with ":0") is reported through onListen when non-nil.
func (s *Server) ListenAndServe(addr string, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return s.Serve(ln)
}
