package resp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Reader parses RESP requests off a stream. Every frame dimension is
// bounded by Limits: argument counts, bulk lengths, and inline line
// lengths past the bound become ProtocolErrors instead of allocations.
//
// Torn frames (the peer died mid-command) surface as io.EOF or
// io.ErrUnexpectedEOF, never as a ProtocolError — a half-received
// command is a dead connection, not a protocol violation.
type Reader struct {
	br  *bufio.Reader
	lim Limits
}

// NewReader wraps r. A zero Limits takes the package defaults.
func NewReader(r io.Reader, lim Limits) *Reader {
	lim = lim.fill()
	size := 16 << 10
	return &Reader{br: bufio.NewReaderSize(r, size), lim: lim}
}

// Buffered reports how many parsed-but-unread bytes are waiting — the
// pipelining signal: a server flushes its reply writer only when no
// further request bytes are already in hand.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadCommand returns the next command's arguments. An empty slice with
// a nil error means an empty line (or "*0") was received — the caller
// skips it. The returned sub-slices are freshly allocated and remain
// valid after the next call.
func (r *Reader) ReadCommand() ([][]byte, error) {
	first, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if first == '*' {
		return r.readMultiBulk()
	}
	if err := r.br.UnreadByte(); err != nil {
		return nil, err
	}
	return r.readInline()
}

// readLine reads up to CRLF (or a bare LF, which Redis tolerates on
// header lines), bounded by max bytes excluding the terminator. The
// returned slice may alias the buffered reader and is only valid until
// the next read. Oversized lines are rejected without being buffered —
// the connection is closing anyway, so nothing drains the remainder.
func (r *Reader) readLine(max int, what string) ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Line longer than the read buffer: accumulate fragments until
		// the terminator or the bound, whichever comes first.
		long := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull && len(long) <= max+2 {
			line, err = r.br.ReadSlice('\n')
			long = append(long, line...)
		}
		line = long
	}
	if len(line) > max+2 {
		return nil, ProtocolError(fmt.Sprintf("too big %s line", what))
	}
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	line = line[:len(line)-1] // strip \n
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) > max {
		return nil, ProtocolError(fmt.Sprintf("too big %s line", what))
	}
	return line, nil
}

// parseLen parses a non-negative decimal with an upper bound; Redis's
// own parser rejects anything longer than a sane digit count, so
// overflow never materializes as a huge allocation.
func parseLen(digits []byte, max int, what string) (int, error) {
	if len(digits) == 0 || len(digits) > 12 {
		return 0, ProtocolError("invalid " + what)
	}
	n := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, ProtocolError("invalid " + what)
		}
		n = n*10 + int(c-'0')
		if n > max {
			return 0, ProtocolError("invalid " + what)
		}
	}
	return n, nil
}

func (r *Reader) readMultiBulk() ([][]byte, error) {
	// The '*' is consumed; the rest of the line is the element count.
	header, err := r.readLine(16, "multibulk count")
	if err != nil {
		return nil, err
	}
	if len(header) > 0 && header[0] == '-' {
		// "*-1" is a null array; clients never send one as a request.
		return nil, ProtocolError("invalid multibulk length")
	}
	n, err := parseLen(header, r.lim.MaxArgs, "multibulk length")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		marker, err := r.br.ReadByte()
		if err != nil {
			return nil, tornEOF(err)
		}
		if marker != '$' {
			return nil, ProtocolError(fmt.Sprintf("expected '$', got '%c'", marker))
		}
		header, err := r.readLine(16, "bulk length")
		if err != nil {
			return nil, tornEOF(err)
		}
		size, err := parseLen(header, r.lim.MaxBulkBytes, "bulk length")
		if err != nil {
			return nil, err
		}
		buf := make([]byte, size+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, tornEOF(err)
		}
		if buf[size] != '\r' || buf[size+1] != '\n' {
			return nil, ProtocolError("bulk payload not terminated by CRLF")
		}
		args = append(args, buf[:size:size])
	}
	return args, nil
}

// readInline parses the telnet-friendly inline form: space-separated
// words on one line. Quoting is not supported (use multi-bulk for
// binary-safe arguments).
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine(r.lim.MaxInlineBytes, "inline request")
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) > r.lim.MaxArgs {
		return nil, ProtocolError("invalid multibulk length")
	}
	args := make([][]byte, len(fields))
	for i, f := range fields {
		args[i] = append([]byte(nil), f...)
	}
	return args, nil
}

// tornEOF converts a mid-frame EOF into io.ErrUnexpectedEOF so callers
// can distinguish "clean close between commands" from "died mid-frame".
func tornEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
