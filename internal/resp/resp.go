// Package resp implements the Redis serialization protocol (RESP2) —
// the wire format stock redis-cli and redis-benchmark speak — and a TCP
// front end that serves it over any Backend.
//
// The package is split along the same seams as a real Redis server:
//
//   - Reader parses client requests (inline commands and multi-bulk
//     arrays) with every frame dimension bounded, so hostile or
//     corrupted input yields a protocol-error reply and a closed
//     connection, never a panic or an unbounded allocation.
//   - Append* encoders build replies (simple strings, errors, integers,
//     bulk strings, arrays) into caller-owned buffers, append-style.
//   - Dispatcher maps a parsed command to a Backend call and encodes
//     the reply, with per-command obs counters.
//   - Server owns the listener and the per-connection goroutines: a
//     read loop that parses and dispatches, decoupled from a buffered
//     reply writer, so pipelined clients get batched replies.
//
// Protocol scope: RESP2 only. HELLO is answered with -NOPROTO so RESP3
// clients (redis-cli ≥ 6) negotiate themselves back down to RESP2.
package resp

import (
	"fmt"
	"strconv"
)

// Default frame bounds. MaxBulkBytes bounds one argument, MaxArgs one
// command's argument count, and MaxInlineBytes one inline request line.
// All three are per-connection-configurable through Limits.
const (
	DefaultMaxBulkBytes   = 4 << 20
	DefaultMaxArgs        = 1024
	DefaultMaxInlineBytes = 64 << 10
)

// Limits bounds the frames a Reader will accept. The zero value means
// "use the defaults"; explicit values must be positive.
type Limits struct {
	MaxBulkBytes   int // largest single bulk argument, bytes
	MaxArgs        int // most arguments in one command
	MaxInlineBytes int // longest inline command line, bytes
}

func (l Limits) fill() Limits {
	if l.MaxBulkBytes == 0 {
		l.MaxBulkBytes = DefaultMaxBulkBytes
	}
	if l.MaxArgs == 0 {
		l.MaxArgs = DefaultMaxArgs
	}
	if l.MaxInlineBytes == 0 {
		l.MaxInlineBytes = DefaultMaxInlineBytes
	}
	return l
}

// ProtocolError is a client-side framing violation: malformed length,
// missing CRLF, oversized frame. The server surfaces it to the client
// as "-ERR Protocol error: ..." and then closes the connection, the
// same contract Redis implements.
type ProtocolError string

// Error implements error.
func (e ProtocolError) Error() string { return "Protocol error: " + string(e) }

// ReplyError is an application-level error whose text is sent verbatim
// as a RESP error reply ("-<text>\r\n") without closing the connection.
// The leading word is the conventional error class (ERR, BUSY, LOADING,
// WRONGTYPE, ...). The text must not contain CR or LF.
type ReplyError string

// Error implements error.
func (e ReplyError) Error() string { return string(e) }

// ErrorReply renders any error as a RESP error-reply line: ReplyError
// text passes through verbatim, everything else is prefixed with "ERR".
func ErrorReply(err error) string {
	if re, ok := err.(ReplyError); ok {
		return string(re)
	}
	return "ERR " + err.Error()
}

var crlf = []byte("\r\n")

// AppendSimpleString appends "+s\r\n".
func AppendSimpleString(b []byte, s string) []byte {
	b = append(b, '+')
	b = append(b, s...)
	return append(b, crlf...)
}

// AppendError appends "-msg\r\n".
func AppendError(b []byte, msg string) []byte {
	b = append(b, '-')
	b = append(b, msg...)
	return append(b, crlf...)
}

// AppendInt appends ":n\r\n".
func AppendInt(b []byte, n int64) []byte {
	b = append(b, ':')
	b = strconv.AppendInt(b, n, 10)
	return append(b, crlf...)
}

// AppendBulk appends "$len\r\n<v>\r\n".
func AppendBulk(b, v []byte) []byte {
	b = append(b, '$')
	b = strconv.AppendInt(b, int64(len(v)), 10)
	b = append(b, crlf...)
	b = append(b, v...)
	return append(b, crlf...)
}

// AppendBulkString appends s as a bulk string.
func AppendBulkString(b []byte, s string) []byte {
	b = append(b, '$')
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, crlf...)
	b = append(b, s...)
	return append(b, crlf...)
}

// AppendNull appends the RESP2 null bulk string "$-1\r\n".
func AppendNull(b []byte) []byte { return append(b, "$-1\r\n"...) }

// AppendArray appends an array header "*n\r\n"; the caller appends the
// n elements afterwards.
func AppendArray(b []byte, n int) []byte {
	b = append(b, '*')
	b = strconv.AppendInt(b, int64(n), 10)
	return append(b, crlf...)
}

// EncodeCommand renders args as a RESP multi-bulk request — what a
// client sends on the wire. Test and fuzz harnesses round-trip through
// it; servers never need it.
func EncodeCommand(b []byte, args ...[]byte) []byte {
	b = AppendArray(b, len(args))
	for _, a := range args {
		b = AppendBulk(b, a)
	}
	return b
}

// wrongArity is the canonical arity-violation reply text.
func wrongArity(cmd string) ReplyError {
	return ReplyError(fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd))
}
