package resp

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cxlsim/internal/obs"
)

// mapBackend is a plain concurrent map store for protocol-level tests.
type mapBackend struct {
	mu   sync.Mutex
	m    map[string][]byte
	fail error // when set, every data command returns it
}

func newMapBackend() *mapBackend { return &mapBackend{m: map[string][]byte{}} }

func (b *mapBackend) Get(key []byte) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fail != nil {
		return nil, false, b.fail
	}
	v, ok := b.m[string(key)]
	return v, ok, nil
}

func (b *mapBackend) Set(key, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fail != nil {
		return b.fail
	}
	b.m[string(key)] = append([]byte(nil), val...)
	return nil
}

func (b *mapBackend) Del(keys [][]byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fail != nil {
		return 0, b.fail
	}
	var n int64
	for _, k := range keys {
		if _, ok := b.m[string(k)]; ok {
			delete(b.m, string(k))
			n++
		}
	}
	return n, nil
}

func (b *mapBackend) Exists(keys [][]byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, k := range keys {
		if _, ok := b.m[string(k)]; ok {
			n++
		}
	}
	return n, nil
}

func (b *mapBackend) Incr(key []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	if v, ok := b.m[string(key)]; ok {
		var err error
		if n, err = strconv.ParseInt(string(v), 10, 64); err != nil {
			return 0, ReplyError("ERR value is not an integer or out of range")
		}
	}
	n++
	b.m[string(key)] = []byte(strconv.FormatInt(n, 10))
	return n, nil
}

func (b *mapBackend) MGet(keys [][]byte) ([][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]byte, len(keys))
	for i, k := range keys {
		if v, ok := b.m[string(k)]; ok {
			out[i] = v
		}
	}
	return out, nil
}

func (b *mapBackend) MSet(pairs [][]byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i+1 < len(pairs); i += 2 {
		b.m[string(pairs[i])] = append([]byte(nil), pairs[i+1]...)
	}
	return nil
}

func (b *mapBackend) Info() string { return "role:master\r\n" }

func args(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestDispatchTable(t *testing.T) {
	b := newMapBackend()
	d := NewDispatcher(b)
	cases := []struct {
		cmd  []string
		want string
	}{
		{[]string{"PING"}, "+PONG\r\n"},
		{[]string{"ping", "hello"}, "$5\r\nhello\r\n"},
		{[]string{"ECHO", "hi"}, "$2\r\nhi\r\n"},
		{[]string{"GET", "missing"}, "$-1\r\n"},
		{[]string{"SET", "k", "v"}, "+OK\r\n"},
		{[]string{"GET", "k"}, "$1\r\nv\r\n"},
		{[]string{"EXISTS", "k", "missing", "k"}, ":2\r\n"},
		{[]string{"INCR", "ctr"}, ":1\r\n"},
		{[]string{"INCR", "ctr"}, ":2\r\n"},
		{[]string{"INCR", "k"}, "-ERR value is not an integer or out of range\r\n"},
		{[]string{"MSET", "a", "1", "b", "2"}, "+OK\r\n"},
		{[]string{"MGET", "a", "nope", "b"}, "*3\r\n$1\r\n1\r\n$-1\r\n$1\r\n2\r\n"},
		{[]string{"DEL", "a", "nope", "b"}, ":2\r\n"},
		{[]string{"SELECT", "3"}, "+OK\r\n"},
		{[]string{"COMMAND", "DOCS"}, "*0\r\n"},
		{[]string{"CONFIG", "GET", "appendonly"}, "*2\r\n$10\r\nappendonly\r\n$2\r\nno\r\n"},
		{[]string{"CONFIG", "GET", "save"}, "*2\r\n$4\r\nsave\r\n$0\r\n\r\n"},
		{[]string{"CONFIG", "SET", "maxmemory", "0"}, "+OK\r\n"},
		{[]string{"HELLO", "3"}, "-NOPROTO unsupported protocol version\r\n"},
		{[]string{"GET"}, "-ERR wrong number of arguments for 'get' command\r\n"},
		{[]string{"SET", "k"}, "-ERR wrong number of arguments for 'set' command\r\n"},
		{[]string{"MSET", "k"}, "-ERR wrong number of arguments for 'mset' command\r\n"},
		{[]string{"NOPE", "x"}, "-ERR unknown command 'NOPE'\r\n"},
		{[]string{"evil\r\ncmd"}, "-ERR unknown command 'evil  cmd'\r\n"},
	}
	for _, tc := range cases {
		t.Run(strings.Join(tc.cmd, " "), func(t *testing.T) {
			got, quit := d.Dispatch(args(tc.cmd...), nil)
			if quit {
				t.Fatal("unexpected quit")
			}
			if string(got) != tc.want {
				t.Fatalf("reply %q, want %q", got, tc.want)
			}
		})
	}

	if reply, quit := d.Dispatch(args("QUIT"), nil); !quit || string(reply) != "+OK\r\n" {
		t.Fatalf("QUIT: reply %q quit %v", reply, quit)
	}
}

func TestDispatchErrorMapping(t *testing.T) {
	b := newMapBackend()
	d := NewDispatcher(b)

	b.fail = ReplyError("BUSY spill tier browned out")
	if got, _ := d.Dispatch(args("SET", "k", "v"), nil); string(got) != "-BUSY spill tier browned out\r\n" {
		t.Fatalf("ReplyError not passed verbatim: %q", got)
	}
	b.fail = fmt.Errorf("disk on fire")
	if got, _ := d.Dispatch(args("GET", "k"), nil); string(got) != "-ERR disk on fire\r\n" {
		t.Fatalf("plain error not wrapped as -ERR: %q", got)
	}
}

func TestDispatchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewDispatcher(newMapBackend())
	d.Instrument(reg)

	d.Dispatch(args("PING"), nil)
	d.Dispatch(args("GET", "k"), nil)
	d.Dispatch(args("GET"), nil)               // arity error
	d.Dispatch(args("WHATEVER-8291"), nil)     // unknown → bounded label
	d.Dispatch(args("ANOTHER-UNKNOWN-X"), nil) // same label

	snap := reg.Snapshot()
	cmds, ok := snap.Find(obs.MetricRESPCommands)
	if !ok {
		t.Fatal("resp_commands_total missing")
	}
	byLabel := map[string]float64{}
	for _, m := range cmds.Metrics {
		byLabel[m.LabelValues[0]] = m.Value
	}
	if byLabel["ping"] != 1 || byLabel["get"] != 2 || byLabel["unknown"] != 2 {
		t.Fatalf("command counters wrong: %v", byLabel)
	}
	errs, _ := snap.Find(obs.MetricRESPErrors)
	errByLabel := map[string]float64{}
	for _, m := range errs.Metrics {
		errByLabel[m.LabelValues[0]] = m.Value
	}
	if errByLabel["get"] != 1 || errByLabel["unknown"] != 2 {
		t.Fatalf("error counters wrong: %v", errByLabel)
	}
}
