package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzRESPDecode drives hostile bytes through the request parser. The
// invariants: no panic, no unbounded allocation (limits are tight), and
// every command the parser accepts must survive a round-trip through
// EncodeCommand — re-encoding and re-parsing yields the same arguments.
func FuzzRESPDecode(f *testing.F) {
	seeds := []string{
		"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n",
		"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
		"*1\r\n$4\r\nPING\r\n",
		"*2\r\n$4\r\nECHO\r\n$0\r\n\r\n",
		"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$4\r\n\x00\r\n\xff\r\n",
		"PING\r\n",
		"SET key value\r\n",
		"\r\n",
		"*0\r\n",
		"*2\r\n$3\r\nGE",       // torn
		"*-1\r\n",              // negative count
		"*1\r\n:3\r\n",         // wrong marker
		"*1\r\n$3\r\nfooXX",    // missing CRLF
		"*9999999999999\r\n",   // count overflow
		"$5\r\nhello\r\n",      // reply-typed frame as a request (inline)
		strings.Repeat("a", 300) + "\r\nPING\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := Limits{MaxBulkBytes: 256, MaxArgs: 8, MaxInlineBytes: 128}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), lim)
		for i := 0; i < 64; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				var pe ProtocolError
				if !errors.As(err, &pe) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(args) == 0 {
				continue
			}
			// Round-trip: what the parser accepted must re-encode and
			// re-parse identically.
			enc := EncodeCommand(nil, args...)
			back, err := NewReader(bytes.NewReader(enc), lim.roundTrip()).ReadCommand()
			if err != nil {
				t.Fatalf("round-trip re-parse failed: %v (encoded %q)", err, enc)
			}
			if len(back) != len(args) {
				t.Fatalf("round-trip arg count %d != %d", len(back), len(args))
			}
			for j := range args {
				if !bytes.Equal(back[j], args[j]) {
					t.Fatalf("round-trip arg %d: %q != %q", j, back[j], args[j])
				}
			}
		}
	})
}

// roundTrip widens the bulk bound to cover inline-sourced arguments: an
// inline field can be up to MaxInlineBytes long, and the re-encoded
// multi-bulk form must still fit under the re-parse limits.
func (l Limits) roundTrip() Limits {
	l = l.fill()
	if l.MaxBulkBytes < l.MaxInlineBytes {
		l.MaxBulkBytes = l.MaxInlineBytes
	}
	return l
}
