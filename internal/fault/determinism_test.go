// Determinism contract for fault replays, tested from outside the
// package through the full experiment stack: an identical seed and
// schedule must produce byte-identical report tables on repeated runs
// and at any parallelism — fault injection must not introduce any
// dependence on goroutine interleaving.
package fault_test

import (
	"runtime"
	"strings"
	"testing"

	"cxlsim/internal/core"
	"cxlsim/internal/fault"
)

func testSchedule() *fault.Schedule {
	return &fault.Schedule{
		Faults: []fault.Fault{
			{At: 2e6, Duration: 30e6, Kind: fault.LinkDegrade, Target: "/cxl0", Severity: 0.7},
			{At: 5e6, Duration: 10e6, Kind: fault.DeviceStall, Target: "/cxl1", Severity: 0.9},
		},
		Stochastic: &fault.Stochastic{
			Seed:           11,
			RatePerSec:     200,
			MeanDurationNs: 2e6,
			HorizonNs:      15e6,
			Severity:       0.5,
			Targets:        []string{"/cxl0", "/cxl1"},
		},
		Client: &fault.Resilience{TimeoutNs: 2e6, BackoffNs: 0.5e6, MaxRetries: 3},
	}
}

func renderFig5(t *testing.T, parallel int) string {
	t.Helper()
	rep, err := core.Run("fig5", core.Options{Quick: true, Parallel: parallel, Faults: testSchedule()})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.WriteTable(&sb)
	return sb.String()
}

func TestFaultReplayByteIdentical(t *testing.T) {
	serial := renderFig5(t, 1)
	if again := renderFig5(t, 1); again != serial {
		t.Fatalf("two serial fault replays differ:\n%s\nvs\n%s", serial, again)
	}
	if wide := renderFig5(t, runtime.GOMAXPROCS(0)); wide != serial {
		t.Fatalf("parallel fault replay differs from serial:\n%s\nvs\n%s", serial, wide)
	}
	// The degraded pass must actually be present in the output.
	if !strings.Contains(serial, "faulted kops/s") {
		t.Fatalf("fig5 with faults lacks the degraded column:\n%s", serial)
	}
}
