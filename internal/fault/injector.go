package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"cxlsim/internal/memsim"
	"cxlsim/internal/obs"
	"cxlsim/internal/sim"
	"cxlsim/internal/topology"
)

// Injector owns a materialized fault list against one machine. It
// resolves each fault's target substring to concrete resources at build
// time, snapshots each resource's calibration lazily — at the first
// fault transition touching it — and on every transition (fault starts
// or clears) recomputes each touched resource from that baseline so
// overlapping faults compose multiplicatively and clear cleanly.
//
// The lazy snapshot is what makes injectors nest: a second injector
// built over the same machine captures whatever state is in force when
// its first fault fires, so stacked injectors compose and unwind
// correctly as long as they clear in LIFO order (the inner injector
// resets before the outer). Clearing an outer injector while an inner
// one is active leaves the inner's baseline stale — don't do that.
//
// Transitions run inside the owning sim.Engine's event loop (Install) or
// all at once before serving starts (ApplyAll); the Degraded/ActiveCount
// read side is safe from other goroutines only after transitions stop,
// except ActiveCount which is atomic.
type Injector struct {
	schedule *Schedule
	machine  *topology.Machine
	faults   []Fault
	targets  [][]*memsim.Resource // per fault, resolved at build time

	base   map[*memsim.Resource]memsim.State
	active map[*memsim.Resource]map[int]bool // resource → live fault indices

	liveFaults  map[int]bool // fault index → currently applied
	activeCount atomic.Int64

	onChange []func(now sim.Time)

	injected *obs.CounterVec
	cleared  *obs.CounterVec
	activeG  *obs.Gauge
	tracer   *obs.Tracer
}

// NewInjector materializes the schedule against the machine. Every fault
// must match at least one resource name (case-insensitive substring over
// topology.Machine.Resources()); a dangling target is an error so typos
// fail instead of silently injecting nothing.
func NewInjector(s *Schedule, m *topology.Machine) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		schedule:   s,
		machine:    m,
		faults:     s.Materialize(),
		base:       map[*memsim.Resource]memsim.State{},
		active:     map[*memsim.Resource]map[int]bool{},
		liveFaults: map[int]bool{},
	}
	all := m.Resources()
	for _, f := range inj.faults {
		var hit []*memsim.Resource
		needle := strings.ToLower(f.Target)
		for _, r := range all {
			if strings.Contains(strings.ToLower(r.Name), needle) {
				hit = append(hit, r)
			}
		}
		if len(hit) == 0 {
			return nil, fmt.Errorf("fault: target %q matches no resource on %s (have %s)",
				f.Target, m.Config.Name, strings.Join(resourceNames(all), ", "))
		}
		inj.targets = append(inj.targets, hit)
		for _, r := range hit {
			// The baseline snapshot is deliberately NOT taken here — see
			// the type comment on nesting. Only the active map is eager,
			// because Degraded/DegradedResources read it before any
			// transition happens.
			if _, ok := inj.active[r]; !ok {
				inj.active[r] = map[int]bool{}
			}
		}
	}
	return inj, nil
}

func resourceNames(rs []*memsim.Resource) []string {
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return names
}

// Schedule returns the schedule this injector was built from.
func (inj *Injector) Schedule() *Schedule { return inj.schedule }

// Faults returns the materialized, time-sorted fault list.
func (inj *Injector) Faults() []Fault { return inj.faults }

// Machine returns the machine whose resources this injector perturbs.
func (inj *Injector) Machine() *topology.Machine { return inj.machine }

// OnChange registers a callback invoked (in event order, inside the
// engine loop) after any fault starts or clears — e.g. to re-solve
// cached latencies. Register before Install/ApplyAll.
func (inj *Injector) OnChange(fn func(now sim.Time)) {
	inj.onChange = append(inj.onChange, fn)
}

// Instrument publishes fault counters into the registry: injections and
// clears by kind, and a gauge of currently active faults.
func (inj *Injector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	inj.injected = reg.CounterVec(obs.MetricFaultInjected, "Faults injected, by kind.", "kind")
	inj.cleared = reg.CounterVec(obs.MetricFaultCleared, "Faults cleared, by kind.", "kind")
	inj.activeG = reg.Gauge(obs.MetricFaultActive, "Currently active faults.")
}

// SetTracer records every fault transition as an instant on the "fault"
// trace track, so alert firings and latency spikes line up with their
// cause in the same timeline. Set before Install/ApplyAll.
func (inj *Injector) SetTracer(tr *obs.Tracer) { inj.tracer = tr }

// Install schedules every fault transition on the engine: activation at
// Fault.At, clearing at Fault.At+Duration (faults with zero Duration
// never clear). Times already in the engine's past activate immediately.
func (inj *Injector) Install(eng *sim.Engine) {
	now := eng.Now()
	for i := range inj.faults {
		i := i
		f := inj.faults[i]
		at := f.At
		if at < now {
			at = now
		}
		eng.At(at, func(t sim.Time) { inj.applyFault(i, t) })
		if f.Duration > 0 {
			end := f.At + f.Duration
			if end < now {
				end = now
			}
			eng.At(end, func(t sim.Time) { inj.clearFault(i, t) })
		}
	}
}

// ApplyAll activates every fault immediately, ignoring At/Duration. It
// serves wall-clock consumers (cxlserve) that have no virtual-time
// engine: the process starts with the whole schedule in force.
func (inj *Injector) ApplyAll() {
	for i := range inj.faults {
		inj.applyFault(i, 0)
	}
}

// Reset clears every active fault and restores all touched resources to
// their pristine snapshots.
func (inj *Injector) Reset() {
	for i := range inj.faults {
		if inj.liveFaults[i] {
			inj.clearFault(i, 0)
		}
	}
}

func (inj *Injector) applyFault(i int, now sim.Time) {
	if inj.liveFaults[i] {
		return
	}
	inj.liveFaults[i] = true
	inj.activeCount.Add(1)
	for _, r := range inj.targets[i] {
		if _, ok := inj.base[r]; !ok {
			inj.base[r] = r.Snapshot() // lazy baseline: state in force now
		}
		inj.active[r][i] = true
		inj.recompute(r)
	}
	if inj.injected != nil {
		inj.injected.With(string(inj.faults[i].Kind)).Inc()
	}
	inj.tracer.Instant("fault", string(inj.faults[i].Kind)+" "+inj.faults[i].Target+" injected", now,
		map[string]any{"severity": inj.faults[i].Severity})
	inj.setActiveGauge()
	inj.fireChange(now)
}

func (inj *Injector) clearFault(i int, now sim.Time) {
	if !inj.liveFaults[i] {
		return
	}
	inj.liveFaults[i] = false
	inj.activeCount.Add(-1)
	for _, r := range inj.targets[i] {
		delete(inj.active[r], i)
		inj.recompute(r)
	}
	if inj.cleared != nil {
		inj.cleared.With(string(inj.faults[i].Kind)).Inc()
	}
	inj.tracer.Instant("fault", string(inj.faults[i].Kind)+" "+inj.faults[i].Target+" cleared", now, nil)
	inj.setActiveGauge()
	inj.fireChange(now)
}

// recompute rebuilds a resource from its pristine snapshot and reapplies
// every active fault's factors multiplicatively. Recomputing from the
// baseline (rather than stacking Degrade calls) makes clearing exact and
// keeps repeated transitions from compounding error.
func (inj *Injector) recompute(r *memsim.Resource) {
	r.Restore(inj.base[r])
	bw, lat := 1.0, 1.0
	// Walk fault indices in schedule order, not map order: float
	// multiplication is order-sensitive in the last bit, and byte-identical
	// output across runs is a hard invariant.
	live := inj.active[r]
	for i := range inj.faults {
		if !live[i] {
			continue
		}
		fb, fl := inj.faults[i].factors()
		bw *= fb
		lat *= fl
	}
	if bw < minBWFactor {
		bw = minBWFactor
	}
	if bw < 1 || lat > 1 {
		r.Degrade(bw, lat)
	}
}

func (inj *Injector) setActiveGauge() {
	if inj.activeG != nil {
		inj.activeG.Set(float64(inj.activeCount.Load()))
	}
}

func (inj *Injector) fireChange(now sim.Time) {
	for _, fn := range inj.onChange {
		fn(now)
	}
}

// ActiveCount returns the number of currently active faults. Safe from
// any goroutine.
func (inj *Injector) ActiveCount() int { return int(inj.activeCount.Load()) }

// Degraded reports whether the node's backing device currently has an
// active fault. It implements the tiering health interface.
func (inj *Injector) Degraded(n *topology.Node) bool {
	if inj == nil || n == nil {
		return false
	}
	return len(inj.active[n.Resource()]) > 0
}

// DegradedResources lists the names of resources with active faults, in
// sorted order — the /health detail string.
func (inj *Injector) DegradedResources() []string {
	var names []string
	for r, live := range inj.active {
		if len(live) > 0 {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Describe summarizes the materialized schedule for banners and logs.
func (inj *Injector) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d fault(s)", len(inj.faults))
	for i, f := range inj.faults {
		if i == 4 && len(inj.faults) > 5 {
			fmt.Fprintf(&b, "; … %d more", len(inj.faults)-i)
			break
		}
		dur := "∞"
		if f.Duration > 0 {
			dur = fmt.Sprintf("%.0fms", float64(f.Duration)/msToNs)
		}
		fmt.Fprintf(&b, "; %s %s@%.0fms for %s sev=%.2f",
			f.Kind, f.Target, float64(f.At)/msToNs, dur, f.Severity)
	}
	return b.String()
}
