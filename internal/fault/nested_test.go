package fault

import (
	"reflect"
	"testing"

	"cxlsim/internal/memsim"
	"cxlsim/internal/topology"
)

// nestedMachine builds a fresh machine and returns it with the resource
// the tests below degrade plus its pristine state.
func nestedMachine(t *testing.T) (*topology.Machine, *memsim.Resource, memsim.State) {
	t.Helper()
	m := topology.TestbedSNC()
	ssd := findResource(t, m, "/ssd")
	return m, ssd, ssd.Snapshot()
}

func mustInjector(t *testing.T, m *topology.Machine, sched *Schedule) *Injector {
	t.Helper()
	inj, err := NewInjector(sched, m)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func ssdStall(sev float64) *Schedule {
	return &Schedule{Faults: []Fault{{Kind: DeviceStall, Target: "/ssd", Severity: sev}}}
}

// TestNestedInjectorsComposeAndUnwind pins the snapshot/restore
// contract under nesting: a second injector built over the same machine
// must compose on top of the first's degradation (not wipe it back to
// pristine) and LIFO clears must restore exactly — outer state after
// the inner resets, pristine after both.
func TestNestedInjectorsComposeAndUnwind(t *testing.T) {
	m, ssd, pristine := nestedMachine(t)

	outer := mustInjector(t, m, ssdStall(0.5))
	outer.ApplyAll()
	outerState := ssd.Snapshot()
	if reflect.DeepEqual(outerState, pristine) {
		t.Fatal("outer fault had no effect")
	}

	// The inner injector is built AFTER outer applied; its baseline must
	// capture the outer-degraded state, not pristine.
	inner := mustInjector(t, m, ssdStall(0.5))
	inner.ApplyAll()
	bothState := ssd.Snapshot()
	if reflect.DeepEqual(bothState, outerState) || reflect.DeepEqual(bothState, pristine) {
		t.Fatalf("inner fault did not compose: pristine=%+v outer=%+v both=%+v", pristine, outerState, bothState)
	}

	// LIFO unwind: inner reset restores the outer-degraded state exactly.
	inner.Reset()
	if got := ssd.Snapshot(); !reflect.DeepEqual(got, outerState) {
		t.Fatalf("after inner reset: %+v, want outer state %+v", got, outerState)
	}
	outer.Reset()
	if got := ssd.Snapshot(); !reflect.DeepEqual(got, pristine) {
		t.Fatalf("after full unwind: %+v, want pristine %+v", got, pristine)
	}
}

// TestNestedInjectorReapplyExact re-applies the inner injector after a
// full LIFO unwind and checks the composed state is byte-identical to
// the first application — the snapshot/restore-exact property.
func TestNestedInjectorReapplyExact(t *testing.T) {
	m, ssd, pristine := nestedMachine(t)

	outer := mustInjector(t, m, ssdStall(0.4))
	inner := mustInjector(t, m, ssdStall(0.7))

	outer.ApplyAll()
	inner.ApplyAll()
	first := ssd.Snapshot()
	inner.Reset()
	outer.Reset()
	if got := ssd.Snapshot(); !reflect.DeepEqual(got, pristine) {
		t.Fatalf("unwind not exact: %+v vs %+v", got, pristine)
	}

	// Second cycle must reproduce the composed state exactly. The inner
	// injector's lazy baseline is re-captured per transition epoch only
	// on first use, so the outer must be live again before inner fires.
	outer.ApplyAll()
	inner.ApplyAll()
	if got := ssd.Snapshot(); !reflect.DeepEqual(got, first) {
		t.Fatalf("re-apply drifted: %+v vs first %+v", got, first)
	}
	inner.Reset()
	outer.Reset()
}

// TestNestedInjectorDegradedViews checks the read-side stays coherent
// under nesting: before any transition, a freshly built injector
// reports nothing degraded (the active maps are eager, baselines are
// not), and while nested faults are live both injectors agree the
// target is degraded.
func TestNestedInjectorDegradedViews(t *testing.T) {
	m, _, _ := nestedMachine(t)
	outer := mustInjector(t, m, ssdStall(0.5))
	inner := mustInjector(t, m, ssdStall(0.5))

	if outer.TargetDegraded("/ssd") || inner.TargetDegraded("/ssd") {
		t.Fatal("degraded before any fault applied")
	}
	outer.ApplyAll()
	if !outer.TargetDegraded("/ssd") {
		t.Fatal("outer does not see its own fault")
	}
	if inner.TargetDegraded("/ssd") {
		t.Fatal("inner sees outer's fault as its own")
	}
	inner.ApplyAll()
	if !inner.TargetDegraded("/ssd") {
		t.Fatal("inner does not see its own fault")
	}
	inner.Reset()
	outer.Reset()
	if outer.TargetDegraded("/ssd") || inner.TargetDegraded("/ssd") {
		t.Fatal("degraded after full unwind")
	}
}
