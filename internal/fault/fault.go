// Package fault is cxlsim's deterministic fault injector: it perturbs
// device models (CXL expanders, UPI links, DDR domains, the RSF stage)
// mid-run, in virtual time, so experiments can ask what happens to the
// paper's results when the fabric degrades instead of assuming healthy
// hardware.
//
// A Schedule is either scripted (explicit Fault entries), stochastic (a
// seeded Poisson process over a target set), or both. Stochastic faults
// are materialized into a concrete fault list up front, from the
// schedule's own seed — never drawn during the run — so a fault trace is
// reproducible at any parallelism and independent of event interleaving.
//
// The Injector applies faults by rewriting the targeted resources'
// calibration (memsim.Resource.Degrade) and restores the pristine
// baseline snapshot on every transition, so overlapping faults compose
// multiplicatively instead of compounding into the baseline. With no
// schedule installed nothing is scheduled and nothing is snapshotted:
// the healthy path is untouched.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"

	"cxlsim/internal/sim"
)

// Kind names a fault class. Each kind maps severity onto a bandwidth
// clamp and a latency multiplier for the targeted resources.
type Kind string

// The fault kinds.
const (
	// LinkDegrade models a CXL/UPI link running degraded — PCIe lanes
	// retrained down, CRC retries, a thermally throttled expander.
	// Severity 1 clamps bandwidth to 5% and multiplies latency by 10.
	LinkDegrade Kind = "link-degrade"
	// DeviceStall models a transient device stall — controller firmware
	// hiccup, DRAM refresh storm, error-recovery pause. Severity 1
	// clamps bandwidth to 1% and multiplies latency by 1000.
	DeviceStall Kind = "device-stall"
	// NodeLoss takes a memory node effectively offline: bandwidth drops
	// to 0.1% and latency inflates 1000×, regardless of severity. Pages
	// resident there keep (barely) answering — the graceful-degradation
	// layers are expected to evacuate or route around the node.
	NodeLoss Kind = "node-loss"
)

func (k Kind) valid() bool {
	switch k {
	case LinkDegrade, DeviceStall, NodeLoss:
		return true
	}
	return false
}

// Fault is one scheduled perturbation of the resources whose names
// contain Target.
type Fault struct {
	At       sim.Time // virtual start time (≥ 0)
	Duration sim.Time // 0 = never clears
	Kind     Kind
	Target   string  // case-insensitive substring of resource names
	Severity float64 // [0,1]; ignored by node-loss
}

// minBWFactor floors the composed bandwidth clamp so a resource never
// reaches exactly zero capacity (the solver needs positive peaks).
const minBWFactor = 1e-3

// factors maps the fault onto (bandwidth clamp, latency multiplier).
func (f Fault) factors() (bw, lat float64) {
	sev := f.Severity
	if sev < 0 {
		sev = 0
	}
	if sev > 1 {
		sev = 1
	}
	switch f.Kind {
	case LinkDegrade:
		return 1 - 0.95*sev, 1 + 9*sev
	case DeviceStall:
		return 1 - 0.99*sev, 1 + 999*sev
	case NodeLoss:
		return minBWFactor, 1000
	}
	return 1, 1
}

func (f Fault) validate(i int) error {
	switch {
	case !f.Kind.valid():
		return fmt.Errorf("fault %d: unknown kind %q", i, f.Kind)
	case f.Target == "":
		return fmt.Errorf("fault %d: empty target", i)
	case f.At < 0 || math.IsNaN(float64(f.At)) || math.IsInf(float64(f.At), 0):
		return fmt.Errorf("fault %d: invalid start time %v", i, float64(f.At))
	case f.Duration < 0 || math.IsNaN(float64(f.Duration)) || math.IsInf(float64(f.Duration), 0):
		return fmt.Errorf("fault %d: invalid duration %v", i, float64(f.Duration))
	case f.Severity < 0 || f.Severity > 1 || math.IsNaN(f.Severity):
		return fmt.Errorf("fault %d: severity %v outside [0,1]", i, f.Severity)
	}
	return nil
}

// Stochastic is a seeded random fault process: a Poisson arrival stream
// over a horizon, drawing kind, target, duration, and severity per
// event. It is expanded into concrete faults once, at injector build
// time, by Materialize — reproducibility does not depend on run
// interleaving.
type Stochastic struct {
	Seed           int64
	RatePerSec     float64  // mean faults per virtual second
	MeanDurationNs float64  // mean fault duration (exponential)
	HorizonNs      float64  // generate arrivals in [0, Horizon)
	Severity       float64  // mean severity, jittered ±50%
	Kinds          []Kind   // empty = all kinds
	Targets        []string // required: drawn uniformly per fault
}

func (st *Stochastic) validate() error {
	switch {
	case st.RatePerSec <= 0 || math.IsNaN(st.RatePerSec) || math.IsInf(st.RatePerSec, 0):
		return fmt.Errorf("stochastic: rate %v must be positive and finite", st.RatePerSec)
	case st.MeanDurationNs <= 0:
		return fmt.Errorf("stochastic: mean duration %v must be positive", st.MeanDurationNs)
	case st.HorizonNs <= 0:
		return fmt.Errorf("stochastic: horizon %v must be positive", st.HorizonNs)
	case st.Severity < 0 || st.Severity > 1 || math.IsNaN(st.Severity):
		return fmt.Errorf("stochastic: severity %v outside [0,1]", st.Severity)
	case len(st.Targets) == 0:
		return fmt.Errorf("stochastic: no targets")
	}
	for _, k := range st.Kinds {
		if !k.valid() {
			return fmt.Errorf("stochastic: unknown kind %q", k)
		}
	}
	return nil
}

// Resilience is the client-side retry policy replayed with a schedule:
// the request paths (kvstore closed loop, llmserve router) treat an
// attempt slower than Timeout as timed out and retry after an
// exponential backoff, all in virtual time.
type Resilience struct {
	TimeoutNs  float64
	BackoffNs  float64
	MaxRetries int
}

// Schedule is a full fault scenario: scripted faults, an optional
// stochastic process, and the client resilience policy to replay with
// them.
type Schedule struct {
	Faults     []Fault
	Stochastic *Stochastic
	Client     *Resilience
}

// Validate checks every scripted fault and the stochastic spec.
func (s *Schedule) Validate() error {
	if len(s.Faults) == 0 && s.Stochastic == nil {
		return fmt.Errorf("fault: schedule is empty")
	}
	for i, f := range s.Faults {
		if err := f.validate(i); err != nil {
			return fmt.Errorf("fault: %w", err)
		}
	}
	if s.Stochastic != nil {
		if err := s.Stochastic.validate(); err != nil {
			return fmt.Errorf("fault: %w", err)
		}
	}
	if c := s.Client; c != nil {
		if c.TimeoutNs < 0 || c.BackoffNs < 0 || c.MaxRetries < 0 {
			return fmt.Errorf("fault: negative client resilience parameters %+v", *c)
		}
	}
	return nil
}

// ClientPolicy returns the schedule's resilience knobs (zeros when the
// schedule carries none: timeouts and retries stay disabled).
func (s *Schedule) ClientPolicy() Resilience {
	if s == nil || s.Client == nil {
		return Resilience{}
	}
	return *s.Client
}

// Materialize expands the schedule into a concrete fault list sorted by
// (start time, schedule order): the scripted faults plus the stochastic
// process drawn from its seed. Calling it twice yields identical lists.
func (s *Schedule) Materialize() []Fault {
	out := append([]Fault(nil), s.Faults...)
	if st := s.Stochastic; st != nil {
		rng := rand.New(rand.NewSource(st.Seed))
		kinds := st.Kinds
		if len(kinds) == 0 {
			kinds = []Kind{LinkDegrade, DeviceStall, NodeLoss}
		}
		interNs := 1e9 / st.RatePerSec
		for t := rng.ExpFloat64() * interNs; t < st.HorizonNs; t += rng.ExpFloat64() * interNs {
			sev := st.Severity * (0.5 + rng.Float64())
			if sev > 1 {
				sev = 1
			}
			out = append(out, Fault{
				At:       sim.Time(t),
				Duration: sim.Time(rng.ExpFloat64() * st.MeanDurationNs),
				Kind:     kinds[rng.Intn(len(kinds))],
				Target:   st.Targets[rng.Intn(len(st.Targets))],
				Severity: sev,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// --- JSON wire format (times in milliseconds; see docs/RELIABILITY.md) ---

type faultJSON struct {
	AtMs       float64 `json:"at_ms"`
	DurationMs float64 `json:"duration_ms,omitempty"`
	Kind       string  `json:"kind"`
	Target     string  `json:"target"`
	Severity   float64 `json:"severity,omitempty"`
}

type stochasticJSON struct {
	Seed           int64    `json:"seed"`
	RatePerSec     float64  `json:"rate_per_sec"`
	MeanDurationMs float64  `json:"mean_duration_ms"`
	HorizonMs      float64  `json:"horizon_ms"`
	Severity       float64  `json:"severity,omitempty"`
	Kinds          []string `json:"kinds,omitempty"`
	Targets        []string `json:"targets"`
}

type resilienceJSON struct {
	TimeoutMs  float64 `json:"timeout_ms"`
	BackoffMs  float64 `json:"backoff_ms,omitempty"`
	MaxRetries int     `json:"max_retries,omitempty"`
}

type scheduleJSON struct {
	Faults     []faultJSON     `json:"faults,omitempty"`
	Stochastic *stochasticJSON `json:"stochastic,omitempty"`
	Client     *resilienceJSON `json:"client,omitempty"`
}

const msToNs = 1e6

// ParseSchedule reads the JSON schedule format. Unknown fields are
// rejected so a typoed key fails loudly instead of silently injecting
// nothing.
func ParseSchedule(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var w scheduleJSON
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("fault: parsing schedule: %w", err)
	}
	s := &Schedule{}
	for _, fj := range w.Faults {
		s.Faults = append(s.Faults, Fault{
			At:       sim.Time(fj.AtMs * msToNs),
			Duration: sim.Time(fj.DurationMs * msToNs),
			Kind:     Kind(strings.ToLower(fj.Kind)),
			Target:   fj.Target,
			Severity: fj.Severity,
		})
	}
	if sj := w.Stochastic; sj != nil {
		st := &Stochastic{
			Seed:           sj.Seed,
			RatePerSec:     sj.RatePerSec,
			MeanDurationNs: sj.MeanDurationMs * msToNs,
			HorizonNs:      sj.HorizonMs * msToNs,
			Severity:       sj.Severity,
			Targets:        sj.Targets,
		}
		for _, k := range sj.Kinds {
			st.Kinds = append(st.Kinds, Kind(strings.ToLower(k)))
		}
		s.Stochastic = st
	}
	if cj := w.Client; cj != nil {
		s.Client = &Resilience{
			TimeoutNs:  cj.TimeoutMs * msToNs,
			BackoffNs:  cj.BackoffMs * msToNs,
			MaxRetries: cj.MaxRetries,
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadSchedule reads and parses a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	defer f.Close()
	s, err := ParseSchedule(f)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return s, nil
}
