package fault

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cxlsim/internal/memsim"
	"cxlsim/internal/sim"
	"cxlsim/internal/topology"
)

func TestParseSchedule(t *testing.T) {
	const doc = `{
	  "faults": [
	    {"at_ms": 2, "duration_ms": 30, "kind": "Link-Degrade", "target": "/cxl0", "severity": 0.7}
	  ],
	  "client": {"timeout_ms": 2.0, "backoff_ms": 0.5, "max_retries": 3}
	}`
	s, err := ParseSchedule(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 1 {
		t.Fatalf("want 1 fault, got %d", len(s.Faults))
	}
	f := s.Faults[0]
	if f.At != 2e6 || f.Duration != 30e6 {
		t.Errorf("ms->ns conversion wrong: at=%v dur=%v", f.At, f.Duration)
	}
	if f.Kind != LinkDegrade {
		t.Errorf("kind not normalized: %q", f.Kind)
	}
	pol := s.ClientPolicy()
	if pol.TimeoutNs != 2e6 || pol.BackoffNs != 0.5e6 || pol.MaxRetries != 3 {
		t.Errorf("client policy wrong: %+v", pol)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"faults":[{"at_ms":1,"kind":"node-loss","target":"cxl","sev":1}]}`},
		{"empty schedule", `{}`},
		{"unknown kind", `{"faults":[{"at_ms":1,"kind":"gremlins","target":"cxl"}]}`},
		{"empty target", `{"faults":[{"at_ms":1,"kind":"node-loss","target":""}]}`},
		{"negative time", `{"faults":[{"at_ms":-1,"kind":"node-loss","target":"cxl"}]}`},
		{"severity > 1", `{"faults":[{"at_ms":1,"kind":"link-degrade","target":"cxl","severity":1.5}]}`},
		{"negative client", `{"faults":[{"at_ms":1,"kind":"node-loss","target":"cxl"}],"client":{"timeout_ms":-2}}`},
		{"stochastic no targets", `{"stochastic":{"seed":1,"rate_per_sec":10,"mean_duration_ms":1,"horizon_ms":10}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSchedule(strings.NewReader(tc.doc)); err == nil {
				t.Error("want parse/validate error")
			}
		})
	}
}

// Stochastic expansion must be a pure function of the schedule: identical
// seeds yield identical fault lists, and the list is sorted by start time
// — the determinism contract that makes fault replays reproducible at any
// parallelism.
func TestMaterializeDeterministic(t *testing.T) {
	s := &Schedule{
		Faults: []Fault{{At: 5e6, Kind: NodeLoss, Target: "cxl0"}},
		Stochastic: &Stochastic{
			Seed:           7,
			RatePerSec:     2000,
			MeanDurationNs: 1e6,
			HorizonNs:      20e6,
			Severity:       0.6,
			Targets:        []string{"cxl0", "cxl1"},
		},
	}
	a, b := s.Materialize(), s.Materialize()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Materialize is not deterministic")
	}
	if len(a) < 2 {
		t.Fatalf("expected stochastic draws on top of the scripted fault, got %d faults", len(a))
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].At < a[j].At }) {
		t.Error("materialized faults not sorted by start time")
	}
	for i, f := range a {
		if err := f.validate(i); err != nil {
			t.Errorf("materialized fault %d invalid: %v", i, err)
		}
	}
	// A different seed must actually change the draw.
	s2 := *s
	st := *s.Stochastic
	st.Seed = 8
	s2.Stochastic = &st
	if reflect.DeepEqual(a, s2.Materialize()) {
		t.Error("different seeds produced identical fault lists")
	}
}

// findResource pulls one resource by substring for direct inspection.
func findResource(t *testing.T, m *topology.Machine, sub string) *memsim.Resource {
	t.Helper()
	for _, r := range m.Resources() {
		if strings.Contains(r.Name, sub) {
			return r
		}
	}
	t.Fatalf("no resource matching %q", sub)
	return nil
}

// TestInjectorApplyClearRestore pins the snapshot/restore exactness
// contract: after a fault clears, the resource's calibration is bitwise
// identical to its pristine state — no cumulative drift.
func TestInjectorApplyClearRestore(t *testing.T) {
	m := topology.TestbedSNC()
	r := findResource(t, m, "/cxl0")
	idleRead0, idleWrite0, peakMax0 := r.IdleRead, r.IdleWrite, r.Peak.Max()

	s := &Schedule{Faults: []Fault{
		{At: 10, Duration: 90, Kind: LinkDegrade, Target: "/cxl0", Severity: 0.5},
	}}
	inj, err := NewInjector(s, m)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	inj.Install(eng)

	eng.Run()

	// Mid-run behaviour is exercised via ApplyAll/Reset below; after the
	// engine drains, the fault has applied and cleared once.
	if r.IdleRead != idleRead0 || r.IdleWrite != idleWrite0 || r.Peak.Max() != peakMax0 {
		t.Fatalf("restore not exact after clear: idle %v/%v peak %v, want %v/%v %v",
			r.IdleRead, r.IdleWrite, r.Peak.Max(), idleRead0, idleWrite0, peakMax0)
	}
	if inj.ActiveCount() != 0 {
		t.Fatalf("active count %d after all faults cleared", inj.ActiveCount())
	}

	inj.ApplyAll()
	bw, lat := s.Faults[0].factors()
	if got, want := r.IdleRead, idleRead0*lat; math.Abs(got-want) > 1e-9*want {
		t.Errorf("degraded IdleRead = %v, want %v", got, want)
	}
	if got, want := r.Peak.Max(), peakMax0*bw; math.Abs(got-want) > 1e-9*want {
		t.Errorf("degraded peak = %v, want %v", got, want)
	}
	if inj.ActiveCount() != 1 {
		t.Errorf("active count %d, want 1", inj.ActiveCount())
	}
	if got := inj.DegradedResources(); len(got) == 0 {
		t.Error("DegradedResources empty while fault active")
	}

	inj.Reset()
	if r.IdleRead != idleRead0 || r.Peak.Max() != peakMax0 {
		t.Fatal("Reset did not restore the pristine snapshot exactly")
	}
}

// Overlapping faults on the same target compose multiplicatively and
// unwind cleanly as each clears.
func TestOverlappingFaultsCompose(t *testing.T) {
	m := topology.TestbedSNC()
	r := findResource(t, m, "/cxl0")
	idleRead0 := r.IdleRead

	s := &Schedule{Faults: []Fault{
		{At: 0, Duration: 200, Kind: LinkDegrade, Target: "/cxl0", Severity: 0.5},
		{At: 50, Duration: 100, Kind: LinkDegrade, Target: "/cxl0", Severity: 0.2},
	}}
	inj, err := NewInjector(s, m)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	inj.Install(eng)

	_, lat0 := s.Faults[0].factors()
	_, lat1 := s.Faults[1].factors()

	check := func(when sim.Time, want float64) {
		eng.At(when, func(sim.Time) {
			if got := r.IdleRead; math.Abs(got-want) > 1e-9*want {
				t.Errorf("t=%v: IdleRead = %v, want %v", when, got, want)
			}
		})
	}
	check(25, idleRead0*lat0)       // only fault 0
	check(100, idleRead0*lat0*lat1) // overlap
	check(175, idleRead0*lat0)      // fault 1 cleared
	check(250, idleRead0)           // both cleared
	eng.Run()
}

func TestDanglingTargetErrors(t *testing.T) {
	s := &Schedule{Faults: []Fault{{At: 0, Kind: NodeLoss, Target: "no-such-device"}}}
	if _, err := NewInjector(s, topology.TestbedSNC()); err == nil {
		t.Fatal("dangling target should fail injector construction")
	}
}

func TestDegradedNodeLookup(t *testing.T) {
	m := topology.TestbedSNC()
	s := &Schedule{Faults: []Fault{{At: 0, Kind: NodeLoss, Target: "/cxl0"}}}
	inj, err := NewInjector(s, m)
	if err != nil {
		t.Fatal(err)
	}
	cxl := m.CXLNodes()[0]
	if inj.Degraded(cxl) {
		t.Error("node degraded before any fault applied")
	}
	inj.ApplyAll()
	if !inj.Degraded(cxl) {
		t.Error("node not degraded after node-loss applied")
	}
	if inj.Degraded(m.DRAMNodes(0)[0]) {
		t.Error("DRAM node reported degraded by a CXL fault")
	}
	inj.Reset()
	if inj.Degraded(cxl) {
		t.Error("node still degraded after Reset")
	}
}
