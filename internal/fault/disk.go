package fault

import (
	"errors"
	"strings"
)

// ErrDiskCrashed is what every I/O op on a crashed DiskInjector returns:
// the simulated machine lost power, so nothing issued after the crash
// boundary reaches the device.
var ErrDiskCrashed = errors.New("fault: disk crashed at injected boundary")

// DiskFault configures the deterministic durability-fault shim. The
// zero value injects nothing. Boundaries are counted across every
// physical write and fsync the spill tier issues, in issue order, so a
// crash point is a pure function of the workload — replaying the same
// seeded workload with CrashAtBoundary = k for every k is the crash
// matrix.
type DiskFault struct {
	// CrashAtBoundary kills the device at the k-th I/O boundary
	// (0-based); that boundary itself fails, and every later op returns
	// ErrDiskCrashed. Negative = never.
	CrashAtBoundary int
	// TornBytes is how many bytes of the crashing write still reach the
	// platter — the torn-write model. Ignored when the crash boundary
	// lands on a sync. Negative tears nothing; values past the write
	// length are clamped.
	TornBytes int
	// FlipWrite silently corrupts the n-th write (0-based) by XOR-ing
	// one bit — the bit-rot model fsck must catch via checksums.
	// Negative = never.
	FlipWrite int
	// FlipByte/FlipBit locate the flipped bit within that write (byte
	// offset is clamped into range).
	FlipByte int
	FlipBit  uint
}

// DiskInjector implements the spill tier's write-layer shim (it
// satisfies spill.Shim structurally; this package does not import
// spill). It is deterministic and single-use: one injector models one
// device lifetime ending in at most one crash.
type DiskInjector struct {
	cfg        DiskFault
	boundaries int
	writes     int
	crashed    bool
}

// NewDiskInjector builds a shim from the fault description. A zero
// DiskFault still counts boundaries (the probe mode the crash matrix
// uses to size itself) but never fails.
func NewDiskInjector(cfg DiskFault) *DiskInjector {
	if cfg.CrashAtBoundary < 0 {
		cfg.CrashAtBoundary = -1
	}
	if cfg.FlipWrite < 0 {
		cfg.FlipWrite = -1
	}
	return &DiskInjector{cfg: cfg}
}

// NeverCrash is the probe configuration: count boundaries, fail nothing.
func NeverCrash() DiskFault { return DiskFault{CrashAtBoundary: -1, FlipWrite: -1} }

// Write intercepts one physical append. The returned slice is what the
// device persists: the full buffer normally, a mutated copy when this
// write is the bit-flip target, a torn prefix when the crash boundary
// lands here, nothing once crashed.
func (d *DiskInjector) Write(name string, off int64, p []byte) ([]byte, error) {
	if d.crashed {
		return nil, ErrDiskCrashed
	}
	b := d.boundaries
	d.boundaries++
	w := d.writes
	d.writes++
	out := p
	if w == d.cfg.FlipWrite && len(p) > 0 {
		out = append([]byte(nil), p...)
		i := d.cfg.FlipByte
		if i < 0 {
			i = 0
		}
		if i >= len(out) {
			i = len(out) - 1
		}
		out[i] ^= 1 << (d.cfg.FlipBit % 8)
	}
	if b == d.cfg.CrashAtBoundary {
		d.crashed = true
		n := d.cfg.TornBytes
		if n < 0 {
			n = 0
		}
		if n > len(out) {
			n = len(out)
		}
		return out[:n], ErrDiskCrashed
	}
	return out, nil
}

// Sync intercepts one fsync boundary.
func (d *DiskInjector) Sync(name string) error {
	if d.crashed {
		return ErrDiskCrashed
	}
	b := d.boundaries
	d.boundaries++
	if b == d.cfg.CrashAtBoundary {
		d.crashed = true
		return ErrDiskCrashed
	}
	return nil
}

// Boundaries returns how many write/sync boundaries have been counted.
func (d *DiskInjector) Boundaries() int { return d.boundaries }

// Crashed reports whether the injected crash has fired.
func (d *DiskInjector) Crashed() bool { return d.crashed }

// TargetDegraded reports whether any resource whose name contains sub
// (case-insensitive) currently has an active fault — the hook the
// kvstore's durable spill tier uses to detect an SSD brownout from the
// same schedules that degrade the memory fabric.
func (inj *Injector) TargetDegraded(sub string) bool {
	if inj == nil {
		return false
	}
	needle := strings.ToLower(sub)
	for r, live := range inj.active {
		if len(live) > 0 && strings.Contains(strings.ToLower(r.Name), needle) {
			return true
		}
	}
	return false
}
