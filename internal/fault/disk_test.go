package fault

import (
	"bytes"
	"testing"
)

// TestDiskInjectorProbeCountsBoundaries checks the probe configuration
// counts every write and sync without failing anything.
func TestDiskInjectorProbeCountsBoundaries(t *testing.T) {
	d := NewDiskInjector(NeverCrash())
	for i := 0; i < 5; i++ {
		out, err := d.Write("seg", int64(i*4), []byte{1, 2, 3, 4})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if !bytes.Equal(out, []byte{1, 2, 3, 4}) {
			t.Fatalf("write %d mutated: %x", i, out)
		}
		if err := d.Sync("seg"); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if d.Boundaries() != 10 {
		t.Fatalf("boundaries = %d, want 10", d.Boundaries())
	}
	if d.Crashed() {
		t.Fatal("probe crashed")
	}
}

// TestDiskInjectorCrashOnWrite checks a crash landing on a write tears
// it to the configured prefix and kills every later op.
func TestDiskInjectorCrashOnWrite(t *testing.T) {
	d := NewDiskInjector(DiskFault{CrashAtBoundary: 2, TornBytes: 3, FlipWrite: -1})
	payload := []byte("abcdefgh")
	if _, err := d.Write("seg", 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync("seg"); err != nil {
		t.Fatal(err)
	}
	out, err := d.Write("seg", 8, payload) // boundary 2: the crash
	if err != ErrDiskCrashed {
		t.Fatalf("crash write err = %v", err)
	}
	if !bytes.Equal(out, []byte("abc")) {
		t.Fatalf("torn prefix = %q, want %q", out, "abc")
	}
	if !d.Crashed() {
		t.Fatal("not marked crashed")
	}
	if _, err := d.Write("seg", 16, payload); err != ErrDiskCrashed {
		t.Fatalf("post-crash write err = %v", err)
	}
	if err := d.Sync("seg"); err != ErrDiskCrashed {
		t.Fatalf("post-crash sync err = %v", err)
	}
}

// TestDiskInjectorCrashOnSyncTearsNothing checks a crash on a sync
// boundary leaves preceding writes fully persisted.
func TestDiskInjectorCrashOnSyncTearsNothing(t *testing.T) {
	d := NewDiskInjector(DiskFault{CrashAtBoundary: 1, TornBytes: 99, FlipWrite: -1})
	out, err := d.Write("seg", 0, []byte("abcd"))
	if err != nil || !bytes.Equal(out, []byte("abcd")) {
		t.Fatalf("write: %q, %v", out, err)
	}
	if err := d.Sync("seg"); err != ErrDiskCrashed {
		t.Fatalf("sync err = %v", err)
	}
}

// TestDiskInjectorBitFlip checks the silent-corruption mode flips
// exactly one bit of exactly one write, copies rather than mutates the
// caller's buffer, and still acknowledges the write.
func TestDiskInjectorBitFlip(t *testing.T) {
	d := NewDiskInjector(DiskFault{CrashAtBoundary: -1, FlipWrite: 1, FlipByte: 2, FlipBit: 4})
	orig := []byte("AAAA")
	if out, err := d.Write("seg", 0, orig); err != nil || !bytes.Equal(out, orig) {
		t.Fatalf("write 0: %q, %v", out, err)
	}
	out, err := d.Write("seg", 4, orig)
	if err != nil {
		t.Fatalf("flipped write must still ack: %v", err)
	}
	want := []byte{'A', 'A', 'A' ^ 0x10, 'A'}
	if !bytes.Equal(out, want) {
		t.Fatalf("flipped = %x, want %x", out, want)
	}
	if !bytes.Equal(orig, []byte("AAAA")) {
		t.Fatal("caller buffer mutated in place")
	}
	// Only that one write is touched.
	if out, _ := d.Write("seg", 8, orig); !bytes.Equal(out, orig) {
		t.Fatalf("write 2 mutated: %x", out)
	}
}

// TestDiskInjectorFlipByteClamped checks out-of-range flip offsets
// clamp into the buffer instead of panicking.
func TestDiskInjectorFlipByteClamped(t *testing.T) {
	d := NewDiskInjector(DiskFault{CrashAtBoundary: -1, FlipWrite: 0, FlipByte: 1000, FlipBit: 0})
	out, err := d.Write("seg", 0, []byte{0x00, 0x00})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{0x00, 0x01}) {
		t.Fatalf("clamped flip = %x", out)
	}
}
