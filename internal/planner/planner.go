// Package planner is the §6 conclusion operationalized: given a fleet of
// workload classes (working sets, bandwidth demands, and how much of each
// working set profiling says can tolerate CXL), it packs them onto
// candidate server shapes — DRAM-only, CXL-expanded, or high-density
// DIMMs — and picks the cheapest fleet that fits, respecting both
// capacity and the bandwidth knee on every tier.
package planner

import (
	"errors"
	"fmt"
	"sort"
)

// WorkloadClass describes one kind of service instance.
type WorkloadClass struct {
	Name          string
	Count         int     // instances to place
	WorkingSetGB  float64 // memory per instance
	BandwidthGBps float64 // sustained memory bandwidth per instance
	// MaxCXLShare is the largest fraction of the working set that can
	// live on CXL without violating the class's SLO (derived from
	// profiling à la §4: ≈0.25 for a KeyDB-like store, ≈1.0 for a
	// bandwidth-bound batch job, 0 for ultra-latency-critical data).
	MaxCXLShare float64
}

// Validate checks the class.
func (w WorkloadClass) Validate() error {
	if w.Count < 1 || w.WorkingSetGB <= 0 || w.BandwidthGBps < 0 {
		return fmt.Errorf("planner: invalid class %q", w.Name)
	}
	if w.MaxCXLShare < 0 || w.MaxCXLShare > 1 {
		return fmt.Errorf("planner: class %q MaxCXLShare outside [0,1]", w.Name)
	}
	return nil
}

// ServerShape is a candidate hardware configuration.
type ServerShape struct {
	Name       string
	DRAMGB     float64
	CXLGB      float64
	DRAMBWGBps float64 // deliverable DRAM bandwidth
	CXLBWGBps  float64 // deliverable CXL bandwidth
	CostUnits  float64 // relative TCO per server (baseline = 1)
}

// Validate checks the shape.
func (s ServerShape) Validate() error {
	if s.DRAMGB <= 0 || s.CXLGB < 0 || s.DRAMBWGBps <= 0 || s.CXLBWGBps < 0 || s.CostUnits <= 0 {
		return fmt.Errorf("planner: invalid shape %q", s.Name)
	}
	return nil
}

// DefaultShapes returns the candidate fleet shapes the paper's testbed
// and discussion suggest: the baseline server, two CXL expansions (the
// A1000-class card costs far less per GB than high-density DIMMs), and a
// double-density DRAM build with its DIMM premium.
func DefaultShapes() []ServerShape {
	return []ServerShape{
		{Name: "baseline", DRAMGB: 1024, DRAMBWGBps: 500, CostUnits: 1.0},
		{Name: "cxl-512", DRAMGB: 1024, CXLGB: 512, DRAMBWGBps: 500, CXLBWGBps: 110, CostUnits: 1.10},
		{Name: "cxl-1024", DRAMGB: 1024, CXLGB: 1024, DRAMBWGBps: 500, CXLBWGBps: 220, CostUnits: 1.18},
		// Doubling DRAM with high-density DIMMs costs far more than 2×
		// per GB (§1: "cost considerations of employing high-density
		// DIMMs") and adds no bandwidth (same channel count).
		{Name: "dram-2x", DRAMGB: 2048, DRAMBWGBps: 500, CostUnits: 2.2},
	}
}

// bwTarget keeps per-tier bandwidth below the contention knee (§3).
const bwTarget = 0.75

// Plan is the chosen fleet.
type Plan struct {
	Shape     ServerShape
	Servers   int
	CostUnits float64
	// Residency summarizes where fleet memory landed.
	DRAMUsedGB, CXLUsedGB float64
}

// ErrInfeasible is returned when no shape can host the fleet.
var ErrInfeasible = errors.New("planner: no candidate shape fits the workload")

// serverState tracks one server during packing.
type serverState struct {
	dramGB, cxlGB float64
	dramBW, cxlBW float64
}

// place tries to fit one instance, preferring DRAM, spilling up to
// maxCXLShare of its working set (and the proportional bandwidth) to CXL.
func (s *serverState) place(w WorkloadClass, shape ServerShape) bool {
	minDRAM := w.WorkingSetGB * (1 - w.MaxCXLShare)
	// DRAM is the scarce, expensive resource: offload the maximum
	// tolerated share to CXL first, falling back to pure DRAM when the
	// CXL tier (capacity or bandwidth) is the binding constraint.
	for _, cxlShare := range []float64{w.MaxCXLShare, 0} {
		dramNeed := w.WorkingSetGB * (1 - cxlShare)
		if dramNeed < minDRAM {
			dramNeed = minDRAM
		}
		cxlNeed := w.WorkingSetGB - dramNeed
		dramBWNeed := w.BandwidthGBps * (dramNeed / w.WorkingSetGB)
		cxlBWNeed := w.BandwidthGBps - dramBWNeed
		if s.dramGB+dramNeed > shape.DRAMGB || s.cxlGB+cxlNeed > shape.CXLGB {
			continue
		}
		if s.dramBW+dramBWNeed > shape.DRAMBWGBps*bwTarget ||
			s.cxlBW+cxlBWNeed > shape.CXLBWGBps*bwTarget+1e-12 {
			continue
		}
		s.dramGB += dramNeed
		s.cxlGB += cxlNeed
		s.dramBW += dramBWNeed
		s.cxlBW += cxlBWNeed
		return true
	}
	return false
}

// packOnto computes how many servers of the shape host the fleet
// (first-fit decreasing by working set). Returns 0 when a single
// instance cannot fit any server.
func packOnto(classes []WorkloadClass, shape ServerShape) (servers int, dramGB, cxlGB float64) {
	var insts []WorkloadClass
	for _, c := range classes {
		for i := 0; i < c.Count; i++ {
			insts = append(insts, c)
		}
	}
	sort.SliceStable(insts, func(i, j int) bool {
		return insts[i].WorkingSetGB > insts[j].WorkingSetGB
	})
	var fleet []*serverState
	for _, in := range insts {
		placed := false
		for _, srv := range fleet {
			if srv.place(in, shape) {
				placed = true
				break
			}
		}
		if !placed {
			srv := &serverState{}
			if !srv.place(in, shape) {
				return 0, 0, 0 // instance cannot fit this shape at all
			}
			fleet = append(fleet, srv)
		}
	}
	for _, srv := range fleet {
		dramGB += srv.dramGB
		cxlGB += srv.cxlGB
	}
	return len(fleet), dramGB, cxlGB
}

// Optimize picks the cheapest feasible plan across shapes. Ties go to
// fewer servers.
func Optimize(classes []WorkloadClass, shapes []ServerShape) (Plan, error) {
	if len(classes) == 0 {
		return Plan{}, errors.New("planner: no workload classes")
	}
	if len(shapes) == 0 {
		shapes = DefaultShapes()
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return Plan{}, err
		}
	}
	var best *Plan
	for _, shape := range shapes {
		if err := shape.Validate(); err != nil {
			return Plan{}, err
		}
		n, dram, cxl := packOnto(classes, shape)
		if n == 0 {
			continue
		}
		p := Plan{Shape: shape, Servers: n, CostUnits: float64(n) * shape.CostUnits,
			DRAMUsedGB: dram, CXLUsedGB: cxl}
		if best == nil || p.CostUnits < best.CostUnits-1e-9 ||
			(p.CostUnits < best.CostUnits+1e-9 && p.Servers < best.Servers) {
			best = &p
		}
	}
	if best == nil {
		return Plan{}, ErrInfeasible
	}
	return *best, nil
}
