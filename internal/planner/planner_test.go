package planner

import (
	"errors"
	"testing"
	"testing/quick"
)

// kvFleet is a capacity-bound KeyDB-like fleet: big working sets, modest
// bandwidth, half of each set CXL-tolerable — the paper's Hot-Promote
// configuration (Table 1: half the dataset on CXL, promotion keeps
// performance ≈ MMEM).
func kvFleet(count int) []WorkloadClass {
	return []WorkloadClass{{
		Name: "keydb", Count: count,
		WorkingSetGB: 512, BandwidthGBps: 5, MaxCXLShare: 0.5,
	}}
}

func TestCapacityBoundFleetPrefersCXL(t *testing.T) {
	// §6's conclusion: for capacity-bound services, CXL expansion needs
	// fewer servers than the baseline and beats the high-density-DIMM
	// premium on cost.
	plan, err := Optimize(kvFleet(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shape.CXLGB == 0 {
		t.Fatalf("capacity-bound fleet chose %q; expected a CXL shape", plan.Shape.Name)
	}
	// Versus baseline-only: force the baseline and compare cost.
	base, err := Optimize(kvFleet(12), []ServerShape{DefaultShapes()[0]})
	if err != nil {
		t.Fatal(err)
	}
	if plan.CostUnits >= base.CostUnits {
		t.Fatalf("CXL plan (%v units) should undercut baseline (%v units)", plan.CostUnits, base.CostUnits)
	}
	if plan.CXLUsedGB == 0 {
		t.Fatal("plan should actually use the CXL tier")
	}
}

func TestLatencyCriticalFleetAvoidsCXL(t *testing.T) {
	// MaxCXLShare 0 pins everything in DRAM: CXL capacity is dead
	// weight, so the baseline wins on cost.
	fleet := []WorkloadClass{{
		Name: "ultra", Count: 8, WorkingSetGB: 256, BandwidthGBps: 10, MaxCXLShare: 0,
	}}
	plan, err := Optimize(fleet, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shape.Name != "baseline" {
		t.Fatalf("latency-critical fleet chose %q, want baseline", plan.Shape.Name)
	}
	if plan.CXLUsedGB != 0 {
		t.Fatal("no CXL residency expected")
	}
}

func TestBandwidthBoundFleetUsesCXLBandwidth(t *testing.T) {
	// LLM-like instances: small working sets, heavy bandwidth, fully
	// CXL-tolerant. The binding constraint is the bandwidth knee, and
	// CXL's extra channels raise per-server capacity (§5).
	fleet := []WorkloadClass{{
		Name: "llm", Count: 40, WorkingSetGB: 16, BandwidthGBps: 30, MaxCXLShare: 1,
	}}
	cxlPlan, err := Optimize(fleet, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Optimize(fleet, []ServerShape{DefaultShapes()[0]})
	if err != nil {
		t.Fatal(err)
	}
	if cxlPlan.Servers >= base.Servers {
		t.Fatalf("CXL bandwidth should cut servers: %d vs baseline %d", cxlPlan.Servers, base.Servers)
	}
	if cxlPlan.CostUnits >= base.CostUnits {
		t.Fatalf("CXL plan cost %v should beat baseline %v", cxlPlan.CostUnits, base.CostUnits)
	}
}

func TestInfeasibleWorkload(t *testing.T) {
	// An instance bigger than any server with no CXL tolerance.
	fleet := []WorkloadClass{{
		Name: "whale", Count: 1, WorkingSetGB: 10_000, BandwidthGBps: 1, MaxCXLShare: 0,
	}}
	if _, err := Optimize(fleet, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMixedFleet(t *testing.T) {
	fleet := []WorkloadClass{
		{Name: "keydb", Count: 6, WorkingSetGB: 512, BandwidthGBps: 5, MaxCXLShare: 0.25},
		{Name: "llm", Count: 10, WorkingSetGB: 16, BandwidthGBps: 25, MaxCXLShare: 1},
		{Name: "ultra", Count: 3, WorkingSetGB: 64, BandwidthGBps: 8, MaxCXLShare: 0},
	}
	plan, err := Optimize(fleet, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Servers < 1 {
		t.Fatal("empty plan")
	}
	// Accounting sanity: fleet memory equals placed memory.
	var want float64
	for _, c := range fleet {
		want += float64(c.Count) * c.WorkingSetGB
	}
	got := plan.DRAMUsedGB + plan.CXLUsedGB
	if got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("placed %v GB, fleet needs %v GB", got, want)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := [][]WorkloadClass{
		nil,
		{{Name: "x", Count: 0, WorkingSetGB: 1}},
		{{Name: "x", Count: 1, WorkingSetGB: 0}},
		{{Name: "x", Count: 1, WorkingSetGB: 1, MaxCXLShare: 2}},
	}
	for i, fleet := range bad {
		if _, err := Optimize(fleet, nil); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	good := kvFleet(1)
	if _, err := Optimize(good, []ServerShape{{Name: "bad"}}); err == nil {
		t.Error("invalid shape should error")
	}
}

// Property: plans never pack beyond capacity or the bandwidth target on
// either tier.
func TestPropertyPlansRespectLimits(t *testing.T) {
	f := func(countRaw, wsRaw, bwRaw, shareRaw uint8) bool {
		fleet := []WorkloadClass{{
			Name:          "w",
			Count:         int(countRaw%20) + 1,
			WorkingSetGB:  float64(wsRaw%200) + 1,
			BandwidthGBps: float64(bwRaw % 40),
			MaxCXLShare:   float64(shareRaw%101) / 100,
		}}
		plan, err := Optimize(fleet, nil)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		// Re-pack onto the chosen shape and verify every server's load.
		n, dram, cxl := packOnto(fleet, plan.Shape)
		if n != plan.Servers {
			return false
		}
		return dram <= float64(plan.Servers)*plan.Shape.DRAMGB+1e-6 &&
			cxl <= float64(plan.Servers)*plan.Shape.CXLGB+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
