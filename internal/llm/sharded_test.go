package llm

import (
	"fmt"
	"strings"
	"testing"
)

func fleetFingerprint(t *testing.T, shards int) (string, *FleetResult) {
	t.Helper()
	res, err := ServeFleet(FleetConfig{
		Instances:           5,
		Shards:              shards,
		Policy:              Policy{Name: "1:1", TopN: 1, LowM: 1},
		Backends:            2,
		RequestsPerInstance: 400,
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "end=%.4f epochs=%d served=%d fwd=%d p50=%.4f p99=%.4f\n",
		res.EndNs, res.Epochs, res.Served, res.Forwarded,
		res.Latency.Percentile(50), res.Latency.Percentile(99))
	for i, in := range res.PerInstance {
		fmt.Fprintf(&b, "inst %d: served=%d out=%d in=%d p50=%.4f p99=%.4f\n",
			i, in.Served, in.ForwardedOut, in.ForwardedIn,
			in.Latency.Percentile(50), in.Latency.Percentile(99))
	}
	return b.String(), res
}

// TestFleetByteIdenticalAcrossShards pins the fleet-level determinism
// invariant; make race-shard additionally runs it under the race
// detector.
func TestFleetByteIdenticalAcrossShards(t *testing.T) {
	want, res := fleetFingerprint(t, 1)
	if res.Forwarded == 0 {
		t.Fatalf("no requests were shed across instances; test is vacuous")
	}
	if res.Served != 5*400 {
		t.Fatalf("served %d requests, want %d", res.Served, 5*400)
	}
	for _, shards := range []int{2, 3, 5, 8} {
		got, gres := fleetFingerprint(t, shards)
		if got != want {
			t.Fatalf("shards=%d diverged from shards=1:\nwant:\n%s\ngot:\n%s", shards, want, got)
		}
		if shards <= 5 && gres.Shards != shards {
			t.Fatalf("ran with %d shards, want %d", gres.Shards, shards)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	for name, cfg := range map[string]FleetConfig{
		"zero instances":  {Instances: 0},
		"negative shards": {Instances: 2, Shards: -1},
		"bad backends":    {Instances: 2, Backends: -3},
		"bad hop":         {Instances: 2, HopNs: -1},
	} {
		if _, err := ServeFleet(cfg); err == nil {
			t.Fatalf("%s: ServeFleet accepted invalid config", name)
		}
	}
}

func TestFleetSingleInstanceNeverForwards(t *testing.T) {
	res, err := ServeFleet(FleetConfig{Instances: 1, RequestsPerInstance: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forwarded != 0 {
		t.Fatalf("single instance forwarded %d requests", res.Forwarded)
	}
	if res.Served != 200 {
		t.Fatalf("served %d, want 200", res.Served)
	}
}
