// Package llm models the paper's CPU LLM inference experiments (§5): a
// LightLLM-style serving stack (HTTP frontend → router → CPU inference
// backends, Fig. 9) generating tokens for an Alpaca-7B-class model, where
// token decode is memory-bandwidth-bound through the KV cache and weight
// streaming.
//
// The experiment platform is one SNC-4 sub-NUMA domain (two DDR5-4800
// channels, ≈67 GB/s read peak) plus one A1000 CXL expander (§5.1); each
// CPU inference backend runs 12 threads; memory placement follows the
// N:M interleave policies of Table 1.
package llm

import (
	"fmt"

	"cxlsim/internal/memsim"
	"cxlsim/internal/par"
	"cxlsim/internal/topology"
)

// Model and cost constants (§5.1 and calibration targets in
// EXPERIMENTS.md).
const (
	// WeightBytes is the Alpaca 7B model size (4.1 GB, §5.1).
	WeightBytes = 4.1e9
	// BackendThreads is the per-backend CPU thread count (§5.1).
	BackendThreads = 12
	// threadGBps is the compute-paced memory demand per inference
	// thread: GEMM kernels are CPU-bound below device saturation, so a
	// backend offers a constant stream of requests (§5.1: "the client
	// ensures continuous operation of the CPU inference backends").
	// 12 threads ⇒ ≈13.5 GB/s per backend, matching the Fig. 10(b)
	// scaling line.
	threadGBps = 1.125
	// backendCapGBps is the single-backend bandwidth ceiling from the
	// backend's own software scalability (Fig. 10(b): 24.2 GB/s at 24
	// threads).
	backendCapGBps = 24.2
	// serialAccessesPerToken is the dependent-access count per decoded
	// token (layer-to-layer serialization, attention softmax, sampling):
	// the term that makes loaded latency — not just bandwidth — govern
	// the serving rate. Its product with the saturated DDR latency is
	// what makes MMEM-only *degrade* past 48 threads (§5.2: "bandwidth
	// contention plays a crucial role in the observed performance
	// degradation").
	serialAccessesPerToken = 224e3
	// decodeMix: weight/KV reads dominate; KV appends write.
	decodeReadFrac = 0.9

	// Fig. 10(c) calibration: model-loading I/O threads stream at
	// ≈12 GB/s; KV-cache traffic asymptotes near 9 GB/s as longer
	// sequences stretch per-token attention time.
	modelLoadGBps   = 12.0
	kvAsymptoteGBps = 9.0
)

// Policy is a memory placement for backend heaps.
type Policy struct {
	Name string
	// TopN:LowM is the MMEM:CXL interleave ratio; LowM == 0 means
	// MMEM-only.
	TopN, LowM int
}

// Fig10Policies returns the four §5.1 placements in figure order.
func Fig10Policies() []Policy {
	return []Policy{
		{Name: "MMEM", TopN: 1, LowM: 0},
		{Name: "3:1", TopN: 3, LowM: 1},
		{Name: "1:1", TopN: 1, LowM: 1},
		{Name: "1:3", TopN: 1, LowM: 3},
	}
}

// Cluster is the §5.1 serving setup on one SNC domain + one CXL device.
// Methods are safe for concurrent use: the memsim solvers are re-entrant
// (demand accumulates in solve-local state, never on shared devices), so
// concurrent ServingRate calls need no serialization.
type Cluster struct {
	machine *topology.Machine
	domain  *memsim.Path
	cxl     *memsim.Path

	// placements caches the materialized Fig 10 policies. Built once at
	// construction and read-only afterwards, so concurrent ServingRate
	// calls share it without locking; unknown policies fall back to
	// building a fresh placement.
	placements map[Policy]memsim.Placement
}

// NewCluster builds the experiment platform (SNC-4 enabled, §5.1).
func NewCluster() *Cluster {
	return NewClusterOn(topology.TestbedSNC())
}

// NewClusterOn builds the serving setup on a caller-provided machine —
// for sensitivity and failure-injection studies that perturb the devices
// before serving.
func NewClusterOn(m *topology.Machine) *Cluster {
	if len(m.CXLNodes()) == 0 {
		panic("llm: machine has no CXL node")
	}
	c := &Cluster{
		machine: m,
		domain:  m.PathFrom(0, m.DRAMNodes(0)[0]),
		cxl:     m.PathFrom(0, m.CXLNodes()[0]),
	}
	c.placements = make(map[Policy]memsim.Placement, 4)
	for _, p := range Fig10Policies() {
		c.placements[p] = c.build(p)
	}
	return c
}

// placement materializes a policy onto the cluster's paths.
func (c *Cluster) placement(p Policy) memsim.Placement {
	if pl, ok := c.placements[p]; ok {
		return pl
	}
	return c.build(p)
}

func (c *Cluster) build(p Policy) memsim.Placement {
	if p.LowM == 0 {
		return memsim.SinglePath(c.domain)
	}
	return memsim.Interleave(c.domain, c.cxl, p.TopN, p.LowM)
}

// ServingPoint is one Fig. 10(a) sample.
type ServingPoint struct {
	Policy       string
	Threads      int // total inference threads (backends × 12)
	Backends     int
	TokensPerSec float64
	BandwidthGB  float64 // aggregate memory bandwidth
	LatencyNs    float64 // loaded per-access latency
}

// ServingRate computes the steady-state token rate for n backends under a
// policy (one Fig. 10(a) point).
func (c *Cluster) ServingRate(p Policy, backends int) ServingPoint {
	if backends < 1 {
		panic(fmt.Sprintf("llm: invalid backend count %d", backends))
	}
	pl := c.placement(p)
	demand := float64(backends*BackendThreads) * threadGBps
	if cap := float64(backends) * backendCapGBps; demand > cap {
		demand = cap
	}
	flows := []memsim.OpenFlow{{
		Placement: pl,
		Mix:       memsim.Mix{ReadFrac: decodeReadFrac},
		Offered:   demand,
	}}
	res := memsim.SolveOpenResults(flows)
	perBackend := res[0].Achieved / float64(backends)

	// Token time: serialized layer/attention dependencies at the loaded
	// latency, plus streaming the weights at the backend's share of
	// delivered bandwidth.
	tokenNs := serialAccessesPerToken*res[0].Latency + WeightBytes/perBackend
	rate := float64(backends) / tokenNs * 1e9
	return ServingPoint{
		Policy:       p.Name,
		Threads:      backends * BackendThreads,
		Backends:     backends,
		TokensPerSec: rate,
		BandwidthGB:  res[0].Achieved,
		LatencyNs:    res[0].Latency,
	}
}

// Fig10a sweeps backend counts for every policy with GOMAXPROCS workers.
func (c *Cluster) Fig10a(maxBackends int) map[string][]ServingPoint {
	return c.Fig10aParallel(maxBackends, 0)
}

// Fig10aParallel is Fig10a with an explicit worker cap (0 = GOMAXPROCS,
// 1 = serial). Every (policy, backend-count) cell is an independent
// solve; cells land index-aligned in each policy's series, so the sweep
// is identical at any parallelism.
func (c *Cluster) Fig10aParallel(maxBackends, workers int) map[string][]ServingPoint {
	policies := Fig10Policies()
	out := make(map[string][]ServingPoint, len(policies))
	for _, p := range policies {
		out[p.Name] = make([]ServingPoint, maxBackends)
	}
	par.ForEach(len(policies)*maxBackends, workers, func(i int) {
		p := policies[i/maxBackends]
		n := i%maxBackends + 1
		out[p.Name][n-1] = c.ServingRate(p, n)
	})
	return out
}

// BackendBandwidth reports one backend's memory bandwidth at a given
// thread count (Fig. 10(b)): linear growth that plateaus at the backend's
// software ceiling.
func (c *Cluster) BackendBandwidth(threads int) float64 {
	if threads < 1 {
		panic("llm: invalid thread count")
	}
	demand := float64(threads) * threadGBps
	if demand > backendCapGBps {
		demand = backendCapGBps
	}
	res := memsim.SolveOpenResults([]memsim.OpenFlow{{
		Placement: memsim.SinglePath(c.domain),
		Mix:       memsim.Mix{ReadFrac: decodeReadFrac},
		Offered:   demand,
	}})
	return res[0].Achieved
}

// KVCacheBandwidth reports one backend's bandwidth as the KV cache grows
// (Fig. 10(c)): a ≈12 GB/s floor from model loading plus KV traffic that
// rises with cache size but self-limits as longer sequences stretch
// per-token attention, plateauing near 21 GB/s.
func (c *Cluster) KVCacheBandwidth(kvBytes float64) float64 {
	if kvBytes < 0 {
		panic("llm: negative KV cache size")
	}
	// Per-token attention must scan the cache; the token period is the
	// weight-stream time plus the scan at the asymptotic KV channel
	// rate, so KV traffic = kv / period → kvAsymptoteGBps as kv → ∞.
	period := WeightBytes/modelLoadGBps/1e9 + kvBytes/kvAsymptoteGBps/1e9 // seconds
	kvTraffic := 0.0
	if kvBytes > 0 {
		kvTraffic = kvBytes / period / 1e9 // GB/s
	}
	return modelLoadGBps + kvTraffic
}
