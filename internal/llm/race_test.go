package llm

import (
	"sync"
	"testing"
)

func TestConcurrentServingRateRace(t *testing.T) {
	c := NewCluster()
	p := Fig10Policies()[1]
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.ServingRate(p, 3)
			}
		}()
	}
	wg.Wait()
}
