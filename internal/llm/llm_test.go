package llm

import (
	"math"
	"testing"
)

func rateAt(t *testing.T, c *Cluster, policy string, backends int) float64 {
	t.Helper()
	for _, p := range Fig10Policies() {
		if p.Name == policy {
			return c.ServingRate(p, backends).TokensPerSec
		}
	}
	t.Fatalf("unknown policy %s", policy)
	return 0
}

func TestFig10aLinearScalingBeforeSaturation(t *testing.T) {
	// §5.2: "Initially, the serving rate improves almost linearly."
	c := NewCluster()
	r1 := rateAt(t, c, "MMEM", 1)
	r4 := rateAt(t, c, "MMEM", 4)
	if ratio := r4 / r1; ratio < 3.6 || ratio > 4.1 {
		t.Errorf("1→4 backend scaling = %.2f×, want ≈4×", ratio)
	}
}

func TestFig10aMMEMSaturatesAt48Threads(t *testing.T) {
	// §5.2: "at 48 threads, MMEM bandwidth saturation limits the
	// serving rate" — and contention degrades it beyond.
	c := NewCluster()
	r48 := rateAt(t, c, "MMEM", 4)
	r60 := rateAt(t, c, "MMEM", 5)
	if r60 >= r48 {
		t.Errorf("MMEM rate at 60 threads (%.2f) should fall below 48 threads (%.2f)", r60, r48)
	}
}

func TestFig10aInterleave31Surpasses95Pct(t *testing.T) {
	// §5.2: at 60 threads, 3:1 "significantly surpasses the MMEM-only
	// approach by 95%".
	c := NewCluster()
	gain := rateAt(t, c, "3:1", 5)/rateAt(t, c, "MMEM", 5) - 1
	if gain < 0.75 || gain > 1.20 {
		t.Errorf("3:1 gain over MMEM at 60 threads = %.0f%%, want ≈95%%", gain*100)
	}
}

func TestFig10aMMEMTrails13Beyond64Threads(t *testing.T) {
	// §5.2: "operating entirely on main memory is 14% less effective
	// than a MMEM:CXL ratio of 1:3 beyond 64 threads."
	c := NewCluster()
	for _, backends := range []int{6, 7} {
		deficit := 1 - rateAt(t, c, "MMEM", backends)/rateAt(t, c, "1:3", backends)
		if deficit < 0.05 || deficit > 0.25 {
			t.Errorf("MMEM deficit vs 1:3 at %d threads = %.0f%%, want ≈14%%",
				backends*BackendThreads, deficit*100)
		}
	}
}

func TestFig10aMoreMMEMIsBetterAmongInterleaves(t *testing.T) {
	// §5.2: "configurations with a higher proportion of data in main
	// memory demonstrate superior inference performance" (at moderate
	// load).
	c := NewCluster()
	for backends := 1; backends <= 5; backends++ {
		r31 := rateAt(t, c, "3:1", backends)
		r11 := rateAt(t, c, "1:1", backends)
		r13 := rateAt(t, c, "1:3", backends)
		if !(r31 >= r11 && r11 >= r13) {
			t.Errorf("backends=%d: want 3:1 (%.2f) ≥ 1:1 (%.2f) ≥ 1:3 (%.2f)", backends, r31, r11, r13)
		}
	}
}

func TestFig10aSweep(t *testing.T) {
	c := NewCluster()
	series := c.Fig10a(6)
	if len(series) != 4 {
		t.Fatalf("want 4 policies, got %d", len(series))
	}
	for name, pts := range series {
		if len(pts) != 6 {
			t.Fatalf("%s: want 6 points", name)
		}
		for i, p := range pts {
			if p.Backends != i+1 || p.Threads != (i+1)*BackendThreads {
				t.Fatalf("%s point %d mislabeled: %+v", name, i, p)
			}
			if p.TokensPerSec <= 0 {
				t.Fatalf("%s point %d: nonpositive rate", name, i)
			}
		}
	}
}

func TestFig10bBackendBandwidth(t *testing.T) {
	c := NewCluster()
	// Linear growth at low thread counts…
	b4, b8 := c.BackendBandwidth(4), c.BackendBandwidth(8)
	if r := b8 / b4; math.Abs(r-2) > 0.1 {
		t.Errorf("4→8 thread bandwidth scaling = %.2f, want ≈2", r)
	}
	// …12 threads ≈ 13.5 GB/s (the per-backend operating point)…
	if b12 := c.BackendBandwidth(12); math.Abs(b12-13.5) > 0.7 {
		t.Errorf("bandwidth at 12 threads = %.1f, want ≈13.5", b12)
	}
	// …plateau at 24.2 GB/s for 24 threads (§5.2).
	b24 := c.BackendBandwidth(24)
	if math.Abs(b24-24.2) > 0.5 {
		t.Errorf("bandwidth at 24 threads = %.1f, want ≈24.2", b24)
	}
	if b48 := c.BackendBandwidth(48); b48 > b24+0.01 {
		t.Errorf("bandwidth must plateau: 48 threads = %.1f > 24 threads = %.1f", b48, b24)
	}
}

func TestFig10cKVCacheBandwidth(t *testing.T) {
	c := NewCluster()
	// §5.2: "The initial memory bandwidth of approximately 12 GB/s
	// originates from I/O threads loading the model."
	if b0 := c.KVCacheBandwidth(0); math.Abs(b0-12) > 0.5 {
		t.Errorf("bandwidth at empty KV cache = %.1f, want ≈12", b0)
	}
	// Initially increases roughly linearly with cache size.
	b1, b2 := c.KVCacheBandwidth(0.5e9), c.KVCacheBandwidth(1e9)
	if (b2 - 12) <= (b1-12)*1.5 {
		t.Errorf("KV traffic should grow near-linearly early: %.2f vs %.2f", b1, b2)
	}
	// "bandwidth utilization stops increasing beyond roughly 21 GB/s."
	b64 := c.KVCacheBandwidth(64e9)
	if b64 < 19.5 || b64 > 21.5 {
		t.Errorf("asymptotic KV bandwidth = %.1f, want ≈21", b64)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for kv := 0.0; kv <= 32e9; kv += 1e9 {
		b := c.KVCacheBandwidth(kv)
		if b < prev {
			t.Fatalf("bandwidth decreased at kv=%.0f", kv)
		}
		prev = b
	}
}

func TestPanicsOnBadInputs(t *testing.T) {
	c := NewCluster()
	for name, f := range map[string]func(){
		"backends": func() { c.ServingRate(Fig10Policies()[0], 0) },
		"threads":  func() { c.BackendBandwidth(0) },
		"kv":       func() { c.KVCacheBandwidth(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPoliciesShape(t *testing.T) {
	ps := Fig10Policies()
	if len(ps) != 4 || ps[0].Name != "MMEM" || ps[0].LowM != 0 {
		t.Fatalf("unexpected policy set: %+v", ps)
	}
}

func BenchmarkServingRate(b *testing.B) {
	c := NewCluster()
	p := Fig10Policies()[1]
	for i := 0; i < b.N; i++ {
		c.ServingRate(p, 5)
	}
}
