package llm

import (
	"fmt"
	"math/rand"

	"cxlsim/internal/sim"
	"cxlsim/internal/stats"
	"cxlsim/internal/topology"
)

// FleetConfig drives a multi-instance serving simulation: M LightLLM
// instances (each the §5.1 stack at a fixed policy and backend count)
// behind independent request arrival streams, connected by the testbed
// fabric. An instance whose decode backlog exceeds ShedBacklogNs
// forwards an arriving request one hop to its ring neighbor — LightLLM's
// router-level load shedding — and the neighbor serves it regardless of
// its own backlog (requests forward at most once, so there is no
// ping-pong). The run executes on a sim.ShardedEngine with one logical
// partition per instance; results are byte-identical at any Shards
// setting.
type FleetConfig struct {
	Instances int // fleet size (≥ 1)
	Shards    int // parallel shards (default 1; clamped to Instances)

	Policy   Policy // memory placement for every instance
	Backends int    // CPU inference backends per instance (default 1)

	RequestsPerInstance int   // arrivals per instance (default 1000)
	Seed                int64 // per-instance streams derive from this

	// MeanArrivalNs is the mean request inter-arrival per instance
	// (exponential; default ≈ the mean request service time, i.e. each
	// instance offered ~100% load so shedding actually engages).
	MeanArrivalNs float64
	// ShedBacklogNs is the decode backlog beyond which an arriving local
	// request is forwarded (default 4× the mean request service time).
	ShedBacklogNs float64
	// HopNs is the one-way fabric latency between instances (default
	// topology.FabricHopNs); it is also the engine's lookahead.
	HopNs float64
}

// InstanceStats is one instance's tally.
type InstanceStats struct {
	Served       int // requests decoded here (local + forwarded-in)
	ForwardedOut int // local arrivals shed to the ring neighbor
	ForwardedIn  int // shed requests accepted from the neighbor
	Latency      *stats.Histogram
}

// FleetResult aggregates a fleet run.
type FleetResult struct {
	PerInstance []InstanceStats
	Served      int
	Forwarded   int
	Latency     *stats.Histogram // merged across instances
	EndNs       float64
	Epochs      uint64
	Shards      int
	// TokenNs is the per-token decode time every instance runs at (from
	// the policy's ServingRate), for sizing arrival rates.
	TokenNs float64
}

type fleet struct {
	cfg       FleetConfig
	se        *sim.ShardedEngine
	instances []*fleetInstance
	tokenNs   float64
}

type fleetInstance struct {
	f         *fleet
	id        int
	rng       *rand.Rand
	remaining int
	busyUntil sim.Time
	stats     InstanceStats
}

// reqTokens draws a request's decode length on the serving instance's
// RNG: 16–127 tokens, mean ≈ 71.5.
func (in *fleetInstance) reqTokens() int { return 16 + in.rng.Intn(112) }

// arrive is the instance's self-scheduling arrival chain.
func (in *fleetInstance) arrive(now sim.Time) {
	if in.remaining <= 0 {
		return
	}
	in.remaining--
	in.admit(now, now, false)
	gap := sim.Time(in.rng.ExpFloat64() * in.f.cfg.MeanArrivalNs)
	in.f.se.Partition(in.id).At(now+1+gap, in.arrive)
}

// admit either serves a request on this instance's decode pipeline or,
// for a local arrival over the backlog threshold, sheds it one hop to the
// ring neighbor. issue is the original arrival time, so shed requests pay
// the hop inside their measured latency.
func (in *fleetInstance) admit(now, issue sim.Time, forwarded bool) {
	f := in.f
	if !forwarded && len(f.instances) > 1 && float64(in.busyUntil-now) > f.cfg.ShedBacklogNs {
		dst := (in.id + 1) % len(f.instances)
		in.stats.ForwardedOut++
		f.se.Send(in.id, dst, now+sim.Time(f.cfg.HopNs), func(t sim.Time) {
			d := f.instances[dst]
			d.stats.ForwardedIn++
			d.admit(t, issue, true)
		})
		return
	}
	svc := sim.Time(float64(in.reqTokens()) * f.tokenNs)
	start := now
	if in.busyUntil > start {
		start = in.busyUntil
	}
	in.busyUntil = start + svc
	in.stats.Served++
	in.stats.Latency.Add(float64(in.busyUntil - issue))
}

// ServeFleet runs the fleet to completion: every instance's arrival
// stream drains, every shed request lands, and the per-instance and
// merged tallies come back. Byte-identical at any Shards setting.
func ServeFleet(cfg FleetConfig) (*FleetResult, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("llm: fleet needs at least one instance (got %d)", cfg.Instances)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("llm: fleet needs at least one shard (got %d)", cfg.Shards)
	}
	if cfg.Backends == 0 {
		cfg.Backends = 1
	}
	if cfg.Backends < 1 {
		return nil, fmt.Errorf("llm: invalid backend count %d", cfg.Backends)
	}
	if cfg.Policy.Name == "" {
		cfg.Policy = Fig10Policies()[0]
	}
	if cfg.RequestsPerInstance == 0 {
		cfg.RequestsPerInstance = 1000
	}
	if cfg.HopNs == 0 {
		cfg.HopNs = topology.FabricHopNs
	}
	if cfg.HopNs <= 0 {
		return nil, fmt.Errorf("llm: fabric hop latency must be positive (got %v)", cfg.HopNs)
	}

	// Every instance runs the same stack, so one steady-state solve fixes
	// the shared per-token decode time.
	sp := NewCluster().ServingRate(cfg.Policy, cfg.Backends)
	tokenNs := 1e9 / sp.TokensPerSec
	meanSvcNs := 71.5 * tokenNs
	if cfg.MeanArrivalNs == 0 {
		cfg.MeanArrivalNs = meanSvcNs
	}
	if cfg.MeanArrivalNs <= 0 {
		return nil, fmt.Errorf("llm: mean arrival interval must be positive (got %v)", cfg.MeanArrivalNs)
	}
	if cfg.ShedBacklogNs == 0 {
		cfg.ShedBacklogNs = 4 * meanSvcNs
	}

	f := &fleet{
		cfg:       cfg,
		se:        sim.NewSharded(cfg.Instances, cfg.Shards, sim.Time(cfg.HopNs)),
		instances: make([]*fleetInstance, cfg.Instances),
		tokenNs:   tokenNs,
	}
	for i := range f.instances {
		in := &fleetInstance{
			f:         f,
			id:        i,
			rng:       rand.New(rand.NewSource(cfg.Seed + 104729*int64(i))),
			remaining: cfg.RequestsPerInstance,
		}
		in.stats.Latency = stats.NewLatencyHistogram()
		f.instances[i] = in
		f.se.Partition(i).At(sim.Time(i)/8, in.arrive)
	}
	end := f.se.Run()

	res := &FleetResult{
		PerInstance: make([]InstanceStats, cfg.Instances),
		Latency:     stats.NewLatencyHistogram(),
		EndNs:       float64(end),
		Epochs:      f.se.Epochs(),
		Shards:      f.se.Shards(),
		TokenNs:     tokenNs,
	}
	for i, in := range f.instances {
		res.PerInstance[i] = in.stats
		res.Served += in.stats.Served
		res.Forwarded += in.stats.ForwardedOut
		res.Latency.Merge(in.stats.Latency)
	}
	return res, nil
}
