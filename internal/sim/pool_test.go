package sim

import "testing"

// These tests pin down the event-pool reuse hazards: a retained handle
// whose record has settled (fired/canceled) and possibly been recycled
// for a new event must never affect — or misreport — the new occupant.

// TestCancelStaleHandleDoesNotAliasReusedRecord is the core aliasing
// hazard: cancel an event, let its record be reused, then cancel the
// stale handle again. The new occupant must still fire.
func TestCancelStaleHandleDoesNotAliasReusedRecord(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func(Time) { t.Fatal("canceled event fired") })
	e.Cancel(a)

	// The freed record is top of the LIFO free list, so this reuses it.
	fired := false
	b := e.At(20, func(Time) { fired = true })

	e.Cancel(a) // stale: must not deschedule b
	if b.Pending() != true {
		t.Fatal("new occupant descheduled by a stale handle")
	}
	e.Run()
	if !fired {
		t.Fatal("reused event did not fire")
	}
}

// TestCanceledOnRecycledHandle: Canceled() is accurate from settle until
// reuse, then conservatively false — it must never leak the new
// occupant's state.
func TestCanceledOnRecycledHandle(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func(Time) {})
	e.Cancel(a)
	if !a.Canceled() {
		t.Fatal("Canceled() = false right after cancel")
	}

	// Reuse the record for b, then cancel b: the stale handle a must not
	// report b's cancellation as its own state transition, and b's handle
	// must report it.
	b := e.At(20, func(Time) {})
	if a.Canceled() {
		t.Fatal("stale handle reports state after its record was recycled")
	}
	e.Cancel(b)
	if a.Canceled() {
		t.Fatal("stale handle aliases the new occupant's canceled bit")
	}
	if !b.Canceled() {
		t.Fatal("live handle lost its canceled bit")
	}
}

// TestPendingAcrossReuse: Pending() is true only while the handle's own
// event is scheduled.
func TestPendingAcrossReuse(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func(Time) {})
	if !a.Pending() {
		t.Fatal("scheduled event not pending")
	}
	e.Run()
	if a.Pending() {
		t.Fatal("fired event still pending")
	}
	b := e.At(20, func(Time) {}) // reuses a's record
	if a.Pending() {
		t.Fatal("stale handle pending via recycled record")
	}
	if !b.Pending() {
		t.Fatal("new occupant not pending")
	}
	var zero Event
	if zero.Pending() || zero.Canceled() {
		t.Fatal("zero handle reports state")
	}
}

// TestSameTimestampFIFOUnderPooling: the (time, seq) FIFO tie-break must
// survive heavy record recycling — a reused record carries a fresh
// sequence number, never its previous one.
func TestSameTimestampFIFOUnderPooling(t *testing.T) {
	e := NewEngine()
	// Churn the pool: schedule, cancel, and fire enough events to cycle
	// every record through the free list several times.
	for round := 0; round < 10; round++ {
		evs := make([]Event, 3*slabSize)
		for i := range evs {
			evs[i] = e.At(e.Now()+1, func(Time) {})
		}
		for i := 0; i < len(evs); i += 2 {
			e.Cancel(evs[i])
		}
		e.Run()
	}

	base := e.Now() + 5
	var order []int
	for i := 0; i < 2*slabSize; i++ {
		i := i
		e.At(base, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated after pooling churn at %d: %v", i, order[:i+1])
		}
	}
}

// TestAtBatchFIFO: batch items at equal times fire in slice order and
// after earlier-scheduled events at the same time.
func TestAtBatchFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(5, func(Time) { order = append(order, 0) })
	items := make([]BatchItem, 4)
	for i := range items {
		i := i
		items[i] = BatchItem{At: 5, Fn: func(Time) { order = append(order, i+1) }}
	}
	e.AtBatch(items)
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("batch order = %v", order)
		}
	}
}

// batchHandler records handler invocations for TestAtBatchHandler.
type batchHandler struct {
	got []uint64
}

func (h *batchHandler) HandleEvent(_ Time, arg uint64) { h.got = append(h.got, arg) }

// TestAtBatchHandler: handler-form batch items deliver their args in
// order, interleaving with closure items by slice position.
func TestAtBatchHandler(t *testing.T) {
	e := NewEngine()
	h := &batchHandler{}
	e.AtBatch([]BatchItem{
		{At: 3, Handler: h, Arg: 7},
		{At: 3, Handler: h, Arg: 8},
		{At: 2, Handler: h, Arg: 9},
	})
	e.Run()
	want := []uint64{9, 7, 8}
	for i := range want {
		if h.got[i] != want[i] {
			t.Fatalf("handler args = %v, want %v", h.got, want)
		}
	}
}

// reschedulingHandler re-arms itself until its countdown expires — the
// fire→reschedule loop that the pool keeps allocation-free.
type reschedulingHandler struct {
	eng  *Engine
	left int
}

func (h *reschedulingHandler) HandleEvent(now Time, arg uint64) {
	if h.left--; h.left > 0 {
		h.eng.AfterHandler(1, h, arg)
	}
}

// TestSteadyStateSchedulingDoesNotAllocate: once the slab is warm, the
// fire→reschedule handler loop runs with zero allocations per event.
func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	h := &reschedulingHandler{eng: e}
	allocs := testing.AllocsPerRun(100, func() {
		h.left = 1000
		e.AfterHandler(1, h, 0)
		e.Run()
	})
	// Amortized cost must be far below one allocation per event; the
	// occasional heap growth inside container/heap is tolerated.
	if allocs > 1 {
		t.Fatalf("steady-state run allocated %.1f times per 1000 events", allocs)
	}
}

// TestCrossShardStaleCancelIsRecycledNoOp: under a sharded engine, a
// handle from one shard's pool whose record has settled and been
// recycled must read as "recycled" through ANY engine — a stale cancel
// routed to the wrong shard is a no-op, never an alias onto the
// record's new occupant.
func TestCrossShardStaleCancelIsRecycledNoOp(t *testing.T) {
	se := NewSharded(2, 2, 10)
	e0, e1 := se.Partition(0), se.Partition(1)
	if e0 == e1 {
		t.Fatal("partitions share an engine; want 2 shards")
	}

	a := e0.At(1, func(Time) {})
	e0.Cancel(a) // settled: gen bumped once, record on e0's free list

	// Recycle a's record for a new occupant on its own shard.
	fired := false
	b := e0.At(5, func(Time) { fired = true })

	// The stale handle crosses the shard boundary: gen mismatch makes it
	// "recycled" before the ownership check, so this must be a no-op on
	// BOTH engines — not a panic, and not a deschedule of b.
	e1.Cancel(a)
	e0.Cancel(a)
	if a.Pending() || a.Canceled() {
		t.Fatal("recycled handle reports state through the new occupant")
	}
	if !b.Pending() {
		t.Fatal("stale cross-shard cancel descheduled the new occupant")
	}
	se.Run()
	if !fired {
		t.Fatal("new occupant did not fire after stale cross-shard cancel")
	}
}

// TestCrossShardLiveCancelPanics: canceling a LIVE event through an
// engine that does not own its record must panic. Silently splicing the
// record out of a foreign shard's timeline from another goroutine would
// corrupt it; silently doing nothing would leak the event. Only the
// stale (recycled) case is a safe no-op.
func TestCrossShardLiveCancelPanics(t *testing.T) {
	se := NewSharded(2, 2, 10)
	e0, e1 := se.Partition(0), se.Partition(1)

	live := e0.At(5, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("live cross-shard Cancel did not panic")
		}
		// The foreign cancel must not have touched the record: the owner
		// can still cancel it.
		if !live.Pending() {
			t.Fatal("foreign Cancel descheduled the event before panicking")
		}
		e0.Cancel(live)
		if !live.Canceled() {
			t.Fatal("owner cancel failed after rejected foreign cancel")
		}
	}()
	e1.Cancel(live)
}

// TestCancelRecycledHeapIndex: a record that fired (idx = -1) and was
// reused sits at a new heap position; canceling through the old handle
// must not remove the wrong heap entry.
func TestCancelRecycledHeapIndex(t *testing.T) {
	e := NewEngine()
	a := e.At(1, func(Time) {})
	e.Run() // a fires; record freed

	var fired int
	b := e.At(2, func(Time) { fired++ }) // reuses a's record
	c := e.At(3, func(Time) { fired++ })
	e.Cancel(a) // stale; must not touch b or c
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events after stale cancel, want 2", fired)
	}
	_ = b
	_ = c
}
