package sim

import (
	"math/rand"
	"testing"
)

// Differential check between the two timeline implementations. Both the
// wheel and the retired heap are compiled in every build (the tag only
// selects which one backs Engine), so one binary can replay the same
// operation script against both and demand identical observable behavior:
// same peek, same pop order, same survivors after cancels.

// tlOps is the common surface of wheel and heapTimeline.
type tlOps interface {
	len() int
	push(*slot)
	pop() *slot
	peek() (Time, bool)
	remove(*slot)
}

// tlEntry pairs the two records that represent one logical event, one per
// timeline. The slot's arg field carries the entry index so pops can be
// matched by logical identity, not just (at, seq).
type tlEntry struct {
	ws, hs *slot
	live   bool
}

type tlScript struct {
	t       *testing.T
	w, h    tlOps
	entries []tlEntry
	liveIdx []int
	now     Time
	seq     uint64
}

func (sc *tlScript) push(at Time) {
	idx := len(sc.entries)
	ws := &slot{at: at, seq: sc.seq, arg: uint64(idx), loc: locNone, idx: -1}
	hs := &slot{at: at, seq: sc.seq, arg: uint64(idx), loc: locNone, idx: -1}
	sc.seq++
	sc.w.push(ws)
	sc.h.push(hs)
	sc.entries = append(sc.entries, tlEntry{ws: ws, hs: hs, live: true})
	sc.liveIdx = append(sc.liveIdx, idx)
}

func (sc *tlScript) pop() {
	ws, hs := sc.w.pop(), sc.h.pop()
	if (ws == nil) != (hs == nil) {
		sc.t.Fatalf("pop divergence: wheel=%v heap=%v", ws != nil, hs != nil)
	}
	if ws == nil {
		return
	}
	if ws.arg != hs.arg || ws.at != hs.at || ws.seq != hs.seq {
		sc.t.Fatalf("pop order divergence: wheel popped event %d (at=%v seq=%d), heap popped event %d (at=%v seq=%d)",
			ws.arg, ws.at, ws.seq, hs.arg, hs.at, hs.seq)
	}
	if ws.at < sc.now {
		sc.t.Fatalf("wheel popped event at %v after clock reached %v", ws.at, sc.now)
	}
	sc.now = ws.at
	sc.retire(int(ws.arg))
}

func (sc *tlScript) peek() {
	wt, wok := sc.w.peek()
	ht, hok := sc.h.peek()
	if wok != hok || (wok && wt != ht) {
		sc.t.Fatalf("peek divergence: wheel=(%v,%v) heap=(%v,%v)", wt, wok, ht, hok)
	}
}

func (sc *tlScript) cancel(k int) {
	if len(sc.liveIdx) == 0 {
		return
	}
	idx := sc.liveIdx[k%len(sc.liveIdx)]
	en := &sc.entries[idx]
	sc.w.remove(en.ws)
	sc.h.remove(en.hs)
	sc.retire(idx)
	if sc.w.len() != sc.h.len() {
		sc.t.Fatalf("len divergence after cancel: wheel=%d heap=%d", sc.w.len(), sc.h.len())
	}
}

func (sc *tlScript) retire(idx int) {
	sc.entries[idx].live = false
	for i, v := range sc.liveIdx {
		if v == idx {
			sc.liveIdx[i] = sc.liveIdx[len(sc.liveIdx)-1]
			sc.liveIdx = sc.liveIdx[:len(sc.liveIdx)-1]
			return
		}
	}
	sc.t.Fatalf("event %d retired twice", idx)
}

// replayTimelines decodes data as an operation script and replays it
// against both timelines, then drains them comparing every pop.
func replayTimelines(t *testing.T, data []byte) {
	sc := &tlScript{t: t, w: &wheel{}, h: &heapTimeline{}}
	for i := 0; i+1 < len(data); i += 2 {
		op, v := data[i], data[i+1]
		switch op % 8 {
		case 0, 1, 2: // schedule: mix of ties, near, cascade-far, and overflow-far times
			var d Time
			switch {
			case v == 255:
				d = 3e15 // beyond the 2^48-tick wheel horizon
			case v == 254:
				d = 3e9 // multi-level cascade distance
			case v%5 == 0:
				d = 0 // exact tie on (time); seq breaks it
			default:
				d = Time(v) + Time(v%7)/8 // fractional ticks share a bucket
			}
			sc.push(sc.now + d)
		case 3, 4: // fire
			sc.pop()
		case 5:
			sc.peek()
		case 6:
			sc.cancel(int(v))
		case 7: // reschedule = cancel + schedule later
			sc.cancel(int(v))
			sc.push(sc.now + Time(v)*17)
		}
	}
	for sc.w.len() > 0 || sc.h.len() > 0 {
		sc.peek()
		sc.pop()
	}
}

func FuzzTimelineDifferential(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 3, 0})
	f.Add([]byte{0, 255, 0, 254, 0, 0, 3, 0, 3, 0, 3, 0})
	f.Add([]byte{0, 5, 0, 5, 0, 5, 6, 1, 7, 2, 5, 0, 3, 0})
	f.Add([]byte{2, 253, 5, 0, 0, 3, 3, 0, 1, 255, 6, 0, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		replayTimelines(t, data)
	})
}

// TestTimelineDifferentialRandom is the always-on property test: seeded
// random scripts, so plain `go test` gets differential coverage without
// the fuzzer.
func TestTimelineDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 4000)
		rng.Read(data)
		replayTimelines(t, data)
	}
}
