package sim

import "math/bits"

// Hierarchical timing wheel: the default data structure behind the
// engine's pending-event queue (build with -tags simheap to select the
// retired container/heap timeline instead).
//
// Virtual time is bucketed on a 1 ns tick grid. wheelLevels levels of
// wheelSlots buckets each cover a horizon of 2^(wheelBits*wheelLevels)
// ticks (~3.3 virtual days at 8×64); events beyond the horizon park in an
// unsorted overflow slice that is folded back through the wheel when the
// wheel itself runs dry. Near-horizon schedule, cancel, and fire are O(1):
// placement is two shifts and an append, cancel is a swap-remove through
// the location stamped on the record, and firing scans per-level occupancy
// bitmaps instead of walking empty buckets.
//
// Events that share the current tick live in a small binary heap ("due")
// ordered by the full (at, seq) key, so fractional-nanosecond times and
// the FIFO tie-break keep exactly the ordering the heap timeline produced:
// the wheel only ever coarsens *future* placement, never fire order.
//
// Invariants:
//   - due holds every pending event whose tick is ≤ cur (times before the
//     cursor appear only transiently, when peek advanced the cursor ahead
//     of the engine clock and a later schedule lands between the two).
//   - a set occupancy bit at any level marks a bucket whose events all
//     have ticks strictly after cur.
//   - a pending record's loc/idx always name its exact container slot.

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 8
)

// slot.loc values. A non-negative loc encodes a wheel bucket as
// level<<wheelBits | bucket; idx is the record's position inside whichever
// container loc names.
const (
	locNone int32 = -1 // settled: not in any timeline container
	locDue  int32 = -2 // wheel due heap
	locOver int32 = -3 // wheel overflow slice
	locHeap int32 = -4 // simheap binary-heap timeline
)

// tick truncates a virtual time to the wheel's 1 ns grid. Sub-nanosecond
// precision is not lost: equal-tick events are ordered by the exact
// (at, seq) key in the due heap.
func tick(t Time) uint64 { return uint64(t) }

type wheel struct {
	cur  uint64 // current tick; see the invariants above
	size int
	// due is a binary min-heap by (at, seq) holding the events next to
	// fire. It is small in steady state: one tick's worth of events.
	due      []*slot
	occ      [wheelLevels]uint64
	buckets  [wheelLevels][wheelSlots][]*slot
	overflow []*slot
}

func (w *wheel) len() int { return w.size }

func (w *wheel) push(s *slot) {
	w.size++
	if tk := tick(s.at); tk > w.cur {
		w.place(s, tk)
	} else {
		w.duePush(s)
	}
}

// place files a future event (tk > cur) into the wheel proper.
func (w *wheel) place(s *slot, tk uint64) {
	// The level is picked by the highest bit where tk differs from the
	// cursor: level l resolves time to 2^(wheelBits·l) ticks, so the event
	// lands in the coarsest bucket that still separates it from cur.
	level := (bits.Len64(tk^w.cur) - 1) / wheelBits
	if level >= wheelLevels {
		s.loc = locOver
		s.idx = len(w.overflow)
		w.overflow = append(w.overflow, s)
		return
	}
	b := (tk >> (uint(level) * wheelBits)) & wheelMask
	s.loc = int32(level)<<wheelBits | int32(b)
	s.idx = len(w.buckets[level][b])
	w.buckets[level][b] = append(w.buckets[level][b], s)
	w.occ[level] |= 1 << b
}

func (w *wheel) pop() *slot {
	if w.size == 0 {
		return nil
	}
	if len(w.due) == 0 {
		w.advance()
	}
	s := w.duePop()
	w.size--
	return s
}

func (w *wheel) peek() (Time, bool) {
	if w.size == 0 {
		return 0, false
	}
	if len(w.due) == 0 {
		w.advance()
	}
	return w.due[0].at, true
}

func (w *wheel) remove(s *slot) {
	switch {
	case s.loc == locDue:
		w.dueRemove(s.idx)
	case s.loc == locOver:
		last := len(w.overflow) - 1
		if s.idx != last {
			moved := w.overflow[last]
			w.overflow[s.idx] = moved
			moved.idx = s.idx
		}
		w.overflow[last] = nil
		w.overflow = w.overflow[:last]
		s.loc = locNone
		s.idx = -1
	case s.loc >= 0:
		l := int(s.loc >> wheelBits)
		b := int(s.loc & wheelMask)
		bucket := w.buckets[l][b]
		last := len(bucket) - 1
		if s.idx != last {
			moved := bucket[last]
			bucket[s.idx] = moved
			moved.idx = s.idx
		}
		bucket[last] = nil
		w.buckets[l][b] = bucket[:last]
		if last == 0 {
			w.occ[l] &^= 1 << uint(b)
		}
		s.loc = locNone
		s.idx = -1
	default:
		return // not queued; Cancel's generation check normally prevents this
	}
	w.size--
}

// advance moves the cursor to the next occupied tick and drains that
// tick's events into the due heap. Called only with size > 0 and due
// empty.
func (w *wheel) advance() {
	for len(w.due) == 0 {
		if m := w.occ[0]; m != 0 {
			// Next event is inside the current 64-tick window: jump
			// straight to its tick and drain the bucket.
			b := uint64(bits.TrailingZeros64(m))
			w.cur = w.cur&^uint64(wheelMask) | b
			sl := w.buckets[0][b]
			w.buckets[0][b] = sl[:0]
			w.occ[0] &^= 1 << b
			for _, s := range sl {
				w.duePush(s)
			}
			continue
		}
		if !w.cascade() {
			w.refillFromOverflow()
		}
	}
}

// cascade finds the lowest level with an occupied bucket, jumps the
// cursor to that bucket's first tick, and redistributes its events into
// finer levels (or straight to due). Reports false when every level is
// empty.
func (w *wheel) cascade() bool {
	for l := 1; l < wheelLevels; l++ {
		m := w.occ[l]
		if m == 0 {
			continue
		}
		b := uint64(bits.TrailingZeros64(m))
		span := uint64(1) << (uint(l) * wheelBits)
		base := w.cur &^ (span*wheelSlots - 1)
		w.cur = base + b*span
		sl := w.buckets[l][b]
		w.buckets[l][b] = sl[:0]
		w.occ[l] &^= 1 << b
		for _, s := range sl {
			// Every tick in the bucket is ≥ the new cursor and within
			// span of it, so redistribution always lands strictly below
			// level l — the cascade terminates.
			if tk := tick(s.at); tk > w.cur {
				w.place(s, tk)
			} else {
				w.duePush(s)
			}
		}
		return true
	}
	return false
}

// refillFromOverflow jumps the cursor to the earliest overflow tick and
// folds the overflow events back through the wheel. The O(n) scan is
// amortized over the ≥2^48 ticks that had to elapse to reach it.
func (w *wheel) refillFromOverflow() {
	if len(w.overflow) == 0 {
		panic("sim: timeline lost events (empty wheel with size > 0)")
	}
	min := tick(w.overflow[0].at)
	for _, s := range w.overflow[1:] {
		if tk := tick(s.at); tk < min {
			min = tk
		}
	}
	w.cur = min
	sl := w.overflow
	w.overflow = sl[:0]
	for _, s := range sl {
		// place may re-append to w.overflow (events still beyond the new
		// horizon). That reuses sl's backing array in place, which is safe:
		// at most i records have been kept when sl[i] is read, so appends
		// never overwrite an unread element.
		if tk := tick(s.at); tk > w.cur {
			w.place(s, tk)
		} else {
			w.duePush(s)
		}
	}
}

// due-heap primitives: a plain binary heap over (at, seq) with the
// record's idx kept in sync so dueRemove is O(log n) from a handle.

func dueLess(a, b *slot) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (w *wheel) duePush(s *slot) {
	s.loc = locDue
	s.idx = len(w.due)
	w.due = append(w.due, s)
	w.dueUp(s.idx)
}

func (w *wheel) duePop() *slot {
	s := w.due[0]
	last := len(w.due) - 1
	if last > 0 {
		w.due[0] = w.due[last]
		w.due[0].idx = 0
	}
	w.due[last] = nil
	w.due = w.due[:last]
	if last > 1 {
		w.dueDown(0)
	}
	s.loc = locNone
	s.idx = -1
	return s
}

func (w *wheel) dueRemove(i int) {
	s := w.due[i]
	last := len(w.due) - 1
	if i != last {
		moved := w.due[last]
		w.due[i] = moved
		moved.idx = i
	}
	w.due[last] = nil
	w.due = w.due[:last]
	if i < last {
		w.dueDown(i)
		w.dueUp(i)
	}
	s.loc = locNone
	s.idx = -1
}

func (w *wheel) dueUp(i int) {
	s := w.due[i]
	for i > 0 {
		p := (i - 1) / 2
		if !dueLess(s, w.due[p]) {
			break
		}
		w.due[i] = w.due[p]
		w.due[i].idx = i
		i = p
	}
	w.due[i] = s
	s.idx = i
}

func (w *wheel) dueDown(i int) {
	n := len(w.due)
	s := w.due[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && dueLess(w.due[r], w.due[c]) {
			c = r
		}
		if !dueLess(w.due[c], s) {
			break
		}
		w.due[i] = w.due[c]
		w.due[i].idx = i
		i = c
	}
	w.due[i] = s
	s.idx = i
}
