package sim

import "container/heap"

// heapTimeline is the original container/heap timeline. The timing wheel
// (wheel.go) replaced it as the default, but it stays compiled in every
// build so differential tests can replay the same operation sequence
// against both structures in one binary; -tags simheap selects it as the
// engine timeline for whole-suite and benchmark comparison.
type heapTimeline struct {
	h eventHeap
}

func (t *heapTimeline) len() int { return len(t.h) }

func (t *heapTimeline) push(s *slot) {
	s.loc = locHeap
	heap.Push(&t.h, s)
}

func (t *heapTimeline) pop() *slot {
	if len(t.h) == 0 {
		return nil
	}
	s := heap.Pop(&t.h).(*slot)
	s.loc = locNone
	return s
}

func (t *heapTimeline) peek() (Time, bool) {
	if len(t.h) == 0 {
		return 0, false
	}
	return t.h[0].at, true
}

func (t *heapTimeline) remove(s *slot) {
	heap.Remove(&t.h, s.idx)
	s.loc = locNone
	s.idx = -1
}

// eventHeap orders events by (time, sequence).
type eventHeap []*slot

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*slot)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
