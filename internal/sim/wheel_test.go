package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// The wheel-specific tests drive the structure through Engine (so they
// also run against the heap under -tags simheap, where they double as
// ordering tests) plus a few direct structural checks.

func TestWheelFarFutureOverflow(t *testing.T) {
	e := NewEngine()
	var got []Time
	rec := func(now Time) { got = append(got, now) }
	// One event beyond the 2^48-tick horizon, one far (cascade), one near.
	e.At(4e15, rec)
	e.At(7e9, rec)
	e.At(3, rec)
	e.At(4e15, rec) // equal-time tie in overflow; FIFO by seq
	e.Run()
	want := []Time{3, 7e9, 4e15, 4e15}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fire order %v, want %v", got, want)
	}
}

func TestWheelCancelEverywhere(t *testing.T) {
	e := NewEngine()
	fired := map[string]bool{}
	mk := func(name string, at Time) Event {
		return e.At(at, func(Time) { fired[name] = true })
	}
	keepNear := mk("keepNear", 10)
	dropNear := mk("dropNear", 10)
	keepFar := mk("keepFar", 5e9)
	dropFar := mk("dropFar", 5e9)
	keepOver := mk("keepOver", 9e15)
	dropOver := mk("dropOver", 9e15)
	e.Cancel(dropNear)
	e.Cancel(dropFar)
	e.Cancel(dropOver)
	e.Run()
	for _, ev := range []Event{keepNear, keepFar, keepOver} {
		if ev.Canceled() {
			t.Fatalf("kept event reports canceled")
		}
	}
	for _, name := range []string{"keepNear", "keepFar", "keepOver"} {
		if !fired[name] {
			t.Fatalf("%s did not fire", name)
		}
	}
	for _, name := range []string{"dropNear", "dropFar", "dropOver"} {
		if fired[name] {
			t.Fatalf("%s fired despite cancel", name)
		}
	}
	if !dropNear.Canceled() || !dropFar.Canceled() || !dropOver.Canceled() {
		t.Fatalf("canceled events do not report Canceled")
	}
}

// TestWheelScheduleBehindCursor pins the subtle case where RunUntil (or a
// peek) advanced the wheel cursor past an idle stretch and a later
// schedule lands before the cursor: it must still fire, and in order.
func TestWheelScheduleBehindCursor(t *testing.T) {
	e := NewEngine()
	var got []Time
	rec := func(now Time) { got = append(got, now) }
	e.At(1000, rec)
	e.RunUntil(500) // no event fires; clock (and cursor) move to 500
	e.At(600, rec)  // behind the pending 1000 event, after some cursor motion
	e.At(501, rec)
	e.Run()
	want := []Time{501, 600, 1000}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fire order %v, want %v", got, want)
	}
}

// TestWheelRandomOrder checks total ordering against a sort of the same
// times, across a spread that exercises every level and the overflow.
func TestWheelRandomOrder(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	var want []float64
	var got []Time
	for i := 0; i < 5000; i++ {
		at := Time(rng.Float64() * 1e15)
		want = append(want, float64(at))
		e.At(at, func(now Time) { got = append(got, now) })
	}
	sort.Float64s(want)
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if float64(got[i]) != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, float64(got[i]), want[i])
		}
	}
}

// Direct structural check: occupancy bits must clear when cancels empty a
// bucket, or advance would spin on phantom work.
func TestWheelOccupancyClearsOnCancel(t *testing.T) {
	var w wheel
	s1 := &slot{at: 100, seq: 0}
	s2 := &slot{at: 100.5, seq: 1}
	w.push(s1)
	w.push(s2) // same tick bucket
	w.remove(s1)
	w.remove(s2)
	if w.size != 0 {
		t.Fatalf("size %d after removing both, want 0", w.size)
	}
	for l, m := range w.occ {
		if m != 0 {
			t.Fatalf("level %d occupancy %b after bucket emptied", l, m)
		}
	}
	s3 := &slot{at: 50, seq: 2}
	w.push(s3)
	if got := w.pop(); got != s3 {
		t.Fatalf("pop after cancels returned %v, want s3", got)
	}
	if _, ok := w.peek(); ok {
		t.Fatalf("peek reports events on empty wheel")
	}
}

// Benchmarks. These are the wheel-vs-heap gate: the same names exist
// under -tags simheap (where Engine runs the retired heap), so
//
//	go test -bench BenchmarkWheel ./internal/sim
//	go test -tags simheap -bench BenchmarkWheel ./internal/sim
//
// compares the two timelines on identical workloads. BASELINE.txt records
// the default (wheel) build.

type benchRearm struct {
	e     *Engine
	state uint64
	horiz Time
}

func (b *benchRearm) HandleEvent(now Time, arg uint64) {
	// xorshift keeps deltas varied without rand allocations.
	b.state ^= b.state << 13
	b.state ^= b.state >> 7
	b.state ^= b.state << 17
	d := 1 + Time(b.state%uint64(b.horiz))
	b.e.AfterHandler(d, b, arg)
}

// benchSteadyState measures the canonical fire→reschedule loop at a given
// concurrent-timer population — the shape of every closed-loop cxlsim
// workload (Fig 8 inflight ops, tickers, retry timers).
func benchSteadyState(b *testing.B, pending int, horiz Time) {
	e := NewEngine()
	h := &benchRearm{e: e, state: 0x9e3779b97f4a7c15, horiz: horiz}
	for i := 0; i < pending; i++ {
		e.AfterHandler(Time(i+1), h, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkWheelSteadyState64(b *testing.B)   { benchSteadyState(b, 64, 10*Microsecond) }
func BenchmarkWheelSteadyState4096(b *testing.B) { benchSteadyState(b, 4096, 10*Millisecond) }

// BenchmarkWheelCancelHeavy measures schedule+cancel churn against a deep
// pending population, where the heap pays O(log n) per operation and the
// wheel pays O(1).
func BenchmarkWheelCancelHeavy(b *testing.B) {
	e := NewEngine()
	nop := func(Time) {}
	for i := 0; i < 1<<15; i++ {
		e.At(Time(1e6+i), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(Time(5e5+i%1000)+Time(i%8)/8, nop)
		e.Cancel(ev)
	}
}
