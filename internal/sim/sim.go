// Package sim provides a small deterministic discrete-event simulation
// kernel used by every other cxlsim subsystem.
//
// All cxlsim experiments run in virtual time: the kernel owns a virtual
// clock (nanosecond resolution, stored as float64 so sub-ns device math
// composes without truncation) and a timeline of pending events — a
// hierarchical timing wheel by default (wheel.go), or the original
// container/heap queue under -tags simheap for differential testing.
// Nothing in the library reads the wall clock; determinism is a hard
// invariant (see TestDeterminism) because the paper's figures must be
// regenerable bit-for-bit.
//
// For simulations too large for one timeline, ShardedEngine (shard.go)
// runs K engines in parallel under conservative-lookahead synchronization
// with deterministic cross-shard delivery.
//
// The kernel is allocation-free in steady state: event records live on an
// engine-owned free list and are recycled as they fire or are canceled.
// Event handles carry generation counters so a retained handle for a
// recycled record can never alias the record's new occupant (see Event).
// For hot loops that would otherwise allocate a closure per event, the
// Handler interface carries a uint64 argument instead of captured state.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. float64 keeps device-model arithmetic exact enough
// (53-bit mantissa ≈ 104 days at 1 ns resolution) while allowing
// fractional-nanosecond latency composition.
type Time float64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1e3 * Nanosecond
	Millisecond      = 1e6 * Nanosecond
	Second           = 1e9 * Nanosecond
)

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%.1fns", float64(t))
	}
}

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Handler receives an event callback together with a caller-chosen uint64
// argument. Scheduling through a Handler instead of a closure keeps the
// per-event cost allocation-free: the argument (typically an index into
// caller-owned state) rides in the pooled event record, so nothing needs
// to be captured.
type Handler interface {
	HandleEvent(now Time, arg uint64)
}

// slot is one pooled event record. Records are owned by the engine and
// recycled through a free list; user code only ever sees Event handles.
type slot struct {
	at      Time
	seq     uint64
	fn      func(now Time)
	handler Handler
	arg     uint64
	// loc names the timeline container currently holding the record
	// (locNone when settled — see wheel.go for the values); idx is its
	// position within that container. Maintained by the timeline so a
	// cancel can splice the record out without a search.
	loc int32
	idx int
	// gen increments once when the record settles (fires or is canceled)
	// and once more when it is reused for a new event, so a handle can
	// tell "still mine and pending" (gen equal), "mine and settled" (gen
	// one ahead, canceled bit valid), and "recycled" (gen further ahead)
	// apart. See Event.
	gen      uint64
	canceled bool
	// owner is the engine whose pool the record belongs to. Cancel uses it
	// to reject a live handle handed to a foreign engine (e.g. across
	// ShardedEngine shards), where a silent deschedule would corrupt the
	// other shard's timeline.
	owner *Engine
}

// Event is a handle to a scheduled callback. The zero Event is valid and
// refers to no event (Cancel is a no-op, Canceled reports false).
//
// Handles are generation-checked: the underlying pooled record may be
// recycled for a new event after this one fires or is canceled, and a
// retained handle then goes stale. Operations on a stale handle are safe
// no-ops — Cancel can never deschedule the record's new occupant, and
// Canceled never reports the new occupant's state. Canceled stays
// accurate from the moment the event settles until its record is reused
// (the next At/After/AtHandler at the earliest); after that a stale
// handle conservatively reports false.
type Event struct {
	s   *slot
	gen uint64
}

// Canceled reports whether the event was descheduled before firing. For
// the zero handle, and for a stale handle whose record has been recycled,
// it reports false.
func (ev Event) Canceled() bool {
	if ev.s == nil {
		return false
	}
	switch ev.s.gen {
	case ev.gen:
		return false // still pending
	case ev.gen + 1:
		return ev.s.canceled // settled, record not yet reused
	default:
		return false // recycled: outcome no longer tracked
	}
}

// Pending reports whether the event is still scheduled to fire.
func (ev Event) Pending() bool {
	return ev.s != nil && ev.s.gen == ev.gen
}

// BatchItem is one entry of a batch schedule. Exactly one of Fn or
// Handler must be set; Arg is passed to Handler.
type BatchItem struct {
	At      Time
	Fn      func(now Time)
	Handler Handler
	Arg     uint64
}

// Observer receives kernel lifecycle callbacks. Implementations must be
// passive: they may record but must not schedule, cancel, or otherwise
// mutate the engine, or determinism is forfeit. The obs package provides
// the standard implementation (metrics + virtual-time tracing).
type Observer interface {
	// EventScheduled fires after an event is enqueued for time at;
	// pending is the queue depth including the new event.
	EventScheduled(at Time, pending int)
	// EventFired fires as the clock advances to now, before the event's
	// callback runs; pending excludes the firing event.
	EventFired(now Time, pending int)
	// EventCanceled fires when a pending event is descheduled.
	EventCanceled(now Time, pending int)
}

// slabSize is how many event records one free-list refill allocates.
const slabSize = 64

// Engine is a discrete-event simulator instance. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now Time
	// tl is the pending-event timeline: a timing wheel by default, the
	// retired binary heap under -tags simheap (see timeline_wheel.go /
	// timeline_heap.go). Both zero values are ready to use.
	tl     engineTimeline
	nextSq uint64
	fired  uint64
	obs    Observer
	free   []*slot // recycled event records, LIFO
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// SetObserver installs (or, with nil, removes) the engine's observer.
// One observer per engine; installing mid-run only affects subsequent
// events.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return e.tl.len() }

// NextEventTime reports the fire time of the earliest pending event, or
// false if the timeline is empty. ShardedEngine uses it to compute epoch
// boundaries; it never advances the clock.
func (e *Engine) NextEventTime() (Time, bool) {
	return e.tl.peek()
}

// acquire pops a recycled record (or allocates a slab) and marks it live.
func (e *Engine) acquire() *slot {
	if len(e.free) == 0 {
		slab := make([]slot, slabSize)
		for i := range slab {
			slab[i].owner = e
			slab[i].loc = locNone
			slab[i].idx = -1
			e.free = append(e.free, &slab[i])
		}
	}
	s := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	s.gen++ // reuse: stale handles from the previous occupant detach
	s.canceled = false
	return s
}

// release settles a record (fired or canceled) and returns it to the
// free list. Callback references are dropped so captured state is not
// pinned past the event's lifetime.
func (e *Engine) release(s *slot, canceled bool) {
	s.gen++
	s.canceled = canceled
	s.fn = nil
	s.handler = nil
	s.arg = 0
	e.free = append(e.free, s)
}

// checkTime validates a fire time against the clock.
func (e *Engine) checkTime(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(float64(t)) || math.IsInf(float64(t), 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", float64(t)))
	}
}

// schedule enqueues an acquired record at time t.
func (e *Engine) schedule(s *slot, t Time) Event {
	s.at = t
	s.seq = e.nextSq
	e.nextSq++
	e.tl.push(s)
	if e.obs != nil {
		e.obs.EventScheduled(t, e.tl.len())
	}
	return Event{s: s, gen: s.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func(now Time)) Event {
	e.checkTime(t)
	s := e.acquire()
	s.fn = fn
	return e.schedule(s, t)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func(now Time)) Event {
	return e.At(e.now+d, fn)
}

// AtHandler schedules h.HandleEvent(now, arg) at absolute virtual time t.
// Unlike At, no closure is needed, so a hot loop that threads its state
// through arg schedules events without allocating.
func (e *Engine) AtHandler(t Time, h Handler, arg uint64) Event {
	e.checkTime(t)
	s := e.acquire()
	s.handler = h
	s.arg = arg
	return e.schedule(s, t)
}

// AfterHandler schedules h.HandleEvent(now, arg) d nanoseconds from now.
func (e *Engine) AfterHandler(d Time, h Handler, arg uint64) Event {
	return e.AtHandler(e.now+d, h, arg)
}

// AtBatch schedules every item in one call, preserving the FIFO
// tie-break: items at equal times fire in slice order, and the whole
// batch fires after any previously-scheduled events at the same times.
// The items slice is not retained, so callers may reuse a scratch slice
// across batches.
func (e *Engine) AtBatch(items []BatchItem) {
	for i := range items {
		it := &items[i]
		e.checkTime(it.At)
		s := e.acquire()
		s.fn = it.Fn
		s.handler = it.Handler
		s.arg = it.Arg
		e.schedule(s, it.At)
	}
}

// Cancel removes a pending event from the queue. Canceling the zero
// handle, an event that already fired or was already canceled, or a
// stale handle whose record was recycled is a no-op. Canceling a live
// event through an engine that does not own it panics: silently splicing
// a record out of a foreign timeline (e.g. another shard's) would corrupt
// that engine, and doing nothing would silently leak the event.
func (e *Engine) Cancel(ev Event) {
	s := ev.s
	if s == nil || s.gen != ev.gen || s.loc == locNone {
		return
	}
	if s.owner != e {
		panic("sim: Cancel of a live event through an engine that does not own it")
	}
	e.tl.remove(s)
	e.release(s, true)
	if e.obs != nil {
		e.obs.EventCanceled(e.now, e.tl.len())
	}
}

// Step fires the single earliest pending event, advancing the clock to its
// fire time. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	s := e.tl.pop()
	if s == nil {
		return false
	}
	e.now = s.at
	e.fired++
	// Copy the callback out and recycle the record before running it, so
	// an event that schedules from its own callback (the common
	// fire→reschedule loop) reuses its just-freed, cache-hot record.
	fn, h, arg := s.fn, s.handler, s.arg
	e.release(s, false)
	if e.obs != nil {
		e.obs.EventFired(e.now, e.tl.len())
	}
	if h != nil {
		h.HandleEvent(e.now, arg)
	} else {
		fn(e.now)
	}
	return true
}

// Run fires events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (even if no event fired exactly there). Events scheduled beyond
// the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	for {
		t, ok := e.tl.peek()
		if !ok || t > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Ticker invokes fn every period until Stop is called or the engine's
// queue drains past it. It is the backbone of epoch-driven co-simulation
// (tiering daemons, counters, app batch loops). A ticker schedules
// through the Handler path, so steady-state ticking does not allocate.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func(now Time)
	ev      Event
	stopped bool
}

// Every creates and starts a ticker with the given period. The first tick
// fires one full period from now. Period must be positive.
func (e *Engine) Every(period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

// HandleEvent implements Handler: one tick.
func (t *Ticker) HandleEvent(now Time, _ uint64) {
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.ev = t.eng.AfterHandler(t.period, t, 0)
}

// Stop prevents future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.ev)
}
