// Package sim provides a small deterministic discrete-event simulation
// kernel used by every other cxlsim subsystem.
//
// All cxlsim experiments run in virtual time: the kernel owns a virtual
// clock (nanosecond resolution, stored as float64 so sub-ns device math
// composes without truncation) and a priority queue of pending events.
// Nothing in the library reads the wall clock; determinism is a hard
// invariant (see TestDeterminism) because the paper's figures must be
// regenerable bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. float64 keeps device-model arithmetic exact enough
// (53-bit mantissa ≈ 104 days at 1 ns resolution) while allowing
// fractional-nanosecond latency composition.
type Time float64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1e3 * Nanosecond
	Millisecond      = 1e6 * Nanosecond
	Second           = 1e9 * Nanosecond
)

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%.1fns", float64(t))
	}
}

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. Events with equal fire times run in the
// order they were scheduled (FIFO tie-break by sequence number), which is
// what makes the kernel deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func(now Time)
	idx  int // heap index, -1 when popped or canceled
	done bool
}

// Canceled reports whether the event was descheduled before firing.
func (e *Event) Canceled() bool { return e.idx == -1 && !e.done }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Observer receives kernel lifecycle callbacks. Implementations must be
// passive: they may record but must not schedule, cancel, or otherwise
// mutate the engine, or determinism is forfeit. The obs package provides
// the standard implementation (metrics + virtual-time tracing).
type Observer interface {
	// EventScheduled fires after an event is enqueued for time at;
	// pending is the queue depth including the new event.
	EventScheduled(at Time, pending int)
	// EventFired fires as the clock advances to now, before the event's
	// callback runs; pending excludes the firing event.
	EventFired(now Time, pending int)
	// EventCanceled fires when a pending event is descheduled.
	EventCanceled(now Time, pending int)
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; call NewEngine.
type Engine struct {
	now    Time
	queue  eventHeap
	nextSq uint64
	fired  uint64
	obs    Observer
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// SetObserver installs (or, with nil, removes) the engine's observer.
// One observer per engine; installing mid-run only affects subsequent
// events.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func(now Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(float64(t)) || math.IsInf(float64(t), 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", float64(t)))
	}
	ev := &Event{at: t, seq: e.nextSq, fn: fn}
	e.nextSq++
	heap.Push(&e.queue, ev)
	if e.obs != nil {
		e.obs.EventScheduled(t, len(e.queue))
	}
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func(now Time)) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event from the queue. Canceling an event that
// already fired (or was already canceled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	if e.obs != nil {
		e.obs.EventCanceled(e.now, len(e.queue))
	}
}

// Step fires the single earliest pending event, advancing the clock to its
// fire time. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	ev.done = true
	e.fired++
	if e.obs != nil {
		e.obs.EventFired(e.now, len(e.queue))
	}
	ev.fn(e.now)
	return true
}

// Run fires events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (even if no event fired exactly there). Events scheduled beyond
// the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Ticker invokes fn every period until Stop is called or the engine's
// queue drains past it. It is the backbone of epoch-driven co-simulation
// (tiering daemons, counters, app batch loops).
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func(now Time)
	ev      *Event
	stopped bool
}

// Every creates and starts a ticker with the given period. The first tick
// fires one full period from now. Period must be positive.
func (e *Engine) Every(period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.period, func(now Time) {
		if t.stopped {
			return
		}
		t.fn(now)
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.ev)
}
