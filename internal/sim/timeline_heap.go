//go:build simheap

package sim

// engineTimeline under -tags simheap: the retired container/heap
// timeline, kept selectable for differential testing against the default
// timing wheel (see timeline_wheel.go).
type engineTimeline = heapTimeline
