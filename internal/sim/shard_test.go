package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// shardActor is one logical partition in the determinism tests: a
// self-rescheduling local chain that occasionally sends to other
// partitions, logging everything it does. Per-actor RNG state makes the
// log sensitive to any ordering perturbation.
type shardActor struct {
	se   *ShardedEngine
	all  []*shardActor
	id   int
	rng  *rand.Rand
	log  strings.Builder
	ops  int
	look Time
}

func (a *shardActor) step(now Time) {
	fmt.Fprintf(&a.log, "L %d %.4f\n", a.ops, float64(now))
	a.ops--
	if a.ops <= 0 {
		return
	}
	d := Time(a.rng.Intn(3000)) + Time(a.rng.Float64())
	switch a.rng.Intn(5) {
	case 0: // closure send
		dst := a.rng.Intn(len(a.all))
		a.se.Send(a.id, dst, now+a.look+d, a.all[dst].remote)
	case 1: // handler send, arg = source id
		dst := a.rng.Intn(len(a.all))
		a.se.SendHandler(a.id, dst, now+a.look+d, a.all[dst], uint64(a.id))
	}
	a.se.Partition(a.id).At(now+1+d, a.step)
}

func (a *shardActor) remote(now Time) {
	fmt.Fprintf(&a.log, "R %.4f\n", float64(now))
}

// HandleEvent receives SendHandler deliveries.
func (a *shardActor) HandleEvent(now Time, arg uint64) {
	fmt.Fprintf(&a.log, "H %d %.4f\n", arg, float64(now))
}

// runShardWorkload executes the standard workload and returns a full
// fingerprint: every actor's log plus kernel counters.
func runShardWorkload(partitions, shards int, ops int) string {
	const look = 500 * Nanosecond
	se := NewSharded(partitions, shards, look)
	actors := make([]*shardActor, partitions)
	for i := range actors {
		actors[i] = &shardActor{
			se: se, id: i, ops: ops, look: look,
			rng: rand.New(rand.NewSource(1000 + int64(i))),
		}
	}
	for _, a := range actors {
		a.all = actors
		se.Partition(a.id).At(Time(a.id)/8, a.step)
	}
	end := se.Run()
	var b strings.Builder
	fmt.Fprintf(&b, "end=%.4f epochs=%d fired=%d\n", float64(end), se.Epochs(), se.Fired())
	for _, a := range actors {
		fmt.Fprintf(&b, "-- actor %d --\n%s", a.id, a.log.String())
	}
	return b.String()
}

// TestShardedDeterminism is the core invariant: byte-identical behavior
// at every shard count, including counts that do not divide the partition
// count and counts above it (which clamp). make race-shard runs this
// under the race detector.
func TestShardedDeterminism(t *testing.T) {
	want := runShardWorkload(6, 1, 40)
	if !strings.Contains(want, "R ") && !strings.Contains(want, "H ") {
		t.Fatalf("workload produced no cross-partition traffic; test is vacuous")
	}
	for _, shards := range []int{2, 3, 4, 6, 8} {
		if got := runShardWorkload(6, shards, 40); got != want {
			t.Fatalf("shards=%d diverged from shards=1:\n%s", shards, firstDiff(want, got))
		}
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}

func TestShardedLookaheadViolationPanics(t *testing.T) {
	se := NewSharded(2, 2, 1000)
	defer func() {
		if recover() == nil {
			t.Fatalf("Send below the lookahead bound did not panic")
		}
	}()
	se.Send(0, 1, 999, func(Time) {})
}

func TestShardedEmptyEpochSkip(t *testing.T) {
	se := NewSharded(2, 2, 1000)
	var fired [2]int // one cell per partition: no cross-shard writes
	se.Partition(0).At(5e9, func(Time) { fired[0]++ })
	se.Partition(1).At(9e9, func(Time) { fired[1]++ })
	se.Run()
	if fired[0]+fired[1] != 2 {
		t.Fatalf("fired %d events, want 2", fired[0]+fired[1])
	}
	// Without skip-ahead this run would take ~9e6 thousand-tick epochs.
	if se.Epochs() > 8 {
		t.Fatalf("%d epochs for two sparse events; empty-epoch skip is broken", se.Epochs())
	}
}

func TestShardedRunWhileStops(t *testing.T) {
	se := NewSharded(2, 2, 1000)
	count := 0
	var chain func(now Time)
	chain = func(now Time) {
		count++
		se.Partition(0).At(now+100, chain)
	}
	se.Partition(0).At(0, chain)
	se.RunWhile(func() bool { return count < 50 })
	if count < 50 {
		t.Fatalf("stopped after %d events, want ≥ 50", count)
	}
	if se.Now() <= 0 {
		t.Fatalf("boundary did not advance")
	}
	// Events beyond the stop boundary stay queued.
	if se.Partition(0).Pending() == 0 {
		t.Fatalf("chain event was dropped at stop")
	}
}

func TestShardedClampAndValidation(t *testing.T) {
	if got := NewSharded(3, 8, 100).Shards(); got != 3 {
		t.Fatalf("shards clamped to %d, want 3 (partition count)", got)
	}
	for _, bad := range []func(){
		func() { NewSharded(0, 1, 100) },
		func() { NewSharded(1, 0, 100) },
		func() { NewSharded(1, 1, 0) },
		func() { NewSharded(1, 1, -5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("invalid NewSharded arguments did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestShardedSetupSends covers coordinator-time sends before the first
// epoch: they must respect lookahead from t=0 and deliver exactly once.
func TestShardedSetupSends(t *testing.T) {
	se := NewSharded(3, 2, 1000)
	var got [3]float64 // one cell per destination partition: no cross-shard writes
	for i := 0; i < 3; i++ {
		i := i
		se.Send(0, i, Time(1000+i), func(now Time) { got[i] = float64(now) })
	}
	se.Run()
	if fmt.Sprint(got) != "[1000 1001 1002]" {
		t.Fatalf("setup sends delivered at %v, want [1000 1001 1002]", got)
	}
}
