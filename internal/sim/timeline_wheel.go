//go:build !simheap

package sim

// engineTimeline selects the data structure behind the engine's
// pending-event queue. The default build uses the hierarchical timing
// wheel; -tags simheap swaps in the retired container/heap timeline so
// differential tests and benchmarks can compare the two (see
// docs/PERFORMANCE.md, "Timeline and sharding").
type engineTimeline = wheel
