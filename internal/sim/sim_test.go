package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine pending = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated at %d: got %v", i, order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func(now Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func(Time) {})
}

func TestNonFiniteTimePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at NaN did not panic")
		}
	}()
	e.At(Time(math.NaN()), func(Time) {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func(Time) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false for canceled event")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func(Time) {})
	e.Run()
	e.Cancel(ev) // must not panic or corrupt the heap
	if ev.Canceled() {
		t.Fatal("fired event reported as canceled")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v after RunUntil(25), want 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.Every(10, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			// Stop from within the callback.
			panicIfNil(t, now)
		}
	})
	e.At(45, func(Time) { tk.Stop() })
	e.Run()
	if len(ticks) != 4 {
		t.Fatalf("ticker fired %d times, want 4 (at 10,20,30,40): %v", len(ticks), ticks)
	}
	for i, at := range ticks {
		if want := Time(10 * (i + 1)); at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop() // double-stop is safe
}

func panicIfNil(t *testing.T, now Time) {
	t.Helper()
	if now == 0 {
		t.Fatal("tick at time zero")
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(7, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	e.Every(0, func(Time) {})
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", e.Fired())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5, "5.0ns"},
		{1500, "1.500µs"},
		{2_500_000, "2.500ms"},
		{3_000_000_000, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestSeconds(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2 {
		t.Fatalf("Seconds() = %v, want 2", s)
	}
}

// TestDeterminism is the kernel's core invariant: two engines fed the same
// schedule produce identical firing orders.
func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		// A pseudo-random-looking but fixed schedule with many ties.
		times := []Time{5, 3, 5, 9, 1, 5, 3, 7, 9, 1, 2, 2}
		for i, at := range times {
			i := i
			e.At(at, func(Time) { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic firing order: %v vs %v", a, b)
		}
	}
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing time order.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			e.At(Time(off), func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), func(Time) {})
	}
}

func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), func(Time) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

type countingObserver struct {
	scheduled, fired, canceled int
	lastPending                int
}

func (o *countingObserver) EventScheduled(at Time, pending int) {
	o.scheduled++
	o.lastPending = pending
}
func (o *countingObserver) EventFired(now Time, pending int) {
	o.fired++
	o.lastPending = pending
}
func (o *countingObserver) EventCanceled(now Time, pending int) {
	o.canceled++
	o.lastPending = pending
}

func TestObserverCallbacks(t *testing.T) {
	e := NewEngine()
	var o countingObserver
	e.SetObserver(&o)
	e.After(10, func(Time) {})
	ev := e.After(20, func(Time) {})
	e.Cancel(ev)
	e.Run()
	if o.scheduled != 2 || o.fired != 1 || o.canceled != 1 {
		t.Fatalf("observer = %+v", o)
	}
	if o.lastPending != 0 {
		t.Fatalf("final pending = %d, want 0", o.lastPending)
	}
	// Observed counts must agree with the engine's own accounting.
	if e.Fired() != 1 {
		t.Fatalf("engine fired = %d", e.Fired())
	}
}

func TestObserverDoesNotPerturbDeterminism(t *testing.T) {
	run := func(obs Observer) []Time {
		e := NewEngine()
		e.SetObserver(obs)
		var order []Time
		for i := 0; i < 50; i++ {
			d := Time((i * 37) % 17)
			e.After(d, func(now Time) { order = append(order, now) })
		}
		e.Run()
		return order
	}
	plain := run(nil)
	observed := run(&countingObserver{})
	if len(plain) != len(observed) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(observed))
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("order diverges at %d: %v vs %v", i, plain[i], observed[i])
		}
	}
}
