package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ShardedEngine runs K engines ("shards") over N logical partitions with
// conservative-lookahead synchronization, the classic parallel
// discrete-event scheme: virtual time is cut into epochs no wider than
// the lookahead L (the minimum cross-partition latency, e.g. a fabric
// hop), every shard runs its own timeline independently up to the epoch
// boundary, and all cross-partition interaction goes through Send, which
// may only target times ≥ sender now + L. An event sent during an epoch
// therefore always lands in a strictly later epoch, so shards never see
// each other mid-epoch and need no rollback.
//
// Determinism is byte-exact and shard-count-invariant: partitions are
// logical (a kvstore node, an llmserve instance) and their timelines
// depend only on their own events plus delivered messages; pending
// messages are delivered at epoch boundaries in (time, source partition,
// per-source sequence) order, a key that does not mention the physical
// shard. Running with -shards 1 or -shards 8 yields identical tables —
// the same bar the -parallel experiment runner meets.
//
// Concurrency contract: between Run*/epoch boundaries the coordinator
// goroutine owns everything. During an epoch each shard goroutine may
// touch only its own partitions' state and may call Send only with src
// partitions it owns. Observers are per-engine and stay single-threaded.
type ShardedEngine struct {
	lookahead Time
	engines   []*Engine
	partShard []int    // logical partition -> shard index
	sendSeq   []uint64 // per-partition send sequence, owned by the sender's shard
	outbox    [][]message
	pending   []message
	boundary  Time // last completed epoch boundary
	epochs    uint64
}

// message is one cross-partition event in flight between epochs.
type message struct {
	at      Time
	src     int // sending logical partition
	seq     uint64
	dst     int
	fn      func(now Time)
	handler Handler
	arg     uint64
}

// NewSharded creates a sharded engine over partitions logical partitions
// executed by shards parallel shards (capped at the partition count).
// Partition p runs on shard p mod K, so natural enumerations spread
// round-robin. The lookahead must be positive, finite, and no larger than
// the true minimum cross-partition latency, or determinism is forfeit.
func NewSharded(partitions, shards int, lookahead Time) *ShardedEngine {
	if partitions < 1 {
		panic(fmt.Sprintf("sim: NewSharded needs at least one partition (got %d)", partitions))
	}
	if shards < 1 {
		panic(fmt.Sprintf("sim: NewSharded needs at least one shard (got %d)", shards))
	}
	if !(lookahead > 0) || math.IsInf(float64(lookahead), 0) {
		panic(fmt.Sprintf("sim: NewSharded lookahead must be positive and finite (got %v)", float64(lookahead)))
	}
	if shards > partitions {
		shards = partitions
	}
	se := &ShardedEngine{
		lookahead: lookahead,
		engines:   make([]*Engine, shards),
		partShard: make([]int, partitions),
		sendSeq:   make([]uint64, partitions),
		outbox:    make([][]message, shards),
	}
	for i := range se.engines {
		se.engines[i] = NewEngine()
	}
	for p := range se.partShard {
		se.partShard[p] = p % shards
	}
	return se
}

// Partition returns the engine that owns logical partition p. Local
// (same-partition) events are scheduled directly on it; only
// cross-partition interaction needs Send.
func (se *ShardedEngine) Partition(p int) *Engine { return se.engines[se.partShard[p]] }

// ShardOf reports which shard executes partition p.
func (se *ShardedEngine) ShardOf(p int) int { return se.partShard[p] }

// Shards reports the number of parallel shards (after capping).
func (se *ShardedEngine) Shards() int { return len(se.engines) }

// Partitions reports the number of logical partitions.
func (se *ShardedEngine) Partitions() int { return len(se.partShard) }

// Lookahead reports the conservative lookahead bound.
func (se *ShardedEngine) Lookahead() Time { return se.lookahead }

// Now reports the last completed epoch boundary; every shard's clock has
// reached it.
func (se *ShardedEngine) Now() Time { return se.boundary }

// Epochs reports how many synchronization epochs have run.
func (se *ShardedEngine) Epochs() uint64 { return se.epochs }

// Fired sums the events executed across all shards.
func (se *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, e := range se.engines {
		n += e.Fired()
	}
	return n
}

// Send schedules fn on partition dst at absolute time at, from partition
// src. It must be called either from the coordinator between runs or from
// a callback running on src's shard, and at must be at least the sender's
// current time plus the lookahead — that slack is what lets shards run
// epochs without observing each other.
func (se *ShardedEngine) Send(src, dst int, at Time, fn func(now Time)) {
	se.send(message{at: at, src: src, dst: dst, fn: fn})
}

// SendHandler is Send through the allocation-free Handler path.
func (se *ShardedEngine) SendHandler(src, dst int, at Time, h Handler, arg uint64) {
	se.send(message{at: at, src: src, dst: dst, handler: h, arg: arg})
}

func (se *ShardedEngine) send(m message) {
	shard := se.partShard[m.src] // panics on out-of-range src, as intended
	if m.dst < 0 || m.dst >= len(se.partShard) {
		panic(fmt.Sprintf("sim: Send to unknown partition %d", m.dst))
	}
	if min := se.engines[shard].Now() + se.lookahead; m.at < min {
		panic(fmt.Sprintf("sim: Send at %v violates lookahead (sender now %v + lookahead %v)",
			m.at, se.engines[shard].Now(), se.lookahead))
	}
	m.seq = se.sendSeq[m.src]
	se.sendSeq[m.src]++
	se.outbox[shard] = append(se.outbox[shard], m)
}

// Run executes epochs until every shard's timeline drains and no message
// is in flight, then returns the final boundary.
func (se *ShardedEngine) Run() Time { return se.RunWhile(nil) }

// RunWhile executes epochs while active (if non-nil) keeps returning true,
// stopping early at the first boundary where it reports false. active is
// called with all shards quiescent, so it may read any partition's state.
func (se *ShardedEngine) RunWhile(active func() bool) Time {
	for {
		if active != nil && !active() {
			return se.boundary
		}
		se.collect() // fold outboxes (epoch sends, or coordinator setup sends) into pending
		tmin, ok := se.nextTime()
		if !ok {
			return se.boundary
		}
		b := se.nextBoundary(tmin)
		se.deliver(b)
		se.runEpoch(b)
		se.boundary = b
		se.epochs++
	}
}

// nextTime reports the earliest pending work — event or in-flight
// message — across every shard. It is shard-count-invariant, which makes
// the epoch boundary sequence (and thus all delivery grouping) invariant
// too.
func (se *ShardedEngine) nextTime() (Time, bool) {
	var tmin Time
	ok := false
	for _, e := range se.engines {
		if t, has := e.NextEventTime(); has && (!ok || t < tmin) {
			tmin, ok = t, true
		}
	}
	for i := range se.pending {
		if t := se.pending[i].at; !ok || t < tmin {
			tmin, ok = t, true
		}
	}
	return tmin, ok
}

// nextBoundary picks the epoch end: the next lookahead multiple, jumping
// ahead over empty regions straight to the multiple covering the first
// pending work item. Aligning to multiples of L (rather than tmin+L)
// keeps the boundary sequence independent of shard count.
func (se *ShardedEngine) nextBoundary(tmin Time) Time {
	b := se.boundary + se.lookahead
	if tmin > b {
		b = Time(math.Ceil(float64(tmin)/float64(se.lookahead))) * se.lookahead
		if b < tmin { // float rounding guard
			b = tmin
		}
	}
	return b
}

// deliver schedules every in-flight message with arrival ≤ b onto its
// destination shard, in (time, source partition, sequence) order. The
// key never mentions the physical shard, and schedule order breaks
// equal-time ties via the engine's FIFO sequence, so delivery order — and
// therefore every downstream table — is identical at any shard count.
func (se *ShardedEngine) deliver(b Time) {
	if len(se.pending) == 0 {
		return
	}
	sort.Slice(se.pending, func(i, j int) bool {
		a, c := &se.pending[i], &se.pending[j]
		if a.at != c.at {
			return a.at < c.at
		}
		if a.src != c.src {
			return a.src < c.src
		}
		return a.seq < c.seq
	})
	n := 0
	for i := range se.pending {
		m := &se.pending[i]
		if m.at > b {
			break
		}
		eng := se.engines[se.partShard[m.dst]]
		if m.handler != nil {
			eng.AtHandler(m.at, m.handler, m.arg)
		} else {
			eng.At(m.at, m.fn)
		}
		n++
	}
	se.pending = se.pending[:copy(se.pending, se.pending[n:])]
}

// runEpoch advances every shard to the boundary, in parallel when there
// is more than one shard. Shard state is disjoint during the epoch, so
// the only synchronization needed is the join.
func (se *ShardedEngine) runEpoch(b Time) {
	if len(se.engines) == 1 {
		se.engines[0].RunUntil(b)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(se.engines))
	for _, e := range se.engines {
		go func(e *Engine) {
			defer wg.Done()
			e.RunUntil(b)
		}(e)
	}
	wg.Wait()
}

// collect folds the per-shard outboxes into the pending queue. Order here
// is irrelevant — deliver sorts by the logical key.
func (se *ShardedEngine) collect() {
	for i, box := range se.outbox {
		se.pending = append(se.pending, box...)
		se.outbox[i] = box[:0]
	}
}
