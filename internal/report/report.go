// Package report turns windowed metric snapshots and SLO evaluations
// from one or more runs into a self-contained HTML scenario report:
// inline SVG time series of per-window tail latencies and rates, an SLO
// attainment table per run and objective, and a burn-rate alert
// timeline. Output is byte-identical for identical inputs — no
// wall-clock timestamps, no map-order dependence, fixed float
// formatting — so reports diff cleanly and gate in CI.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cxlsim/internal/obs"
	"cxlsim/internal/slo"
)

// Run is one simulation run's windowed observability dump: the unit
// cxlycsb/cxlbench write and cxlreport consumes.
type Run struct {
	Label    string  `json:"label"`              // e.g. "healthy", "degraded"
	Config   string  `json:"config,omitempty"`   // memory configuration, e.g. "1:1"
	Workload string  `json:"workload,omitempty"` // e.g. "YCSB-A"
	Schedule string  `json:"schedule,omitempty"` // fault schedule file, if any
	WindowNs float64 `json:"window_ns"`

	Windows []obs.WindowSnapshot `json:"windows"`
	SLO     *slo.Evaluation      `json:"slo,omitempty"`
}

// Validate checks the dump's basic shape.
func (r *Run) Validate() error {
	if r.Label == "" {
		return fmt.Errorf("report: run has no label")
	}
	if r.WindowNs <= 0 {
		return fmt.Errorf("report: run %s: window_ns must be positive", r.Label)
	}
	return nil
}

// Load reads one run dump from a JSON file.
func Load(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: parsing %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &r, nil
}

// WriteJSON serializes a run dump (the inverse of Load).
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}
