package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"cxlsim/internal/slo"
)

// Chart geometry (CSS pixels inside the inline SVGs).
const (
	chartW      = 760.0
	chartH      = 240.0
	chartLeft   = 64.0
	chartRight  = 16.0
	chartTop    = 16.0
	chartBottom = 34.0
)

// Categorical series slots (validated order — see docs/OBSERVABILITY.md);
// CSS custom properties carry the light/dark steps, so the SVG strokes
// reference the slot, not a hex.
const maxSeriesSlots = 8

// point is one (virtual time, value) sample.
type point struct{ x, y float64 }

// series is one polyline in a chart. Slot picks the categorical color;
// dashed marks a secondary variant of the same entity (e.g. p50 next to
// p99), so hue still identifies the run.
type series struct {
	label  string
	slot   int
	dashed bool
	points []point
}

// WriteHTML renders the scenario report for the given runs. Output is
// deterministic: iteration orders are fixed and every number is
// formatted with the same fixed rules.
func WriteHTML(w io.Writer, runs []*Run) error {
	if len(runs) == 0 {
		return fmt.Errorf("report: no runs to render")
	}
	for _, r := range runs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	var b strings.Builder
	writeHead(&b, runs)
	writeRunsTable(&b, runs)
	writeSLOSection(&b, runs)
	writeAlertTimeline(&b, runs)
	writeLatencyCharts(&b, runs)
	writeBurnCharts(&b, runs)
	writeRateCharts(&b, runs)
	writeHitRatioChart(&b, runs)
	writeGaugeCharts(&b, runs)
	b.WriteString("</main></body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHead(b *strings.Builder, runs []*Run) {
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width,initial-scale=1">
<title>cxlsim scenario report</title>
<style>
:root{
 color-scheme:light;
 --page:#f9f9f7; --surface:#fcfcfb;
 --ink:#0b0b0b; --ink2:#52514e; --muted:#898781;
 --grid:#e1e0d9; --axis:#c3c2b7; --border:rgba(11,11,11,.10);
 --s0:#2a78d6; --s1:#eb6834; --s2:#1baf7a; --s3:#eda100;
 --s4:#e87ba4; --s5:#008300; --s6:#4a3aa7; --s7:#e34948;
 --critical:#d03b3b; --good:#0ca30c; --warning:#fab219;
}
@media (prefers-color-scheme: dark){
 :root:where(:not([data-theme="light"])){
  color-scheme:dark;
  --page:#0d0d0d; --surface:#1a1a19;
  --ink:#ffffff; --ink2:#c3c2b7; --muted:#898781;
  --grid:#2c2c2a; --axis:#383835; --border:rgba(255,255,255,.10);
  --s0:#3987e5; --s1:#d95926; --s2:#199e70; --s3:#c98500;
  --s4:#d55181; --s5:#008300; --s6:#9085e9; --s7:#e66767;
 }
}
body{margin:0;background:var(--page);color:var(--ink);
 font:14px/1.45 system-ui,-apple-system,"Segoe UI",sans-serif}
main{max-width:860px;margin:0 auto;padding:24px 16px 64px}
h1{font-size:22px;margin:8px 0 2px}
h2{font-size:16px;margin:32px 0 8px}
.sub{color:var(--ink2);margin:0 0 16px}
.card{background:var(--surface);border:1px solid var(--border);
 border-radius:8px;padding:12px 14px;margin:12px 0}
table{border-collapse:collapse;width:100%;font-variant-numeric:tabular-nums}
th{color:var(--ink2);font-weight:600;text-align:left}
th,td{padding:4px 10px 4px 0;border-bottom:1px solid var(--grid);font-size:13px}
tr:last-child td{border-bottom:none}
td.num,th.num{text-align:right}
.legend{display:flex;flex-wrap:wrap;gap:4px 16px;margin:4px 0 6px;
 color:var(--ink2);font-size:12px}
.legend .chip{display:inline-block;width:10px;height:10px;border-radius:3px;
 margin-right:5px;vertical-align:-1px}
.legend .chip.dash{height:0;border-top:3px dashed;background:none;
 width:14px;vertical-align:2px;border-radius:0}
svg{display:block;max-width:100%}
svg text{font:11px system-ui,-apple-system,"Segoe UI",sans-serif;
 fill:var(--muted)}
.ok{color:var(--good);font-weight:600}
.viol{color:var(--critical);font-weight:600}
details{margin-top:6px}summary{color:var(--ink2);font-size:12px;cursor:pointer}
</style></head><body><main>
<h1>cxlsim scenario report</h1>
`)
	fmt.Fprintf(b, `<p class="sub">%d run(s), window %s of virtual time.</p>`+"\n",
		len(runs), fmtDur(maxWindowNs(runs)))
}

func maxWindowNs(runs []*Run) float64 {
	m := 0.0
	for _, r := range runs {
		if r.WindowNs > m {
			m = r.WindowNs
		}
	}
	return m
}

func writeRunsTable(b *strings.Builder, runs []*Run) {
	b.WriteString(`<div class="card"><table><thead><tr><th>run</th><th>config</th><th>workload</th><th>fault schedule</th><th class="num">windows</th><th class="num">virtual end</th></tr></thead><tbody>` + "\n")
	for _, r := range runs {
		end := 0.0
		if n := len(r.Windows); n > 0 {
			end = r.Windows[n-1].EndNs
		}
		sched := r.Schedule
		if sched == "" {
			sched = "—"
		}
		fmt.Fprintf(b, `<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td class="num">%d</td><td class="num">%s</td></tr>`+"\n",
			esc(r.Label), esc(orDash(r.Config)), esc(orDash(r.Workload)), esc(sched),
			len(r.Windows), fmtDur(end))
	}
	b.WriteString("</tbody></table></div>\n")
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

// writeSLOSection renders attainment per run and objective plus the
// alert summary.
func writeSLOSection(b *strings.Builder, runs []*Run) {
	any := false
	for _, r := range runs {
		if r.SLO != nil {
			any = true
		}
	}
	if !any {
		return
	}
	b.WriteString("<h2>SLO attainment</h2>\n<div class=\"card\"><table><thead><tr><th>run</th><th>objective</th><th class=\"num\">target</th><th class=\"num\">windows met</th><th class=\"num\">attainment</th><th class=\"num\">overall good</th><th class=\"num\">max burn</th></tr></thead><tbody>\n")
	for _, r := range runs {
		if r.SLO == nil {
			continue
		}
		for _, o := range r.SLO.Spec.Objectives {
			var met, n int
			var good, total, maxBurn float64
			for _, wr := range r.SLO.Windows {
				for _, or := range wr.Objectives {
					if or.Name != o.Name {
						continue
					}
					n++
					if or.Met {
						met++
					}
					good += or.Good
					total += or.Total
					if or.BurnRate > maxBurn {
						maxBurn = or.BurnRate
					}
				}
			}
			overall := 1.0
			if total > 0 {
				overall = good / total
			}
			cls := "ok"
			if overall < o.Target {
				cls = "viol"
			}
			fmt.Fprintf(b, `<tr><td>%s</td><td>%s</td><td class="num">%s</td><td class="num">%d / %d</td><td class="num">%s</td><td class="num %s">%s</td><td class="num">%s</td></tr>`+"\n",
				esc(r.Label), esc(o.Name), fmtPct(o.Target), met, n,
				fmtPct(frac(met, n)), cls, fmtPct(overall), fmtNum(maxBurn))
		}
	}
	b.WriteString("</tbody></table>\n")

	// Alert summary: firing windows per run and rule.
	b.WriteString("<table style=\"margin-top:10px\"><thead><tr><th>run</th><th>alert</th><th class=\"num\">burn ≥</th><th class=\"num\">firing windows</th><th>firing intervals</th></tr></thead><tbody>\n")
	for _, r := range runs {
		if r.SLO == nil {
			continue
		}
		for _, a := range r.SLO.Spec.Alerts {
			spans := firingSpans(r, a.Name)
			count := 0
			var ivals []string
			for _, sp := range spans {
				count += sp.n
				ivals = append(ivals, fmtDur(sp.start)+"–"+fmtDur(sp.end))
			}
			iv := "—"
			if len(ivals) > 0 {
				iv = strings.Join(ivals, ", ")
			}
			fmt.Fprintf(b, `<tr><td>%s</td><td>%s</td><td class="num">%s×</td><td class="num">%d</td><td>%s</td></tr>`+"\n",
				esc(r.Label), esc(a.Name), fmtNum(a.BurnRate), count, esc(iv))
		}
	}
	b.WriteString("</tbody></table></div>\n")
}

// firingSpan is a run of consecutive windows with an alert firing.
type firingSpan struct {
	start, end float64
	n          int
}

func firingSpans(r *Run, alert string) []firingSpan {
	var spans []firingSpan
	var open *firingSpan
	for _, wr := range r.SLO.Windows {
		firing := false
		for _, ar := range wr.Alerts {
			if ar.Name == alert && ar.Firing {
				firing = true
			}
		}
		if firing {
			if open == nil {
				spans = append(spans, firingSpan{start: wr.StartNs})
				open = &spans[len(spans)-1]
			}
			open.end = wr.EndNs
			open.n++
		} else {
			open = nil
		}
	}
	return spans
}

// writeAlertTimeline draws one row per (run, alert) with firing windows
// as critical-status bars on the shared virtual-time axis.
func writeAlertTimeline(b *strings.Builder, runs []*Run) {
	type row struct {
		label string
		spans []firingSpan
	}
	var rows []row
	for _, r := range runs {
		if r.SLO == nil {
			continue
		}
		for _, a := range r.SLO.Spec.Alerts {
			rows = append(rows, row{r.Label + " · " + a.Name, firingSpans(r, a.Name)})
		}
	}
	if len(rows) == 0 {
		return
	}
	xMax := maxEndNs(runs)
	if xMax <= 0 {
		return
	}
	const rowH, labelW = 26.0, 220.0
	h := chartTop + rowH*float64(len(rows)) + chartBottom
	b.WriteString("<h2>Alert timeline</h2>\n<div class=\"card\">\n")
	fmt.Fprintf(b, `<svg viewBox="0 0 %s %s" role="img" aria-label="alert timeline">`+"\n",
		coord(chartW), coord(h))
	plotX0, plotX1 := labelW, chartW-chartRight
	for i, rw := range rows {
		y := chartTop + rowH*float64(i)
		fmt.Fprintf(b, `<text x="%s" y="%s" text-anchor="end">%s</text>`+"\n",
			coord(labelW-10), coord(y+rowH/2+4), esc(rw.label))
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--grid)"/>`+"\n",
			coord(plotX0), coord(y+rowH/2), coord(plotX1), coord(y+rowH/2))
		for _, sp := range rw.spans {
			x0 := plotX0 + (plotX1-plotX0)*sp.start/xMax
			x1 := plotX0 + (plotX1-plotX0)*sp.end/xMax
			if x1-x0 < 2 {
				x1 = x0 + 2
			}
			fmt.Fprintf(b, `<rect x="%s" y="%s" width="%s" height="10" rx="2" fill="var(--critical)"><title>%s firing %s–%s</title></rect>`+"\n",
				coord(x0), coord(y+rowH/2-5), coord(x1-x0), esc(rw.label),
				fmtDur(sp.start), fmtDur(sp.end))
		}
	}
	writeTimeAxis(b, plotX0, plotX1, chartTop+rowH*float64(len(rows))+8, xMax)
	b.WriteString("</svg></div>\n")
}

func maxEndNs(runs []*Run) float64 {
	m := 0.0
	for _, r := range runs {
		if n := len(r.Windows); n > 0 && r.Windows[n-1].EndNs > m {
			m = r.Windows[n-1].EndNs
		}
	}
	return m
}

// writeLatencyCharts emits one chart per histogram family present in
// any run: per-run p99 (solid) and p50 (dashed) over virtual time.
func writeLatencyCharts(b *strings.Builder, runs []*Run) {
	fams := histFamilies(runs)
	if len(fams) == 0 {
		return
	}
	b.WriteString("<h2>Per-window latency percentiles</h2>\n")
	xMax := maxEndNs(runs)
	for _, fam := range fams {
		var ser []series
		for i, r := range runs {
			p99 := histSeries(r, fam, func(h hAgg) float64 { return h.p99 })
			p50 := histSeries(r, fam, func(h hAgg) float64 { return h.p50 })
			if len(p99) == 0 {
				continue
			}
			slot := i % maxSeriesSlots
			ser = append(ser,
				series{label: r.Label + " p99", slot: slot, points: p99},
				series{label: r.Label + " p50", slot: slot, dashed: true, points: p50})
		}
		if len(ser) == 0 {
			continue
		}
		writeLineChart(b, fam, "latency", ser, xMax, true)
	}
}

// hAgg is one window's aggregate over all children of one histogram
// family: quantiles are event-weight merged via the windowed buckets.
type hAgg struct{ p50, p99 float64 }

func histSeries(r *Run, fam string, pick func(hAgg) float64) []point {
	var pts []point
	for _, ws := range r.Windows {
		var agg *hAgg
		for _, h := range ws.Histograms {
			if h.Name != fam {
				continue
			}
			// Most families are unlabeled; for labeled ones take the
			// event-weighted max across children as the conservative tail.
			if agg == nil {
				agg = &hAgg{p50: h.P50, p99: h.P99}
			} else {
				agg.p50 = math.Max(agg.p50, h.P50)
				agg.p99 = math.Max(agg.p99, h.P99)
			}
		}
		if agg == nil {
			continue
		}
		v := pick(*agg)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		pts = append(pts, point{x: ws.EndNs, y: v})
	}
	return pts
}

func histFamilies(runs []*Run) []string {
	set := map[string]bool{}
	for _, r := range runs {
		for _, ws := range r.Windows {
			for _, h := range ws.Histograms {
				set[h.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

// writeBurnCharts plots per-window burn rate per objective, with a
// hairline at the lowest alert threshold for that objective.
func writeBurnCharts(b *strings.Builder, runs []*Run) {
	objs := map[string]float64{} // objective → lowest alert burn threshold (0 = none)
	for _, r := range runs {
		if r.SLO == nil {
			continue
		}
		for _, o := range r.SLO.Spec.Objectives {
			if _, ok := objs[o.Name]; !ok {
				objs[o.Name] = 0
			}
		}
		for _, a := range r.SLO.Spec.Alerts {
			if t, ok := objs[a.Objective]; !ok || t == 0 || a.BurnRate < t {
				objs[a.Objective] = a.BurnRate
			}
		}
	}
	if len(objs) == 0 {
		return
	}
	b.WriteString("<h2>Error-budget burn rate</h2>\n")
	xMax := maxEndNs(runs)
	for _, name := range sortedKeysF(objs) {
		var ser []series
		for i, r := range runs {
			if r.SLO == nil {
				continue
			}
			var pts []point
			for _, wr := range r.SLO.Windows {
				for _, or := range wr.Objectives {
					if or.Name == name {
						pts = append(pts, point{x: wr.EndNs, y: or.BurnRate})
					}
				}
			}
			if len(pts) > 0 {
				ser = append(ser, series{label: r.Label, slot: i % maxSeriesSlots, points: pts})
			}
		}
		if len(ser) == 0 {
			continue
		}
		writeLineChartWithRule(b, name, "burn", ser, xMax, false, objs[name])
	}
}

// Counter families worth a rate chart even when no SLO names them.
var preferredCounters = []string{
	"kvstore_failed_ops_total",
	"kvstore_ops_total",
	"kvstore_timeouts_total",
	"tiering_promoted_pages_total",
}

func writeRateCharts(b *strings.Builder, runs []*Run) {
	want := map[string]bool{}
	present := map[string]bool{}
	for _, r := range runs {
		for _, ws := range r.Windows {
			for _, c := range ws.Counters {
				present[c.Name] = true
			}
		}
		if r.SLO != nil {
			for _, o := range r.SLO.Spec.Objectives {
				if o.Kind == slo.KindAvailability {
					want[o.Metric] = true
					want[o.BadMetric] = true
				}
			}
		}
	}
	for _, n := range preferredCounters {
		want[n] = true
	}
	var fams []string
	for n := range want {
		if present[n] {
			fams = append(fams, n)
		}
	}
	sort.Strings(fams)
	if len(fams) == 0 {
		return
	}
	b.WriteString("<h2>Per-window rates</h2>\n")
	xMax := maxEndNs(runs)
	for _, fam := range fams {
		var ser []series
		for i, r := range runs {
			var pts []point
			for _, ws := range r.Windows {
				sum := 0.0
				found := false
				for _, c := range ws.Counters {
					if c.Name == fam {
						sum += c.Rate
						found = true
					}
				}
				if found {
					pts = append(pts, point{x: ws.EndNs, y: sum})
				}
			}
			if len(pts) > 0 {
				ser = append(ser, series{label: r.Label, slot: i % maxSeriesSlots, points: pts})
			}
		}
		if len(ser) == 0 {
			continue
		}
		writeLineChart(b, fam, "rate", ser, xMax, false)
	}
}

// writeHitRatioChart derives per-window cache hit ratio when the
// kvstore publishes hit/miss counters.
func writeHitRatioChart(b *strings.Builder, runs []*Run) {
	const hitsF, missF = "kvstore_cache_hits_total", "kvstore_cache_misses_total"
	var ser []series
	xMax := maxEndNs(runs)
	for i, r := range runs {
		var pts []point
		for _, ws := range r.Windows {
			var hits, miss float64
			found := false
			for _, c := range ws.Counters {
				switch c.Name {
				case hitsF:
					hits += c.Delta
					found = true
				case missF:
					miss += c.Delta
					found = true
				}
			}
			if found && hits+miss > 0 {
				pts = append(pts, point{x: ws.EndNs, y: hits / (hits + miss)})
			}
		}
		if len(pts) > 0 {
			ser = append(ser, series{label: r.Label, slot: i % maxSeriesSlots, points: pts})
		}
	}
	if len(ser) == 0 {
		return
	}
	b.WriteString("<h2>Tiering health</h2>\n")
	writeLineChart(b, "cache hit ratio (per window)", "ratio", ser, xMax, false)
}

// Gauge families worth a time-series chart.
var preferredGauges = []string{
	"fault_active",
	"tiering_degraded_nodes",
	"tiering_promote_threshold",
}

func writeGaugeCharts(b *strings.Builder, runs []*Run) {
	present := map[string]bool{}
	for _, r := range runs {
		for _, ws := range r.Windows {
			for _, g := range ws.Gauges {
				present[g.Name] = true
			}
		}
	}
	var fams []string
	for _, n := range preferredGauges {
		if present[n] {
			fams = append(fams, n)
		}
	}
	if len(fams) == 0 {
		return
	}
	xMax := maxEndNs(runs)
	for _, fam := range fams {
		var ser []series
		for i, r := range runs {
			var pts []point
			for _, ws := range r.Windows {
				sum := 0.0
				found := false
				for _, g := range ws.Gauges {
					if g.Name == fam {
						sum += g.Value
						found = true
					}
				}
				if found {
					pts = append(pts, point{x: ws.EndNs, y: sum})
				}
			}
			if len(pts) > 0 {
				ser = append(ser, series{label: r.Label, slot: i % maxSeriesSlots, points: pts})
			}
		}
		if len(ser) == 0 {
			continue
		}
		writeLineChart(b, fam, "value", ser, xMax, false)
	}
}
