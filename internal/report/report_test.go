package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cxlsim/internal/obs"
	"cxlsim/internal/slo"
	"cxlsim/internal/stats"
)

// testRuns builds a healthy/degraded pair with enough shape to exercise
// every report section: latency histograms, availability counters, a
// gauge, and an SLO evaluation with a firing alert in the degraded run.
func testRuns(t *testing.T) []*Run {
	t.Helper()
	spec := slo.Spec{
		Name:     "test",
		WindowMs: 10,
		Objectives: []slo.Objective{
			{Name: "op-latency", Kind: slo.KindLatency, Metric: "kvstore_op_latency_ns", ThresholdNs: 1e6, Target: 0.99},
			{Name: "availability", Kind: slo.KindAvailability, Metric: "kvstore_ops_total", BadMetric: "kvstore_failed_ops_total", Target: 0.999},
		},
		Alerts: []slo.AlertRule{
			{Name: "latency-fast-burn", Objective: "op-latency", LongWindows: 3, ShortWindows: 1, BurnRate: 5},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	build := func(label string, degraded bool) *Run {
		eval := slo.NewEvaluator(spec)
		var windows []obs.WindowSnapshot
		for i := int64(0); i < 8; i++ {
			bad := uint64(1)
			failed := 0.0
			if degraded && i >= 3 && i < 6 {
				bad = 400
				failed = 25
			}
			good := uint64(1000) - bad
			ws := obs.WindowSnapshot{
				Index: i, StartNs: float64(i) * 1e7, EndNs: float64(i+1) * 1e7,
				Counters: []obs.WindowCounter{
					{Name: "kvstore_ops_total", Delta: 1000, Rate: 1e11},
				},
				Gauges: []obs.WindowGauge{
					{Name: "tiering_degraded_nodes", Value: failed / 25},
				},
				Histograms: []obs.WindowHistogram{{
					Name: "kvstore_op_latency_ns", Count: 1000, Sum: 7e7,
					Buckets: []stats.Bucket{
						{UpperBound: 1e5, Count: good},
						{UpperBound: 1e7, Count: bad},
					},
					P50: 1e5, P95: 1e5, P99: 1e5 + float64(bad), P999: 1e7,
				}},
			}
			if failed > 0 {
				ws.Counters = append(ws.Counters,
					obs.WindowCounter{Name: "kvstore_failed_ops_total", Delta: failed, Rate: failed * 1e8})
			}
			eval.Observe(ws)
			windows = append(windows, ws)
		}
		return &Run{
			Label: label, Config: "1:1", Workload: "YCSB-A",
			WindowNs: 1e7, Windows: windows, SLO: eval.Evaluation(),
		}
	}
	degraded := build("degraded", true)
	degraded.Schedule = "examples/degrade-cxl.json"
	return []*Run{build("healthy", false), degraded}
}

func render(t *testing.T, runs []*Run) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteHTML(&b, runs); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWriteHTMLDeterministic(t *testing.T) {
	runs := testRuns(t)
	first := render(t, runs)
	for i := 0; i < 3; i++ {
		if again := render(t, testRuns(t)); again != first {
			t.Fatalf("render %d differs from the first", i)
		}
	}
}

func TestWriteHTMLSections(t *testing.T) {
	out := render(t, testRuns(t))
	for _, want := range []string{
		"<!DOCTYPE html>",
		"alert timeline",
		"kvstore_op_latency_ns",
		"latency-fast-burn",
		"op-latency",
		"prefers-color-scheme: dark",
		"<table", // accessibility data table
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// The degraded run fires; the report must show a firing interval and
	// the healthy run must not produce one.
	if !strings.Contains(out, "class=\"bar\"") && !strings.Contains(out, "firing") {
		t.Fatalf("no alert activity rendered:\n%.2000s", out)
	}
	// No wall-clock leakage: a report is pure virtual time.
	for _, banned := range []string{"time.Now", "Date:"} {
		if strings.Contains(out, banned) {
			t.Fatalf("report contains wall-clock artifact %q", banned)
		}
	}
}

func TestRunJSONRoundtrip(t *testing.T) {
	runs := testRuns(t)
	path := filepath.Join(t.TempDir(), "run.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := runs[1].WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Label != "degraded" || len(loaded.Windows) != 8 || loaded.SLO == nil {
		t.Fatalf("roundtrip lost data: %+v", loaded)
	}
	// The rendered report must not care which path the run came in by.
	direct := render(t, []*Run{runs[1]})
	viaJSON := render(t, []*Run{loaded})
	if direct != viaJSON {
		t.Fatal("report differs between in-memory and JSON-loaded run")
	}
}

func TestValidate(t *testing.T) {
	if err := (&Run{Label: "x", WindowNs: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Run{WindowNs: 1}).Validate(); err == nil {
		t.Fatal("missing label accepted")
	}
	if err := (&Run{Label: "x"}).Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestWriteHTMLEmptyRunsRejected(t *testing.T) {
	var b bytes.Buffer
	if err := WriteHTML(&b, nil); err == nil {
		t.Fatal("empty run list accepted")
	}
}
