package report

import (
	"fmt"
	"html"
	"math"
	"sort"
	"strconv"
	"strings"
)

// writeLineChart renders one card with a titled SVG line chart, a
// legend (always present for ≥2 series; a single series is named by the
// title), and a collapsible data table — the non-color channel.
// isLatency picks nanosecond-aware y units.
func writeLineChart(b *strings.Builder, title, yKind string, ser []series, xMaxNs float64, isLatency bool) {
	writeLineChartWithRule(b, title, yKind, ser, xMaxNs, isLatency, 0)
}

// writeLineChartWithRule additionally draws a horizontal threshold
// hairline at rule (skipped when rule is 0), used for alert burn-rate
// thresholds.
func writeLineChartWithRule(b *strings.Builder, title, yKind string, ser []series, xMaxNs float64, isLatency bool, rule float64) {
	if len(ser) == 0 || xMaxNs <= 0 {
		return
	}
	yMax := rule
	for _, s := range ser {
		for _, p := range s.points {
			if p.y > yMax {
				yMax = p.y
			}
		}
	}
	if yMax <= 0 {
		yMax = 1
	}
	yMax *= 1.05
	div, unit := yUnit(yKind, yMax, isLatency)

	b.WriteString("<div class=\"card\">\n")
	fmt.Fprintf(b, "<strong>%s</strong> <span class=\"sub\" style=\"font-size:12px\">(%s)</span>\n", esc(title), esc(unit))
	if len(ser) > 1 {
		b.WriteString("<div class=\"legend\">")
		for _, s := range ser {
			chip := fmt.Sprintf(`<span class="chip" style="background:var(--s%d)"></span>`, s.slot)
			if s.dashed {
				chip = fmt.Sprintf(`<span class="chip dash" style="border-color:var(--s%d)"></span>`, s.slot)
			}
			fmt.Fprintf(b, "<span>%s%s</span>", chip, esc(s.label))
		}
		b.WriteString("</div>\n")
	}

	fmt.Fprintf(b, `<svg viewBox="0 0 %s %s" role="img" aria-label="%s">`+"\n",
		coord(chartW), coord(chartH), esc(title))
	x0, x1 := chartLeft, chartW-chartRight
	y0, y1 := chartH-chartBottom, chartTop
	sx := func(t float64) float64 { return x0 + (x1-x0)*t/xMaxNs }
	sy := func(v float64) float64 { return y0 - (y0-y1)*v/yMax }

	// Horizontal gridlines with y tick labels.
	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		y := sy(v)
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--grid)"/>`+"\n",
			coord(x0), coord(y), coord(x1), coord(y))
		fmt.Fprintf(b, `<text x="%s" y="%s" text-anchor="end">%s</text>`+"\n",
			coord(x0-8), coord(y+4), fmtNum(v/div))
	}
	if rule > 0 {
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--critical)" stroke-dasharray="2 4"><title>alert threshold %s</title></line>`+"\n",
			coord(x0), coord(sy(rule)), coord(x1), coord(sy(rule)), fmtNum(rule/div))
	}
	writeTimeAxis(b, x0, x1, y0, xMaxNs)

	for _, s := range ser {
		if len(s.points) == 0 {
			continue
		}
		var path strings.Builder
		for i, p := range s.points {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%s %s ", cmd, coord(sx(p.x)), coord(sy(p.y)))
		}
		dash := ""
		if s.dashed {
			dash = ` stroke-dasharray="5 4"`
		}
		fmt.Fprintf(b, `<path d="%s" fill="none" stroke="var(--s%d)" stroke-width="2" stroke-linejoin="round"%s/>`+"\n",
			strings.TrimRight(path.String(), " "), s.slot, dash)
		// Invisible-ish hover targets with native tooltips.
		for _, p := range s.points {
			fmt.Fprintf(b, `<circle cx="%s" cy="%s" r="6" fill="transparent"><title>%s · t=%s · %s %s</title></circle>`+"\n",
				coord(sx(p.x)), coord(sy(p.y)), esc(s.label), fmtDur(p.x), fmtNum(p.y/div), esc(unit))
		}
	}
	b.WriteString("</svg>\n")
	writeDataTable(b, ser, div, unit)
	b.WriteString("</div>\n")
}

// writeTimeAxis draws the baseline plus virtual-time tick labels.
func writeTimeAxis(b *strings.Builder, x0, x1, y float64, xMaxNs float64) {
	fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--axis)"/>`+"\n",
		coord(x0), coord(y), coord(x1), coord(y))
	for i := 0; i <= 5; i++ {
		t := xMaxNs * float64(i) / 5
		x := x0 + (x1-x0)*float64(i)/5
		fmt.Fprintf(b, `<text x="%s" y="%s" text-anchor="middle">%s</text>`+"\n",
			coord(x), coord(y+16), fmtDur(t))
	}
}

// writeDataTable emits the chart's numbers as a collapsible table, one
// row per distinct x, one column per series.
func writeDataTable(b *strings.Builder, ser []series, div float64, unit string) {
	xsSet := map[float64]bool{}
	for _, s := range ser {
		for _, p := range s.points {
			xsSet[p.x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	b.WriteString("<details><summary>Data table</summary><table><thead><tr><th>t</th>")
	for _, s := range ser {
		fmt.Fprintf(b, `<th class="num">%s (%s)</th>`, esc(s.label), esc(unit))
	}
	b.WriteString("</tr></thead><tbody>\n")
	for _, x := range xs {
		fmt.Fprintf(b, "<tr><td>%s</td>", fmtDur(x))
		for _, s := range ser {
			cell := "—"
			for _, p := range s.points {
				if p.x == x {
					cell = fmtNum(p.y / div)
				}
			}
			fmt.Fprintf(b, `<td class="num">%s</td>`, cell)
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody></table></details>\n")
}

// yUnit picks the display divisor and unit label for a chart's y axis.
func yUnit(kind string, yMax float64, isLatency bool) (float64, string) {
	if isLatency {
		switch {
		case yMax >= 1e6:
			return 1e6, "ms"
		case yMax >= 1e3:
			return 1e3, "µs"
		}
		return 1, "ns"
	}
	switch kind {
	case "rate":
		switch {
		case yMax >= 1e6:
			return 1e6, "M/s"
		case yMax >= 1e3:
			return 1e3, "k/s"
		}
		return 1, "/s"
	case "burn":
		return 1, "× budget"
	case "ratio":
		return 1, "fraction"
	}
	return 1, "value"
}

// coord formats an SVG coordinate with fixed precision so identical
// inputs render identical markup.
func coord(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// fmtNum formats a value with up to 4 significant digits, fixed rules.
func fmtNum(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "∞"
	}
	s := strconv.FormatFloat(v, 'g', 4, 64)
	// Normalize exponent forms like 1e+06 for readability.
	return strings.ReplaceAll(s, "e+0", "e")
}

// fmtDur renders a virtual-time duration in adaptive units.
func fmtDur(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmtNum(ns/1e9) + "s"
	case ns >= 1e6:
		return fmtNum(ns/1e6) + "ms"
	case ns >= 1e3:
		return fmtNum(ns/1e3) + "µs"
	}
	return fmtNum(ns) + "ns"
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmtNum(f*100) + "%" }

func frac(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

func esc(s string) string { return html.EscapeString(s) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
