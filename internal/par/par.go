// Package par is cxlsim's deterministic fan-out primitive: a bounded
// worker pool that runs index-addressed work and leaves result placement
// to the caller, so output order never depends on scheduling. Every
// parallel loop in the experiment stack (mlc sweeps, the llm thread
// sweep, core's per-config loops and RunAll) goes through ForEach with
// results written to index i of a pre-sized slice — which is why the
// parallel experiment harness produces byte-identical tables to serial
// runs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested parallelism: n > 0 is honored, anything
// else means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (Workers-normalized) and returns when all calls complete. fn must write
// its result to caller-owned, index-i storage; it must not append to
// shared slices or depend on invocation order. With workers == 1 (or
// n == 1) everything runs on the calling goroutine — the serial baseline
// that parallel runs are validated against.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work: it runs fn(i) for every i in
// [0, n) and returns the error from the lowest index that failed —
// deterministic regardless of which goroutine hit its error first. All
// indices run even when some fail (experiments are independent; partial
// results stay index-aligned).
func ForEachErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
