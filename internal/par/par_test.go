package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 100
		seen := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(0, 8, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 8} {
		err := ForEachErr(10, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return fmt.Errorf("b")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errA)
		}
	}
}

func TestForEachErrNil(t *testing.T) {
	if err := ForEachErr(5, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(1) != 1 {
		t.Fatal("Workers(1) != 1")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers(7) != 7")
	}
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must default to at least 1")
	}
	if Workers(-3) < 1 {
		t.Fatal("Workers(-3) must clamp to at least 1")
	}
}
