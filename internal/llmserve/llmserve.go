// Package llmserve realizes the paper's Fig. 9 serving architecture as a
// real HTTP service over the simulated cluster: an HTTP frontend receives
// tokenized requests, a router distributes them across CPU inference
// backends, and each backend's token timing comes from the llm model
// under the current memory placement.
//
// The service answers in wall-clock time but reports *virtual* latencies:
// it is a functional demonstration of the stack (useful for driving the
// simulator from external tooling), not a wall-clock benchmark.
//
// Observability: every server owns an obs.Registry (Prometheus text at
// /metrics, JSON snapshot at /metrics.json) and an obs.Tracer recording
// per-request virtual-time spans (Chrome trace-event JSON at
// /trace.json). Requests advance a virtual backend timeline: each
// backend serves back-to-back, so the gap between a request's admission
// frontier and its backend becoming free is its queue wait — the cost of
// round-robin routing versus least-loaded.
package llmserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"cxlsim/internal/llm"
	"cxlsim/internal/obs"
	"cxlsim/internal/sim"
	"cxlsim/internal/slo"
	"cxlsim/internal/stats"
)

// traceEventLimit bounds the server's in-memory trace so a long-lived
// service cannot grow without bound.
const traceEventLimit = 1 << 16

// Request is one generation call.
type Request struct {
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
}

// Response reports the simulated generation.
type Response struct {
	Backend          int     `json:"backend"`
	Tokens           int     `json:"tokens"`
	VirtualLatencyMs float64 `json:"virtual_latency_ms"`
	QueueWaitMs      float64 `json:"queue_wait_ms"`
	TokensPerSec     float64 `json:"tokens_per_sec"`
	Policy           string  `json:"policy"`
	Retries          int     `json:"retries,omitempty"`
	Degraded         bool    `json:"degraded,omitempty"`
}

// Resilience is the server's degraded-mode response policy. Zero values
// disable each mechanism; configure before serving starts (the fields
// are read without locking on the request path).
type Resilience struct {
	// ShedAfterNs sheds a request with 503 + Retry-After when the routed
	// backend's queue wait exceeds it, instead of booking ever-deeper
	// virtual backlog.
	ShedAfterNs float64
	// TimeoutNs bounds one attempt's virtual service time. An attempt
	// over budget is retried on the least-loaded backend after an
	// exponential backoff (charged to the request's virtual latency); a
	// request still over budget after MaxRetries gets 504.
	TimeoutNs  float64
	BackoffNs  float64
	MaxRetries int
}

// Server is the Fig. 9 stack: frontend + router + n backends.
type Server struct {
	cluster  *llm.Cluster
	policy   llm.Policy
	backends int
	// steady is the cluster's steady-state serving point, solved once at
	// construction: policy and backend count are fixed for the server's
	// lifetime and ServingRate is deterministic, so re-solving per
	// request (the old behavior) repeated the identical computation.
	steady llm.ServingPoint

	reg    *obs.Registry
	tracer *obs.Tracer

	requestsC   *obs.Counter
	tokensC     *obs.Counter
	shedC       *obs.Counter
	timeoutC    *obs.Counter
	retryC      *obs.Counter
	reqLatency  *obs.Histogram
	queueWait   *obs.Histogram
	clusterRate *obs.Gauge

	// resilience and health are configured before serving starts and
	// read without locking on the request path.
	resilience Resilience
	health     func() (degraded bool, detail []string)

	// windows and eval are configured by SetSLO before serving starts;
	// both are internally synchronized.
	windows *obs.Windows
	eval    *slo.Evaluator

	next      atomic.Uint64 // round-robin router cursor
	mu        sync.Mutex
	served    uint64
	tokens    uint64
	virtualNs float64
	busyUntil []float64 // per-backend virtual timeline, ns
}

// New builds a server with n backends under a placement policy.
func New(c *llm.Cluster, policy llm.Policy, backends int) *Server {
	if backends < 1 {
		panic("llmserve: need at least one backend")
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	tr.SetLimit(traceEventLimit)
	s := &Server{
		cluster: c, policy: policy, backends: backends,
		steady: c.ServingRate(policy, backends),
		reg:    reg, tracer: tr,
		busyUntil: make([]float64, backends),
	}
	s.requestsC = reg.CounterVec("llmserve_requests_total",
		"generation requests served", "policy").With(policy.Name)
	s.tokensC = reg.CounterVec("llmserve_tokens_total",
		"tokens generated", "policy").With(policy.Name)
	s.reqLatency = reg.Histogram("llmserve_request_virtual_ns",
		"virtual generation latency per request, ns", stats.NewLatencyHistogram)
	s.queueWait = reg.Histogram("llmserve_queue_wait_ns",
		"virtual wait for the routed backend beyond the admission frontier, ns",
		stats.NewLatencyHistogram)
	s.clusterRate = reg.Gauge("llmserve_cluster_tokens_per_sec",
		"steady-state cluster serving rate under the current policy")
	s.shedC = reg.Counter("llmserve_shed_total",
		"requests shed with 503 because the routed backend's queue wait exceeded the shed threshold")
	s.timeoutC = reg.Counter("llmserve_timeouts_total",
		"requests rejected with 504 after exhausting retries over the virtual timeout")
	s.retryC = reg.Counter("llmserve_retries_total",
		"attempt reroutes after a virtual timeout")
	// Tail requests capture exemplar links to their trace spans, and the
	// tracer's drop count is exposed as an obs_* self-metric.
	s.reqLatency.EnableExemplars(0.99)
	reg.TrackTracer(tr)
	return s
}

// SetSLO installs an SLO spec evaluated over virtual-time windows of
// windowNs (0 uses the spec's window_ms, falling back to 1 s). Each
// request's booking flushes the window view at its virtual end time,
// and /slo serves the accumulated evaluation. Call before serving
// starts.
func (s *Server) SetSLO(spec slo.Spec, windowNs float64) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if windowNs <= 0 {
		windowNs = spec.WindowMs * 1e6
	}
	if windowNs <= 0 {
		windowNs = 1e9
	}
	s.windows = obs.NewWindows(s.reg, sim.Time(windowNs))
	s.eval = slo.NewEvaluator(spec)
	s.eval.Instrument(s.reg, s.tracer)
	s.eval.Bind(s.windows)
	return nil
}

// SetResilience installs the degraded-mode response policy. Call before
// serving starts.
func (s *Server) SetResilience(r Resilience) { s.resilience = r }

// SetHealth installs a health source consulted by /health and stamped
// onto responses (fault.Injector's ActiveCount/DegradedResources wrap
// naturally). Call before serving starts; fn must be safe for concurrent
// use.
func (s *Server) SetHealth(fn func() (degraded bool, detail []string)) { s.health = fn }

// Registry exposes the server's metrics registry (e.g. for pcm sampling
// or merging into a process-wide exporter).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the server's virtual-time tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Handler returns the HTTP mux:
//
//	POST /generate     — run one generation
//	GET  /metrics      — Prometheus text exposition
//	GET  /metrics.json — legacy JSON metrics (the pre-obs payload)
//	GET  /trace.json   — Chrome trace-event JSON of request spans
//	GET  /slo          — windowed SLO evaluation (404 until SetSLO)
//	GET  /debug/...    — pprof and expvar
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/generate", s.handleGenerate)
	mux.HandleFunc("/health", s.handleHealth)
	mux.Handle("/metrics", obs.PromHandler(s.reg))
	mux.Handle("/metrics.json", http.HandlerFunc(s.handleMetricsJSON))
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/slo", s.handleSLO)
	obs.RegisterDebug(mux)
	return mux
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.MaxTokens <= 0 {
		req.MaxTokens = 64
	}
	if req.MaxTokens > 4096 {
		http.Error(w, "max_tokens too large", http.StatusBadRequest)
		return
	}

	// Route: round-robin across backends (the paper's router).
	backend := int(s.next.Add(1)-1) % s.backends

	// Steady-state serving rate under the full cluster load determines
	// this backend's per-token time.
	sp := s.steady
	perBackendRate := sp.TokensPerSec / float64(s.backends)
	virtualNs := float64(req.MaxTokens) / perBackendRate * 1e9
	rs := s.resilience

	// Advance the virtual backend timeline: the request starts when its
	// backend frees up; the frontier (least-loaded backend) is when a
	// perfect router could have started it. Everything inside the lock is
	// admission control: shed before booking, reroute timed-out attempts
	// to the least-loaded backend, and only then commit the timeline.
	s.mu.Lock()
	frontier := s.busyUntil[0]
	for _, b := range s.busyUntil[1:] {
		if b < frontier {
			frontier = b
		}
	}
	start := s.busyUntil[backend]
	wait := start - frontier
	if rs.ShedAfterNs > 0 && wait > rs.ShedAfterNs {
		s.mu.Unlock()
		s.shedC.Inc()
		// Retry-After in wall seconds is meaningless for a virtual
		// backlog; report the virtual wait rounded up so clients can
		// still back off proportionally.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(wait/1e9)+1))
		http.Error(w, fmt.Sprintf("backend %d backlog %.1f ms exceeds shed threshold", backend, wait/1e6),
			http.StatusServiceUnavailable)
		return
	}
	retries := 0
	if rs.TimeoutNs > 0 && virtualNs > rs.TimeoutNs {
		// The per-token rate is cluster-wide, so a generation over the
		// virtual budget stays over budget on every backend: retries
		// reroute to the least-loaded backend (improving only queue wait),
		// burn their exponential backoff, and the request ultimately fails
		// with 504 — degraded mode refuses unserveable work instead of
		// booking virtual backlog no client would wait out.
		for retries < rs.MaxRetries {
			retries++
			for i, b := range s.busyUntil {
				if b < s.busyUntil[backend] {
					backend = i
				}
			}
		}
		s.mu.Unlock()
		s.timeoutC.Inc()
		if retries > 0 {
			s.retryC.Add(float64(retries))
		}
		http.Error(w, fmt.Sprintf("generation exceeds virtual timeout after %d retries (need %.1f ms, budget %.1f ms)",
			retries, virtualNs/1e6, rs.TimeoutNs/1e6), http.StatusGatewayTimeout)
		return
	}
	end := start + virtualNs
	s.busyUntil[backend] = end
	s.served++
	s.tokens += uint64(req.MaxTokens)
	s.virtualNs += virtualNs
	s.mu.Unlock()

	s.requestsC.Inc()
	s.tokensC.Add(float64(req.MaxTokens))
	spanID := s.tracer.SpanWithID("llmserve", "generate/"+s.policy.Name,
		sim.Time(start), sim.Time(end), map[string]any{
			"backend":       backend,
			"tokens":        req.MaxTokens,
			"queue_wait_ns": wait,
		})
	s.reqLatency.ObserveExemplar(virtualNs, obs.Exemplar{
		AtNs: end, SpanID: spanID, Track: "llmserve", Span: "generate/" + s.policy.Name,
	})
	s.queueWait.Observe(wait)
	s.clusterRate.Set(sp.TokensPerSec)
	// Advance the SLO window view to this request's virtual end; the
	// monotonic guard absorbs out-of-order bookings across backends.
	s.windows.Flush(sim.Time(end))

	degraded := false
	if s.health != nil {
		degraded, _ = s.health()
	}
	resp := Response{
		Backend:          backend,
		Tokens:           req.MaxTokens,
		VirtualLatencyMs: virtualNs / 1e6,
		QueueWaitMs:      wait / 1e6,
		TokensPerSec:     perBackendRate,
		Policy:           s.policy.Name,
		Retries:          retries,
		Degraded:         degraded,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Client went away mid-write; nothing recoverable.
		return
	}
}

// Health is the /health payload.
type Health struct {
	Status   string   `json:"status"` // "ok" or "degraded"
	Policy   string   `json:"policy"`
	Backends int      `json:"backends"`
	Degraded []string `json:"degraded_resources,omitempty"`
}

// handleHealth answers 200 whenever the process is serving — degradation
// is reported in the body, not the status code, so orchestrators do not
// kill a pod that is shedding load exactly as designed.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	h := Health{Status: "ok", Policy: s.policy.Name, Backends: s.backends}
	if s.health != nil {
		if degraded, detail := s.health(); degraded {
			h.Status = "degraded"
			h.Degraded = detail
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h); err != nil {
		return
	}
}

// Metrics is the /metrics.json payload (the pre-obs /metrics shape,
// kept for compatibility).
type Metrics struct {
	Requests       uint64  `json:"requests"`
	Tokens         uint64  `json:"tokens"`
	Backends       int     `json:"backends"`
	Policy         string  `json:"policy"`
	MeanVirtualMs  float64 `json:"mean_virtual_ms"`
	ClusterTokRate float64 `json:"cluster_tokens_per_sec"`
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	m := Metrics{
		Requests: s.served,
		Tokens:   s.tokens,
		Backends: s.backends,
		Policy:   s.policy.Name,
	}
	if s.served > 0 {
		m.MeanVirtualMs = s.virtualNs / float64(s.served) / 1e6
	}
	s.mu.Unlock()
	m.ClusterTokRate = s.cluster.ServingRate(s.policy, s.backends).TokensPerSec
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(m); err != nil {
		return
	}
}

// handleSLO serves the accumulated windowed SLO evaluation.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.eval == nil {
		http.Error(w, "no SLO configured (start with -slo)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(s.eval.Evaluation()); err != nil {
		return
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteJSON(w); err != nil {
		return
	}
}
