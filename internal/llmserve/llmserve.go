// Package llmserve realizes the paper's Fig. 9 serving architecture as a
// real HTTP service over the simulated cluster: an HTTP frontend receives
// tokenized requests, a router distributes them across CPU inference
// backends, and each backend's token timing comes from the llm model
// under the current memory placement.
//
// The service answers in wall-clock time but reports *virtual* latencies:
// it is a functional demonstration of the stack (useful for driving the
// simulator from external tooling), not a wall-clock benchmark.
package llmserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"cxlsim/internal/llm"
)

// Request is one generation call.
type Request struct {
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
}

// Response reports the simulated generation.
type Response struct {
	Backend          int     `json:"backend"`
	Tokens           int     `json:"tokens"`
	VirtualLatencyMs float64 `json:"virtual_latency_ms"`
	TokensPerSec     float64 `json:"tokens_per_sec"`
	Policy           string  `json:"policy"`
}

// Server is the Fig. 9 stack: frontend + router + n backends.
type Server struct {
	cluster  *llm.Cluster
	policy   llm.Policy
	backends int

	next      atomic.Uint64 // round-robin router cursor
	mu        sync.Mutex
	served    uint64
	tokens    uint64
	virtualNs float64
}

// New builds a server with n backends under a placement policy.
func New(c *llm.Cluster, policy llm.Policy, backends int) *Server {
	if backends < 1 {
		panic("llmserve: need at least one backend")
	}
	return &Server{cluster: c, policy: policy, backends: backends}
}

// Handler returns the HTTP mux: POST /generate and GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/generate", s.handleGenerate)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.MaxTokens <= 0 {
		req.MaxTokens = 64
	}
	if req.MaxTokens > 4096 {
		http.Error(w, "max_tokens too large", http.StatusBadRequest)
		return
	}

	// Route: round-robin across backends (the paper's router).
	backend := int(s.next.Add(1)-1) % s.backends

	// Steady-state serving rate under the full cluster load determines
	// this backend's per-token time.
	sp := s.cluster.ServingRate(s.policy, s.backends)
	perBackendRate := sp.TokensPerSec / float64(s.backends)
	virtualNs := float64(req.MaxTokens) / perBackendRate * 1e9

	s.mu.Lock()
	s.served++
	s.tokens += uint64(req.MaxTokens)
	s.virtualNs += virtualNs
	s.mu.Unlock()

	resp := Response{
		Backend:          backend,
		Tokens:           req.MaxTokens,
		VirtualLatencyMs: virtualNs / 1e6,
		TokensPerSec:     perBackendRate,
		Policy:           s.policy.Name,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Client went away mid-write; nothing recoverable.
		return
	}
}

// Metrics is the /metrics payload.
type Metrics struct {
	Requests       uint64  `json:"requests"`
	Tokens         uint64  `json:"tokens"`
	Backends       int     `json:"backends"`
	Policy         string  `json:"policy"`
	MeanVirtualMs  float64 `json:"mean_virtual_ms"`
	ClusterTokRate float64 `json:"cluster_tokens_per_sec"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	m := Metrics{
		Requests: s.served,
		Tokens:   s.tokens,
		Backends: s.backends,
		Policy:   s.policy.Name,
	}
	if s.served > 0 {
		m.MeanVirtualMs = s.virtualNs / float64(s.served) / 1e6
	}
	s.mu.Unlock()
	m.ClusterTokRate = s.cluster.ServingRate(s.policy, s.backends).TokensPerSec
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(m); err != nil {
		return
	}
}
