package llmserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cxlsim/internal/llm"
)

func newTestServer(t *testing.T, policyIdx, backends int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(llm.NewCluster(), llm.Fig10Policies()[policyIdx], backends)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func generate(t *testing.T, ts *httptest.Server, body string) (*http.Response, Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/generate", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestGenerateEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, 0, 4)
	resp, out := generate(t, ts, `{"prompt":"hello","max_tokens":32}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Tokens != 32 || out.Policy != "MMEM" {
		t.Fatalf("response = %+v", out)
	}
	if out.VirtualLatencyMs <= 0 || out.TokensPerSec <= 0 {
		t.Fatalf("non-positive timing: %+v", out)
	}
	// 32 tokens at the reported rate must equal the reported latency.
	wantMs := float64(out.Tokens) / out.TokensPerSec * 1e3
	if diff := out.VirtualLatencyMs - wantMs; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("latency %v inconsistent with rate (want %v)", out.VirtualLatencyMs, wantMs)
	}
}

func TestRouterRoundRobins(t *testing.T) {
	_, ts := newTestServer(t, 0, 3)
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		_, out := generate(t, ts, `{"max_tokens":8}`)
		seen[out.Backend] = true
	}
	if len(seen) != 3 {
		t.Fatalf("router used %d of 3 backends", len(seen))
	}
}

func TestPlacementPolicyChangesLatency(t *testing.T) {
	// Under light load MMEM beats 1:3 per token (idle-latency-bound).
	_, tsMMEM := newTestServer(t, 0, 2)
	_, ts13 := newTestServer(t, 3, 2)
	_, a := generate(t, tsMMEM, `{"max_tokens":64}`)
	_, b := generate(t, ts13, `{"max_tokens":64}`)
	if a.VirtualLatencyMs >= b.VirtualLatencyMs {
		t.Fatalf("MMEM latency %v should beat 1:3 %v at light load", a.VirtualLatencyMs, b.VirtualLatencyMs)
	}
}

func TestDefaultsAndErrors(t *testing.T) {
	_, ts := newTestServer(t, 0, 1)
	// Default token count.
	_, out := generate(t, ts, `{}`)
	if out.Tokens != 64 {
		t.Fatalf("default tokens = %d, want 64", out.Tokens)
	}
	// Bad JSON.
	resp, _ := generate(t, ts, `{nope`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}
	// Oversized request.
	resp, _ = generate(t, ts, `{"max_tokens":100000}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized status = %d", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(ts.URL + "/generate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /generate status = %d", getResp.StatusCode)
	}
}

func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, 1, 2)
	for i := 0; i < 5; i++ {
		generate(t, ts, `{"max_tokens":10}`)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests != 5 || m.Tokens != 50 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Policy != "3:1" || m.Backends != 2 {
		t.Fatalf("metrics identity = %+v", m)
	}
	if m.MeanVirtualMs <= 0 || m.ClusterTokRate <= 0 {
		t.Fatalf("metrics timing = %+v", m)
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, ts := newTestServer(t, 0, 4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/generate", "application/json",
				bytes.NewBufferString(`{"max_tokens":4}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	s.mu.Lock()
	served := s.served
	s.mu.Unlock()
	if served != 32 {
		t.Fatalf("served %d of 32 concurrent requests", served)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero backends should panic")
		}
	}()
	New(llm.NewCluster(), llm.Fig10Policies()[0], 0)
}
