package llmserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cxlsim/internal/llm"
)

func newTestServer(t *testing.T, policyIdx, backends int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(llm.NewCluster(), llm.Fig10Policies()[policyIdx], backends)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func generate(t *testing.T, ts *httptest.Server, body string) (*http.Response, Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/generate", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestGenerateEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, 0, 4)
	resp, out := generate(t, ts, `{"prompt":"hello","max_tokens":32}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Tokens != 32 || out.Policy != "MMEM" {
		t.Fatalf("response = %+v", out)
	}
	if out.VirtualLatencyMs <= 0 || out.TokensPerSec <= 0 {
		t.Fatalf("non-positive timing: %+v", out)
	}
	// 32 tokens at the reported rate must equal the reported latency.
	wantMs := float64(out.Tokens) / out.TokensPerSec * 1e3
	if diff := out.VirtualLatencyMs - wantMs; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("latency %v inconsistent with rate (want %v)", out.VirtualLatencyMs, wantMs)
	}
}

func TestRouterRoundRobins(t *testing.T) {
	_, ts := newTestServer(t, 0, 3)
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		_, out := generate(t, ts, `{"max_tokens":8}`)
		seen[out.Backend] = true
	}
	if len(seen) != 3 {
		t.Fatalf("router used %d of 3 backends", len(seen))
	}
}

func TestPlacementPolicyChangesLatency(t *testing.T) {
	// Under light load MMEM beats 1:3 per token (idle-latency-bound).
	_, tsMMEM := newTestServer(t, 0, 2)
	_, ts13 := newTestServer(t, 3, 2)
	_, a := generate(t, tsMMEM, `{"max_tokens":64}`)
	_, b := generate(t, ts13, `{"max_tokens":64}`)
	if a.VirtualLatencyMs >= b.VirtualLatencyMs {
		t.Fatalf("MMEM latency %v should beat 1:3 %v at light load", a.VirtualLatencyMs, b.VirtualLatencyMs)
	}
}

func TestDefaultsAndErrors(t *testing.T) {
	_, ts := newTestServer(t, 0, 1)
	// Default token count.
	_, out := generate(t, ts, `{}`)
	if out.Tokens != 64 {
		t.Fatalf("default tokens = %d, want 64", out.Tokens)
	}
	// Bad JSON.
	resp, _ := generate(t, ts, `{nope`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}
	// Oversized request.
	resp, _ = generate(t, ts, `{"max_tokens":100000}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized status = %d", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(ts.URL + "/generate")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /generate status = %d", getResp.StatusCode)
	}
}

func TestMetricsJSON(t *testing.T) {
	_, ts := newTestServer(t, 1, 2)
	for i := 0; i < 5; i++ {
		generate(t, ts, `{"max_tokens":10}`)
	}
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests != 5 || m.Tokens != 50 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Policy != "3:1" || m.Backends != 2 {
		t.Fatalf("metrics identity = %+v", m)
	}
	if m.MeanVirtualMs <= 0 || m.ClusterTokRate <= 0 {
		t.Fatalf("metrics timing = %+v", m)
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, ts := newTestServer(t, 0, 4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/generate", "application/json",
				bytes.NewBufferString(`{"max_tokens":4}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	s.mu.Lock()
	served := s.served
	s.mu.Unlock()
	if served != 32 {
		t.Fatalf("served %d of 32 concurrent requests", served)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero backends should panic")
		}
	}()
	New(llm.NewCluster(), llm.Fig10Policies()[0], 0)
}

func TestMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, 1, 2)
	for i := 0; i < 4; i++ {
		generate(t, ts, `{"max_tokens":10}`)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE llmserve_requests_total counter",
		`llmserve_requests_total{policy="3:1"} 4`,
		"# TYPE llmserve_cluster_tokens_per_sec gauge",
		"# TYPE llmserve_request_virtual_ns histogram",
		"llmserve_request_virtual_ns_count 4",
		`llmserve_request_virtual_ns_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, body)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	s, ts := newTestServer(t, 0, 2)
	for i := 0; i < 3; i++ {
		generate(t, ts, `{"max_tokens":10}`)
	}
	resp, err := http.Get(ts.URL + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 1 thread_name metadata + 3 request spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("trace has %d events, want 4", len(doc.TraceEvents))
	}
	if s.Tracer().Len() != 3 {
		t.Fatalf("tracer recorded %d spans, want 3", s.Tracer().Len())
	}
}

func TestQueueWaitReflectsRouterImbalance(t *testing.T) {
	// With one backend every request after the first waits for the
	// previous one (frontier == the single backend's timeline, so wait
	// is 0); with two backends and round-robin, waits stay 0 while the
	// timelines advance evenly. The key invariant: waits are finite,
	// non-negative, and the virtual timeline is monotone.
	_, ts := newTestServer(t, 0, 2)
	for i := 0; i < 6; i++ {
		_, out := generate(t, ts, `{"max_tokens":10}`)
		if out.QueueWaitMs < 0 {
			t.Fatalf("negative queue wait %v", out.QueueWaitMs)
		}
	}
}

// TestConcurrentMetricsAndGenerate exercises registry writes (generate)
// racing snapshots (/metrics) under -race: the satellite coverage for
// concurrent registry access from HTTP handlers.
func TestConcurrentMetricsAndGenerate(t *testing.T) {
	s, ts := newTestServer(t, 0, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/generate", "application/json",
				bytes.NewBufferString(`{"max_tokens":4}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, path := range []string{"/metrics", "/metrics.json", "/trace.json"} {
				resp, err := http.Get(ts.URL + path)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	snap := s.Registry().Snapshot()
	fam, ok := snap.Find("llmserve_requests_total")
	if !ok || len(fam.Metrics) != 1 {
		t.Fatalf("requests family = %+v", fam)
	}
	if got := fam.Metrics[0].Value; got != 16 {
		t.Fatalf("requests counter = %v, want 16", got)
	}
}
