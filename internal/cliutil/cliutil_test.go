package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func TestShardsFlagDefaultsAndParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := Shards(fs)
	n := Nodes(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *s != 1 || *n != 1 {
		t.Fatalf("defaults = shards %d, nodes %d; want 1, 1", *s, *n)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	s, n = Shards(fs), Nodes(fs)
	if err := fs.Parse([]string{"-shards", "4", "-nodes", "8"}); err != nil {
		t.Fatal(err)
	}
	if *s != 4 || *n != 8 {
		t.Fatalf("parsed shards %d, nodes %d; want 4, 8", *s, *n)
	}
}

func TestShardsHelpMentionsDeterminism(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	Shards(fs)
	f := fs.Lookup("shards")
	if f == nil {
		t.Fatal("shards flag not registered")
	}
	if !strings.Contains(f.Usage, "byte-identical") {
		t.Fatalf("shards help %q does not state the determinism guarantee", f.Usage)
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		if CheckShards(bad) == nil {
			t.Fatalf("CheckShards(%d) accepted", bad)
		}
		if CheckNodes(bad) == nil {
			t.Fatalf("CheckNodes(%d) accepted", bad)
		}
	}
	for _, ok := range []int{1, 2, 64} {
		if err := CheckShards(ok); err != nil {
			t.Fatalf("CheckShards(%d): %v", ok, err)
		}
		if err := CheckNodes(ok); err != nil {
			t.Fatalf("CheckNodes(%d): %v", ok, err)
		}
	}
}

func TestNonNumericValueRejectedByParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	Shards(fs)
	if err := fs.Parse([]string{"-shards", "many"}); err == nil {
		t.Fatal("non-numeric -shards parsed without error")
	}
}
