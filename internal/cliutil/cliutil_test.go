package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func TestShardsFlagDefaultsAndParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := Shards(fs)
	n := Nodes(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *s != 1 || *n != 1 {
		t.Fatalf("defaults = shards %d, nodes %d; want 1, 1", *s, *n)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	s, n = Shards(fs), Nodes(fs)
	if err := fs.Parse([]string{"-shards", "4", "-nodes", "8"}); err != nil {
		t.Fatal(err)
	}
	if *s != 4 || *n != 8 {
		t.Fatalf("parsed shards %d, nodes %d; want 4, 8", *s, *n)
	}
}

func TestShardsHelpMentionsDeterminism(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	Shards(fs)
	f := fs.Lookup("shards")
	if f == nil {
		t.Fatal("shards flag not registered")
	}
	if !strings.Contains(f.Usage, "byte-identical") {
		t.Fatalf("shards help %q does not state the determinism guarantee", f.Usage)
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		if CheckShards(bad) == nil {
			t.Fatalf("CheckShards(%d) accepted", bad)
		}
		if CheckNodes(bad) == nil {
			t.Fatalf("CheckNodes(%d) accepted", bad)
		}
	}
	for _, ok := range []int{1, 2, 64} {
		if err := CheckShards(ok); err != nil {
			t.Fatalf("CheckShards(%d): %v", ok, err)
		}
		if err := CheckNodes(ok); err != nil {
			t.Fatalf("CheckNodes(%d): %v", ok, err)
		}
	}
}

// respParse registers the RESP flags on a fresh flag set, parses argv,
// and returns the flags plus whether a tuning flag was explicitly set.
func respParse(t *testing.T, argv ...string) (RESPFlags, bool) {
	t.Helper()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RESP(fs)
	if err := fs.Parse(argv); err != nil {
		t.Fatalf("parse %q: %v", argv, err)
	}
	return f, RESPTuningSet(fs)
}

func TestCheckRESP(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		ok   bool
	}{
		{name: "disabled defaults", argv: nil, ok: true},
		{name: "addr with defaults", argv: []string{"-resp", ":6379"}, ok: true},
		{name: "addr with tuning", argv: []string{"-resp", ":6379", "-resp-max-conns", "8", "-resp-frame-bytes", "1024"}, ok: true},
		{name: "tuning without addr", argv: []string{"-resp-max-conns", "8"}, ok: false},
		{name: "frame without addr", argv: []string{"-resp-frame-bytes", "1024"}, ok: false},
		{name: "zero conns", argv: []string{"-resp", ":6379", "-resp-max-conns", "0"}, ok: false},
		{name: "negative conns", argv: []string{"-resp", ":6379", "-resp-max-conns", "-3"}, ok: false},
		{name: "zero frame", argv: []string{"-resp", ":6379", "-resp-frame-bytes", "0"}, ok: false},
		{name: "negative frame", argv: []string{"-resp", ":6379", "-resp-frame-bytes", "-1"}, ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, tuningSet := respParse(t, tc.argv...)
			err := CheckRESP(f, tuningSet)
			if tc.ok && err != nil {
				t.Fatalf("rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("accepted, want error")
			}
		})
	}
}

// TestRESPDefaultsMatchServer pins the flag defaults to the server's
// own: explicitly-set-to-default and unset must behave identically.
func TestRESPDefaultsMatchServer(t *testing.T) {
	f, tuningSet := respParse(t)
	if tuningSet {
		t.Fatal("no tuning flags set, but RESPTuningSet reports true")
	}
	if *f.MaxConns != DefaultRESPMaxConns || *f.FrameBytes != DefaultRESPFrameBytes {
		t.Fatalf("defaults: conns=%d frame=%d", *f.MaxConns, *f.FrameBytes)
	}
	if _, tuningSet := respParse(t, "-resp-max-conns", "256"); !tuningSet {
		t.Fatal("explicit tuning flag not detected by RESPTuningSet")
	}
}

func TestNonNumericValueRejectedByParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	Shards(fs)
	if err := fs.Parse([]string{"-shards", "many"}); err == nil {
		t.Fatal("non-numeric -shards parsed without error")
	}
}
