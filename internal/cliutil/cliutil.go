// Package cliutil centralizes flag conventions shared by the cxl*
// commands, so every tool registers the same names with the same
// defaults and help text and rejects the same invalid values. The
// sharded-execution flags live here: -shards picks how many OS threads
// execute a sharded simulation (output is byte-identical at any value)
// and -nodes sizes a simulated cluster.
package cliutil

import (
	"flag"
	"fmt"
)

const (
	shardsHelp = "parallel simulation shards (1 = single-threaded; output is byte-identical at any value)"
	nodesHelp  = "simulated cluster nodes (1 = the single-server methodology; >1 runs the sharded cluster)"
)

// Shards registers the standard -shards flag on fs (default 1).
func Shards(fs *flag.FlagSet) *int { return fs.Int("shards", 1, shardsHelp) }

// Nodes registers the standard -nodes flag on fs (default 1).
func Nodes(fs *flag.FlagSet) *int { return fs.Int("nodes", 1, nodesHelp) }

// CheckShards validates a -shards value.
func CheckShards(n int) error {
	if n < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", n)
	}
	return nil
}

// CheckNodes validates a -nodes value.
func CheckNodes(n int) error {
	if n < 1 {
		return fmt.Errorf("-nodes must be at least 1 (got %d)", n)
	}
	return nil
}
