// Package cliutil centralizes flag conventions shared by the cxl*
// commands, so every tool registers the same names with the same
// defaults and help text and rejects the same invalid values. The
// sharded-execution flags live here: -shards picks how many OS threads
// execute a sharded simulation (output is byte-identical at any value)
// and -nodes sizes a simulated cluster.
package cliutil

import (
	"flag"
	"fmt"
)

const (
	shardsHelp = "parallel simulation shards (1 = single-threaded; output is byte-identical at any value)"
	nodesHelp  = "simulated cluster nodes (1 = the single-server methodology; >1 runs the sharded cluster)"

	respAddrHelp  = "serve the RESP (Redis) wire protocol on this TCP address (e.g. :6379); empty disables"
	respConnsHelp = "maximum simultaneous RESP connections"
	respFrameHelp = "largest RESP bulk argument accepted, bytes (oversized frames get a protocol-error reply)"
)

// RESP front-end flag defaults, shared by every command that registers
// the flags so help text and validation agree.
const (
	DefaultRESPMaxConns   = 256
	DefaultRESPFrameBytes = 4 << 20
)

// Shards registers the standard -shards flag on fs (default 1).
func Shards(fs *flag.FlagSet) *int { return fs.Int("shards", 1, shardsHelp) }

// Nodes registers the standard -nodes flag on fs (default 1).
func Nodes(fs *flag.FlagSet) *int { return fs.Int("nodes", 1, nodesHelp) }

// CheckShards validates a -shards value.
func CheckShards(n int) error {
	if n < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", n)
	}
	return nil
}

// CheckNodes validates a -nodes value.
func CheckNodes(n int) error {
	if n < 1 {
		return fmt.Errorf("-nodes must be at least 1 (got %d)", n)
	}
	return nil
}

// RESPFlags holds the registered RESP front-end flag values.
type RESPFlags struct {
	Addr       *string
	MaxConns   *int
	FrameBytes *int
}

// RESP registers the standard RESP front-end flags on fs.
func RESP(fs *flag.FlagSet) RESPFlags {
	return RESPFlags{
		Addr:       fs.String("resp", "", respAddrHelp),
		MaxConns:   fs.Int("resp-max-conns", DefaultRESPMaxConns, respConnsHelp),
		FrameBytes: fs.Int("resp-frame-bytes", DefaultRESPFrameBytes, respFrameHelp),
	}
}

// CheckRESP validates the RESP flag values. tuningSet reports whether
// -resp-max-conns or -resp-frame-bytes was set explicitly (via
// flag.Visit): tuning flags without -resp are a mistake worth rejecting
// rather than silently ignoring.
func CheckRESP(f RESPFlags, tuningSet bool) error {
	if *f.Addr == "" {
		if tuningSet {
			return fmt.Errorf("-resp-max-conns/-resp-frame-bytes need -resp <addr>")
		}
		return nil
	}
	if *f.MaxConns < 1 {
		return fmt.Errorf("-resp-max-conns must be at least 1 (got %d)", *f.MaxConns)
	}
	if *f.FrameBytes < 1 {
		return fmt.Errorf("-resp-frame-bytes must be positive (got %d)", *f.FrameBytes)
	}
	return nil
}

// RESPTuningSet reports whether any RESP tuning flag was explicitly set
// on fs (call after fs.Parse).
func RESPTuningSet(fs *flag.FlagSet) bool {
	set := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "resp-max-conns" || fl.Name == "resp-frame-bytes" {
			set = true
		}
	})
	return set
}
