// Package pool extends cxlsim beyond the paper's CXL 1.1 scope into the
// §7 vision: CXL 2.0/3.0 memory pooling, where a multi-headed device (or
// fabric of them) exposes capacity to up to 16 hosts that allocate from
// it dynamically.
//
// Two questions the paper raises for future work are answerable here:
//
//  1. Capacity economics — how much provisioned DRAM does pooling strand
//     less of? Hosts provision local DRAM for typical demand and borrow
//     pooled capacity for bursts, instead of provisioning every host for
//     its own peak (the Pond/memory-disaggregation argument the paper
//     cites).
//  2. Performance interference — pooled bandwidth is shared, so a noisy
//     neighbor inflates everyone's loaded latency; the same memsim
//     machinery that models single-host contention quantifies it.
package pool

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cxlsim/internal/memsim"
	"cxlsim/internal/stats"
)

// MaxHeads is the CXL 2.0 limit on hosts per multi-logical device.
const MaxHeads = 16

// ErrExhausted is returned when the pool cannot satisfy an allocation.
var ErrExhausted = errors.New("pool: capacity exhausted")

// Device is one multi-headed CXL 2.0 expander: shared capacity and
// shared bandwidth behind per-host CXL links.
type Device struct {
	Name     string
	Capacity uint64

	res    *memsim.Resource
	used   uint64
	byHost map[int]uint64
}

// NewDevice builds a pooled device with the A1000-class bandwidth
// profile. CXL 2.0 adds a switch hop; +35 ns idle latency over the
// direct-attach device models it.
func NewDevice(name string, capacity uint64) *Device {
	res := memsim.NewCXLDevice(name)
	res.IdleRead += 35
	res.IdleWrite += 35
	return &Device{Name: name, Capacity: capacity, res: res, byHost: map[int]uint64{}}
}

// Resource exposes the shared bandwidth stage.
func (d *Device) Resource() *memsim.Resource { return d.res }

// Used reports allocated bytes.
func (d *Device) Used() uint64 { return d.used }

// Free reports unallocated bytes.
func (d *Device) Free() uint64 { return d.Capacity - d.used }

// HostUsage reports one host's allocation on this device.
func (d *Device) HostUsage(host int) uint64 { return d.byHost[host] }

// Pool is a set of pooled devices shared by registered hosts.
type Pool struct {
	devices []*Device
	hosts   int
}

// New builds a pool over the devices for the given host count.
func New(hosts int, devices ...*Device) (*Pool, error) {
	if hosts < 1 || hosts > MaxHeads {
		return nil, fmt.Errorf("pool: host count %d outside [1,%d] (CXL 2.0 MLD limit)", hosts, MaxHeads)
	}
	if len(devices) == 0 {
		return nil, errors.New("pool: no devices")
	}
	return &Pool{devices: devices, hosts: hosts}, nil
}

// Hosts reports the registered host count.
func (p *Pool) Hosts() int { return p.hosts }

// Capacity reports total pool capacity.
func (p *Pool) Capacity() uint64 {
	var sum uint64
	for _, d := range p.devices {
		sum += d.Capacity
	}
	return sum
}

// Used reports total allocated bytes.
func (p *Pool) Used() uint64 {
	var sum uint64
	for _, d := range p.devices {
		sum += d.used
	}
	return sum
}

// Alloc grants bytes to a host, first-fit across devices. Partial
// success is rolled back; ErrExhausted leaves the pool unchanged.
func (p *Pool) Alloc(host int, bytes uint64) error {
	if host < 0 || host >= p.hosts {
		return fmt.Errorf("pool: unknown host %d", host)
	}
	if bytes == 0 {
		return nil
	}
	type grant struct {
		d *Device
		n uint64
	}
	var grants []grant
	remaining := bytes
	for _, d := range p.devices {
		if remaining == 0 {
			break
		}
		take := d.Free()
		if take > remaining {
			take = remaining
		}
		if take == 0 {
			continue
		}
		grants = append(grants, grant{d, take})
		remaining -= take
	}
	if remaining > 0 {
		return fmt.Errorf("%w: need %d more bytes", ErrExhausted, remaining)
	}
	for _, g := range grants {
		g.d.used += g.n
		g.d.byHost[host] += g.n
	}
	return nil
}

// Release returns bytes from a host to the pool (clamped at the host's
// current usage).
func (p *Pool) Release(host int, bytes uint64) {
	remaining := bytes
	for _, d := range p.devices {
		if remaining == 0 {
			return
		}
		have := d.byHost[host]
		take := have
		if take > remaining {
			take = remaining
		}
		d.byHost[host] -= take
		d.used -= take
		remaining -= take
	}
}

// HostUsage reports a host's total pooled allocation.
func (p *Pool) HostUsage(host int) uint64 {
	var sum uint64
	for _, d := range p.devices {
		sum += d.byHost[host]
	}
	return sum
}

// --- capacity economics (§7, Pond-style stranding analysis) ---

// DemandModel generates per-epoch memory demand for one host, in bytes.
type DemandModel interface {
	Next() uint64
}

// LogNormalDemand is a bursty demand model: median demand with
// multiplicative spread.
type LogNormalDemand struct {
	Median uint64
	Sigma  float64
	rng    *rand.Rand
}

// NewLogNormalDemand builds a demand model.
func NewLogNormalDemand(median uint64, sigma float64, seed int64) *LogNormalDemand {
	if median == 0 || sigma < 0 {
		panic("pool: invalid demand model")
	}
	return &LogNormalDemand{Median: median, Sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Next draws one demand sample: median · e^(σ·N(0,1)).
func (l *LogNormalDemand) Next() uint64 {
	return uint64(float64(l.Median) * math.Exp(l.rng.NormFloat64()*l.Sigma))
}

// ProvisioningStudy compares static per-host provisioning against
// local-DRAM + pooled-CXL provisioning for a fleet of bursty hosts.
type ProvisioningStudy struct {
	Hosts  int
	Epochs int
	// Quantile sets the provisioning target (e.g. 0.99: capacity covers
	// 99% of epochs without failure).
	Quantile float64
}

// StudyResult reports the capacity comparison.
type StudyResult struct {
	// StaticBytes: every host provisions its own Quantile demand.
	StaticBytes uint64
	// PooledLocalBytes: per-host local DRAM at median demand.
	PooledLocalBytes uint64
	// PooledCXLBytes: shared pool sized at the Quantile of aggregate
	// burst demand.
	PooledCXLBytes uint64
	// SavingFrac = 1 − pooled/static.
	SavingFrac float64
}

// Run executes the study over the demand models (one per host).
func (s ProvisioningStudy) Run(models []DemandModel) (StudyResult, error) {
	if len(models) != s.Hosts || s.Hosts < 1 {
		return StudyResult{}, fmt.Errorf("pool: need %d demand models, have %d", s.Hosts, len(models))
	}
	if s.Epochs < 10 {
		return StudyResult{}, errors.New("pool: need at least 10 epochs")
	}
	if s.Quantile <= 0 || s.Quantile >= 1 {
		return StudyResult{}, errors.New("pool: quantile outside (0,1)")
	}
	perHost := make([][]float64, s.Hosts)
	agg := make([]float64, s.Epochs)
	for e := 0; e < s.Epochs; e++ {
		for h, m := range models {
			d := float64(m.Next())
			perHost[h] = append(perHost[h], d)
			agg[e] += d
		}
	}
	var res StudyResult
	q := s.Quantile * 100
	for h := 0; h < s.Hosts; h++ {
		res.StaticBytes += uint64(stats.Percentiles(perHost[h], q)[0])
		res.PooledLocalBytes += uint64(stats.Percentiles(perHost[h], 50)[0])
	}
	// The pool only absorbs the part of aggregate demand above the sum
	// of local provisioning.
	local := float64(res.PooledLocalBytes)
	excess := make([]float64, 0, s.Epochs)
	for _, a := range agg {
		e := a - local
		if e < 0 {
			e = 0
		}
		excess = append(excess, e)
	}
	sort.Float64s(excess)
	res.PooledCXLBytes = uint64(stats.Percentiles(excess, q)[0])
	pooledTotal := res.PooledLocalBytes + res.PooledCXLBytes
	if res.StaticBytes > 0 {
		res.SavingFrac = 1 - float64(pooledTotal)/float64(res.StaticBytes)
	}
	return res, nil
}

// --- performance interference ---

// Interference evaluates noisy-neighbor impact: victim and aggressor
// hosts share the pooled device; returns the victim's loaded latency
// with and without the aggressors.
func Interference(d *Device, victimGBps float64, aggressors int, aggressorGBps float64) (alone, shared float64) {
	path := memsim.NewPath(d.Name+"/victim", d.res)
	pl := memsim.SinglePath(path)
	mix := memsim.Mix{ReadFrac: 0.75}
	solo, _ := memsim.SolveOpen([]memsim.OpenFlow{{Placement: pl, Mix: mix, Offered: victimGBps}})
	flows := []memsim.OpenFlow{{Placement: pl, Mix: mix, Offered: victimGBps}}
	for i := 0; i < aggressors; i++ {
		flows = append(flows, memsim.OpenFlow{Placement: pl, Mix: mix, Offered: aggressorGBps})
	}
	all, _ := memsim.SolveOpen(flows)
	return solo[0].Latency, all[0].Latency
}
