package pool

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	d := NewDevice("mld0", 1<<30)
	if _, err := New(0, d); err == nil {
		t.Error("0 hosts should error")
	}
	if _, err := New(MaxHeads+1, d); err == nil {
		t.Error("beyond the CXL 2.0 MLD head limit should error")
	}
	if _, err := New(4); err == nil {
		t.Error("no devices should error")
	}
	if _, err := New(MaxHeads, d); err != nil {
		t.Errorf("16 heads is legal: %v", err)
	}
}

func TestAllocReleaseAccounting(t *testing.T) {
	d := NewDevice("mld0", 100)
	p, err := New(4, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(0, 60); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc(1, 40); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 100 || p.Capacity() != 100 {
		t.Fatalf("used=%d cap=%d", p.Used(), p.Capacity())
	}
	if p.HostUsage(0) != 60 || p.HostUsage(1) != 40 {
		t.Fatal("per-host accounting wrong")
	}
	p.Release(0, 30)
	if p.HostUsage(0) != 30 || p.Used() != 70 {
		t.Fatal("release accounting wrong")
	}
	// Over-release clamps.
	p.Release(0, 1000)
	if p.HostUsage(0) != 0 {
		t.Fatal("over-release should clamp to zero")
	}
}

func TestAllocExhaustionAtomic(t *testing.T) {
	a, b := NewDevice("mld0", 50), NewDevice("mld1", 50)
	p, _ := New(2, a, b)
	if err := p.Alloc(0, 80); err != nil { // spans both devices
		t.Fatal(err)
	}
	if a.Used()+b.Used() != 80 {
		t.Fatal("cross-device allocation accounting wrong")
	}
	err := p.Alloc(1, 30) // only 20 left
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// Failed alloc must not leak partial grants.
	if p.Used() != 80 || p.HostUsage(1) != 0 {
		t.Fatal("failed alloc leaked partial grants")
	}
}

func TestAllocEdgeCases(t *testing.T) {
	p, _ := New(2, NewDevice("mld0", 10))
	if err := p.Alloc(5, 1); err == nil {
		t.Error("unknown host should error")
	}
	if err := p.Alloc(0, 0); err != nil {
		t.Error("zero-byte alloc is a no-op")
	}
}

func TestPooledDeviceLatencyIncludesSwitch(t *testing.T) {
	pooled := NewDevice("mld0", 1<<30)
	if pooled.Resource().IdleRead <= 250.42 {
		t.Fatal("pooled device should add a switch hop over direct-attach CXL")
	}
	if pooled.Free() != 1<<30 {
		t.Fatal("fresh device should be all free")
	}
}

func TestProvisioningStudySavings(t *testing.T) {
	// 8 bursty hosts: pooling should provision substantially less than
	// per-host peak provisioning — the §7 / Pond argument.
	const hosts = 8
	models := make([]DemandModel, hosts)
	for h := range models {
		models[h] = NewLogNormalDemand(64<<30, 0.5, int64(h+1))
	}
	res, err := ProvisioningStudy{Hosts: hosts, Epochs: 4000, Quantile: 0.99}.Run(models)
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingFrac < 0.10 || res.SavingFrac > 0.60 {
		t.Fatalf("pooling saving = %.2f, want meaningful savings for bursty demand", res.SavingFrac)
	}
	if res.PooledCXLBytes == 0 {
		t.Fatal("bursty hosts need a non-empty pool")
	}
	if res.PooledLocalBytes >= res.StaticBytes {
		t.Fatal("median local provisioning must undercut p99 static provisioning")
	}
}

func TestProvisioningStudyValidation(t *testing.T) {
	m := []DemandModel{NewLogNormalDemand(1<<30, 0.3, 1)}
	cases := []ProvisioningStudy{
		{Hosts: 2, Epochs: 100, Quantile: 0.99}, // model count mismatch
		{Hosts: 1, Epochs: 5, Quantile: 0.99},   // too few epochs
		{Hosts: 1, Epochs: 100, Quantile: 1.5},  // bad quantile
	}
	for i, s := range cases {
		if _, err := s.Run(m); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestUniformDemandPoolsLittle(t *testing.T) {
	// Near-constant demand leaves nothing to pool: savings ≈ 0.
	const hosts = 4
	models := make([]DemandModel, hosts)
	for h := range models {
		models[h] = NewLogNormalDemand(64<<30, 0.01, int64(h+1))
	}
	res, err := ProvisioningStudy{Hosts: hosts, Epochs: 1000, Quantile: 0.99}.Run(models)
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingFrac > 0.08 {
		t.Fatalf("constant demand saving = %.3f, want ≈0", res.SavingFrac)
	}
}

func TestInterference(t *testing.T) {
	d := NewDevice("mld0", 1<<40)
	alone, shared := Interference(d, 10, 3, 14)
	if shared <= alone {
		t.Fatalf("aggressors must inflate victim latency: %v vs %v", alone, shared)
	}
	// Without aggressors the two must coincide.
	a2, s2 := Interference(d, 10, 0, 0)
	if a2 != s2 {
		t.Fatal("no aggressors should mean no interference")
	}
}

func TestDemandModelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid demand model should panic")
		}
	}()
	NewLogNormalDemand(0, 0.5, 1)
}

// Property: pool accounting conserves bytes across arbitrary
// alloc/release sequences.
func TestPropertyConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		p, _ := New(4, NewDevice("a", 1000), NewDevice("b", 500))
		ledger := map[int]uint64{}
		for _, op := range ops {
			host := int(op % 4)
			amount := uint64(op % 97)
			if op%2 == 0 {
				if err := p.Alloc(host, amount); err == nil {
					ledger[host] += amount
				}
			} else {
				rel := amount
				if rel > ledger[host] {
					rel = ledger[host]
				}
				p.Release(host, rel)
				ledger[host] -= rel
			}
			var total uint64
			for h, want := range ledger {
				if p.HostUsage(h) != want {
					return false
				}
				total += want
			}
			if p.Used() != total || p.Used() > p.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
