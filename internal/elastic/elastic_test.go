package elastic

import (
	"math"
	"testing"
)

func TestTable2Rows(t *testing.T) {
	rows := Table2()
	if len(rows) != 5 {
		t.Fatalf("Table 2 has 5 rows, got %d", len(rows))
	}
	// The paper's printed required-memory column: 0.64, 0.768, 1, 4.5,
	// 4.5 TB (it mixes decimal/binary units; we preserve it verbatim and
	// check our consistent computation stays within unit-mixing error).
	want := []float64{0.64, 0.768, 1, 4.5, 4.5}
	for i, r := range rows {
		if r.PublishedRequiredTB != want[i] {
			t.Errorf("%s: published required = %v, want %v", r.CPU, r.PublishedRequiredTB, want[i])
		}
		if rel := math.Abs(r.RequiredMemoryTB()-want[i]) / want[i]; rel > 0.03 {
			t.Errorf("%s: computed required %.3f deviates %.1f%% from published %.3f",
				r.CPU, r.RequiredMemoryTB(), rel*100, want[i])
		}
	}
}

func TestSierraForestGap(t *testing.T) {
	// §4.3: Sierra Forest supports 1152 vCPUs but ≤4 TB of memory,
	// "falling short of the typical 4.5 TB needed".
	var sf Processor
	for _, r := range Table2() {
		if r.CPU == "Sierra Forest" {
			sf = r
		}
	}
	if sf.MemoryGapTB() < 0.4 {
		t.Fatalf("Sierra Forest gap = %.2f TB, want ≈0.5", sf.MemoryGapTB())
	}
	if frac := sf.SellableVCPUFrac(); frac >= 1 {
		t.Fatal("Sierra Forest should strand vCPUs")
	}
	// Earlier parts have no gap.
	if Table2()[0].MemoryGapTB() != 0 || Table2()[0].SellableVCPUFrac() != 1 {
		t.Fatal("IceLake-SP should not be memory-gapped")
	}
}

func TestPaperRevenueExample(t *testing.T) {
	// §4.3.2: 1:3 ratio ⇒ only 75% of vCPUs sellable, 25% revenue loss;
	// 20% discount on CXL instances recovers ≈80% of the lost revenue —
	// "a 27% improvement in total revenue".
	m := PaperExample()
	if f := m.SellableFrac(); f != 0.75 {
		t.Fatalf("sellable fraction = %v, want 0.75", f)
	}
	if f := m.StrandedFrac(); f != 0.25 {
		t.Fatalf("stranded fraction = %v, want 0.25", f)
	}
	rec := m.RecoveredRevenueFrac()
	if math.Abs(rec-0.2667) > 0.001 {
		t.Fatalf("recovered revenue = %.4f, want ≈0.2667 (the paper's \"27%%\")", rec)
	}
	if !m.DiscountCoversPenalty() {
		t.Fatal("20% discount should cover the 12.5% CXL penalty")
	}
}

func TestDiscountPenaltyBoundary(t *testing.T) {
	m := PaperExample()
	m.CXLDiscount = 0.10 // below the 12.5% measured penalty
	if m.DiscountCoversPenalty() {
		t.Fatal("10% discount should not cover a 12.5% penalty")
	}
}

func TestPerfectProvisioningRecoversNothing(t *testing.T) {
	m := RevenueModel{GiBPerVCPU: 4, CXLDiscount: 0.2, CXLPerfPenalty: 0.125}
	if m.StrandedFrac() != 0 || m.RecoveredRevenueFrac() != 0 {
		t.Fatal("1:4 provisioning strands nothing")
	}
}

func TestValidationPanics(t *testing.T) {
	bad := []RevenueModel{
		{GiBPerVCPU: 0},
		{GiBPerVCPU: 5},
		{GiBPerVCPU: 3, CXLDiscount: 1.0},
		{GiBPerVCPU: 3, CXLPerfPenalty: 1.0},
	}
	for i, m := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			m.RecoveredRevenueFrac()
		}()
	}
}
