// Package elastic models the paper's elastic-compute analysis (§4.3):
// the vCPU-to-memory provisioning gap of upcoming high-core-count Xeons
// (Table 2), the revenue stranded when a server cannot back every vCPU
// with the canonical 1:4 vCPU:GiB ratio, and how CXL expansion recovers
// it by selling the remaining vCPUs on (slightly slower) CXL-backed
// memory at a discount.
package elastic

import "fmt"

// CanonicalGiBPerVCPU is the "optimal" vCPU:memory ratio the paper uses
// (1:4, per AWS instance guidelines).
const CanonicalGiBPerVCPU = 4

// Processor is one row of Table 2.
type Processor struct {
	Year        string
	CPU         string
	MaxVCPU     int
	Channels    string // memory channels per socket
	MaxMemoryTB float64
	// PublishedRequiredTB is the paper's printed "Required Memory (1:4)"
	// value. The paper mixes decimal and binary units across rows
	// (0.768 TB is 192×4 decimal GB; 4.5 TB is 1152×4 GiB in TiB), so
	// we keep the printed column verbatim and compute consistently in
	// RequiredMemoryTB.
	PublishedRequiredTB float64
}

// RequiredMemoryTB is the memory needed to sell every vCPU at 1:4, in
// TiB (computed consistently in binary units).
func (p Processor) RequiredMemoryTB() float64 {
	return float64(p.MaxVCPU) * CanonicalGiBPerVCPU / 1024
}

// MemoryGapTB is how far the platform falls short of the 1:4 requirement
// (0 when it does not).
func (p Processor) MemoryGapTB() float64 {
	gap := p.RequiredMemoryTB() - p.MaxMemoryTB
	if gap < 0 {
		return 0
	}
	return gap
}

// SellableVCPUFrac is the fraction of vCPUs sellable at the canonical
// ratio given the platform memory ceiling.
func (p Processor) SellableVCPUFrac() float64 {
	req := p.RequiredMemoryTB()
	if req <= p.MaxMemoryTB {
		return 1
	}
	return p.MaxMemoryTB / req
}

// Table2 returns the Intel processor series rows of Table 2.
func Table2() []Processor {
	return []Processor{
		{Year: "2021", CPU: "IceLake-SP", MaxVCPU: 160, Channels: "8xDDR4-3200", MaxMemoryTB: 4, PublishedRequiredTB: 0.64},
		{Year: "2022 (delayed)", CPU: "Sapphire Rapids", MaxVCPU: 192, Channels: "8xDDR5-4800", MaxMemoryTB: 4, PublishedRequiredTB: 0.768},
		{Year: "2023 (delayed)", CPU: "Emerald Rapids", MaxVCPU: 256, Channels: "8xDDR5-6400", MaxMemoryTB: 4, PublishedRequiredTB: 1},
		{Year: "2024+", CPU: "Sierra Forest", MaxVCPU: 1152, Channels: "12", MaxMemoryTB: 4, PublishedRequiredTB: 4.5},
		{Year: "2025+", CPU: "Clearwater Forest", MaxVCPU: 1152, Channels: "TBD", MaxMemoryTB: 4, PublishedRequiredTB: 4.5},
	}
}

// RevenueModel is the §4.3.2 analysis for one under-provisioned server.
type RevenueModel struct {
	// GiBPerVCPU is the server's actual provisioning ratio (the paper's
	// example: 1:3 ⇒ 3).
	GiBPerVCPU float64
	// CXLPerfPenalty is the measured slowdown of instances running on
	// CXL memory (the paper measures 12.5% for KeyDB YCSB-C, Fig. 8(b)).
	CXLPerfPenalty float64
	// CXLDiscount is the price discount offered on CXL-backed instances
	// (paper example: 20%).
	CXLDiscount float64
}

// PaperExample returns the §4.3.2 worked example: 1:3 provisioning,
// 12.5% CXL penalty, 20% discount.
func PaperExample() RevenueModel {
	return RevenueModel{GiBPerVCPU: 3, CXLPerfPenalty: 0.125, CXLDiscount: 0.20}
}

// validate panics on nonsensical parameters.
func (m RevenueModel) validate() {
	if m.GiBPerVCPU <= 0 || m.GiBPerVCPU > CanonicalGiBPerVCPU {
		panic(fmt.Sprintf("elastic: GiBPerVCPU %v outside (0,%d]", m.GiBPerVCPU, CanonicalGiBPerVCPU))
	}
	if m.CXLDiscount < 0 || m.CXLDiscount >= 1 {
		panic("elastic: discount outside [0,1)")
	}
	if m.CXLPerfPenalty < 0 || m.CXLPerfPenalty >= 1 {
		panic("elastic: perf penalty outside [0,1)")
	}
}

// SellableFrac is the fraction of vCPUs sellable at 1:4 without CXL
// (paper example: 75%).
func (m RevenueModel) SellableFrac() float64 {
	m.validate()
	return m.GiBPerVCPU / CanonicalGiBPerVCPU
}

// StrandedFrac is the revenue fraction lost without CXL (paper: 25%).
func (m RevenueModel) StrandedFrac() float64 { return 1 - m.SellableFrac() }

// RecoveredRevenueFrac is the extra revenue (relative to the non-CXL
// baseline revenue) from selling the stranded vCPUs on CXL memory at the
// discount: stranded × (1−discount) / sellable. The paper's example
// yields 0.25×0.8/0.75 ≈ 26.7% ("a 27% improvement in total revenue").
func (m RevenueModel) RecoveredRevenueFrac() float64 {
	m.validate()
	return m.StrandedFrac() * (1 - m.CXLDiscount) / m.SellableFrac()
}

// DiscountCoversPenalty reports whether the price discount at least
// compensates customers for the measured CXL performance penalty.
func (m RevenueModel) DiscountCoversPenalty() bool {
	m.validate()
	return m.CXLDiscount >= m.CXLPerfPenalty
}
