package kvstore

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"cxlsim/internal/fault"
	"cxlsim/internal/obs"
	"cxlsim/internal/workload"
)

func clusterFingerprint(t *testing.T, cc ClusterConfig) (string, *ClusterResult) {
	t.Helper()
	reg := obs.NewRegistry()
	cc.Metrics = reg
	res, err := RunCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "end=%.4f epochs=%d events=%d\n", res.EndNs, res.Epochs, res.Events)
	for i, r := range res.PerNode {
		fmt.Fprintf(&b, "node %d: tput=%.6f p50=%.4f p99=%.4f hit=%.6f fwd=%d to=%d rt=%d fl=%d mig=%d\n",
			i, r.ThroughputOpsPerSec, r.Latency.Percentile(50), r.Latency.Percentile(99),
			r.HitRate, r.Forwarded, r.Timeouts, r.Retries, r.Failed, r.Migrated)
	}
	m := res.Merged
	fmt.Fprintf(&b, "merged: tput=%.6f p50=%.4f p99=%.4f hit=%.6f fwd=%d to=%d rt=%d fl=%d\n",
		m.ThroughputOpsPerSec, m.Latency.Percentile(50), m.Latency.Percentile(99),
		m.HitRate, m.Forwarded, m.Timeouts, m.Retries, m.Failed)
	snap, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b.Write(snap)
	b.WriteByte('\n')
	return b.String(), res
}

func smallCluster(nodes, shards int) ClusterConfig {
	return ClusterConfig{
		Nodes:      nodes,
		Shards:     shards,
		Config:     ConfInter11,
		Deploy:     DeployOptions{SimKeys: 1 << 12},
		Mix:        workload.YCSBB,
		OpsPerNode: 1500,
		Seed:       42,
		RemoteFrac: 0.2,
	}
}

// TestClusterByteIdenticalAcrossShards is the cluster-level determinism
// gate: per-node results, the merged result, and the full merged metrics
// snapshot must be byte-identical at every shard count. make race-shard
// additionally runs this under the race detector.
func TestClusterByteIdenticalAcrossShards(t *testing.T) {
	want, res := clusterFingerprint(t, smallCluster(4, 1))
	if res.Merged.Forwarded == 0 {
		t.Fatalf("no ops crossed the fabric; determinism test is vacuous")
	}
	for _, shards := range []int{2, 3, 4} {
		got, gres := clusterFingerprint(t, smallCluster(4, shards))
		if gres.Shards != shards {
			t.Fatalf("ran with %d shards, want %d", gres.Shards, shards)
		}
		if got != want {
			t.Fatalf("shards=%d diverged from shards=1:\n%s", shards, firstClusterDiff(want, got))
		}
	}
}

// TestClusterByteIdenticalUnderFaults repeats the invariant with a fault
// schedule active — device degradation, re-solves, and timeout/retry
// traffic must not break shard-count invariance.
func TestClusterByteIdenticalUnderFaults(t *testing.T) {
	sched := &fault.Schedule{
		Faults: []fault.Fault{
			{At: 2e6, Duration: 30e6, Kind: fault.LinkDegrade, Target: "cxl", Severity: 0.9},
		},
		Client: &fault.Resilience{TimeoutNs: 3e5, BackoffNs: 1e5, MaxRetries: 2},
	}
	base := smallCluster(3, 1)
	base.Config = ConfInter13
	base.FaultSchedule = sched
	want, res := clusterFingerprint(t, base)
	if res.Merged.Forwarded == 0 {
		t.Fatalf("no ops crossed the fabric; test is vacuous")
	}
	if res.Merged.Timeouts == 0 {
		t.Logf("warning: fault schedule produced no timeouts (still checks determinism)")
	}
	for _, shards := range []int{2, 3} {
		cc := smallCluster(3, shards)
		cc.Config = ConfInter13
		cc.FaultSchedule = sched
		got, _ := clusterFingerprint(t, cc)
		if got != want {
			t.Fatalf("faulted shards=%d diverged from shards=1:\n%s", shards, firstClusterDiff(want, got))
		}
	}
}

func TestClusterSingleNodeDegeneratesToLocal(t *testing.T) {
	cc := smallCluster(1, 1)
	res, err := RunCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Forwarded != 0 {
		t.Fatalf("single-node cluster forwarded %d ops; all ops must be local", res.Merged.Forwarded)
	}
	if res.Merged.ThroughputOpsPerSec <= 0 {
		t.Fatalf("no throughput measured")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	for name, cc := range map[string]ClusterConfig{
		"zero nodes":      {Nodes: 0, Config: ConfMMEM, Mix: workload.YCSBB},
		"negative shards": {Nodes: 2, Shards: -1, Config: ConfMMEM, Mix: workload.YCSBB},
		"bad remote frac": {Nodes: 2, RemoteFrac: 1.5, Config: ConfMMEM, Mix: workload.YCSBB},
		"bad hop":         {Nodes: 2, HopNs: -1, Config: ConfMMEM, Mix: workload.YCSBB},
	} {
		if _, err := RunCluster(cc); err == nil {
			t.Fatalf("%s: RunCluster accepted invalid config", name)
		}
	}
}

func firstClusterDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			la, lb := al[i], bl[i]
			for j := 0; j < len(la) && j < len(lb); j++ {
				if la[j] != lb[j] {
					lo := j - 40
					if lo < 0 {
						lo = 0
					}
					ha, hb := j+40, j+40
					if ha > len(la) {
						ha = len(la)
					}
					if hb > len(lb) {
						hb = len(lb)
					}
					return fmt.Sprintf("line %d col %d:\n…%s…\nvs\n…%s…", i, j, la[lo:ha], lb[lo:hb])
				}
			}
			return fmt.Sprintf("line %d: %q vs %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}
