// Package kvstore models the paper's in-memory key-value store experiments
// (§4.1, §4.3): a KeyDB-like sharded store whose value heap lives in a vmm
// address space placed by one of the Table-1 configurations, with an
// optional KeyDB-FLASH-style SSD backend (RocksDB analogue) for data
// spilled past maxmemory.
//
// Scaling: the paper's 512 GB working set is 512 M × 1 KB records — too
// many to track individually. The store simulates SimKeys representative
// keys, each standing for BytesPerKey = WorkingSet/SimKeys bytes of real
// data; page placement, cache capacity, and bandwidth are all accounted
// at real scale while per-key state (CLOCK bits, residency) stays
// tractable.
//
// Key→page mapping preserves insertion-order locality (YCSB loads keys in
// order; KeyDB's allocator packs values roughly in insertion order), so
// Zipfian-hot keys cluster on hot pages — the property hot-page promotion
// exploits in §4.1.2.
package kvstore

import (
	"fmt"
	"math"
	"math/rand"

	"cxlsim/internal/lsm"
	"cxlsim/internal/memsim"
	"cxlsim/internal/sim"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// Cost-model constants for one KeyDB op (calibrated in EXPERIMENTS.md).
const (
	// softwareNs is the CPU-side cost of one op: epoll, RESP parsing,
	// dict lookup instructions, reply construction.
	softwareNs = 5000
	// streamMLP is the memory-level parallelism of the value copy.
	streamMLP = 8

	// Flash (RocksDB) path costs when a key misses memory.
	flashReadSoftwareNs  = 20000 // RocksDB Get: block index, decompression off
	flashWriteSoftwareNs = 6000  // WAL append + memtable insert, amortized compaction

	// flashCacheOverhead is the fraction of maxmemory consumed by the
	// Flash engine itself (RocksDB block cache, memtables, indexes)
	// rather than resident values, shrinking the effective key cache.
	flashCacheOverhead = 0.25

	// serviceSigma is the log-normal σ of per-op service-time jitter.
	serviceSigma = 0.25
)

// DefaultDepth estimates the serialized (pointer-chasing) memory accesses
// per op — dict buckets, robj headers, expiry checks, TLB/page-walk
// misses — as a function of working-set size. Calibrated log-linearly to
// the paper's two reported sensitivities: at 100 GB a CXL-bound store
// loses ≈12.5% throughput (Fig. 8(b), D≈3), at 512 GB interleaving costs
// 1.2–1.5× (Fig. 5(a), D≈40); larger heaps miss more levels of the
// cache/TLB hierarchy on every lookup.
func DefaultDepth(workingSetBytes uint64) float64 {
	const (
		refBytes = 100 << 30 // 100 GB anchor
		refDepth = 3.0
		bigBytes = 512 << 30 // 512 GB anchor
		bigDepth = 40.0
	)
	if workingSetBytes <= refBytes {
		return refDepth
	}
	frac := math.Log(float64(workingSetBytes)/float64(refBytes)) /
		math.Log(float64(bigBytes)/float64(refBytes))
	d := refDepth + (bigDepth-refDepth)*frac
	return d
}

// Store is one KeyDB-like instance.
type Store struct {
	cfg     StoreConfig
	machine *topology.Machine
	alloc   *vmm.Allocator
	space   *vmm.Space
	ssd     *memsim.Path

	resident  []bool  // key → in-memory?
	clockRef  []uint8 // CLOCK reference bits
	clockHand int
	memKeys   int // resident key count
	cacheCap  int // max resident keys (maxmemory)

	// Per-epoch traffic accumulators and the loaded-latency cache, all
	// indexed by node ID (the vmm.accumulateShares idiom): the epoch loop
	// touches them once per op, so a slice index instead of a pointer-map
	// probe removes both the hash cost and the per-epoch map churn.
	// epochNodes lists the distinct nodes charged this epoch in
	// first-touch order — a deterministic replacement for ranging over
	// map keys when the flows are built.
	paths          []*memsim.Path // node ID → socket path (lazy)
	nodeReadBytes  []float64      // node ID → bytes this epoch
	nodeWriteBytes []float64
	nodeTouched    []bool // node ID → present in epochNodes
	epochNodes     []*topology.Node
	ssdReadBytes   float64
	ssdWriteBytes  float64

	// Loaded latencies for the current epoch (ns), by node ID, plus
	// scratch for collecting the space's distinct resident nodes.
	nodeLatency   []float64
	residentSeen  []bool
	residentNodes []*topology.Node
	flowScratch   []memsim.OpenFlow
	ssdLatency    float64

	// Most recent epoch-solve utilization, by resource name, plus each
	// resource's best-case peak (GB/s) for bandwidth estimation.
	lastUtil map[string]float64
	lastPeak map[string]float64

	depth float64 // serialized accesses per op (cost model)
	lines float64 // value cachelines per op

	tree *lsm.Tree // non-nil when cfg.UseLSM

	spill *spillState // non-nil when cfg.SpillDir is set (durable mode)

	rng *rand.Rand // drives representative-key page sampling

	misses, hits uint64
}

// StoreConfig sizes and places a store.
type StoreConfig struct {
	WorkingSetBytes uint64  // total dataset (paper: 512 GB / 100 GB)
	SimKeys         int     // simulated representative keys
	MaxMemoryFrac   float64 // fraction of the working set allowed in memory (1.0 = all)
	Flash           bool    // spill past maxmemory to SSD (KeyDB-FLASH)
	Policy          vmm.Policy
	Socket          int     // where the server threads run
	ValueBytes      float64 // record size (0 ⇒ 1024, the paper's default)
	// DependentAccesses overrides the serialized access depth per op
	// (0 ⇒ DefaultDepth(WorkingSetBytes)).
	DependentAccesses float64
	// UseLSM backs the Flash path with the structural LSM-tree model
	// (internal/lsm) instead of the analytic RocksDB cost constants:
	// compaction I/O, bloom-filtered reads, and the block cache then
	// emerge from tree dynamics.
	UseLSM bool
	// SpillDir, when non-empty (requires Flash), backs the spill path
	// with a real on-disk durable log (internal/spill): writes persist
	// through it, read misses verify against it, and SSD brownouts from
	// the fault schedule switch it into shedding mode. See durable.go.
	SpillDir string
	// SpillSyncEvery is the durable tier's group-commit window
	// (records per fsync; 0 ⇒ 8).
	SpillSyncEvery int
}

// NewStore allocates the store's heap on the machine under the policy.
func NewStore(m *topology.Machine, alloc *vmm.Allocator, cfg StoreConfig) (*Store, error) {
	if cfg.SimKeys <= 0 {
		return nil, fmt.Errorf("kvstore: SimKeys must be positive")
	}
	if cfg.MaxMemoryFrac <= 0 || cfg.MaxMemoryFrac > 1 {
		return nil, fmt.Errorf("kvstore: MaxMemoryFrac %v outside (0,1]", cfg.MaxMemoryFrac)
	}
	if cfg.MaxMemoryFrac < 1 && !cfg.Flash {
		return nil, fmt.Errorf("kvstore: maxmemory < working set requires Flash")
	}
	s := &Store{
		cfg:      cfg,
		machine:  m,
		alloc:    alloc,
		space:    vmm.NewSpace(0),
		ssd:      m.SSDPath(),
		resident: make([]bool, cfg.SimKeys),
		clockRef: make([]uint8, cfg.SimKeys),
	}
	if cfg.ValueBytes == 0 {
		cfg.ValueBytes = 1024
	}
	s.cfg = cfg
	s.depth = cfg.DependentAccesses
	if s.depth == 0 {
		s.depth = DefaultDepth(cfg.WorkingSetBytes)
	}
	s.lines = cfg.ValueBytes / 64
	memBytes := uint64(float64(cfg.WorkingSetBytes) * cfg.MaxMemoryFrac)
	if err := alloc.Alloc(s.space, memBytes, cfg.Policy); err != nil {
		return nil, fmt.Errorf("kvstore: allocating %d bytes: %w", memBytes, err)
	}
	residentFrac := cfg.MaxMemoryFrac
	if cfg.Flash {
		residentFrac *= 1 - flashCacheOverhead
	}
	s.cacheCap = int(float64(cfg.SimKeys) * residentFrac)
	if s.cacheCap < 1 {
		s.cacheCap = 1
	}
	// Initially the hottest possible prefix is resident (YCSB load phase
	// populates in key order; with Flash the tail spills).
	for k := 0; k < s.cacheCap; k++ {
		s.resident[k] = true
	}
	s.memKeys = s.cacheCap
	s.rng = rand.New(rand.NewSource(1))
	if cfg.Flash && cfg.UseLSM {
		// Scale the memtable to the simulated keyspace (≈64 flushes over
		// a full load) so tree dynamics appear at any SimKeys scale.
		memtable := uint64(float64(cfg.SimKeys) * cfg.ValueBytes / 64)
		if memtable < 64<<10 {
			memtable = 64 << 10
		}
		if memtable > 64<<20 {
			memtable = 64 << 20
		}
		s.tree = lsm.New(lsm.Config{Seed: 7, MemtableBytes: memtable, BlockCacheBytes: 4 * memtable})
		// The load phase persisted every record; seed the tree with the
		// full keyspace so Gets have structure to hit.
		for k := uint64(0); k < uint64(cfg.SimKeys); k++ {
			s.tree.Put(k, int(s.cfg.ValueBytes))
		}
		s.tree.DrainIO() // load-phase I/O predates measurement
	}
	if cfg.SpillDir != "" {
		if !cfg.Flash {
			return nil, fmt.Errorf("kvstore: SpillDir requires a Flash configuration")
		}
		if err := s.openSpill(); err != nil {
			return nil, err
		}
	}
	s.refreshLatencies(nil)
	return s, nil
}

// Machine exposes the topology the store's heap lives on, so fault
// injectors can be built against the same device set.
func (s *Store) Machine() *topology.Machine { return s.machine }

// Resolve recomputes the store's cached per-node latencies from the
// devices' *current* parameters at idle load. Fault injectors call it on
// every fault transition so service times react immediately; the next
// epoch's EpochFlows re-solves with real traffic.
func (s *Store) Resolve() { s.refreshLatencies(nil) }

// LSMStats exposes the Flash tree's shape (nil-safe; zero without LSM).
func (s *Store) LSMStats() lsm.Stats {
	if s.tree == nil {
		return lsm.Stats{}
	}
	return s.tree.Stats()
}

// WarmCache converges the Flash resident set to the workload's hot keys
// before measurement (the paper measures steady state, not cold start).
// Hit/miss counters are reset afterwards. No-op without Flash.
func (s *Store) WarmCache(mix workload.YCSBMix, draws int, seed int64) {
	if !s.cfg.Flash {
		return
	}
	gen := workload.NewYCSB(mix, uint64(s.cfg.SimKeys), seed)
	for i := 0; i < draws; i++ {
		key := gen.Next().Key % uint64(s.cfg.SimKeys)
		if s.resident[key] {
			s.clockRef[key] = 1
		} else {
			s.admit(key)
		}
	}
	s.hits, s.misses = 0, 0
}

// Space exposes the heap for tiering daemons.
func (s *Store) Space() *vmm.Space { return s.space }

// SimKeys reports the simulated keyspace size, so front ends (RESP) can
// hash real keys into it.
func (s *Store) SimKeys() int { return s.cfg.SimKeys }

// BytesPerKey is the real bytes one simulated key stands for.
func (s *Store) BytesPerKey() float64 {
	return float64(s.cfg.WorkingSetBytes) / float64(s.cfg.SimKeys)
}

// pageOf maps a key access to a heap page. Each simulated key stands for
// BytesPerKey of real records laid out contiguously (insertion order), so
// an access samples uniformly within the key's byte range — without the
// sampling, representative keys would alias onto a fixed page stride and
// systematically dodge (or hit) interleaved CXL pages.
func (s *Store) pageOf(key uint64) int {
	span := s.BytesPerKey() * s.cfg.MaxMemoryFrac
	off := uint64(float64(key)*span + s.rng.Float64()*span)
	if off >= s.space.Bytes() {
		off = s.space.Bytes() - 1
	}
	return s.space.PageFor(off)
}

// growNode extends the node-ID-indexed scratch slices to cover id.
func (s *Store) growNode(id int) {
	for id >= len(s.nodeReadBytes) {
		s.nodeReadBytes = append(s.nodeReadBytes, 0)
		s.nodeWriteBytes = append(s.nodeWriteBytes, 0)
		s.nodeTouched = append(s.nodeTouched, false)
		s.nodeLatency = append(s.nodeLatency, 0)
		s.residentSeen = append(s.residentSeen, false)
		s.paths = append(s.paths, nil)
	}
}

// touchNode registers n as charged this epoch.
func (s *Store) touchNode(n *topology.Node) {
	s.growNode(n.ID)
	if !s.nodeTouched[n.ID] {
		s.nodeTouched[n.ID] = true
		s.epochNodes = append(s.epochNodes, n)
	}
}

// pathTo returns (cached) the path from the server socket to a node.
func (s *Store) pathTo(n *topology.Node) *memsim.Path {
	s.growNode(n.ID)
	if p := s.paths[n.ID]; p != nil {
		return p
	}
	p := s.machine.PathFrom(s.cfg.Socket, n)
	s.paths[n.ID] = p
	return p
}

// CacheCounts reports the cumulative in-memory hits and misses, so
// epoch-level deltas (per-window hit ratio) can be derived without
// touching the hot path.
func (s *Store) CacheCounts() (hits, misses uint64) { return s.hits, s.misses }

// HitRate reports the in-memory hit fraction so far.
func (s *Store) HitRate() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 1
	}
	return float64(s.hits) / float64(total)
}

// ServiceTime computes one op's server-side service time (ns) under the
// current epoch latencies, charges its traffic to the epoch accumulators,
// and updates cache + heat state.
func (s *Store) ServiceTime(op workload.Op, now sim.Time) float64 {
	key := op.Key % uint64(s.cfg.SimKeys)
	page := s.pageOf(key)
	node := s.space.Pages[page].Node
	s.growNode(node.ID)
	lat := s.nodeLatency[node.ID]
	if lat == 0 {
		lat = s.pathTo(node).IdleLatency(memsim.ReadOnly)
	}

	// Dict walk + value stream on the resident path. The log-normal
	// jitter models per-op variance (dict chain length, allocator state,
	// interrupt noise) and is what gives the latency CDFs of Fig. 5(c)
	// and Fig. 8(a) their spread.
	memNs := s.depth*lat + s.lines*lat/streamMLP
	t := (softwareNs + memNs) * math.Exp(s.rng.NormFloat64()*serviceSigma)
	s.space.Touch(page, s.depth+s.lines, now)

	read := op.Kind == workload.OpRead || op.Kind == workload.OpScan
	lineBytes := s.depth*64 + s.cfg.ValueBytes
	s.touchNode(node)
	if read {
		s.nodeReadBytes[node.ID] += lineBytes
	} else {
		s.nodeWriteBytes[node.ID] += lineBytes
	}

	if s.cfg.Flash {
		if !s.resident[key] {
			s.misses++
			if read {
				if s.tree != nil {
					// Structural LSM read: pay one SSD latency per
					// block that missed the tree's block cache.
					c := s.tree.Get(key)
					t += float64(c.SSDReads)*s.ssdLatency + flashReadSoftwareNs
					s.ssdReadBytes += float64(c.BlockBytes)
				} else {
					// Analytic RocksDB Get from SSD.
					t += s.ssdLatency + flashReadSoftwareNs
					s.ssdReadBytes += s.cfg.ValueBytes
				}
			}
			if read && s.spill != nil {
				// Durable mode: a miss read hits the spill tier; verify
				// the on-disk record self-identifies as this key.
				s.spillVerify(key)
			}
			// Writes of non-resident keys need no SSD read; both kinds
			// admit the key afterwards.
			s.admit(key)
		} else {
			s.hits++
			s.clockRef[key] = 1
		}
		if !read {
			// KeyDB-FLASH persists every write to disk.
			t += flashWriteSoftwareNs
			if s.tree != nil {
				c := s.tree.Put(key, int(s.cfg.ValueBytes))
				s.ssdWriteBytes += float64(c.WALBytes)
			} else {
				s.ssdWriteBytes += s.cfg.ValueBytes
			}
			if s.spill != nil {
				// Durable mode: the write persists through the real
				// on-disk log (or is shed during a brownout). Spill I/O
				// backs durability only; it never feeds into t.
				s.spillWrite(key)
			}
		}
	}
	return t
}

// admit brings a key into memory, evicting via CLOCK if at capacity.
func (s *Store) admit(key uint64) {
	if s.memKeys >= s.cacheCap {
		// CLOCK eviction.
		for {
			if s.resident[s.clockHand] {
				if s.clockRef[s.clockHand] == 0 {
					s.resident[s.clockHand] = false
					s.memKeys--
					s.clockHand = (s.clockHand + 1) % s.cfg.SimKeys
					break
				}
				s.clockRef[s.clockHand] = 0
			}
			s.clockHand = (s.clockHand + 1) % s.cfg.SimKeys
		}
	}
	s.resident[key] = true
	s.clockRef[key] = 1
	s.memKeys++
}

// EpochFlows converts the epoch's accumulated traffic into open flows and
// refreshes per-node loaded latencies; extraBytes (e.g. tiering migration
// traffic, by node pair) may be folded in by the caller beforehand via
// AddMigrationTraffic. epochNs scales bytes to bandwidth.
func (s *Store) EpochFlows(epochNs float64) {
	flows := s.flowScratch[:0]
	for _, n := range s.epochNodes {
		r, w := s.nodeReadBytes[n.ID], s.nodeWriteBytes[n.ID]
		total := r + w
		if total == 0 {
			continue
		}
		flows = append(flows, memsim.OpenFlow{
			Placement: memsim.SinglePath(s.pathTo(n)),
			Mix:       memsim.Mix{ReadFrac: r / total},
			Offered:   total / epochNs,
		})
	}
	if s.tree != nil {
		// Background flush/compaction traffic contends on the SSD.
		r, w := s.tree.DrainIO()
		s.ssdReadBytes += float64(r)
		s.ssdWriteBytes += float64(w)
	}
	ssdTotal := s.ssdReadBytes + s.ssdWriteBytes
	if ssdTotal > 0 {
		flows = append(flows, memsim.OpenFlow{
			Placement: memsim.SinglePath(s.ssd),
			Mix:       memsim.Mix{ReadFrac: s.ssdReadBytes / ssdTotal},
			Offered:   ssdTotal / epochNs,
		})
	}
	s.refreshLatencies(flows)
	s.flowScratch = flows[:0]

	for _, n := range s.epochNodes {
		s.nodeReadBytes[n.ID], s.nodeWriteBytes[n.ID] = 0, 0
		s.nodeTouched[n.ID] = false
	}
	s.epochNodes = s.epochNodes[:0]
	s.ssdReadBytes, s.ssdWriteBytes = 0, 0
}

// EpochUtilization returns the per-resource utilization snapshot from
// the most recent epoch solve (resource name → capacity fraction) and
// the matching best-case peak bandwidths (GB/s). The maps are live;
// callers must not mutate them. Nil before the first epoch.
func (s *Store) EpochUtilization() (util, peakGBps map[string]float64) {
	return s.lastUtil, s.lastPeak
}

// AddMigrationTraffic charges page-migration bytes (read from src, write
// to dst) into the epoch accumulators so tiering contends with the app.
func (s *Store) AddMigrationTraffic(src, dst *topology.Node, bytes float64) {
	s.touchNode(src)
	s.touchNode(dst)
	s.nodeReadBytes[src.ID] += bytes
	s.nodeWriteBytes[dst.ID] += bytes
}

// refreshLatencies solves the flows and caches per-node loaded latency.
func (s *Store) refreshLatencies(flows []memsim.OpenFlow) {
	var util memsim.Utilization
	if len(flows) > 0 {
		_, util = memsim.SolveOpen(flows)
	}
	// Retain a by-name copy for observability consumers (obs gauges,
	// pcm counters, trace timelines).
	if s.lastUtil == nil {
		s.lastUtil = map[string]float64{}
		s.lastPeak = map[string]float64{}
	}
	for r, u := range util {
		s.lastUtil[r.Name] = u
		s.lastPeak[r.Name] = r.Peak.Max()
	}
	nodes := s.residentNodes[:0]
	for i := range s.space.Pages {
		n := s.space.Pages[i].Node
		s.growNode(n.ID)
		if !s.residentSeen[n.ID] {
			s.residentSeen[n.ID] = true
			nodes = append(nodes, n)
		}
	}
	for _, n := range nodes {
		p := s.pathTo(n)
		lat := 0.0
		for _, r := range p.Resources {
			lat += r.LatencyForUtil(util[r], memsim.ReadOnly)
		}
		s.nodeLatency[n.ID] = lat
		s.residentSeen[n.ID] = false
	}
	s.residentNodes = nodes[:0]
	s.ssdLatency = 0
	for _, r := range s.ssd.Resources {
		s.ssdLatency += r.LatencyForUtil(util[r], memsim.ReadOnly)
	}
}
