package kvstore

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"cxlsim/internal/obs"
	"cxlsim/internal/resp"
	"cxlsim/internal/sim"
	"cxlsim/internal/spill"
	"cxlsim/internal/workload"
)

// RESPBackend serves the resp.Backend interface over a simulated Store
// and an optional durable spill tier — the bridge between wall-clock
// RESP clients (redis-cli, redis-benchmark) and the virtual-time
// service model.
//
// Division of labor:
//
//   - Real values live in an in-process map and, when a spill tier is
//     attached, in the Bitcask-style on-disk log — so data survives a
//     restart and GETs after recovery read through to disk.
//   - The Store prices every operation: the string key is FNV-hashed
//     into the simulated keyspace and charged through ServiceTime, so
//     placement policy, loaded memory latency, heat tracking, and the
//     Flash path all tick exactly as they do under the simulator. The
//     simulated nanoseconds accumulate on a virtual clock (exposed as
//     resp_virtual_time_ns) and feed the per-command latency
//     histograms; they do not delay the wall-clock reply.
//   - Every 10 virtual ms the accumulated traffic is folded through
//     EpochFlows, refreshing loaded latencies under the epoch's real
//     byte mix — the same co-simulation cadence as kvstore.Run.
//
// Brownout contract (the PR 4/8 playbook surfaced at the wire): while
// the degraded probe reports the spill device browned out, writes are
// rejected with -BUSY (counted in resp_shed_writes_total) and reads
// that would have to touch the disk log answer -LOADING; memory-resident
// reads keep serving.
//
// All methods are safe for concurrent use; one mutex serializes the
// store (the Store itself is single-threaded by contract).
type RESPBackend struct {
	mu    sync.Mutex
	store *Store
	tier  *spill.Dir // optional durable backing

	degraded func() bool // optional spill brownout probe

	vals map[string][]byte

	now       sim.Time // virtual clock, ns
	lastEpoch sim.Time
	shed      uint64

	latency *obs.HistogramVec
	vtimeG  *obs.Gauge
	keysG   *obs.Gauge
	shedC   *obs.Counter
}

// respEpochNs is the co-simulation epoch: how much virtual time elapses
// between EpochFlows resolutions (kvstore.Run's default cadence).
const respEpochNs = 10e6

// NewRESPBackend wraps st (required) and tier (optional) for RESP
// serving. The store prices operations; the tier persists them.
func NewRESPBackend(st *Store, tier *spill.Dir) *RESPBackend {
	return &RESPBackend{
		store: st,
		tier:  tier,
		vals:  map[string][]byte{},
	}
}

// SetDegraded installs the spill brownout probe (e.g. a fault
// injector's TargetDegraded("/ssd")). Nil-safe; consulted per request.
func (b *RESPBackend) SetDegraded(fn func() bool) { b.degraded = fn }

// Instrument publishes the backend's simulated-latency histograms,
// virtual clock, keyspace size, and shed-write counter into reg.
func (b *RESPBackend) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	b.latency = reg.HistogramVec(obs.MetricRESPServiceNs,
		"simulated per-command service time, ns", nil, "cmd")
	b.vtimeG = reg.Gauge(obs.MetricRESPVirtualTimeNs,
		"virtual time accumulated by the RESP backend, ns")
	b.keysG = reg.Gauge(obs.MetricRESPKeys, "live keys in the RESP keyspace")
	b.shedC = reg.Counter(obs.MetricRESPShedWrites,
		"RESP writes rejected with -BUSY during spill brownouts")
}

// brownedOut reports whether the durable tier is currently degraded.
func (b *RESPBackend) brownedOut() bool {
	return b.tier != nil && b.degraded != nil && b.degraded()
}

// errBusy is the write-path brownout reply; errLoading the read path's.
var (
	errBusy = resp.ReplyError(
		"BUSY spill tier browned out; durable writes are shed until the device heals")
	errLoading = resp.ReplyError(
		"LOADING spill tier browned out; key is not memory-resident")
)

// simKey hashes a client key into the simulated keyspace.
func (b *RESPBackend) simKey(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64() % uint64(b.store.SimKeys())
}

// charge prices one operation through the store's service-time model,
// advances the virtual clock, and resolves an epoch when due. Caller
// holds b.mu.
func (b *RESPBackend) charge(cmd string, kind workload.OpKind, key []byte) {
	t := b.store.ServiceTime(workload.Op{Kind: kind, Key: b.simKey(key)}, b.now)
	b.now += sim.Time(t)
	if b.now-b.lastEpoch >= respEpochNs {
		b.store.EpochFlows(float64(b.now - b.lastEpoch))
		b.lastEpoch = b.now
	}
	if b.latency != nil {
		b.latency.With(cmd).Observe(t)
		b.vtimeG.Set(float64(b.now))
	}
}

// checkKey bounds keys to what the durable tier can index. Empty keys
// are legal to Redis but unrepresentable in the spill log's record
// format, so durable mode rejects them.
func (b *RESPBackend) checkKey(key []byte) error {
	if b.tier != nil && len(key) == 0 {
		return resp.ReplyError("ERR empty keys are not supported in durable (-spill-dir) mode")
	}
	if len(key) > spill.MaxKeyLen {
		return resp.ReplyError(fmt.Sprintf("ERR key exceeds %d bytes", spill.MaxKeyLen))
	}
	return nil
}

// Get implements resp.Backend.
func (b *RESPBackend) Get(key []byte) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.get("get", key)
}

// get is the shared read path. Caller holds b.mu.
func (b *RESPBackend) get(cmd string, key []byte) ([]byte, bool, error) {
	if err := b.checkKey(key); err != nil {
		return nil, false, err
	}
	b.charge(cmd, workload.OpRead, key)
	if v, ok := b.vals[string(key)]; ok {
		return v, true, nil
	}
	if b.tier == nil || !b.tier.Has(key) {
		return nil, false, nil
	}
	// Disk-resident only (a previous process wrote it): read through,
	// unless the device is browned out.
	if b.brownedOut() {
		return nil, false, errLoading
	}
	v, ok, err := b.tier.Get(key)
	if err != nil {
		return nil, false, resp.ReplyError("BUSY spill tier error: " + err.Error())
	}
	if !ok {
		return nil, false, nil
	}
	b.vals[string(key)] = v
	return v, true, nil
}

// Set implements resp.Backend.
func (b *RESPBackend) Set(key, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.set("set", key, val)
}

// set is the shared write path. Caller holds b.mu.
func (b *RESPBackend) set(cmd string, key, val []byte) error {
	if err := b.checkKey(key); err != nil {
		return err
	}
	if len(val) > spill.MaxValLen {
		return resp.ReplyError(fmt.Sprintf("ERR value exceeds %d bytes", spill.MaxValLen))
	}
	if b.brownedOut() {
		b.shedWrite()
		return errBusy
	}
	if b.tier != nil {
		if err := b.tier.Put(key, val); err != nil {
			// Device failure mid-flight: same client contract as a
			// scheduled brownout.
			b.shedWrite()
			return resp.ReplyError("BUSY spill tier error: " + err.Error())
		}
	}
	b.charge(cmd, workload.OpUpdate, key)
	b.vals[string(key)] = append([]byte(nil), val...)
	if b.keysG != nil {
		b.keysG.Set(float64(len(b.vals)))
	}
	return nil
}

func (b *RESPBackend) shedWrite() {
	b.shed++
	if b.shedC != nil {
		b.shedC.Inc()
	}
}

// Del implements resp.Backend.
func (b *RESPBackend) Del(keys [][]byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.brownedOut() {
		b.shedWrite()
		return 0, errBusy
	}
	var n int64
	for _, key := range keys {
		if err := b.checkKey(key); err != nil {
			return n, err
		}
		_, inMem := b.vals[string(key)]
		onDisk := b.tier != nil && b.tier.Has(key)
		if !inMem && !onDisk {
			continue
		}
		if b.tier != nil {
			if err := b.tier.Delete(key); err != nil {
				b.shedWrite()
				return n, resp.ReplyError("BUSY spill tier error: " + err.Error())
			}
		}
		b.charge("del", workload.OpUpdate, key)
		delete(b.vals, string(key))
		n++
	}
	if b.keysG != nil {
		b.keysG.Set(float64(len(b.vals)))
	}
	return n, nil
}

// Exists implements resp.Backend. Pure index probe: no disk read, so it
// keeps answering during brownouts.
func (b *RESPBackend) Exists(keys [][]byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, key := range keys {
		if err := b.checkKey(key); err != nil {
			return n, err
		}
		b.charge("exists", workload.OpRead, key)
		if _, ok := b.vals[string(key)]; ok {
			n++
		} else if b.tier != nil && b.tier.Has(key) {
			n++
		}
	}
	return n, nil
}

// Incr implements resp.Backend.
func (b *RESPBackend) Incr(key []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok, err := b.get("incr", key)
	if err != nil {
		return 0, err
	}
	var n int64
	if ok {
		n, err = strconv.ParseInt(string(cur), 10, 64)
		if err != nil {
			return 0, resp.ReplyError("ERR value is not an integer or out of range")
		}
	}
	n++
	if err := b.set("incr", key, strconv.AppendInt(nil, n, 10)); err != nil {
		return 0, err
	}
	return n, nil
}

// MGet implements resp.Backend.
func (b *RESPBackend) MGet(keys [][]byte) ([][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]byte, len(keys))
	for i, key := range keys {
		v, ok, err := b.get("mget", key)
		if err != nil {
			return nil, err
		}
		if ok {
			out[i] = v
		}
	}
	return out, nil
}

// MSet implements resp.Backend.
func (b *RESPBackend) MSet(pairs [][]byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i+1 < len(pairs); i += 2 {
		if err := b.set("mset", pairs[i], pairs[i+1]); err != nil {
			return err
		}
	}
	return nil
}

// Info implements resp.Backend: a Redis-style INFO body covering the
// bridge between wall-clock serving and the virtual-time model.
func (b *RESPBackend) Info() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	hits, misses := b.store.CacheCounts()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Server\r\ncxlsim_resp_version:1\r\nredis_mode:standalone\r\n")
	fmt.Fprintf(&sb, "# Keyspace\r\ndb0:keys=%d,expires=0,avg_ttl=0\r\n", len(b.vals))
	fmt.Fprintf(&sb, "# Simulation\r\nvirtual_time_ns:%.0f\r\nsim_keys:%d\r\n",
		float64(b.now), b.store.SimKeys())
	fmt.Fprintf(&sb, "cache_hits:%d\r\ncache_misses:%d\r\nhit_rate:%.4f\r\n",
		hits, misses, b.store.HitRate())
	if b.tier != nil {
		st := b.tier.Stats()
		degraded := 0
		if b.brownedOut() {
			degraded = 1
		}
		fmt.Fprintf(&sb, "# Durability\r\nspill_live_keys:%d\r\nspill_segments:%d\r\n",
			st.LiveKeys, st.Segments)
		fmt.Fprintf(&sb, "spill_records_written:%d\r\nspill_degraded:%d\r\nspill_shed_writes:%d\r\n",
			st.RecordsWritten, degraded, b.shed)
	}
	return sb.String()
}

// VirtualNow reports the backend's virtual clock (ns).
func (b *RESPBackend) VirtualNow() sim.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.now
}

// ShedWrites reports writes rejected during brownouts.
func (b *RESPBackend) ShedWrites() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shed
}
