package kvstore

import (
	"strings"
	"testing"

	"cxlsim/internal/obs"
	"cxlsim/internal/resp"
	"cxlsim/internal/spill"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
)

// respStore builds a small priced store for RESP backend tests.
func respStore(t *testing.T) *Store {
	t.Helper()
	m := topology.Testbed()
	st, err := NewStore(m, vmm.NewAllocator(m), StoreConfig{
		WorkingSetBytes: 1 << 30,
		SimKeys:         1 << 10,
		MaxMemoryFrac:   1,
		Policy:          vmm.Bind{Nodes: m.DRAMNodes(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func openTier(t *testing.T, dir string) *spill.Dir {
	t.Helper()
	d, _, err := spill.Open(spill.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestRESPBackendSemantics covers the command semantics of the
// memory-only backend: set/get/del/exists/incr/mget/mset.
func TestRESPBackendSemantics(t *testing.T) {
	b := NewRESPBackend(respStore(t), nil)

	if _, ok, err := b.Get([]byte("nope")); ok || err != nil {
		t.Fatalf("get of missing key: ok=%v err=%v", ok, err)
	}
	if err := b.Set([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := b.Get([]byte("k")); !ok || string(v) != "v1" {
		t.Fatalf("get after set: %q ok=%v", v, ok)
	}
	if err := b.Set([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := b.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}

	if n, _ := b.Exists([][]byte{[]byte("k"), []byte("nope"), []byte("k")}); n != 2 {
		t.Fatalf("exists=%d, want 2", n)
	}

	for want := int64(1); want <= 3; want++ {
		n, err := b.Incr([]byte("ctr"))
		if err != nil || n != want {
			t.Fatalf("incr=%d err=%v, want %d", n, err, want)
		}
	}
	if _, err := b.Incr([]byte("k")); err == nil {
		t.Fatal("incr of non-integer value should fail")
	}

	if err := b.MSet([][]byte{[]byte("a"), []byte("1"), []byte("b"), []byte("2")}); err != nil {
		t.Fatal(err)
	}
	got, err := b.MGet([][]byte{[]byte("a"), []byte("nope"), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "1" || got[1] != nil || string(got[2]) != "2" {
		t.Fatalf("mget: %q", got)
	}

	if n, _ := b.Del([][]byte{[]byte("a"), []byte("nope"), []byte("b")}); n != 2 {
		t.Fatalf("del=%d, want 2", n)
	}
	if n, _ := b.Exists([][]byte{[]byte("a")}); n != 0 {
		t.Fatal("key survived del")
	}

	// Memory-only mode accepts empty keys (Redis-legal).
	if err := b.Set(nil, []byte("empty")); err != nil {
		t.Fatalf("empty key in memory mode: %v", err)
	}
}

// TestRESPBackendDurableRecovery pins the restart story: values written
// through one backend are readable from a fresh process (new tier, new
// backend) via disk read-through, and deletes persist too.
func TestRESPBackendDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir)
	b := NewRESPBackend(respStore(t), tier)

	if err := b.Set([]byte("stay"), []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := b.Set([]byte("gone"), []byte("deleted")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Del([][]byte{[]byte("gone")}); err != nil {
		t.Fatal(err)
	}
	// Empty keys are unrepresentable in the spill log: durable mode
	// must reject them rather than silently lose durability.
	if err := b.Set(nil, []byte("x")); err == nil {
		t.Fatal("durable mode accepted an empty key")
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": everything rebuilt from the directory.
	tier2 := openTier(t, dir)
	b2 := NewRESPBackend(respStore(t), tier2)
	v, ok, err := b2.Get([]byte("stay"))
	if err != nil || !ok || string(v) != "persisted" {
		t.Fatalf("recovered get: %q ok=%v err=%v", v, ok, err)
	}
	if _, ok, _ := b2.Get([]byte("gone")); ok {
		t.Fatal("deleted key resurrected after restart")
	}
	if n, _ := b2.Exists([][]byte{[]byte("stay"), []byte("gone")}); n != 1 {
		t.Fatalf("exists after restart=%d, want 1", n)
	}
}

// TestRESPBackendBrownout pins the wire-level brownout contract: writes
// shed with -BUSY, disk-resident reads answer -LOADING, memory-resident
// reads and index-only EXISTS keep serving.
func TestRESPBackendBrownout(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir)
	b := NewRESPBackend(respStore(t), tier)
	reg := obs.NewRegistry()
	b.Instrument(reg)

	degraded := false
	b.SetDegraded(func() bool { return degraded })

	if err := b.Set([]byte("hot"), []byte("in-memory")); err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	tier2 := openTier(t, dir)
	b2 := NewRESPBackend(respStore(t), tier2)
	b2.SetDegraded(func() bool { return degraded })
	reg2 := obs.NewRegistry()
	b2.Instrument(reg2)
	degraded = true

	// Writes shed with -BUSY.
	err := b2.Set([]byte("k"), []byte("v"))
	var re resp.ReplyError
	if !asReplyError(err, &re) || !strings.HasPrefix(string(re), "BUSY") {
		t.Fatalf("browned-out set: %v, want -BUSY", err)
	}
	if _, err := b2.Del([][]byte{[]byte("hot")}); err == nil {
		t.Fatal("browned-out del should fail")
	}
	if got := b2.ShedWrites(); got != 2 {
		t.Fatalf("shed writes=%d, want 2", got)
	}
	if f, ok := reg2.Snapshot().Find(obs.MetricRESPShedWrites); !ok || f.Metrics[0].Value != 2 {
		t.Fatal("resp_shed_writes_total not incremented")
	}

	// Disk-resident read answers -LOADING...
	_, _, err = b2.Get([]byte("hot"))
	if !asReplyError(err, &re) || !strings.HasPrefix(string(re), "LOADING") {
		t.Fatalf("browned-out disk read: %v, want -LOADING", err)
	}
	// ...but index-only EXISTS still serves.
	if n, err := b2.Exists([][]byte{[]byte("hot")}); err != nil || n != 1 {
		t.Fatalf("exists during brownout: n=%d err=%v", n, err)
	}
	// Memory-resident reads keep serving on the original backend.
	if v, ok, err := b.Get([]byte("hot")); err != nil || !ok || string(v) != "in-memory" {
		t.Fatalf("memory-resident read during brownout: %q ok=%v err=%v", v, ok, err)
	}

	// Heal: the shed write now lands and the disk read recovers.
	degraded = false
	if err := b2.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := b2.Get([]byte("hot")); !ok || string(v) != "in-memory" {
		t.Fatalf("read-through after heal: %q ok=%v", v, ok)
	}
}

func asReplyError(err error, out *resp.ReplyError) bool {
	re, ok := err.(resp.ReplyError)
	if ok {
		*out = re
	}
	return ok
}

// TestRESPBackendVirtualClock pins the virtual-time bridge: every
// command advances the simulated clock, epochs resolve on cadence, and
// INFO surfaces the bridge.
func TestRESPBackendVirtualClock(t *testing.T) {
	b := NewRESPBackend(respStore(t), nil)
	reg := obs.NewRegistry()
	b.Instrument(reg)

	if b.VirtualNow() != 0 {
		t.Fatal("virtual clock should start at zero")
	}
	key := []byte("k")
	if err := b.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	after1 := b.VirtualNow()
	if after1 <= 0 {
		t.Fatal("set did not advance the virtual clock")
	}
	for i := 0; i < 5000; i++ {
		b.Get(key)
	}
	after2 := b.VirtualNow()
	if after2 <= after1 {
		t.Fatal("reads did not advance the virtual clock")
	}
	// 5000 DRAM reads at ~hundreds of ns each crosses the 10 ms epoch
	// boundary at least once, so lastEpoch must have moved.
	if after2 > respEpochNs && b.lastEpoch == 0 {
		t.Fatal("epoch never resolved despite crossing the cadence")
	}

	snap := reg.Snapshot()
	if f, ok := snap.Find(obs.MetricRESPVirtualTimeNs); !ok || f.Metrics[0].Value <= 0 {
		t.Fatal("resp_virtual_time_ns gauge not published")
	}
	if f, ok := snap.Find(obs.MetricRESPServiceNs); !ok || len(f.Metrics) == 0 {
		t.Fatal("resp_command_service_ns histogram not published")
	}

	info := b.Info()
	for _, want := range []string{"virtual_time_ns:", "db0:keys=1", "hit_rate:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
}
