package kvstore

import (
	"fmt"

	"cxlsim/internal/fault"
	"cxlsim/internal/obs"
	"cxlsim/internal/sim"
	"cxlsim/internal/stats"
	"cxlsim/internal/tiering"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// OpSource produces the operation stream for a run; workload.YCSB and
// trace.Replayer both implement it.
type OpSource interface {
	Next() workload.Op
}

// RunConfig drives one YCSB run against a store (§4.1.1 methodology: a
// YCSB client on the baseline server issues closed-loop requests over the
// 100 Gbps network to a KeyDB instance with seven server-threads).
type RunConfig struct {
	Mix           workload.YCSBMix
	ClientThreads int // closed-loop YCSB client threads (default 32)
	ServerThreads int // KeyDB server-threads (default 7, §4.1.1)
	Ops           int // measured operations (default 50_000)
	WarmupOps     int // operations before measurement (default Ops/4)
	Seed          int64
	NetworkRTTNs  float64 // client↔server round trip (default 10 µs)

	// Source overrides the YCSB generator with an arbitrary operation
	// stream (e.g. a trace.Replayer); Mix is then only used for cache
	// warming.
	Source OpSource

	// Daemon, with its Tiers, enables kernel page placement during the
	// run (the Hot-Promote configuration).
	Daemon tiering.Daemon
	Tiers  tiering.Tiers

	EpochNs float64 // co-simulation epoch (default 10 ms)

	// Metrics, when non-nil, publishes the run's instrumentation into
	// the registry: per-op counters (kvstore_ops_total), the latency
	// histograms (which Result then shares), sim-kernel counters, and
	// per-resource utilization gauges. Use a fresh registry per run —
	// families are get-or-create, so reusing one accumulates across
	// runs and later Results alias earlier histograms.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a virtual-time timeline: one span
	// per measured op, tiering daemon tick spans, epoch utilization
	// counters, and sampled sim queue depth.
	Tracer *obs.Tracer
	// Windows, when non-nil, must wrap Metrics: the run flushes it on
	// every co-simulation epoch boundary and closes it at end of run, so
	// each window carries per-epoch rates, tail quantiles, hit ratio,
	// and degraded-node count. Requires Metrics.
	Windows *obs.Windows

	// Faults, when non-nil, installs the injector's schedule on the
	// run's engine: device parameters change mid-run, the store re-solves
	// on every transition, and the tiering daemon (if any) receives the
	// injector as its health source. The injector must be built against
	// the store's machine. Reset is called when the run ends so the
	// machine returns to its healthy calibration.
	Faults *fault.Injector

	// TimeoutNs enables client-side timeout accounting: an attempt whose
	// service time exceeds it is abandoned by the client (the server
	// thread still burns the full service time) and retried after an
	// exponential backoff, up to MaxRetries attempts. Zero disables
	// timeouts entirely — the healthy path is unchanged.
	TimeoutNs  float64
	BackoffNs  float64 // base retry backoff (default TimeoutNs)
	MaxRetries int     // retries after the first attempt (default 3; negative = none)
}

func (rc *RunConfig) fill() {
	if rc.ClientThreads == 0 {
		rc.ClientThreads = 32
	}
	if rc.ServerThreads == 0 {
		rc.ServerThreads = 7
	}
	if rc.Ops == 0 {
		rc.Ops = 50_000
	}
	if rc.WarmupOps == 0 {
		rc.WarmupOps = rc.Ops / 4
	}
	if rc.NetworkRTTNs == 0 {
		rc.NetworkRTTNs = 10_000
	}
	if rc.EpochNs == 0 {
		rc.EpochNs = 10e6
	}
	if rc.TimeoutNs > 0 {
		if rc.BackoffNs == 0 {
			rc.BackoffNs = rc.TimeoutNs
		}
		if rc.MaxRetries == 0 {
			rc.MaxRetries = 3
		}
		if rc.MaxRetries < 0 {
			rc.MaxRetries = 0
		}
	}
	if rc.ClientThreads < 1 || rc.ServerThreads < 1 || rc.Ops < 1 {
		panic(fmt.Sprintf("kvstore: invalid run config %+v", *rc))
	}
}

// Result is one YCSB run's measurements.
type Result struct {
	Config              string
	Workload            string
	ThroughputOpsPerSec float64
	// Latency is the client-observed op latency (queue + service + RTT).
	Latency *stats.Histogram
	// ReadLatency covers reads only (Fig. 8(a)'s CDF).
	ReadLatency *stats.Histogram
	HitRate     float64
	Migrated    uint64 // total page-migration traffic, bytes

	// Fault-run accounting (all zero on healthy runs).
	Timeouts uint64 // attempts abandoned past RunConfig.TimeoutNs
	Retries  uint64 // re-issues after a timeout
	Failed   uint64 // ops abandoned for good after MaxRetries
}

// P99Ms is a convenience accessor for tail-latency tables (Fig. 5(b)).
func (r Result) P99Ms() float64 { return r.Latency.Percentile(99) / 1e6 }

// Run executes one YCSB workload against the store, returning measured
// throughput and latency distributions. It is a discrete-event
// simulation: closed-loop clients feed a FIFO dispatch queue served by
// ServerThreads workers whose service times come from the store's cost
// model under the current epoch's loaded memory latencies.
func Run(store *Store, alloc *vmm.Allocator, rc RunConfig) Result {
	rc.fill()
	eng := sim.NewEngine()
	store.WarmCache(rc.Mix, 4*store.cfg.SimKeys, rc.Seed+991)
	var gen OpSource = rc.Source
	if gen == nil {
		gen = workload.NewYCSB(rc.Mix, uint64(store.cfg.SimKeys), rc.Seed)
	}

	res := Result{
		Workload:    rc.Mix.Name,
		Latency:     stats.NewLatencyHistogram(),
		ReadLatency: stats.NewLatencyHistogram(),
	}

	// Observability wiring. All sinks are optional; with both nil the
	// run is exactly the uninstrumented hot path.
	instrumented := rc.Metrics != nil || rc.Tracer != nil
	var (
		latH, readH *obs.Histogram
		opsC        *obs.CounterVec
	)
	if instrumented {
		eng.SetObserver(obs.NewKernelObserver(rc.Metrics, rc.Tracer, 0))
	}
	if rc.Metrics != nil {
		latH = rc.Metrics.Histogram("kvstore_op_latency_ns",
			"client-observed op latency (queue + service + RTT), ns", stats.NewLatencyHistogram)
		readH = rc.Metrics.Histogram("kvstore_read_latency_ns",
			"client-observed read latency, ns", stats.NewLatencyHistogram)
		opsC = rc.Metrics.CounterVec("kvstore_ops_total", "operations completed, by kind", "kind")
		// Result shares the registry's histograms so exposition and the
		// returned measurements are one source of truth.
		res.Latency = latH.Unwrap()
		res.ReadLatency = readH.Unwrap()
		if rc.Tracer != nil {
			// Tail observations capture their span ids, and the tracer's
			// drop count surfaces as an obs_* self-metric.
			latH.EnableExemplars(0.99)
			readH.EnableExemplars(0.99)
			rc.Metrics.TrackTracer(rc.Tracer)
		}
	}
	// Windowed tiering health: per-epoch cache hit/miss deltas and the
	// degraded-node count, sampled on the epoch ticker below.
	var (
		hitsC, missC         *obs.Counter
		degG                 *obs.Gauge
		prevHits, prevMisses uint64
	)
	if rc.Metrics != nil && store.HasSpill() {
		store.InstrumentSpill(rc.Metrics)
	}
	if rc.Metrics != nil {
		hitsC = rc.Metrics.Counter("kvstore_cache_hits_total", "in-memory cache hits, accumulated per epoch")
		missC = rc.Metrics.Counter("kvstore_cache_misses_total", "in-memory cache misses, accumulated per epoch")
		degG = rc.Metrics.Gauge(obs.MetricTierDegradedNodes, "tier nodes currently degraded by active faults")
		prevHits, prevMisses = store.CacheCounts()
	}
	daemon := rc.Daemon
	if instrumented && daemon != nil {
		daemon = obs.InstrumentDaemon(daemon, rc.Metrics, rc.Tracer)
	}
	if rc.Faults != nil {
		// Device parameters change inside the event loop: re-solve the
		// store's cached latencies on every transition and let the tiering
		// daemon route placement around degraded nodes. Reset on exit so
		// the machine leaves the run healthy.
		rc.Faults.Install(eng)
		rc.Faults.OnChange(func(sim.Time) { store.Resolve() })
		if store.HasSpill() {
			// SSD brownouts from the same schedule switch the durable
			// spill tier into shedding mode; healing triggers catch-up.
			rc.Faults.OnChange(func(sim.Time) {
				store.SetSpillHealthy(!rc.Faults.TargetDegraded("/ssd"))
			})
		}
		if rc.Metrics != nil {
			rc.Faults.Instrument(rc.Metrics)
		}
		if rc.Tracer != nil {
			rc.Faults.SetTracer(rc.Tracer)
		}
		if hs, ok := daemon.(tiering.HealthSetter); ok {
			hs.SetHealth(rc.Faults)
		}
		rc.Tiers.Health = rc.Faults
		defer rc.Faults.Reset()
	}

	rl := &runLoop{
		eng:        eng,
		store:      store,
		rc:         &rc,
		gen:        gen,
		res:        &res,
		latH:       latH,
		readH:      readH,
		opsC:       opsC,
		free:       rc.ServerThreads,
		totalOps:   rc.Ops + rc.WarmupOps,
		inflight:   make([]pendingOp, rc.ServerThreads),
		slots:      make([]uint64, rc.ServerThreads),
		timeoutNs:  rc.TimeoutNs,
		backoffNs:  rc.BackoffNs,
		maxRetries: rc.MaxRetries,
	}
	for i := range rl.slots {
		rl.slots[i] = uint64(i)
	}
	if rc.Metrics != nil && rc.TimeoutNs > 0 {
		rl.toC = rc.Metrics.Counter(obs.MetricKVTimeouts, "attempts abandoned past the client timeout")
		rl.rtC = rc.Metrics.Counter(obs.MetricKVRetries, "op re-issues after a timeout")
		rl.flC = rc.Metrics.Counter(obs.MetricKVFailed, "ops abandoned after exhausting retries")
		rl.backoffH = rc.Metrics.Histogram(obs.MetricKVBackoff,
			"retry backoff waits, ns", stats.NewLatencyHistogram)
	}

	// Epoch ticker: resolve memory contention, run the tiering daemon,
	// age heat.
	ticker := eng.Every(sim.Time(rc.EpochNs), func(now sim.Time) {
		if daemon != nil {
			rep := daemon.Tick(now, store.Space(), alloc)
			res.Migrated += rep.TotalBytes()
			chargeMigration(store, rc.Tiers, rep)
		}
		store.EpochFlows(rc.EpochNs)
		store.Space().DecayHeat(0.5)
		if instrumented {
			util, peaks := store.EpochUtilization()
			obs.RecordUtilization(rc.Metrics, rc.Tracer, now, util, peaks)
		}
		if rc.Metrics != nil {
			hits, misses := store.CacheCounts()
			hitsC.Add(float64(hits - prevHits))
			missC.Add(float64(misses - prevMisses))
			prevHits, prevMisses = hits, misses
			degG.Set(float64(rc.Tiers.DegradedCount()))
		}
		// Seal windows last so the epoch's own metrics land in the
		// window ending here.
		rc.Windows.Flush(now)
	})

	for i := 0; i < rc.ClientThreads; i++ {
		rl.queue = append(rl.queue, pendingOp{op: gen.Next(), issue: 0})
	}
	rl.inflightOps = rc.ClientThreads
	rl.dispatch(0)
	for rl.completed < rl.totalOps && eng.Step() {
	}
	ticker.Stop()
	end := eng.Now()
	rc.Windows.Close(end)

	elapsed := float64(end - rl.measureStart)
	if elapsed > 0 && rl.measuredOps > 0 {
		res.ThroughputOpsPerSec = float64(rl.measuredOps) / (elapsed / 1e9)
	}
	res.HitRate = store.HitRate()
	return res
}

type pendingOp struct {
	op    workload.Op
	issue sim.Time
	// attempt counts timeouts already suffered; abandoned marks a slot
	// whose client gave up — the completion event only frees the thread.
	attempt   int
	abandoned bool
}

// runLoop is the closed-loop client/server state machine for one Run. It
// implements sim.Handler so op completions are scheduled through the
// engine's allocation-free handler path: the uint64 event argument names
// an in-flight slot (one per server thread) instead of a captured
// closure, and the dispatch queue is drained with a head index so
// steady-state operation recycles one backing array.
type runLoop struct {
	eng         *sim.Engine
	store       *Store
	rc          *RunConfig
	gen         OpSource
	res         *Result
	latH, readH *obs.Histogram
	opsC        *obs.CounterVec

	queue        []pendingOp
	head         int // queue[head:] is the live FIFO
	free         int // idle server threads
	totalOps     int
	completed    int
	measureStart sim.Time
	measuredOps  int

	// inflightOps counts generated-but-not-finally-completed ops: queued,
	// on a server thread, or waiting out a retry backoff. The generation
	// guard completed+inflightOps < totalOps reduces to the pre-retry
	// queue+busy expression when timeouts are disabled.
	inflightOps int

	inflight []pendingOp // per-server-thread op storage, indexed by slot
	slots    []uint64    // free slot stack

	// Client resilience (zero values = disabled, the healthy hot path).
	timeoutNs, backoffNs float64
	maxRetries           int
	toC, rtC, flC        *obs.Counter
	backoffH             *obs.Histogram
}

// HandleEvent implements sim.Handler: one server thread finishes the op
// in slot arg.
func (rl *runLoop) HandleEvent(now sim.Time, arg uint64) {
	p := rl.inflight[arg]
	rl.slots = append(rl.slots, arg)
	rl.free++
	if p.abandoned {
		// The client already timed this attempt out; the event only marks
		// the server thread free again after burning the service time.
		rl.dispatch(now)
		return
	}
	rc := rl.rc
	rl.completed++
	rl.inflightOps--
	if rl.completed == rc.WarmupOps {
		rl.measureStart = now
	}
	if rl.opsC != nil {
		rl.opsC.With(p.op.Kind.String()).Inc()
	}
	if rl.completed > rc.WarmupOps {
		rl.measuredOps++
		l := float64(now-p.issue) + rc.NetworkRTTNs
		kind := p.op.Kind.String()
		spanID := rc.Tracer.SpanWithID("kvstore", kind, p.issue, now, nil)
		ex := obs.Exemplar{AtNs: float64(now), SpanID: spanID, Track: "kvstore", Span: kind}
		if rl.latH != nil {
			rl.latH.ObserveExemplar(l, ex)
		} else {
			rl.res.Latency.Add(l)
		}
		if p.op.Kind == workload.OpRead {
			if rl.readH != nil {
				rl.readH.ObserveExemplar(l, ex)
			} else {
				rl.res.ReadLatency.Add(l)
			}
		}
	}
	rl.generate(now)
	rl.dispatch(now)
}

// generate feeds the closed loop: one fresh op per final completion,
// until totalOps have been generated (completed+inflightOps counts every
// op generated so far).
func (rl *runLoop) generate(now sim.Time) {
	if rl.completed+rl.inflightOps < rl.totalOps {
		rl.queue = append(rl.queue, pendingOp{op: rl.gen.Next(), issue: now})
		rl.inflightOps++
	}
}

func (rl *runLoop) dispatch(now sim.Time) {
	for rl.free > 0 && rl.head < len(rl.queue) {
		p := rl.queue[rl.head]
		rl.head++
		if rl.head == len(rl.queue) {
			// Drained: rewind so the backing array is reused.
			rl.queue = rl.queue[:0]
			rl.head = 0
		}
		rl.free--
		svc := rl.store.ServiceTime(p.op, now)
		slot := rl.slots[len(rl.slots)-1]
		rl.slots = rl.slots[:len(rl.slots)-1]
		if rl.timeoutNs > 0 && svc > rl.timeoutNs {
			rl.clientTimeout(p, now, slot, svc)
			continue
		}
		rl.inflight[slot] = p
		rl.eng.AtHandler(now+sim.Time(svc), rl, slot)
	}
}

// clientTimeout handles an attempt whose service time exceeds the client
// timeout: the server thread still burns the full service time (the work
// is wasted, which is what makes degraded devices expensive), while the
// client abandons at the deadline and either re-queues the op after an
// exponential backoff or gives up for good after MaxRetries.
func (rl *runLoop) clientTimeout(p pendingOp, now sim.Time, slot uint64, svc float64) {
	rl.inflight[slot] = pendingOp{abandoned: true}
	rl.eng.AtHandler(now+sim.Time(svc), rl, slot)
	rl.res.Timeouts++
	if rl.toC != nil {
		rl.toC.Inc()
	}
	deadline := now + sim.Time(rl.timeoutNs)
	p.attempt++
	if p.attempt > rl.maxRetries {
		rl.eng.At(deadline, rl.finishFailed)
		return
	}
	rl.res.Retries++
	if rl.rtC != nil {
		rl.rtC.Inc()
	}
	backoff := rl.backoffNs * float64(uint64(1)<<uint(p.attempt-1))
	if rl.backoffH != nil {
		rl.backoffH.Observe(backoff)
	}
	pp := p
	rl.eng.At(deadline+sim.Time(backoff), func(t sim.Time) { rl.requeue(pp, t) })
}

func (rl *runLoop) requeue(p pendingOp, now sim.Time) {
	rl.queue = append(rl.queue, p)
	rl.dispatch(now)
}

// finishFailed finally completes an op that exhausted its retries. The
// failure still releases the closed-loop client, so a fresh op is
// generated; failed ops do not count toward measured throughput or the
// latency distributions.
func (rl *runLoop) finishFailed(now sim.Time) {
	rl.completed++
	rl.inflightOps--
	rl.res.Failed++
	if rl.flC != nil {
		rl.flC.Inc()
	}
	if rl.completed == rl.rc.WarmupOps {
		rl.measureStart = now
	}
	rl.generate(now)
	rl.dispatch(now)
}

// chargeMigration books a tick's migration traffic against the store's
// epoch accumulators (reads from the source tier, writes to the target).
func chargeMigration(store *Store, tiers tiering.Tiers, rep tiering.Report) {
	if len(tiers.Fast) == 0 || len(tiers.Slow) == 0 {
		return
	}
	if rep.PromotedBytes > 0 {
		store.AddMigrationTraffic(tiers.Slow[0], tiers.Fast[0], float64(rep.PromotedBytes))
	}
	if rep.DemotedBytes > 0 {
		store.AddMigrationTraffic(tiers.Fast[0], tiers.Slow[0], float64(rep.DemotedBytes))
	}
}

// --- Table 1 configurations (§4.1.1) ---

// ConfigName identifies a Table-1 system configuration.
type ConfigName string

// The seven configurations of Table 1.
const (
	ConfMMEM       ConfigName = "MMEM"
	ConfMMEMSSD02  ConfigName = "MMEM-SSD-0.2"
	ConfMMEMSSD04  ConfigName = "MMEM-SSD-0.4"
	ConfInter31    ConfigName = "3:1"
	ConfInter11    ConfigName = "1:1"
	ConfInter13    ConfigName = "1:3"
	ConfHotPromote ConfigName = "Hot-Promote"
)

// Table1Configs lists the configurations in the paper's figure order.
func Table1Configs() []ConfigName {
	return []ConfigName{
		ConfMMEM, ConfMMEMSSD02, ConfMMEMSSD04,
		ConfInter31, ConfInter11, ConfInter13, ConfHotPromote,
	}
}

// Deployment is a fully-built Table-1 configuration ready to run.
type Deployment struct {
	Name    ConfigName
	Machine *topology.Machine
	Alloc   *vmm.Allocator
	Store   *Store
	Daemon  tiering.Daemon
	Tiers   tiering.Tiers
}

// DeployOptions sizes a deployment.
type DeployOptions struct {
	WorkingSetBytes uint64 // default 512 GB (§4.1.1)
	SimKeys         int    // default 1<<20
	// SpillDir enables the durable on-disk spill tier (Flash
	// configurations only — MMEM-SSD-*; an error otherwise).
	SpillDir string
}

func (o *DeployOptions) fill() {
	if o.WorkingSetBytes == 0 {
		o.WorkingSetBytes = 512 << 30
	}
	if o.SimKeys == 0 {
		o.SimKeys = 1 << 20
	}
}

// Deploy builds one Table-1 configuration on a fresh testbed machine
// (SNC disabled, as in §4.1.1).
func Deploy(name ConfigName, opts DeployOptions) (*Deployment, error) {
	opts.fill()
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	dram := m.DRAMNodes(0) // server threads and memory on socket 0
	cxl := m.CXLNodes()
	allDRAM := append(append([]*topology.Node{}, dram...), m.DRAMNodes(1)...)

	cfg := StoreConfig{
		WorkingSetBytes: opts.WorkingSetBytes,
		SimKeys:         opts.SimKeys,
		MaxMemoryFrac:   1,
	}
	d := &Deployment{Name: name, Machine: m, Alloc: alloc}

	switch name {
	case ConfMMEM:
		cfg.Policy = vmm.Bind{Nodes: allDRAM}
	case ConfMMEMSSD02:
		cfg.MaxMemoryFrac, cfg.Flash = 0.8, true
		cfg.Policy = vmm.Bind{Nodes: allDRAM}
	case ConfMMEMSSD04:
		cfg.MaxMemoryFrac, cfg.Flash = 0.6, true
		cfg.Policy = vmm.Bind{Nodes: allDRAM}
	case ConfInter31:
		cfg.Policy = vmm.InterleaveNM{Top: allDRAM, Low: cxl, N: 3, M: 1}
	case ConfInter11:
		cfg.Policy = vmm.InterleaveNM{Top: allDRAM, Low: cxl, N: 1, M: 1}
	case ConfInter13:
		cfg.Policy = vmm.InterleaveNM{Top: allDRAM, Low: cxl, N: 1, M: 3}
	case ConfHotPromote:
		// §4.1.1: numactl distributes half the dataset to CXL and caps
		// main-memory usage at half the dataset size; the hot-page
		// promotion patches then migrate. We cap DRAM by reserving the
		// remainder before allocating.
		reserve := vmm.NewSpace(0)
		capBytes := opts.WorkingSetBytes / 2
		if err := reserveAllBut(alloc, reserve, dram[0], capBytes); err != nil {
			return nil, err
		}
		cfg.Policy = vmm.InterleaveNM{Top: dram[:1], Low: cxl, N: 1, M: 1}
		tiers := tiering.Tiers{Fast: dram[:1], Slow: cxl}
		d.Tiers = tiers
		d.Daemon = &tiering.HotPromote{
			Tiers: tiers,
			// 128 MB per 10 ms epoch ≈ a 12.8 GB/s migration ceiling,
			// the order of the patch's promote rate limit.
			RateLimitBytes: 128 << 20,
			AutoThreshold:  true,
		}
	default:
		return nil, fmt.Errorf("kvstore: unknown configuration %q", name)
	}

	if opts.SpillDir != "" {
		if !cfg.Flash {
			return nil, fmt.Errorf("kvstore: spill dir set but %s has no SSD tier (use an MMEM-SSD configuration)", name)
		}
		cfg.SpillDir = opts.SpillDir
	}
	st, err := NewStore(m, alloc, cfg)
	if err != nil {
		return nil, fmt.Errorf("kvstore: deploying %s: %w", name, err)
	}
	d.Store = st
	return d, nil
}

// reserveAllBut fills node n except for keep bytes, emulating a cgroup/
// numactl cap on usable main memory.
func reserveAllBut(alloc *vmm.Allocator, space *vmm.Space, n *topology.Node, keep uint64) error {
	if n.Capacity <= keep {
		return nil
	}
	return alloc.Alloc(space, n.Capacity-keep, vmm.Bind{Nodes: []*topology.Node{n}})
}

// RunConfigFor builds the standard run configuration for a deployment.
func (d *Deployment) RunConfigFor(mix workload.YCSBMix, seed int64) RunConfig {
	return RunConfig{Mix: mix, Seed: seed, Daemon: d.Daemon, Tiers: d.Tiers}
}

// InstallFaults builds a fault injector for the deployment's machine and
// returns it; wire it into a run via RunConfig.Faults (RunConfigFor with
// a schedule does both). The injector is single-run: build a fresh
// deployment per faulted run.
func (d *Deployment) InstallFaults(s *fault.Schedule) (*fault.Injector, error) {
	return fault.NewInjector(s, d.Machine)
}

// RunConfigWithFaults is RunConfigFor plus fault wiring: the schedule is
// installed on the run and its client resilience policy (if any) enables
// timeout/retry accounting.
func (d *Deployment) RunConfigWithFaults(mix workload.YCSBMix, seed int64, s *fault.Schedule) (RunConfig, error) {
	rc := d.RunConfigFor(mix, seed)
	if s == nil {
		return rc, nil
	}
	inj, err := d.InstallFaults(s)
	if err != nil {
		return rc, err
	}
	rc.Faults = inj
	pol := s.ClientPolicy()
	rc.TimeoutNs = pol.TimeoutNs
	rc.BackoffNs = pol.BackoffNs
	rc.MaxRetries = pol.MaxRetries
	return rc, nil
}

// Warm drives the deployment to its steady state before measurement: it
// replays epochs of workload heat and daemon ticks without the DES, the
// way the paper lets each configuration run until placement converges
// before recording. No-op for daemon-less configurations.
func (d *Deployment) Warm(mix workload.YCSBMix, epochs, drawsPerEpoch int, seed int64) {
	if d.Daemon == nil {
		return
	}
	gen := workload.NewYCSB(mix, uint64(d.Store.cfg.SimKeys), seed)
	space := d.Store.Space()
	var now sim.Time
	for e := 0; e < epochs; e++ {
		now += sim.Millisecond * 10
		// Same heat weight per op as ServiceTime, so warm-phase heat and
		// measurement-phase heat are on one scale.
		weight := d.Store.depth + d.Store.lines
		for i := 0; i < drawsPerEpoch; i++ {
			op := gen.Next()
			space.Touch(d.Store.pageOf(op.Key%uint64(d.Store.cfg.SimKeys)), weight, now)
		}
		d.Daemon.Tick(now, space, d.Alloc)
		space.DecayHeat(0.5)
	}
}
