package kvstore

import (
	"fmt"
	"math/rand"

	"cxlsim/internal/fault"
	"cxlsim/internal/obs"
	"cxlsim/internal/sim"
	"cxlsim/internal/stats"
	"cxlsim/internal/tiering"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// OpSource produces the operation stream for a run; workload.YCSB and
// trace.Replayer both implement it.
type OpSource interface {
	Next() workload.Op
}

// RunConfig drives one YCSB run against a store (§4.1.1 methodology: a
// YCSB client on the baseline server issues closed-loop requests over the
// 100 Gbps network to a KeyDB instance with seven server-threads).
type RunConfig struct {
	Mix           workload.YCSBMix
	ClientThreads int // closed-loop YCSB client threads (default 32)
	ServerThreads int // KeyDB server-threads (default 7, §4.1.1)
	Ops           int // measured operations (default 50_000)
	WarmupOps     int // operations before measurement (default Ops/4)
	Seed          int64
	NetworkRTTNs  float64 // client↔server round trip (default 10 µs)

	// Source overrides the YCSB generator with an arbitrary operation
	// stream (e.g. a trace.Replayer); Mix is then only used for cache
	// warming.
	Source OpSource

	// Daemon, with its Tiers, enables kernel page placement during the
	// run (the Hot-Promote configuration).
	Daemon tiering.Daemon
	Tiers  tiering.Tiers

	EpochNs float64 // co-simulation epoch (default 10 ms)

	// Metrics, when non-nil, publishes the run's instrumentation into
	// the registry: per-op counters (kvstore_ops_total), the latency
	// histograms (which Result then shares), sim-kernel counters, and
	// per-resource utilization gauges. Use a fresh registry per run —
	// families are get-or-create, so reusing one accumulates across
	// runs and later Results alias earlier histograms.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a virtual-time timeline: one span
	// per measured op, tiering daemon tick spans, epoch utilization
	// counters, and sampled sim queue depth.
	Tracer *obs.Tracer
	// Windows, when non-nil, must wrap Metrics: the run flushes it on
	// every co-simulation epoch boundary and closes it at end of run, so
	// each window carries per-epoch rates, tail quantiles, hit ratio,
	// and degraded-node count. Requires Metrics.
	Windows *obs.Windows

	// Faults, when non-nil, installs the injector's schedule on the
	// run's engine: device parameters change mid-run, the store re-solves
	// on every transition, and the tiering daemon (if any) receives the
	// injector as its health source. The injector must be built against
	// the store's machine. Reset is called when the run ends so the
	// machine returns to its healthy calibration.
	Faults *fault.Injector

	// TimeoutNs enables client-side timeout accounting: an attempt whose
	// service time exceeds it is abandoned by the client (the server
	// thread still burns the full service time) and retried after an
	// exponential backoff, up to MaxRetries attempts. Zero disables
	// timeouts entirely — the healthy path is unchanged.
	TimeoutNs  float64
	BackoffNs  float64 // base retry backoff (default TimeoutNs)
	MaxRetries int     // retries after the first attempt (default 3; negative = none)
}

func (rc *RunConfig) fill() {
	if rc.ClientThreads == 0 {
		rc.ClientThreads = 32
	}
	if rc.ServerThreads == 0 {
		rc.ServerThreads = 7
	}
	if rc.Ops == 0 {
		rc.Ops = 50_000
	}
	if rc.WarmupOps == 0 {
		rc.WarmupOps = rc.Ops / 4
	}
	if rc.NetworkRTTNs == 0 {
		rc.NetworkRTTNs = 10_000
	}
	if rc.EpochNs == 0 {
		rc.EpochNs = 10e6
	}
	if rc.TimeoutNs > 0 {
		if rc.BackoffNs == 0 {
			rc.BackoffNs = rc.TimeoutNs
		}
		if rc.MaxRetries == 0 {
			rc.MaxRetries = 3
		}
		if rc.MaxRetries < 0 {
			rc.MaxRetries = 0
		}
	}
	if rc.ClientThreads < 1 || rc.ServerThreads < 1 || rc.Ops < 1 {
		panic(fmt.Sprintf("kvstore: invalid run config %+v", *rc))
	}
}

// Result is one YCSB run's measurements.
type Result struct {
	Config              string
	Workload            string
	ThroughputOpsPerSec float64
	// Latency is the client-observed op latency (queue + service + RTT).
	Latency *stats.Histogram
	// ReadLatency covers reads only (Fig. 8(a)'s CDF).
	ReadLatency *stats.Histogram
	HitRate     float64
	Migrated    uint64 // total page-migration traffic, bytes

	// Fault-run accounting (all zero on healthy runs).
	Timeouts uint64 // attempts abandoned past RunConfig.TimeoutNs
	Retries  uint64 // re-issues after a timeout
	Failed   uint64 // ops abandoned for good after MaxRetries

	// Forwarded counts ops this node originated but another cluster node
	// owned and served (always zero outside RunCluster).
	Forwarded uint64
}

// P99Ms is a convenience accessor for tail-latency tables (Fig. 5(b)).
func (r Result) P99Ms() float64 { return r.Latency.Percentile(99) / 1e6 }

// Run executes one YCSB workload against the store, returning measured
// throughput and latency distributions. It is a discrete-event
// simulation: closed-loop clients feed a FIFO dispatch queue served by
// ServerThreads workers whose service times come from the store's cost
// model under the current epoch's loaded memory latencies.
func Run(store *Store, alloc *vmm.Allocator, rc RunConfig) Result {
	rc.fill()
	eng := sim.NewEngine()
	sr := startRun(eng, store, alloc, &rc, nil, 0)
	for sr.rl.completed < sr.rl.totalOps && eng.Step() {
	}
	return sr.finish(eng.Now())
}

// startedRun is one node's in-flight run: Run drives it on a plain
// engine, RunCluster on one shard of a ShardedEngine.
type startedRun struct {
	rl     *runLoop
	ticker *sim.Ticker
}

// startRun wires observability, faults, and the closed-loop state machine
// onto eng and seeds the initial client window. cl/nodeID attach the loop
// to a cluster run (nil/0 for single-node Run). rc must already be filled.
func startRun(eng *sim.Engine, store *Store, alloc *vmm.Allocator, rc *RunConfig, cl *clusterRun, nodeID int) *startedRun {
	store.WarmCache(rc.Mix, 4*store.cfg.SimKeys, rc.Seed+991)
	var gen OpSource = rc.Source
	if gen == nil {
		gen = workload.NewYCSB(rc.Mix, uint64(store.cfg.SimKeys), rc.Seed)
	}

	res := Result{
		Workload:    rc.Mix.Name,
		Latency:     stats.NewLatencyHistogram(),
		ReadLatency: stats.NewLatencyHistogram(),
	}

	// Observability wiring. All sinks are optional; with both nil the
	// run is exactly the uninstrumented hot path.
	instrumented := rc.Metrics != nil || rc.Tracer != nil
	var (
		latH, readH *obs.Histogram
		opsC        *obs.CounterVec
	)
	if instrumented && cl == nil {
		// Kernel metrics are engine-scoped, and under RunCluster several
		// partitions share one engine (how many depends on the shard
		// count), so installing per-node observers would both misattribute
		// events and break shard-count invariance. Cluster runs report
		// kernel totals through ClusterResult.Events instead.
		eng.SetObserver(obs.NewKernelObserver(rc.Metrics, rc.Tracer, 0))
	}
	if rc.Metrics != nil {
		latH = rc.Metrics.Histogram("kvstore_op_latency_ns",
			"client-observed op latency (queue + service + RTT), ns", stats.NewLatencyHistogram)
		readH = rc.Metrics.Histogram("kvstore_read_latency_ns",
			"client-observed read latency, ns", stats.NewLatencyHistogram)
		opsC = rc.Metrics.CounterVec("kvstore_ops_total", "operations completed, by kind", "kind")
		// Result shares the registry's histograms so exposition and the
		// returned measurements are one source of truth.
		res.Latency = latH.Unwrap()
		res.ReadLatency = readH.Unwrap()
		if rc.Tracer != nil {
			// Tail observations capture their span ids, and the tracer's
			// drop count surfaces as an obs_* self-metric.
			latH.EnableExemplars(0.99)
			readH.EnableExemplars(0.99)
			rc.Metrics.TrackTracer(rc.Tracer)
		}
	}
	// Windowed tiering health: per-epoch cache hit/miss deltas and the
	// degraded-node count, sampled on the epoch ticker below.
	var (
		hitsC, missC         *obs.Counter
		degG                 *obs.Gauge
		prevHits, prevMisses uint64
	)
	if rc.Metrics != nil && store.HasSpill() {
		store.InstrumentSpill(rc.Metrics)
	}
	if rc.Metrics != nil {
		hitsC = rc.Metrics.Counter("kvstore_cache_hits_total", "in-memory cache hits, accumulated per epoch")
		missC = rc.Metrics.Counter("kvstore_cache_misses_total", "in-memory cache misses, accumulated per epoch")
		degG = rc.Metrics.Gauge(obs.MetricTierDegradedNodes, "tier nodes currently degraded by active faults")
		prevHits, prevMisses = store.CacheCounts()
	}
	daemon := rc.Daemon
	if instrumented && daemon != nil {
		daemon = obs.InstrumentDaemon(daemon, rc.Metrics, rc.Tracer)
	}
	if rc.Faults != nil {
		// Device parameters change inside the event loop: re-solve the
		// store's cached latencies on every transition and let the tiering
		// daemon route placement around degraded nodes. Reset on exit so
		// the machine leaves the run healthy.
		rc.Faults.Install(eng)
		rc.Faults.OnChange(func(sim.Time) { store.Resolve() })
		if store.HasSpill() {
			// SSD brownouts from the same schedule switch the durable
			// spill tier into shedding mode; healing triggers catch-up.
			rc.Faults.OnChange(func(sim.Time) {
				store.SetSpillHealthy(!rc.Faults.TargetDegraded("/ssd"))
			})
		}
		if rc.Metrics != nil {
			rc.Faults.Instrument(rc.Metrics)
		}
		if rc.Tracer != nil {
			rc.Faults.SetTracer(rc.Tracer)
		}
		if hs, ok := daemon.(tiering.HealthSetter); ok {
			hs.SetHealth(rc.Faults)
		}
		rc.Tiers.Health = rc.Faults
	}

	rl := &runLoop{
		eng:        eng,
		store:      store,
		rc:         rc,
		gen:        gen,
		cl:         cl,
		nodeID:     nodeID,
		res:        &res,
		latH:       latH,
		readH:      readH,
		opsC:       opsC,
		free:       rc.ServerThreads,
		totalOps:   rc.Ops + rc.WarmupOps,
		inflight:   make([]pendingOp, rc.ServerThreads),
		slots:      make([]uint64, rc.ServerThreads),
		timeoutNs:  rc.TimeoutNs,
		backoffNs:  rc.BackoffNs,
		maxRetries: rc.MaxRetries,
	}
	for i := range rl.slots {
		rl.slots[i] = uint64(i)
	}
	if rc.Metrics != nil && rc.TimeoutNs > 0 {
		rl.toC = rc.Metrics.Counter(obs.MetricKVTimeouts, "attempts abandoned past the client timeout")
		rl.rtC = rc.Metrics.Counter(obs.MetricKVRetries, "op re-issues after a timeout")
		rl.flC = rc.Metrics.Counter(obs.MetricKVFailed, "ops abandoned after exhausting retries")
		rl.backoffH = rc.Metrics.Histogram(obs.MetricKVBackoff,
			"retry backoff waits, ns", stats.NewLatencyHistogram)
	}
	if cl != nil {
		// Destination draws ride the node's own RNG: picks depend only on
		// this node's local event order, which the sharded engine keeps
		// invariant across shard counts.
		rl.destRng = rand.New(rand.NewSource(rc.Seed*31 + 12347))
		if rc.Metrics != nil {
			rl.fwdC = rc.Metrics.Counter("kvstore_remote_forwarded_total",
				"ops forwarded to their owning node over the cluster fabric")
		}
	}

	// Epoch ticker: resolve memory contention, run the tiering daemon,
	// age heat.
	ticker := eng.Every(sim.Time(rc.EpochNs), func(now sim.Time) {
		if daemon != nil {
			rep := daemon.Tick(now, store.Space(), alloc)
			res.Migrated += rep.TotalBytes()
			chargeMigration(store, rc.Tiers, rep)
		}
		store.EpochFlows(rc.EpochNs)
		store.Space().DecayHeat(0.5)
		if instrumented {
			util, peaks := store.EpochUtilization()
			obs.RecordUtilization(rc.Metrics, rc.Tracer, now, util, peaks)
		}
		if rc.Metrics != nil {
			hits, misses := store.CacheCounts()
			hitsC.Add(float64(hits - prevHits))
			missC.Add(float64(misses - prevMisses))
			prevHits, prevMisses = hits, misses
			degG.Set(float64(rc.Tiers.DegradedCount()))
		}
		// Seal windows last so the epoch's own metrics land in the
		// window ending here.
		rc.Windows.Flush(now)
	})

	for i := 0; i < rc.ClientThreads; i++ {
		p := pendingOp{op: gen.Next(), issue: 0, dest: nodeID}
		if cl != nil {
			p.dest = cl.pickDest(rl)
		}
		rl.queue = append(rl.queue, p)
	}
	rl.inflightOps = rc.ClientThreads
	rl.dispatch(0)
	return &startedRun{rl: rl, ticker: ticker}
}

// finish stops the epoch ticker, seals windows, resets faults, and
// computes the run's measurements as of virtual time end.
func (sr *startedRun) finish(end sim.Time) Result {
	rl := sr.rl
	rc := rl.rc
	sr.ticker.Stop()
	rc.Windows.Close(end)
	res := *rl.res
	elapsed := float64(end - rl.measureStart)
	if elapsed > 0 && rl.measuredOps > 0 {
		res.ThroughputOpsPerSec = float64(rl.measuredOps) / (elapsed / 1e9)
	}
	res.HitRate = rl.store.HitRate()
	if rc.Faults != nil {
		rc.Faults.Reset()
	}
	return res
}

type pendingOp struct {
	op    workload.Op
	issue sim.Time
	// attempt counts timeouts already suffered; abandoned marks a slot
	// whose client gave up — the completion event only frees the thread.
	attempt   int
	abandoned bool

	// Cluster routing (only meaningful under RunCluster). dest is the node
	// that owns and serves the op — equal to the originating node for local
	// ops, so the single-node zero value is always "local". fromRemote
	// marks an op that arrived over the fabric; origin is then the node
	// whose client is waiting on it.
	dest       int
	fromRemote bool
	origin     int
}

// runLoop is the closed-loop client/server state machine for one Run. It
// implements sim.Handler so op completions are scheduled through the
// engine's allocation-free handler path: the uint64 event argument names
// an in-flight slot (one per server thread) instead of a captured
// closure, and the dispatch queue is drained with a head index so
// steady-state operation recycles one backing array.
type runLoop struct {
	eng         *sim.Engine
	store       *Store
	rc          *RunConfig
	gen         OpSource
	res         *Result
	latH, readH *obs.Histogram
	opsC        *obs.CounterVec

	queue        []pendingOp
	head         int // queue[head:] is the live FIFO
	free         int // idle server threads
	totalOps     int
	completed    int
	measureStart sim.Time
	measuredOps  int

	// inflightOps counts generated-but-not-finally-completed ops: queued,
	// on a server thread, or waiting out a retry backoff. The generation
	// guard completed+inflightOps < totalOps reduces to the pre-retry
	// queue+busy expression when timeouts are disabled.
	inflightOps int

	inflight []pendingOp // per-server-thread op storage, indexed by slot
	slots    []uint64    // free slot stack

	// Client resilience (zero values = disabled, the healthy hot path).
	timeoutNs, backoffNs float64
	maxRetries           int
	toC, rtC, flC        *obs.Counter
	backoffH             *obs.Histogram

	// Cluster wiring (nil/zero outside RunCluster; every check below is
	// guarded by cl != nil so the single-node hot path is unchanged).
	cl      *clusterRun
	nodeID  int
	destRng *rand.Rand
	fwdC    *obs.Counter
}

// HandleEvent implements sim.Handler: one server thread finishes the op
// in slot arg.
func (rl *runLoop) HandleEvent(now sim.Time, arg uint64) {
	p := rl.inflight[arg]
	rl.slots = append(rl.slots, arg)
	rl.free++
	if p.abandoned {
		// The client already timed this attempt out; the event only marks
		// the server thread free again after burning the service time.
		rl.dispatch(now)
		return
	}
	if rl.cl != nil && p.fromRemote {
		// Served on behalf of another node: ship the response home; the
		// origin does the completion accounting when it arrives.
		rl.cl.respond(rl, p, now)
		rl.dispatch(now)
		return
	}
	rl.completeOp(p, now)
}

// completeOp finishes one of this node's own ops: local completions call
// it straight from HandleEvent, remote completions when the response
// message arrives back from the serving node.
func (rl *runLoop) completeOp(p pendingOp, now sim.Time) {
	rc := rl.rc
	rl.completed++
	rl.inflightOps--
	if rl.completed == rc.WarmupOps {
		rl.measureStart = now
	}
	if rl.opsC != nil {
		rl.opsC.With(p.op.Kind.String()).Inc()
	}
	if rl.completed > rc.WarmupOps {
		rl.measuredOps++
		l := float64(now-p.issue) + rc.NetworkRTTNs
		kind := p.op.Kind.String()
		spanID := rc.Tracer.SpanWithID("kvstore", kind, p.issue, now, nil)
		ex := obs.Exemplar{AtNs: float64(now), SpanID: spanID, Track: "kvstore", Span: kind}
		if rl.latH != nil {
			rl.latH.ObserveExemplar(l, ex)
		} else {
			rl.res.Latency.Add(l)
		}
		if p.op.Kind == workload.OpRead {
			if rl.readH != nil {
				rl.readH.ObserveExemplar(l, ex)
			} else {
				rl.res.ReadLatency.Add(l)
			}
		}
	}
	rl.generate(now)
	rl.dispatch(now)
}

// generate feeds the closed loop: one fresh op per final completion,
// until totalOps have been generated (completed+inflightOps counts every
// op generated so far).
func (rl *runLoop) generate(now sim.Time) {
	if rl.completed+rl.inflightOps < rl.totalOps {
		p := pendingOp{op: rl.gen.Next(), issue: now, dest: rl.nodeID}
		if rl.cl != nil {
			p.dest = rl.cl.pickDest(rl)
		}
		rl.queue = append(rl.queue, p)
		rl.inflightOps++
	}
}

func (rl *runLoop) dispatch(now sim.Time) {
	for rl.head < len(rl.queue) {
		p := rl.queue[rl.head]
		if rl.cl != nil && p.dest != rl.nodeID && !p.fromRemote {
			// Another node owns this op: forwarding needs the fabric, not a
			// server thread, so it leaves the queue even when all threads
			// are busy.
			rl.advanceHead()
			rl.cl.forward(rl, p, now)
			continue
		}
		if rl.free == 0 {
			break
		}
		rl.advanceHead()
		rl.free--
		svc := rl.store.ServiceTime(p.op, now)
		slot := rl.slots[len(rl.slots)-1]
		rl.slots = rl.slots[:len(rl.slots)-1]
		if rl.timeoutNs > 0 && svc > rl.timeoutNs {
			rl.clientTimeout(p, now, slot, svc)
			continue
		}
		rl.inflight[slot] = p
		rl.eng.AtHandler(now+sim.Time(svc), rl, slot)
	}
}

// advanceHead consumes the queue head, rewinding the backing array once
// drained so steady-state operation reuses it.
func (rl *runLoop) advanceHead() {
	rl.head++
	if rl.head == len(rl.queue) {
		rl.queue = rl.queue[:0]
		rl.head = 0
	}
}

// clientTimeout handles an attempt whose service time exceeds the client
// timeout: the server thread still burns the full service time (the work
// is wasted, which is what makes degraded devices expensive), while the
// client abandons at the deadline and either re-queues the op after an
// exponential backoff or gives up for good after MaxRetries.
func (rl *runLoop) clientTimeout(p pendingOp, now sim.Time, slot uint64, svc float64) {
	rl.inflight[slot] = pendingOp{abandoned: true}
	rl.eng.AtHandler(now+sim.Time(svc), rl, slot)
	if rl.cl != nil && p.fromRemote {
		// The deadline fires here (the serving node tracks the attempt),
		// but the waiting client lives on the origin: notify it one hop
		// after the deadline and let it do all retry bookkeeping.
		rl.cl.respondTimeout(rl, p, now)
		return
	}
	rl.res.Timeouts++
	if rl.toC != nil {
		rl.toC.Inc()
	}
	deadline := now + sim.Time(rl.timeoutNs)
	p.attempt++
	if p.attempt > rl.maxRetries {
		rl.eng.At(deadline, rl.finishFailed)
		return
	}
	rl.res.Retries++
	if rl.rtC != nil {
		rl.rtC.Inc()
	}
	backoff := rl.backoffNs * float64(uint64(1)<<uint(p.attempt-1))
	if rl.backoffH != nil {
		rl.backoffH.Observe(backoff)
	}
	pp := p
	rl.eng.At(deadline+sim.Time(backoff), func(t sim.Time) { rl.requeue(pp, t) })
}

func (rl *runLoop) requeue(p pendingOp, now sim.Time) {
	rl.queue = append(rl.queue, p)
	rl.dispatch(now)
}

// remoteTimedOut runs on the origin when a timeout notification arrives
// back over the fabric: the same retry bookkeeping clientTimeout does for
// local ops, except now is already past the deadline (the hop was paid),
// so the failure or the backoff starts here. The retried op keeps its
// destination — the owner does not change — and clears fromRemote so
// dispatch re-forwards it.
func (rl *runLoop) remoteTimedOut(p pendingOp, now sim.Time) {
	rl.res.Timeouts++
	if rl.toC != nil {
		rl.toC.Inc()
	}
	p.attempt++
	if p.attempt > rl.maxRetries {
		rl.finishFailed(now)
		return
	}
	rl.res.Retries++
	if rl.rtC != nil {
		rl.rtC.Inc()
	}
	backoff := rl.backoffNs * float64(uint64(1)<<uint(p.attempt-1))
	if rl.backoffH != nil {
		rl.backoffH.Observe(backoff)
	}
	p.fromRemote = false
	pp := p
	rl.eng.At(now+sim.Time(backoff), func(t sim.Time) { rl.requeue(pp, t) })
}

// finishFailed finally completes an op that exhausted its retries. The
// failure still releases the closed-loop client, so a fresh op is
// generated; failed ops do not count toward measured throughput or the
// latency distributions.
func (rl *runLoop) finishFailed(now sim.Time) {
	rl.completed++
	rl.inflightOps--
	rl.res.Failed++
	if rl.flC != nil {
		rl.flC.Inc()
	}
	if rl.completed == rl.rc.WarmupOps {
		rl.measureStart = now
	}
	rl.generate(now)
	rl.dispatch(now)
}

// chargeMigration books a tick's migration traffic against the store's
// epoch accumulators (reads from the source tier, writes to the target).
func chargeMigration(store *Store, tiers tiering.Tiers, rep tiering.Report) {
	if len(tiers.Fast) == 0 || len(tiers.Slow) == 0 {
		return
	}
	if rep.PromotedBytes > 0 {
		store.AddMigrationTraffic(tiers.Slow[0], tiers.Fast[0], float64(rep.PromotedBytes))
	}
	if rep.DemotedBytes > 0 {
		store.AddMigrationTraffic(tiers.Fast[0], tiers.Slow[0], float64(rep.DemotedBytes))
	}
}

// --- Table 1 configurations (§4.1.1) ---

// ConfigName identifies a Table-1 system configuration.
type ConfigName string

// The seven configurations of Table 1.
const (
	ConfMMEM       ConfigName = "MMEM"
	ConfMMEMSSD02  ConfigName = "MMEM-SSD-0.2"
	ConfMMEMSSD04  ConfigName = "MMEM-SSD-0.4"
	ConfInter31    ConfigName = "3:1"
	ConfInter11    ConfigName = "1:1"
	ConfInter13    ConfigName = "1:3"
	ConfHotPromote ConfigName = "Hot-Promote"
)

// Table1Configs lists the configurations in the paper's figure order.
func Table1Configs() []ConfigName {
	return []ConfigName{
		ConfMMEM, ConfMMEMSSD02, ConfMMEMSSD04,
		ConfInter31, ConfInter11, ConfInter13, ConfHotPromote,
	}
}

// Deployment is a fully-built Table-1 configuration ready to run.
type Deployment struct {
	Name    ConfigName
	Machine *topology.Machine
	Alloc   *vmm.Allocator
	Store   *Store
	Daemon  tiering.Daemon
	Tiers   tiering.Tiers
}

// DeployOptions sizes a deployment.
type DeployOptions struct {
	WorkingSetBytes uint64 // default 512 GB (§4.1.1)
	SimKeys         int    // default 1<<20
	// SpillDir enables the durable on-disk spill tier (Flash
	// configurations only — MMEM-SSD-*; an error otherwise).
	SpillDir string
}

func (o *DeployOptions) fill() {
	if o.WorkingSetBytes == 0 {
		o.WorkingSetBytes = 512 << 30
	}
	if o.SimKeys == 0 {
		o.SimKeys = 1 << 20
	}
}

// Deploy builds one Table-1 configuration on a fresh testbed machine
// (SNC disabled, as in §4.1.1).
func Deploy(name ConfigName, opts DeployOptions) (*Deployment, error) {
	opts.fill()
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	dram := m.DRAMNodes(0) // server threads and memory on socket 0
	cxl := m.CXLNodes()
	allDRAM := append(append([]*topology.Node{}, dram...), m.DRAMNodes(1)...)

	cfg := StoreConfig{
		WorkingSetBytes: opts.WorkingSetBytes,
		SimKeys:         opts.SimKeys,
		MaxMemoryFrac:   1,
	}
	d := &Deployment{Name: name, Machine: m, Alloc: alloc}

	switch name {
	case ConfMMEM:
		cfg.Policy = vmm.Bind{Nodes: allDRAM}
	case ConfMMEMSSD02:
		cfg.MaxMemoryFrac, cfg.Flash = 0.8, true
		cfg.Policy = vmm.Bind{Nodes: allDRAM}
	case ConfMMEMSSD04:
		cfg.MaxMemoryFrac, cfg.Flash = 0.6, true
		cfg.Policy = vmm.Bind{Nodes: allDRAM}
	case ConfInter31:
		cfg.Policy = vmm.InterleaveNM{Top: allDRAM, Low: cxl, N: 3, M: 1}
	case ConfInter11:
		cfg.Policy = vmm.InterleaveNM{Top: allDRAM, Low: cxl, N: 1, M: 1}
	case ConfInter13:
		cfg.Policy = vmm.InterleaveNM{Top: allDRAM, Low: cxl, N: 1, M: 3}
	case ConfHotPromote:
		// §4.1.1: numactl distributes half the dataset to CXL and caps
		// main-memory usage at half the dataset size; the hot-page
		// promotion patches then migrate. We cap DRAM by reserving the
		// remainder before allocating.
		reserve := vmm.NewSpace(0)
		capBytes := opts.WorkingSetBytes / 2
		if err := reserveAllBut(alloc, reserve, dram[0], capBytes); err != nil {
			return nil, err
		}
		cfg.Policy = vmm.InterleaveNM{Top: dram[:1], Low: cxl, N: 1, M: 1}
		tiers := tiering.Tiers{Fast: dram[:1], Slow: cxl}
		d.Tiers = tiers
		d.Daemon = &tiering.HotPromote{
			Tiers: tiers,
			// 128 MB per 10 ms epoch ≈ a 12.8 GB/s migration ceiling,
			// the order of the patch's promote rate limit.
			RateLimitBytes: 128 << 20,
			AutoThreshold:  true,
		}
	default:
		return nil, fmt.Errorf("kvstore: unknown configuration %q", name)
	}

	if opts.SpillDir != "" {
		if !cfg.Flash {
			return nil, fmt.Errorf("kvstore: spill dir set but %s has no SSD tier (use an MMEM-SSD configuration)", name)
		}
		cfg.SpillDir = opts.SpillDir
	}
	st, err := NewStore(m, alloc, cfg)
	if err != nil {
		return nil, fmt.Errorf("kvstore: deploying %s: %w", name, err)
	}
	d.Store = st
	return d, nil
}

// reserveAllBut fills node n except for keep bytes, emulating a cgroup/
// numactl cap on usable main memory.
func reserveAllBut(alloc *vmm.Allocator, space *vmm.Space, n *topology.Node, keep uint64) error {
	if n.Capacity <= keep {
		return nil
	}
	return alloc.Alloc(space, n.Capacity-keep, vmm.Bind{Nodes: []*topology.Node{n}})
}

// RunConfigFor builds the standard run configuration for a deployment.
func (d *Deployment) RunConfigFor(mix workload.YCSBMix, seed int64) RunConfig {
	return RunConfig{Mix: mix, Seed: seed, Daemon: d.Daemon, Tiers: d.Tiers}
}

// InstallFaults builds a fault injector for the deployment's machine and
// returns it; wire it into a run via RunConfig.Faults (RunConfigFor with
// a schedule does both). The injector is single-run: build a fresh
// deployment per faulted run.
func (d *Deployment) InstallFaults(s *fault.Schedule) (*fault.Injector, error) {
	return fault.NewInjector(s, d.Machine)
}

// RunConfigWithFaults is RunConfigFor plus fault wiring: the schedule is
// installed on the run and its client resilience policy (if any) enables
// timeout/retry accounting.
func (d *Deployment) RunConfigWithFaults(mix workload.YCSBMix, seed int64, s *fault.Schedule) (RunConfig, error) {
	rc := d.RunConfigFor(mix, seed)
	if s == nil {
		return rc, nil
	}
	inj, err := d.InstallFaults(s)
	if err != nil {
		return rc, err
	}
	rc.Faults = inj
	pol := s.ClientPolicy()
	rc.TimeoutNs = pol.TimeoutNs
	rc.BackoffNs = pol.BackoffNs
	rc.MaxRetries = pol.MaxRetries
	return rc, nil
}

// Warm drives the deployment to its steady state before measurement: it
// replays epochs of workload heat and daemon ticks without the DES, the
// way the paper lets each configuration run until placement converges
// before recording. No-op for daemon-less configurations.
func (d *Deployment) Warm(mix workload.YCSBMix, epochs, drawsPerEpoch int, seed int64) {
	if d.Daemon == nil {
		return
	}
	gen := workload.NewYCSB(mix, uint64(d.Store.cfg.SimKeys), seed)
	space := d.Store.Space()
	var now sim.Time
	for e := 0; e < epochs; e++ {
		now += sim.Millisecond * 10
		// Same heat weight per op as ServiceTime, so warm-phase heat and
		// measurement-phase heat are on one scale.
		weight := d.Store.depth + d.Store.lines
		for i := 0; i < drawsPerEpoch; i++ {
			op := gen.Next()
			space.Touch(d.Store.pageOf(op.Key%uint64(d.Store.cfg.SimKeys)), weight, now)
		}
		d.Daemon.Tick(now, space, d.Alloc)
		space.DecayHeat(0.5)
	}
}
