package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cxlsim/internal/lsm"
	"cxlsim/internal/obs"
	"cxlsim/internal/spill"
)

// Durable spill mode: when StoreConfig.SpillDir is set (Flash configs
// only), the KeyDB-FLASH write path writes through to a real on-disk
// Bitcask-style log (internal/spill) instead of only charging the
// simulated SSD cost. The log is the durability backing, not the
// performance model — spill I/O never feeds back into service times, so
// healthy-run measurements are byte-identical with or without it.
//
// Brownout semantics: when the fault schedule degrades the SSD (any
// active fault on a resource matching "/ssd"), the store falls back to
// memory-only operation — writes are shed (counted, and their keys
// remembered as dirty) rather than blocking on a sick device. When the
// device heals, the dirty set is re-persisted in one deterministic
// catch-up pass.

const (
	// spillPayloadCap bounds the on-disk record body so huge simulated
	// value sizes don't translate into huge real files.
	spillPayloadCap = 4096
	// defaultSpillSyncEvery is the group-commit window: records per
	// fsync on the store's write-through path. The crash matrix runs the
	// spill tier directly at SyncEvery=1; the store trades a bounded ack
	// window for not fsyncing every simulated op.
	defaultSpillSyncEvery = 8
)

// spillState carries the durable tier and its degraded-mode bookkeeping.
type spillState struct {
	dir     *spill.Dir
	healthy bool
	dirty   map[uint64]struct{} // keys shed during brownout, pending catch-up

	shed, catchup, mismatch uint64

	keyBuf [8]byte
	valBuf []byte

	shedC, catchupC, mismatchC *obs.Counter
}

// openSpill attaches the durable tier to the store, recovering whatever
// a previous process left in the directory.
func (s *Store) openSpill() error {
	sync := s.cfg.SpillSyncEvery
	if sync == 0 {
		sync = defaultSpillSyncEvery
	}
	d, _, err := spill.Open(spill.Options{Dir: s.cfg.SpillDir, SyncEvery: sync})
	if err != nil {
		return fmt.Errorf("kvstore: opening spill tier: %w", err)
	}
	payload := int(s.cfg.ValueBytes)
	if payload > spillPayloadCap {
		payload = spillPayloadCap
	}
	if payload < 16 {
		payload = 16
	}
	sp := &spillState{
		dir:     d,
		healthy: true,
		dirty:   map[uint64]struct{}{},
		valBuf:  make([]byte, payload),
	}
	for i := 8; i < payload; i++ {
		sp.valBuf[i] = 0xa5
	}
	s.spill = sp
	return nil
}

// key returns the canonical 8-byte big-endian record key.
func (sp *spillState) key(k uint64) []byte {
	binary.BigEndian.PutUint64(sp.keyBuf[:], k)
	return sp.keyBuf[:]
}

// payload returns the record body: the key self-identifies in the first
// 8 bytes so recovery verification can catch cross-linked records.
func (sp *spillState) payload(k uint64) []byte {
	binary.BigEndian.PutUint64(sp.valBuf[:8], k)
	return sp.valBuf
}

// spillWrite persists one simulated write through the durable tier, or
// sheds it (remembering the key) when the tier is browned out or the
// device has failed.
func (s *Store) spillWrite(key uint64) {
	sp := s.spill
	if !sp.healthy {
		sp.shedWrite(key)
		return
	}
	if err := sp.dir.Put(sp.key(key), sp.payload(key)); err != nil {
		// A real device failure behaves like an unscheduled brownout:
		// keep serving from memory, remember the key.
		sp.shedWrite(key)
		return
	}
	delete(sp.dirty, key)
}

func (sp *spillState) shedWrite(key uint64) {
	sp.shed++
	sp.dirty[key] = struct{}{}
	if sp.shedC != nil {
		sp.shedC.Inc()
	}
}

// spillVerify cross-checks a simulated read miss against the durable
// tier: if the record exists on disk its body must self-identify as the
// requested key. Absent records are fine (the key was never written
// through); mismatches mean on-disk cross-linking and are counted.
func (s *Store) spillVerify(key uint64) {
	sp := s.spill
	if !sp.healthy {
		return
	}
	v, ok, err := sp.dir.Get(sp.key(key))
	if err != nil || !ok {
		return
	}
	if len(v) < 8 || binary.BigEndian.Uint64(v) != key {
		sp.mismatch++
		if sp.mismatchC != nil {
			sp.mismatchC.Inc()
		}
	}
}

// HasSpill reports whether the store runs in durable spill mode.
func (s *Store) HasSpill() bool { return s.spill != nil }

// SetSpillHealthy flips the durable tier between healthy and browned
// out. Healing triggers the catch-up pass: every key shed during the
// brownout is re-persisted, in key order so the resulting log is a
// deterministic function of the shed set.
func (s *Store) SetSpillHealthy(h bool) {
	sp := s.spill
	if sp == nil || sp.healthy == h {
		return
	}
	sp.healthy = h
	if !h || len(sp.dirty) == 0 {
		return
	}
	keys := make([]uint64, 0, len(sp.dirty))
	for k := range sp.dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := sp.dir.Put(sp.key(k), sp.payload(k)); err != nil {
			return // device died mid-catch-up; keys stay dirty
		}
		delete(sp.dirty, k)
		sp.catchup++
		if sp.catchupC != nil {
			sp.catchupC.Inc()
		}
	}
	sp.dir.Sync()
}

// SpillStats exposes the durable tier's I/O counters (zero without one).
func (s *Store) SpillStats() spill.Stats {
	if s.spill == nil {
		return spill.Stats{}
	}
	return s.spill.dir.Stats()
}

// SpillRecovery exposes the recovery report from opening the tier.
func (s *Store) SpillRecovery() *spill.RecoveryReport {
	if s.spill == nil {
		return nil
	}
	return s.spill.dir.Recovery()
}

// SpillCounts reports the degraded-mode accounting: writes shed during
// brownouts, catch-up re-persists after healing, and read-back records
// whose body did not self-identify.
func (s *Store) SpillCounts() (shed, catchup, mismatch uint64) {
	if s.spill == nil {
		return 0, 0, 0
	}
	return s.spill.shed, s.spill.catchup, s.spill.mismatch
}

// WriteAmpComparison contrasts the structural LSM engine's write
// amplification with the durable spill tier's measured one.
// Zero-valued unless both engines are active (UseLSM plus SpillDir).
func (s *Store) WriteAmpComparison() lsm.WriteAmpComparison {
	if s.tree == nil || s.spill == nil {
		return lsm.WriteAmpComparison{}
	}
	return s.tree.Stats().CompareWriteAmp(s.spill.dir.Stats().WriteAmplification())
}

// SpillDirty reports how many shed keys still await catch-up.
func (s *Store) SpillDirty() int {
	if s.spill == nil {
		return 0
	}
	return len(s.spill.dirty)
}

// InstrumentSpill publishes the durable tier's I/O, recovery, and
// degraded-mode counters into the registry. No-op without a spill tier
// or registry.
func (s *Store) InstrumentSpill(reg *obs.Registry) {
	sp := s.spill
	if sp == nil || reg == nil {
		return
	}
	sp.dir.Instrument(reg)
	sp.shedC = reg.Counter(obs.MetricSpillShedWrites, "writes shed during spill-tier brownouts")
	sp.catchupC = reg.Counter(obs.MetricSpillCatchupWrites, "shed writes re-persisted after the tier healed")
	sp.mismatchC = reg.Counter(obs.MetricSpillReadMismatch, "spill read-backs whose body did not self-identify")
	sp.shedC.Add(float64(sp.shed))
	sp.catchupC.Add(float64(sp.catchup))
	sp.mismatchC.Add(float64(sp.mismatch))
}

// CloseSpill syncs and closes the durable tier (idempotent, nil-safe).
func (s *Store) CloseSpill() error {
	if s.spill == nil {
		return nil
	}
	err := s.spill.dir.Close()
	s.spill = nil
	return err
}
