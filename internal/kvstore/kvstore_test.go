package kvstore

import (
	"math"
	"testing"

	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// fastOpts keeps unit runs quick; benches use paper-scale defaults.
func fastOpts() DeployOptions {
	return DeployOptions{WorkingSetBytes: 512 << 30, SimKeys: 1 << 16}
}

func runConf(t *testing.T, name ConfigName, mix workload.YCSBMix, ops int) Result {
	t.Helper()
	d, err := Deploy(name, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	d.Warm(mix, 120, 100_000, 7)
	rc := d.RunConfigFor(mix, 42)
	rc.Ops = ops
	res := Run(d.Store, d.Alloc, rc)
	res.Config = string(name)
	return res
}

func TestDeployAllConfigs(t *testing.T) {
	for _, name := range Table1Configs() {
		if _, err := Deploy(name, fastOpts()); err != nil {
			t.Errorf("Deploy(%s): %v", name, err)
		}
	}
	if len(Table1Configs()) != 7 {
		t.Fatal("Table 1 has seven configurations")
	}
	if _, err := Deploy("bogus", fastOpts()); err == nil {
		t.Fatal("unknown config should error")
	}
}

func TestStoreConfigValidation(t *testing.T) {
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	bad := []StoreConfig{
		{SimKeys: 0, MaxMemoryFrac: 1},
		{SimKeys: 10, MaxMemoryFrac: 0},
		{SimKeys: 10, MaxMemoryFrac: 1.5},
		{SimKeys: 10, MaxMemoryFrac: 0.5, Flash: false}, // spill without flash
	}
	for i, cfg := range bad {
		if _, err := NewStore(m, alloc, cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Policy failure propagates.
	cfg := StoreConfig{SimKeys: 10, MaxMemoryFrac: 1, WorkingSetBytes: 2 << 40,
		Policy: vmm.Bind{Nodes: m.DRAMNodes(0)}}
	if _, err := NewStore(m, alloc, cfg); err == nil {
		t.Error("oversized alloc should error")
	}
}

func TestDefaultDepthAnchors(t *testing.T) {
	if d := DefaultDepth(100 << 30); d != 3 {
		t.Fatalf("depth(100GB) = %v, want 3", d)
	}
	if d := DefaultDepth(512 << 30); math.Abs(d-40) > 1e-9 {
		t.Fatalf("depth(512GB) = %v, want 40", d)
	}
	if DefaultDepth(1<<30) != 3 {
		t.Fatal("small heaps clamp to the 100GB anchor")
	}
	if DefaultDepth(256<<30) <= 3 || DefaultDepth(256<<30) >= 40 {
		t.Fatal("intermediate sizes should interpolate")
	}
}

// TestFig5Ordering checks the headline result of §4.1.2 on YCSB-A:
// MMEM ≥ Hot-Promote > interleaves (3:1 > 1:1 > 1:3) > SSD spill.
func TestFig5Ordering(t *testing.T) {
	const ops = 20_000
	mix := workload.YCSBA
	tp := map[ConfigName]float64{}
	for _, name := range Table1Configs() {
		tp[name] = runConf(t, name, mix, ops).ThroughputOpsPerSec
	}
	order := []ConfigName{ConfMMEM, ConfInter31, ConfInter11, ConfInter13}
	for i := 1; i < len(order); i++ {
		if tp[order[i]] >= tp[order[i-1]] {
			t.Errorf("expected %s (%f) > %s (%f)", order[i-1], tp[order[i-1]], order[i], tp[order[i]])
		}
	}
	if tp[ConfMMEMSSD02] >= tp[ConfInter13] {
		t.Errorf("SSD-0.2 (%f) should trail the worst interleave (%f)", tp[ConfMMEMSSD02], tp[ConfInter13])
	}
	if tp[ConfMMEMSSD04] >= tp[ConfMMEMSSD02] {
		t.Errorf("SSD-0.4 (%f) should trail SSD-0.2 (%f)", tp[ConfMMEMSSD04], tp[ConfMMEMSSD02])
	}
	if tp[ConfHotPromote] >= tp[ConfMMEM] {
		t.Errorf("Hot-Promote (%f) cannot beat pure MMEM (%f)", tp[ConfHotPromote], tp[ConfMMEM])
	}
}

// TestFig5Factors checks the slowdown factors the paper reports:
// interleaving 1.2–1.5×, SSD ≈1.8×, Hot-Promote ≈ MMEM.
func TestFig5Factors(t *testing.T) {
	const ops = 20_000
	mix := workload.YCSBA
	base := runConf(t, ConfMMEM, mix, ops).ThroughputOpsPerSec
	slowdown := func(name ConfigName) float64 {
		return base / runConf(t, name, mix, ops).ThroughputOpsPerSec
	}
	if s := slowdown(ConfInter31); s < 1.10 || s > 1.35 {
		t.Errorf("3:1 slowdown = %.2f, want ≈1.2", s)
	}
	if s := slowdown(ConfInter13); s < 1.35 || s > 1.70 {
		t.Errorf("1:3 slowdown = %.2f, want ≈1.5", s)
	}
	if s := slowdown(ConfMMEMSSD04); s < 1.5 || s > 2.2 {
		t.Errorf("SSD-0.4 slowdown = %.2f, want ≈1.8", s)
	}
	if s := slowdown(ConfHotPromote); s > 1.15 {
		t.Errorf("Hot-Promote slowdown = %.2f, want ≈1 (nearly as well as MMEM)", s)
	}
}

// TestFig5TailLatencyOrdering: Fig. 5(b) — tail latency tracks placement.
func TestFig5TailLatency(t *testing.T) {
	const ops = 20_000
	mmem := runConf(t, ConfMMEM, workload.YCSBA, ops)
	i13 := runConf(t, ConfInter13, workload.YCSBA, ops)
	ssd := runConf(t, ConfMMEMSSD04, workload.YCSBA, ops)
	if i13.P99Ms() <= mmem.P99Ms() {
		t.Errorf("1:3 p99 (%.3fms) should exceed MMEM p99 (%.3fms)", i13.P99Ms(), mmem.P99Ms())
	}
	if ssd.Latency.Max() <= i13.Latency.Max() {
		t.Errorf("SSD max latency should exceed interleave max (SSD hits add ~100µs)")
	}
}

// TestFig8CXLOnly reproduces §4.3: KeyDB bound entirely to CXL vs MMEM on
// a 100 GB working set — ≈12.5% lower throughput, 9–27% read-latency
// penalty.
func TestFig8CXLOnly(t *testing.T) {
	run := func(nodes []*topology.Node, m *topology.Machine, alloc *vmm.Allocator) Result {
		st, err := NewStore(m, alloc, StoreConfig{
			WorkingSetBytes: 100 << 30,
			SimKeys:         1 << 16,
			MaxMemoryFrac:   1,
			Policy:          vmm.Bind{Nodes: nodes},
		})
		if err != nil {
			t.Fatal(err)
		}
		return Run(st, alloc, RunConfig{Mix: workload.YCSBC, Ops: 20_000, Seed: 5})
	}
	mMachine := topology.Testbed()
	mmem := run(mMachine.DRAMNodes(0), mMachine, vmm.NewAllocator(mMachine))
	cMachine := topology.Testbed()
	cxl := run(cMachine.CXLNodes(), cMachine, vmm.NewAllocator(cMachine))

	drop := 1 - cxl.ThroughputOpsPerSec/mmem.ThroughputOpsPerSec
	if drop < 0.08 || drop > 0.18 {
		t.Errorf("CXL-only throughput drop = %.1f%%, want ≈12.5%%", drop*100)
	}
	penalty := cxl.ReadLatency.Percentile(50)/mmem.ReadLatency.Percentile(50) - 1
	if penalty < 0.05 || penalty > 0.30 {
		t.Errorf("CXL-only read latency penalty = %.1f%%, want within 9–27%%", penalty*100)
	}
}

func TestFlashHitRateAndSpill(t *testing.T) {
	d, err := Deploy(ConfMMEMSSD04, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rc := d.RunConfigFor(workload.YCSBC, 9)
	rc.Ops = 10_000
	res := Run(d.Store, d.Alloc, rc)
	if res.HitRate >= 1 {
		t.Fatal("SSD config must take some misses")
	}
	// Zipfian keeps the working set largely cached (§4.1.2).
	if res.HitRate < 0.85 {
		t.Fatalf("hit rate = %.3f, Zipfian should keep most accesses in memory", res.HitRate)
	}
}

func TestHotPromoteMigratesSomething(t *testing.T) {
	// Cold start (no Warm): the first measurement epochs must promote.
	d, err := Deploy(ConfHotPromote, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rc := d.RunConfigFor(workload.YCSBA, 11)
	rc.Ops = 20_000
	res := Run(d.Store, d.Alloc, rc)
	if res.Migrated == 0 {
		t.Fatal("Hot-Promote run migrated nothing")
	}
}

func TestHotPromoteQuiescesAfterWarm(t *testing.T) {
	// §4.1.2's flip side: once placement converged on a stable Zipfian
	// hot set, migration traffic must die down rather than burn the
	// rate limit forever.
	d, err := Deploy(ConfHotPromote, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	d.Warm(workload.YCSBA, 150, 100_000, 7)
	rc := d.RunConfigFor(workload.YCSBA, 11)
	rc.Ops = 20_000
	res := Run(d.Store, d.Alloc, rc)
	// Bound: well under one rate-limit budget (128 MB) per epoch.
	if res.Migrated > 256<<20 {
		t.Fatalf("converged run still migrated %d MB", res.Migrated>>20)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		d, err := Deploy(ConfInter11, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		rc := d.RunConfigFor(workload.YCSBB, 123)
		rc.Ops = 5_000
		return Run(d.Store, d.Alloc, rc)
	}
	a, b := run(), run()
	if a.ThroughputOpsPerSec != b.ThroughputOpsPerSec {
		t.Fatalf("non-deterministic throughput: %v vs %v", a.ThroughputOpsPerSec, b.ThroughputOpsPerSec)
	}
	if a.Latency.Percentile(99) != b.Latency.Percentile(99) {
		t.Fatal("non-deterministic latency")
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	d, err := Deploy(ConfMMEM, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range workload.StandardMixes() {
		rc := d.RunConfigFor(mix, 3)
		rc.Ops = 2_000
		res := Run(d.Store, d.Alloc, rc)
		if res.ThroughputOpsPerSec <= 0 {
			t.Errorf("%s: zero throughput", mix.Name)
		}
		if res.Latency.Count() == 0 {
			t.Errorf("%s: no latency samples", mix.Name)
		}
	}
}

func TestBytesPerKeyAndPages(t *testing.T) {
	d, err := Deploy(ConfMMEM, DeployOptions{WorkingSetBytes: 1 << 30, SimKeys: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if bpk := d.Store.BytesPerKey(); bpk != float64(1<<20) {
		t.Fatalf("BytesPerKey = %v, want 1 MiB", bpk)
	}
	// All pages must be on DRAM for the MMEM config.
	for i := range d.Store.Space().Pages {
		if d.Store.Space().Pages[i].Node.Kind != topology.DRAM {
			t.Fatal("MMEM config placed a page off DRAM")
		}
	}
}

func TestInterleaveConfigPlacesOnCXL(t *testing.T) {
	d, err := Deploy(ConfInter13, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	share := d.Store.Space().NodeShare()
	cxlShare := 0.0
	for n, f := range share {
		if n.Kind == topology.CXL {
			cxlShare += f
		}
	}
	if math.Abs(cxlShare-0.75) > 0.02 {
		t.Fatalf("1:3 CXL share = %.3f, want 0.75", cxlShare)
	}
}

func TestRunConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative ops should panic")
		}
	}()
	rc := RunConfig{Mix: workload.YCSBC, Ops: -1}
	rc.fill()
}
