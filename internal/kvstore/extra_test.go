package kvstore

import (
	"testing"

	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// TestLatencyCDFShape validates the data behind Fig. 5(c)/Fig. 8(a):
// CDFs are monotone, end at 1, and the CXL-bound store's read CDF sits to
// the right of the MMEM-bound one.
func TestLatencyCDFShape(t *testing.T) {
	run := func(pick func(*topology.Machine) []*topology.Node) Result {
		m := topology.Testbed()
		alloc := vmm.NewAllocator(m)
		st, err := NewStore(m, alloc, StoreConfig{
			WorkingSetBytes: 100 << 30, SimKeys: 1 << 14, MaxMemoryFrac: 1,
			Policy: vmm.Bind{Nodes: pick(m)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return Run(st, alloc, RunConfig{Mix: workload.YCSBC, Ops: 10_000, Seed: 5})
	}
	mmem := run(func(m *topology.Machine) []*topology.Node { return m.DRAMNodes(0) })
	cxl := run(func(m *topology.Machine) []*topology.Node { return m.CXLNodes() })

	for _, r := range []Result{mmem, cxl} {
		cdf := r.ReadLatency.CDF()
		if len(cdf) < 5 {
			t.Fatalf("CDF too coarse: %d points", len(cdf))
		}
		prev := 0.0
		for _, p := range cdf {
			if p.Fraction < prev {
				t.Fatal("CDF not monotone")
			}
			prev = p.Fraction
		}
		if prev < 0.999 {
			t.Fatalf("CDF ends at %v", prev)
		}
	}
	// Right shift: at the MMEM median, the CXL CDF has lower mass.
	med := mmem.ReadLatency.Percentile(50)
	cxlMassAtMed := 0.0
	for _, p := range cxl.ReadLatency.CDF() {
		if p.Value <= med {
			cxlMassAtMed = p.Fraction
		}
	}
	if cxlMassAtMed >= 0.5 {
		t.Fatalf("CXL CDF mass at MMEM median = %.2f, want < 0.5 (right-shifted)", cxlMassAtMed)
	}
}

// TestYCSBDInsertsOnSSDConfig: the latest-distribution workload keeps
// reading fresh inserts; with Flash, fresh inserts are resident so the
// hit rate stays high despite the churn.
func TestYCSBDOnFlash(t *testing.T) {
	d, err := Deploy(ConfMMEMSSD02, DeployOptions{SimKeys: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	rc := d.RunConfigFor(workload.YCSBD, 13)
	rc.Ops = 10_000
	res := Run(d.Store, d.Alloc, rc)
	if res.HitRate < 0.8 {
		t.Fatalf("YCSB-D hit rate = %.3f; fresh inserts should stay resident", res.HitRate)
	}
	if res.ThroughputOpsPerSec <= 0 {
		t.Fatal("no throughput")
	}
}

// TestDegradedCXLSlowsCXLBoundStore: failure injection propagates through
// the store's service times.
func TestDegradedCXLSlowsCXLBoundStore(t *testing.T) {
	run := func(degrade bool) float64 {
		m := topology.Testbed()
		if degrade {
			for _, n := range m.CXLNodes() {
				n.Resource().Degrade(0.5, 2)
			}
		}
		alloc := vmm.NewAllocator(m)
		st, err := NewStore(m, alloc, StoreConfig{
			WorkingSetBytes: 100 << 30, SimKeys: 1 << 14, MaxMemoryFrac: 1,
			Policy: vmm.Bind{Nodes: m.CXLNodes()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return Run(st, alloc, RunConfig{Mix: workload.YCSBC, Ops: 8_000, Seed: 5}).ThroughputOpsPerSec
	}
	healthy, degraded := run(false), run(true)
	if degraded >= healthy {
		t.Fatalf("degraded CXL throughput %v should trail healthy %v", degraded, healthy)
	}
}

// TestServerThreadScaling: more server threads raise throughput until the
// client count binds.
func TestServerThreadScaling(t *testing.T) {
	run := func(threads int) float64 {
		d, err := Deploy(ConfMMEM, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		rc := d.RunConfigFor(workload.YCSBC, 3)
		rc.Ops = 8_000
		rc.ServerThreads = threads
		return Run(d.Store, d.Alloc, rc).ThroughputOpsPerSec
	}
	t7, t14 := run(7), run(14)
	if t14 <= t7*1.5 {
		t.Fatalf("doubling server threads: %v -> %v, want near-linear gain", t7, t14)
	}
}

// TestWarmIdempotentForStaticConfigs: Warm is a no-op without a daemon.
func TestWarmIdempotentForStaticConfigs(t *testing.T) {
	d, err := Deploy(ConfInter11, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	before := d.Store.Space().NodeShare()
	d.Warm(workload.YCSBA, 50, 10_000, 1)
	after := d.Store.Space().NodeShare()
	for n, f := range before {
		if after[n] != f {
			t.Fatal("Warm moved pages without a daemon")
		}
	}
}

// TestLSMFlashEngine: the structural LSM behind the Flash path produces
// the same qualitative result as the analytic model (SSD config slower
// than MMEM, high hit rate) while exposing real tree dynamics.
func TestLSMFlashEngine(t *testing.T) {
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	st, err := NewStore(m, alloc, StoreConfig{
		WorkingSetBytes: 512 << 30, SimKeys: 1 << 14,
		MaxMemoryFrac: 0.6, Flash: true, UseLSM: true,
		Policy: vmm.Bind{Nodes: m.DRAMNodes(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(st, alloc, RunConfig{Mix: workload.YCSBA, Ops: 10_000, Seed: 5})
	if res.ThroughputOpsPerSec <= 0 {
		t.Fatal("no throughput")
	}
	stats := st.LSMStats()
	if stats.TotalSSTBytes == 0 {
		t.Fatal("LSM tree should hold the persisted keyspace")
	}
	if stats.WriteAmp < 1 {
		t.Fatalf("write amp = %v, want ≥1", stats.WriteAmp)
	}
	// Same qualitative conclusion as the analytic model: well below the
	// all-MMEM configuration.
	mm := topology.Testbed()
	mmAlloc := vmm.NewAllocator(mm)
	mmSt, err := NewStore(mm, mmAlloc, StoreConfig{
		WorkingSetBytes: 512 << 30, SimKeys: 1 << 14, MaxMemoryFrac: 1,
		Policy: vmm.Bind{Nodes: mm.DRAMNodes(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Run(mmSt, mmAlloc, RunConfig{Mix: workload.YCSBA, Ops: 10_000, Seed: 5})
	slow := base.ThroughputOpsPerSec / res.ThroughputOpsPerSec
	if slow < 1.3 || slow > 3.5 {
		t.Fatalf("LSM-flash slowdown = %.2f, want the SSD-config band", slow)
	}
}

func TestLSMStatsNilSafe(t *testing.T) {
	d, err := Deploy(ConfMMEM, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if s := d.Store.LSMStats(); s.TotalSSTBytes != 0 {
		t.Fatal("non-LSM store should report zero stats")
	}
}

func TestResultP99Accessor(t *testing.T) {
	d, err := Deploy(ConfMMEM, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rc := d.RunConfigFor(workload.YCSBC, 3)
	rc.Ops = 2_000
	res := Run(d.Store, d.Alloc, rc)
	if res.P99Ms() <= 0 {
		t.Fatal("P99Ms should be positive")
	}
	if res.P99Ms() != res.Latency.Percentile(99)/1e6 {
		t.Fatal("P99Ms accessor inconsistent")
	}
}
