package kvstore

import (
	"testing"

	"cxlsim/internal/fault"
	"cxlsim/internal/workload"
)

// cxlFaultSchedule stalls both CXL devices for most of a short run, with
// a client timeout tight enough that CXL-resident accesses blow it.
func cxlFaultSchedule() *fault.Schedule {
	return &fault.Schedule{
		Faults: []fault.Fault{
			{At: 0, Duration: 50e6, Kind: fault.DeviceStall, Target: "/cxl", Severity: 0.9},
		},
		Client: &fault.Resilience{TimeoutNs: 2e6, BackoffNs: 0.5e6, MaxRetries: 2},
	}
}

// TestRetryPathAccounting drives the closed-loop client through the
// timeout/backoff/retry path and checks the op accounting stays exact.
func TestRetryPathAccounting(t *testing.T) {
	d, err := Deploy(ConfInter11, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	d.Warm(workload.YCSBC, 120, 100_000, 7)
	rc, err := d.RunConfigWithFaults(workload.YCSBC, 42, cxlFaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	rc.Ops = 4_000
	res := Run(d.Store, d.Alloc, rc)

	if res.Timeouts == 0 {
		t.Fatal("stalled CXL devices with a 2ms budget produced no timeouts")
	}
	if res.Retries == 0 {
		t.Fatal("timeouts produced no retries")
	}
	if res.Failed == 0 {
		t.Fatal("MaxRetries=2 under a persistent stall should exhaust some ops")
	}
	// A retry is always preceded by a timeout, and every failed op burned
	// MaxRetries+1 attempts, each a timeout.
	if res.Retries > res.Timeouts {
		t.Fatalf("retries %d exceed timeouts %d", res.Retries, res.Timeouts)
	}
	if res.Failed > res.Timeouts {
		t.Fatalf("failed ops %d exceed timeouts %d", res.Failed, res.Timeouts)
	}
	if res.Failed > uint64(rc.Ops) {
		t.Fatalf("failed ops %d exceed total ops %d", res.Failed, rc.Ops)
	}
}

// TestRetryPathDeterministic: the retry machinery must not perturb
// determinism — identical seeds and schedules give identical results.
func TestRetryPathDeterministic(t *testing.T) {
	run := func() Result {
		d, err := Deploy(ConfInter11, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		d.Warm(workload.YCSBC, 120, 100_000, 7)
		rc, err := d.RunConfigWithFaults(workload.YCSBC, 42, cxlFaultSchedule())
		if err != nil {
			t.Fatal(err)
		}
		rc.Ops = 3_000
		return Run(d.Store, d.Alloc, rc)
	}
	a, b := run(), run()
	if a.ThroughputOpsPerSec != b.ThroughputOpsPerSec ||
		a.Timeouts != b.Timeouts || a.Retries != b.Retries || a.Failed != b.Failed {
		t.Fatalf("identical fault replays diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestGenerousTimeoutIsInert: a timeout no attempt can exceed leaves the
// run identical to one with the retry machinery disabled — the zero-cost
// contract for the healthy path.
func TestGenerousTimeoutIsInert(t *testing.T) {
	run := func(timeoutNs float64) Result {
		d, err := Deploy(ConfInter11, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		d.Warm(workload.YCSBC, 120, 100_000, 7)
		rc := d.RunConfigFor(workload.YCSBC, 42)
		rc.Ops = 3_000
		rc.TimeoutNs = timeoutNs
		return Run(d.Store, d.Alloc, rc)
	}
	off, generous := run(0), run(1e18)
	if generous.Timeouts != 0 || generous.Retries != 0 || generous.Failed != 0 {
		t.Fatalf("generous timeout still fired: %+v", generous)
	}
	if off.ThroughputOpsPerSec != generous.ThroughputOpsPerSec {
		t.Fatalf("inert timeout changed throughput: %v vs %v",
			off.ThroughputOpsPerSec, generous.ThroughputOpsPerSec)
	}
}
