package kvstore

import (
	"encoding/binary"
	"testing"

	"cxlsim/internal/fault"
	"cxlsim/internal/lsm"
	"cxlsim/internal/sim"
	"cxlsim/internal/spill"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// durableDeploy builds a small MMEM-SSD-0.4 deployment with the durable
// spill tier rooted at dir.
func durableDeploy(t *testing.T, dir string) *Deployment {
	t.Helper()
	d, err := Deploy(ConfMMEMSSD04, DeployOptions{
		WorkingSetBytes: 1 << 30,
		SimKeys:         4096,
		SpillDir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDurableModeWritesThrough runs a write-heavy workload in durable
// mode and checks the spill tier really persisted: records on disk, a
// reopened tier recovers them, and each body self-identifies.
func TestDurableModeWritesThrough(t *testing.T) {
	dir := t.TempDir()
	d := durableDeploy(t, dir)
	rc := d.RunConfigFor(workload.YCSBA, 42)
	rc.Ops = 4000
	res := Run(d.Store, d.Alloc, rc)
	if res.ThroughputOpsPerSec <= 0 {
		t.Fatal("run produced no throughput")
	}
	st := d.Store.SpillStats()
	if st.RecordsWritten == 0 || st.LiveKeys == 0 || st.Fsyncs == 0 {
		t.Fatalf("durable mode wrote nothing: %+v", st)
	}
	shed, _, mismatch := d.Store.SpillCounts()
	if shed != 0 || mismatch != 0 {
		t.Fatalf("healthy run shed=%d mismatch=%d", shed, mismatch)
	}
	if err := d.Store.CloseSpill(); err != nil {
		t.Fatal(err)
	}

	// Reopen the directory cold: recovery must rebuild the keydir and
	// every record body must name its own key.
	sd, rep, err := spill.Open(spill.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if !rep.Clean() || rep.LiveKeys != st.LiveKeys {
		t.Fatalf("cold recovery %s, want clean with %d live keys", rep, st.LiveKeys)
	}
	checked := 0
	for k := uint64(0); k < 4096 && checked < 50; k++ {
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], k)
		v, ok, err := sd.Get(kb[:])
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !ok {
			continue
		}
		if binary.BigEndian.Uint64(v[:8]) != k {
			t.Fatalf("key %d: body self-identifies as %d", k, binary.BigEndian.Uint64(v[:8]))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no recovered records to verify")
	}
}

// TestDurableRequiresFlash checks the deploy-time guard: a spill dir on
// a memory-only configuration is a configuration error, not a silent
// no-op.
func TestDurableRequiresFlash(t *testing.T) {
	_, err := Deploy(ConfMMEM, DeployOptions{
		WorkingSetBytes: 1 << 30, SimKeys: 1024, SpillDir: t.TempDir(),
	})
	if err == nil {
		t.Fatal("MMEM with a spill dir should not deploy")
	}
}

// TestDurableBrownoutShedsAndCatchesUp drives writes straight through
// ServiceTime across a brownout window and checks the degraded-mode
// contract: shed writes never reach disk, their keys go dirty, and
// healing re-persists exactly the dirty set.
func TestDurableBrownoutShedsAndCatchesUp(t *testing.T) {
	d := durableDeploy(t, t.TempDir())
	s := d.Store
	write := func(k uint64) {
		s.ServiceTime(workload.Op{Kind: workload.OpUpdate, Key: k}, 0)
	}
	for k := uint64(0); k < 10; k++ {
		write(k)
	}
	healthyRecords := s.SpillStats().RecordsWritten

	s.SetSpillHealthy(false)
	for k := uint64(100); k < 120; k++ {
		write(k)
	}
	shed, catchup, _ := s.SpillCounts()
	if shed != 20 || catchup != 0 {
		t.Fatalf("shed=%d catchup=%d, want 20/0", shed, catchup)
	}
	if got := s.SpillStats().RecordsWritten; got != healthyRecords {
		t.Fatalf("browned-out writes reached disk: %d → %d records", healthyRecords, got)
	}
	if s.SpillDirty() != 20 {
		t.Fatalf("dirty=%d, want 20", s.SpillDirty())
	}

	s.SetSpillHealthy(true)
	_, catchup, _ = s.SpillCounts()
	if catchup != 20 || s.SpillDirty() != 0 {
		t.Fatalf("after heal: catchup=%d dirty=%d, want 20/0", catchup, s.SpillDirty())
	}
	if got := s.SpillStats().RecordsWritten; got != healthyRecords+20 {
		t.Fatalf("catch-up wrote %d records, want %d", got-healthyRecords, 20)
	}
}

// TestDurableBrownoutFromSchedule wires the brownout through the real
// fault path: a device-stall on /ssd applied via an injector must flip
// the store into shedding mode exactly while the fault is active.
func TestDurableBrownoutFromSchedule(t *testing.T) {
	d := durableDeploy(t, t.TempDir())
	sched := &fault.Schedule{Faults: []fault.Fault{
		{Kind: fault.DeviceStall, Target: "/ssd", Severity: 0.8},
	}}
	inj, err := d.InstallFaults(sched)
	if err != nil {
		t.Fatal(err)
	}
	inj.OnChange(func(now sim.Time) {
		d.Store.SetSpillHealthy(!inj.TargetDegraded("/ssd"))
	})
	s := d.Store
	write := func(k uint64) { s.ServiceTime(workload.Op{Kind: workload.OpUpdate, Key: k}, 0) }

	inj.ApplyAll()
	write(1)
	if shed, _, _ := s.SpillCounts(); shed != 1 {
		t.Fatalf("shed=%d during scheduled brownout, want 1", shed)
	}
	inj.Reset()
	if _, catchup, _ := s.SpillCounts(); catchup != 1 {
		t.Fatalf("catchup=%d after fault cleared, want 1", catchup)
	}
}

// TestWriteAmpComparisonHook runs the structural LSM engine and the
// durable spill tier side by side and checks the comparison hook lines
// the two write-amplification figures up: the LSM pays compaction up
// front, the append-only log only framing overhead, so the log side
// must come out at least as cheap.
func TestWriteAmpComparisonHook(t *testing.T) {
	m := topology.Testbed()
	alloc := vmm.NewAllocator(m)
	st, err := NewStore(m, alloc, StoreConfig{
		WorkingSetBytes: 512 << 30, SimKeys: 1 << 12,
		MaxMemoryFrac: 0.6, Flash: true, UseLSM: true,
		SpillDir: t.TempDir(),
		Policy:   vmm.Bind{Nodes: m.DRAMNodes(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	Run(st, alloc, RunConfig{Mix: workload.YCSBA, Ops: 5000, Seed: 3})
	cmp := st.WriteAmpComparison()
	if cmp.LSM < 1 || cmp.Log < 1 {
		t.Fatalf("both engines should have written: %+v", cmp)
	}
	if cmp.LogAdvantage < 1 {
		t.Fatalf("append-only log amplification should not exceed the LSM's: %+v", cmp)
	}
	if err := st.CloseSpill(); err != nil {
		t.Fatal(err)
	}

	// Without the LSM the comparison is a nil-safe zero value.
	d := durableDeploy(t, t.TempDir())
	if c := d.Store.WriteAmpComparison(); c != (lsm.WriteAmpComparison{}) {
		t.Fatalf("non-LSM store should report a zero comparison: %+v", c)
	}
}

// TestDurableModeDoesNotPerturbResults pins the byte-identical
// guarantee: the same seeded run with and without the durable tier must
// measure exactly the same throughput and latency — spill I/O is
// durability backing, never part of the performance model.
func TestDurableModeDoesNotPerturbResults(t *testing.T) {
	run := func(spillDir string) Result {
		d, err := Deploy(ConfMMEMSSD04, DeployOptions{
			WorkingSetBytes: 1 << 30, SimKeys: 4096, SpillDir: spillDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		rc := d.RunConfigFor(workload.YCSBA, 7)
		rc.Ops = 2000
		return Run(d.Store, d.Alloc, rc)
	}
	plain := run("")
	durable := run(t.TempDir())
	if plain.ThroughputOpsPerSec != durable.ThroughputOpsPerSec {
		t.Fatalf("throughput drifted: %v vs %v", plain.ThroughputOpsPerSec, durable.ThroughputOpsPerSec)
	}
	if plain.Latency.Percentile(99) != durable.Latency.Percentile(99) ||
		plain.Latency.Mean() != durable.Latency.Mean() {
		t.Fatalf("latency drifted: p99 %v vs %v", plain.Latency.Percentile(99), durable.Latency.Percentile(99))
	}
	if plain.HitRate != durable.HitRate {
		t.Fatalf("hit rate drifted: %v vs %v", plain.HitRate, durable.HitRate)
	}
}
