package kvstore

import (
	"fmt"

	"cxlsim/internal/fault"
	"cxlsim/internal/obs"
	"cxlsim/internal/sim"
	"cxlsim/internal/stats"
	"cxlsim/internal/topology"
	"cxlsim/internal/workload"
)

// ClusterConfig drives a multi-node YCSB run: N identical Table-1
// deployments, each with its own closed-loop client population, connected
// by the testbed fabric. A fraction of every node's ops is owned by a
// uniformly-chosen other node and must be forwarded one hop, served on
// the owner's server threads, and answered one hop back — the classic
// distributed-cache traffic pattern. The run executes on a
// sim.ShardedEngine with one logical partition per node; Shards picks how
// many OS threads execute it, and results are byte-identical at any
// shard count.
type ClusterConfig struct {
	Nodes  int // cluster size (≥ 1)
	Shards int // parallel shards (default 1; clamped to Nodes)

	Config ConfigName
	Deploy DeployOptions
	Mix    workload.YCSBMix

	OpsPerNode int   // measured ops per node (default 20_000)
	Seed       int64 // per-node seeds derive from this

	// RemoteFrac is the probability an op is owned by another node
	// (default 0.1). HopNs is the one-way fabric latency between nodes
	// (default topology.FabricHopNs) and doubles as the sharded engine's
	// conservative lookahead: it is the minimum cross-node latency.
	RemoteFrac float64
	HopNs      float64

	ClientThreads int // per node (RunConfig default when zero)
	ServerThreads int // per node (RunConfig default when zero)

	// WarmEpochs/WarmDraws pre-converge each node's tiering placement
	// before measurement (Deployment.Warm); zero skips warming.
	WarmEpochs int
	WarmDraws  int

	// FaultSchedule, when non-nil, is installed independently on every
	// node (each node gets its own injector against its own machine) and
	// its client policy enables timeout/retry accounting cluster-wide.
	FaultSchedule *fault.Schedule

	// Metrics, when non-nil, receives the merged instrumentation of all
	// nodes: each node runs against a private registry and the shards are
	// folded in node order after the run (obs.Registry.Merge), so output
	// is identical at any shard count. sim_* kernel families are omitted
	// (they are engine-scoped and partitions share engines; see
	// ClusterResult.Events for the kernel total). Tracer, when non-nil,
	// records node 0's timeline only.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
}

func (cc *ClusterConfig) fill() error {
	if cc.Nodes < 1 {
		return fmt.Errorf("kvstore: cluster needs at least one node (got %d)", cc.Nodes)
	}
	if cc.Shards == 0 {
		cc.Shards = 1
	}
	if cc.Shards < 1 {
		return fmt.Errorf("kvstore: cluster needs at least one shard (got %d)", cc.Shards)
	}
	if cc.OpsPerNode == 0 {
		cc.OpsPerNode = 20_000
	}
	if cc.RemoteFrac == 0 {
		cc.RemoteFrac = 0.1
	}
	if cc.RemoteFrac < 0 || cc.RemoteFrac > 1 {
		return fmt.Errorf("kvstore: remote fraction %v outside [0,1]", cc.RemoteFrac)
	}
	if cc.HopNs == 0 {
		cc.HopNs = topology.FabricHopNs
	}
	if cc.HopNs <= 0 {
		return fmt.Errorf("kvstore: fabric hop latency must be positive (got %v)", cc.HopNs)
	}
	return nil
}

// ClusterResult aggregates a cluster run.
type ClusterResult struct {
	PerNode []Result
	// Merged sums throughput and op counters across nodes and merges the
	// latency distributions; HitRate is the cluster-wide cache hit ratio.
	Merged Result
	EndNs  float64 // final epoch boundary, virtual ns
	Epochs uint64  // synchronization epochs executed
	Events uint64  // events fired across all shards
	Shards int     // shards actually used (after clamping)
}

// clusterRun is the shared fabric state linking the per-node run loops.
type clusterRun struct {
	se         *sim.ShardedEngine
	nodes      []*runLoop
	remoteFrac float64
	hopNs      float64
}

// pickDest draws the owning node for a fresh op on rl's destination RNG:
// the node itself with probability 1-RemoteFrac, otherwise uniform over
// the other nodes. Draw order follows rl's local event order, which the
// sharded engine keeps invariant across shard counts.
func (cl *clusterRun) pickDest(rl *runLoop) int {
	n := len(cl.nodes)
	if n < 2 || cl.remoteFrac <= 0 || rl.destRng.Float64() >= cl.remoteFrac {
		return rl.nodeID
	}
	d := rl.destRng.Intn(n - 1)
	if d >= rl.nodeID {
		d++
	}
	return d
}

// forward ships an op to its owning node, one fabric hop away. The origin
// spends no server thread on it; the op queues on the owner and competes
// with the owner's local work for its threads.
func (cl *clusterRun) forward(rl *runLoop, p pendingOp, now sim.Time) {
	p.fromRemote = true
	p.origin = rl.nodeID
	rl.res.Forwarded++
	if rl.fwdC != nil {
		rl.fwdC.Inc()
	}
	dst := p.dest
	pp := p
	cl.se.Send(rl.nodeID, dst, now+sim.Time(cl.hopNs), func(t sim.Time) {
		drl := cl.nodes[dst]
		drl.queue = append(drl.queue, pp)
		drl.dispatch(t)
	})
}

// respond returns a served op to its origin, one hop back; the origin
// then does the full completion accounting (latency includes both hops
// plus the owner's queueing and service).
func (cl *clusterRun) respond(rl *runLoop, p pendingOp, now sim.Time) {
	origin := p.origin
	pp := p
	pp.fromRemote = false
	cl.se.Send(rl.nodeID, origin, now+sim.Time(cl.hopNs), func(t sim.Time) {
		cl.nodes[origin].completeOp(pp, t)
	})
}

// respondTimeout notifies the origin that its remote attempt blew the
// client deadline: the serving node burns the thread (clientTimeout
// already scheduled that) and the origin learns one hop after the
// deadline, then runs the usual retry bookkeeping.
func (cl *clusterRun) respondTimeout(rl *runLoop, p pendingOp, now sim.Time) {
	origin := p.origin
	pp := p
	deadline := now + sim.Time(rl.timeoutNs)
	cl.se.Send(rl.nodeID, origin, deadline+sim.Time(cl.hopNs), func(t sim.Time) {
		cl.nodes[origin].remoteTimedOut(pp, t)
	})
}

// RunCluster executes a multi-node YCSB run. Every node deploys the same
// Table-1 configuration on its own machine, warms independently, and runs
// its closed loop on its partition of a sharded engine; remote ops cross
// the fabric as described on ClusterConfig. All output — per-node
// results, the merged result, and the merged metrics registry — is
// byte-identical at any Shards setting.
func RunCluster(cc ClusterConfig) (*ClusterResult, error) {
	if err := cc.fill(); err != nil {
		return nil, err
	}
	se := sim.NewSharded(cc.Nodes, cc.Shards, sim.Time(cc.HopNs))
	cl := &clusterRun{
		se:         se,
		nodes:      make([]*runLoop, cc.Nodes),
		remoteFrac: cc.RemoteFrac,
		hopNs:      cc.HopNs,
	}

	started := make([]*startedRun, cc.Nodes)
	stores := make([]*Store, cc.Nodes)
	regs := make([]*obs.Registry, cc.Nodes)
	for i := 0; i < cc.Nodes; i++ {
		d, err := Deploy(cc.Config, cc.Deploy)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		seed := cc.Seed + 7919*int64(i)
		if cc.WarmEpochs > 0 && cc.WarmDraws > 0 {
			d.Warm(cc.Mix, cc.WarmEpochs, cc.WarmDraws, seed+17)
		}
		rc, err := d.RunConfigWithFaults(cc.Mix, seed, cc.FaultSchedule)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		rc.Ops = cc.OpsPerNode
		rc.ClientThreads = cc.ClientThreads
		rc.ServerThreads = cc.ServerThreads
		if cc.Metrics != nil {
			regs[i] = obs.NewRegistry()
			rc.Metrics = regs[i]
		}
		if i == 0 {
			rc.Tracer = cc.Tracer
		}
		rc.fill()
		rcp := &rc
		sr := startRun(se.Partition(i), d.Store, d.Alloc, rcp, cl, i)
		started[i] = sr
		stores[i] = d.Store
		cl.nodes[i] = sr.rl
	}

	se.RunWhile(func() bool {
		for _, sr := range started {
			if sr.rl.completed < sr.rl.totalOps {
				return true
			}
		}
		return false
	})
	end := se.Now()

	res := &ClusterResult{
		PerNode: make([]Result, cc.Nodes),
		EndNs:   float64(end),
		Epochs:  se.Epochs(),
		Events:  se.Fired(),
		Shards:  se.Shards(),
	}
	merged := Result{
		Config:      string(cc.Config),
		Workload:    cc.Mix.Name,
		Latency:     stats.NewLatencyHistogram(),
		ReadLatency: stats.NewLatencyHistogram(),
	}
	var hits, misses uint64
	for i, sr := range started {
		r := sr.finish(end)
		r.Config = string(cc.Config)
		res.PerNode[i] = r
		merged.ThroughputOpsPerSec += r.ThroughputOpsPerSec
		merged.Latency.Merge(r.Latency)
		merged.ReadLatency.Merge(r.ReadLatency)
		merged.Migrated += r.Migrated
		merged.Timeouts += r.Timeouts
		merged.Retries += r.Retries
		merged.Failed += r.Failed
		merged.Forwarded += r.Forwarded
		h, m := stores[i].CacheCounts()
		hits += h
		misses += m
		if cc.Metrics != nil {
			cc.Metrics.Merge(regs[i])
		}
	}
	if hits+misses > 0 {
		merged.HitRate = float64(hits) / float64(hits+misses)
	}
	res.Merged = merged
	return res, nil
}
