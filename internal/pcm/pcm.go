// Package pcm is the simulation analogue of Intel's Performance Counter
// Monitor: it samples per-resource utilization and bandwidth so
// experiments can report the counters the paper quotes (e.g. "UPI
// utilization is consistently below 30%", §3.2; the bandwidth plateaus
// of Fig. 10(b,c)).
//
// Samples come from either a raw solver snapshot (Record) or — the
// preferred path since the obs layer became the system-wide counter
// source — from the canonical obs gauge families that instrumented
// subsystems keep updated (RecordFromRegistry). Either way pcm is a thin
// consumer: it aggregates what others measure.
package pcm

import (
	"fmt"
	"sort"

	"cxlsim/internal/memsim"
	"cxlsim/internal/obs"
	"cxlsim/internal/sim"
	"cxlsim/internal/stats"
)

// Sample is one counter snapshot.
type Sample struct {
	At          sim.Time
	Utilization map[string]float64 // resource name → capacity fraction
	Bandwidth   map[string]float64 // resource name → approx delivered GB/s
}

// Monitor accumulates samples over an experiment.
type Monitor struct {
	samples []Sample
	perRes  map[string]*stats.Summary
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{perRes: map[string]*stats.Summary{}}
}

// Record converts a solver utilization snapshot into a sample. Bandwidth
// is estimated as utilization × the resource's best-case peak; exact
// per-mix bandwidth lives in the flow results, but counters (like real
// PCM) report link-level aggregates.
func (m *Monitor) Record(at sim.Time, util memsim.Utilization) {
	s := Sample{At: at, Utilization: map[string]float64{}, Bandwidth: map[string]float64{}}
	for r, u := range util {
		s.Utilization[r.Name] = u
		s.Bandwidth[r.Name] = u * r.Peak.Max()
		sum := m.perRes[r.Name]
		if sum == nil {
			sum = &stats.Summary{}
			m.perRes[r.Name] = sum
		}
		sum.Add(u)
	}
	m.samples = append(m.samples, s)
}

// RecordFromRegistry appends a sample read from the obs registry's
// canonical per-resource gauge families (obs.MetricUtilization and
// obs.MetricBandwidth), which obs.InstrumentMemsim and the kvstore epoch
// loop keep current. It records nothing if the registry has no
// utilization family yet.
func (m *Monitor) RecordFromRegistry(at sim.Time, reg *obs.Registry) {
	snap := reg.Snapshot()
	uf, ok := snap.Find(obs.MetricUtilization)
	if !ok || len(uf.Metrics) == 0 {
		return
	}
	s := Sample{At: at, Utilization: map[string]float64{}, Bandwidth: map[string]float64{}}
	for _, mt := range uf.Metrics {
		name := mt.LabelValues[0]
		s.Utilization[name] = mt.Value
		sum := m.perRes[name]
		if sum == nil {
			sum = &stats.Summary{}
			m.perRes[name] = sum
		}
		sum.Add(mt.Value)
	}
	if bf, ok := snap.Find(obs.MetricBandwidth); ok {
		for _, mt := range bf.Metrics {
			s.Bandwidth[mt.LabelValues[0]] = mt.Value
		}
	}
	m.samples = append(m.samples, s)
}

// Samples returns all recorded samples in order.
func (m *Monitor) Samples() []Sample { return m.samples }

// MeanUtilization reports the average utilization of a resource across
// all samples (0 if never seen).
func (m *Monitor) MeanUtilization(resource string) float64 {
	if s, ok := m.perRes[resource]; ok {
		return s.Mean()
	}
	return 0
}

// MaxUtilization reports the peak utilization of a resource.
func (m *Monitor) MaxUtilization(resource string) float64 {
	if s, ok := m.perRes[resource]; ok {
		return s.Max()
	}
	return 0
}

// Resources lists resource names seen, sorted.
func (m *Monitor) Resources() []string {
	out := make([]string, 0, len(m.perRes))
	for name := range m.perRes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// String renders a compact counter report.
func (m *Monitor) String() string {
	s := fmt.Sprintf("pcm{%d samples", len(m.samples))
	for _, name := range m.Resources() {
		s += fmt.Sprintf(" %s=%.0f%%", name, m.MeanUtilization(name)*100)
	}
	return s + "}"
}
