package pcm

import (
	"math"
	"strings"
	"testing"

	"cxlsim/internal/memsim"
	"cxlsim/internal/obs"
	"cxlsim/internal/topology"
)

func TestMonitorRecordsUtilization(t *testing.T) {
	m := topology.TestbedSNC()
	mon := NewMonitor()
	node := m.DRAMNodes(0)[0]
	p := m.PathFrom(0, node)
	_, util := memsim.SolveOpen([]memsim.OpenFlow{
		{Placement: memsim.SinglePath(p), Mix: memsim.ReadOnly, Offered: 33.5},
	})
	mon.Record(0, util)
	if got := mon.MeanUtilization(node.Name); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("mean utilization = %v, want ≈0.5 (33.5 of 67)", got)
	}
	if len(mon.Samples()) != 1 {
		t.Fatalf("samples = %d", len(mon.Samples()))
	}
	if bw := mon.Samples()[0].Bandwidth[node.Name]; bw < 30 || bw > 37 {
		t.Fatalf("bandwidth estimate = %v, want ≈33.5", bw)
	}
}

func TestMonitorAggregates(t *testing.T) {
	m := topology.TestbedSNC()
	mon := NewMonitor()
	node := m.DRAMNodes(0)[0]
	p := m.PathFrom(0, node)
	for _, offered := range []float64{10, 20, 30} {
		_, util := memsim.SolveOpen([]memsim.OpenFlow{
			{Placement: memsim.SinglePath(p), Mix: memsim.ReadOnly, Offered: offered},
		})
		mon.Record(0, util)
	}
	mean := mon.MeanUtilization(node.Name)
	if math.Abs(mean-20.0/67) > 0.01 {
		t.Fatalf("mean = %v, want %v", mean, 20.0/67)
	}
	if max := mon.MaxUtilization(node.Name); math.Abs(max-30.0/67) > 0.01 {
		t.Fatalf("max = %v, want %v", max, 30.0/67)
	}
}

func TestMonitorUnknownResource(t *testing.T) {
	mon := NewMonitor()
	if mon.MeanUtilization("nope") != 0 || mon.MaxUtilization("nope") != 0 {
		t.Fatal("unknown resource should report 0")
	}
}

func TestUPIUtilizationBelow30OnRemoteCXL(t *testing.T) {
	// §3.2: even at the remote-CXL bandwidth clamp, "UPI utilization is
	// consistently below 30%" — the RSF, not UPI, is the bottleneck.
	m := topology.TestbedSNC()
	mon := NewMonitor()
	cxl := m.CXLNodes()[0]
	p := m.PathFrom(1, cxl)
	peak := p.PeakBandwidth(memsim.Mix2to1)
	_, util := memsim.SolveOpen([]memsim.OpenFlow{
		{Placement: memsim.SinglePath(p), Mix: memsim.Mix2to1, Offered: peak},
	})
	mon.Record(0, util)
	if u := mon.MeanUtilization(m.UPI().Name); u >= 0.45 {
		t.Fatalf("UPI utilization %v at remote-CXL saturation; paper observes the UPI is not the bottleneck", u)
	}
}

func TestResourcesSortedAndString(t *testing.T) {
	m := topology.TestbedSNC()
	mon := NewMonitor()
	p := m.PathFrom(1, m.CXLNodes()[0])
	_, util := memsim.SolveOpen([]memsim.OpenFlow{
		{Placement: memsim.SinglePath(p), Mix: memsim.ReadOnly, Offered: 5},
	})
	mon.Record(0, util)
	rs := mon.Resources()
	if len(rs) != 3 { // upi + rsf + cxl device
		t.Fatalf("resources = %v", rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i] < rs[i-1] {
			t.Fatal("resources not sorted")
		}
	}
	if !strings.Contains(mon.String(), "samples") {
		t.Fatal("String() malformed")
	}
}

func TestMonitorReadsFromObsRegistry(t *testing.T) {
	m := topology.TestbedSNC()
	reg := obs.NewRegistry()
	obs.InstrumentMemsim(reg)
	defer obs.InstrumentMemsim(nil)

	node := m.DRAMNodes(0)[0]
	p := m.PathFrom(0, node)
	_, _ = memsim.SolveOpen([]memsim.OpenFlow{
		{Placement: memsim.SinglePath(p), Mix: memsim.ReadOnly, Offered: 33.5},
	})

	mon := NewMonitor()
	mon.RecordFromRegistry(0, reg)
	if got := mon.MeanUtilization(node.Name); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("mean utilization via obs = %v, want ≈0.5", got)
	}
	if bw := mon.Samples()[0].Bandwidth[node.Name]; bw < 30 || bw > 37 {
		t.Fatalf("bandwidth via obs = %v, want ≈33.5", bw)
	}

	// An empty registry records nothing.
	empty := NewMonitor()
	empty.RecordFromRegistry(0, obs.NewRegistry())
	if len(empty.Samples()) != 0 {
		t.Fatalf("empty registry produced %d samples", len(empty.Samples()))
	}
}
