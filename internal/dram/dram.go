// Package dram is a bank-level DDR5 timing model built on the sim kernel.
//
// The analytic memsim device curves are calibrated to the paper's
// measurements; this package cross-validates their *shape* from first
// principles: a DDR5-4800 channel with bank groups, open-row policy, an
// FR-FCFS-lite controller, refresh, and bus turnaround reproduces the
// phenomena the anchors encode —
//
//   - streaming reads reach ≈85–90% of the pin-rate peak (the paper's
//     87%) because row hits amortize activation;
//   - write-heavy mixes lose bandwidth to bus turnaround and write
//     recovery (the 54.6 vs 67 GB/s gap);
//   - random 64 B accesses at high concurrency still approach streaming
//     bandwidth on an idle channel (Fig. 4(g,h): "no significant
//     disparity") because bank-level parallelism hides row misses;
//   - latency rises steeply once queues form near saturation.
//
// See TestCrossValidatesAnalyticModel for the explicit comparison.
package dram

import (
	"fmt"
	"math/rand"

	"cxlsim/internal/sim"
)

// Timing holds the DDR timing parameters in nanoseconds.
type Timing struct {
	TRCD   float64 // ACT → column command
	TRP    float64 // PRE → ACT
	TCAS   float64 // column command → first data
	TRAS   float64 // ACT → PRE minimum
	TWR    float64 // write recovery after last data
	TBurst float64 // data-bus occupancy of one BL16 burst (64 B)
	TWTR   float64 // write→read bus turnaround
	TRTW   float64 // read→write bus turnaround
	TRFC   float64 // refresh duration
	TREFI  float64 // refresh interval
}

// DDR5_4800 is a typical DDR5-4800 CL38 part: 4800 MT/s × 8 B = 38.4 GB/s
// pin rate; a BL16 burst moves 64 B in 8 memory-clock cycles (2400 MHz)
// ≈ 3.33 ns.
func DDR5_4800() Timing {
	return Timing{
		TRCD:   16,
		TRP:    16,
		TCAS:   16,
		TRAS:   32,
		TWR:    30,
		TBurst: 64.0 / 38.4, // ns per 64 B at pin rate
		TWTR:   10,
		TRTW:   5,
		TRFC:   295,
		TREFI:  3900,
	}
}

// Geometry describes the channel organization.
type Geometry struct {
	Banks    int // total banks (bank groups × banks/group)
	RowBytes int // bytes per row (page size per device row across the rank)
}

// DefaultGeometry is a dual-rank DIMM: 2 × 32 banks (8 groups × 4) with
// 8 KB rows.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 64, RowBytes: 8 << 10}
}

// bank tracks one bank's state.
type bank struct {
	openRow     int64 // -1 = precharged
	availableAt sim.Time
	openedAt    sim.Time
}

// Channel is one DDR channel with its controller state.
type Channel struct {
	timing Timing
	geom   Geometry
	banks  []bank

	busFreeAt    sim.Time
	lastWasWrite bool
	refreshUntil sim.Time
	nextRefresh  sim.Time

	// stats
	reqs, rowHits, rowMisses uint64
	bytesMoved               float64
	latencySum               float64
}

// NewChannel builds a channel.
func NewChannel(t Timing, g Geometry) *Channel {
	if g.Banks < 1 || g.RowBytes < 64 {
		panic(fmt.Sprintf("dram: invalid geometry %+v", g))
	}
	ch := &Channel{timing: t, geom: g, banks: make([]bank, g.Banks), nextRefresh: sim.Time(t.TREFI)}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// decode maps a byte address to (bank, row): consecutive rows rotate
// across banks, so a sequential stream engages every bank in turn and
// concurrent streams that start on distinct banks stay conflict-free in
// lockstep (the behaviour an FR-FCFS scheduler approximates by batching
// row hits).
func (c *Channel) decode(addr uint64) (bankIdx int, row int64) {
	rowID := addr / uint64(c.geom.RowBytes)
	return int(rowID % uint64(c.geom.Banks)), int64(rowID)
}

// Access performs one 64 B access at virtual time now and returns
// (completionTime, latency). The controller model: per-bank open-row
// state with precharge/activate on miss, shared data bus with turnaround
// penalties, and blocking refresh windows.
func (c *Channel) Access(now sim.Time, addr uint64, write bool) (sim.Time, float64) {
	// Refresh bookkeeping.
	if now >= c.nextRefresh {
		c.refreshUntil = c.nextRefresh + sim.Time(c.timing.TRFC)
		c.nextRefresh += sim.Time(c.timing.TREFI)
	}
	start := now
	if start < c.refreshUntil {
		start = c.refreshUntil
	}

	bi, row := c.decode(addr)
	b := &c.banks[bi]
	if start < b.availableAt {
		start = b.availableAt
	}

	colReady := start
	if b.openRow == row {
		c.rowHits++
	} else {
		c.rowMisses++
		if b.openRow >= 0 {
			// Respect tRAS before precharge.
			minPre := b.openedAt + sim.Time(c.timing.TRAS)
			if colReady < minPre {
				colReady = minPre
			}
			colReady += sim.Time(c.timing.TRP)
		}
		colReady += sim.Time(c.timing.TRCD)
		b.openRow = row
		b.openedAt = colReady
	}

	// Data bus: one burst at a time, with turnaround penalties. Writes
	// occupy the bus longer (preamble + CRC + tWR pressure folded into
	// effective occupancy) — the mechanism behind the 54.6 vs 67 GB/s
	// write/read gap.
	burst := sim.Time(c.timing.TBurst)
	if write {
		burst = sim.Time(c.timing.TBurst * writeBurstFactor)
	}
	dataStart := colReady + sim.Time(c.timing.TCAS)
	if dataStart < c.busFreeAt {
		dataStart = c.busFreeAt
	}
	if c.reqs > 0 && write != c.lastWasWrite {
		if write {
			dataStart += sim.Time(c.timing.TRTW)
		} else {
			dataStart += sim.Time(c.timing.TWTR)
		}
	}
	dataEnd := dataStart + burst
	c.busFreeAt = dataEnd
	c.lastWasWrite = write

	// CAS commands pipeline: the bank accepts its next column command a
	// burst after the previous one (tCCD), not after data completes —
	// this is what lets a single prefetched stream saturate the bus.
	b.availableAt = colReady + burst

	c.reqs++
	c.bytesMoved += 64
	lat := float64(dataEnd - now)
	c.latencySum += lat
	return dataEnd, lat
}

// RowHitRate reports the fraction of accesses that hit an open row.
func (c *Channel) RowHitRate() float64 {
	total := c.rowHits + c.rowMisses
	if total == 0 {
		return 0
	}
	return float64(c.rowHits) / float64(total)
}

// Pattern selects the generated address stream.
type Pattern int

// Patterns.
const (
	Stream Pattern = iota // sequential 64 B strides
	Rand                  // uniform random rows
)

// writeBurstFactor stretches write bursts (interamble, CRC, tWR
// pressure); calibrated so a write-only stream lands near the paper's
// 81% of read bandwidth (54.6/67).
const writeBurstFactor = 1.23

// Workload drives a channel measurement.
type Workload struct {
	Pattern  Pattern
	ReadFrac float64 // fraction of accesses that read
	// Streams is the number of independent access sequences; Depth is
	// outstanding accesses per stream (prefetch depth). Total MLP =
	// Streams × Depth.
	Streams   int
	Depth     int
	Footprint uint64 // bytes of address space touched
	Accesses  int    // total accesses to simulate
	Seed      int64
}

// Result summarizes a measurement.
type Result struct {
	BandwidthGBps float64
	AvgLatencyNs  float64
	RowHitRate    float64
	Efficiency    float64 // bandwidth / pin rate
}

// Measure runs the workload against a fresh channel and reports achieved
// bandwidth, latency, and row behaviour. Concurrency is modeled as N
// independent streams whose next access issues when its previous one
// completes (a closed loop per stream).
func Measure(t Timing, g Geometry, w Workload) Result {
	if w.Streams < 1 || w.Depth < 1 || w.Accesses < 1 || w.Footprint < 64 {
		panic(fmt.Sprintf("dram: invalid workload %+v", w))
	}
	if w.ReadFrac < 0 || w.ReadFrac > 1 {
		panic("dram: ReadFrac outside [0,1]")
	}
	ch := NewChannel(t, g)
	eng := sim.NewEngine()
	rng := rand.New(rand.NewSource(w.Seed))

	// Memory controllers batch same-direction transfers (write-queue
	// draining) so bus turnarounds amortize; we draw the read/write
	// direction once per block of accesses rather than per access.
	const directionBlock = 16
	blockLeft := 0
	blockWrite := false

	issued := 0
	var lastEnd sim.Time
	offsets := make([]uint64, w.Streams)
	span := w.Footprint / uint64(w.Streams)
	if span < 64 {
		span = 64
	}
	// Stagger stream starts by one row each so concurrent streams open
	// distinct banks and rotate in lockstep.
	for i := range offsets {
		offsets[i] = uint64(i) * uint64(g.RowBytes)
	}

	var issue func(si int, now sim.Time)
	issue = func(si int, now sim.Time) {
		if issued >= w.Accesses {
			return
		}
		issued++
		var addr uint64
		switch w.Pattern {
		case Stream:
			addr = uint64(si)*span + offsets[si]%span
			offsets[si] += 64
		default:
			addr = uint64(rng.Int63n(int64(w.Footprint/64))) * 64
		}
		if blockLeft == 0 {
			blockWrite = rng.Float64() >= w.ReadFrac
			blockLeft = directionBlock
		}
		blockLeft--
		end, _ := ch.Access(now, addr, blockWrite)
		if end > lastEnd {
			lastEnd = end
		}
		eng.At(end, func(t sim.Time) { issue(si, t) })
	}
	// Prime each stream with Depth outstanding accesses.
	for si := 0; si < w.Streams; si++ {
		for d := 0; d < w.Depth && issued < w.Accesses; d++ {
			issue(si, 0)
		}
	}
	eng.Run()

	elapsed := float64(lastEnd)
	res := Result{RowHitRate: ch.RowHitRate()}
	if elapsed > 0 {
		res.BandwidthGBps = ch.bytesMoved / elapsed
	}
	if ch.reqs > 0 {
		res.AvgLatencyNs = ch.latencySum / float64(ch.reqs)
	}
	pin := 64.0 / t.TBurst
	res.Efficiency = res.BandwidthGBps / pin
	return res
}
