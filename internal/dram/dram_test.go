package dram

import (
	"testing"
	"testing/quick"

	"cxlsim/internal/memsim"
)

func defaults() (Timing, Geometry) { return DDR5_4800(), DefaultGeometry() }

func measure(t *testing.T, w Workload) Result {
	t.Helper()
	timing, geom := defaults()
	return Measure(timing, geom, w)
}

func deepStream(readFrac float64) Workload {
	return Workload{Pattern: Stream, ReadFrac: readFrac, Streams: 16, Depth: 8,
		Footprint: 1 << 30, Accesses: 300_000, Seed: 1}
}

func TestStreamingReadEfficiency(t *testing.T) {
	// The paper measures 87% of theoretical for streaming reads at the
	// system level; the bank-level model (which omits controller and
	// on-die overheads) should land between that and the pin rate.
	r := measure(t, deepStream(1))
	if r.Efficiency < 0.85 || r.Efficiency > 0.99 {
		t.Fatalf("streaming read efficiency = %.3f, want 0.85–0.99", r.Efficiency)
	}
	if r.RowHitRate < 0.95 {
		t.Fatalf("streaming row-hit rate = %.3f, want ≥0.95", r.RowHitRate)
	}
}

func TestWriteBandwidthGap(t *testing.T) {
	// Paper: write-only peaks at 54.6/67 ≈ 81% of read-only.
	rd := measure(t, deepStream(1))
	wr := measure(t, deepStream(0))
	ratio := wr.BandwidthGBps / rd.BandwidthGBps
	if ratio < 0.75 || ratio > 0.90 {
		t.Fatalf("write/read bandwidth ratio = %.3f, want ≈0.81", ratio)
	}
}

func TestMixedTrafficBetweenPureExtremes(t *testing.T) {
	rd := measure(t, deepStream(1))
	wr := measure(t, deepStream(0))
	mx := measure(t, deepStream(2.0/3))
	if mx.BandwidthGBps > rd.BandwidthGBps || mx.BandwidthGBps < wr.BandwidthGBps*0.97 {
		t.Fatalf("2:1 bandwidth %.1f should sit between write %.1f and read %.1f",
			mx.BandwidthGBps, wr.BandwidthGBps, rd.BandwidthGBps)
	}
}

func TestRandomNearStreaming(t *testing.T) {
	// Fig. 4(g,h): random 64 B access at deep concurrency shows no
	// dramatic disparity vs sequential — bank-level parallelism hides
	// row misses. Allow up to a 25% haircut.
	seq := measure(t, deepStream(1))
	rnd := measure(t, Workload{Pattern: Rand, ReadFrac: 1, Streams: 16, Depth: 8,
		Footprint: 1 << 30, Accesses: 300_000, Seed: 1})
	if ratio := rnd.BandwidthGBps / seq.BandwidthGBps; ratio < 0.75 {
		t.Fatalf("random/sequential = %.2f, want ≥0.75", ratio)
	}
	if rnd.RowHitRate > 0.05 {
		t.Fatalf("random row-hit rate = %.3f, should be ≈0", rnd.RowHitRate)
	}
}

func TestIdleLatencyComponents(t *testing.T) {
	// A single dependent access chain sees closed-page latency
	// ≈ tRP+tRCD+tCAS+burst ≈ 51 ns — the DRAM core of the 97 ns
	// system-level idle latency (the rest is cache/mesh/controller).
	r := measure(t, Workload{Pattern: Rand, ReadFrac: 1, Streams: 1, Depth: 1,
		Footprint: 1 << 30, Accesses: 20_000, Seed: 2})
	if r.AvgLatencyNs < 45 || r.AvgLatencyNs > 60 {
		t.Fatalf("dependent-chain latency = %.1f ns, want ≈51", r.AvgLatencyNs)
	}
	// Open-row hits are much faster.
	hit := measure(t, Workload{Pattern: Stream, ReadFrac: 1, Streams: 1, Depth: 1,
		Footprint: 1 << 30, Accesses: 20_000, Seed: 2})
	if hit.AvgLatencyNs >= r.AvgLatencyNs/2 {
		t.Fatalf("row-hit latency %.1f should be well under closed-page %.1f", hit.AvgLatencyNs, r.AvgLatencyNs)
	}
}

func TestLatencyRisesWithConcurrency(t *testing.T) {
	// The loaded-latency hockey stick: as offered concurrency grows past
	// what the bus can drain, queueing dominates.
	shallow := measure(t, Workload{Pattern: Stream, ReadFrac: 1, Streams: 4, Depth: 2,
		Footprint: 1 << 30, Accesses: 100_000, Seed: 3})
	deep := measure(t, Workload{Pattern: Stream, ReadFrac: 1, Streams: 16, Depth: 16,
		Footprint: 1 << 30, Accesses: 300_000, Seed: 3})
	if deep.AvgLatencyNs < shallow.AvgLatencyNs*3 {
		t.Fatalf("saturated latency %.0f should dwarf light-load latency %.0f",
			deep.AvgLatencyNs, shallow.AvgLatencyNs)
	}
	if deep.BandwidthGBps < shallow.BandwidthGBps {
		t.Fatal("deeper concurrency must not reduce bandwidth")
	}
}

// TestCrossValidatesAnalyticModel ties the two models together: the
// bank-level simulation's streaming efficiency and write/read ratio must
// agree with the calibrated memsim anchors within modeling error.
func TestCrossValidatesAnalyticModel(t *testing.T) {
	ddr := memsim.NewDDRDomain("ddr")
	// memsim anchors are per SNC domain (2 channels); normalize to
	// theoretical peaks for comparison.
	anchorReadEff := ddr.Peak.At(1) / memsim.SNCDomainPeakGBps // 0.87
	anchorWriteRatio := ddr.Peak.At(0) / ddr.Peak.At(1)        // 0.815

	rd := measure(t, deepStream(1))
	wr := measure(t, deepStream(0))
	simWriteRatio := wr.BandwidthGBps / rd.BandwidthGBps

	if diff := simWriteRatio - anchorWriteRatio; diff < -0.08 || diff > 0.08 {
		t.Fatalf("write/read ratio: bank model %.3f vs anchor %.3f", simWriteRatio, anchorWriteRatio)
	}
	// The bank model bounds the anchor from above (it omits controller,
	// mesh, and scheduling overheads the real 87% includes).
	if rd.Efficiency < anchorReadEff {
		t.Fatalf("bank-model read efficiency %.3f below system anchor %.3f", rd.Efficiency, anchorReadEff)
	}
}

func TestRefreshCostsBandwidth(t *testing.T) {
	timing, geom := defaults()
	noRefresh := timing
	noRefresh.TREFI = 1e12 // effectively never
	w := deepStream(1)
	with := Measure(timing, geom, w)
	without := Measure(noRefresh, geom, w)
	if with.BandwidthGBps >= without.BandwidthGBps {
		t.Fatal("refresh must cost some bandwidth")
	}
}

func TestChannelValidation(t *testing.T) {
	timing := DDR5_4800()
	for name, f := range map[string]func(){
		"banks":    func() { NewChannel(timing, Geometry{Banks: 0, RowBytes: 8192}) },
		"rowbytes": func() { NewChannel(timing, Geometry{Banks: 32, RowBytes: 32}) },
		"workload": func() { Measure(timing, DefaultGeometry(), Workload{}) },
		"readfrac": func() {
			Measure(timing, DefaultGeometry(),
				Workload{Streams: 1, Depth: 1, Accesses: 1, Footprint: 64, ReadFrac: 2})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRowHitRateEmptyChannel(t *testing.T) {
	ch := NewChannel(DDR5_4800(), DefaultGeometry())
	if ch.RowHitRate() != 0 {
		t.Fatal("fresh channel hit rate should be 0")
	}
}

func TestDeterministic(t *testing.T) {
	w := Workload{Pattern: Rand, ReadFrac: 0.7, Streams: 8, Depth: 4,
		Footprint: 1 << 28, Accesses: 50_000, Seed: 9}
	timing, geom := defaults()
	a := Measure(timing, geom, w)
	b := Measure(timing, geom, w)
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// Property: bandwidth never exceeds the pin rate and latency is at least
// the burst time, for any workload shape.
func TestPropertyPhysicalBounds(t *testing.T) {
	timing, geom := defaults()
	pin := 64.0 / timing.TBurst
	f := func(streamsRaw, depthRaw, rfRaw uint8, pattern bool) bool {
		w := Workload{
			ReadFrac:  float64(rfRaw%101) / 100,
			Streams:   int(streamsRaw%16) + 1,
			Depth:     int(depthRaw%8) + 1,
			Footprint: 1 << 26,
			Accesses:  5000,
			Seed:      int64(streamsRaw) + 1,
		}
		if pattern {
			w.Pattern = Rand
		}
		r := Measure(timing, geom, w)
		return r.BandwidthGBps <= pin+1e-9 && r.AvgLatencyNs >= timing.TBurst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChannelAccess(b *testing.B) {
	ch := NewChannel(DDR5_4800(), DefaultGeometry())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch.Access(0, uint64(i*64), i%3 == 0)
	}
}
