package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"cxlsim/internal/kvstore"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

func sample(t *testing.T, n int) *Trace {
	t.Helper()
	return Record(workload.NewYCSB(workload.YCSBA, 1<<16, 7), n)
}

func TestRecordLen(t *testing.T) {
	tr := sample(t, 1000)
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample(t, 5000)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len %d != %d", back.Len(), tr.Len())
	}
	for i := range tr.Ops {
		if tr.Ops[i] != back.Ops[i] {
			t.Fatalf("op %d: %v != %v", i, tr.Ops[i], back.Ops[i])
		}
	}
}

func TestCompactness(t *testing.T) {
	tr := sample(t, 10000)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// 10k ops over a 64k keyspace: varint-delta coding should stay well
	// under the naive 9 bytes/op.
	if perOp := float64(buf.Len()) / 10000; perOp > 5 {
		t.Fatalf("%.1f bytes/op, want < 5", perOp)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE1234"),
		"truncated": append([]byte("CXLT"), 0xff),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
		}
	}
	// Valid header claiming absurd count.
	big := append([]byte("CXLT"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := Read(bytes.NewReader(big)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("huge count: err = %v, want ErrBadTrace", err)
	}
}

func TestReadRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	tr := &Trace{Ops: []workload.Op{{Kind: workload.OpKind(9), Key: 1}}}
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace for invalid kind", err)
	}
}

func TestReplayerCycles(t *testing.T) {
	tr := &Trace{Ops: []workload.Op{
		{Kind: workload.OpRead, Key: 1},
		{Kind: workload.OpUpdate, Key: 2},
	}}
	r := NewReplayer(tr)
	want := []uint64{1, 2, 1, 2, 1}
	for i, k := range want {
		if op := r.Next(); op.Key != k {
			t.Fatalf("replay %d: key %d, want %d", i, op.Key, k)
		}
	}
}

func TestReplayerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty trace should panic")
		}
	}()
	NewReplayer(&Trace{})
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Ops: []workload.Op{
		{Kind: workload.OpRead, Key: 1},
		{Kind: workload.OpRead, Key: 1},
		{Kind: workload.OpUpdate, Key: 2},
		{Kind: workload.OpInsert, Key: 3},
		{Kind: workload.OpScan, Key: 4},
	}}
	s := tr.Summarize()
	if s.Reads != 2 || s.Updates != 1 || s.Inserts != 1 || s.Scans != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.UniqueKeys != 4 {
		t.Fatalf("unique keys = %d, want 4", s.UniqueKeys)
	}
}

// TestReplayDrivesKVStore: a captured trace replays through the KV store
// end-to-end and reproduces the generator-driven run exactly (same ops in
// the same order ⇒ same throughput).
func TestReplayDrivesKVStore(t *testing.T) {
	tr := Record(workload.NewYCSB(workload.YCSBC, 1<<14, 3), 8000)

	deploy := func() (*kvstore.Store, *vmm.Allocator) {
		m := topology.Testbed()
		alloc := vmm.NewAllocator(m)
		st, err := kvstore.NewStore(m, alloc, kvstore.StoreConfig{
			WorkingSetBytes: 100 << 30, SimKeys: 1 << 14, MaxMemoryFrac: 1,
			Policy: vmm.Bind{Nodes: m.DRAMNodes(0)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st, alloc
	}

	st1, a1 := deploy()
	r1 := kvstore.Run(st1, a1, kvstore.RunConfig{
		Mix: workload.YCSBC, Ops: 4000, Seed: 3, Source: NewReplayer(tr),
	})
	st2, a2 := deploy()
	r2 := kvstore.Run(st2, a2, kvstore.RunConfig{
		Mix: workload.YCSBC, Ops: 4000, Seed: 3, Source: NewReplayer(tr),
	})
	if r1.ThroughputOpsPerSec != r2.ThroughputOpsPerSec {
		t.Fatal("trace replay is not deterministic")
	}
	if r1.ThroughputOpsPerSec <= 0 {
		t.Fatal("replay produced no throughput")
	}
}

// Property: any op sequence round-trips through the codec.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(kinds []uint8, keys []uint32) bool {
		n := len(kinds)
		if len(keys) < n {
			n = len(keys)
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			tr.Ops = append(tr.Ops, workload.Op{
				Kind: workload.OpKind(kinds[i] % 4),
				Key:  uint64(keys[i]),
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.Len() != tr.Len() {
			return false
		}
		for i := range tr.Ops {
			if tr.Ops[i] != back.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTraceWrite(b *testing.B) {
	tr := Record(workload.NewYCSB(workload.YCSBA, 1<<16, 7), 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
