// Package trace records and replays workload operation streams. Traces
// decouple workload generation from execution: capture a YCSB run once
// (or import a production keyspace trace) and replay it bit-identically
// against different memory configurations — the methodology the paper's
// open-sourced artifact data supports.
//
// Format: "CXLT" magic, a uvarint record count, then per-op records of
// (kind uvarint, key-delta zigzag-varint). Key deltas make Zipfian traces
// compress well under the varint coding.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cxlsim/internal/workload"
)

// magic identifies a cxlsim trace stream.
var magic = [4]byte{'C', 'X', 'L', 'T'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace")

// Trace is an in-memory operation stream.
type Trace struct {
	Ops []workload.Op
}

// Record captures n operations from a generator.
func Record(src interface{ Next() workload.Op }, n int) *Trace {
	if n < 0 {
		panic("trace: negative op count")
	}
	t := &Trace{Ops: make([]workload.Op, 0, n)}
	for i := 0; i < n; i++ {
		t.Ops = append(t.Ops, src.Next())
	}
	return t
}

// Len reports the number of operations.
func (t *Trace) Len() int { return len(t.Ops) }

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t.Ops)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prev := uint64(0)
	for _, op := range t.Ops {
		n = binary.PutUvarint(buf[:], uint64(op.Kind))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		delta := int64(op.Key) - int64(prev)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = op.Key
	}
	return bw.Flush()
}

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadTrace, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, m)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadTrace, err)
	}
	const maxOps = 1 << 30
	if count > maxOps {
		return nil, fmt.Errorf("%w: implausible op count %d", ErrBadTrace, count)
	}
	t := &Trace{Ops: make([]workload.Op, 0, count)}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		kind, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: op %d kind: %v", ErrBadTrace, i, err)
		}
		if kind > uint64(workload.OpScan) {
			return nil, fmt.Errorf("%w: op %d has invalid kind %d", ErrBadTrace, i, kind)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: op %d key: %v", ErrBadTrace, i, err)
		}
		key := int64(prev) + delta
		if key < 0 {
			return nil, fmt.Errorf("%w: op %d key underflow", ErrBadTrace, i)
		}
		prev = uint64(key)
		t.Ops = append(t.Ops, workload.Op{Kind: workload.OpKind(kind), Key: prev})
	}
	return t, nil
}

// Replayer yields a trace's operations in order, cycling when exhausted
// (so a short capture can drive a long run).
type Replayer struct {
	t   *Trace
	pos int
}

// NewReplayer wraps a non-empty trace.
func NewReplayer(t *Trace) *Replayer {
	if t == nil || len(t.Ops) == 0 {
		panic("trace: replaying an empty trace")
	}
	return &Replayer{t: t}
}

// Next returns the next operation, cycling at the end.
func (r *Replayer) Next() workload.Op {
	op := r.t.Ops[r.pos]
	r.pos = (r.pos + 1) % len(r.t.Ops)
	return op
}

// Stats summarizes a trace's composition.
type Stats struct {
	Reads, Updates, Inserts, Scans int
	UniqueKeys                     int
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	var s Stats
	seen := map[uint64]struct{}{}
	for _, op := range t.Ops {
		switch op.Kind {
		case workload.OpRead:
			s.Reads++
		case workload.OpUpdate:
			s.Updates++
		case workload.OpInsert:
			s.Inserts++
		case workload.OpScan:
			s.Scans++
		}
		seen[op.Key] = struct{}{}
	}
	s.UniqueKeys = len(seen)
	return s
}
