package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperWorkedExample(t *testing.T) {
	// §6: Rd=10, Rc=8, C=2 ⇒ N_cxl/N_baseline = 67.29%; with Rt=1.1 the
	// TCO saving is 25.98%.
	p := PaperExample()
	ratio, err := p.ServerRatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-0.6729) > 0.0001 {
		t.Errorf("server ratio = %.4f, paper reports 0.6729", ratio)
	}
	saving, err := p.TCOSaving()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(saving-0.2598) > 0.0001 {
		t.Errorf("TCO saving = %.4f, paper reports 0.2598", saving)
	}
}

func TestServerReduction(t *testing.T) {
	// "we may reduce the number of servers by 32.71%."
	ratio, _ := PaperExample().ServerRatio()
	if red := 1 - ratio; math.Abs(red-0.3271) > 0.0001 {
		t.Errorf("server reduction = %.4f, want 0.3271", red)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{Rd: 0.5, Rc: 0.4, C: 1, Rt: 1},
		{Rd: 10, Rc: 0.5, C: 1, Rt: 1},
		{Rd: 5, Rc: 8, C: 1, Rt: 1}, // CXL faster than DRAM
		{Rd: 10, Rc: 8, C: 0, Rt: 1},
		{Rd: 10, Rc: 8, C: 1, Rt: 0},
		{Rd: 10, Rc: 8, C: 1, Rt: 1, FixedCostFrac: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
		if _, err := p.ServerRatio(); err == nil {
			t.Errorf("case %d: ServerRatio should propagate validation error", i)
		}
	}
}

func TestFixedCostsReduceSaving(t *testing.T) {
	base, _ := PaperExample().TCOSaving()
	withFixed := PaperExample()
	withFixed.FixedCostFrac = 0.05
	s, err := withFixed.TCOSaving()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-s-0.05) > 1e-9 {
		t.Fatalf("fixed costs should subtract exactly: %v vs %v", base, s)
	}
}

func TestTimesConsistentWithRatio(t *testing.T) {
	// The server ratio must equate T_baseline and T_cxl for working
	// sets larger than cluster memory.
	p := PaperExample()
	ratio, _ := p.ServerRatio()
	const (
		w = 1000.0
		d = 10.0
		n = 20.0
	)
	tb := p.BaselineTime(w, d, n)
	tc := p.CXLTime(w, d, n*ratio)
	if math.Abs(tb-tc)/tb > 1e-9 {
		t.Fatalf("T_baseline=%v != T_cxl=%v at the model's server ratio", tb, tc)
	}
}

func TestTimesClampAtWorkingSet(t *testing.T) {
	p := PaperExample()
	// Everything fits in memory: time = W/Rd, no SSD segment.
	if tb := p.BaselineTime(100, 10, 50); math.Abs(tb-100.0/p.Rd) > 1e-9 {
		t.Fatalf("fully-cached baseline time = %v, want %v", tb, 100.0/p.Rd)
	}
	// CXL server with more memory than W: no CXL or SSD segment either.
	if tc := p.CXLTime(100, 200, 1); math.Abs(tc-100.0/p.Rd) > 1e-9 {
		t.Fatalf("fully-cached CXL time = %v", tc)
	}
}

func TestDegenerateDenominator(t *testing.T) {
	// Rc barely above 1 with small Rd can make the denominator
	// non-positive → ErrNoAdvantage rather than a garbage ratio.
	p := Params{Rd: 1.05, Rc: 1.01, C: 0.01, Rt: 1}
	if _, err := p.ServerRatio(); err == nil {
		t.Log("configuration unexpectedly valid; checking positivity instead")
		r, _ := p.ServerRatio()
		if r <= 0 {
			t.Fatal("non-positive ratio returned without error")
		}
	}
}

func TestSweep(t *testing.T) {
	pts := PaperExample().Sweep([]float64{0.5, 1, 2, 4, 8})
	if len(pts) != 5 {
		t.Fatalf("want 5 sweep points")
	}
	// More CXL per server (smaller C) means fewer servers needed:
	// server ratio should increase with C.
	for i := 1; i < len(pts); i++ {
		if !pts[i].Valid || !pts[i-1].Valid {
			continue
		}
		if pts[i].ServerRatio <= pts[i-1].ServerRatio {
			t.Errorf("server ratio should grow with C: %v", pts)
		}
	}
}

// Property: for valid parameter ranges, the server ratio is in (0, 1] —
// a CXL server never needs MORE servers than baseline under this model —
// and TCO saving is bounded above by 1.
func TestPropertyRatioBounds(t *testing.T) {
	f := func(rdRaw, rcRaw, cRaw uint8) bool {
		rd := 2 + float64(rdRaw%50)   // 2..51
		rc := 1.5 + float64(rcRaw%40) // 1.5..41.5
		if rc > rd {
			rc = rd
		}
		c := 0.25 * float64(1+cRaw%32) // 0.25..8
		p := Params{Rd: rd, Rc: rc, C: c, Rt: 1}
		ratio, err := p.ServerRatio()
		if err != nil {
			return true // degenerate params may error; that's fine
		}
		if ratio <= 0 || ratio > 1+1e-9 {
			return false
		}
		s, err := p.TCOSaving()
		return err == nil && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Regression: NaN compares false against every threshold in Validate's
// switch, so before the finiteness guard a NaN parameter passed
// validation and ServerRatio returned NaN with a nil error.
func TestValidateNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	base := PaperExample()
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"NaN Rd", func(p *Params) { p.Rd = nan }},
		{"NaN Rc", func(p *Params) { p.Rc = nan }},
		{"NaN C", func(p *Params) { p.C = nan }},
		{"NaN Rt", func(p *Params) { p.Rt = nan }},
		{"NaN FixedCostFrac", func(p *Params) { p.FixedCostFrac = nan }},
		{"+Inf Rd", func(p *Params) { p.Rd = inf }},
		{"+Inf C", func(p *Params) { p.C = inf }},
		{"-Inf Rc", func(p *Params) { p.Rc = -inf }},
		{"-Inf Rt", func(p *Params) { p.Rt = -inf }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted a non-finite parameter")
			}
			r, err := p.ServerRatio()
			if err == nil {
				t.Errorf("ServerRatio returned %v with nil error", r)
			}
			if math.IsNaN(r) {
				t.Error("ServerRatio leaked NaN")
			}
			if _, err := p.TCOSaving(); err == nil {
				t.Error("TCOSaving should propagate the error")
			}
		})
	}
}

// The denominator guard must catch float overflow from validated (finite
// but huge) inputs: +Inf denominators and NaN from Inf−Inf both yield
// descriptive errors instead of 0 or NaN ratios.
func TestDenominatorBoundary(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		// Rc·Rd overflows to +Inf ⇒ den = +Inf ⇒ num/den would be NaN.
		{"den +Inf", Params{Rd: 1e308, Rc: 1e308, C: 1, Rt: 1}},
		// Rc·Rd·(C+1) and C·Rc both overflow ⇒ den = Inf−Inf = NaN.
		{"den NaN", Params{Rd: 2, Rc: 2, C: 1e308, Rt: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err != nil {
				t.Fatalf("params should pass validation (finite): %v", err)
			}
			r, err := tc.p.ServerRatio()
			if err == nil {
				t.Fatalf("ServerRatio = %v with nil error; want denominator guard to trip", r)
			}
			if r != 0 {
				t.Errorf("errored ServerRatio should return 0, got %v", r)
			}
		})
	}
}

// With validated parameters (Rd>1, Rc>1, C>0, no overflow) the
// denominator is algebraically positive: it rewrites as
// C·Rc·(Rd−1) + Rd·(Rc−1), a sum of two positive terms.
func TestDenominatorPositiveForValidParams(t *testing.T) {
	f := func(rdRaw, rcRaw, cRaw uint16) bool {
		rd := 1 + float64(rdRaw%1000)/100 + 0.01 // 1.01..11
		rc := 1 + float64(rcRaw%1000)/100 + 0.01
		if rc > rd {
			rc = rd
		}
		c := float64(1+cRaw%1000) / 100 // 0.01..10
		p := Params{Rd: rd, Rc: rc, C: c, Rt: 1}
		if err := p.Validate(); err != nil {
			return true
		}
		r, err := p.ServerRatio()
		return err == nil && r > 0 && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkServerRatio(b *testing.B) {
	p := PaperExample()
	for i := 0; i < b.N; i++ {
		if _, err := p.ServerRatio(); err != nil {
			b.Fatal(err)
		}
	}
}
