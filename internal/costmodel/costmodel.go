// Package costmodel implements the paper's Abstract Cost Model (§6,
// Table 3): a TCO estimator for CXL adoption that needs only
// microbenchmark-derived relative throughputs — no internal or sensitive
// fleet data.
//
// The model splits a capacity-bound workload's execution into segments
// served from main memory, CXL memory, and SSD spill, equates the
// execution time of a baseline cluster with an (N_cxl-server) CXL
// cluster, and solves for the server-count ratio:
//
//	N_cxl / N_baseline = C·R_c·(R_d − 1) / (R_c·R_d·(C+1) − C·R_c − R_d)
//
//	TCO_saving = 1 − (N_cxl / N_baseline) · R_t
package costmodel

import (
	"errors"
	"fmt"
	"math"
)

// Params are the Table 3 parameters.
type Params struct {
	// Rd is the relative throughput with the whole working set in main
	// memory, normalized to the all-SSD baseline Ps=1. Example: 10.
	Rd float64
	// Rc is the relative throughput with the whole working set in CXL
	// memory, normalized to Ps=1. Example: 8.
	Rc float64
	// C is the ratio of main-memory to CXL capacity on a CXL server
	// (2 ⇒ the server has 2× more MMEM than CXL). Example: 2.
	C float64
	// Rt is the relative TCO of a CXL server vs a baseline server
	// (1.1 ⇒ 10% more expensive). Example: 1.1.
	Rt float64
	// FixedCostFrac optionally adds platform fixed costs (controllers,
	// switches, PCBs, cables — §6's "extending" discussion) as a
	// fraction of baseline cluster TCO.
	FixedCostFrac float64
}

// PaperExample returns the worked example of §6: Rd=10, Rc=8, C=2,
// Rt=1.1 ⇒ server ratio 67.29%, TCO saving 25.98%.
func PaperExample() Params {
	return Params{Rd: 10, Rc: 8, C: 2, Rt: 1.1}
}

// Validate checks parameter sanity. Non-finite fields are rejected
// explicitly: NaN compares false against every threshold below, so
// without this guard a NaN parameter would sail through the switch and
// poison ServerRatio's closed form with a nil error attached.
func (p Params) Validate() error {
	fields := []struct {
		name string
		v    float64
	}{
		{"Rd", p.Rd}, {"Rc", p.Rc}, {"C", p.C}, {"Rt", p.Rt},
		{"FixedCostFrac", p.FixedCostFrac},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("costmodel: %s=%v must be finite", f.name, f.v)
		}
	}
	switch {
	case p.Rd <= 1:
		return fmt.Errorf("costmodel: Rd=%v must exceed 1 (memory beats SSD)", p.Rd)
	case p.Rc <= 1:
		return fmt.Errorf("costmodel: Rc=%v must exceed 1", p.Rc)
	case p.Rc > p.Rd:
		return fmt.Errorf("costmodel: Rc=%v cannot exceed Rd=%v", p.Rc, p.Rd)
	case p.C <= 0:
		return fmt.Errorf("costmodel: C=%v must be positive", p.C)
	case p.Rt <= 0:
		return fmt.Errorf("costmodel: Rt=%v must be positive", p.Rt)
	case p.FixedCostFrac < 0:
		return fmt.Errorf("costmodel: FixedCostFrac=%v must be non-negative", p.FixedCostFrac)
	}
	return nil
}

// ErrNoAdvantage is returned when the model degenerates (the CXL cluster
// cannot match baseline performance with fewer resources).
var ErrNoAdvantage = errors.New("costmodel: configuration yields no server reduction")

// ServerRatio returns N_cxl / N_baseline: the fraction of servers a CXL
// cluster needs to match the baseline cluster's performance.
func (p Params) ServerRatio() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	num := p.C * p.Rc * (p.Rd - 1)
	// Guard the closed-form denominator R_c·R_d·(C+1) − C·R_c − R_d.
	// `!(den > 0)` instead of `den <= 0`: it also rejects NaN (every
	// comparison with NaN is false), so a degenerate intermediate can
	// never yield a garbage ratio with a nil error. Validated inputs are
	// finite, but huge C/Rc/Rd products can still overflow to +Inf, whose
	// difference is NaN.
	den := p.Rc*p.Rd*(p.C+1) - p.C*p.Rc - p.Rd
	if !(den > 0) {
		return 0, fmt.Errorf("%w (denominator %v with Rd=%v Rc=%v C=%v)",
			ErrNoAdvantage, den, p.Rd, p.Rc, p.C)
	}
	if math.IsInf(den, 1) {
		return 0, fmt.Errorf("costmodel: denominator overflows with Rd=%v Rc=%v C=%v", p.Rd, p.Rc, p.C)
	}
	return num / den, nil
}

// TCOSaving returns 1 − TCO_cxl/TCO_baseline, including optional fixed
// costs. Negative values mean CXL adoption costs more.
func (p Params) TCOSaving() (float64, error) {
	ratio, err := p.ServerRatio()
	if err != nil {
		return 0, err
	}
	return 1 - ratio*p.Rt - p.FixedCostFrac, nil
}

// BaselineTime returns T_baseline for a working set W and per-server
// memory D with n baseline servers — the §6 approximation (time units of
// the normalized SSD throughput). Exposed so experiments can check the
// algebra against direct simulation.
func (p Params) BaselineTime(w, d float64, n float64) float64 {
	inMem := n * d
	if inMem > w {
		inMem = w
	}
	return inMem/p.Rd + (w - inMem)
}

// CXLTime returns T_cxl for n CXL servers: segments in MMEM, in CXL
// (capacity D/C per server), and spilled to SSD.
func (p Params) CXLTime(w, d float64, n float64) float64 {
	mem := n * d
	cxl := n * d / p.C
	if mem > w {
		mem = w
	}
	if mem+cxl > w {
		cxl = w - mem
	}
	return mem/p.Rd + cxl/(p.Rc) + (w - mem - cxl)
}

// Sweep evaluates TCO saving across a grid of C values, used by the
// cost-planning example and the ablation bench.
func (p Params) Sweep(cs []float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(cs))
	for _, c := range cs {
		q := p
		q.C = c
		pt := SweepPoint{C: c}
		if r, err := q.ServerRatio(); err == nil {
			pt.ServerRatio = r
			if s, err := q.TCOSaving(); err == nil {
				pt.TCOSaving = s
				pt.Valid = true
			}
		}
		out = append(out, pt)
	}
	return out
}

// SweepPoint is one Sweep result.
type SweepPoint struct {
	C           float64
	ServerRatio float64
	TCOSaving   float64
	Valid       bool
}
