package obs

import (
	"encoding/json"
	"fmt"
	"testing"

	"cxlsim/internal/stats"
)

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("ops_total", "ops").Add(10)
	dst.GaugeVec("depth", "queue depth", "node").With("0").Set(3)
	dst.Histogram("lat_ns", "latency", nil).Observe(100)

	src := NewRegistry()
	src.Counter("ops_total", "ops").Add(5)
	src.Counter("src_only_total", "only in src").Add(7)
	src.GaugeVec("depth", "queue depth", "node").With("1").Set(4)
	src.GaugeVec("depth", "queue depth", "node").With("0").Add(2)
	src.Histogram("lat_ns", "latency", nil).Observe(200)
	src.Histogram("lat_ns", "latency", nil).Observe(100)

	dst.Merge(src)

	if got := dst.Counter("ops_total", "ops").Value(); got != 15 {
		t.Fatalf("merged counter = %v, want 15", got)
	}
	if got := dst.Counter("src_only_total", "").Value(); got != 7 {
		t.Fatalf("src-only counter = %v, want 7", got)
	}
	if got := dst.GaugeVec("depth", "", "node").With("0").Value(); got != 5 {
		t.Fatalf("merged gauge node=0 = %v, want 5", got)
	}
	if got := dst.GaugeVec("depth", "", "node").With("1").Value(); got != 4 {
		t.Fatalf("merged gauge node=1 = %v, want 4", got)
	}
	hs := dst.Histogram("lat_ns", "", nil).Snapshot()
	if hs.Count != 3 {
		t.Fatalf("merged histogram count = %d, want 3", hs.Count)
	}
}

// TestRegistryMergeShardInvariant pins the property the sharded runner
// depends on: merging per-partition registries yields the same snapshot
// however the partitions were grouped into shards.
func TestRegistryMergeShardInvariant(t *testing.T) {
	mkPart := func(p int) *Registry {
		r := NewRegistry()
		r.Counter("ops_total", "ops").Add(float64(10 * (p + 1)))
		r.HistogramVec("lat_ns", "lat", stats.NewLatencyHistogram, "node").
			With(fmt.Sprint(p)).Observe(float64(100 * (p + 1)))
		return r
	}
	flat := NewRegistry()
	for p := 0; p < 4; p++ {
		flat.Merge(mkPart(p))
	}
	grouped := NewRegistry()
	for s := 0; s < 2; s++ { // two "shards" of two partitions each
		shard := NewRegistry()
		for p := s; p < 4; p += 2 {
			shard.Merge(mkPart(p))
		}
		grouped.Merge(shard)
	}
	aj, err := json.Marshal(flat.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(grouped.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	a, b := string(aj), string(bj)
	if a != b {
		t.Fatalf("grouped merge diverged from flat merge:\n%s\nvs\n%s", a, b)
	}
}

func TestRegistryMergeSelfAndNil(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(1)
	r.Merge(nil)
	r.Merge(r)
	if got := r.Counter("c", "").Value(); got != 1 {
		t.Fatalf("self/nil merge changed value to %v", got)
	}
}
