// Package obs is cxlsim's unified observability layer: a metrics
// registry (counters, gauges, histograms, with labeled families), a
// virtual-time event tracer that exports Chrome trace-event JSON
// (viewable in Perfetto / chrome://tracing), and exposition helpers
// (Prometheus text format, JSON snapshots, HTTP handlers).
//
// Everything is keyed to *virtual* time (sim.Time): no wall-clock value
// ever enters a metric or trace, so two runs of the same seed produce
// bit-identical output — the same determinism contract the sim kernel
// guarantees.
//
// Hot-path cost: counters and gauges are single atomic operations;
// histograms take one short mutex. A nil *Tracer is a no-op, so
// instrumented code needs no "tracing enabled?" branches.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cxlsim/internal/stats"
)

// Kind discriminates metric families.
type Kind string

// The metric kinds, named as Prometheus spells them.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing value. Safe for concurrent use.
type Counter struct {
	bits atomic.Uint64 // float64 bits
	// disc, when non-nil, counts discarded (negative or NaN) deltas into
	// the owning registry's obs_counter_negative_deltas_total self-metric,
	// so silent data loss is visible in every exposition.
	disc *atomic.Uint64
}

// Add increases the counter by v (v must be non-negative; negative
// deltas are ignored to preserve monotonicity and counted in the
// registry's obs_counter_negative_deltas_total self-metric).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		if c.disc != nil {
			c.disc.Add(1)
		}
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Exemplar links one tail observation back to the trace span that
// produced it, so a p99 bucket in an exposition is one hop away from the
// Perfetto span to blame.
type Exemplar struct {
	Value  float64 `json:"value"`             // the observed value
	AtNs   float64 `json:"at_ns"`             // virtual time of the observation
	SpanID uint64  `json:"span_id,omitempty"` // Tracer.SpanWithID sequence number
	Track  string  `json:"track,omitempty"`   // trace track holding the span
	Span   string  `json:"span,omitempty"`    // span name
}

// Histogram wraps a stats.Histogram with a mutex so concurrent writers
// (HTTP handlers) and snapshotters coexist under the race detector.
type Histogram struct {
	mu   sync.Mutex
	hist *stats.Histogram

	// Exemplar capture: observations at or above exThreshold remember the
	// span that produced them, keyed by bucket upper bound (latest wins,
	// bounded by the bucket count). The threshold starts at zero when
	// exemplars are enabled — every bucket captures its first exemplar —
	// and is re-anchored to the live exQuantile at each window flush.
	exEnabled   bool
	exQuantile  float64
	exThreshold float64
	exemplars   map[float64]Exemplar
}

// WrapHistogram makes an obs histogram over an existing stats histogram.
// The caller may keep the underlying pointer for read-side convenience
// (Percentile etc.) once writes have stopped; during concurrent use all
// access must go through the wrapper.
func WrapHistogram(h *stats.Histogram) *Histogram {
	if h == nil {
		h = stats.NewLatencyHistogram()
	}
	return &Histogram{hist: h}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.hist.Add(v)
	h.mu.Unlock()
}

// ObserveN records n identical observations.
func (h *Histogram) ObserveN(v float64, n uint64) {
	h.mu.Lock()
	h.hist.AddN(v, n)
	h.mu.Unlock()
}

// Snapshot captures the histogram state under the lock.
func (h *Histogram) Snapshot() stats.HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hist.Snapshot()
}

// Quantile reads a quantile under the lock.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hist.Quantile(q)
}

// Unwrap returns the underlying stats histogram. Only read it after
// concurrent writers have stopped.
func (h *Histogram) Unwrap() *stats.Histogram { return h.hist }

// EnableExemplars turns on exemplar capture for observations at or above
// quantile q (e.g. 0.99). Capture starts immediately (threshold zero)
// and tightens to the live quantile on each RefreshExemplarThreshold.
func (h *Histogram) EnableExemplars(q float64) {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	h.exEnabled = true
	h.exQuantile = q
	h.exThreshold = 0
	if h.exemplars == nil {
		h.exemplars = map[float64]Exemplar{}
	}
	h.mu.Unlock()
}

// ObserveExemplar records v like Observe and, when exemplar capture is
// enabled and v clears the current threshold, stores ex (with Value set
// to v) against v's bucket.
func (h *Histogram) ObserveExemplar(v float64, ex Exemplar) {
	h.mu.Lock()
	h.hist.Add(v)
	if h.exEnabled && v >= h.exThreshold {
		ex.Value = v
		h.exemplars[h.hist.BucketUpperBound(v)] = ex
	}
	h.mu.Unlock()
}

// RefreshExemplarThreshold re-anchors the capture threshold to the
// configured quantile of everything observed so far. Windows call this
// on every flush so "tail" tracks the live distribution.
func (h *Histogram) RefreshExemplarThreshold() {
	h.mu.Lock()
	if h.exEnabled {
		h.exThreshold = h.hist.Quantile(h.exQuantile)
	}
	h.mu.Unlock()
}

// Exemplars returns the captured exemplars ordered by bucket upper
// bound (ascending), or nil when capture is disabled or empty.
func (h *Histogram) Exemplars() []Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.exemplars) == 0 {
		return nil
	}
	bounds := make([]float64, 0, len(h.exemplars))
	for b := range h.exemplars {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	out := make([]Exemplar, len(bounds))
	for i, b := range bounds {
		out[i] = h.exemplars[b]
	}
	return out
}

// labelSep joins label values into child-map keys; \xff cannot appear in
// meaningful label values.
const labelSep = "\xff"

// child is one labeled metric inside a family.
type child struct {
	values []string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is a named group of metrics sharing a kind and label names.
type family struct {
	name, help string
	kind       Kind
	labels     []string
	newHist    func() *stats.Histogram // histogram families only
	reg        *Registry               // owning registry, for self-metrics

	mu       sync.Mutex
	children map[string]*child
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case KindCounter:
			c.ctr = &Counter{}
			if f.reg != nil {
				c.ctr.disc = &f.reg.negDeltas
			}
		case KindGauge:
			c.gauge = &Gauge{}
		case KindHistogram:
			var h *stats.Histogram
			if f.newHist != nil {
				h = f.newHist()
			}
			c.hist = WrapHistogram(h)
		}
		f.children[key] = c
	}
	return c
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use. Registration is
// get-or-create: registering an existing name with a matching kind
// returns the existing family (mismatched kinds panic — that is always a
// programming error).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// Self-observability: discarded counter deltas and the drop counts of
	// any tracked tracers surface as synthetic obs_* families in every
	// snapshot, so silent data loss is never invisible.
	negDeltas atomic.Uint64
	tracers   []*Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// TrackTracer registers t's dropped-event count for exposition as the
// obs_trace_dropped_events_total self-metric. Nil tracers are ignored;
// tracking the same tracer twice is harmless (counted once).
func (r *Registry) TrackTracer(t *Tracer) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.tracers {
		if have == t {
			return
		}
	}
	r.tracers = append(r.tracers, t)
}

func (r *Registry) family(name, help string, kind Kind, labels []string, newHist func() *stats.Histogram) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with %d labels (was %d)",
				name, len(labels), len(f.labels)))
		}
		return f
	}
	f = &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		newHist:  newHist,
		reg:      r,
		children: map[string]*child{},
	}
	r.families[name] = f
	return f
}

// Counter returns the unlabeled counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).get(nil).ctr
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, labels, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).ctr }

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).get(nil).gauge
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// Histogram returns the unlabeled histogram with the given name,
// creating it with newHist (nil ⇒ stats.NewLatencyHistogram) on first
// registration.
func (r *Registry) Histogram(name, help string, newHist func() *stats.Histogram) *Histogram {
	return r.family(name, help, KindHistogram, nil, newHist).get(nil).hist
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name;
// children are created with newHist (nil ⇒ stats.NewLatencyHistogram).
func (r *Registry) HistogramVec(name, help string, newHist func() *stats.Histogram, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, KindHistogram, labels, newHist)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// MetricSnapshot is one metric's state inside a family snapshot.
type MetricSnapshot struct {
	LabelValues []string                 `json:"labels,omitempty"`
	Value       float64                  `json:"value,omitempty"`     // counters and gauges
	Histogram   *stats.HistogramSnapshot `json:"histogram,omitempty"` // histograms
	Exemplars   []Exemplar               `json:"exemplars,omitempty"` // histograms with capture enabled
}

// FamilySnapshot is one family's state.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    Kind             `json:"kind"`
	Labels  []string         `json:"label_names,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot is a point-in-time copy of a registry, ordered
// deterministically: families by name, children by label values.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures every family. It is safe to call while writers are
// active; each metric is read atomically (counters/gauges) or under its
// own lock (histograms), so the snapshot is per-metric consistent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Labels: f.labels}
		f.mu.Lock()
		kids := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			kids = append(kids, c)
		}
		f.mu.Unlock()
		sort.Slice(kids, func(i, j int) bool {
			return strings.Join(kids[i].values, labelSep) < strings.Join(kids[j].values, labelSep)
		})
		for _, c := range kids {
			ms := MetricSnapshot{LabelValues: c.values}
			switch f.kind {
			case KindCounter:
				ms.Value = c.ctr.Value()
			case KindGauge:
				ms.Value = c.gauge.Value()
			case KindHistogram:
				hs := c.hist.Snapshot()
				ms.Histogram = &hs
				ms.Exemplars = c.hist.Exemplars()
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		snap.Families = append(snap.Families, fs)
	}

	r.mu.Lock()
	var dropped uint64
	for _, t := range r.tracers {
		dropped += t.Dropped()
	}
	neg := r.negDeltas.Load()
	r.mu.Unlock()
	snap.Families = append(snap.Families,
		FamilySnapshot{
			Name: SelfMetricNegativeDeltas, Kind: KindCounter,
			Help:    "counter Add calls discarded for being negative or NaN",
			Metrics: []MetricSnapshot{{Value: float64(neg)}},
		},
		FamilySnapshot{
			Name: SelfMetricTraceDropped, Kind: KindCounter,
			Help:    "trace events dropped by tracked tracers' event limits",
			Metrics: []MetricSnapshot{{Value: float64(dropped)}},
		})
	sort.Slice(snap.Families, func(i, j int) bool {
		return snap.Families[i].Name < snap.Families[j].Name
	})
	return snap
}

// Self-metric family names injected into every Snapshot (and therefore
// every Prometheus and JSON exposition) by the registry itself.
const (
	SelfMetricNegativeDeltas = "obs_counter_negative_deltas_total"
	SelfMetricTraceDropped   = "obs_trace_dropped_events_total"
)

// Find returns the family snapshot with the given name, or false.
func (s Snapshot) Find(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}
