package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("a", "b", 0, 1, nil)
	tr.Instant("a", "b", 0, nil)
	tr.Counter("a", "b", 0, nil)
	tr.SetLimit(10)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Tracks() != nil {
		t.Fatal("nil tracer should report empty state")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}
}

func TestTracerRecordsAndSerializes(t *testing.T) {
	tr := NewTracer()
	tr.Span("kvstore", "read", 100, 300, map[string]any{"key": 7})
	tr.Span("tiering", "tick", 400, 200, nil) // reversed: must swap
	tr.Instant("kvstore", "epoch", 500, nil)
	tr.Counter("memsim", "utilization", 600, map[string]float64{"dram0": 0.5})

	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	tracks := tr.Tracks()
	if len(tracks) != 3 || tracks[0] != "kvstore" || tracks[1] != "tiering" || tracks[2] != "memsim" {
		t.Fatalf("tracks = %v", tracks)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 3 thread_name metadata + 4 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("serialized %d events, want 7", len(doc.TraceEvents))
	}
	for i := 0; i < 3; i++ {
		if doc.TraceEvents[i].Ph != "M" || doc.TraceEvents[i].Name != "thread_name" {
			t.Fatalf("event %d should be thread_name metadata: %+v", i, doc.TraceEvents[i])
		}
	}
	read := doc.TraceEvents[3]
	if read.Ph != "X" || read.Ts != 0.1 || read.Dur != 0.2 {
		t.Fatalf("span = %+v (ns→µs conversion wrong?)", read)
	}
	swapped := doc.TraceEvents[4]
	if swapped.Ts != 0.2 || swapped.Dur != 0.2 {
		t.Fatalf("reversed span not normalized: %+v", swapped)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Instant("t", "x", 0, nil)
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("obs_dropped_events")) {
		t.Fatal("dropped-event metadata missing from output")
	}
}
