package obs

import (
	"sort"
	"strings"
)

// Merge folds every metric in src into r: counters and gauges add their
// values, histograms merge bucket-by-bucket (identical geometry required,
// as stats.Histogram.Merge demands), and src's self-metrics (discarded
// counter deltas, tracked tracers) carry over. Families and children
// missing from r are created with src's help text, label names, and
// histogram constructor.
//
// This is how per-shard registries from a sharded run collapse into one
// serialized output: merging the shards in index order yields the same
// families, children, and values at any shard count, because each metric
// is owned by exactly one logical partition and addition is order-exact
// over the per-partition values.
//
// Merge must run with src quiescent (no concurrent writers) and must not
// run concurrently with a Merge in the opposite direction. Exemplars
// transfer with first-wins conflict resolution per bucket, so earlier
// sources (node 0 carries the tracer) keep their span links.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	src.mu.Lock()
	fams := make([]*family, 0, len(src.families))
	for _, f := range src.families {
		fams = append(fams, f)
	}
	srcNeg := src.negDeltas.Load()
	srcTracers := append([]*Tracer(nil), src.tracers...)
	src.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, sf := range fams {
		df := r.family(sf.name, sf.help, sf.kind, sf.labels, sf.newHist)
		sf.mu.Lock()
		kids := make([]*child, 0, len(sf.children))
		for _, c := range sf.children {
			kids = append(kids, c)
		}
		sf.mu.Unlock()
		sort.Slice(kids, func(i, j int) bool {
			return strings.Join(kids[i].values, labelSep) < strings.Join(kids[j].values, labelSep)
		})
		for _, c := range kids {
			dc := df.get(c.values)
			switch sf.kind {
			case KindCounter:
				dc.ctr.Add(c.ctr.Value())
			case KindGauge:
				dc.gauge.Add(c.gauge.Value())
			case KindHistogram:
				dc.hist.merge(c.hist)
			}
		}
	}

	r.negDeltas.Add(srcNeg)
	for _, t := range srcTracers {
		r.TrackTracer(t)
	}
}

// merge folds src into h: bucket counts add, and src's exemplars fill any
// bucket h has not already captured. Lock order is src before h; see
// Registry.Merge for the (single-threaded) usage contract.
func (h *Histogram) merge(src *Histogram) {
	src.mu.Lock()
	defer src.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hist.Merge(src.hist)
	if len(src.exemplars) > 0 {
		if h.exemplars == nil {
			h.exemplars = map[float64]Exemplar{}
		}
		for b, ex := range src.exemplars {
			if _, have := h.exemplars[b]; !have {
				h.exemplars[b] = ex
			}
		}
	}
}
