package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm renders a registry snapshot in the Prometheus text exposition
// format (version 0.0.4). Histograms are emitted with cumulative
// _bucket{le=...} series over their non-empty buckets plus the mandatory
// +Inf bucket, _sum, and _count; underflow observations (below the
// histogram base) are included in every cumulative bucket and in _count,
// but not in _sum (their exact values are unknown).
func WriteProm(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			base := labelString(f.Labels, m.LabelValues, "")
			switch f.Kind {
			case KindCounter, KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, base, formatValue(m.Value)); err != nil {
					return err
				}
			case KindHistogram:
				h := m.Histogram
				var cum uint64 = h.Underflow
				ex := m.Exemplars
				for _, b := range h.Buckets {
					cum += b.Count
					le := labelString(f.Labels, m.LabelValues, formatValue(b.UpperBound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.Name, le, cum, takeExemplar(&ex, b.UpperBound)); err != nil {
						return err
					}
				}
				inf := labelString(f.Labels, m.LabelValues, "+Inf")
				total := h.Count + h.Underflow
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.Name, inf, total, takeExemplar(&ex, math.Inf(1))); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, base, formatValue(h.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, base, total); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// takeExemplar pops exemplars from *ex up through bucket bound ub and
// renders the last of them (the one belonging to this bucket) as an
// OpenMetrics-style exemplar suffix: ` # {span_id="7",...} value ts`.
// The slice is sorted by value, so a single forward walk pairs each
// exemplar with the first bucket whose bound covers it.
func takeExemplar(ex *[]Exemplar, ub float64) string {
	var have bool
	var last Exemplar
	for len(*ex) > 0 && (*ex)[0].Value <= ub {
		last, have = (*ex)[0], true
		*ex = (*ex)[1:]
	}
	if !have {
		return ""
	}
	var b strings.Builder
	b.WriteString(" # {")
	fmt.Fprintf(&b, `span_id="%d"`, last.SpanID)
	if last.Track != "" {
		b.WriteString(`,track="` + escapeLabelValue(last.Track) + `"`)
	}
	if last.Span != "" {
		b.WriteString(`,span="` + escapeLabelValue(last.Span) + `"`)
	}
	// Timestamp is the exemplar's virtual time in seconds.
	fmt.Fprintf(&b, "} %s %s", formatValue(last.Value), formatValue(last.AtNs/1e9))
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format label-value
// escapes — backslash, double quote, and line feed, nothing else. Go's
// %q is NOT equivalent: it also rewrites tabs, carriage returns, and
// control bytes into escape sequences the exposition format does not
// define, corrupting such values on the scrape path.
var labelEscaper = strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`)

func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// labelString renders {a="x",b="y"} (plus le when non-empty), or "".
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteString(`"`)
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="` + escapeLabelValue(le) + `"`)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}
