package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm renders a registry snapshot in the Prometheus text exposition
// format (version 0.0.4). Histograms are emitted with cumulative
// _bucket{le=...} series over their non-empty buckets plus the mandatory
// +Inf bucket, _sum, and _count; underflow observations (below the
// histogram base) are included in every cumulative bucket and in _count,
// but not in _sum (their exact values are unknown).
func WriteProm(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			base := labelString(f.Labels, m.LabelValues, "")
			switch f.Kind {
			case KindCounter, KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, base, formatValue(m.Value)); err != nil {
					return err
				}
			case KindHistogram:
				h := m.Histogram
				var cum uint64 = h.Underflow
				for _, b := range h.Buckets {
					cum += b.Count
					le := labelString(f.Labels, m.LabelValues, formatValue(b.UpperBound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, le, cum); err != nil {
						return err
					}
				}
				inf := labelString(f.Labels, m.LabelValues, "+Inf")
				total := h.Count + h.Underflow
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, inf, total); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, base, formatValue(h.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, base, total); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// labelString renders {a="x",b="y"} (plus le when non-empty), or "".
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// Go's %q escaping (backslash, quote, \n) covers exactly what
		// the Prometheus label-value syntax requires.
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}
