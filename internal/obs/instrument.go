package obs

import (
	"cxlsim/internal/memsim"
	"cxlsim/internal/sim"
	"cxlsim/internal/tiering"
	"cxlsim/internal/vmm"
)

// Canonical metric family names shared across subsystems, so every
// exporter and consumer (pcm, dashboards, tests) agrees on spelling.
const (
	MetricSimScheduled  = "sim_events_scheduled_total"
	MetricSimFired      = "sim_events_fired_total"
	MetricSimCanceled   = "sim_events_canceled_total"
	MetricSimQueueDepth = "sim_queue_depth"

	MetricSolves      = "memsim_solves_total"
	MetricUtilization = "memsim_resource_utilization"
	MetricBandwidth   = "memsim_resource_bandwidth_gbps"

	MetricTierPromotedPages = "tiering_promoted_pages_total"
	MetricTierDemotedPages  = "tiering_demoted_pages_total"
	MetricTierMigratedBytes = "tiering_migrated_bytes_total"
	MetricTierThreshold     = "tiering_promote_threshold"
	MetricTierDegradedNodes = "tiering_degraded_nodes"

	MetricFaultInjected = "fault_injected_total"
	MetricFaultCleared  = "fault_cleared_total"
	MetricFaultActive   = "fault_active"

	MetricKVTimeouts = "kvstore_timeouts_total"
	MetricKVRetries  = "kvstore_retries_total"
	MetricKVFailed   = "kvstore_failed_ops_total"
	MetricKVBackoff  = "kvstore_retry_backoff_ns"

	// Durable spill tier (internal/spill) I/O and recovery.
	MetricSpillRecordsWritten      = "spill_records_written_total"
	MetricSpillBytesWritten        = "spill_bytes_written_total"
	MetricSpillReads               = "spill_reads_total"
	MetricSpillFsyncs              = "spill_fsyncs_total"
	MetricSpillLiveKeys            = "spill_live_keys"
	MetricSpillSegments            = "spill_segments"
	MetricSpillRecoveryScanned     = "spill_recovery_records_scanned_total"
	MetricSpillRecoveryQuarantined = "spill_recovery_records_quarantined_total"
	MetricSpillRecoveryTornBytes   = "spill_recovery_torn_bytes_total"
	MetricSpillRecoveryNs          = "spill_recovery_duration_ns"
	// Durable-mode kvstore counters: writes shed during a spill-tier
	// brownout and the catch-up re-persists when it heals.
	MetricSpillShedWrites    = "spill_shed_writes_total"
	MetricSpillCatchupWrites = "spill_catchup_writes_total"
	MetricSpillReadMismatch  = "spill_read_mismatch_total"

	// RESP wire-protocol front end (internal/resp): per-command traffic
	// and connection lifecycle, plus the kvstore backend's simulated
	// service-time histograms and virtual clock.
	MetricRESPCommands       = "resp_commands_total"
	MetricRESPErrors         = "resp_errors_total"
	MetricRESPConnsOpen      = "resp_connections_open"
	MetricRESPConnsTotal     = "resp_connections_total"
	MetricRESPConnsRejected  = "resp_connections_rejected_total"
	MetricRESPProtocolErrors = "resp_protocol_errors_total"
	MetricRESPServiceNs      = "resp_command_service_ns"
	MetricRESPVirtualTimeNs  = "resp_virtual_time_ns"
	MetricRESPKeys           = "resp_keys"
	MetricRESPShedWrites     = "resp_shed_writes_total"
)

// KernelObserver implements sim.Observer: it counts event lifecycle
// transitions into a registry and periodically samples queue depth into
// a tracer counter track. Use one observer per engine (the sampling
// stride is per-observer state).
type KernelObserver struct {
	scheduled, fired, canceled *Counter
	queueDepth                 *Gauge
	tracer                     *Tracer
	sampleEvery                int
	sinceSample                int
}

// NewKernelObserver wires an observer to reg and tr; either may be nil.
// sampleEvery controls how often (in fired events) a queue-depth counter
// sample lands in the trace; ≤0 means every 256 events.
func NewKernelObserver(reg *Registry, tr *Tracer, sampleEvery int) *KernelObserver {
	if sampleEvery <= 0 {
		sampleEvery = 256
	}
	o := &KernelObserver{tracer: tr, sampleEvery: sampleEvery}
	if reg != nil {
		o.scheduled = reg.Counter(MetricSimScheduled, "events enqueued on the sim kernel")
		o.fired = reg.Counter(MetricSimFired, "events executed by the sim kernel")
		o.canceled = reg.Counter(MetricSimCanceled, "events descheduled before firing")
		o.queueDepth = reg.Gauge(MetricSimQueueDepth, "pending events in the sim kernel queue")
	}
	return o
}

// EventScheduled implements sim.Observer.
func (o *KernelObserver) EventScheduled(at sim.Time, pending int) {
	if o.scheduled != nil {
		o.scheduled.Inc()
		o.queueDepth.Set(float64(pending))
	}
}

// EventFired implements sim.Observer.
func (o *KernelObserver) EventFired(now sim.Time, pending int) {
	if o.fired != nil {
		o.fired.Inc()
		o.queueDepth.Set(float64(pending))
	}
	o.sinceSample++
	if o.sinceSample >= o.sampleEvery {
		o.sinceSample = 0
		o.tracer.Counter("sim", "queue_depth", now, map[string]float64{"pending": float64(pending)})
	}
}

// EventCanceled implements sim.Observer.
func (o *KernelObserver) EventCanceled(now sim.Time, pending int) {
	if o.canceled != nil {
		o.canceled.Inc()
		o.queueDepth.Set(float64(pending))
	}
}

// InstrumentMemsim installs a process-wide memsim solve observer that
// counts solver passes and publishes per-resource utilization and
// estimated bandwidth gauge families into reg — the counter surface the
// pcm package consumes. Pass a nil registry to uninstall.
//
// The hook is global (the solvers are package-level functions); commands
// and servers install it once at startup. Installing it twice replaces
// the previous registry.
func InstrumentMemsim(reg *Registry) {
	if reg == nil {
		memsim.SetSolveObserver(nil)
		return
	}
	solves := reg.CounterVec(MetricSolves, "memory-flow solver passes", "kind")
	util := reg.GaugeVec(MetricUtilization, "per-resource capacity fraction after the last solve", "resource")
	bw := reg.GaugeVec(MetricBandwidth, "per-resource estimated delivered bandwidth, GB/s", "resource")
	memsim.SetSolveObserver(func(kind string, flows int, u memsim.Utilization) {
		solves.With(kind).Inc()
		for r, frac := range u {
			util.With(r.Name).Set(frac)
			bw.With(r.Name).Set(frac * r.Peak.Max())
		}
	})
}

// thresholder is implemented by daemons with a dynamic promote threshold
// (tiering.HotPromote).
type thresholder interface{ CurrentThreshold() float64 }

// instrumentedDaemon decorates a tiering daemon with per-tick metrics
// and trace spans.
type instrumentedDaemon struct {
	inner    tiering.Daemon
	promoted *Counter
	demoted  *Counter
	migrated *Counter
	thresh   *Gauge
	tracer   *Tracer

	prevTick sim.Time
	ticked   bool
}

// InstrumentDaemon wraps a tiering daemon so every tick records
// promotion/demotion counters labeled by policy name into reg and a span
// (covering the epoch since the previous tick) on the tracer's "tiering"
// track. Either sink may be nil. A nil daemon passes through unchanged.
func InstrumentDaemon(d tiering.Daemon, reg *Registry, tr *Tracer) tiering.Daemon {
	if d == nil || (reg == nil && tr == nil) {
		return d
	}
	id := &instrumentedDaemon{inner: d, tracer: tr}
	if reg != nil {
		name := d.Name()
		id.promoted = reg.CounterVec(MetricTierPromotedPages, "pages promoted to the fast tier", "policy").With(name)
		id.demoted = reg.CounterVec(MetricTierDemotedPages, "pages demoted to the slow tier", "policy").With(name)
		id.migrated = reg.CounterVec(MetricTierMigratedBytes, "total page-migration traffic, bytes", "policy").With(name)
		if _, ok := d.(thresholder); ok {
			id.thresh = reg.GaugeVec(MetricTierThreshold, "current hot-page promotion threshold (accesses/epoch)", "policy").With(name)
		}
	}
	return id
}

// Name implements tiering.Daemon.
func (d *instrumentedDaemon) Name() string { return d.inner.Name() }

// SetHealth forwards to the wrapped daemon when it accepts a health
// source, so instrumentation does not hide fault-awareness.
func (d *instrumentedDaemon) SetHealth(h tiering.Health) {
	if hs, ok := d.inner.(tiering.HealthSetter); ok {
		hs.SetHealth(h)
	}
}

// Tick implements tiering.Daemon.
func (d *instrumentedDaemon) Tick(now sim.Time, space *vmm.Space, alloc *vmm.Allocator) tiering.Report {
	rep := d.inner.Tick(now, space, alloc)
	if d.promoted != nil {
		d.promoted.Add(float64(rep.PromotedPages))
		d.demoted.Add(float64(rep.DemotedPages))
		d.migrated.Add(float64(rep.TotalBytes()))
	}
	var threshold float64
	if th, ok := d.inner.(thresholder); ok {
		threshold = th.CurrentThreshold()
		if d.thresh != nil {
			d.thresh.Set(threshold)
		}
	}
	if d.tracer != nil {
		args := map[string]any{
			"promoted_pages": rep.PromotedPages,
			"demoted_pages":  rep.DemotedPages,
			"migrated_bytes": rep.TotalBytes(),
		}
		if threshold > 0 {
			args["threshold"] = threshold
		}
		if d.ticked {
			d.tracer.Span("tiering", d.inner.Name(), d.prevTick, now, args)
		} else {
			d.tracer.Instant("tiering", d.inner.Name(), now, args)
		}
		if rep.TotalBytes() > 0 {
			d.tracer.Counter("tiering", "migration", now, map[string]float64{
				"promoted_bytes": float64(rep.PromotedBytes),
				"demoted_bytes":  float64(rep.DemotedBytes),
			})
		}
	}
	d.prevTick, d.ticked = now, true
	return rep
}

// RecordUtilization publishes a resource-name→utilization snapshot into
// the canonical gauge families and, when tr is non-nil, a counter sample
// on the "memsim" trace track. Used by epoch loops that track per-node
// utilization themselves (kvstore) rather than via the global solver
// hook.
func RecordUtilization(reg *Registry, tr *Tracer, at sim.Time, util map[string]float64, peaks map[string]float64) {
	if reg != nil {
		uv := reg.GaugeVec(MetricUtilization, "per-resource capacity fraction after the last solve", "resource")
		bv := reg.GaugeVec(MetricBandwidth, "per-resource estimated delivered bandwidth, GB/s", "resource")
		for name, u := range util {
			uv.With(name).Set(u)
			if peak, ok := peaks[name]; ok {
				bv.With(name).Set(u * peak)
			}
		}
	}
	if tr != nil && len(util) > 0 {
		tr.Counter("memsim", "utilization", at, util)
	}
}
