package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// PromHandler serves the registry in the Prometheus text exposition
// format.
func PromHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteProm(w, reg.Snapshot()); err != nil {
			// Client went away mid-write; nothing recoverable.
			return
		}
	})
}

// JSONHandler serves the registry as a JSON snapshot.
func JSONHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			return
		}
	})
}

// RegisterDebug mounts the standard Go debug surface on mux:
// /debug/pprof/* (profiles, goroutine dumps) and /debug/vars (expvar).
// This is the "debug mux" used by the serving commands; it deliberately
// avoids the package-level http.DefaultServeMux side effects of blank-
// importing net/http/pprof.
func RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}
