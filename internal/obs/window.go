package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"

	"cxlsim/internal/sim"
	"cxlsim/internal/stats"
)

// Windows turns a registry's cumulative metrics into fixed-length
// virtual-time windows: per-window counter deltas and rates, gauge
// samples, and histogram interval distributions with tail quantiles.
//
// The caller flushes on its natural epoch boundary (the kvstore epoch
// ticker, the llmserve virtual frontier); Windows seals every window
// whose end the flush time has passed, attributing the delta since the
// previous flush to the first sealed window and emitting empty windows
// for any fully-skipped intervals. Because flush times come from the
// simulation's virtual clock, two same-seed runs produce byte-identical
// window sequences regardless of wall-clock scheduling or -parallel.
//
// A nil *Windows ignores every call, so instrumented code needs no
// "windows enabled?" branches. All methods are safe for concurrent use.
type Windows struct {
	reg    *Registry
	length sim.Time

	mu        sync.Mutex
	cur       int64    // index of the currently-open window
	lastFlush sim.Time // monotonic guard for concurrent wall-clock use
	closed    bool
	prevCtr   map[string]float64
	prevHist  map[string]stats.HistogramSnapshot
	sealed    []WindowSnapshot
	onSeal    []func(WindowSnapshot)
}

// WindowCounter is one counter family child's activity inside a window.
// Children with zero delta are omitted from the snapshot.
type WindowCounter struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Delta  float64  `json:"delta"`
	Rate   float64  `json:"rate_per_sec"` // delta over the window's virtual span
}

// WindowGauge is one gauge family child's value at the window seal.
type WindowGauge struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Value  float64  `json:"value"`
}

// WindowHistogram is one histogram family child's interval distribution
// inside a window, with the tail quantiles the SLO layer consumes.
// Children with no observations in the window are omitted.
type WindowHistogram struct {
	Name      string         `json:"name"`
	Labels    []string       `json:"labels,omitempty"`
	Count     uint64         `json:"count"`
	Sum       float64        `json:"sum"`
	Underflow uint64         `json:"underflow,omitempty"`
	Buckets   []stats.Bucket `json:"buckets,omitempty"`
	P50       float64        `json:"p50"`
	P95       float64        `json:"p95"`
	P99       float64        `json:"p99"`
	P999      float64        `json:"p999"`
}

// WindowSnapshot is one sealed window. Slices are ordered like
// Registry.Snapshot: families by name, children by label values.
type WindowSnapshot struct {
	Index      int64             `json:"index"`
	StartNs    float64           `json:"start_ns"`
	EndNs      float64           `json:"end_ns"`
	Partial    bool              `json:"partial,omitempty"` // final window sealed by Close before its boundary
	Counters   []WindowCounter   `json:"counters,omitempty"`
	Gauges     []WindowGauge     `json:"gauges,omitempty"`
	Histograms []WindowHistogram `json:"histograms,omitempty"`
}

// NewWindows creates a windowed view over reg with the given virtual
// window length (must be positive).
func NewWindows(reg *Registry, length sim.Time) *Windows {
	if reg == nil {
		panic("obs: NewWindows with nil registry")
	}
	if length <= 0 {
		panic("obs: NewWindows with non-positive length")
	}
	return &Windows{
		reg:      reg,
		length:   length,
		prevCtr:  map[string]float64{},
		prevHist: map[string]stats.HistogramSnapshot{},
	}
}

// Length returns the configured window length.
func (w *Windows) Length() sim.Time {
	if w == nil {
		return 0
	}
	return w.length
}

// OnSeal registers fn to run synchronously for every sealed window, in
// window order — the hook the SLO evaluator hangs off. fn runs with the
// Windows lock held: it may touch the underlying registry (counters it
// bumps land in later windows) but must not call back into Windows.
func (w *Windows) OnSeal(fn func(WindowSnapshot)) {
	if w == nil || fn == nil {
		return
	}
	w.mu.Lock()
	w.onSeal = append(w.onSeal, fn)
	w.mu.Unlock()
}

// Flush advances the windowed view to virtual time now, sealing every
// window whose boundary has passed. Metric deltas accumulated since the
// previous flush are attributed to the first sealed window; fully
// skipped windows seal empty. Flushes at or before the previous flush
// time are ignored, so concurrent out-of-order callers are safe.
func (w *Windows) Flush(now sim.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || now <= w.lastFlush {
		return
	}
	w.lastFlush = now
	// A flush exactly on a boundary closes the window ending there; the
	// epsilon forgives float error just below the boundary.
	completed := int64(float64(now)/float64(w.length) + 1e-9)
	if completed <= w.cur {
		return
	}
	// First iteration takes the accumulated deltas; any further windows
	// were fully skipped and seal empty.
	for w.cur < completed {
		w.seal(w.endOf(w.cur), false)
	}
}

// Close seals the currently-open window at virtual time now (marked
// Partial if now is before its natural boundary) and stops the view;
// later Flush/Close calls are no-ops. Call once at end of run so the
// tail of the data is not silently dropped.
func (w *Windows) Close(now sim.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if now > w.lastFlush {
		w.lastFlush = now
	}
	// Seal every fully-elapsed window first (as Flush would), then the
	// partial remainder if the run ended strictly inside a window.
	completed := int64(float64(now)/float64(w.length) + 1e-9)
	for w.cur < completed {
		w.seal(w.endOf(w.cur), false)
	}
	if float64(now) > float64(w.cur)*float64(w.length) {
		w.seal(now, true)
	}
}

// endOf returns the natural end of window k.
func (w *Windows) endOf(k int64) sim.Time {
	return sim.Time(float64(k+1) * float64(w.length))
}

// seal closes the currently-open window with the given end time,
// appends its snapshot, advances to the next window, and fires the
// OnSeal hooks. Caller holds w.mu.
func (w *Windows) seal(end sim.Time, partial bool) {
	start := float64(w.cur) * float64(w.length)
	ws := WindowSnapshot{
		Index:   w.cur,
		StartNs: start,
		EndNs:   float64(end),
		Partial: partial,
	}
	w.collect(&ws)
	w.sealed = append(w.sealed, ws)
	w.cur++
	for _, fn := range w.onSeal {
		fn(ws)
	}
}

// collect walks the registry, computes deltas against the previous
// seal, and refreshes exemplar thresholds so "tail" tracks the live
// distribution window over window. Caller holds w.mu.
func (w *Windows) collect(ws *WindowSnapshot) {
	span := (ws.EndNs - ws.StartNs) / 1e9 // seconds of virtual time
	w.reg.mu.Lock()
	fams := make([]*family, 0, len(w.reg.families))
	for _, f := range w.reg.families {
		fams = append(fams, f)
	}
	w.reg.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		kids := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			kids = append(kids, c)
		}
		f.mu.Unlock()
		sort.Slice(kids, func(i, j int) bool {
			return strings.Join(kids[i].values, labelSep) < strings.Join(kids[j].values, labelSep)
		})
		for _, c := range kids {
			key := f.name + labelSep + strings.Join(c.values, labelSep)
			switch f.kind {
			case KindCounter:
				v := c.ctr.Value()
				delta := v - w.prevCtr[key]
				w.prevCtr[key] = v
				if delta != 0 {
					wc := WindowCounter{Name: f.name, Labels: c.values, Delta: delta}
					if span > 0 {
						wc.Rate = delta / span
					}
					ws.Counters = append(ws.Counters, wc)
				}
			case KindGauge:
				ws.Gauges = append(ws.Gauges, WindowGauge{Name: f.name, Labels: c.values, Value: c.gauge.Value()})
			case KindHistogram:
				hs := c.hist.Snapshot()
				prev, ok := w.prevHist[key]
				w.prevHist[key] = hs
				d := hs
				if ok {
					d = hs.Sub(prev)
				}
				c.hist.RefreshExemplarThreshold()
				if d.Count+d.Underflow == 0 {
					continue
				}
				ws.Histograms = append(ws.Histograms, WindowHistogram{
					Name: f.name, Labels: c.values,
					Count: d.Count, Sum: d.Sum, Underflow: d.Underflow,
					Buckets: d.Buckets,
					P50:     d.Quantile(0.50),
					P95:     d.Quantile(0.95),
					P99:     d.Quantile(0.99),
					P999:    d.Quantile(0.999),
				})
			}
		}
	}
}

// Snapshot returns a copy of every sealed window in order.
func (w *Windows) Snapshot() []WindowSnapshot {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WindowSnapshot(nil), w.sealed...)
}

// WriteJSON serializes the sealed windows as a JSON array.
func (w *Windows) WriteJSON(out io.Writer) error {
	snap := w.Snapshot()
	if snap == nil {
		snap = []WindowSnapshot{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}
