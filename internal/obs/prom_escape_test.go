package obs

import (
	"strconv"
	"strings"
	"testing"

	"cxlsim/internal/stats"
)

// The Prometheus text format escapes exactly three characters in label
// values: backslash, double quote, and newline. Everything else — tab,
// carriage return, control bytes — passes through raw; %q-style Go
// escaping would corrupt them.
func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("weird_total", "weird labels", "path")
	cv.With(`back\slash`).Add(1)
	cv.With(`quo"te`).Add(2)
	cv.With("new\nline").Add(3)
	cv.With("tab\there").Add(4)

	out, err := snapToProm(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`weird_total{path="back\\slash"} 1`,
		`weird_total{path="quo\"te"} 2`,
		`weird_total{path="new\nline"} 3`,
		"weird_total{path=\"tab\there\"} 4", // tab stays raw
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// The escaped newline must not split the sample line.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "weird_total{") && !strings.Contains(line, "} ") {
			t.Fatalf("label newline split a sample line: %q", line)
		}
	}
}

func TestPromExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", func() *stats.Histogram { return stats.NewHistogram(1, 5, 1) })
	h.EnableExemplars(0.99)
	h.ObserveExemplar(50, Exemplar{AtNs: 123, SpanID: 7, Track: "kvstore", Span: "READ"})

	out, err := snapToProm(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket") || !strings.Contains(line, "# {") {
			continue
		}
		found = true
		for _, want := range []string{`span_id="7"`, `track="kvstore"`, `span="READ"`, "} 50 "} {
			if !strings.Contains(line, want) {
				t.Fatalf("exemplar line missing %q: %q", want, line)
			}
		}
		// The exemplar must ride the bucket that contains the value
		// (decade buckets: 50 lands in the ≤100 bucket).
		le := line[strings.Index(line, `le="`)+4:]
		le = le[:strings.IndexByte(le, '"')]
		ub, err := strconv.ParseFloat(le, 64)
		if err != nil || ub < 50 || ub > 101 {
			t.Fatalf("exemplar on the wrong bucket (le=%s): %q", le, line)
		}
	}
	if !found {
		t.Fatalf("no exemplar in exposition:\n%s", out)
	}
}

func TestExemplarThresholdGating(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", func() *stats.Histogram { return stats.NewHistogram(1, 5, 1) })
	h.EnableExemplars(0.99)
	// The threshold starts at zero (capture anything), then re-anchors to
	// the live p99 on refresh; a below-threshold value afterwards must not
	// displace the tail exemplar.
	for i := 0; i < 100; i++ {
		h.ObserveExemplar(10, Exemplar{AtNs: float64(i), SpanID: uint64(i)})
	}
	h.ObserveExemplar(9000, Exemplar{AtNs: 200, SpanID: 200})
	h.RefreshExemplarThreshold()
	h.ObserveExemplar(10, Exemplar{AtNs: 300, SpanID: 300})

	exs := h.Exemplars()
	for _, ex := range exs {
		if ex.SpanID == 300 {
			t.Fatalf("below-threshold observation captured after refresh: %+v", exs)
		}
	}
	var tail *Exemplar
	for i := range exs {
		if exs[i].Value == 9000 {
			tail = &exs[i]
		}
	}
	if tail == nil || tail.SpanID != 200 {
		t.Fatalf("tail exemplar lost: %+v", exs)
	}
}

// Satellite: the observability layer reports its own losses — trace
// drops and discarded negative counter deltas — in every exposition.
func TestSelfMetricsInExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	c.Add(5)
	c.Add(-3) // discarded: counters are monotone

	tr := NewTracer()
	tr.SetLimit(1)
	tr.Instant("t", "a", 1, nil)
	tr.Instant("t", "b", 2, nil) // dropped by the limit
	r.TrackTracer(tr)

	if tr.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", tr.Dropped())
	}
	out, err := snapToProm(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		SelfMetricNegativeDeltas + " 1",
		SelfMetricTraceDropped + " 1",
		"ops_total 5", // the bad delta was discarded, not applied
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTrackTracerDeduplicates(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	tr.SetLimit(1)
	tr.Instant("t", "a", 1, nil)
	tr.Instant("t", "b", 2, nil)
	r.TrackTracer(tr)
	r.TrackTracer(tr)
	r.TrackTracer(nil)

	out, err := snapToProm(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, SelfMetricTraceDropped+" 1") {
		t.Fatalf("double-tracked tracer double-counted drops:\n%s", out)
	}
}
