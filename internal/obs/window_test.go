package obs

import (
	"strings"
	"testing"

	"cxlsim/internal/stats"
)

func latHist() func() *stats.Histogram {
	// One bucket per decade over 1..1e5: coarse enough that quantile
	// expectations are just decade upper bounds.
	return func() *stats.Histogram { return stats.NewHistogram(1, 5, 1) }
}

func TestNilWindowsIsSafe(t *testing.T) {
	var w *Windows
	w.Flush(10)
	w.Close(20)
	w.OnSeal(func(WindowSnapshot) {})
	if w.Length() != 0 {
		t.Fatal("nil Windows Length != 0")
	}
	if snap := w.Snapshot(); snap != nil {
		t.Fatalf("nil Windows Snapshot = %v, want nil", snap)
	}
}

func TestNewWindowsPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"nil registry", func() { NewWindows(nil, 10) }},
		{"zero length", func() { NewWindows(NewRegistry(), 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestWindowsSealOnBoundary(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	w := NewWindows(r, 10)

	c.Add(3)
	w.Flush(5) // mid-window: nothing seals
	if n := len(w.Snapshot()); n != 0 {
		t.Fatalf("sealed %d windows before the boundary", n)
	}
	w.Flush(10) // boundary: window 0 seals with the accumulated delta
	snap := w.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("sealed %d windows, want 1", len(snap))
	}
	ws := snap[0]
	if ws.Index != 0 || ws.StartNs != 0 || ws.EndNs != 10 || ws.Partial {
		t.Fatalf("window bounds = %+v", ws)
	}
	if len(ws.Counters) != 1 || ws.Counters[0].Delta != 3 {
		t.Fatalf("counters = %+v, want one delta-3 entry", ws.Counters)
	}
	// 3 ops over 10 virtual ns = 3e8/s.
	if got := ws.Counters[0].Rate; got != 3e8 {
		t.Fatalf("rate = %g, want 3e8", got)
	}
}

func TestWindowsSkippedIntervalsSealEmpty(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	w := NewWindows(r, 10)
	c.Add(2)
	w.Flush(35) // windows 0..2 complete; delta lands in window 0
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("sealed %d windows, want 3", len(snap))
	}
	if len(snap[0].Counters) != 1 || snap[0].Counters[0].Delta != 2 {
		t.Fatalf("first window counters = %+v", snap[0].Counters)
	}
	for _, ws := range snap[1:] {
		if len(ws.Counters) != 0 {
			t.Fatalf("skipped window %d has counters %+v", ws.Index, ws.Counters)
		}
	}
}

func TestWindowsOutOfOrderFlushIgnored(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "ops").Add(1)
	w := NewWindows(r, 10)
	w.Flush(20)
	before := len(w.Snapshot())
	w.Flush(10) // stale: must not seal or double-count
	w.Flush(20)
	if after := len(w.Snapshot()); after != before {
		t.Fatalf("stale flush sealed windows: %d -> %d", before, after)
	}
}

func TestWindowsCloseSealsPartial(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	w := NewWindows(r, 10)
	c.Add(1)
	w.Flush(10)
	c.Add(4)
	w.Close(25) // window 1 full, window 2 partial at 25
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("sealed %d windows, want 3", len(snap))
	}
	if snap[1].Partial || len(snap[1].Counters) != 1 || snap[1].Counters[0].Delta != 4 {
		t.Fatalf("window 1 = %+v", snap[1])
	}
	last := snap[2]
	if !last.Partial || last.StartNs != 20 || last.EndNs != 25 {
		t.Fatalf("partial window = %+v", last)
	}
	// Closed: further activity is dropped.
	c.Add(9)
	w.Flush(100)
	w.Close(200)
	if n := len(w.Snapshot()); n != 3 {
		t.Fatalf("closed Windows sealed more: %d", n)
	}
}

func TestWindowsGaugeSampledEachSeal(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	w := NewWindows(r, 10)
	g.Set(7)
	w.Flush(10)
	g.Set(2)
	w.Flush(20)
	snap := w.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("sealed %d windows, want 2", len(snap))
	}
	if snap[0].Gauges[0].Value != 7 || snap[1].Gauges[0].Value != 2 {
		t.Fatalf("gauge samples = %g, %g; want 7, 2", snap[0].Gauges[0].Value, snap[1].Gauges[0].Value)
	}
}

func TestWindowsHistogramIntervalQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", latHist())
	w := NewWindows(r, 10)

	for i := 0; i < 99; i++ {
		h.Observe(50) // ≤100 bucket
	}
	h.Observe(5000) // ≤10000 bucket
	w.Flush(10)

	// Second window sees only its own observations, not the cumulative
	// distribution.
	h.Observe(200)
	w.Flush(20)

	snap := w.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("sealed %d windows, want 2", len(snap))
	}
	ref := latHist()()
	h0 := snap[0].Histograms[0]
	if h0.Count != 100 {
		t.Fatalf("window 0 count = %d, want 100", h0.Count)
	}
	if want := ref.BucketUpperBound(50); h0.P50 != want { // bucket bound containing the median
		t.Fatalf("window 0 p50 = %g, want %g", h0.P50, want)
	}
	if want := ref.BucketUpperBound(5000); h0.P999 != want {
		t.Fatalf("window 0 p999 = %g, want %g", h0.P999, want)
	}
	h1 := snap[1].Histograms[0]
	if want := ref.BucketUpperBound(200); h1.Count != 1 || h1.P50 != want {
		t.Fatalf("window 1 = %+v, want count 1 p50 %g", h1, want)
	}
}

func TestWindowsOnSealOrderAndJSON(t *testing.T) {
	r := NewRegistry()
	w := NewWindows(r, 10)
	var order []int64
	w.OnSeal(func(ws WindowSnapshot) { order = append(order, ws.Index) })
	w.Flush(30)
	w.Close(35)
	if len(order) != 4 {
		t.Fatalf("OnSeal fired %d times, want 4", len(order))
	}
	for i, idx := range order {
		if idx != int64(i) {
			t.Fatalf("OnSeal order = %v", order)
		}
	}
	var sb strings.Builder
	if err := w.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"partial": true`) {
		t.Fatalf("JSON missing partial marker:\n%s", sb.String())
	}
}

func TestWindowsLabeledChildrenSorted(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("reqs_total", "requests", "kind")
	cv.With("write").Add(1)
	cv.With("read").Add(2)
	w := NewWindows(r, 10)
	w.Flush(10)
	snap := w.Snapshot()
	cs := snap[0].Counters
	if len(cs) != 2 || cs[0].Labels[0] != "read" || cs[1].Labels[0] != "write" {
		t.Fatalf("children not label-sorted: %+v", cs)
	}
}
