package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cxlsim/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Re-registration returns the same metric.
	if r.Counter("c_total", "") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "ops", "kind")
	v.With("read").Add(3)
	v.With("update").Add(1)
	if v.With("read").Value() != 3 {
		t.Fatal("labeled children not stable")
	}
	snap := r.Snapshot()
	f, ok := snap.Find("ops_total")
	if !ok || len(f.Metrics) != 2 {
		t.Fatalf("snapshot family = %+v", f)
	}
	// Children sorted by label value: read < update.
	if f.Metrics[0].LabelValues[0] != "read" || f.Metrics[1].LabelValues[0] != "update" {
		t.Fatalf("child order = %+v", f.Metrics)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter name should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramWrapping(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", stats.NewLatencyHistogram)
	for _, v := range []float64{100, 200, 400} {
		h.Observe(v)
	}
	if got := h.Unwrap().Count(); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if q := h.Quantile(0.5); q < 150 || q > 250 {
		t.Fatalf("p50 = %v, want ≈200", q)
	}
	snap := h.Snapshot()
	if snap.Count != 3 || math.Abs(snap.Sum-700) > 1e-6 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestConcurrentRegistryAccess is the satellite -race test: parallel
// counter increments, gauge sets, and histogram observations racing
// snapshots.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	v := r.CounterVec("ops_total", "", "kind")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat", "", nil)

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"read", "update"}[w%2]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(kind).Inc()
				g.Set(float64(i))
				h.Observe(float64(100 + i))
			}
		}(w)
	}
	// Snapshot concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			snap := r.Snapshot()
			if _, err := snapToProm(snap); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := v.With("read").Value() + v.With("update").Value(); got != workers*perWorker {
		t.Fatalf("vec total = %v", got)
	}
	if got := h.Unwrap().Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d", got)
	}
}

func snapToProm(snap Snapshot) (string, error) {
	var b strings.Builder
	err := WriteProm(&b, snap)
	return b.String(), err
}

func TestPromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(7)
	r.GaugeVec("util", "capacity fraction", "resource").With(`dev"0`).Set(0.25)
	h := r.Histogram("lat_ns", "latency", func() *stats.Histogram { return stats.NewHistogram(1, 2, 5) })
	h.Observe(2)
	h.Observe(1e9) // clamped overflow
	h.Observe(0.5) // underflow

	out, err := snapToProm(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# HELP reqs_total requests\n# TYPE reqs_total counter\nreqs_total 7\n",
		"# TYPE util gauge\n",
		`util{resource="dev\"0"} 0.25`,
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{le="+Inf"} 3`,
		"lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at _count.
	var last int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.Atoi(fields[len(fields)-1])
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts decrease at %q", line)
		}
		last = n
	}
	if last != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", last)
	}
}
