package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cxlsim/internal/kvstore"
	"cxlsim/internal/obs"
	"cxlsim/internal/workload"
)

// instrumentedRun executes one small Hot-Promote YCSB-A run with full
// observability and returns the serialized trace and registry snapshot.
func instrumentedRun(t *testing.T) ([]byte, obs.Snapshot, []string) {
	t.Helper()
	d, err := kvstore.Deploy(kvstore.ConfHotPromote, kvstore.DeployOptions{SimKeys: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	obs.InstrumentMemsim(reg)
	defer obs.InstrumentMemsim(nil)

	rc := d.RunConfigFor(workload.YCSBA, 42)
	rc.Ops = 1_500
	// A short run covers only a fraction of the default 10 ms epoch;
	// tighten it so solver, tiering, and utilization sampling all fire.
	rc.EpochNs = 100_000
	rc.Metrics = reg
	rc.Tracer = tr
	kvstore.Run(d.Store, d.Alloc, rc)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reg.Snapshot(), tr.Tracks()
}

// TestInstrumentedRun covers two acceptance criteria with two identical
// runs: (1) determinism — same seed must produce byte-identical trace
// files and prometheus snapshots (no wall-clock timestamps or
// map-iteration nondeterminism anywhere in the pipeline); (2) coverage —
// the trace spans ≥3 subsystems and the registry carries the canonical
// families.
func TestInstrumentedRun(t *testing.T) {
	trace1, snap1, tracks := instrumentedRun(t)
	trace2, snap2, _ := instrumentedRun(t)

	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("same-seed traces differ (%d vs %d bytes)", len(trace1), len(trace2))
	}
	p1, p2 := promText(t, snap1), promText(t, snap2)
	if p1 != p2 {
		t.Fatalf("same-seed prometheus snapshots differ:\n--- run 1\n%s\n--- run 2\n%s", p1, p2)
	}

	want := map[string]bool{"sim": false, "kvstore": false, "tiering": false, "memsim": false}
	for _, track := range tracks {
		if _, ok := want[track]; ok {
			want[track] = true
		}
	}
	for track, seen := range want {
		if !seen {
			t.Errorf("trace missing track %q (have %v)", track, tracks)
		}
	}

	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace1, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}

	for _, fam := range []string{
		obs.MetricSimScheduled, obs.MetricSimFired, obs.MetricSimQueueDepth,
		obs.MetricSolves, obs.MetricUtilization,
		obs.MetricTierPromotedPages, obs.MetricTierMigratedBytes, obs.MetricTierThreshold,
		"kvstore_ops_total", "kvstore_op_latency_ns",
	} {
		f, ok := snap1.Find(fam)
		if !ok || len(f.Metrics) == 0 {
			t.Errorf("registry missing family %q", fam)
		}
	}

	// The prometheus rendering of a real run must have all three metric
	// shapes the acceptance criteria require.
	for _, wantLine := range []string{
		"# TYPE kvstore_ops_total counter",
		"# TYPE memsim_resource_utilization gauge",
		"# TYPE kvstore_op_latency_ns histogram",
		`le="+Inf"`,
	} {
		if !strings.Contains(p1, wantLine) {
			t.Errorf("prometheus output missing %q", wantLine)
		}
	}
}

func promText(t *testing.T, snap obs.Snapshot) string {
	t.Helper()
	var b strings.Builder
	if err := obs.WriteProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
