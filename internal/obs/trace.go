package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"cxlsim/internal/sim"
)

// Tracer records virtual-time spans, instants, and counter samples and
// serializes them as Chrome trace-event JSON (the format Perfetto and
// chrome://tracing load natively).
//
// Timestamps are sim.Time (virtual nanoseconds) converted to the
// format's microsecond unit; no wall-clock value is ever recorded, so a
// deterministic simulation produces a byte-identical trace on every run.
//
// A nil *Tracer is valid and ignores every call, letting instrumented
// code stay branch-free. All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	tracks  map[string]int // track name → synthetic tid
	order   []string       // tracks in first-use order
	limit   int            // 0 = unlimited
	dropped uint64
	spans   uint64 // SpanWithID sequence counter
}

// traceEvent is one Chrome trace-event record. Field names follow the
// trace-event format spec.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns an empty tracer with no event limit.
func NewTracer() *Tracer {
	return &Tracer{tracks: map[string]int{}}
}

// SetLimit caps the number of recorded events (0 = unlimited). Events
// past the cap are counted in Dropped instead of stored, keeping worst-
// case memory bounded while staying deterministic.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// usec converts virtual nanoseconds to the trace format's microseconds.
func usec(v sim.Time) float64 { return float64(v) / 1e3 }

func (t *Tracer) record(ev traceEvent, track string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	tid, ok := t.tracks[track]
	if !ok {
		tid = len(t.order) + 1
		t.tracks[track] = tid
		t.order = append(t.order, track)
	}
	ev.Pid = 1
	ev.Tid = tid
	t.events = append(t.events, ev)
}

// Span records a complete duration event on the named track.
func (t *Tracer) Span(track, name string, start, end sim.Time, args map[string]any) {
	if t == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	t.record(traceEvent{Name: name, Cat: track, Ph: "X", Ts: usec(start), Dur: usec(end - start), Args: args}, track)
}

// SpanWithID records a complete duration event like Span and returns a
// per-tracer sequence number identifying it, recorded as the span's
// span_id arg. Exemplars store the same number, so a tail-latency bucket
// in an exposition resolves to exactly one Perfetto span. The id is
// assigned (and returned) even if the event limit drops the record, so
// exemplar links stay stable; a nil tracer returns 0.
func (t *Tracer) SpanWithID(track, name string, start, end sim.Time, args map[string]any) uint64 {
	if t == nil {
		return 0
	}
	if end < start {
		start, end = end, start
	}
	t.mu.Lock()
	t.spans++
	id := t.spans
	t.mu.Unlock()
	if args == nil {
		args = map[string]any{"span_id": id}
	} else {
		args["span_id"] = id
	}
	t.record(traceEvent{Name: name, Cat: track, Ph: "X", Ts: usec(start), Dur: usec(end - start), Args: args}, track)
	return id
}

// Instant records a point event on the named track.
func (t *Tracer) Instant(track, name string, at sim.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.record(traceEvent{Name: name, Cat: track, Ph: "i", Ts: usec(at), Args: args}, track)
}

// Counter records a counter sample: Perfetto renders each series in
// values as a stacked timeline.
func (t *Tracer) Counter(track, name string, at sim.Time, values map[string]float64) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.record(traceEvent{Name: name, Cat: track, Ph: "C", Ts: usec(at), Args: args}, track)
}

// Len reports how many events are recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports how many events the limit discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Tracks lists track names in first-use order.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// WriteJSON serializes the trace in Chrome trace-event JSON object form:
// thread-name metadata first (one synthetic thread per track), then the
// recorded events in recording order. Output is deterministic for a
// deterministic recording: encoding/json sorts map keys, and no
// wall-clock value is present.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	first := true
	emit := func(ev any) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		// json.Encoder appends a newline per value, which the format
		// tolerates and which keeps the file diffable.
		return enc.Encode(ev)
	}
	for i, track := range t.order {
		meta := traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": track},
		}
		if err := emit(meta); err != nil {
			return err
		}
	}
	for _, ev := range t.events {
		if err := emit(ev); err != nil {
			return err
		}
	}
	if t.dropped > 0 {
		if err := emit(traceEvent{
			Name: "obs_dropped_events", Ph: "M", Pid: 1,
			Args: map[string]any{"dropped": t.dropped},
		}); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}

// String summarizes the tracer for debugging.
func (t *Tracer) String() string {
	if t == nil {
		return "tracer{nil}"
	}
	return fmt.Sprintf("tracer{%d events, %d tracks, %d dropped}", t.Len(), len(t.Tracks()), t.Dropped())
}
