//go:build !nosolvecache

package memsim

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// Solve memoization for closed solves. Tiering epochs and the
// closed-loop application models re-solve identical flow configurations
// thousands of times (every epoch of a steady-state KeyDB run carries the
// same demand), and each SolveClosed is a damped fixed point — hundreds
// of open passes — so a hit saves real work. The cache keys a solve by a
// canonical fingerprint of everything the result depends on — flow
// parameters, placement structure, and the full parameter set of every
// touched resource — so it stays correct across Resource.Degrade and
// across structurally identical but distinct machines (two
// topology.Testbed() instances hit the same entries). Open solves are
// not cached: one pass costs less than encoding the key.
//
// Build with -tags nosolvecache to compile the cache out entirely for
// A/B validation; see cache_off.go.

// solveCacheMaxEntries bounds cache memory. When the map fills, it is
// cleared wholesale: the workloads that benefit (sweeps, epoch loops)
// re-fill their working set within one pass, and wholesale clearing
// avoids any eviction bookkeeping on the hit path.
const solveCacheMaxEntries = 1 << 14

// solveCacheEntry stores one solve's outputs. Utilization is kept as a
// vector aligned with the key's canonical resource order so a hit can
// rebuild the map against the *caller's* resource pointers.
type solveCacheEntry struct {
	results []FlowResult
	util    []float64
}

var solveCache = struct {
	mu      sync.RWMutex
	entries map[string]solveCacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}{entries: make(map[string]solveCacheEntry)}

// SolveCacheEnabled reports whether solve memoization was compiled in.
func SolveCacheEnabled() bool { return true }

// SolveCacheStats reports cache hits, misses, and current entry count
// since process start (or the last ResetSolveCache).
func SolveCacheStats() (hits, misses uint64, entries int) {
	solveCache.mu.RLock()
	entries = len(solveCache.entries)
	solveCache.mu.RUnlock()
	return solveCache.hits.Load(), solveCache.misses.Load(), entries
}

// ResetSolveCache clears all cached solves and counters. Tests use it to
// A/B cached against uncached runs.
func ResetSolveCache() {
	solveCache.mu.Lock()
	defer solveCache.mu.Unlock()
	solveCache.entries = make(map[string]solveCacheEntry)
	solveCache.hits.Store(0)
	solveCache.misses.Store(0)
}

// solveKey is a canonical solve fingerprint plus the touched resources in
// first-encountered order (for rebuilding Utilization on a hit).
type solveKey struct {
	fp        string
	resources []*Resource
}

// keyEncoder builds a fingerprint incrementally, interning resources by
// first-encountered order. The encoding is never parsed — only compared —
// so it just has to be injective: every field is length-delimited or
// fixed-width, and resource back-references use the intern index.
type keyEncoder struct {
	buf   []byte
	index map[*Resource]int
	order []*Resource
}

func (e *keyEncoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *keyEncoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *keyEncoder) curve(c Curve) {
	e.u64(uint64(len(c.pts)))
	for _, p := range c.pts {
		e.f64(p.R)
		e.f64(p.V)
	}
}

// resource appends a back-reference for a seen resource or the full
// parameter set for a new one. Names are deliberately excluded: results
// depend only on numeric parameters and sharing structure, so two
// identically parameterized machines share entries.
func (e *keyEncoder) resource(r *Resource) {
	if i, ok := e.index[r]; ok {
		e.buf = append(e.buf, 'r')
		e.u64(uint64(i))
		return
	}
	e.index[r] = len(e.order)
	e.order = append(e.order, r)
	e.buf = append(e.buf, 'R')
	e.f64(r.IdleRead)
	e.f64(r.IdleWrite)
	e.f64(r.QueueScale)
	e.f64(r.OverloadRecession)
	e.curve(r.Peak)
	e.curve(r.Knee)
}

func (e *keyEncoder) placement(pl Placement) {
	e.u64(uint64(len(pl)))
	for _, wp := range pl {
		e.f64(wp.Weight)
		e.u64(uint64(len(wp.Path.Resources)))
		for _, r := range wp.Path.Resources {
			e.resource(r)
		}
	}
}

func (e *keyEncoder) mix(m Mix) {
	e.f64(m.ReadFrac)
	e.u64(uint64(m.Pattern))
}

func newKeyEncoder(flowCount int) *keyEncoder {
	return &keyEncoder{
		buf:   make([]byte, 0, 64+flowCount*96),
		index: make(map[*Resource]int, 8),
	}
}

func solveCacheKeyClosed(flows []ClosedFlow) solveKey {
	e := newKeyEncoder(len(flows))
	e.buf = append(e.buf, 'C')
	e.u64(uint64(len(flows)))
	for _, f := range flows {
		e.u64(uint64(f.Threads))
		e.f64(f.MLP)
		e.f64(f.AccessBytes)
		e.f64(f.ThinkNs)
		e.f64(f.FixedGBps)
		e.mix(f.Mix)
		e.placement(f.Placement)
	}
	return solveKey{fp: string(e.buf), resources: e.order}
}

// solveCacheGet returns a cached solve, rebuilding Utilization against
// the key's resource pointers. The results slice is copied so callers
// can't corrupt the entry.
func solveCacheGet(key solveKey) ([]FlowResult, Utilization, bool) {
	solveCache.mu.RLock()
	entry, ok := solveCache.entries[key.fp]
	solveCache.mu.RUnlock()
	if !ok {
		solveCache.misses.Add(1)
		return nil, nil, false
	}
	solveCache.hits.Add(1)
	results := make([]FlowResult, len(entry.results))
	copy(results, entry.results)
	util := make(Utilization, len(key.resources))
	for i, r := range key.resources {
		if i < len(entry.util) {
			util[r] = entry.util[i]
		}
	}
	return results, util, true
}

// solveCachePut stores a solve under key. The utilization map is
// flattened onto the key's canonical resource order.
func solveCachePut(key solveKey, results []FlowResult, util Utilization) {
	entry := solveCacheEntry{
		results: append([]FlowResult(nil), results...),
		util:    make([]float64, len(key.resources)),
	}
	for i, r := range key.resources {
		entry.util[i] = util[r]
	}
	solveCache.mu.Lock()
	if len(solveCache.entries) >= solveCacheMaxEntries {
		solveCache.entries = make(map[string]solveCacheEntry)
	}
	solveCache.entries[key.fp] = entry
	solveCache.mu.Unlock()
}
