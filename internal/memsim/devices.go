package memsim

// This file encodes the paper's testbed hardware (§2.4, §3) as calibrated
// resources. All anchor values trace to specific sentences of the paper;
// values the paper does not report are interpolated and flagged.

// Theoretical channel bandwidth (§3.1): one DDR5-4800 channel peaks at
// 38.4 GB/s; an SNC-4 sub-NUMA domain has two channels = 76.8 GB/s.
const (
	DDR5ChannelPeakGBps = 38.4
	SNCDomainChannels   = 2
	SNCDomainPeakGBps   = DDR5ChannelPeakGBps * SNCDomainChannels
)

// Capacities of the testbed (§2.4).
const (
	SNCDomainCapacityBytes = 128 << 30  // 2 × 64 GB DDR5-4800 DIMMs
	SocketDDRCapacityBytes = 512 << 30  // 4 SNC domains
	CXLDeviceCapacityBytes = 256 << 30  // one A1000 with 2 channels populated
	ServerDDRCapacityBytes = 1024 << 30 // two sockets
	ServerCXLCapacityBytes = 512 << 30  // two A1000 cards, both on socket 0
)

// NewDDRDomain models one SNC-4 sub-NUMA domain: two DDR5-4800 channels.
//
// Anchors (Fig. 3(a)):
//   - idle read latency ≈ 97 ns;
//   - read-only peak 67 GB/s (87% of 76.8 theoretical);
//   - write-only peak 54.6 GB/s;
//   - latency takes off at 75–83% utilization (knee curve below), with
//     the knee shifting left as write share grows (§3.3).
//
// The idle non-temporal write latency is not separately reported for the
// local case; we use the remote-socket NT-write measurement (71.77 ns,
// Fig. 3(b)) as the posted-write service time, since posted writes do not
// traverse the UPI synchronously.
func NewDDRDomain(name string) *Resource {
	return &Resource{
		Name:      name,
		IdleRead:  97,
		IdleWrite: 71.77,
		Peak: NewCurve(
			CurvePoint{R: 1, V: 67},
			CurvePoint{R: 2.0 / 3, V: 63},
			CurvePoint{R: 0.5, V: 61},
			CurvePoint{R: 0.25, V: 58},
			CurvePoint{R: 0, V: 54.6},
		),
		Knee: NewCurve(
			CurvePoint{R: 1, V: 0.83},
			CurvePoint{R: 0.5, V: 0.79},
			CurvePoint{R: 0, V: 0.75},
		),
		QueueScale: 3, // ~10× idle at full saturation, matching Fig. 3(a)'s log-scale spike
	}
}

// NewSocketDDR models a whole socket's eight channels with SNC disabled
// (the capacity-bound experiments, §4, disable SNC). Idle latency matches
// the domain model; peak scales by 4 domains.
func NewSocketDDR(name string) *Resource {
	r := NewDDRDomain(name)
	r.Peak = NewCurve(
		CurvePoint{R: 1, V: 67 * 4},
		CurvePoint{R: 2.0 / 3, V: 63 * 4},
		CurvePoint{R: 0.5, V: 61 * 4},
		CurvePoint{R: 0.25, V: 58 * 4},
		CurvePoint{R: 0, V: 54.6 * 4},
	)
	return r
}

// NewUPILink models one direction-pair of the cross-socket interconnect.
//
// Anchors (Fig. 3(b)):
//   - remote read idle 130 ns ⇒ UPI adds ≈33 ns over the 97 ns local read;
//   - remote NT-write idle 71.77 ns ⇒ posted writes add ≈0 ns
//     synchronously (they "proceed asynchronously without awaiting
//     confirmation");
//   - read-only remote peak matches local peak (≈67 GB/s) but mixed
//     read/write traffic loses bandwidth to cache-coherence traffic, and
//     write-only traffic is lowest because it exercises only one UPI
//     direction (§3.2). The write-only peak is not numerically reported;
//     35 GB/s reproduces "lowest bandwidth" with a severe drop.
//   - the knee comes earlier than local access ("latency escalation
//     occurs earlier in remote socket memory accesses"), from queue
//     contention at the remote memory controller.
func NewUPILink(name string) *Resource {
	return &Resource{
		Name:      name,
		IdleRead:  33,
		IdleWrite: 0,
		Peak: NewCurve(
			CurvePoint{R: 1, V: 66},
			CurvePoint{R: 2.0 / 3, V: 55},
			CurvePoint{R: 0.5, V: 50},
			CurvePoint{R: 0.25, V: 42},
			CurvePoint{R: 0, V: 35},
		),
		Knee: NewCurve(
			CurvePoint{R: 1, V: 0.72},
			CurvePoint{R: 0, V: 0.62},
		),
		QueueScale: 14,
		// Fig. 3(b) 0:1 shows bandwidth *decreasing* as load grows past
		// saturation; a mild recession term reproduces that fold-back.
		OverloadRecession: 0.35,
	}
}

// NewCXLDevice models one A1000 ASIC expander: PCIe Gen5 ×16 link + CXL
// controller + two DDR5-4800 channels, as a single resource.
//
// Anchors (Fig. 3(c), §3.3):
//   - idle read latency 250.42 ns (2.58× local DDR, 1.93× remote DDR —
//     inside the paper's 2.4–2.6× and 1.5–1.92× brackets);
//   - max bandwidth 56.7 GB/s at a 2:1 read:write mix (73.x% efficiency);
//   - read-only peak is *lower* than 2:1 because PCIe is full-duplex and
//     a pure-read stream cannot use the host→device direction for data;
//   - loaded latency stays comparatively stable until high utilization
//     ("remains relatively stable as bandwidth increases") — a later
//     knee and gentler queue scale than DDR.
//
// The idle write latency is not reported; posted CXL writes traverse the
// PCIe link and controller, so we model ≈185 ns (controller + link, no
// DRAM read turnaround).
func NewCXLDevice(name string) *Resource {
	return &Resource{
		Name:      name,
		IdleRead:  250.42,
		IdleWrite: 185,
		Peak: NewCurve(
			CurvePoint{R: 1, V: 52},
			CurvePoint{R: 2.0 / 3, V: 56.7},
			CurvePoint{R: 0.5, V: 55},
			CurvePoint{R: 0.25, V: 52.5},
			CurvePoint{R: 0, V: 50},
		),
		Knee: NewCurve(
			CurvePoint{R: 1, V: 0.88},
			CurvePoint{R: 0, V: 0.82},
		),
		QueueScale: 2, // "relatively stable" loaded latency (Fig. 3(c))
	}
}

// NewRSFStage models the Remote Snoop Filter bottleneck on the current
// Sapphire Rapids platform for cross-socket CXL access (§3.2): idle
// latency inflates to 485 ns total and bandwidth is clamped near
// 20.4 GB/s (measured at 2:1) even though UPI utilization stays below
// 30%. Intel attributes this to the RSF and expects a fix in the next
// processor generation; ablations can therefore drop this stage to model
// future platforms.
//
// Idle contribution: 485 − 250.42 (device) − 33 (UPI read hop) ≈ 201.6 ns.
func NewRSFStage(name string) *Resource {
	return &Resource{
		Name:      name,
		IdleRead:  201.6,
		IdleWrite: 100,
		Peak: NewCurve(
			CurvePoint{R: 1, V: 19.5},
			CurvePoint{R: 2.0 / 3, V: 20.4},
			CurvePoint{R: 0.5, V: 19.8},
			CurvePoint{R: 0.25, V: 18.5},
			CurvePoint{R: 0, V: 17},
		),
		Knee:              Flat(0.7),
		QueueScale:        10,
		OverloadRecession: 0.3,
	}
}

// NewSSDStage models a 1.92 TB NVMe SSD (§2.4) as a memory-path stage for
// spill traffic. Idle latency ≈ 80 µs reads / 20 µs writes, ~3 GB/s read
// bandwidth class. Used by the KV-store Flash backend and Spark spill.
func NewSSDStage(name string) *Resource {
	return &Resource{
		Name:      name,
		IdleRead:  80_000,
		IdleWrite: 20_000,
		Peak: NewCurve(
			CurvePoint{R: 1, V: 3.2},
			CurvePoint{R: 0, V: 2.4},
		),
		Knee:       Flat(0.7),
		QueueScale: 20,
	}
}
