// Package memsim models the memory hierarchy of the paper's testbed — DDR5
// channel groups, the AsteraLabs A1000 ASIC CXL expander behind PCIe Gen5,
// and the UPI cross-socket interconnect — as shared queueing resources with
// load-dependent latency.
//
// Everything in this package is calibrated against the paper's own
// measurements (§3.2–§3.3): idle latencies (97 ns local DDR, 130 ns remote
// DDR, 250.42 ns local CXL, 485 ns remote CXL), per-mix peak bandwidths
// (67 / 54.6 / 56.7 / 20.4 GB/s), knee points (75–83% of peak), and the
// Remote Snoop Filter bandwidth clamp on cross-socket CXL access.
//
// Two solvers expose the model:
//
//   - SolveOpen: offered-load flows (an MLC-style sweep) — reports achieved
//     bandwidth and loaded latency, including the overload regime where
//     write-heavy remote traffic loses bandwidth as load rises.
//   - SolveClosed: closed-loop flows (threads × MLP × access size) — finds
//     the throughput/latency fixed point, which is how the application
//     models (KV store, Spark, LLM) consume the hierarchy.
//
// Bandwidth unit: 1.0 == 1 GB/s == 1 byte/ns (with GB = 1e9 bytes), so
// latency math in nanoseconds and bandwidth math compose without
// conversion constants.
package memsim

import "fmt"

// Pattern is the spatial access pattern. The paper finds no significant
// performance disparity between sequential and random access at 64 B
// granularity (Fig. 4(g,h)); we model random as a small constant idle
// penalty so the comparison is representable but near-neutral.
type Pattern int

// Access patterns.
const (
	Sequential Pattern = iota
	Random
)

// String names the pattern.
func (p Pattern) String() string {
	if p == Random {
		return "random"
	}
	return "sequential"
}

// randomIdlePenalty multiplies idle latency under Random access.
const randomIdlePenalty = 1.02

// Mix describes a traffic mix the way the paper labels its figures: a
// read:write ratio plus the access pattern. Writes are non-temporal
// (streaming stores), matching the MLC workloads in §3.
type Mix struct {
	ReadFrac float64 // fraction of accesses that are reads, in [0,1]
	Pattern  Pattern
}

// Canonical mixes used throughout the paper's figures.
var (
	ReadOnly  = Mix{ReadFrac: 1}
	Mix2to1   = Mix{ReadFrac: 2.0 / 3}
	Mix1to1   = Mix{ReadFrac: 0.5}
	Mix1to3   = Mix{ReadFrac: 0.25}
	WriteOnly = Mix{ReadFrac: 0}
)

// RW builds a mix from an r:w ratio, e.g. RW(2,1) for the paper's "2:1".
func RW(r, w int) Mix {
	if r < 0 || w < 0 || r+w == 0 {
		panic(fmt.Sprintf("memsim: invalid read:write ratio %d:%d", r, w))
	}
	return Mix{ReadFrac: float64(r) / float64(r+w)}
}

// WithPattern returns a copy of the mix with the given pattern.
func (m Mix) WithPattern(p Pattern) Mix {
	m.Pattern = p
	return m
}

// Label renders the mix as the paper writes it ("1:0", "2:1", ...).
func (m Mix) Label() string {
	switch {
	case m.ReadFrac >= 0.999:
		return "1:0"
	case m.ReadFrac <= 0.001:
		return "0:1"
	}
	// Render common ratios exactly; otherwise as a percentage.
	type ratio struct {
		r, w int
		f    float64
	}
	for _, c := range []ratio{{2, 1, 2.0 / 3}, {1, 1, 0.5}, {1, 2, 1.0 / 3}, {1, 3, 0.25}, {3, 1, 0.75}} {
		if abs(m.ReadFrac-c.f) < 1e-6 {
			return fmt.Sprintf("%d:%d", c.r, c.w)
		}
	}
	return fmt.Sprintf("%.0f%%r", m.ReadFrac*100)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// StandardMixes returns the figure sweep order used by Figs. 3 and 4.
func StandardMixes() []Mix {
	return []Mix{ReadOnly, Mix2to1, Mix1to1, Mix1to3, WriteOnly}
}
