package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerationOrdering(t *testing.T) {
	gens := CompareGenerations(Mix2to1)
	if len(gens) != 4 {
		t.Fatalf("want 4 generations, got %d", len(gens))
	}
	names := []string{"DDR5", "CXL 1.1", "CXL 2.0", "CXL 3.x"}
	for i, g := range gens {
		if len(g.Name) < len(names[i]) || g.Name[:len(names[i])] != names[i] {
			t.Errorf("generation %d = %q, want prefix %q", i, g.Name, names[i])
		}
	}
	// Latency grows monotonically with topology depth.
	for i := 1; i < len(gens); i++ {
		if gens[i].IdleNs <= gens[i-1].IdleNs {
			t.Errorf("idle latency should grow: %s (%.0f) vs %s (%.0f)",
				gens[i].Name, gens[i].IdleNs, gens[i-1].Name, gens[i-1].IdleNs)
		}
	}
	// CXL 3.x bandwidth passes DDR (the §7 "superior bandwidth" claim
	// for next-gen interconnects).
	if gens[3].BWFracDDR <= 1 {
		t.Errorf("CXL 3.x bandwidth fraction = %.2f, want > 1", gens[3].BWFracDDR)
	}
	// CXL 1.1 and 2.0 share the PCIe 5.0 ceiling.
	if gens[1].PeakGBps != gens[2].PeakGBps {
		t.Error("CXL 1.1 and 2.0 share the PCIe 5.0 link budget")
	}
	// DDR is the reference.
	if gens[0].LatVsDDR != 1 || gens[0].BWFracDDR != 1 {
		t.Error("DDR row should be the unit reference")
	}
}

func TestCXL2AddsSwitchLatencyOnly(t *testing.T) {
	base := NewCXLDevice("a")
	switched := NewCXL2Device("b")
	if d := switched.IdleRead - base.IdleRead; math.Abs(d-70) > 1e-9 {
		t.Fatalf("switch hop adds %.1f ns, want 70", d)
	}
	if switched.Peak.At(0.5) != base.Peak.At(0.5) {
		t.Fatal("CXL 2.0 should not change the bandwidth profile")
	}
}

func TestCXL3Bandwidth(t *testing.T) {
	d := NewCXL3Device("c")
	if got, want := d.Peak.At(2.0/3), 56.7*1.8; got != want {
		t.Fatalf("CXL 3.x 2:1 peak = %v, want %v", got, want)
	}
}

// --- solver conservation properties ---

// Property: for any set of open flows on one device, total achieved
// bandwidth never exceeds the device's best-case peak (capacity is
// conserved).
func TestPropertyConservationSingleDevice(t *testing.T) {
	f := func(loads []uint8, rfRaw uint8) bool {
		if len(loads) == 0 {
			return true
		}
		ddr := NewDDRDomain("ddr")
		p := NewPath("p", ddr)
		rf := float64(rfRaw%101) / 100
		mix := Mix{ReadFrac: rf}
		flows := make([]OpenFlow, 0, len(loads))
		for _, l := range loads {
			flows = append(flows, OpenFlow{
				Placement: SinglePath(p), Mix: mix, Offered: 1 + float64(l%100),
			})
		}
		res, _ := SolveOpen(flows)
		total := 0.0
		for _, r := range res {
			total += r.Achieved
		}
		return total <= ddr.Peak.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding background load never reduces a flow's latency.
func TestPropertyLatencyMonotoneInBackground(t *testing.T) {
	f := func(bgRaw uint8) bool {
		ddr := NewDDRDomain("ddr")
		p := NewPath("p", ddr)
		fg := OpenFlow{Placement: SinglePath(p), Mix: ReadOnly, Offered: 10}
		solo, _ := SolveOpen([]OpenFlow{fg})
		bg := OpenFlow{Placement: SinglePath(p), Mix: ReadOnly, Offered: float64(bgRaw % 80)}
		both, _ := SolveOpen([]OpenFlow{fg, bg})
		return both[0].Latency >= solo[0].Latency-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FixedGBps closed flows offer exactly their demand.
func TestPropertyFixedDemandFlows(t *testing.T) {
	f := func(demandRaw uint8) bool {
		d := 1 + float64(demandRaw%50)
		ddr := NewDDRDomain("ddr")
		p := NewPath("p", ddr)
		res, _ := SolveClosed([]ClosedFlow{{
			Placement: SinglePath(p), Mix: ReadOnly, FixedGBps: d,
		}})
		return res[0].Offered == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegradeComposesCumulatively(t *testing.T) {
	r := NewCXLDevice("d")
	p0 := r.Peak.At(1)
	r.Degrade(0.5, 1)
	r.Degrade(0.5, 1)
	if got := r.Peak.At(1); got != p0*0.25 {
		t.Fatalf("two half-degrades = %v, want %v", got, p0*0.25)
	}
}
