package memsim

import "fmt"

// Path is a CPU→memory route: an ordered set of shared resources. The four
// routes the paper studies are local DDR (one resource), remote DDR
// (UPI + DDR), local CXL (the CXL device resource, which folds in the
// PCIe link and ASIC controller), and remote CXL (UPI + RSF + device).
type Path struct {
	Name      string
	Resources []*Resource
}

// NewPath builds a path and validates its resources.
func NewPath(name string, rs ...*Resource) *Path {
	if len(rs) == 0 {
		panic("memsim: path with no resources")
	}
	for _, r := range rs {
		r.validate()
	}
	return &Path{Name: name, Resources: rs}
}

// IdleLatency is the unloaded end-to-end latency for mix m: the sum of
// per-stage idle contributions.
func (p *Path) IdleLatency(m Mix) float64 {
	sum := 0.0
	for _, r := range p.Resources {
		sum += r.idle(m)
	}
	return sum
}

// PeakBandwidth is the end-to-end deliverable bandwidth for mix m: the
// minimum over stages.
func (p *Path) PeakBandwidth(m Mix) float64 {
	min := p.Resources[0].Peak.At(m.ReadFrac)
	for _, r := range p.Resources[1:] {
		if v := r.Peak.At(m.ReadFrac); v < min {
			min = v
		}
	}
	return min
}

// bottleneck returns the stage with the smallest peak for mix m.
func (p *Path) bottleneck(m Mix) *Resource {
	best := p.Resources[0]
	min := best.Peak.At(m.ReadFrac)
	for _, r := range p.Resources[1:] {
		if v := r.Peak.At(m.ReadFrac); v < min {
			min, best = v, r
		}
	}
	return best
}

// String renders the route.
func (p *Path) String() string {
	s := p.Name + "["
	for i, r := range p.Resources {
		if i > 0 {
			s += "→"
		}
		s += r.Name
	}
	return s + "]"
}

// Placement is a traffic split across paths — the mechanism behind the
// kernel's N:M interleave policy (§2.3) and behind page-level tiering:
// Weight is the fraction of accesses served by each path.
type Placement []WeightedPath

// WeightedPath is one component of a Placement.
type WeightedPath struct {
	Path   *Path
	Weight float64
}

// SinglePath wraps one path as a trivial placement.
func SinglePath(p *Path) Placement {
	return Placement{{Path: p, Weight: 1}}
}

// Interleave builds the kernel patch's N:M policy across two paths: n
// pages on top (first path), m pages on the lower tier (second path). For
// uniformly-striped pages under uniform access, the access split equals
// the page split.
func Interleave(top, low *Path, n, m int) Placement {
	if n < 0 || m < 0 || n+m == 0 {
		panic(fmt.Sprintf("memsim: invalid interleave ratio %d:%d", n, m))
	}
	total := float64(n + m)
	return Placement{
		{Path: top, Weight: float64(n) / total},
		{Path: low, Weight: float64(m) / total},
	}
}

// normalized returns a copy with weights scaled to sum to 1, dropping
// zero-weight entries.
func (pl Placement) normalized() Placement {
	sum := 0.0
	for _, wp := range pl {
		if wp.Weight < 0 {
			panic("memsim: negative placement weight")
		}
		sum += wp.Weight
	}
	if sum == 0 {
		panic("memsim: placement with zero total weight")
	}
	if sum == 1 {
		// Already normalized (w/1 == w bit-for-bit): solver hot loops call
		// normalized() once per flow per pass, so skipping the copy here
		// removes their dominant allocation.
		clean := true
		for _, wp := range pl {
			if wp.Weight == 0 {
				clean = false
				break
			}
		}
		if clean {
			return pl
		}
	}
	out := make(Placement, 0, len(pl))
	for _, wp := range pl {
		if wp.Weight == 0 {
			continue
		}
		out = append(out, WeightedPath{Path: wp.Path, Weight: wp.Weight / sum})
	}
	return out
}

// IdleLatency is the weight-averaged unloaded latency of the placement.
func (pl Placement) IdleLatency(m Mix) float64 {
	sum := 0.0
	for _, wp := range pl.normalized() {
		sum += wp.Weight * wp.Path.IdleLatency(m)
	}
	return sum
}
