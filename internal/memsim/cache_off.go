//go:build nosolvecache

package memsim

// Built with -tags nosolvecache: solve memoization is compiled out. Every
// SolveClosed call runs the full fixed point, which is what A/B
// validation runs compare against the cached build (results must be
// bit-identical).

// SolveCacheEnabled reports whether solve memoization was compiled in.
func SolveCacheEnabled() bool { return false }

// SolveCacheStats reports zeros: the cache is compiled out.
func SolveCacheStats() (hits, misses uint64, entries int) { return 0, 0, 0 }

// ResetSolveCache is a no-op: the cache is compiled out.
func ResetSolveCache() {}

// solveKey carries nothing in the uncached build.
type solveKey struct{}

func solveCacheKeyClosed([]ClosedFlow) solveKey { return solveKey{} }

func solveCacheGet(solveKey) ([]FlowResult, Utilization, bool) { return nil, nil, false }

func solveCachePut(solveKey, []FlowResult, Utilization) {}
