package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixLabels(t *testing.T) {
	cases := map[string]Mix{
		"1:0": ReadOnly,
		"2:1": Mix2to1,
		"1:1": Mix1to1,
		"1:3": Mix1to3,
		"0:1": WriteOnly,
		"3:1": RW(3, 1),
		"1:2": RW(1, 2),
	}
	for want, m := range cases {
		if got := m.Label(); got != want {
			t.Errorf("Label(%v) = %q, want %q", m.ReadFrac, got, want)
		}
	}
	if got := (Mix{ReadFrac: 0.37}).Label(); got != "37%r" {
		t.Errorf("odd mix label = %q", got)
	}
}

func TestRWRatio(t *testing.T) {
	if m := RW(2, 1); math.Abs(m.ReadFrac-2.0/3) > 1e-12 {
		t.Fatalf("RW(2,1) read frac = %v", m.ReadFrac)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RW(0,0) did not panic")
		}
	}()
	RW(0, 0)
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || Random.String() != "random" {
		t.Fatal("pattern strings wrong")
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := NewCurve(CurvePoint{R: 0, V: 10}, CurvePoint{R: 1, V: 20})
	if v := c.At(0.5); v != 15 {
		t.Fatalf("At(0.5) = %v, want 15", v)
	}
	if v := c.At(-1); v != 10 {
		t.Fatalf("clamp low = %v, want 10", v)
	}
	if v := c.At(2); v != 20 {
		t.Fatalf("clamp high = %v, want 20", v)
	}
	if c.Max() != 20 {
		t.Fatalf("Max = %v", c.Max())
	}
}

func TestCurveUnsortedAnchors(t *testing.T) {
	c := NewCurve(CurvePoint{R: 1, V: 20}, CurvePoint{R: 0, V: 10}, CurvePoint{R: 0.5, V: 12})
	if v := c.At(0.25); math.Abs(v-11) > 1e-12 {
		t.Fatalf("At(0.25) = %v, want 11", v)
	}
}

func TestCurvePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":     func() { NewCurve() },
		"range":     func() { NewCurve(CurvePoint{R: 2, V: 1}) },
		"duplicate": func() { NewCurve(CurvePoint{R: 0.5, V: 1}, CurvePoint{R: 0.5, V: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// --- Calibration tests: the device models must reproduce the paper's
// --- §3 anchor measurements.

func TestPaperAnchorIdleLatencies(t *testing.T) {
	ddr := NewDDRDomain("ddr")
	upi := NewUPILink("upi")
	cxl := NewCXLDevice("cxl")
	rsf := NewRSFStage("rsf")

	local := NewPath("MMEM", ddr)
	remote := NewPath("MMEM-r", upi, ddr)
	localCXL := NewPath("CXL", cxl)
	remoteCXL := NewPath("CXL-r", upi, rsf, cxl)

	cases := []struct {
		name string
		path *Path
		mix  Mix
		want float64
		tol  float64
	}{
		{"local DDR read 97ns", local, ReadOnly, 97, 0.01},
		{"remote DDR read 130ns", remote, ReadOnly, 130, 0.01},
		{"remote DDR NT-write 71.77ns", remote, WriteOnly, 71.77, 0.01},
		{"local CXL read 250.42ns", localCXL, ReadOnly, 250.42, 0.01},
		{"remote CXL read 485ns", remoteCXL, ReadOnly, 485, 0.01},
	}
	for _, c := range cases {
		got := c.path.IdleLatency(c.mix)
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s: got %.2f ns", c.name, got)
		}
	}
}

func TestPaperAnchorLatencyRatios(t *testing.T) {
	// §3.3: local CXL latency is 2.4–2.6× local DDR and 1.5–1.92× remote DDR.
	local := NewPath("MMEM", NewDDRDomain("ddr"))
	remote := NewPath("MMEM-r", NewUPILink("upi"), NewDDRDomain("ddr2"))
	cxl := NewPath("CXL", NewCXLDevice("cxl"))

	r1 := cxl.IdleLatency(ReadOnly) / local.IdleLatency(ReadOnly)
	if r1 < 2.4 || r1 > 2.6 {
		t.Errorf("CXL/local DDR ratio = %.2f, want within [2.4,2.6]", r1)
	}
	r2 := cxl.IdleLatency(ReadOnly) / remote.IdleLatency(ReadOnly)
	if r2 < 1.5 || r2 > 1.95 {
		t.Errorf("CXL/remote DDR ratio = %.2f, want within [1.5,1.95]", r2)
	}
}

func TestPaperAnchorPeakBandwidths(t *testing.T) {
	ddr := NewPath("MMEM", NewDDRDomain("ddr"))
	cxl := NewPath("CXL", NewCXLDevice("cxl"))
	rcxl := NewPath("CXL-r", NewUPILink("upi"), NewRSFStage("rsf"), NewCXLDevice("cxl2"))

	if v := ddr.PeakBandwidth(ReadOnly); math.Abs(v-67) > 0.5 {
		t.Errorf("MMEM read peak = %v, want 67", v)
	}
	if v := ddr.PeakBandwidth(WriteOnly); math.Abs(v-54.6) > 0.5 {
		t.Errorf("MMEM write peak = %v, want 54.6", v)
	}
	if v := cxl.PeakBandwidth(Mix2to1); math.Abs(v-56.7) > 0.5 {
		t.Errorf("CXL 2:1 peak = %v, want 56.7", v)
	}
	if cxl.PeakBandwidth(ReadOnly) >= cxl.PeakBandwidth(Mix2to1) {
		t.Error("CXL read-only peak should be below 2:1 peak (PCIe bidirectionality)")
	}
	if v := rcxl.PeakBandwidth(Mix2to1); math.Abs(v-20.4) > 0.5 {
		t.Errorf("CXL-r 2:1 peak = %v, want 20.4", v)
	}
	// 87% of theoretical for read-only local DDR.
	if eff := ddr.PeakBandwidth(ReadOnly) / SNCDomainPeakGBps; math.Abs(eff-0.87) > 0.01 {
		t.Errorf("MMEM read efficiency = %.3f, want ≈0.87", eff)
	}
}

func TestLoadedLatencyFlatThenSpikes(t *testing.T) {
	ddr := NewDDRDomain("ddr")
	idle := ddr.latencyAt(0, ReadOnly)
	atKnee := ddr.latencyAt(ddr.Knee.At(1), ReadOnly)
	nearSat := ddr.latencyAt(0.97, ReadOnly)
	if atKnee > idle*1.15 {
		t.Errorf("latency at knee %.1f should be within 15%% of idle %.1f", atKnee, idle)
	}
	if nearSat < idle*4 {
		t.Errorf("latency near saturation %.1f should spike ≥4× idle %.1f", nearSat, idle)
	}
	// Monotone in utilization.
	prev := 0.0
	for u := 0.0; u <= 1.2; u += 0.01 {
		l := ddr.latencyAt(u, ReadOnly)
		if l < prev {
			t.Fatalf("latency not monotone at u=%.2f", u)
		}
		prev = l
	}
}

func TestKneeShiftsLeftWithWrites(t *testing.T) {
	// §3.3: "the latency-bandwidth knee-point shifts to the left as the
	// proportion of write operations ... increases."
	ddr := NewDDRDomain("ddr")
	if ddr.Knee.At(1) <= ddr.Knee.At(0) {
		t.Error("knee should be later for read-only than write-only")
	}
}

func TestRandomPatternNearNeutral(t *testing.T) {
	// Fig. 4(g,h): no significant disparity between random and
	// sequential. Penalty must be ≤5%.
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	seq := p.IdleLatency(ReadOnly)
	rnd := p.IdleLatency(ReadOnly.WithPattern(Random))
	if rnd < seq || rnd > seq*1.05 {
		t.Errorf("random latency %.1f vs sequential %.1f: want ≤5%% apart", rnd, seq)
	}
}

func TestPathValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty path did not panic")
		}
	}()
	NewPath("empty")
}

func TestPathString(t *testing.T) {
	p := NewPath("CXL-r", NewUPILink("upi"), NewCXLDevice("cxl"))
	if p.String() != "CXL-r[upi→cxl]" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestResourceValidate(t *testing.T) {
	bad := []*Resource{
		{Name: "", Peak: Flat(1)},
		{Name: "neg", IdleRead: -1, Peak: Flat(1)},
		{Name: "zero", Peak: Flat(0)},
	}
	for _, r := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%q: no panic", r.Name)
				}
			}()
			NewPath("p", r)
		}()
	}
}

func TestInterleavePlacement(t *testing.T) {
	top := NewPath("MMEM", NewDDRDomain("ddr"))
	low := NewPath("CXL", NewCXLDevice("cxl"))
	pl := Interleave(top, low, 3, 1)
	if math.Abs(pl[0].Weight-0.75) > 1e-12 || math.Abs(pl[1].Weight-0.25) > 1e-12 {
		t.Fatalf("3:1 interleave weights = %v, %v", pl[0].Weight, pl[1].Weight)
	}
	// Idle latency is the weighted average.
	want := 0.75*97 + 0.25*250.42
	if got := pl.IdleLatency(ReadOnly); math.Abs(got-want) > 0.1 {
		t.Fatalf("interleave idle latency = %v, want %v", got, want)
	}
}

func TestInterleavePanics(t *testing.T) {
	top := NewPath("MMEM", NewDDRDomain("ddr"))
	defer func() {
		if recover() == nil {
			t.Fatal("Interleave(0,0) did not panic")
		}
	}()
	Interleave(top, top, 0, 0)
}

func TestPlacementNormalization(t *testing.T) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	pl := Placement{{Path: p, Weight: 2}, {Path: p, Weight: 0}}
	n := pl.normalized()
	if len(n) != 1 || n[0].Weight != 1 {
		t.Fatalf("normalized = %+v", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight placement did not panic")
		}
	}()
	Placement{{Path: p, Weight: 0}}.normalized()
}

func TestSolveOpenUnderload(t *testing.T) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	res, util := SolveOpen([]OpenFlow{{Placement: SinglePath(p), Mix: ReadOnly, Offered: 10}})
	if math.Abs(res[0].Achieved-10) > 1e-9 {
		t.Fatalf("underload achieved = %v, want 10", res[0].Achieved)
	}
	if res[0].Latency < 97 || res[0].Latency > 110 {
		t.Fatalf("underload latency = %v, want near idle 97", res[0].Latency)
	}
	if u := util[p.Resources[0]]; math.Abs(u-10.0/67) > 1e-9 {
		t.Fatalf("utilization = %v, want %v", u, 10.0/67)
	}
}

func TestSolveOpenSaturation(t *testing.T) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	res, _ := SolveOpen([]OpenFlow{{Placement: SinglePath(p), Mix: ReadOnly, Offered: 100}})
	if res[0].Achieved > 67.1 {
		t.Fatalf("achieved %v exceeds peak 67", res[0].Achieved)
	}
	if res[0].Achieved < 60 {
		t.Fatalf("achieved %v too far below peak (no recession configured)", res[0].Achieved)
	}
	if res[0].Latency < 97*4 {
		t.Fatalf("saturated latency %v should spike well above idle", res[0].Latency)
	}
}

func TestSolveOpenOverloadRecession(t *testing.T) {
	// Remote write-heavy traffic loses bandwidth past saturation
	// (Fig. 3(b) 0:1 fold-back).
	remote := NewPath("MMEM-r", NewUPILink("upi"), NewDDRDomain("ddr"))
	peak := remote.PeakBandwidth(WriteOnly)
	atPeak, _ := SolveOpen([]OpenFlow{{Placement: SinglePath(remote), Mix: WriteOnly, Offered: peak}})
	over, _ := SolveOpen([]OpenFlow{{Placement: SinglePath(remote), Mix: WriteOnly, Offered: peak * 1.4}})
	if over[0].Achieved >= atPeak[0].Achieved {
		t.Fatalf("overload achieved %v should recede below peak-load %v", over[0].Achieved, atPeak[0].Achieved)
	}
	if over[0].Latency <= atPeak[0].Latency {
		t.Fatal("overload latency should exceed peak-load latency")
	}
}

func TestSolveOpenSharedContention(t *testing.T) {
	ddr := NewDDRDomain("ddr")
	p := NewPath("MMEM", ddr)
	solo, _ := SolveOpen([]OpenFlow{{Placement: SinglePath(p), Mix: ReadOnly, Offered: 30}})
	pair, _ := SolveOpen([]OpenFlow{
		{Placement: SinglePath(p), Mix: ReadOnly, Offered: 30},
		{Placement: SinglePath(p), Mix: ReadOnly, Offered: 30},
	})
	if pair[0].Latency <= solo[0].Latency {
		t.Fatal("sharing a device must raise latency")
	}
}

func TestSolveOpenInterleaveSpreadsLoad(t *testing.T) {
	// §3.4 insight: offloading a slice of traffic to CXL relieves DDR
	// contention. At high offered load, a 3:1 MMEM:CXL interleave must
	// deliver more bandwidth than MMEM alone.
	ddr := NewDDRDomain("ddr")
	cxl := NewCXLDevice("cxl")
	mmem := NewPath("MMEM", ddr)
	cpath := NewPath("CXL", cxl)

	only, _ := SolveOpen([]OpenFlow{{Placement: SinglePath(mmem), Mix: ReadOnly, Offered: 90}})
	il, _ := SolveOpen([]OpenFlow{{Placement: Interleave(mmem, cpath, 3, 1), Mix: ReadOnly, Offered: 90}})
	if il[0].Achieved <= only[0].Achieved {
		t.Fatalf("interleave achieved %v should beat MMEM-only %v at overload", il[0].Achieved, only[0].Achieved)
	}
}

func TestSolveClosedConverges(t *testing.T) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	res, _ := SolveClosed([]ClosedFlow{{
		Placement: SinglePath(p), Mix: ReadOnly,
		Threads: 4, MLP: 8, AccessBytes: 64,
	}})
	// 4 threads × 8 MLP × 64 B at ~100 ns ⇒ ≈20 GB/s, well under peak.
	want := 4 * 8 * 64 / res[0].Latency
	if math.Abs(res[0].Achieved-want)/want > 0.01 {
		t.Fatalf("closed-loop identity violated: achieved %v, want %v", res[0].Achieved, want)
	}
	if res[0].Latency < 97 {
		t.Fatalf("latency %v below idle", res[0].Latency)
	}
}

func TestSolveClosedSaturates(t *testing.T) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	many, _ := SolveClosed([]ClosedFlow{{
		Placement: SinglePath(p), Mix: ReadOnly,
		Threads: 64, MLP: 10, AccessBytes: 64,
	}})
	if many[0].Achieved > 67.1 {
		t.Fatalf("closed-loop achieved %v exceeds device peak", many[0].Achieved)
	}
	if many[0].Achieved < 58 {
		t.Fatalf("closed-loop achieved %v should approach peak 67", many[0].Achieved)
	}
}

func TestSolveClosedScalingThenPlateau(t *testing.T) {
	// Throughput should scale ~linearly at low thread counts then
	// plateau at device peak — the LLM Fig. 10(a) mechanism.
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	bw := func(threads int) float64 {
		res, _ := SolveClosed([]ClosedFlow{{
			Placement: SinglePath(p), Mix: ReadOnly,
			Threads: threads, MLP: 8, AccessBytes: 64, ThinkNs: 30,
		}})
		return res[0].Achieved
	}
	b1, b2, b64, b96 := bw(1), bw(2), bw(64), bw(96)
	if r := b2 / b1; r < 1.9 {
		t.Errorf("low-load scaling 1→2 threads = %.2f×, want ≈2×", r)
	}
	if r := b96 / b64; r > 1.1 {
		t.Errorf("saturated scaling 64→96 threads = %.2f×, want ≈1×", r)
	}
}

func TestSolveClosedThinkTimeLimitsThroughput(t *testing.T) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	fast, _ := SolveClosed([]ClosedFlow{{Placement: SinglePath(p), Mix: ReadOnly, Threads: 2, MLP: 4, AccessBytes: 64}})
	slow, _ := SolveClosed([]ClosedFlow{{Placement: SinglePath(p), Mix: ReadOnly, Threads: 2, MLP: 4, AccessBytes: 64, ThinkNs: 500}})
	if slow[0].Achieved >= fast[0].Achieved {
		t.Fatal("think time should reduce achieved bandwidth")
	}
}

func TestOpsPerSec(t *testing.T) {
	fr := FlowResult{Achieved: 6.4} // 6.4 GB/s
	if ops := fr.OpsPerSec(64); math.Abs(ops-1e8) > 1 {
		t.Fatalf("OpsPerSec = %v, want 1e8", ops)
	}
	if fr.OpsPerSec(0) != 0 {
		t.Fatal("OpsPerSec with zero bytes should be 0")
	}
}

// Property: for any single open flow, achieved ≤ offered and achieved ≤
// peak(mix)·(1+ε), and latency ≥ idle.
func TestPropertyOpenFlowBounds(t *testing.T) {
	ddr := NewDDRDomain("ddr")
	cxl := NewCXLDevice("cxl")
	mmem := NewPath("MMEM", ddr)
	cpath := NewPath("CXL", cxl)
	f := func(rFrac, offered float64, interleaveTop uint8) bool {
		r := math.Abs(math.Mod(rFrac, 1))
		off := math.Abs(math.Mod(offered, 150))
		if off == 0 {
			off = 1
		}
		n := int(interleaveTop%4) + 1
		pl := Interleave(mmem, cpath, n, 1)
		mix := Mix{ReadFrac: r}
		res, _ := SolveOpen([]OpenFlow{{Placement: pl, Mix: mix, Offered: off}})
		if res[0].Achieved > off+1e-9 {
			return false
		}
		if res[0].Latency < pl.IdleLatency(mix)-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: closed-loop achieved bandwidth is monotone non-decreasing in
// thread count (more demand never yields less delivered work for a
// non-receding local device).
func TestPropertyClosedMonotoneThreads(t *testing.T) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	prev := 0.0
	for threads := 1; threads <= 128; threads *= 2 {
		res, _ := SolveClosed([]ClosedFlow{{
			Placement: SinglePath(p), Mix: ReadOnly,
			Threads: threads, MLP: 8, AccessBytes: 64,
		}})
		if res[0].Achieved+1e-6 < prev {
			t.Fatalf("achieved dropped from %v to %v at %d threads", prev, res[0].Achieved, threads)
		}
		prev = res[0].Achieved
	}
}

func BenchmarkSolveOpen(b *testing.B) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	flows := []OpenFlow{{Placement: SinglePath(p), Mix: ReadOnly, Offered: 30}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SolveOpen(flows)
	}
}

func BenchmarkSolveClosed(b *testing.B) {
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	flows := []ClosedFlow{{Placement: SinglePath(p), Mix: ReadOnly, Threads: 16, MLP: 8, AccessBytes: 64}}
	for i := 0; i < b.N; i++ {
		SolveClosed(flows)
	}
}
