package memsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file addresses the paper's third motivation head-on: the scarcity
// of open empirical CXL data "hinders efforts to ... develop performance
// models based on empirical evidence" (§1). Fit reverses the device
// model: given measured (bandwidth, latency) samples — from the paper's
// artifact release, from cxlmlc CSV output, or from a real machine — it
// recovers the Resource parameters (idle latency, peak bandwidth, knee,
// queue scale) so new hardware can be dropped into every cxlsim
// experiment.

// Sample is one measured loaded-latency point at a single mix.
type Sample struct {
	BandwidthGBps float64
	LatencyNs     float64
}

// FitResult are the recovered single-mix device parameters.
type FitResult struct {
	IdleNs     float64
	PeakGBps   float64
	Knee       float64
	QueueScale float64
	// RMSE is the fit's root-mean-square latency error over the samples.
	RMSE float64
}

// ErrTooFewSamples is returned when the input cannot constrain the model.
var ErrTooFewSamples = errors.New("memsim: need at least 6 samples to fit")

// Fit recovers device parameters from loaded-latency samples of one mix.
//
// Procedure: idle = min latency; peak = max bandwidth; then a grid search
// over knee ∈ [0.5, 0.95] with, for each knee, the closed-form
// least-squares queue scale for the post-knee residuals against the
// latencyAt model shape.
func Fit(samples []Sample) (FitResult, error) {
	if len(samples) < 6 {
		return FitResult{}, ErrTooFewSamples
	}
	pts := append([]Sample(nil), samples...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].BandwidthGBps < pts[j].BandwidthGBps })

	idle := math.Inf(1)
	peak := 0.0
	for _, s := range pts {
		if s.LatencyNs <= 0 || s.BandwidthGBps < 0 {
			return FitResult{}, fmt.Errorf("memsim: invalid sample %+v", s)
		}
		if s.LatencyNs < idle {
			idle = s.LatencyNs
		}
		if s.BandwidthGBps > peak {
			peak = s.BandwidthGBps
		}
	}
	if peak == 0 {
		return FitResult{}, errors.New("memsim: all samples at zero bandwidth")
	}

	model := func(knee, qs, u float64) float64 {
		r := &Resource{IdleRead: idle, IdleWrite: idle, Peak: Flat(1),
			Knee: Flat(knee), QueueScale: qs}
		return r.latencyAt(u, ReadOnly)
	}

	// The true peak is only observable if the sweep saturated; grid it
	// from the max observed bandwidth up to 15% beyond.
	best := FitResult{IdleNs: idle, PeakGBps: peak, Knee: 0.8, QueueScale: 0, RMSE: math.Inf(1)}
	bestRel := math.Inf(1)
	maxBW := peak
	for peakScale := 1.0; peakScale <= 1.151; peakScale += 0.01 {
		peak := maxBW * peakScale
		fitOne(pts, peak, idle, model, &best, &bestRel)
	}
	return best, nil
}

// fitOne grid-searches the knee for one candidate peak, updating best.
func fitOne(pts []Sample, peak, idle float64,
	model func(knee, qs, u float64) float64, best *FitResult, bestRel *float64) {
	for knee := 0.5; knee <= 0.951; knee += 0.01 {
		// Weighted closed-form least squares for the queue scale:
		// latencyAt = base(u) + qs·idle·g(u) ⇒ qs = Σw·resid·basis /
		// Σw·basis². Weights 1/obs² make the objective *relative* error,
		// which is what pins the knee position — absolute least squares
		// lets the huge saturated-tail values swamp the knee region and
		// leaves gentle curves unidentifiable.
		var num, den float64
		for _, s := range pts {
			u := s.BandwidthGBps / peak
			w := 1 / (s.LatencyNs * s.LatencyNs)
			basis := model(knee, 1, u) - model(knee, 0, u)
			resid := s.LatencyNs - model(knee, 0, u)
			num += w * resid * basis
			den += w * basis * basis
		}
		qs := 0.0
		if den > 0 {
			qs = num / den
		}
		if qs < 0 {
			qs = 0
		}
		var sse, relSSE float64
		for _, s := range pts {
			u := s.BandwidthGBps / peak
			d := s.LatencyNs - model(knee, qs, u)
			sse += d * d
			rd := d / s.LatencyNs
			relSSE += rd * rd
		}
		if relSSE < *bestRel {
			*bestRel = relSSE
			best.Knee, best.QueueScale, best.PeakGBps = knee, qs, peak
			best.RMSE = math.Sqrt(sse / float64(len(pts)))
		}
	}
}

// ToResource materializes a fitted single-mix model as a Resource usable
// in any cxlsim path. Mix dependence is flat (the fit saw one mix); fit
// each mix separately and combine anchors for full-mix resources.
func (f FitResult) ToResource(name string) *Resource {
	return &Resource{
		Name:       name,
		IdleRead:   f.IdleNs,
		IdleWrite:  f.IdleNs,
		Peak:       Flat(f.PeakGBps),
		Knee:       Flat(f.Knee),
		QueueScale: f.QueueScale,
	}
}
