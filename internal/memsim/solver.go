package memsim

import (
	"math"
	"sync/atomic"
)

// Both solvers are pure functions of their flow sets: demand accumulation
// happens in solve-local state, never on the shared *Resource values, so
// SolveOpen and SolveClosed are safe for concurrent callers — including
// concurrent solves over the same paths and resources. The only remaining
// mutation points are configuration-time operations (Resource.Degrade),
// which must not overlap with active solves.

// overloadLatencyFactor stretches path latency when offered load exceeds
// capacity (MLC keeps injecting; queues stay pinned full).
const overloadLatencyFactor = 0.6

// OpenFlow is an offered-load traffic stream: "push bw GB/s of mix m at
// this placement and see what happens". MLC-style sweeps use this.
type OpenFlow struct {
	Placement Placement
	Mix       Mix
	Offered   float64 // GB/s
}

// ClosedFlow is a closed-loop traffic stream: a set of threads that each
// keep MLP memory accesses in flight and spend ThinkNs of CPU time per
// access that does not overlap with memory. Applications are closed
// flows; their throughput emerges from the latency fixed point.
type ClosedFlow struct {
	Placement   Placement
	Mix         Mix
	Threads     int
	MLP         float64 // outstanding accesses per thread
	AccessBytes float64 // bytes moved per access (64 for cacheline traffic)
	ThinkNs     float64 // non-overlapped CPU ns per access

	// FixedGBps, when positive, makes this a constant-demand flow (e.g.
	// a page-migration engine pinned at its rate limit): it offers this
	// bandwidth regardless of latency but still participates in the
	// fixed point, so closed flows sharing its devices re-throttle
	// around it. Threads/MLP/AccessBytes are ignored.
	FixedGBps float64
}

// FlowResult reports one flow's steady state.
type FlowResult struct {
	Achieved float64 // delivered bandwidth, GB/s
	Offered  float64 // offered bandwidth, GB/s
	Latency  float64 // loaded per-access latency, ns (placement-weighted)
}

// OpsPerSec converts a FlowResult to an operation rate given bytes/op.
func (fr FlowResult) OpsPerSec(bytesPerOp float64) float64 {
	if bytesPerOp <= 0 {
		return 0
	}
	return fr.Achieved / bytesPerOp * 1e9
}

// Utilization is a per-resource capacity-fraction snapshot after a solve;
// the pcm package exposes these as counters.
type Utilization map[*Resource]float64

// SolveObserver receives a callback after every solver pass with the
// pass kind ("open" or "closed"), the flow count, and the final
// utilization snapshot. The obs package installs the standard
// implementation (counter + gauge families); see obs.InstrumentMemsim.
// Observers must be safe for concurrent invocation: parallel solvers
// call them from multiple goroutines.
type SolveObserver func(kind string, flows int, util Utilization)

// solveObserver is process-global because the solvers are package-level
// functions. It is an atomic pointer so it can be installed, swapped, or
// removed at any time — including while solves are in flight on other
// goroutines — without a data race.
var solveObserver atomic.Pointer[SolveObserver]

// SetSolveObserver installs (or, with nil, removes) the solve observer.
// Safe to call concurrently with active solves.
func SetSolveObserver(o SolveObserver) {
	if o == nil {
		solveObserver.Store(nil)
		return
	}
	solveObserver.Store(&o)
}

func observeSolve(kind string, flows int, util Utilization) {
	if p := solveObserver.Load(); p != nil {
		(*p)(kind, flows, util)
	}
}

// solveState is the per-solve scratch that used to live on *Resource: the
// resources touched by the flow set in first-encountered order, and their
// accumulated demand (as capacity fractions). Keeping it solve-local is
// what makes the solvers re-entrant.
type solveState struct {
	resources []*Resource
	demand    []float64
}

// indexOf locates r in the touched-resource list by linear scan: flow
// sets touch a handful of resources (a path is 1–3 stages), so a scan
// beats a map both in lookup cost and in per-solve allocation.
func (st *solveState) indexOf(r *Resource) int {
	for i, have := range st.resources {
		if have == r {
			return i
		}
	}
	return -1
}

func newSolveState(flows []OpenFlow) *solveState {
	st := &solveState{}
	st.init(flows)
	return st
}

// init collects the flow set's touched resources. resources/demand may be
// pre-seeded with (stack) backing arrays; init appends within capacity,
// so small solves can run without heap-allocating the state.
func (st *solveState) init(flows []OpenFlow) {
	for _, f := range flows {
		for _, wp := range f.Placement {
			for _, r := range wp.Path.Resources {
				if st.indexOf(r) < 0 {
					st.resources = append(st.resources, r)
					st.demand = append(st.demand, 0)
				}
			}
		}
	}
}

func (st *solveState) reset() {
	for i := range st.demand {
		st.demand[i] = 0
	}
}

// accumulate registers the flow set's offered load against each touched
// resource.
func (st *solveState) accumulate(flows []OpenFlow) {
	for _, f := range flows {
		for _, wp := range f.Placement.normalized() {
			for _, r := range wp.Path.Resources {
				st.demand[st.indexOf(r)] += r.demandFraction(f.Offered*wp.Weight, f.Mix)
			}
		}
	}
}

// utilization snapshots accumulated demand as the exported map form.
func (st *solveState) utilization() Utilization {
	util := make(Utilization, len(st.resources))
	for i, r := range st.resources {
		util[r] = st.demand[i]
	}
	return util
}

// demandOf reads a resource's accumulated demand without materializing
// the map snapshot; fixed-point inner passes evaluate flows through this.
func (st *solveState) demandOf(r *Resource) float64 {
	if i := st.indexOf(r); i >= 0 {
		return st.demand[i]
	}
	return 0
}

// SolveOpen resolves a set of offered-load flows sharing resources.
// Returned results are index-aligned with flows. Safe for concurrent use.
//
// Open solves are deliberately not memoized: a single pass is cheaper
// than encoding a cache key, and the sweeps that drive SolveOpen rarely
// repeat an offered load anyway. SolveClosed — hundreds of open passes
// per call — is where the cache earns its keep.
func SolveOpen(flows []OpenFlow) ([]FlowResult, Utilization) {
	results, util := solveOpen(flows)
	observeSolve("open", len(flows), util)
	return results, util
}

// SolveOpenResults is SolveOpen for callers that don't need the
// utilization snapshot: the exported map is only materialized when a
// solve observer is installed, so uninstrumented sweeps (e.g. the Fig 10
// serving-rate grid) pay no per-solve map allocation.
func SolveOpenResults(flows []OpenFlow) []FlowResult {
	// Small solves (a path is 1–3 stages; sweeps use 1–2 flows) fit in
	// stack buffers: only the returned results reach the heap.
	var (
		st     solveState
		resBuf [8]*Resource
		demBuf [8]float64
	)
	st.resources = resBuf[:0]
	st.demand = demBuf[:0]
	st.init(flows)
	results := make([]FlowResult, len(flows))
	solveOpenPass(&st, flows, results)
	if solveObserver.Load() != nil {
		observeSolve("open", len(flows), st.utilization())
	}
	return results
}

// solveOpen is SolveOpen without the observer callback or cache;
// SolveClosed's inner fixed-point iterations use solveOpenInto so a
// closed solve reports as one observation, not hundreds.
func solveOpen(flows []OpenFlow) ([]FlowResult, Utilization) {
	st := newSolveState(flows)
	results := make([]FlowResult, len(flows))
	util := solveOpenInto(st, flows, results)
	return results, util
}

// solveOpenInto runs one open-solve pass reusing the given state and
// results slice (both sized for flows), returning the exported map
// snapshot. Fixed-point iterations that don't need the map call
// solveOpenPass instead — the snapshot is the passes' only allocation.
func solveOpenInto(st *solveState, flows []OpenFlow, results []FlowResult) Utilization {
	solveOpenPass(st, flows, results)
	return st.utilization()
}

// solveOpenPass is one allocation-free open-solve pass over st.
func solveOpenPass(st *solveState, flows []OpenFlow, results []FlowResult) {
	st.reset()
	st.accumulate(flows)
	for i, f := range flows {
		results[i] = evalFlow(st, f.Placement, f.Mix, f.Offered)
	}
}

// evalFlow computes achieved bandwidth and placement-weighted latency for
// one flow against the solve's accumulated demand.
func evalFlow(st *solveState, pl Placement, m Mix, offered float64) FlowResult {
	var achieved, latSum, latWeight float64
	for _, wp := range pl.normalized() {
		sub := offered * wp.Weight
		lat := 0.0
		frac := 1.0
		for _, r := range wp.Path.Resources {
			u := st.demandOf(r)
			stage := r.latencyAt(u, m)
			if u > 1 {
				stage *= 1 + overloadLatencyFactor*(u-1)
				f := (1 / u) / (1 + r.OverloadRecession*(u-1))
				if f < frac {
					frac = f
				}
			}
			lat += stage
		}
		achieved += sub * frac
		latSum += wp.Weight * lat
		latWeight += wp.Weight
	}
	return FlowResult{Achieved: achieved, Offered: offered, Latency: latSum / latWeight}
}

// SolveClosed finds the throughput/latency fixed point for closed-loop
// flows sharing resources. Damped iteration; converges for every
// configuration the experiments use (guarded by iteration cap). Safe for
// concurrent use.
func SolveClosed(flows []ClosedFlow) ([]FlowResult, Utilization) {
	key := solveCacheKeyClosed(flows)
	if results, util, ok := solveCacheGet(key); ok {
		observeSolve("closed", len(flows), util)
		return results, util
	}
	results, util := solveClosed(flows)
	solveCachePut(key, results, util)
	observeSolve("closed", len(flows), util)
	return results, util
}

func solveClosed(flows []ClosedFlow) ([]FlowResult, Utilization) {
	n := len(flows)
	lat := make([]float64, n)
	for i, f := range flows {
		lat[i] = f.Placement.IdleLatency(f.Mix) + f.ThinkNs
		if lat[i] <= 0 {
			lat[i] = 1
		}
	}
	open := make([]OpenFlow, n)
	for i, f := range flows {
		open[i] = OpenFlow{Placement: f.Placement, Mix: f.Mix}
	}
	st := newSolveState(open)
	results := make([]FlowResult, n)
	const (
		iters = 500
		tol   = 1e-9
	)
	// Adaptive damping: the latency response g(L) is near-vertical at the
	// saturation cliff, so constant damping can 2-cycle. We track the
	// sign of each flow's update and halve the step whenever it flips,
	// which converges like bisection onto the unique fixed point (demand
	// is decreasing in latency; loaded latency is increasing in demand).
	step := make([]float64, n)
	lastDelta := make([]float64, n)
	for i := range step {
		step[i] = 0.5
	}
	for it := 0; it < iters; it++ {
		for i, f := range flows {
			demand := f.FixedGBps
			if demand <= 0 {
				demand = float64(f.Threads) * f.MLP * f.AccessBytes / lat[i]
			}
			open[i].Offered = demand
		}
		solveOpenPass(st, open, results)
		maxRel := 0.0
		for i, f := range flows {
			newLat := results[i].Latency + f.ThinkNs
			delta := newLat - lat[i]
			if delta*lastDelta[i] < 0 {
				step[i] *= 0.5
			}
			lastDelta[i] = delta
			rel := math.Abs(delta) / lat[i]
			if rel > maxRel {
				maxRel = rel
			}
			lat[i] += step[i] * delta
		}
		if maxRel < tol {
			break
		}
	}
	// Re-evaluate at the converged latencies so Achieved/Latency are a
	// consistent pair.
	for i, f := range flows {
		demand := f.FixedGBps
		if demand <= 0 {
			demand = float64(f.Threads) * f.MLP * f.AccessBytes / lat[i]
		}
		open[i].Offered = demand
	}
	util := solveOpenInto(st, open, results)
	// At the fixed point a closed flow's achieved bandwidth equals its
	// offered load (injection self-limits through latency), and
	// results[i].Latency is the memory-only loaded latency; callers add
	// their own ThinkNs when computing op costs.
	return results, util
}
