package memsim

import (
	"fmt"
	"sort"
)

// Curve is a piecewise-linear function of read fraction, used to encode
// per-mix device characteristics (peak bandwidth, knee utilization) from
// the paper's measured anchor points.
type Curve struct {
	pts []CurvePoint
}

// CurvePoint is one calibration anchor: at read fraction R the device
// characteristic has value V.
type CurvePoint struct {
	R float64 // read fraction in [0,1]
	V float64
}

// NewCurve builds a curve from anchors; they are sorted by R. At least one
// anchor is required, and R values must be within [0,1] and distinct.
func NewCurve(pts ...CurvePoint) Curve {
	if len(pts) == 0 {
		panic("memsim: curve needs at least one anchor")
	}
	sorted := append([]CurvePoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].R < sorted[j].R })
	for i, p := range sorted {
		if p.R < 0 || p.R > 1 {
			panic(fmt.Sprintf("memsim: curve anchor R=%v outside [0,1]", p.R))
		}
		if i > 0 && sorted[i-1].R == p.R {
			panic(fmt.Sprintf("memsim: duplicate curve anchor at R=%v", p.R))
		}
	}
	return Curve{pts: sorted}
}

// Flat builds a constant curve.
func Flat(v float64) Curve { return NewCurve(CurvePoint{R: 0, V: v}) }

// At evaluates the curve at read fraction r, clamping outside the anchor
// range (no extrapolation: device behaviour beyond measured mixes is
// unknown, so we hold the nearest measured value).
func (c Curve) At(r float64) float64 {
	pts := c.pts
	if len(pts) == 0 {
		panic("memsim: evaluating zero curve")
	}
	if r <= pts[0].R {
		return pts[0].V
	}
	if r >= pts[len(pts)-1].R {
		return pts[len(pts)-1].V
	}
	// Binary search for the bracketing segment.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].R >= r })
	lo, hi := pts[i-1], pts[i]
	t := (r - lo.R) / (hi.R - lo.R)
	return lo.V + t*(hi.V-lo.V)
}

// Max returns the maximum anchor value (useful for capacity planning).
func (c Curve) Max() float64 {
	m := c.pts[0].V
	for _, p := range c.pts[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}
