package memsim

import (
	"fmt"
	"math"
)

// maxUtil is the effective ceiling for utilization inside the latency
// model. Queueing delay diverges as u → 1; clamping here bounds reported
// loaded latency at a finite "fully saturated" value, as real memory
// controllers bound queue depth.
const maxUtil = 0.98

// Resource is one shared stage of a memory path: a DDR channel group, a
// CXL device (ASIC controller + its DDR channels + the PCIe link), a UPI
// hop, or the Remote-Snoop-Filter stage of cross-socket CXL access.
//
// Calibration is per read-fraction via Curves; contention behaviour is the
// two-regime loaded-latency model in latencyAt.
type Resource struct {
	Name string

	// IdleRead/IdleWrite are unloaded per-access latencies in ns this
	// stage contributes. Non-temporal writes post asynchronously, so
	// their idle "latency" (as MLC observes it) can be lower than reads'.
	IdleRead  float64
	IdleWrite float64

	// Peak is deliverable bandwidth (GB/s) by read fraction.
	Peak Curve

	// Knee is the utilization fraction where queueing delay takes off,
	// by read fraction. The paper measures 0.75–0.83 for local DDR and
	// notes the knee shifts left as write share rises (§3.3).
	Knee Curve

	// QueueScale scales the post-knee latency blow-up relative to the
	// stage's idle read latency. Larger = steeper hockey stick.
	QueueScale float64

	// OverloadRecession models the pathological regime the paper shows
	// for write-heavy remote traffic (Fig. 3(b) 0:1): when offered load
	// exceeds peak, achieved bandwidth *drops* below peak by this
	// fraction per unit of excess offered/peak. Zero means bandwidth
	// holds at peak under overload.
	OverloadRecession float64
}

// validate panics on nonsensical configuration.
func (r *Resource) validate() {
	if r.Name == "" {
		panic("memsim: resource without a name")
	}
	if r.IdleRead < 0 || r.IdleWrite < 0 {
		panic(fmt.Sprintf("memsim: %s: negative idle latency", r.Name))
	}
	if r.Peak.Max() <= 0 {
		panic(fmt.Sprintf("memsim: %s: non-positive peak bandwidth", r.Name))
	}
}

// idle returns the mix-weighted unloaded latency contribution.
func (r *Resource) idle(m Mix) float64 {
	l := m.ReadFrac*r.IdleRead + (1-m.ReadFrac)*r.IdleWrite
	if m.Pattern == Random {
		l *= randomIdlePenalty
	}
	return l
}

// demandFraction converts offered bandwidth bw (GB/s) of mix m into a
// fraction of this resource's mix-specific peak, so that flows with
// different mixes compose when the solver sums their demands. The sum is
// accumulated in solve-local state (see solveOpen), never on the
// resource itself, which keeps Resource immutable during solves.
func (r *Resource) demandFraction(bw float64, m Mix) float64 {
	return bw / r.Peak.At(m.ReadFrac)
}

// latencyAt returns this stage's per-access latency (ns) for mix m at
// utilization u (a capacity fraction; may exceed 1 under overload).
//
// Two regimes:
//
//   - u ≤ knee: latency is near-flat — a gentle rise to ~8% above idle at
//     the knee, matching the paper's observation that loaded latency is
//     "relatively stable at low to moderate bandwidth utilization".
//   - u > knee: queueing delay grows super-linearly and diverges toward
//     the clamped ceiling, producing the exponential hockey stick the
//     paper's log-scale plots show.
func (r *Resource) latencyAt(u float64, m Mix) float64 {
	idle := r.idle(m)
	knee := r.Knee.At(m.ReadFrac)
	if u < 0 {
		u = 0
	}
	if u > maxUtil {
		u = maxUtil
	}
	base := idle * (1 + 0.08*math.Min(u/knee, 1))
	if u <= knee {
		return base
	}
	x := (u - knee) / (1 - knee) // 0..~1 over the contention region
	// Reference scale for the blow-up is the stage's read idle latency:
	// queue depth is bounded by controller buffering, which is sized in
	// units of access service time.
	ref := r.IdleRead
	if ref == 0 {
		ref = idle
	}
	return base + r.QueueScale*ref*x*x/(1.05-x)
}

// Degrade injects a device fault or throttling condition: peak bandwidth
// scales by bwFactor (0,1] and idle latencies by latFactor (≥1) — e.g. a
// PCIe link retraining to fewer lanes, a thermally throttled expander, or
// a misbehaving DIMM behind the controller. Applied cumulatively.
//
// Degrade is a configuration-time mutation: solvers never modify
// resources, but they do read these fields, so do not Degrade a resource
// concurrently with solves over paths that include it.
func (r *Resource) Degrade(bwFactor, latFactor float64) {
	if bwFactor <= 0 || bwFactor > 1 || latFactor < 1 {
		panic(fmt.Sprintf("memsim: invalid degradation bw=%v lat=%v", bwFactor, latFactor))
	}
	scaled := make([]CurvePoint, len(r.Peak.pts))
	for i, p := range r.Peak.pts {
		scaled[i] = CurvePoint{R: p.R, V: p.V * bwFactor}
	}
	r.Peak = NewCurve(scaled...)
	r.IdleRead *= latFactor
	r.IdleWrite *= latFactor
}

// State is the subset of a Resource's calibration that Degrade mutates,
// captured by Snapshot so fault injectors can compose and later undo
// perturbations against a pristine baseline.
type State struct {
	IdleRead  float64
	IdleWrite float64
	Peak      Curve
}

// Snapshot captures the Degrade-mutable calibration. Curve is safe to
// hold by value: Degrade always installs a freshly built Peak and never
// mutates points in place.
func (r *Resource) Snapshot() State {
	return State{IdleRead: r.IdleRead, IdleWrite: r.IdleWrite, Peak: r.Peak}
}

// Restore reinstates a previously captured Snapshot. Like Degrade it is
// a configuration-time mutation: do not call it concurrently with solves
// over paths that include this resource.
func (r *Resource) Restore(s State) {
	r.IdleRead = s.IdleRead
	r.IdleWrite = s.IdleWrite
	r.Peak = s.Peak
}

// LatencyForUtil exposes the loaded-latency model to application
// simulators that track utilization snapshots across epochs: it returns
// this stage's per-access latency (ns) for mix m at utilization u.
func (r *Resource) LatencyForUtil(u float64, m Mix) float64 {
	return r.latencyAt(u, m)
}

// achieved maps offered load (GB/s, mix m) to delivered bandwidth, given
// the resource's total utilization u across all flows. Below peak,
// delivery equals offer; above, the resource saturates and (optionally)
// recedes.
func (r *Resource) achieved(offered float64, u float64, m Mix) float64 {
	if u <= 1 {
		return offered
	}
	// The flow's fair share of the saturated capacity.
	share := offered / u
	if r.OverloadRecession > 0 {
		excess := u - 1
		share /= 1 + r.OverloadRecession*excess
	}
	return share
}
