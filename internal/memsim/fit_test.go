package memsim

import (
	"math"
	"testing"
)

// syntheticSamples sweeps a known resource and returns its curve.
func syntheticSamples(r *Resource, n int) []Sample {
	peak := r.Peak.At(1)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		u := 0.02 + 0.95*float64(i)/float64(n-1)
		out = append(out, Sample{
			BandwidthGBps: u * peak,
			LatencyNs:     r.latencyAt(u, ReadOnly),
		})
	}
	return out
}

func TestFitRecoversKnownDevice(t *testing.T) {
	truth := &Resource{
		Name: "truth", IdleRead: 250, IdleWrite: 250,
		Peak: Flat(56.7), Knee: Flat(0.88), QueueScale: 2,
	}
	fit, err := Fit(syntheticSamples(truth, 40))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.PeakGBps-56.7) > 0.6 {
		t.Errorf("peak = %v, want 56.7", fit.PeakGBps)
	}
	if math.Abs(fit.IdleNs-truth.latencyAt(0.02, ReadOnly)) > 5 {
		t.Errorf("idle = %v, want ≈%v", fit.IdleNs, truth.latencyAt(0.02, ReadOnly))
	}
	if math.Abs(fit.Knee-0.88) > 0.04 {
		t.Errorf("knee = %v, want 0.88", fit.Knee)
	}
	if math.Abs(fit.QueueScale-2) > 0.4 {
		t.Errorf("queue scale = %v, want 2", fit.QueueScale)
	}
	if fit.RMSE > 10 {
		t.Errorf("RMSE = %v, want small for noiseless data", fit.RMSE)
	}
}

func TestFitRecoversPaperDDR(t *testing.T) {
	// Round-trip the calibrated DDR model through its own curve.
	truth := NewDDRDomain("ddr")
	fit, err := Fit(syntheticSamples(truth, 40))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.PeakGBps-67) > 0.7 {
		t.Errorf("peak = %v, want 67", fit.PeakGBps)
	}
	if math.Abs(fit.Knee-0.83) > 0.05 {
		t.Errorf("knee = %v, want ≈0.83", fit.Knee)
	}
}

func TestFittedResourceReproducesCurve(t *testing.T) {
	truth := NewCXLDevice("cxl")
	fit, err := Fit(syntheticSamples(truth, 120))
	if err != nil {
		t.Fatal(err)
	}
	re := fit.ToResource("refit")
	for _, u := range []float64{0.1, 0.5, 0.85, 0.95} {
		want := truth.latencyAt(u, ReadOnly)
		got := re.latencyAt(u, ReadOnly)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("u=%v: refit latency %v vs truth %v (>10%%)", u, got, want)
		}
	}
}

func TestFitFromMLCSweep(t *testing.T) {
	// End-to-end: fit from an actual mlc-style sweep of a path (the
	// workflow a user follows with real cxlmlc CSV data).
	truth := NewDDRDomain("ddr")
	path := NewPath("p", truth)
	var samples []Sample
	for i := 0; i < 30; i++ {
		offered := 0.02*67 + float64(i)/29*0.96*67
		res, _ := SolveOpen([]OpenFlow{{Placement: SinglePath(path), Mix: ReadOnly, Offered: offered}})
		samples = append(samples, Sample{BandwidthGBps: res[0].Achieved, LatencyNs: res[0].Latency})
	}
	fit, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.IdleNs-97)/97 > 0.1 {
		t.Errorf("fitted idle = %v, want ≈97", fit.IdleNs)
	}
	if math.Abs(fit.PeakGBps-67)/67 > 0.05 {
		t.Errorf("fitted peak = %v, want ≈67", fit.PeakGBps)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("nil samples should error")
	}
	if _, err := Fit(make([]Sample, 3)); err == nil {
		t.Error("too few samples should error")
	}
	bad := []Sample{{1, -5}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 1}}
	if _, err := Fit(bad); err == nil {
		t.Error("negative latency should error")
	}
	zeros := make([]Sample, 6)
	for i := range zeros {
		zeros[i].LatencyNs = 1
	}
	if _, err := Fit(zeros); err == nil {
		t.Error("all-zero bandwidth should error")
	}
}
