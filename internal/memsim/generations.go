package memsim

// This file models future interconnect generations for the §7 discussion:
// CXL 2.0 (PCIe 5.0 + switching) and CXL 3.x (PCIe 6.0, doubled link
// rate). Device-side DRAM and controller behaviour carry over from the
// calibrated A1000 model; only link capacity and topology latency change.
// These are projections, clearly labeled as such — used by ablations and
// the generation-comparison experiment, never by the paper-reproduction
// figures.

// NewCXL2Device models a CXL 2.0 expander behind one switch hop: same
// PCIe 5.0 ×16 link budget as the A1000 but with switch traversal
// latency (~35 ns each way per the CXL 2.0 switch-latency discussions).
func NewCXL2Device(name string) *Resource {
	r := NewCXLDevice(name)
	r.IdleRead += 70
	r.IdleWrite += 70
	return r
}

// NewCXL3Device models a CXL 3.x expander on PCIe 6.0: doubled link rate
// (64 GT/s) lifts the PCIe ceiling so the device's four DDR5 channels
// become the bottleneck; PAM4/FLIT overheads keep efficiency below 2×.
// Fabric latency replaces the single switch hop.
func NewCXL3Device(name string) *Resource {
	r := NewCXLDevice(name)
	r.IdleRead += 90
	r.IdleWrite += 90
	r.Peak = NewCurve(
		CurvePoint{R: 1, V: 52 * 1.8},
		CurvePoint{R: 2.0 / 3, V: 56.7 * 1.8},
		CurvePoint{R: 0.5, V: 55 * 1.8},
		CurvePoint{R: 0.25, V: 52.5 * 1.8},
		CurvePoint{R: 0, V: 50 * 1.8},
	)
	return r
}

// GenerationComparison summarizes idle latency and peak bandwidth across
// device generations at a given mix — the §7 "how do our insights carry
// forward" table.
type GenerationComparison struct {
	Name      string
	IdleNs    float64
	PeakGBps  float64
	LatVsDDR  float64 // idle latency relative to local DDR
	BWFracDDR float64 // peak bandwidth relative to local DDR
}

// CompareGenerations evaluates DDR, CXL 1.1, CXL 2.0, and CXL 3.x devices
// at one mix.
func CompareGenerations(mix Mix) []GenerationComparison {
	ddr := NewDDRDomain("ddr")
	gens := []struct {
		name string
		res  *Resource
	}{
		{"DDR5 (SNC domain)", ddr},
		{"CXL 1.1 (A1000)", NewCXLDevice("cxl11")},
		{"CXL 2.0 (switched)", NewCXL2Device("cxl20")},
		{"CXL 3.x (PCIe 6.0)", NewCXL3Device("cxl3x")},
	}
	ddrIdle := NewPath("ddr", ddr).IdleLatency(mix)
	ddrPeak := ddr.Peak.At(mix.ReadFrac)
	out := make([]GenerationComparison, 0, len(gens))
	for _, g := range gens {
		p := NewPath(g.name, g.res)
		idle := p.IdleLatency(mix)
		peak := g.res.Peak.At(mix.ReadFrac)
		out = append(out, GenerationComparison{
			Name:      g.name,
			IdleNs:    idle,
			PeakGBps:  peak,
			LatVsDDR:  idle / ddrIdle,
			BWFracDDR: peak / ddrPeak,
		})
	}
	return out
}
