package memsim

import (
	"math"
	"sync"
	"testing"
)

// TestSolveClosedConcurrent hammers SolveClosed from 8 goroutines over
// *shared* Path/Resource values — the re-entrancy contract the parallel
// experiment runners depend on. Run with -race; every goroutine must also
// get the same answer as a serial solve.
func TestSolveClosedConcurrent(t *testing.T) {
	ddr := NewDDRDomain("ddr")
	cxl := NewCXLDevice("cxl")
	mmem := NewPath("MMEM", ddr)
	cpath := NewPath("CXL", cxl)
	flows := func(threads int) []ClosedFlow {
		return []ClosedFlow{
			{Placement: SinglePath(mmem), Mix: Mix2to1, Threads: threads, MLP: 8, AccessBytes: 64},
			{Placement: Interleave(mmem, cpath, 3, 1), Mix: Mix1to1, Threads: threads, MLP: 4, AccessBytes: 64},
		}
	}

	// Serial reference per thread count.
	const goroutines, perG = 8, 25
	want := make([][]FlowResult, goroutines)
	for g := 0; g < goroutines; g++ {
		want[g], _ = SolveClosed(flows(g + 1))
	}

	var wg sync.WaitGroup
	errc := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, util := SolveClosed(flows(g + 1))
				for fi := range res {
					if res[fi] != want[g][fi] {
						errc <- "concurrent SolveClosed diverged from serial result"
						return
					}
				}
				if len(util) == 0 {
					errc <- "concurrent SolveClosed returned empty utilization"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestSolveOpenConcurrent is the open-loop variant of the shared-path
// race test: same resources, 8 goroutines, distinct offered loads.
func TestSolveOpenConcurrent(t *testing.T) {
	ddr := NewDDRDomain("ddr")
	p := NewPath("MMEM", ddr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			offered := 5 + 5*float64(g)
			for i := 0; i < 50; i++ {
				res, _ := SolveOpen([]OpenFlow{{Placement: SinglePath(p), Mix: ReadOnly, Offered: offered}})
				if res[0].Achieved <= 0 {
					panic("open solve returned non-positive bandwidth")
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSetSolveObserverConcurrent swaps the observer while solves are in
// flight — the atomic.Pointer registration must never race and late
// installs must take effect.
func TestSetSolveObserverConcurrent(t *testing.T) {
	defer SetSolveObserver(nil)
	p := NewPath("MMEM", NewDDRDomain("ddr"))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					SolveOpen([]OpenFlow{{Placement: SinglePath(p), Mix: ReadOnly, Offered: 20}})
				}
			}
		}()
	}
	var mu sync.Mutex
	calls := 0
	for i := 0; i < 200; i++ {
		SetSolveObserver(func(kind string, flows int, util Utilization) {
			mu.Lock()
			calls++
			mu.Unlock()
		})
		SetSolveObserver(nil)
	}
	// A final install must observe subsequent solves.
	SetSolveObserver(func(kind string, flows int, util Utilization) {
		mu.Lock()
		calls++
		mu.Unlock()
	})
	SolveOpen([]OpenFlow{{Placement: SinglePath(p), Mix: ReadOnly, Offered: 20}})
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("observer installed mid-run was never invoked")
	}
}

// TestSolveCacheHitsMatchMisses verifies a cache hit reproduces the miss
// result exactly — results and the utilization map rebuilt against the
// caller's resource pointers.
func TestSolveCacheHitsMatchMisses(t *testing.T) {
	if !SolveCacheEnabled() {
		t.Skip("built with -tags nosolvecache")
	}
	ResetSolveCache()
	defer ResetSolveCache()

	ddr := NewDDRDomain("ddr")
	cxl := NewCXLDevice("cxl")
	mmem := NewPath("MMEM", ddr)
	cpath := NewPath("CXL", cxl)
	flows := []ClosedFlow{
		{Placement: Interleave(mmem, cpath, 3, 1), Mix: Mix2to1, Threads: 12, MLP: 8, AccessBytes: 64},
	}

	res1, util1 := SolveClosed(flows)
	_, misses, _ := SolveCacheStats()
	if misses == 0 {
		t.Fatal("first solve did not register a cache miss")
	}
	res2, util2 := SolveClosed(flows)
	hits, _, entries := SolveCacheStats()
	if hits == 0 {
		t.Fatal("second identical solve did not hit the cache")
	}
	if entries == 0 {
		t.Fatal("cache reports no entries after a solve")
	}
	for i := range res1 {
		if res1[i] != res2[i] {
			t.Fatalf("cached result %+v != uncached %+v", res2[i], res1[i])
		}
	}
	if len(util1) != len(util2) {
		t.Fatalf("cached utilization has %d resources, uncached %d", len(util2), len(util1))
	}
	for r, u := range util1 {
		if got, ok := util2[r]; !ok || math.Abs(got-u) > 0 {
			t.Fatalf("cached utilization for %s = %v, want %v", r.Name, got, u)
		}
	}
}

// TestSolveCacheSharedAcrossMachines: structurally identical resources
// built twice (fresh pointers, same parameters) must share cache entries
// — the fingerprint is parameter-based, not pointer-based.
func TestSolveCacheSharedAcrossMachines(t *testing.T) {
	if !SolveCacheEnabled() {
		t.Skip("built with -tags nosolvecache")
	}
	ResetSolveCache()
	defer ResetSolveCache()

	build := func() []ClosedFlow {
		p := NewPath("MMEM", NewDDRDomain("ddr"))
		return []ClosedFlow{{Placement: SinglePath(p), Mix: Mix1to1, Threads: 8, MLP: 8, AccessBytes: 64}}
	}
	resA, _ := SolveClosed(build())
	resB, utilB := SolveClosed(build())
	hits, _, _ := SolveCacheStats()
	if hits == 0 {
		t.Fatal("identical machine built twice did not share a cache entry")
	}
	if resA[0] != resB[0] {
		t.Fatalf("cross-machine cached result %+v != original %+v", resB[0], resA[0])
	}
	// The hit's utilization must be keyed by the *second* machine's
	// resource pointers, not the first's.
	if len(utilB) != 1 {
		t.Fatalf("utilization resources = %d, want 1", len(utilB))
	}
}

// TestSolveCacheDistinguishesParams: changing any solver-relevant
// parameter must miss, not alias onto a stale entry.
func TestSolveCacheDistinguishesParams(t *testing.T) {
	if !SolveCacheEnabled() {
		t.Skip("built with -tags nosolvecache")
	}
	ResetSolveCache()
	defer ResetSolveCache()

	p := NewPath("MMEM", NewDDRDomain("ddr"))
	base := ClosedFlow{Placement: SinglePath(p), Mix: Mix2to1, Threads: 8, MLP: 8, AccessBytes: 64}
	r0, _ := SolveClosed([]ClosedFlow{base})

	variant := base
	variant.Threads = 16
	r1, _ := SolveClosed([]ClosedFlow{variant})
	if r0[0] == r1[0] {
		t.Fatal("thread-count change produced identical result — key collision?")
	}

	// Degrade mutates resource parameters; the key must track them.
	p.Resources[0].Degrade(0.5, 1)
	r2, _ := SolveClosed([]ClosedFlow{base})
	if r2[0].Achieved >= r0[0].Achieved {
		t.Fatalf("degraded solve achieved %v, want below undegraded %v (stale cache entry?)",
			r2[0].Achieved, r0[0].Achieved)
	}
}

// TestSolveCacheConcurrent drives identical and distinct solves through
// the cache from many goroutines; run under -race this checks the cache's
// own synchronization.
func TestSolveCacheConcurrent(t *testing.T) {
	if !SolveCacheEnabled() {
		t.Skip("built with -tags nosolvecache")
	}
	ResetSolveCache()
	defer ResetSolveCache()

	p := NewPath("MMEM", NewDDRDomain("ddr"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				// Half the goroutines share one key; half are unique.
				threads := 4
				if g%2 == 1 {
					threads = 4 + g
				}
				SolveClosed([]ClosedFlow{{
					Placement: SinglePath(p), Mix: ReadOnly,
					Threads: threads, MLP: 8, AccessBytes: 64,
				}})
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := SolveCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got hits=%d misses=%d", hits, misses)
	}
}
