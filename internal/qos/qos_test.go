package qos

import (
	"testing"
	"testing/quick"

	"cxlsim/internal/memsim"
	"cxlsim/internal/topology"
)

// scenario: a latency-critical tenant at 10 GB/s shares one SNC domain
// with bandwidth hogs.
func scenario(t *testing.T, hogGBps float64, hogs int) []Tenant {
	t.Helper()
	m := topology.TestbedSNC()
	pl := memsim.SinglePath(m.PathFrom(0, m.DRAMNodes(0)[0]))
	tenants := []Tenant{{
		Name: "lc", Class: LatencyCritical, Placement: pl,
		Mix: memsim.ReadOnly, DemandGBps: 10,
	}}
	for i := 0; i < hogs; i++ {
		tenants = append(tenants, Tenant{
			Name: "hog", Class: BestEffort, Placement: pl,
			Mix: memsim.ReadOnly, DemandGBps: hogGBps,
		})
	}
	return tenants
}

func TestRegulatorProtectsLatencyCritical(t *testing.T) {
	tenants := scenario(t, 40, 2) // 10 + 80 offered on a 67 GB/s domain
	un := Unregulated(tenants)
	reg := Regulator{}.Regulate(tenants)

	if un[0].LatencyNs < 2*reg[0].LatencyNs {
		t.Fatalf("regulation should cut LC latency sharply: %v -> %v", un[0].LatencyNs, reg[0].LatencyNs)
	}
	// Regulated LC latency stays near idle (below the knee).
	if reg[0].LatencyNs > 130 {
		t.Fatalf("regulated LC latency = %v ns, want near-idle (<130)", reg[0].LatencyNs)
	}
	// LC demand is never throttled.
	if reg[0].GrantedGBps != 10 {
		t.Fatalf("LC grant = %v, want full 10", reg[0].GrantedGBps)
	}
}

func TestBestEffortSharesResidual(t *testing.T) {
	tenants := scenario(t, 40, 2)
	reg := Regulator{}.Regulate(tenants)
	// Equal-demand hogs get equal grants.
	if reg[1].GrantedGBps != reg[2].GrantedGBps {
		t.Fatalf("equal hogs got unequal grants: %v vs %v", reg[1].GrantedGBps, reg[2].GrantedGBps)
	}
	// Residual ≈ target×peak − LC demand, split across hogs.
	residual := 0.75*67 - 10
	got := reg[1].GrantedGBps + reg[2].GrantedGBps
	if got < residual*0.9 || got > residual*1.05 {
		t.Fatalf("hog grants total %v, want ≈%v", got, residual)
	}
	if reg[1].ThrottledFrac() <= 0 {
		t.Fatal("hogs must be throttled in this scenario")
	}
}

func TestNoThrottleUnderLightLoad(t *testing.T) {
	tenants := scenario(t, 5, 2) // total 20 of 67 — well under target
	reg := Regulator{}.Regulate(tenants)
	for i, a := range reg {
		if a.GrantedGBps != tenants[i].DemandGBps {
			t.Fatalf("tenant %d throttled (%v of %v) despite light load", i, a.GrantedGBps, tenants[i].DemandGBps)
		}
		if a.ThrottledFrac() != 0 {
			t.Fatal("ThrottledFrac should be 0 under light load")
		}
	}
}

func TestMinGrantFloor(t *testing.T) {
	// Even with LC demand at the target, BE tenants keep the floor.
	m := topology.TestbedSNC()
	pl := memsim.SinglePath(m.PathFrom(0, m.DRAMNodes(0)[0]))
	tenants := []Tenant{
		{Name: "lc", Class: LatencyCritical, Placement: pl, Mix: memsim.ReadOnly, DemandGBps: 0.75 * 67},
		{Name: "be", Class: BestEffort, Placement: pl, Mix: memsim.ReadOnly, DemandGBps: 20},
	}
	reg := Regulator{MinGrantGBps: 1.5}.Regulate(tenants)
	if reg[1].GrantedGBps < 1.5 {
		t.Fatalf("BE grant %v below the floor", reg[1].GrantedGBps)
	}
}

func TestRegulateAcrossTiers(t *testing.T) {
	// The §3.4 composition: pushing the hog onto an interleaved DRAM+CXL
	// placement leaves more DRAM headroom, so the regulator can grant it
	// more than a DRAM-only hog.
	m := topology.TestbedSNC()
	dram := m.PathFrom(0, m.DRAMNodes(0)[0])
	cxl := m.PathFrom(0, m.CXLNodes()[0])
	lc := Tenant{Name: "lc", Class: LatencyCritical,
		Placement: memsim.SinglePath(dram), Mix: memsim.ReadOnly, DemandGBps: 20}

	dramHog := Tenant{Name: "hog", Class: BestEffort,
		Placement: memsim.SinglePath(dram), Mix: memsim.ReadOnly, DemandGBps: 80}
	tieredHog := dramHog
	tieredHog.Placement = memsim.Interleave(dram, cxl, 1, 1)

	gDram := Regulator{}.Regulate([]Tenant{lc, dramHog})[1].GrantedGBps
	gTiered := Regulator{}.Regulate([]Tenant{lc, tieredHog})[1].GrantedGBps
	if gTiered <= gDram*1.3 {
		t.Fatalf("tiered hog grant %v should well exceed DRAM-only grant %v", gTiered, gDram)
	}
}

func TestValidation(t *testing.T) {
	m := topology.TestbedSNC()
	pl := memsim.SinglePath(m.PathFrom(0, m.DRAMNodes(0)[0]))
	for name, f := range map[string]func(){
		"target": func() {
			Regulator{TargetUtil: 1.5}.Regulate([]Tenant{{Placement: pl, DemandGBps: 1}})
		},
		"demand": func() {
			Regulator{}.Regulate([]Tenant{{Placement: pl, DemandGBps: -1}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
	if LatencyCritical.String() == BestEffort.String() {
		t.Fatal("class strings must differ")
	}
}

// Property: the regulator never throttles latency-critical tenants and
// never grants more than demand.
func TestPropertyRegulatorInvariants(t *testing.T) {
	m := topology.TestbedSNC()
	pl := memsim.SinglePath(m.PathFrom(0, m.DRAMNodes(0)[0]))
	f := func(demands []uint8) bool {
		if len(demands) == 0 {
			return true
		}
		var tenants []Tenant
		for i, d := range demands {
			class := LatencyCritical
			if i%2 == 1 {
				class = BestEffort
			}
			tenants = append(tenants, Tenant{
				Name: "t", Class: class, Placement: pl,
				Mix: memsim.ReadOnly, DemandGBps: float64(d % 40),
			})
		}
		for i, a := range (Regulator{}).Regulate(tenants) {
			if a.GrantedGBps > tenants[i].DemandGBps+0.51 { // floor may exceed tiny demands
				return false
			}
			if tenants[i].Class == LatencyCritical && a.GrantedGBps != tenants[i].DemandGBps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
