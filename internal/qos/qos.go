// Package qos implements MT²-style memory-bandwidth regulation (the
// paper's reference [31]) over the cxlsim device model: latency-critical
// tenants share channels with best-effort bandwidth hogs, and a
// regulator throttles the hogs so the shared devices stay below their
// contention knee — the operational answer to the paper's §5.3 warning
// that tiering policies ignore bandwidth contention.
package qos

import (
	"fmt"

	"cxlsim/internal/memsim"
)

// Class partitions tenants by service objective.
type Class int

// Tenant classes.
const (
	// LatencyCritical tenants are never throttled; the regulator exists
	// to protect their loaded latency.
	LatencyCritical Class = iota
	// BestEffort tenants absorb all throttling.
	BestEffort
)

// String names the class.
func (c Class) String() string {
	if c == BestEffort {
		return "best-effort"
	}
	return "latency-critical"
}

// Tenant is one workload sharing the memory system.
type Tenant struct {
	Name      string
	Class     Class
	Placement memsim.Placement
	Mix       memsim.Mix
	// DemandGBps is the tenant's unthrottled offered load.
	DemandGBps float64
}

// Allocation is the regulator's decision for one tenant.
type Allocation struct {
	Tenant      Tenant
	GrantedGBps float64 // post-throttle offered load
	Achieved    float64
	LatencyNs   float64
}

// ThrottledFrac reports how much of the tenant's demand was denied.
func (a Allocation) ThrottledFrac() float64 {
	if a.Tenant.DemandGBps == 0 {
		return 0
	}
	return 1 - a.GrantedGBps/a.Tenant.DemandGBps
}

// Regulator throttles best-effort traffic to keep every shared resource
// at or below TargetUtil (a fraction of its mix-specific peak; set it at
// or under the device knee to keep latency flat).
type Regulator struct {
	// TargetUtil is the utilization ceiling (default 0.75, the low edge
	// of the paper's measured 75–83% knee band).
	TargetUtil float64
	// MinGrantGBps floors each best-effort grant so throttling cannot
	// starve a tenant entirely (default 0.5 GB/s).
	MinGrantGBps float64
}

func (r Regulator) params() (float64, float64) {
	target := r.TargetUtil
	if target == 0 {
		target = 0.75
	}
	if target <= 0 || target >= 1 {
		panic(fmt.Sprintf("qos: TargetUtil %v outside (0,1)", target))
	}
	minGrant := r.MinGrantGBps
	if minGrant == 0 {
		minGrant = 0.5
	}
	return target, minGrant
}

// Regulate computes grants: latency-critical demand passes untouched;
// best-effort grants are scaled down uniformly (max-min fairness across
// equal scaling) until every shared resource sits at or below the
// target utilization. Returns allocations index-aligned with tenants.
func (r Regulator) Regulate(tenants []Tenant) []Allocation {
	target, minGrant := r.params()
	for _, t := range tenants {
		if t.DemandGBps < 0 {
			panic(fmt.Sprintf("qos: tenant %q has negative demand", t.Name))
		}
	}

	// Binary search the best-effort scale factor: utilization is
	// monotone in the scale, so the largest feasible scale is found in
	// ~40 halvings.
	feasible := func(scale float64) (bool, []memsim.OpenFlow) {
		flows := make([]memsim.OpenFlow, len(tenants))
		for i, t := range tenants {
			offered := t.DemandGBps
			if t.Class == BestEffort {
				offered *= scale
				if offered < minGrant && t.DemandGBps >= minGrant {
					offered = minGrant
				}
			}
			flows[i] = memsim.OpenFlow{Placement: t.Placement, Mix: t.Mix, Offered: offered}
		}
		_, util := memsim.SolveOpen(flows)
		for _, u := range util {
			if u > target+1e-9 {
				return false, flows
			}
		}
		return true, flows
	}

	lo, hi := 0.0, 1.0
	if ok, _ := feasible(1); ok {
		lo = 1
	} else {
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			if ok, _ := feasible(mid); ok {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	_, flows := feasible(lo)
	results, _ := memsim.SolveOpen(flows)

	out := make([]Allocation, len(tenants))
	for i, t := range tenants {
		out[i] = Allocation{
			Tenant:      t,
			GrantedGBps: flows[i].Offered,
			Achieved:    results[i].Achieved,
			LatencyNs:   results[i].Latency,
		}
	}
	return out
}

// Unregulated evaluates the same tenants with no throttling, for
// comparison.
func Unregulated(tenants []Tenant) []Allocation {
	flows := make([]memsim.OpenFlow, len(tenants))
	for i, t := range tenants {
		flows[i] = memsim.OpenFlow{Placement: t.Placement, Mix: t.Mix, Offered: t.DemandGBps}
	}
	results, _ := memsim.SolveOpen(flows)
	out := make([]Allocation, len(tenants))
	for i, t := range tenants {
		out[i] = Allocation{
			Tenant:      t,
			GrantedGBps: t.DemandGBps,
			Achieved:    results[i].Achieved,
			LatencyNs:   results[i].Latency,
		}
	}
	return out
}
