// Package vmsched operationalizes the paper's elastic-compute analysis
// (§4.3): a VM scheduler that packs instances onto servers with DRAM and
// optional CXL-expanded memory, quantifying how many vCPUs a fleet can
// actually sell — the number the closed-form elastic.RevenueModel
// abstracts.
//
// Placement policy mirrors the paper's proposal: an instance's memory
// lands in DRAM when available; once DRAM is exhausted, instances are
// offered on CXL-backed memory at a discount (§4.3.2), keeping otherwise
// stranded vCPUs sellable.
package vmsched

import (
	"errors"
	"fmt"
	"sort"
)

// MemoryClass says which medium backs an instance's memory.
type MemoryClass int

// Memory classes.
const (
	OnDRAM MemoryClass = iota
	OnCXL
)

// String names the class.
func (c MemoryClass) String() string {
	if c == OnCXL {
		return "cxl"
	}
	return "dram"
}

// Instance is a VM request.
type Instance struct {
	Name     string
	VCPUs    int
	MemoryGB int
}

// Validate checks the request.
func (i Instance) Validate() error {
	if i.VCPUs < 1 || i.MemoryGB < 1 {
		return fmt.Errorf("vmsched: instance %q needs positive vCPUs and memory", i.Name)
	}
	return nil
}

// Server is a packing target.
type Server struct {
	Name     string
	VCPUs    int
	DRAMGB   int
	CXLGB    int // 0 = no expander
	usedCPU  int
	usedDRAM int
	usedCXL  int
}

// NewServer builds a server.
func NewServer(name string, vcpus, dramGB, cxlGB int) *Server {
	if vcpus < 1 || dramGB < 1 || cxlGB < 0 {
		panic("vmsched: invalid server shape")
	}
	return &Server{Name: name, VCPUs: vcpus, DRAMGB: dramGB, CXLGB: cxlGB}
}

// FreeVCPUs reports unsold vCPUs.
func (s *Server) FreeVCPUs() int { return s.VCPUs - s.usedCPU }

// FreeDRAM reports unallocated DRAM GB.
func (s *Server) FreeDRAM() int { return s.DRAMGB - s.usedDRAM }

// FreeCXL reports unallocated CXL GB.
func (s *Server) FreeCXL() int { return s.CXLGB - s.usedCXL }

// Placement records where an instance landed.
type Placement struct {
	Instance Instance
	Server   *Server
	Class    MemoryClass
}

// ErrNoCapacity reports an unplaceable instance.
var ErrNoCapacity = errors.New("vmsched: no server can host instance")

// Scheduler packs instances onto a fleet.
type Scheduler struct {
	Servers []*Server
	// Placements in admission order.
	Placements []Placement
}

// NewScheduler builds a scheduler over the fleet.
func NewScheduler(servers ...*Server) *Scheduler {
	if len(servers) == 0 {
		panic("vmsched: empty fleet")
	}
	return &Scheduler{Servers: servers}
}

// Place admits one instance: first server with vCPUs and DRAM; failing
// that, first server with vCPUs and CXL room (the §4.3 recovery path);
// failing that, ErrNoCapacity.
func (s *Scheduler) Place(inst Instance) (*Placement, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	for _, srv := range s.Servers {
		if srv.FreeVCPUs() >= inst.VCPUs && srv.FreeDRAM() >= inst.MemoryGB {
			srv.usedCPU += inst.VCPUs
			srv.usedDRAM += inst.MemoryGB
			p := Placement{Instance: inst, Server: srv, Class: OnDRAM}
			s.Placements = append(s.Placements, p)
			return &s.Placements[len(s.Placements)-1], nil
		}
	}
	for _, srv := range s.Servers {
		if srv.FreeVCPUs() >= inst.VCPUs && srv.FreeCXL() >= inst.MemoryGB {
			srv.usedCPU += inst.VCPUs
			srv.usedCXL += inst.MemoryGB
			p := Placement{Instance: inst, Server: srv, Class: OnCXL}
			s.Placements = append(s.Placements, p)
			return &s.Placements[len(s.Placements)-1], nil
		}
	}
	return nil, fmt.Errorf("%w: %s (%d vCPU, %d GB)", ErrNoCapacity, inst.Name, inst.VCPUs, inst.MemoryGB)
}

// PackAll admits as many instances as possible, largest-first (FFD), and
// returns the leftovers.
func (s *Scheduler) PackAll(insts []Instance) (rejected []Instance) {
	sorted := append([]Instance(nil), insts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].VCPUs > sorted[j].VCPUs
	})
	for _, in := range sorted {
		if _, err := s.Place(in); err != nil {
			rejected = append(rejected, in)
		}
	}
	return rejected
}

// FleetReport summarizes sellability and the revenue picture.
type FleetReport struct {
	TotalVCPUs   int
	SoldDRAM     int     // vCPUs sold on DRAM-backed instances
	SoldCXL      int     // vCPUs sold on CXL-backed instances
	Stranded     int     // unsold vCPUs
	RevenueUnits float64 // 1.0 per DRAM vCPU, (1-discount) per CXL vCPU
}

// SellableFrac is the fraction of fleet vCPUs sold.
func (r FleetReport) SellableFrac() float64 {
	if r.TotalVCPUs == 0 {
		return 0
	}
	return float64(r.SoldDRAM+r.SoldCXL) / float64(r.TotalVCPUs)
}

// Report computes the fleet summary; cxlDiscount is the price discount on
// CXL-backed instances (paper example: 0.20).
func (s *Scheduler) Report(cxlDiscount float64) FleetReport {
	if cxlDiscount < 0 || cxlDiscount >= 1 {
		panic("vmsched: discount outside [0,1)")
	}
	var r FleetReport
	for _, srv := range s.Servers {
		r.TotalVCPUs += srv.VCPUs
	}
	for _, p := range s.Placements {
		if p.Class == OnDRAM {
			r.SoldDRAM += p.Instance.VCPUs
			r.RevenueUnits += float64(p.Instance.VCPUs)
		} else {
			r.SoldCXL += p.Instance.VCPUs
			r.RevenueUnits += float64(p.Instance.VCPUs) * (1 - cxlDiscount)
		}
	}
	r.Stranded = r.TotalVCPUs - r.SoldDRAM - r.SoldCXL
	return r
}

// StandardInstances builds n identical 1:4-ratio instances (the AWS-style
// canonical shape, §4.3).
func StandardInstances(n, vcpus int) []Instance {
	out := make([]Instance, n)
	for i := range out {
		out[i] = Instance{
			Name:     fmt.Sprintf("vm-%d", i),
			VCPUs:    vcpus,
			MemoryGB: vcpus * 4,
		}
	}
	return out
}
