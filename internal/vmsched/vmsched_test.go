package vmsched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// sierra builds a §4.3-shaped server: 1152 vCPUs, 1:3-provisioned DRAM
// (3456 GB), optionally with CXL expansion covering the 1:4 gap.
func sierra(cxlGB int) *Server {
	return NewServer("sierra", 1152, 1152*3, cxlGB)
}

func TestPaperScenarioWithoutCXL(t *testing.T) {
	// 1:3 provisioning sells only 75% of vCPUs at the canonical 1:4.
	s := NewScheduler(sierra(0))
	rejected := s.PackAll(StandardInstances(1152/8, 8))
	r := s.Report(0.2)
	if got := r.SellableFrac(); math.Abs(got-0.75) > 0.01 {
		t.Fatalf("sellable fraction = %.3f, want 0.75", got)
	}
	if len(rejected) == 0 {
		t.Fatal("memory-limited server must reject instances")
	}
	if r.SoldCXL != 0 {
		t.Fatal("no CXL on this server")
	}
	if r.Stranded != 1152/4 {
		t.Fatalf("stranded = %d, want %d", r.Stranded, 1152/4)
	}
}

func TestPaperScenarioWithCXL(t *testing.T) {
	// Adding a CXL expander that covers the gap sells everything; with
	// the 20% discount, recovered revenue matches the closed-form §4.3.2
	// analysis (≈26.7% over the non-CXL baseline).
	without := NewScheduler(sierra(0))
	without.PackAll(StandardInstances(1152/8, 8))
	base := without.Report(0.2).RevenueUnits

	with := NewScheduler(sierra(1152)) // 1 GB/vCPU of CXL closes the 1:4 gap
	rejected := with.PackAll(StandardInstances(1152/8, 8))
	if len(rejected) != 0 {
		t.Fatalf("CXL-expanded server rejected %d instances", len(rejected))
	}
	r := with.Report(0.2)
	if r.SellableFrac() != 1 {
		t.Fatalf("sellable = %.3f, want 1", r.SellableFrac())
	}
	gain := r.RevenueUnits/base - 1
	if math.Abs(gain-0.2667) > 0.005 {
		t.Fatalf("revenue gain = %.4f, want ≈0.2667 (§4.3.2)", gain)
	}
}

func TestDRAMPreferredOverCXL(t *testing.T) {
	s := NewScheduler(NewServer("srv", 16, 32, 32))
	p, err := s.Place(Instance{Name: "a", VCPUs: 4, MemoryGB: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != OnDRAM {
		t.Fatal("DRAM must be preferred while available")
	}
	// Next instance exceeds remaining DRAM → CXL.
	p2, err := s.Place(Instance{Name: "b", VCPUs: 4, MemoryGB: 24})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Class != OnCXL {
		t.Fatalf("overflow instance landed on %v, want cxl", p2.Class)
	}
}

func TestPlaceRejectsWhenFull(t *testing.T) {
	s := NewScheduler(NewServer("srv", 4, 16, 0))
	if _, err := s.Place(Instance{Name: "a", VCPUs: 4, MemoryGB: 16}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Place(Instance{Name: "b", VCPUs: 1, MemoryGB: 1})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestValidation(t *testing.T) {
	s := NewScheduler(NewServer("srv", 4, 16, 0))
	if _, err := s.Place(Instance{Name: "bad", VCPUs: 0, MemoryGB: 1}); err == nil {
		t.Error("zero vCPUs should error")
	}
	for name, f := range map[string]func(){
		"server":   func() { NewServer("x", 0, 1, 0) },
		"fleet":    func() { NewScheduler() },
		"discount": func() { s.Report(1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPackAllFFD(t *testing.T) {
	// Largest-first packing fits a big instance that naive order would
	// strand.
	s := NewScheduler(NewServer("srv", 16, 64, 0))
	insts := []Instance{
		{Name: "small1", VCPUs: 2, MemoryGB: 8},
		{Name: "big", VCPUs: 12, MemoryGB: 48},
		{Name: "small2", VCPUs: 2, MemoryGB: 8},
	}
	rejected := s.PackAll(insts)
	if len(rejected) != 0 {
		t.Fatalf("FFD should fit all: rejected %v", rejected)
	}
	if s.Placements[0].Instance.Name != "big" {
		t.Fatal("FFD should place the big instance first")
	}
}

func TestMultiServerSpill(t *testing.T) {
	a := NewServer("a", 8, 32, 0)
	b := NewServer("b", 8, 32, 0)
	s := NewScheduler(a, b)
	rejected := s.PackAll(StandardInstances(2, 8))
	if len(rejected) != 0 {
		t.Fatalf("two servers fit two instances: %v", rejected)
	}
	if a.FreeVCPUs() != 0 || b.FreeVCPUs() != 0 {
		t.Fatal("instances should spread across servers")
	}
}

func TestMemoryClassString(t *testing.T) {
	if OnDRAM.String() != "dram" || OnCXL.String() != "cxl" {
		t.Fatal("class strings wrong")
	}
}

func TestEmptyReport(t *testing.T) {
	if (FleetReport{}).SellableFrac() != 0 {
		t.Fatal("empty fleet sellable fraction should be 0")
	}
}

// Property: capacity is never oversubscribed through any admission
// sequence, and revenue is bounded by sold vCPUs.
func TestPropertyNoOversubscription(t *testing.T) {
	f := func(sizes []uint8) bool {
		srv := NewServer("srv", 64, 128, 64)
		s := NewScheduler(srv)
		for i, raw := range sizes {
			v := int(raw%8) + 1
			s.Place(Instance{Name: "vm", VCPUs: v, MemoryGB: v * int(raw%5+1)})
			if srv.FreeVCPUs() < 0 || srv.FreeDRAM() < 0 || srv.FreeCXL() < 0 {
				return false
			}
			_ = i
		}
		r := s.Report(0.2)
		return r.RevenueUnits <= float64(r.SoldDRAM+r.SoldCXL)+1e-9 &&
			r.Stranded >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
