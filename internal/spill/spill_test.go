package spill_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cxlsim/internal/obs"
	"cxlsim/internal/spill"
)

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func val(i, ver int) []byte {
	// Fixed width: several tests index records as len(file)/count.
	return []byte(fmt.Sprintf("value-%04d-v%04d", i, ver))
}

func mustOpen(t *testing.T, opts spill.Options) (*spill.Dir, *spill.RecoveryReport) {
	t.Helper()
	d, rep, err := spill.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, rep
}

func TestRecordRoundTrip(t *testing.T) {
	r := spill.Record{Seq: 42, Key: []byte("k"), Val: []byte("hello"), Tombstone: false}
	buf := spill.EncodeRecord(r)
	got, n, err := spill.DecodeRecord(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.Seq != 42 || string(got.Key) != "k" || string(got.Val) != "hello" || got.Tombstone {
		t.Fatalf("round trip mangled: %+v", got)
	}
	// Every single-bit flip must be detected.
	for byteIdx := 0; byteIdx < len(buf); byteIdx++ {
		mut := append([]byte(nil), buf...)
		mut[byteIdx] ^= 0x10
		if _, _, err := spill.DecodeRecord(mut); err == nil {
			// A flip inside the length fields can still fail; a clean
			// decode anywhere is a checksum hole.
			t.Fatalf("bit flip at byte %d went undetected", byteIdx)
		}
	}
	// Truncations never decode.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := spill.DecodeRecord(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
}

func TestPutGetDeleteAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, rep := mustOpen(t, spill.Options{Dir: dir})
	if rep.Segments != 1 || rep.LiveKeys != 0 {
		t.Fatalf("fresh open: %+v", rep)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := d.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some, delete some.
	for i := 0; i < 10; i++ {
		if err := d.Put(key(i), val(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 90; i < n; i++ {
		if err := d.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(d *spill.Dir, phase string) {
		t.Helper()
		for i := 0; i < 90; i++ {
			want := val(i, 0)
			if i < 10 {
				want = val(i, 1)
			}
			v, ok, err := d.Get(key(i))
			if err != nil || !ok || !bytes.Equal(v, want) {
				t.Fatalf("%s: key %d: ok=%v err=%v v=%q want %q", phase, i, ok, err, v, want)
			}
		}
		for i := 90; i < n; i++ {
			if _, ok, _ := d.Get(key(i)); ok {
				t.Fatalf("%s: deleted key %d still live", phase, i)
			}
		}
	}
	check(d, "before close")
	dump := d.KeydirDump()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, rep2 := mustOpen(t, spill.Options{Dir: dir})
	defer d2.Close()
	if !rep2.Clean() {
		t.Fatalf("clean shutdown recovered dirty: %s", rep2)
	}
	if rep2.LiveKeys != 90 {
		t.Fatalf("recovered %d live keys, want 90", rep2.LiveKeys)
	}
	check(d2, "after reopen")
	if !bytes.Equal(dump, d2.KeydirDump()) {
		t.Fatal("keydir dump changed across clean reopen")
	}
}

func TestRotationWritesHintsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	d, _ := mustOpen(t, spill.Options{Dir: dir, SegmentBytes: 512, SyncEvery: 10})
	const n = 200
	for i := 0; i < n; i++ {
		if err := d.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Rotations == 0 || st.Segments < 3 {
		t.Fatalf("expected rotations, got %+v", st)
	}
	dump := d.KeydirDump()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Hints must exist for sealed segments and carry the recovery.
	hints, _ := filepath.Glob(filepath.Join(dir, "*.hnt"))
	if len(hints) == 0 {
		t.Fatal("no hint files after rotations")
	}
	d2, rep := mustOpen(t, spill.Options{Dir: dir})
	defer d2.Close()
	if rep.HintLoads == 0 || rep.HintEntries == 0 {
		t.Fatalf("recovery ignored hints: %s", rep)
	}
	if !bytes.Equal(dump, d2.KeydirDump()) {
		t.Fatal("hint-driven recovery diverged from pre-close keydir")
	}
	// A corrupt hint falls back to scanning, with identical results.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	hb, err := os.ReadFile(hints[0])
	if err != nil {
		t.Fatal(err)
	}
	hb[len(hb)/2] ^= 0xFF
	if err := os.WriteFile(hints[0], hb, 0o644); err != nil {
		t.Fatal(err)
	}
	d3, rep3 := mustOpen(t, spill.Options{Dir: dir})
	defer d3.Close()
	if rep3.HintLoads != rep.HintLoads-1 {
		t.Fatalf("corrupt hint still loaded: %s", rep3)
	}
	if !bytes.Equal(dump, d3.KeydirDump()) {
		t.Fatal("scan fallback diverged from hint recovery")
	}
}

func TestFsckDetectsCorruptionAndRecoveryQuarantines(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, spill.Options{Dir: dir})
	for i := 0; i < 50; i++ {
		if err := d.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recSize := len(data) / 50
	// Flip one bit in the middle of record 10's value.
	data[10*recSize+recSize/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Read-only fsck: detects, does not modify.
	rep, err := spill.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.QuarantinedRecords != 1 {
		t.Fatalf("fsck missed the corruption: %s", rep)
	}
	after, _ := os.ReadFile(seg)
	if !bytes.Equal(data, after) {
		t.Fatal("read-only fsck modified the segment")
	}
	if _, err := os.Stat(filepath.Join(dir, spill.QuarantineDir)); !os.IsNotExist(err) {
		t.Fatal("read-only fsck wrote quarantine files")
	}

	// Repairing recovery: quarantines the bad record, keeps the rest.
	d2, rep2 := mustOpen(t, spill.Options{Dir: dir})
	defer d2.Close()
	if rep2.QuarantinedRecords != 1 {
		t.Fatalf("recovery quarantined %d records, want 1: %s", rep2.QuarantinedRecords, rep2)
	}
	if rep2.LiveKeys != 49 {
		t.Fatalf("recovered %d keys, want 49 (one quarantined): %s", rep2.LiveKeys, rep2)
	}
	bad, err := filepath.Glob(filepath.Join(dir, spill.QuarantineDir, "*.bad"))
	if err != nil || len(bad) != 1 {
		t.Fatalf("quarantine files: %v err=%v", bad, err)
	}
	// The corrupt key is gone; its neighbors survive with full values.
	if _, ok, _ := d2.Get(key(10)); ok {
		t.Fatal("corrupt record's key still resolves")
	}
	for _, i := range []int{9, 11} {
		v, ok, err := d2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i, 0)) {
			t.Fatalf("neighbor key %d damaged: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, spill.Options{Dir: dir})
	for i := 0; i < 20; i++ {
		if err := d.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	recSize := len(data) / 20
	torn := data[:len(data)-recSize/2]
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, rep := mustOpen(t, spill.Options{Dir: dir})
	if rep.TornBytesTruncated == 0 || rep.QuarantinedRecords != 0 {
		t.Fatalf("torn tail not truncated: %s", rep)
	}
	if rep.LiveKeys != 19 {
		t.Fatalf("recovered %d keys, want 19: %s", rep.LiveKeys, rep)
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(19*recSize) {
		t.Fatalf("segment not truncated to record boundary: %d", fi.Size())
	}
	// Appends after truncation extend cleanly.
	if err := d2.Put(key(19), val(19, 7)); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, rep3 := mustOpen(t, spill.Options{Dir: dir})
	defer d3.Close()
	if !rep3.Clean() || rep3.LiveKeys != 20 {
		t.Fatalf("post-truncation append did not recover: %s", rep3)
	}
	v, ok, _ := d3.Get(key(19))
	if !ok || !bytes.Equal(v, val(19, 7)) {
		t.Fatal("re-written tail key wrong after second recovery")
	}
}

func TestInstrumentPublishesRecoveryAndIO(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, spill.Options{Dir: dir})
	for i := 0; i < 5; i++ {
		if err := d.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	d2, _ := mustOpen(t, spill.Options{Dir: dir})
	defer d2.Close()
	reg := obs.NewRegistry()
	d2.Instrument(reg)
	if err := d2.Put(key(5), val(5, 0)); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		obs.MetricSpillRecordsWritten:  1,
		obs.MetricSpillRecoveryScanned: 5,
		obs.MetricSpillLiveKeys:        6,
	}
	found := map[string]float64{}
	for _, fam := range reg.Snapshot().Families {
		if len(fam.Metrics) == 1 {
			found[fam.Name] = fam.Metrics[0].Value
		}
	}
	for name, v := range want {
		if found[name] != v {
			t.Errorf("%s = %v, want %v", name, found[name], v)
		}
	}
}

func TestWriteAmplification(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, spill.Options{Dir: dir})
	defer d.Close()
	if err := d.Put(key(1), make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	wa := st.WriteAmplification()
	// 1008 user bytes inside a 1031-byte frame: amplification is the
	// framing overhead, a hair above 1.
	if wa <= 1.0 || wa > 1.1 {
		t.Fatalf("write amplification %v out of range", wa)
	}
}
