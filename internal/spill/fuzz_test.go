package spill_test

import (
	"bytes"
	"testing"

	"cxlsim/internal/spill"
)

// FuzzRecordDecode hammers the record decoder with arbitrary bytes. The
// decoder sits on the recovery path, so it must never panic or
// over-allocate on hostile input, and anything it does accept must
// round-trip byte-identically (otherwise resync offsets drift between
// recovery passes).
func FuzzRecordDecode(f *testing.F) {
	// Seed corpus: valid records of each shape, plus classic mutations.
	rec := spill.EncodeRecord(spill.Record{Seq: 1, Key: []byte("k"), Val: []byte("v")})
	f.Add(rec)
	f.Add(spill.EncodeRecord(spill.Record{Seq: 42, Key: []byte("key-0007"), Tombstone: true}))
	f.Add(spill.EncodeRecord(spill.Record{Seq: 1 << 60, Key: bytes.Repeat([]byte("K"), 100), Val: bytes.Repeat([]byte("V"), 1000)}))
	f.Add(rec[:len(rec)-3]) // torn tail
	flipped := append([]byte(nil), rec...)
	flipped[7] ^= 0x10 // corrupt seq byte under the checksum
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x7c})
	f.Add(bytes.Repeat([]byte{0x7c, 0xb1}, 40)) // magic spam, no valid frame
	huge := spill.EncodeRecord(spill.Record{Seq: 2, Key: []byte("kk"), Val: []byte("vv")})
	huge[15] = 0xff // absurd key length with a stale checksum
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := spill.DecodeRecord(data)
		if err != nil {
			switch err {
			case spill.ErrTruncated, spill.ErrBadMagic, spill.ErrCorrupt, spill.ErrChecksum:
			default:
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded length %d out of range (input %d)", n, len(data))
		}
		if len(r.Key) == 0 {
			t.Fatal("accepted record with empty key")
		}
		// Round-trip: what decoded must re-encode to the exact frame.
		if got := spill.EncodeRecord(r); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:n])
		}
	})
}
