package spill

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cxlsim/internal/obs"
)

// Shim intercepts every physical write and fsync of the tier. It is the
// durability-fault injection point: internal/fault's DiskInjector
// satisfies it structurally (spill does not import fault). Write may
// return a shortened or mutated copy of p — the returned bytes are what
// actually reach the file — and an error marks the device dead: the Dir
// persists the returned prefix (the torn write hit the platter), fails
// the in-flight operation, and refuses all further I/O.
type Shim interface {
	Write(name string, off int64, p []byte) ([]byte, error)
	Sync(name string) error
}

// Options configures a Dir.
type Options struct {
	Dir string
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// SyncEvery fsyncs after every N acknowledged appends (default 1:
	// every Put is durable before it returns). 0 disables automatic
	// fsync — only rotation and explicit Sync flush, and a crash loses
	// everything since the last flush boundary.
	SyncEvery int
	// Shim, when non-nil, intercepts physical writes and fsyncs.
	Shim Shim
}

func (o *Options) fill() {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.SyncEvery < 0 {
		o.SyncEvery = 0
	}
}

// entry is one keydir slot: where the newest live record for a key sits.
type entry struct {
	seg  uint32
	off  int64
	size uint32
	seq  uint64
}

// Stats counts the tier's I/O since Open.
type Stats struct {
	RecordsWritten uint64
	BytesWritten   uint64
	UserBytes      uint64 // key+value payload bytes in acknowledged appends
	Reads          uint64
	Fsyncs         uint64
	Rotations      uint64
	LiveKeys       int
	Segments       int
}

// WriteAmplification is physical bytes written per logical user byte —
// the number to hold against lsm.Stats.WriteAmp when comparing the
// log-structured hash tier with the structural LSM engine.
func (s Stats) WriteAmplification() float64 {
	if s.UserBytes == 0 {
		return 0
	}
	return float64(s.BytesWritten) / float64(s.UserBytes)
}

// Dir is an open spill tier rooted at one directory. It is not safe for
// concurrent use; the kvstore drives it from the single-threaded DES
// loop and real services must wrap it in their own lock.
type Dir struct {
	opts Options

	keydir map[string]entry
	seq    uint64

	// tombs tracks tombstones appended to the active segment (newest per
	// key), so its hint can carry them — without this, hint-based
	// recovery would resurrect keys whose delete lives in that segment.
	tombs map[string]hintEntry

	active   *os.File
	activeID uint32
	// activeSize includes torn bytes a failed write left on the tail.
	activeSize int64
	unsynced   int

	// sealed read handles, opened on demand.
	readers map[uint32]*os.File

	failed error // sticky device failure: every later op returns it

	recovery *RecoveryReport
	stats    Stats

	// obs instrumentation (nil-safe: zero overhead until Instrument).
	recordsC, bytesC, readsC, fsyncsC *obs.Counter
	liveG, segsG                      *obs.Gauge
}

// Open opens (creating if needed) the tier at opts.Dir, recovering
// existing segments: hint files accelerate sealed segments, torn tails
// are truncated, corrupt ranges are quarantined, and the keydir is
// rebuilt deterministically. The returned RecoveryReport describes what
// recovery found (also available later via Recovery).
func Open(opts Options) (*Dir, *RecoveryReport, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("spill: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("spill: %w", err)
	}
	d := &Dir{
		opts:    opts,
		keydir:  map[string]entry{},
		readers: map[uint32]*os.File{},
	}
	rep, err := d.recover()
	if err != nil {
		return nil, nil, err
	}
	d.recovery = rep
	d.stats.LiveKeys = len(d.keydir)
	d.stats.Segments = rep.Segments
	return d, rep, nil
}

func segName(id uint32) string  { return fmt.Sprintf("%08d.seg", id) }
func hintName(id uint32) string { return fmt.Sprintf("%08d.hnt", id) }

func (d *Dir) segPath(id uint32) string  { return filepath.Join(d.opts.Dir, segName(id)) }
func (d *Dir) hintPath(id uint32) string { return filepath.Join(d.opts.Dir, hintName(id)) }

// segmentIDs lists the segment ids present on disk, sorted ascending.
func segmentIDs(dir string) ([]uint32, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	var ids []uint32
	for _, e := range ents {
		var id uint32
		if n, _ := fmt.Sscanf(e.Name(), "%08d.seg", &id); n == 1 && e.Name() == segName(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Put appends a key/value record; when it returns nil the write is
// acknowledged (and, with SyncEvery=1, durable).
func (d *Dir) Put(key, val []byte) error {
	return d.append(Record{Key: key, Val: val})
}

// Delete appends a tombstone for key.
func (d *Dir) Delete(key []byte) error {
	return d.append(Record{Key: key, Tombstone: true})
}

func (d *Dir) append(r Record) error {
	if d.failed != nil {
		return d.failed
	}
	if len(r.Key) == 0 || len(r.Key) > MaxKeyLen || len(r.Val) > MaxValLen {
		return fmt.Errorf("spill: key/value size out of range (%d/%d)", len(r.Key), len(r.Val))
	}
	d.seq++
	r.Seq = d.seq
	buf := EncodeRecord(r)
	off := d.activeSize
	if err := d.write(d.active, off, buf); err != nil {
		return err
	}
	if r.Tombstone {
		delete(d.keydir, string(r.Key))
		d.tombs[string(r.Key)] = hintEntry{key: r.Key, off: off, seq: r.Seq}
	} else {
		d.keydir[string(r.Key)] = entry{seg: d.activeID, off: off, size: uint32(len(buf)), seq: r.Seq}
	}
	d.stats.RecordsWritten++
	d.stats.UserBytes += uint64(len(r.Key) + len(r.Val))
	if d.recordsC != nil {
		d.recordsC.Inc()
	}
	d.stats.LiveKeys = len(d.keydir)
	d.setGauges()
	d.unsynced++
	if d.opts.SyncEvery > 0 && d.unsynced >= d.opts.SyncEvery {
		if err := d.Sync(); err != nil {
			return err
		}
	}
	if d.activeSize >= d.opts.SegmentBytes {
		return d.rotate()
	}
	return nil
}

// write routes one physical write through the shim and the file,
// advancing activeSize by whatever was persisted (possibly a torn
// prefix) when f is the active segment.
func (d *Dir) write(f *os.File, off int64, p []byte) error {
	buf, serr := p, error(nil)
	if d.opts.Shim != nil {
		buf, serr = d.opts.Shim.Write(f.Name(), off, p)
	}
	var n int
	if len(buf) > 0 {
		var werr error
		n, werr = f.WriteAt(buf, off)
		if werr != nil && serr == nil {
			serr = fmt.Errorf("spill: %s: %w", f.Name(), werr)
		}
	}
	if f == d.active {
		d.activeSize = off + int64(n)
	}
	d.stats.BytesWritten += uint64(n)
	if d.bytesC != nil {
		d.bytesC.Add(float64(n))
	}
	if serr != nil {
		d.failed = serr
		return serr
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (d *Dir) Sync() error {
	if d.failed != nil {
		return d.failed
	}
	if d.opts.Shim != nil {
		if err := d.opts.Shim.Sync(d.active.Name()); err != nil {
			d.failed = err
			return err
		}
	}
	if err := d.active.Sync(); err != nil {
		d.failed = fmt.Errorf("spill: %s: %w", d.active.Name(), err)
		return d.failed
	}
	d.unsynced = 0
	d.stats.Fsyncs++
	if d.fsyncsC != nil {
		d.fsyncsC.Inc()
	}
	return nil
}

// rotate seals the active segment — fsync, hint file, close — and opens
// the next one. The hint write goes through the shim too, so the crash
// matrix covers death mid-hint: recovery then ignores the bad hint and
// rescans the segment.
func (d *Dir) rotate() error {
	if err := d.Sync(); err != nil {
		return err
	}
	sealedID := d.activeID
	sealed := d.active
	if err := d.writeHint(sealedID); err != nil {
		// The segment itself is durable; a hint failure only loses the
		// fast-recovery path. Device-dead errors stay sticky via write().
		if d.failed != nil {
			return d.failed
		}
	}
	// Keep the sealed handle for reads.
	d.readers[sealedID] = sealed
	d.tombs = map[string]hintEntry{}
	d.activeID++
	f, err := os.OpenFile(d.segPath(d.activeID), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		d.failed = fmt.Errorf("spill: %w", err)
		return d.failed
	}
	d.active = f
	d.activeSize = 0
	d.stats.Rotations++
	d.stats.Segments++
	d.setGauges()
	return nil
}

// writeHint writes the sealed segment's live keydir entries as a single
// checksummed hint file: one shim write plus one fsync.
func (d *Dir) writeHint(id uint32) error {
	buf := encodeHint(d.hintEntries(id))
	f, err := os.OpenFile(d.hintPath(id), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	werr := d.write(f, 0, buf)
	if werr == nil {
		if d.opts.Shim != nil {
			if err := d.opts.Shim.Sync(f.Name()); err != nil {
				d.failed = err
				werr = err
			}
		}
	}
	if werr == nil {
		if err := f.Sync(); err != nil {
			werr = fmt.Errorf("spill: %w", err)
		} else {
			d.stats.Fsyncs++
			if d.fsyncsC != nil {
				d.fsyncsC.Inc()
			}
		}
	}
	if cerr := f.Close(); cerr != nil && werr == nil {
		werr = fmt.Errorf("spill: %w", cerr)
	}
	return werr
}

// hintEntries collects the live keydir entries pointing into segment id
// plus the segment's tombstones (size 0 marks a tombstone — real
// records are never smaller than their header), sorted by offset so the
// hint (and any recovery from it) is deterministic. Tombstones must be
// carried: the hint replaces the segment scan, and a scan would have
// seen the delete.
func (d *Dir) hintEntries(id uint32) []hintEntry {
	var hes []hintEntry
	for k, e := range d.keydir {
		if e.seg == id {
			hes = append(hes, hintEntry{key: []byte(k), off: e.off, size: e.size, seq: e.seq})
		}
	}
	for _, he := range d.tombs {
		hes = append(hes, he)
	}
	sort.Slice(hes, func(i, j int) bool { return hes[i].off < hes[j].off })
	return hes
}

// Get returns the newest value for key, reading and checksum-verifying
// the record from disk. ok is false for absent or deleted keys.
func (d *Dir) Get(key []byte) (val []byte, ok bool, err error) {
	e, hit := d.keydir[string(key)]
	if !hit {
		return nil, false, nil
	}
	f, err := d.readerFor(e.seg)
	if err != nil {
		return nil, false, err
	}
	buf := make([]byte, e.size)
	if _, err := f.ReadAt(buf, e.off); err != nil {
		return nil, false, fmt.Errorf("spill: %s@%d: %w", segName(e.seg), e.off, err)
	}
	r, _, err := DecodeRecord(buf)
	if err != nil {
		return nil, false, fmt.Errorf("spill: %s@%d: %w", segName(e.seg), e.off, err)
	}
	d.stats.Reads++
	if d.readsC != nil {
		d.readsC.Inc()
	}
	out := make([]byte, len(r.Val))
	copy(out, r.Val)
	return out, true, nil
}

// Has reports whether key is live, without touching disk.
func (d *Dir) Has(key []byte) bool {
	_, ok := d.keydir[string(key)]
	return ok
}

func (d *Dir) readerFor(id uint32) (*os.File, error) {
	if id == d.activeID {
		return d.active, nil
	}
	if f, ok := d.readers[id]; ok {
		return f, nil
	}
	f, err := os.Open(d.segPath(id))
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	d.readers[id] = f
	return f, nil
}

// SetSyncEvery adjusts the automatic fsync cadence (0 disables; bulk
// loaders batch with 0 and finish with one explicit Sync).
func (d *Dir) SetSyncEvery(n int) { d.opts.SyncEvery = n }

// Seq returns the newest assigned log sequence number.
func (d *Dir) Seq() uint64 { return d.seq }

// Stats returns a snapshot of the tier's counters.
func (d *Dir) Stats() Stats {
	s := d.stats
	s.LiveKeys = len(d.keydir)
	return s
}

// Recovery returns the report from Open's recovery pass.
func (d *Dir) Recovery() *RecoveryReport { return d.recovery }

// Close syncs (best effort once failed) and closes every handle.
//
// Close is idempotent by contract: the first call does the work and
// nils out every handle, so later calls are no-ops returning nil. This
// matters for process teardown, where a deferred Close routinely races
// an explicit shutdown-path Close (the cxlserve drain path) — a second
// Close must never double-close file descriptors or report a spurious
// error. Other methods are NOT safe after Close; only Close itself may
// be repeated.
func (d *Dir) Close() error {
	var first error
	if d.failed == nil && d.active != nil {
		first = d.Sync()
	}
	if d.active != nil {
		if err := d.active.Close(); err != nil && first == nil {
			first = err
		}
		d.active = nil
	}
	for id, f := range d.readers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(d.readers, id)
	}
	return first
}

// KeydirDump renders the keydir canonically — keys in lexicographic
// order, one line per live key — so recovered states can be compared
// byte-for-byte across runs and parallelism settings.
func (d *Dir) KeydirDump() []byte {
	keys := make([]string, 0, len(d.keydir))
	for k := range d.keydir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for _, k := range keys {
		e := d.keydir[k]
		b = fmt.Appendf(b, "%x seq=%d seg=%d off=%d size=%d\n", k, e.seq, e.seg, e.off, e.size)
	}
	return b
}

// Instrument publishes the tier's counters and the recovery report into
// the registry. Call once, right after Open.
func (d *Dir) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.recordsC = reg.Counter(obs.MetricSpillRecordsWritten, "records appended to the spill log")
	d.bytesC = reg.Counter(obs.MetricSpillBytesWritten, "bytes physically written to the spill log")
	d.readsC = reg.Counter(obs.MetricSpillReads, "records read back from the spill log")
	d.fsyncsC = reg.Counter(obs.MetricSpillFsyncs, "spill log fsyncs")
	d.liveG = reg.Gauge(obs.MetricSpillLiveKeys, "live keys in the spill keydir")
	d.segsG = reg.Gauge(obs.MetricSpillSegments, "spill log segments on disk")
	// Backfill pre-instrumentation activity (bulk seeding, recovery).
	d.recordsC.Add(float64(d.stats.RecordsWritten))
	d.bytesC.Add(float64(d.stats.BytesWritten))
	d.readsC.Add(float64(d.stats.Reads))
	d.fsyncsC.Add(float64(d.stats.Fsyncs))
	d.setGauges()
	if rep := d.recovery; rep != nil {
		reg.Counter(obs.MetricSpillRecoveryScanned, "records scanned during spill recovery").
			Add(float64(rep.RecordsScanned))
		reg.Counter(obs.MetricSpillRecoveryQuarantined, "corrupt records quarantined during spill recovery").
			Add(float64(rep.QuarantinedRecords))
		reg.Counter(obs.MetricSpillRecoveryTornBytes, "torn tail bytes truncated during spill recovery").
			Add(float64(rep.TornBytesTruncated))
		reg.Gauge(obs.MetricSpillRecoveryNs, "wall-clock duration of the last spill recovery, ns").
			Set(float64(rep.DurationNs))
	}
}

func (d *Dir) setGauges() {
	if d.liveG != nil {
		d.liveG.Set(float64(len(d.keydir)))
		d.segsG.Set(float64(d.stats.Segments))
	}
}
