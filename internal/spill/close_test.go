package spill

import (
	"errors"
	"testing"
)

var errDeviceDead = errors.New("spill test: device dead")

// TestCloseIdempotent pins the documented contract: Close may be called
// any number of times; only the first does work, the rest are no-ops
// returning nil. This is the regression test for the cxlserve teardown
// bug where a deferred Close fired after the drain path's explicit one.
func TestCloseIdempotent(t *testing.T) {
	d, _, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Rotate once so sealed readers exist and must be closed exactly once.
	d.opts.SegmentBytes = 1
	if err := d.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Segments; got < 2 {
		t.Fatalf("expected a rotation, got %d segment(s)", got)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Close(); err != nil {
			t.Fatalf("Close #%d after Close: %v (contract: idempotent no-op)", i+2, err)
		}
	}
}

// TestCloseIdempotentAfterFailure covers the sticky-failure path: a Dir
// whose device died still closes cleanly and repeatedly.
func TestCloseIdempotentAfterFailure(t *testing.T) {
	d, _, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.failed = errDeviceDead
	if err := d.Close(); err != nil {
		t.Fatalf("Close of failed dir: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close of failed dir: %v", err)
	}
}
