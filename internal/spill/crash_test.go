package spill_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cxlsim/internal/fault"
	"cxlsim/internal/par"
	"cxlsim/internal/spill"
)

// crashOp is one step of the seeded crash-matrix workload.
type crashOp struct {
	key    []byte
	val    []byte // nil = delete
	delete bool
}

// crashWorkload expands a seed into a deterministic op sequence mixing
// fresh puts, overwrites, and deletes over a small keyspace, sized to
// force several segment rotations (and therefore hint writes) inside
// the boundary budget.
func crashWorkload(seed int64, n int) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	ver := map[int]int{}
	ops := make([]crashOp, 0, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(12)
		if rng.Float64() < 0.15 && ver[k] > 0 {
			ops = append(ops, crashOp{key: key(k), delete: true})
			ver[k] = 0
			continue
		}
		ver[k]++
		ops = append(ops, crashOp{key: key(k), val: val(k, ver[k])})
	}
	return ops
}

const (
	matrixSeed = 1234
	matrixOps  = 60
	matrixSeg  = 384 // bytes; tiny so the workload rotates several times
)

// runCrashWorkload replays ops against a fresh dir under the shim,
// maintaining the acknowledged model as it goes. It stops at the first
// error (the device is dead past the crash boundary) and returns the
// acked state plus the op in flight when the crash hit (nil if none).
func runCrashWorkload(t *testing.T, dir string, shim spill.Shim, ops []crashOp) (acked map[string][]byte, inflight *crashOp) {
	t.Helper()
	d, _, err := spill.Open(spill.Options{Dir: dir, SegmentBytes: matrixSeg, Shim: shim})
	if err != nil {
		t.Fatalf("open under shim: %v", err)
	}
	defer d.Close()
	acked = map[string][]byte{}
	for i := range ops {
		op := ops[i]
		if op.delete {
			err = d.Delete(op.key)
		} else {
			err = d.Put(op.key, op.val)
		}
		if err != nil {
			return acked, &ops[i]
		}
		if op.delete {
			delete(acked, string(op.key))
		} else {
			acked[string(op.key)] = op.val
		}
	}
	return acked, nil
}

// verifyRecovery opens the crashed dir (recovering it) and asserts the
// durability contract: every acknowledged write survives with its exact
// value, the in-flight op is either fully absent or fully applied, and
// nothing else is visible.
func verifyRecovery(t *testing.T, k int, dir string, acked map[string][]byte, inflight *crashOp) *spill.RecoveryReport {
	t.Helper()
	d, rep, err := spill.Open(spill.Options{Dir: dir})
	if err != nil {
		t.Fatalf("boundary %d: recovery failed: %v", k, err)
	}
	defer d.Close()
	// The in-flight op may legally have reached the platter before the
	// crash (e.g. crash landed on its fsync): complete-but-unacked is
	// allowed, half-visible is not.
	expected := len(acked)
	if inflight != nil {
		ks := string(inflight.key)
		v, ok, err := d.Get(inflight.key)
		if err != nil {
			t.Fatalf("boundary %d: in-flight key unreadable: %v", k, err)
		}
		old, hadOld := acked[ks]
		switch {
		case inflight.delete:
			if ok && !bytes.Equal(v, old) {
				t.Fatalf("boundary %d: in-flight delete left %q (old %q)", k, v, old)
			}
			if !ok {
				expected-- // tombstone reached the platter before the crash
			}
		case !ok:
			if hadOld {
				t.Fatalf("boundary %d: in-flight op erased acked value of %x", k, ks)
			}
		case bytes.Equal(v, inflight.val):
			if !hadOld {
				expected++ // fully-applied unacked put of a fresh key
			}
		case hadOld && bytes.Equal(v, old):
			// old value intact
		default:
			t.Fatalf("boundary %d: in-flight key %x half-visible: %q (old %q, new %q)",
				k, ks, v, old, inflight.val)
		}
	}
	for ks, want := range acked {
		if inflight != nil && ks == string(inflight.key) {
			continue // judged above, either old or new complete value
		}
		v, ok, err := d.Get([]byte(ks))
		if err != nil {
			t.Fatalf("boundary %d: acked key %x unreadable after recovery: %v", k, ks, err)
		}
		if !ok {
			t.Fatalf("boundary %d: acknowledged write of %x lost (report %s)", k, ks, rep)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("boundary %d: acked key %x = %q, want %q", k, ks, v, want)
		}
	}
	if rep.LiveKeys != expected {
		t.Fatalf("boundary %d: %d live keys after recovery, want %d (report %s)", k, rep.LiveKeys, expected, rep)
	}
	return rep
}

// matrixBoundaries probes the healthy workload for its total boundary
// count, optionally bounded (strided) by SPILL_CRASH_BOUNDARIES for the
// make crash-matrix smoke.
func matrixBoundaries(t *testing.T, ops []crashOp) []int {
	t.Helper()
	probe := fault.NewDiskInjector(fault.NeverCrash())
	acked, inflight := runCrashWorkload(t, t.TempDir(), probe, ops)
	if inflight != nil || len(acked) == 0 {
		t.Fatalf("probe run failed: inflight=%v acked=%d", inflight, len(acked))
	}
	total := probe.Boundaries()
	if total < matrixOps {
		t.Fatalf("suspiciously few boundaries: %d", total)
	}
	limit := total
	if s := os.Getenv("SPILL_CRASH_BOUNDARIES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SPILL_CRASH_BOUNDARIES=%q", s)
		}
		if n < limit {
			limit = n
		}
	}
	ks := make([]int, 0, limit)
	for i := 0; i < limit; i++ {
		ks = append(ks, i*total/limit) // stride to cover the whole run
	}
	return ks
}

// TestCrashMatrix replays the same seeded workload, crashing at every
// write/flush boundary (with a varying torn-write length), recovering,
// and asserting that no acknowledged write is lost and no
// unacknowledged write is half-visible.
func TestCrashMatrix(t *testing.T) {
	ops := crashWorkload(matrixSeed, matrixOps)
	boundaries := matrixBoundaries(t, ops)
	root := t.TempDir()
	for _, k := range boundaries {
		dir := filepath.Join(root, fmt.Sprintf("b%04d", k))
		shim := fault.NewDiskInjector(fault.DiskFault{
			CrashAtBoundary: k,
			TornBytes:       k % 29, // sweep torn-prefix lengths across the matrix
			FlipWrite:       -1,
		})
		acked, inflight := runCrashWorkload(t, dir, shim, ops)
		if !shim.Crashed() {
			t.Fatalf("boundary %d never reached (total %d)", k, shim.Boundaries())
		}
		verifyRecovery(t, k, dir, acked, inflight)
		os.RemoveAll(dir) // keep the matrix's disk footprint flat
	}
}

// TestBitFlipQuarantined injects silent single-bit corruption into a
// mid-run write, completes the workload healthy, and asserts fsck
// detects it via checksums and recovery quarantines without collateral
// damage: every key resolves to a complete, previously-acknowledged
// value (or is absent) — never a mangled one.
func TestBitFlipQuarantined(t *testing.T) {
	ops := crashWorkload(matrixSeed, matrixOps)
	for _, flip := range []int{3, 17, 40} {
		dir := t.TempDir()
		shim := fault.NewDiskInjector(fault.DiskFault{
			CrashAtBoundary: -1,
			FlipWrite:       flip,
			FlipByte:        9, // lands in seq/length bytes for records, body for hints
			FlipBit:         3,
		})
		// history holds every value each key ever acknowledged.
		history := map[string][][]byte{}
		d, _, err := spill.Open(spill.Options{Dir: dir, SegmentBytes: matrixSeg, Shim: shim})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if op.delete {
				if err := d.Delete(op.key); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := d.Put(op.key, op.val); err != nil {
				t.Fatal(err)
			}
			history[string(op.key)] = append(history[string(op.key)], op.val)
		}
		d.Close()

		rep, err := spill.Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		// The flip may land in a hint file (which only degrades recovery
		// speed); flips inside a segment must be detected.
		d2, rep2, err := spill.Open(spill.Options{Dir: dir})
		if err != nil {
			t.Fatalf("flip %d: recovery failed: %v", flip, err)
		}
		// The flip landed either in a record (the full-scan fsck must
		// quarantine it) or in a hint blob (fsck sees clean segments but
		// one fewer valid hint). It must never vanish entirely.
		if rep.Clean() && rep.HintLoads == rep.Segments-1 {
			t.Fatalf("flip %d went undetected: fsck=%s open=%s", flip, rep, rep2)
		}
		for ks, vs := range history {
			v, ok, err := d2.Get([]byte(ks))
			if err != nil {
				t.Fatalf("flip %d: key %x unreadable: %v", flip, ks, err)
			}
			if !ok {
				continue // quarantined or deleted — acceptable for corruption
			}
			legal := false
			for _, h := range vs {
				if bytes.Equal(v, h) {
					legal = true
					break
				}
			}
			if !legal {
				t.Fatalf("flip %d: key %x recovered to a never-acknowledged value %q", flip, ks, v)
			}
		}
		d2.Close()
	}
}

// matrixRow renders one boundary's recovery outcome as a table line:
// the recovered keydir fingerprint plus the fsck counters. Everything
// in it must be a pure function of (seed, boundary).
func matrixRow(t *testing.T, k int, ops []crashOp, root string) string {
	dir := filepath.Join(root, fmt.Sprintf("row%04d", k))
	shim := fault.NewDiskInjector(fault.DiskFault{CrashAtBoundary: k, TornBytes: k % 29, FlipWrite: -1})
	acked, _ := runCrashWorkload(t, dir, shim, ops)
	d, rep, err := spill.Open(spill.Options{Dir: dir})
	if err != nil {
		t.Errorf("boundary %d: %v", k, err)
		return ""
	}
	defer d.Close()
	defer os.RemoveAll(dir)
	sum := sha256.Sum256(d.KeydirDump())
	return fmt.Sprintf("k=%03d acked=%02d live=%02d scanned=%02d torn=%03d quarantined=%d keydir=%x",
		k, len(acked), rep.LiveKeys, rep.RecordsScanned, rep.TornBytesTruncated, rep.QuarantinedRecords, sum[:8])
}

// TestRecoveryDeterministic pins the recovery-determinism contract:
// same seed + same crash boundary ⇒ byte-identical recovered keydir and
// byte-identical result tables, at any parallelism.
func TestRecoveryDeterministic(t *testing.T) {
	ops := crashWorkload(matrixSeed, matrixOps)
	boundaries := []int{0, 7, 19, 33, 51, 64, 77, 90}
	table := func(workers int) string {
		rows := make([]string, len(boundaries))
		root := t.TempDir()
		par.ForEach(len(boundaries), workers, func(i int) {
			rows[i] = matrixRow(t, boundaries[i], ops, root)
		})
		var b bytes.Buffer
		for _, r := range rows {
			fmt.Fprintln(&b, r)
		}
		return b.String()
	}
	serial := table(1)
	if again := table(1); again != serial {
		t.Fatalf("recovery not deterministic across reruns:\n%s\nvs\n%s", serial, again)
	}
	if wide := table(8); wide != serial {
		t.Fatalf("recovery table differs at parallel=8:\n%s\nvs\n%s", serial, wide)
	}
}
