package spill

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// RecoveryReport describes one recovery or fsck pass over a spill
// directory. All counts are deterministic functions of the on-disk
// bytes; DurationNs is wall clock and feeds metrics only — keep it out
// of anything golden-tested.
type RecoveryReport struct {
	Segments           int    `json:"segments"`
	HintLoads          int    `json:"hint_loads"`           // sealed segments recovered via a valid hint
	RecordsScanned     int    `json:"records_scanned"`      // records decoded from segment scans
	HintEntries        int    `json:"hint_entries"`         // keydir entries loaded from hints
	LiveKeys           int    `json:"live_keys"`            // keydir size after recovery
	TornBytesTruncated int64  `json:"torn_bytes_truncated"` // torn tail bytes removed (or flagged by Fsck)
	QuarantinedRecords int    `json:"quarantined_records"`  // corrupt ranges skipped by resync
	QuarantinedBytes   int64  `json:"quarantined_bytes"`
	MaxSeq             uint64 `json:"max_seq"`
	DurationNs         int64  `json:"duration_ns"`
}

// Clean reports whether the pass found nothing to repair.
func (r *RecoveryReport) Clean() bool {
	return r.TornBytesTruncated == 0 && r.QuarantinedRecords == 0
}

// String renders the report's deterministic fields.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("segments=%d hints=%d scanned=%d live=%d torn_bytes=%d quarantined=%d(%dB) max_seq=%d",
		r.Segments, r.HintLoads, r.RecordsScanned, r.LiveKeys,
		r.TornBytesTruncated, r.QuarantinedRecords, r.QuarantinedBytes, r.MaxSeq)
}

// QuarantineDir is the subdirectory recovery copies corrupt ranges into.
const QuarantineDir = "quarantine"

// recover rebuilds the keydir from the directory's segments, repairing
// as it goes (truncating torn tails, quarantining corrupt ranges,
// rebuilding missing hints is deliberately not done — hints regenerate
// at the next rotation). It leaves d.active open on the last segment.
func (d *Dir) recover() (*RecoveryReport, error) {
	start := time.Now()
	rep := &RecoveryReport{}
	ids, err := segmentIDs(d.opts.Dir)
	if err != nil {
		return nil, err
	}
	d.tombs = map[string]hintEntry{}
	if len(ids) == 0 {
		// Fresh tier: one empty active segment.
		d.activeID = 1
		f, err := os.OpenFile(d.segPath(1), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("spill: %w", err)
		}
		d.active = f
		rep.Segments = 1
		d.stats.Segments = 1
		rep.DurationNs = time.Since(start).Nanoseconds()
		return rep, nil
	}
	rep.Segments = len(ids)
	for i, id := range ids {
		last := i == len(ids)-1
		if !last {
			if hes, ok := loadHint(d.hintPath(id)); ok {
				rep.HintLoads++
				rep.HintEntries += len(hes)
				for _, he := range hes {
					// size 0 marks a tombstone carried by the hint.
					d.applyEntry(he.key, entry{seg: id, off: he.off, size: he.size, seq: he.seq}, he.size == 0, rep)
				}
				continue
			}
		}
		if last {
			// Scan tombstones of the segment staying active land in
			// d.tombs so its eventual hint carries them.
			d.tombs = map[string]hintEntry{}
		}
		size, err := d.scanSegment(id, last, true, rep)
		if err != nil {
			return nil, err
		}
		if last {
			f, err := os.OpenFile(d.segPath(id), os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("spill: %w", err)
			}
			d.active = f
			d.activeID = id
			d.activeSize = size
		}
	}
	d.seq = rep.MaxSeq
	rep.LiveKeys = len(d.keydir)
	d.stats.Segments = len(ids)
	rep.DurationNs = time.Since(start).Nanoseconds()
	return rep, nil
}

// applyEntry folds one record reference into the keydir, newest seq
// winning (scan order already goes oldest→newest; the seq comparison
// makes the merge order-independent and is what hint+scan mixes rely
// on).
func (d *Dir) applyEntry(key []byte, e entry, tombstone bool, rep *RecoveryReport) {
	if e.seq > rep.MaxSeq {
		rep.MaxSeq = e.seq
	}
	if old, ok := d.keydir[string(key)]; ok && old.seq >= e.seq {
		return
	}
	if tombstone {
		delete(d.keydir, string(key))
		if d.tombs != nil {
			d.tombs[string(key)] = hintEntry{key: append([]byte(nil), key...), off: e.off, seq: e.seq}
		}
		return
	}
	d.keydir[string(key)] = e
}

// scanSegment decodes segment id record by record, folding live records
// into the keydir. With repair=true it truncates torn tails and copies
// corrupt ranges into the quarantine directory; with repair=false (the
// read-only Fsck path) it only counts them. Returns the valid prefix
// length.
func (d *Dir) scanSegment(id uint32, last, repair bool, rep *RecoveryReport) (int64, error) {
	path := d.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("spill: %w", err)
	}
	validEnd, torn, err := d.scanBytes(data, id, last, repair, rep)
	if err != nil {
		return 0, err
	}
	if repair && torn > 0 {
		if err := os.Truncate(path, validEnd); err != nil {
			return 0, fmt.Errorf("spill: truncating torn tail of %s: %w", path, err)
		}
	}
	return validEnd, nil
}

// scanBytes is the scan core. It returns the offset the segment should
// end at (everything past it is torn) and the torn byte count.
func (d *Dir) scanBytes(data []byte, id uint32, last, repair bool, rep *RecoveryReport) (validEnd int64, torn int64, err error) {
	pos := 0
	for pos < len(data) {
		r, n, derr := DecodeRecord(data[pos:])
		if derr == nil {
			d.applyEntry(r.Key, entry{seg: id, off: int64(pos), size: uint32(n), seq: r.Seq}, r.Tombstone, rep)
			rep.RecordsScanned++
			pos += n
			continue
		}
		// Resync: find the next offset that decodes cleanly; the skipped
		// range is quarantined. If nothing decodes through EOF, the tail
		// is torn (truncate on the last segment) unless the failure here
		// was corruption of a complete record, which is quarantined too.
		next := resync(data, pos+1)
		if next < 0 {
			if derr == ErrTruncated {
				torn = int64(len(data) - pos)
				rep.TornBytesTruncated += torn
				return int64(pos), torn, nil
			}
			// Complete-but-corrupt tail: quarantine it, then cut it off
			// the last segment so appends don't extend garbage.
			if qerr := d.quarantine(data[pos:], id, pos, repair, rep); qerr != nil {
				return 0, 0, qerr
			}
			if last {
				torn = int64(len(data) - pos)
				return int64(pos), torn, nil
			}
			return int64(len(data)), 0, nil
		}
		if qerr := d.quarantine(data[pos:next], id, pos, repair, rep); qerr != nil {
			return 0, 0, qerr
		}
		pos = next
	}
	return int64(len(data)), 0, nil
}

// resync scans forward from pos for the next offset that decodes as a
// valid record (magic + sane lengths + checksum; the CRC makes a false
// positive vanishingly unlikely). Returns -1 when none exists.
func resync(data []byte, pos int) int {
	for ; pos+1 < len(data); pos++ {
		if data[pos] != magic0 || data[pos+1] != magic1 {
			continue
		}
		if _, _, err := DecodeRecord(data[pos:]); err == nil {
			return pos
		}
	}
	return -1
}

// quarantine copies a corrupt byte range aside (repair mode) and counts
// it. The file name is deterministic — <segment>-<offset>.bad — so
// re-running recovery over a still-corrupt directory is idempotent.
func (d *Dir) quarantine(bad []byte, id uint32, off int, repair bool, rep *RecoveryReport) error {
	rep.QuarantinedRecords++
	rep.QuarantinedBytes += int64(len(bad))
	if !repair {
		return nil
	}
	qdir := filepath.Join(d.opts.Dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	name := filepath.Join(qdir, fmt.Sprintf("%08d-%d.bad", id, off))
	if err := os.WriteFile(name, bad, 0o644); err != nil {
		return fmt.Errorf("spill: quarantining %s: %w", name, err)
	}
	return nil
}

// Fsck verifies the directory read-only: every segment is fully
// scanned and checksum-verified (hints are validated but never trusted
// in place of the scan), and the report counts what a repairing Open
// would truncate or quarantine. Nothing on disk is modified.
func Fsck(dir string) (*RecoveryReport, error) {
	start := time.Now()
	d := &Dir{opts: Options{Dir: dir}, keydir: map[string]entry{}}
	d.opts.fill()
	rep := &RecoveryReport{}
	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	rep.Segments = len(ids)
	for i, id := range ids {
		last := i == len(ids)-1
		if !last {
			if hes, ok := loadHint(d.hintPath(id)); ok {
				rep.HintLoads++
				rep.HintEntries += len(hes)
			}
		}
		if _, err := d.scanSegment(id, last, false, rep); err != nil {
			return nil, err
		}
	}
	rep.LiveKeys = len(d.keydir)
	rep.DurationNs = time.Since(start).Nanoseconds()
	return rep, nil
}

// --- hint files ---
//
// A hint file is the sealed segment's live keydir slice, written as one
// checksummed blob so recovery can skip the full scan:
//
//	[0:4)  magic "SPHT"
//	[4:8)  entry count
//	[8:)   entries: seq u64 | off i64 | size u32 | keyLen u32 | key
//	[-4:)  CRC32C over bytes [0:len-4)
//
// Any validation failure simply falls back to scanning the segment.

var hintMagic = [4]byte{'S', 'P', 'H', 'T'}

type hintEntry struct {
	key  []byte
	off  int64
	size uint32
	seq  uint64
}

func encodeHint(hes []hintEntry) []byte {
	b := make([]byte, 8, 8+len(hes)*32)
	copy(b, hintMagic[:])
	binary.LittleEndian.PutUint32(b[4:], uint32(len(hes)))
	for _, he := range hes {
		var tmp [24]byte
		binary.LittleEndian.PutUint64(tmp[0:], he.seq)
		binary.LittleEndian.PutUint64(tmp[8:], uint64(he.off))
		binary.LittleEndian.PutUint32(tmp[16:], he.size)
		binary.LittleEndian.PutUint32(tmp[20:], uint32(len(he.key)))
		b = append(b, tmp[:]...)
		b = append(b, he.key...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(b, castagnoli))
	return append(b, crc[:]...)
}

// loadHint parses and validates a hint file; ok=false on any problem.
func loadHint(path string) ([]hintEntry, bool) {
	b, err := os.ReadFile(path)
	if err != nil || len(b) < 12 || [4]byte(b[:4]) != hintMagic {
		return nil, false
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, false
	}
	count := binary.LittleEndian.Uint32(b[4:])
	if int64(count) > int64(len(body))/24 {
		return nil, false
	}
	pos := 8
	hes := make([]hintEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		if pos+24 > len(body) {
			return nil, false
		}
		he := hintEntry{
			seq:  binary.LittleEndian.Uint64(body[pos:]),
			off:  int64(binary.LittleEndian.Uint64(body[pos+8:])),
			size: binary.LittleEndian.Uint32(body[pos+16:]),
		}
		kl := int(binary.LittleEndian.Uint32(body[pos+20:]))
		pos += 24
		if kl <= 0 || kl > MaxKeyLen || pos+kl > len(body) {
			return nil, false
		}
		he.key = append([]byte(nil), body[pos:pos+kl]...)
		pos += kl
		hes = append(hes, he)
	}
	if pos != len(body) {
		return nil, false
	}
	return hes, true
}
