// Package spill is the durable spill tier behind the KeyDB-FLASH
// configurations: a Bitcask-style append-only log of CRC32C-framed
// records with an in-memory keydir, segment rotation, hint files for
// fast recovery, and a recovery fsck that truncates torn tails and
// quarantines corrupt records.
//
// Until this package, the SSD tier was purely analytic (internal/lsm
// cost model + latency accounting in internal/kvstore): nothing was
// ever written, so crashes, torn writes, and bit rot were unmodeled
// failure modes. Here every acknowledged write is framed, checksummed,
// and (by default) fsynced, and recovery rebuilds the keydir
// deterministically from the log — the bridge between the virtual-time
// simulation and a real durable service.
//
// All physical writes and fsyncs are routed through an optional Shim,
// which is how internal/fault's DiskInjector kills the tier at every
// write/flush boundary, tears the final write, or flips a bit — the
// crash matrix replays a seeded workload, crashes at boundary k for
// every k, recovers, and asserts that no acknowledged write is lost and
// no unacknowledged write is half-visible.
package spill

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record framing, little-endian:
//
//	[0:2)   magic (0x7C, 0xB1)
//	[2:6)   CRC32C over bytes [6:total)
//	[6:7)   flags (bit0 = tombstone)
//	[7:15)  seq — monotonic log sequence number
//	[15:19) key length
//	[19:23) value length
//	[23:)   key bytes, then value bytes
//
// The leading magic lets fsck resynchronize after a corrupt record: it
// scans forward for the next offset that decodes with a valid checksum
// and quarantines the skipped range. The CRC covers everything after
// itself, so a single flipped bit anywhere in flags/seq/lengths/key/
// value is detected.
const (
	magic0, magic1 = 0x7C, 0xB1
	headerSize     = 23

	// Length sanity caps: a corrupted length field must not drive a
	// multi-gigabyte allocation during recovery.
	MaxKeyLen = 64 << 10
	MaxValLen = 16 << 20

	flagTombstone = 0x01
)

// Decode/scan error classes. ErrTruncated means the buffer ends before
// the record does (a torn tail if nothing valid follows); the others all
// mean corruption at this offset.
var (
	ErrTruncated = errors.New("spill: record truncated")
	ErrBadMagic  = errors.New("spill: bad record magic")
	ErrCorrupt   = errors.New("spill: corrupt record header")
	ErrChecksum  = errors.New("spill: record checksum mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded log entry.
type Record struct {
	Seq       uint64
	Key       []byte
	Val       []byte
	Tombstone bool
}

// EncodedSize is the framed size of a record with the given key and
// value lengths.
func EncodedSize(keyLen, valLen int) int { return headerSize + keyLen + valLen }

// AppendRecord appends the framed encoding of r to dst and returns the
// extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	total := EncodedSize(len(r.Key), len(r.Val))
	dst = append(dst, make([]byte, total)...)
	b := dst[start:]
	b[0], b[1] = magic0, magic1
	var flags byte
	if r.Tombstone {
		flags |= flagTombstone
	}
	b[6] = flags
	binary.LittleEndian.PutUint64(b[7:], r.Seq)
	binary.LittleEndian.PutUint32(b[15:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(b[19:], uint32(len(r.Val)))
	copy(b[headerSize:], r.Key)
	copy(b[headerSize+len(r.Key):], r.Val)
	binary.LittleEndian.PutUint32(b[2:], crc32.Checksum(b[6:total], castagnoli))
	return dst
}

// EncodeRecord returns the framed encoding of r.
func EncodeRecord(r Record) []byte { return AppendRecord(nil, r) }

// DecodeRecord decodes the record starting at data[0]. On success it
// returns the record (key and value aliasing data) and the framed size
// consumed. The error classes are documented above; callers decide
// whether a failure is a torn tail or corruption to resync past.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < 2 {
		return Record{}, 0, ErrTruncated
	}
	if data[0] != magic0 || data[1] != magic1 {
		return Record{}, 0, ErrBadMagic
	}
	if len(data) < headerSize {
		return Record{}, 0, ErrTruncated
	}
	keyLen := binary.LittleEndian.Uint32(data[15:])
	valLen := binary.LittleEndian.Uint32(data[19:])
	if keyLen > MaxKeyLen || valLen > MaxValLen {
		return Record{}, 0, ErrCorrupt
	}
	total := EncodedSize(int(keyLen), int(valLen))
	if len(data) < total {
		return Record{}, 0, ErrTruncated
	}
	if crc32.Checksum(data[6:total], castagnoli) != binary.LittleEndian.Uint32(data[2:]) {
		return Record{}, 0, ErrChecksum
	}
	r := Record{
		Seq:       binary.LittleEndian.Uint64(data[7:]),
		Key:       data[headerSize : headerSize+keyLen],
		Val:       data[headerSize+keyLen : total],
		Tombstone: data[6]&flagTombstone != 0,
	}
	return r, total, nil
}
