// Package analytics models the paper's Spark SQL experiments (§4.2): a
// TPC-H-style analytics engine with executors, shuffle stages, memory-
// pressure spill to SSD, and the cluster configurations of Fig. 7 —
// 3 servers on pure MMEM vs 2 servers with CXL interleaving vs restricted
// memory with SSD spill vs Hot-Promote.
//
// A query is a sequence of phases (scan, shuffle write, shuffle read/join)
// with streaming bytes, latency-bound random accesses (hash build/probe),
// network traffic, and CPU time. Phases execute under an epoch loop: per
// epoch, each executor group's demands are resolved against the shared
// memory devices (memsim closed-loop), SSD, and NIC; a phase ends when
// every group finishes (a stage barrier, like Spark's) — which is why a
// slow CXL-bound straggler group stretches the whole query.
package analytics

import (
	"fmt"

	"cxlsim/internal/memsim"
	"cxlsim/internal/topology"
)

// Phase is one stage of a query, with cluster-wide totals.
type Phase struct {
	Name           string
	StreamBytes    float64 // sequentially streamed bytes (scan/serialize)
	RandomAccesses float64 // latency-bound accesses (hash probe/build)
	NetworkBytes   float64 // cross-server shuffle transfer
	Shuffle        bool    // counts toward Fig. 7(b) shuffle share
	Write          bool    // shuffle write (solid bar) vs read (hollow)
}

// QueryProfile models one TPC-H query. Byte figures are cluster totals
// for the paper's 7 TB dataset scale factor.
type QueryProfile struct {
	Name string
	// ComputeNs is per-executor CPU time not overlapped with memory.
	ComputeNs float64
	Phases    []Phase
}

// TPCHQueries returns profiles of the four shuffle-intensive queries the
// paper selects (Q5, Q7, Q8, Q9), ordered as in Fig. 7. Shuffle volumes
// follow their relative intensity in shuffle-heavy TPC-H studies: Q9
// (parts/supplier/lineitem multi-join) shuffles by far the most, Q5 the
// least of the four.
func TPCHQueries() []QueryProfile {
	const GB = 1e9
	mk := func(name string, scanGB, shuffleGB, randomPerMB, computeS float64) QueryProfile {
		shuffleBytes := shuffleGB * GB
		return QueryProfile{
			Name:      name,
			ComputeNs: computeS * 1e9,
			Phases: []Phase{
				{Name: "scan", StreamBytes: scanGB * GB},
				{
					Name: "shuffle-write", Shuffle: true, Write: true,
					StreamBytes:    shuffleBytes,
					RandomAccesses: shuffleBytes / 1e6 * randomPerMB * 0.4,
				},
				{
					Name: "shuffle-read", Shuffle: true,
					StreamBytes:    shuffleBytes,
					RandomAccesses: shuffleBytes / 1e6 * randomPerMB,
					NetworkBytes:   shuffleBytes * 0.25, // cross-server share
				},
			},
		}
	}
	// randomPerMB reflects per-row deserialization + hash-probe pointer
	// chasing (≈150 B rows, a few dependent accesses each); Q9's
	// multi-join probes the most per shuffled megabyte.
	return []QueryProfile{
		mk("Q5", 900, 450, 9000, 14),
		mk("Q7", 900, 700, 10000, 12),
		mk("Q8", 1100, 900, 11000, 10),
		mk("Q9", 1400, 1600, 12000, 8),
	}
}

// ClusterConfig is one Fig. 7 deployment.
type ClusterConfig struct {
	Name               string
	Servers            int
	ExecutorsPerServer int
	// MMEMExecFrac is the fraction of executors whose 8 GB heap is bound
	// to main memory; the rest are bound to CXL (the paper distributes
	// executors across memory kinds to realize the N:M ratios).
	MMEMExecFrac float64
	// SpillFrac is the fraction of shuffle data that exceeds executor
	// memory and spills to SSD (the paper's 80%/60% memory restriction
	// spills ≈320 GB and ≈500 GB of the 1.2 TB heap).
	SpillFrac float64
	// HotPromote runs the hot-page-selection daemon instead of static
	// placement: placement drifts toward MMEM but migration churn taxes
	// the memory system continuously (§4.2.2).
	HotPromote bool
}

// Fig7Configs returns the five cluster configurations of Fig. 7.
func Fig7Configs() []ClusterConfig {
	return []ClusterConfig{
		{Name: "MMEM", Servers: 3, ExecutorsPerServer: 50, MMEMExecFrac: 1},
		{Name: "3:1", Servers: 2, ExecutorsPerServer: 75, MMEMExecFrac: 0.75},
		{Name: "1:1", Servers: 2, ExecutorsPerServer: 75, MMEMExecFrac: 0.5},
		{Name: "1:3", Servers: 2, ExecutorsPerServer: 75, MMEMExecFrac: 0.25},
		{Name: "MMEM-SSD-0.8", Servers: 3, ExecutorsPerServer: 50, MMEMExecFrac: 1, SpillFrac: 0.5},
		{Name: "MMEM-SSD-0.6", Servers: 3, ExecutorsPerServer: 50, MMEMExecFrac: 1, SpillFrac: 0.85},
		{Name: "Hot-Promote", Servers: 2, ExecutorsPerServer: 75, MMEMExecFrac: 0.5, HotPromote: true},
	}
}

// QueryResult is one (query, config) cell of Fig. 7.
type QueryResult struct {
	Query        string
	Config       string
	ExecTimeNs   float64
	ShuffleNs    float64 // time in shuffle phases
	ShuffleWrite float64 // fraction of exec time in shuffle writes
	ShuffleRead  float64 // fraction of exec time in shuffle reads
}

// ShufflePct is shuffle time as a fraction of execution time (Fig. 7(b)).
func (r QueryResult) ShufflePct() float64 {
	if r.ExecTimeNs == 0 {
		return 0
	}
	return r.ShuffleNs / r.ExecTimeNs
}

// Engine executes queries on one representative server of a cluster
// (servers are symmetric; per-server work = cluster work / Servers).
type Engine struct {
	cfg     ClusterConfig
	machine *topology.Machine

	mmemPl memsim.Placement
	cxlPl  memsim.Placement
	ssdPl  memsim.Placement

	// Hot-Promote modeling (see Run): effective fraction of the CXL
	// group's accesses served from MMEM after promotion, and the
	// sustained migration bandwidth the daemon burns.
	promoteShare float64
	churnGBps    float64
}

// NICGBps is the per-server network bandwidth (100 Gbps links, §2.4).
const NICGBps = 12.5

const (
	streamMLP   = 16
	accessBytes = 64
	epochNs     = 100e6 // 100 ms epochs
)

// NewEngine builds the engine for one configuration.
func NewEngine(cfg ClusterConfig) (*Engine, error) {
	if cfg.Servers < 1 || cfg.ExecutorsPerServer < 1 {
		return nil, fmt.Errorf("analytics: invalid cluster %+v", cfg)
	}
	if cfg.MMEMExecFrac < 0 || cfg.MMEMExecFrac > 1 {
		return nil, fmt.Errorf("analytics: MMEMExecFrac %v outside [0,1]", cfg.MMEMExecFrac)
	}
	m := topology.Testbed()
	e := &Engine{cfg: cfg, machine: m}

	// Executors spread across both sockets; DRAM accesses stay local.
	d0 := m.PathFrom(0, m.DRAMNodes(0)[0])
	d1 := m.PathFrom(1, m.DRAMNodes(1)[0])
	e.mmemPl = memsim.Placement{{Path: d0, Weight: 0.5}, {Path: d1, Weight: 0.5}}

	// The kernel's N:M interleave stripes pages onto the CXL nodes for
	// every executor, but executors live on both sockets and both A1000s
	// hang off socket 0 — so half of all CXL traffic crosses the UPI and
	// hits the Remote Snoop Filter clamp (§3.2), exactly the hazard §3.4
	// warns about. This cross-socket share is what blows interleaved
	// Spark up at high CXL ratios (Fig. 7's 9.8×).
	c0 := m.PathFrom(0, m.CXLNodes()[0])
	c1 := m.PathFrom(0, m.CXLNodes()[1])
	c0r := m.PathFrom(1, m.CXLNodes()[0])
	c1r := m.PathFrom(1, m.CXLNodes()[1])
	e.cxlPl = memsim.Placement{
		{Path: c0, Weight: 0.25}, {Path: c1, Weight: 0.25},
		{Path: c0r, Weight: 0.25}, {Path: c1r, Weight: 0.25},
	}

	e.ssdPl = memsim.SinglePath(m.SSDPath())

	if cfg.HotPromote {
		// §4.2.2: shuffle data has no stable hot set, so the daemon
		// keeps promoting actively-written partitions — placement
		// drifts toward MMEM (better than static 1:1) while the
		// migration engine sustains churn near its rate limit. The
		// tiering package demonstrates exactly this regime on
		// low-locality access (TestHotPromoteThrashesOnUniform); here
		// we charge its steady state: half the CXL group's accesses
		// get promoted under them, and the daemon burns its ~12.8 GB/s
		// budget continuously.
		e.promoteShare = 0.5
		e.churnGBps = 12.8
	}
	return e, nil
}

// placement composes the page-interleaved placement every executor sees:
// MMEMExecFrac of pages on local DRAM, the rest striped onto the CXL
// expanders (half reached cross-socket). Hot-Promote drift moves
// promoteShare of the CXL portion back to DRAM.
func (e *Engine) placement() memsim.Placement {
	mfrac := e.cfg.MMEMExecFrac
	cfrac := 1 - mfrac
	if e.promoteShare > 0 {
		mfrac += cfrac * e.promoteShare
		cfrac *= 1 - e.promoteShare
	}
	var pl memsim.Placement
	for _, wp := range e.mmemPl {
		pl = append(pl, memsim.WeightedPath{Path: wp.Path, Weight: wp.Weight * mfrac})
	}
	if cfrac > 0 {
		for _, wp := range e.cxlPl {
			pl = append(pl, memsim.WeightedPath{Path: wp.Path, Weight: wp.Weight * cfrac})
		}
	}
	return pl
}

// Run executes one query and returns its Fig. 7 measurements.
func (e *Engine) Run(q QueryProfile) QueryResult {
	res := QueryResult{Query: q.Name, Config: e.cfg.Name}
	for _, ph := range q.Phases {
		t := e.runPhase(ph)
		res.ExecTimeNs += t
		if ph.Shuffle {
			res.ShuffleNs += t
			if ph.Write {
				res.ShuffleWrite += t
			} else {
				res.ShuffleRead += t
			}
		}
	}
	res.ExecTimeNs += q.ComputeNs
	if res.ExecTimeNs > 0 {
		res.ShuffleWrite /= res.ExecTimeNs
		res.ShuffleRead /= res.ExecTimeNs
	}
	return res
}

// groupState tracks one executor group's remaining phase work. Records
// are processed in lockstep: each shuffled record is streamed AND probed,
// so the stream and random pools drain at the same fractional rate, paced
// by whichever is slower.
type groupState struct {
	pl          memsim.Placement
	execs       int
	frac        float64 // fraction of phase work remaining, 1 → 0
	streamTotal float64 // total bytes to stream
	randomTotal float64 // total latency-bound accesses
}

func (g *groupState) done() bool { return g.frac <= 0 }

// gcFrac is the share of executor time the JVM spends in garbage
// collection on an all-DRAM heap. Tracing GC is pure pointer chasing over
// the heap, so its cost scales with loaded memory latency — the term that
// lets interleaved Spark degrade well past the raw device-latency ratio
// (§4.2.2's worst cases).
const gcFrac = 0.08

// runPhase advances one phase to completion on the representative server
// and returns its duration in ns.
func (e *Engine) runPhase(ph Phase) float64 {
	perServer := 1 / float64(e.cfg.Servers)
	nExec := e.cfg.ExecutorsPerServer

	groups := []*groupState{{
		pl: e.placement(), execs: nExec, frac: 1,
		streamTotal: ph.StreamBytes * perServer,
		randomTotal: ph.RandomAccesses * perServer,
	}}
	// A group with no memory work is born done (network/compute-only
	// phases) — otherwise the epoch loop would wait on it forever.
	for _, g := range groups {
		if g.streamTotal <= 0 && g.randomTotal <= 0 {
			g.frac = 0
		}
	}
	dramLat := e.mmemPl.IdleLatency(memsim.Mix{ReadFrac: 0.8, Pattern: memsim.Random})

	// Spill traffic: written during shuffle writes, read back during
	// shuffle reads.
	ssdBytes := 0.0
	ssdMix := memsim.WriteOnly
	if ph.Shuffle && e.cfg.SpillFrac > 0 {
		ssdBytes = ph.StreamBytes * perServer * e.cfg.SpillFrac
		if !ph.Write {
			ssdMix = memsim.ReadOnly
		}
	}
	netBytes := ph.NetworkBytes * perServer

	elapsed := 0.0
	for iter := 0; ; iter++ {
		if iter > 1e6 {
			panic("analytics: phase failed to converge")
		}
		allDone := ssdBytes <= 0 && netBytes <= 0
		for _, g := range groups {
			if !g.done() {
				allDone = false
			}
		}
		if allDone {
			return elapsed
		}

		// Build this epoch's flows: one streaming and one random flow
		// per unfinished group, plus spill and churn.
		var flows []memsim.ClosedFlow
		type flowRef struct {
			g      *groupState
			random bool
		}
		var refs []flowRef
		for _, g := range groups {
			if g.done() {
				continue
			}
			if g.streamTotal > 0 {
				flows = append(flows, memsim.ClosedFlow{
					Placement: g.pl, Mix: memsim.Mix{ReadFrac: 0.6},
					Threads: g.execs, MLP: streamMLP, AccessBytes: accessBytes,
				})
				refs = append(refs, flowRef{g, false})
			}
			if g.randomTotal > 0 {
				flows = append(flows, memsim.ClosedFlow{
					Placement: g.pl, Mix: memsim.Mix{ReadFrac: 0.8, Pattern: memsim.Random},
					Threads: g.execs, MLP: 1, AccessBytes: accessBytes,
				})
				refs = append(refs, flowRef{g, true})
			}
		}
		if ssdBytes > 0 {
			flows = append(flows, memsim.ClosedFlow{
				Placement: e.ssdPl, Mix: ssdMix,
				Threads: nExec, MLP: 4, AccessBytes: 128 << 10, // 128 KB spill blocks
			})
			refs = append(refs, flowRef{nil, false})
		}
		if e.churnGBps > 0 {
			// Migration churn: constant-demand flows reading the slow
			// tier and writing the fast tier; they join the fixed point
			// so the application re-throttles around them.
			half := e.churnGBps / 2
			flows = append(flows,
				memsim.ClosedFlow{Placement: e.cxlPl, Mix: memsim.ReadOnly, FixedGBps: half},
				memsim.ClosedFlow{Placement: e.mmemPl, Mix: memsim.WriteOnly, FixedGBps: half},
			)
		}
		results, _ := memsim.SolveClosed(flows)

		// Advance state by one epoch: each group progresses by the
		// slower of its stream and probe rates (records are processed
		// in lockstep), stretched by GC whose pointer chasing scales
		// with the group's loaded random latency.
		progress := map[*groupState][2]float64{} // group → {streamRate, randLatency}
		for i, r := range refs {
			fr := results[i]
			if r.g == nil {
				ssdBytes -= fr.Achieved * epochNs
				continue
			}
			p := progress[r.g]
			if r.random {
				p[1] = fr.Latency
			} else {
				p[0] = fr.Achieved
			}
			progress[r.g] = p
		}
		for g, p := range progress {
			pFrac := 1.0
			if g.streamTotal > 0 && p[0] > 0 {
				if f := p[0] * epochNs / g.streamTotal; f < pFrac {
					pFrac = f
				}
			}
			if g.randomTotal > 0 && p[1] > 0 {
				rate := float64(g.execs) / p[1] // accesses/ns across the group
				if f := rate * epochNs / g.randomTotal; f < pFrac {
					pFrac = f
				}
			}
			if p[1] > dramLat {
				// GC stretch: collection work is serialized pointer
				// chasing, slowed by the same loaded latency.
				pFrac /= 1 + gcFrac*(p[1]/dramLat-1)
			}
			g.frac -= pFrac
		}
		if netBytes > 0 {
			netBytes -= NICGBps * epochNs
		}
		elapsed += epochNs
	}
}
