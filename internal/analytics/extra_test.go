package analytics

import (
	"testing"
)

// TestCustomQueryProfile: the engine accepts arbitrary profiles, not just
// the TPC-H four.
func TestCustomQueryProfile(t *testing.T) {
	e, err := NewEngine(ClusterConfig{Name: "MMEM", Servers: 3, ExecutorsPerServer: 50, MMEMExecFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := QueryProfile{
		Name:      "custom",
		ComputeNs: 5e9,
		Phases: []Phase{
			{Name: "scan", StreamBytes: 100e9},
			{Name: "sw", Shuffle: true, Write: true, StreamBytes: 50e9, RandomAccesses: 1e8},
		},
	}
	r := e.Run(q)
	if r.ExecTimeNs <= 5e9 {
		t.Fatalf("exec time %v should exceed compute time alone", r.ExecTimeNs)
	}
	if r.ShuffleRead != 0 {
		t.Fatal("no read phase → no read share")
	}
	if r.ShuffleWrite <= 0 {
		t.Fatal("write phase should register")
	}
}

// TestComputeOnlyQuery: a query with no memory work costs exactly its
// compute time.
func TestComputeOnlyQuery(t *testing.T) {
	e, err := NewEngine(ClusterConfig{Name: "MMEM", Servers: 1, ExecutorsPerServer: 1, MMEMExecFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := QueryProfile{Name: "cpu", ComputeNs: 7e9}
	r := e.Run(q)
	if r.ExecTimeNs != 7e9 {
		t.Fatalf("exec = %v, want exactly 7e9", r.ExecTimeNs)
	}
	if r.ShufflePct() != 0 {
		t.Fatal("no shuffle time expected")
	}
}

// TestNetworkOnlyPhaseTerminates: a phase with no memory work (pure
// shuffle transfer) must not hang the epoch loop.
func TestNetworkOnlyPhaseTerminates(t *testing.T) {
	e, err := NewEngine(ClusterConfig{Name: "MMEM", Servers: 2, ExecutorsPerServer: 10, MMEMExecFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := QueryProfile{
		Name:   "netonly",
		Phases: []Phase{{Name: "xfer", NetworkBytes: 50e9, Shuffle: true}},
	}
	r := e.Run(q)
	// 25 GB/server at 12.5 GB/s ⇒ 2 s, quantized to 100 ms epochs.
	if r.ExecTimeNs < 1.9e9 || r.ExecTimeNs > 2.2e9 {
		t.Fatalf("network-only exec = %v ns, want ≈2e9", r.ExecTimeNs)
	}
}

// TestMoreServersFinishFaster: the same cluster work over more servers
// completes sooner (per-server slice shrinks).
func TestMoreServersFinishFaster(t *testing.T) {
	q := TPCHQueries()[0]
	run := func(servers int) float64 {
		e, err := NewEngine(ClusterConfig{Name: "x", Servers: servers, ExecutorsPerServer: 50, MMEMExecFrac: 1})
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(q).ExecTimeNs
	}
	if t3, t6 := run(3), run(6); t6 >= t3 {
		t.Fatalf("6 servers (%v) should beat 3 servers (%v)", t6, t3)
	}
}

// TestSpillFractionMonotone: more spill means more execution time.
func TestSpillFractionMonotone(t *testing.T) {
	q := TPCHQueries()[3]
	prev := 0.0
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		e, err := NewEngine(ClusterConfig{Name: "x", Servers: 3, ExecutorsPerServer: 50, MMEMExecFrac: 1, SpillFrac: frac})
		if err != nil {
			t.Fatal(err)
		}
		tm := e.Run(q).ExecTimeNs
		if tm <= prev {
			t.Fatalf("spill %.2f exec %v not above previous %v", frac, tm, prev)
		}
		prev = tm
	}
}

// TestDegradedCXLWorsensInterleave: failure injection flows through the
// analytics engine too.
func TestDegradedCXLWorsensInterleave(t *testing.T) {
	cfg := ClusterConfig{Name: "1:1", Servers: 2, ExecutorsPerServer: 75, MMEMExecFrac: 0.5}
	q := TPCHQueries()[1]
	healthy, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hTime := healthy.Run(q).ExecTimeNs

	degraded, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range degraded.machine.CXLNodes() {
		n.Resource().Degrade(0.5, 1.5)
	}
	dTime := degraded.Run(q).ExecTimeNs
	if dTime <= hTime {
		t.Fatalf("degraded CXL exec %v should exceed healthy %v", dTime, hTime)
	}
}
