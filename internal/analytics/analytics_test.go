package analytics

import (
	"math"
	"testing"
)

// runAll executes every (config, query) cell once and caches results.
var fig7Cache map[string]map[string]QueryResult

func fig7(t *testing.T) map[string]map[string]QueryResult {
	t.Helper()
	if fig7Cache != nil {
		return fig7Cache
	}
	out := map[string]map[string]QueryResult{}
	for _, cfg := range Fig7Configs() {
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[cfg.Name] = map[string]QueryResult{}
		for _, q := range TPCHQueries() {
			out[cfg.Name][q.Name] = e.Run(q)
		}
	}
	fig7Cache = out
	return out
}

func norm(t *testing.T, res map[string]map[string]QueryResult, cfg, q string) float64 {
	t.Helper()
	base := res["MMEM"][q].ExecTimeNs
	if base == 0 {
		t.Fatalf("no MMEM baseline for %s", q)
	}
	return res[cfg][q].ExecTimeNs / base
}

func TestQueryProfiles(t *testing.T) {
	qs := TPCHQueries()
	if len(qs) != 4 {
		t.Fatalf("want 4 queries (Q5,Q7,Q8,Q9), got %d", len(qs))
	}
	names := []string{"Q5", "Q7", "Q8", "Q9"}
	for i, q := range qs {
		if q.Name != names[i] {
			t.Errorf("query %d = %s, want %s", i, q.Name, names[i])
		}
		if len(q.Phases) != 3 {
			t.Errorf("%s: want 3 phases", q.Name)
		}
	}
	// Q9 shuffles the most (the paper's most shuffle-intensive query).
	if qs[3].Phases[1].StreamBytes <= qs[0].Phases[1].StreamBytes {
		t.Error("Q9 should shuffle more than Q5")
	}
}

func TestFig7ConfigsShape(t *testing.T) {
	cfgs := Fig7Configs()
	if len(cfgs) != 7 {
		t.Fatalf("want 7 configurations, got %d", len(cfgs))
	}
	for _, c := range cfgs {
		total := c.Servers * c.ExecutorsPerServer
		if total != 150 {
			t.Errorf("%s: %d executors, want 150 (§4.2.1)", c.Name, total)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	bad := []ClusterConfig{
		{Servers: 0, ExecutorsPerServer: 1},
		{Servers: 1, ExecutorsPerServer: 0},
		{Servers: 1, ExecutorsPerServer: 1, MMEMExecFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// TestFig7aInterleaveRange: §4.2.2 — "a performance slowdown, ranging
// from 1.4x to 9.8x compared to the optimal MMEM-only scenario".
func TestFig7aInterleaveRange(t *testing.T) {
	res := fig7(t)
	min, max := math.Inf(1), 0.0
	for _, cfg := range []string{"3:1", "1:1", "1:3"} {
		for _, q := range []string{"Q5", "Q7", "Q8", "Q9"} {
			n := norm(t, res, cfg, q)
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
	}
	if min < 1.2 || min > 1.8 {
		t.Errorf("best interleave cell = %.2f×, want ≈1.4×", min)
	}
	if max < 7.5 || max > 12 {
		t.Errorf("worst interleave cell = %.2f×, want ≈9.8×", max)
	}
}

// TestFig7aMonotonicity: degradation grows with the CXL share and with
// shuffle intensity (Q5 → Q9).
func TestFig7aMonotonicity(t *testing.T) {
	res := fig7(t)
	queries := []string{"Q5", "Q7", "Q8", "Q9"}
	order := []string{"MMEM", "3:1", "1:1", "1:3"}
	for _, q := range queries {
		for i := 1; i < len(order); i++ {
			lo, hi := norm(t, res, order[i-1], q), norm(t, res, order[i], q)
			if hi <= lo {
				t.Errorf("%s: %s (%.2f) should be slower than %s (%.2f)", q, order[i], hi, order[i-1], lo)
			}
		}
	}
	for _, cfg := range []string{"3:1", "1:1", "1:3"} {
		for i := 1; i < len(queries); i++ {
			lo, hi := norm(t, res, cfg, queries[i-1]), norm(t, res, cfg, queries[i])
			if hi <= lo {
				t.Errorf("%s: %s (%.2f) should degrade more than %s (%.2f)", cfg, queries[i], hi, queries[i-1], lo)
			}
		}
	}
}

// TestFig7aInterleaveBeatsSpill: "even with this slowdown, the
// interleaving approach remains significantly faster than spilling data
// to SSDs" — each interleave ratio beats the spill config with the
// corresponding memory pressure.
func TestFig7aInterleaveBeatsSpill(t *testing.T) {
	res := fig7(t)
	for _, q := range []string{"Q5", "Q7", "Q8", "Q9"} {
		if norm(t, res, "1:3", q) >= norm(t, res, "MMEM-SSD-0.6", q) {
			t.Errorf("%s: 1:3 (%.2f) should beat MMEM-SSD-0.6 (%.2f)",
				q, norm(t, res, "1:3", q), norm(t, res, "MMEM-SSD-0.6", q))
		}
		if norm(t, res, "1:1", q) >= norm(t, res, "MMEM-SSD-0.8", q) {
			t.Errorf("%s: 1:1 (%.2f) should beat MMEM-SSD-0.8 (%.2f)",
				q, norm(t, res, "1:1", q), norm(t, res, "MMEM-SSD-0.8", q))
		}
	}
}

// TestFig7aHotPromote: §4.2.2 — Hot-Promote shows "a more than 34%
// slowdown compared to MMEM" on Spark, the opposite of its KeyDB result;
// promotion drift still beats static 1:1 placement.
func TestFig7aHotPromote(t *testing.T) {
	res := fig7(t)
	for _, q := range []string{"Q5", "Q7", "Q8", "Q9"} {
		n := norm(t, res, "Hot-Promote", q)
		if n < 1.34 {
			t.Errorf("%s: Hot-Promote %.2f×, paper reports >1.34×", q, n)
		}
		if n >= norm(t, res, "1:1", q) {
			t.Errorf("%s: Hot-Promote (%.2f) should still beat static 1:1 (%.2f)", q, n, norm(t, res, "1:1", q))
		}
	}
}

// TestFig7bShuffleShare: Fig. 7(b) — shuffling dominates execution as the
// data-spill problem intensifies; spill configs approach total
// shuffle-boundedness.
func TestFig7bShuffleShare(t *testing.T) {
	res := fig7(t)
	for _, q := range []string{"Q5", "Q7", "Q8", "Q9"} {
		mmem := res["MMEM"][q].ShufflePct()
		spill := res["MMEM-SSD-0.6"][q].ShufflePct()
		if spill <= mmem {
			t.Errorf("%s: spill shuffle share (%.2f) should exceed MMEM's (%.2f)", q, spill, mmem)
		}
		if spill < 0.8 {
			t.Errorf("%s: heavy spill should be shuffle-dominated, got %.2f", q, spill)
		}
		// Write + read components decompose the share.
		r := res["MMEM-SSD-0.6"][q]
		sum := r.ShuffleWrite + r.ShuffleRead
		if math.Abs(sum-r.ShufflePct()) > 1e-9 {
			t.Errorf("%s: shuffle components %.3f don't sum to share %.3f", q, sum, r.ShufflePct())
		}
	}
	// Q9 is the most shuffle-bound query in every configuration.
	for cfg := range res {
		if res[cfg]["Q9"].ShufflePct() <= res[cfg]["Q5"].ShufflePct() {
			t.Errorf("%s: Q9 shuffle share should exceed Q5's", cfg)
		}
	}
}

func TestShufflePctZeroSafe(t *testing.T) {
	if (QueryResult{}).ShufflePct() != 0 {
		t.Fatal("zero exec time should give zero shuffle share")
	}
}

func TestDeterministic(t *testing.T) {
	e1, _ := NewEngine(Fig7Configs()[2])
	e2, _ := NewEngine(Fig7Configs()[2])
	q := TPCHQueries()[1]
	if e1.Run(q).ExecTimeNs != e2.Run(q).ExecTimeNs {
		t.Fatal("engine runs are not deterministic")
	}
}

func BenchmarkQ9Interleave13(b *testing.B) {
	e, _ := NewEngine(Fig7Configs()[3])
	q := TPCHQueries()[3]
	for i := 0; i < b.N; i++ {
		e.Run(q)
	}
}
