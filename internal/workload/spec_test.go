package workload

import (
	"math"
	"strings"
	"testing"
)

const workloadA = `
# Yahoo! Cloud System Benchmark
# Workload A: Update heavy workload
workload=site.ycsb.workloads.CoreWorkload
recordcount=1000000
operationcount=1000000
readallfields=true
readproportion=0.5
updateproportion=0.5
scanproportion=0
insertproportion=0
requestdistribution=zipfian
`

func TestParseSpecWorkloadA(t *testing.T) {
	mix, records, err := ParseSpec(strings.NewReader(workloadA))
	if err != nil {
		t.Fatal(err)
	}
	if mix.Read != 0.5 || mix.Update != 0.5 {
		t.Fatalf("mix = %+v", mix)
	}
	if records != 1_000_000 {
		t.Fatalf("records = %d", records)
	}
	if mix.Distribution != "zipfian" {
		t.Fatalf("distribution = %q", mix.Distribution)
	}
	if mix.DefaultValueSize != 1000 {
		t.Fatalf("value size = %d, want 1000 (10×100 YCSB default)", mix.DefaultValueSize)
	}
	// And the parsed spec must drive the generator.
	y := NewYCSB(mix, records, 1)
	reads := 0
	for i := 0; i < 10000; i++ {
		if y.Next().Kind == OpRead {
			reads++
		}
	}
	if rf := float64(reads) / 10000; math.Abs(rf-0.5) > 0.03 {
		t.Fatalf("generated read fraction %.3f, want ≈0.5", rf)
	}
}

func TestParseSpecLatestAndFields(t *testing.T) {
	spec := `
readproportion=0.95
insertproportion=0.05
updateproportion=0
scanproportion=0
requestdistribution=latest
recordcount=500
fieldcount=4
fieldlength=256
`
	mix, records, err := ParseSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if mix.Distribution != "latest" || records != 500 {
		t.Fatalf("mix = %+v records = %d", mix, records)
	}
	if mix.DefaultValueSize != 1024 {
		t.Fatalf("value size = %d, want 1024", mix.DefaultValueSize)
	}
}

func TestParseSpecUniformMapsToZipfianAPI(t *testing.T) {
	spec := "readproportion=1\nrequestdistribution=uniform\n"
	mix, _, err := ParseSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if mix.Distribution != "zipfian" {
		t.Fatalf("uniform should map to the zipfian generator family, got %q", mix.Distribution)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"no equals":    "readproportion 0.5\n",
		"bad fraction": "readproportion=1.5\n",
		"bad dist":     "readproportion=1\nrequestdistribution=hotspot\n",
		"zero records": "readproportion=1\nrecordcount=0\n",
		"no ops":       "scanproportion=0\n",
		"sum too big":  "readproportion=0.9\nupdateproportion=0.9\n",
		"bad fields":   "readproportion=1\nfieldcount=0\n",
	}
	for name, spec := range cases {
		if _, _, err := ParseSpec(strings.NewReader(spec)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestParseSpecIgnoresDriverKeys(t *testing.T) {
	spec := `
readproportion=1
threadcount=64
target=10000
exportfile=/tmp/out
`
	if _, _, err := ParseSpec(strings.NewReader(spec)); err != nil {
		t.Fatal(err)
	}
}
