package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformRange(t *testing.T) {
	u := NewUniform(100, 1)
	for i := 0; i < 10000; i++ {
		if v := u.Next(); v >= 100 {
			t.Fatalf("uniform produced %d outside [0,100)", v)
		}
	}
	if u.N() != 100 {
		t.Fatalf("N = %d", u.N())
	}
}

func TestUniformCoverage(t *testing.T) {
	u := NewUniform(10, 2)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		seen[u.Next()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform over 10 items hit only %d", len(seen))
	}
}

func TestUniformEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	NewUniform(0, 1)
}

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(1000, 7)
	for i := 0; i < 100000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("zipfian produced %d outside [0,1000)", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10000, 3)
	counts := make([]int, 10000)
	const draws = 500000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Item 0 must be by far the most popular: under theta=0.99 over 10k
	// items it should receive several percent of all draws.
	if frac := float64(counts[0]) / draws; frac < 0.03 {
		t.Fatalf("hottest item got %.4f of draws, want > 0.03", frac)
	}
	// Top-100 items should dominate: >50% of mass.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.5 {
		t.Fatalf("top-100 items got %.3f of draws, want > 0.5", frac)
	}
	// Popularity must broadly decrease: first decile ≥ last decile.
	first, last := 0, 0
	for i := 0; i < 1000; i++ {
		first += counts[i]
		last += counts[9000+i]
	}
	if first <= last {
		t.Fatalf("zipfian not decreasing: first decile %d, last %d", first, last)
	}
}

func TestZipfianBadParamsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipfian(0, 1) },
		func() { NewZipfianTheta(10, 0, 1) },
		func() { NewZipfianTheta(10, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	s := NewScrambledZipfian(10000, 11)
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := s.Next()
		if v >= 10000 {
			t.Fatalf("scrambled zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Skew preserved: the hottest key should still carry several % of
	// draws, but it should NOT be key 0 specifically (scrambling).
	maxKey, maxCount := uint64(0), 0
	for k, c := range counts {
		if c > maxCount {
			maxKey, maxCount = k, c
		}
	}
	if frac := float64(maxCount) / draws; frac < 0.03 {
		t.Fatalf("hottest scrambled key got %.4f, want > 0.03", frac)
	}
	_ = maxKey // key identity is arbitrary; only skew matters
}

func TestLatestFavorsNewest(t *testing.T) {
	l := NewLatest(1000, 5)
	hi := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := l.Next()
		if v >= 1000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 900 {
			hi++
		}
	}
	if frac := float64(hi) / draws; frac < 0.5 {
		t.Fatalf("newest decile got %.3f of draws, want > 0.5", frac)
	}
}

func TestLatestInsertShiftsHotSet(t *testing.T) {
	l := NewLatest(100, 9)
	idx := l.Insert()
	if idx != 100 {
		t.Fatalf("insert returned %d, want 100", idx)
	}
	if l.N() != 101 {
		t.Fatalf("N after insert = %d, want 101", l.N())
	}
	// The new item should now be drawable and hot.
	seenNew := 0
	for i := 0; i < 10000; i++ {
		if l.Next() == 100 {
			seenNew++
		}
	}
	if seenNew == 0 {
		t.Fatal("newly inserted item never drawn")
	}
}

func TestHotspot(t *testing.T) {
	h := NewHotspot(1000, 100, 0.9, 13)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := h.Next()
		if v >= 1000 {
			t.Fatalf("hotspot out of range: %d", v)
		}
		if v < 100 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("hot fraction = %.3f, want ≈0.9", frac)
	}
}

func TestHotspotDegenerate(t *testing.T) {
	// hotItems == n: all accesses in [0,n) regardless of branch.
	h := NewHotspot(10, 10, 0.5, 1)
	for i := 0; i < 1000; i++ {
		if h.Next() >= 10 {
			t.Fatal("out of range")
		}
	}
}

func TestHotspotBadParamsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHotspot(0, 1, 0.5, 1) },
		func() { NewHotspot(10, 0, 0.5, 1) },
		func() { NewHotspot(10, 11, 0.5, 1) },
		func() { NewHotspot(10, 5, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSequentialCycles(t *testing.T) {
	s := NewSequential(3)
	want := []uint64{0, 1, 2, 0, 1}
	for i, w := range want {
		if v := s.Next(); v != w {
			t.Fatalf("seq[%d] = %d, want %d", i, v, w)
		}
	}
}

func TestYCSBMixRatios(t *testing.T) {
	for _, mix := range StandardMixes() {
		total := mix.Read + mix.Update + mix.Insert + mix.Scan
		if math.Abs(total-1.0) > 1e-9 {
			t.Errorf("%s ratios sum to %v, want 1", mix.Name, total)
		}
		if mix.DefaultValueSize != 1024 {
			t.Errorf("%s value size %d, want 1024 (paper default)", mix.Name, mix.DefaultValueSize)
		}
	}
}

func TestYCSBAOpDistribution(t *testing.T) {
	y := NewYCSB(YCSBA, 10000, 21)
	var reads, updates int
	const draws = 100000
	for i := 0; i < draws; i++ {
		op := y.Next()
		switch op.Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatalf("YCSB-A produced unexpected op %v", op.Kind)
		}
	}
	if rf := float64(reads) / draws; math.Abs(rf-0.5) > 0.02 {
		t.Fatalf("YCSB-A read fraction %.3f, want ≈0.5", rf)
	}
}

func TestYCSBCReadOnly(t *testing.T) {
	y := NewYCSB(YCSBC, 1000, 22)
	for i := 0; i < 10000; i++ {
		if op := y.Next(); op.Kind != OpRead {
			t.Fatalf("YCSB-C produced %v", op.Kind)
		}
	}
}

func TestYCSBDInsertGrows(t *testing.T) {
	y := NewYCSB(YCSBD, 1000, 23)
	start := y.Records()
	inserts := 0
	for i := 0; i < 10000; i++ {
		if op := y.Next(); op.Kind == OpInsert {
			inserts++
			if op.Key < start {
				t.Fatalf("insert key %d below initial space %d", op.Key, start)
			}
		}
	}
	if inserts == 0 {
		t.Fatal("YCSB-D produced no inserts")
	}
	if y.Records() != start+uint64(inserts) {
		t.Fatalf("records = %d, want %d", y.Records(), start+uint64(inserts))
	}
}

func TestYCSBUnknownDistributionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewYCSB(YCSBMix{Name: "bad", Read: 1, Distribution: "nope"}, 10, 1)
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "READ" || OpUpdate.String() != "UPDATE" ||
		OpInsert.String() != "INSERT" || OpScan.String() != "SCAN" {
		t.Fatal("OpKind strings wrong")
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown OpKind should still render")
	}
}

func TestDeterministicSeeding(t *testing.T) {
	a, b := NewYCSB(YCSBA, 1000, 77), NewYCSB(YCSBA, 1000, 77)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, oa, ob)
		}
	}
}

// Property: every generator stays within its item space.
func TestPropertyGeneratorsInRange(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw%1000) + 2
		gens := []Generator{
			NewUniform(n, seed),
			NewZipfian(n, seed),
			NewScrambledZipfian(n, seed),
			NewLatest(n, seed),
			NewHotspot(n, n/2+1, 0.8, seed),
			NewSequential(n),
		}
		for _, g := range gens {
			for i := 0; i < 200; i++ {
				if g.Next() >= g.N() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1<<20, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkScrambledZipfianNext(b *testing.B) {
	z := NewScrambledZipfian(1<<20, 1)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkYCSBNext(b *testing.B) {
	y := NewYCSB(YCSBA, 1<<20, 1)
	for i := 0; i < b.N; i++ {
		y.Next()
	}
}
