// Package workload implements the key-distribution generators and YCSB
// workload definitions the paper's application experiments use (§4.1: YCSB
// A–D over Zipfian / latest distributions with 1 KB values).
//
// The Zipfian generator follows Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94) — the same algorithm
// YCSB itself uses — so hot-key skew matches the original benchmark.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator produces item indices in [0, n) under some distribution.
type Generator interface {
	// Next returns the next item index.
	Next() uint64
	// N returns the size of the item space.
	N() uint64
}

// Uniform draws uniformly from [0, n).
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n uint64, seed int64) *Uniform {
	if n == 0 {
		panic("workload: uniform over empty item space")
	}
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next returns a uniformly distributed index.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// N returns the item-space size.
func (u *Uniform) N() uint64 { return u.n }

// ZipfianConstant is YCSB's default skew (theta).
const ZipfianConstant = 0.99

// Zipfian draws from [0, n) with Zipfian skew: item 0 is the most popular.
// Implements Gray's rejection-free inversion method with incremental
// support for growing n (needed by the "latest" distribution).
type Zipfian struct {
	n           uint64
	theta       float64
	alpha       float64
	zetan       float64
	zeta2theta  float64
	eta         float64
	halfTheta   float64 // math.Pow(0.5, theta), hoisted out of Next's hot path
	countForZ   uint64 // n for which zetan was computed
	rng         *rand.Rand
	allowExtend bool
}

// NewZipfian returns a Zipfian generator over [0, n) with the standard
// YCSB constant 0.99.
func NewZipfian(n uint64, seed int64) *Zipfian {
	return NewZipfianTheta(n, ZipfianConstant, seed)
}

// NewZipfianTheta returns a Zipfian generator with explicit skew theta in
// (0, 1).
func NewZipfianTheta(n uint64, theta float64, seed int64) *Zipfian {
	if n == 0 {
		panic("workload: zipfian over empty item space")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v out of (0,1)", theta))
	}
	z := &Zipfian{
		n:     n,
		theta: theta,
		rng:   rand.New(rand.NewSource(seed)),
	}
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.halfTheta = math.Pow(0.5, theta)
	z.zetan = zetaStatic(n, theta)
	z.countForZ = n
	z.eta = z.etaVal()
	return z
}

func (z *Zipfian) etaVal() float64 {
	return (1 - math.Pow(2/float64(z.n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// zetaStatic computes the n-th generalized harmonic number sum_{i=1..n}
// 1/i^theta. O(n); fine for the item counts cxlsim uses (≤ tens of
// millions) and computed once per generator.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns a Zipfian-distributed index; 0 is the hottest item.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.halfTheta {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// N returns the item-space size.
func (z *Zipfian) N() uint64 { return z.n }

// grow extends the item space to m (> n), updating zetan incrementally.
func (z *Zipfian) grow(m uint64) {
	if m <= z.n {
		return
	}
	for i := z.countForZ + 1; i <= m; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.countForZ = m
	z.n = m
	z.eta = z.etaVal()
}

// ScrambledZipfian spreads Zipfian popularity across the whole item space
// with a hash, matching YCSB's default request distribution: skew without
// locality in key order.
type ScrambledZipfian struct {
	z *Zipfian
	n uint64
}

// NewScrambledZipfian returns a scrambled Zipfian generator over [0, n).
func NewScrambledZipfian(n uint64, seed int64) *ScrambledZipfian {
	// YCSB draws from a larger zipfian space then hashes down; drawing
	// from n directly and hashing preserves the popularity profile.
	return &ScrambledZipfian{z: NewZipfian(n, seed), n: n}
}

// Next returns a hashed Zipfian index: same skew, no key-order locality.
func (s *ScrambledZipfian) Next() uint64 {
	return fnvHash64(s.z.Next()) % s.n
}

// N returns the item-space size.
func (s *ScrambledZipfian) N() uint64 { return s.n }

// fnvHash64 is the FNV-1a hash YCSB uses to scramble keys.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// Latest draws items skewed toward the most recently inserted: index
// n-1 is hottest. Used by YCSB-D ("read latest"). Insert() grows the
// space, shifting the hot set.
type Latest struct {
	z *Zipfian
}

// NewLatest returns a latest-distribution generator over [0, n).
func NewLatest(n uint64, seed int64) *Latest {
	return &Latest{z: NewZipfian(n, seed)}
}

// Next returns an index skewed toward the newest items.
func (l *Latest) Next() uint64 {
	n := l.z.N()
	return n - 1 - l.z.Next()%n
}

// N returns the item-space size.
func (l *Latest) N() uint64 { return l.z.N() }

// Insert grows the item space by one (a new hottest item) and returns the
// new item's index.
func (l *Latest) Insert() uint64 {
	l.z.grow(l.z.N() + 1)
	return l.z.N() - 1
}

// Hotspot sends hotFrac of requests to the first hotItems items, the rest
// uniformly to the cold remainder. Used by ablation experiments on
// promotion policies.
type Hotspot struct {
	n        uint64
	hotItems uint64
	hotFrac  float64
	rng      *rand.Rand
}

// NewHotspot returns a hotspot generator: hotFrac of accesses hit the
// first hotItems of [0, n).
func NewHotspot(n, hotItems uint64, hotFrac float64, seed int64) *Hotspot {
	if n == 0 || hotItems == 0 || hotItems > n {
		panic("workload: invalid hotspot geometry")
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic("workload: hotFrac out of [0,1]")
	}
	return &Hotspot{n: n, hotItems: hotItems, hotFrac: hotFrac, rng: rand.New(rand.NewSource(seed))}
}

// Next returns a hotspot-distributed index.
func (h *Hotspot) Next() uint64 {
	if h.rng.Float64() < h.hotFrac {
		return uint64(h.rng.Int63n(int64(h.hotItems)))
	}
	if h.hotItems == h.n {
		return uint64(h.rng.Int63n(int64(h.n)))
	}
	return h.hotItems + uint64(h.rng.Int63n(int64(h.n-h.hotItems)))
}

// N returns the item-space size.
func (h *Hotspot) N() uint64 { return h.n }

// Sequential cycles 0,1,...,n-1,0,... Used to model streaming scans.
type Sequential struct {
	n, next uint64
}

// NewSequential returns a sequential generator over [0, n).
func NewSequential(n uint64) *Sequential {
	if n == 0 {
		panic("workload: sequential over empty item space")
	}
	return &Sequential{n: n}
}

// Next returns the next index in cyclic order.
func (s *Sequential) Next() uint64 {
	v := s.next
	s.next = (s.next + 1) % s.n
	return v
}

// N returns the item-space size.
func (s *Sequential) N() uint64 { return s.n }
