package workload

import (
	"fmt"
	"math/rand"
)

// OpKind is a YCSB operation type.
type OpKind int

// YCSB operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated YCSB operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// YCSBMix is an operation mix: fractions must sum to 1.
type YCSBMix struct {
	Name                       string
	Read, Update, Insert, Scan float64
	Distribution               string // "zipfian" or "latest"
	DefaultValueSize           int    // bytes; the paper uses 1 KB
}

// The four workloads the paper evaluates (§4.1.1).
var (
	// YCSBA is update-heavy: 50% read / 50% update, Zipfian.
	YCSBA = YCSBMix{Name: "YCSB-A", Read: 0.5, Update: 0.5, Distribution: "zipfian", DefaultValueSize: 1024}
	// YCSBB is read-heavy: 95% read / 5% update, Zipfian.
	YCSBB = YCSBMix{Name: "YCSB-B", Read: 0.95, Update: 0.05, Distribution: "zipfian", DefaultValueSize: 1024}
	// YCSBC is read-only, Zipfian.
	YCSBC = YCSBMix{Name: "YCSB-C", Read: 1.0, Distribution: "zipfian", DefaultValueSize: 1024}
	// YCSBD reads the latest inserts: 95% read / 5% insert, latest.
	YCSBD = YCSBMix{Name: "YCSB-D", Read: 0.95, Insert: 0.05, Distribution: "latest", DefaultValueSize: 1024}
)

// StandardMixes lists the paper's four workloads in figure order.
func StandardMixes() []YCSBMix { return []YCSBMix{YCSBA, YCSBB, YCSBC, YCSBD} }

// YCSB generates a stream of operations for one workload mix.
type YCSB struct {
	mix    YCSBMix
	keys   Generator
	latest *Latest // non-nil when Distribution == "latest"
	rng    *rand.Rand
	n      uint64
}

// NewYCSB builds a YCSB op generator over records [0, n).
func NewYCSB(mix YCSBMix, n uint64, seed int64) *YCSB {
	y := &YCSB{mix: mix, rng: rand.New(rand.NewSource(seed)), n: n}
	switch mix.Distribution {
	case "latest":
		y.latest = NewLatest(n, seed+1)
		y.keys = y.latest
	case "zipfian", "":
		y.keys = NewScrambledZipfian(n, seed+1)
	default:
		panic(fmt.Sprintf("workload: unknown distribution %q", mix.Distribution))
	}
	return y
}

// Mix returns the workload definition.
func (y *YCSB) Mix() YCSBMix { return y.mix }

// Records returns the current record count (grows under inserts).
func (y *YCSB) Records() uint64 { return y.keys.N() }

// Next produces the next operation.
func (y *YCSB) Next() Op {
	r := y.rng.Float64()
	switch {
	case r < y.mix.Read:
		return Op{Kind: OpRead, Key: y.keys.Next()}
	case r < y.mix.Read+y.mix.Update:
		return Op{Kind: OpUpdate, Key: y.keys.Next()}
	case r < y.mix.Read+y.mix.Update+y.mix.Insert:
		if y.latest != nil {
			return Op{Kind: OpInsert, Key: y.latest.Insert()}
		}
		// Inserts under non-latest distributions append at the end.
		y.n++
		return Op{Kind: OpInsert, Key: y.n - 1}
	default:
		return Op{Kind: OpScan, Key: y.keys.Next()}
	}
}
