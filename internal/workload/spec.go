package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseSpec reads a YCSB workload property file (the `workloads/workloada`
// format of the original benchmark) into a YCSBMix plus record count, so
// stock YCSB workload definitions drive cxlsim unchanged.
//
// Recognized properties: readproportion, updateproportion,
// insertproportion, scanproportion, requestdistribution, recordcount,
// fieldcount, fieldlength. Unknown keys are ignored (YCSB specs carry
// many driver-specific settings). Lines starting with '#' or '!' are
// comments.
func ParseSpec(r io.Reader) (YCSBMix, uint64, error) {
	mix := YCSBMix{Name: "custom", Distribution: "zipfian"}
	var records uint64 = 1000
	fieldCount, fieldLength := 10, 100 // YCSB defaults: 10 × 100 B = 1 KB

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "!") {
			continue
		}
		key, value, ok := strings.Cut(text, "=")
		if !ok {
			return mix, 0, fmt.Errorf("workload: spec line %d: no '=' in %q", line, text)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		parseFrac := func(dst *float64) error {
			f, err := strconv.ParseFloat(value, 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("workload: spec line %d: bad proportion %q", line, value)
			}
			*dst = f
			return nil
		}
		var err error
		switch key {
		case "readproportion":
			err = parseFrac(&mix.Read)
		case "updateproportion":
			err = parseFrac(&mix.Update)
		case "insertproportion":
			err = parseFrac(&mix.Insert)
		case "scanproportion":
			err = parseFrac(&mix.Scan)
		case "requestdistribution":
			switch value {
			case "zipfian", "latest":
				mix.Distribution = value
			case "uniform":
				// Modeled as zipfian with no hot set at the store level;
				// the generator API exposes NewUniform for direct use.
				mix.Distribution = "zipfian"
			default:
				err = fmt.Errorf("workload: spec line %d: unsupported distribution %q", line, value)
			}
		case "recordcount":
			records, err = strconv.ParseUint(value, 10, 64)
			if err == nil && records == 0 {
				err = fmt.Errorf("workload: spec line %d: zero recordcount", line)
			}
		case "fieldcount":
			fieldCount, err = strconv.Atoi(value)
		case "fieldlength":
			fieldLength, err = strconv.Atoi(value)
		case "workload", "table", "insertorder", "operationcount",
			"maxexecutiontime", "threadcount", "target":
			// Driver-level settings with no simulator meaning.
		}
		if err != nil {
			return mix, 0, err
		}
	}
	if err := sc.Err(); err != nil {
		return mix, 0, fmt.Errorf("workload: reading spec: %w", err)
	}
	total := mix.Read + mix.Update + mix.Insert + mix.Scan
	if total <= 0 {
		return mix, 0, fmt.Errorf("workload: spec defines no operations")
	}
	if total < 0.999 || total > 1.001 {
		return mix, 0, fmt.Errorf("workload: proportions sum to %v, want 1", total)
	}
	if fieldCount < 1 || fieldLength < 1 {
		return mix, 0, fmt.Errorf("workload: invalid field geometry %d×%d", fieldCount, fieldLength)
	}
	mix.DefaultValueSize = fieldCount * fieldLength
	return mix, records, nil
}
